package argan_test

import (
	"fmt"

	"argan"
)

// The canonical entry point: build a graph, pick an environment, run a
// query under Argan's defaults (GAP + GAwD) and read both the answer and
// the engine's cost accounting.
func ExampleSSSP() {
	g := argan.NewBuilder(5, true).
		AddWeighted(0, 1, 2).
		AddWeighted(1, 2, 2).
		AddWeighted(0, 2, 5).
		AddWeighted(2, 3, 1).
		MustBuild()
	env := argan.Env{Workers: 2}
	res, err := argan.SSSP(g, 0, env, env.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for v := 0; v < 4; v++ {
		fmt.Printf("dist[%d] = %.0f\n", v, res.Values[v])
	}
	// Output:
	// dist[0] = 0
	// dist[1] = 2
	// dist[2] = 4
	// dist[3] = 5
}

// Every parallel model is a configuration of the same engine; BSP, AP and
// AAP are the special cases of GAP described in the paper's §II-B.
func ExampleEnv_Config() {
	g := argan.Chain(6, true)
	env := argan.Env{Workers: 3}
	for _, mode := range []argan.Mode{argan.ModeGAP, argan.ModeBSP, argan.ModeAPGC} {
		res, err := argan.BFS(g, 0, env, env.Config(mode, argan.AdaptFixed))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: hops to the chain end = %d\n", mode, res.Values[5])
	}
	// Output:
	// GAP: hops to the chain end = 5
	// BSP: hops to the chain end = 5
	// AP-GC: hops to the chain end = 5
}
