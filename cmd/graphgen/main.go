// Command graphgen generates synthetic graphs to edge-list or binary files.
//
// Usage:
//
//	graphgen -kind powerlaw -n 100000 -m 1400000 -o lj.el
//	graphgen -kind rmat -n 65536 -m 1000000 -labels 16 -o tw.bin -binary
//	graphgen -dataset LJ -scale 0.5 -o lj_standin.el
package main

import (
	"flag"
	"fmt"
	"os"

	"argan/internal/graph"
)

func main() {
	kind := flag.String("kind", "powerlaw", "generator: powerlaw, uniform, rmat, grid, kb")
	dataset := flag.String("dataset", "", "emit a built-in dataset stand-in instead (HW, DP, LJ, TW, FS, UK)")
	scale := flag.Float64("scale", 1, "dataset scale")
	n := flag.Int("n", 10000, "vertices")
	m := flag.Int("m", 50000, "edges")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	directed := flag.Bool("directed", true, "directed graph")
	alpha := flag.Float64("alpha", 2.5, "power-law exponent")
	maxw := flag.Float64("maxw", 100, "max edge weight (0 = unweighted)")
	labels := flag.Int("labels", 0, "number of vertex labels (0 = unlabeled)")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("o", "", "output file (default stdout)")
	binary := flag.Bool("binary", false, "write the compact binary format")
	flag.Parse()

	var g *graph.Graph
	var err error
	if *dataset != "" {
		g, err = graph.LoadDataset(*dataset, *scale)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		c := graph.GenConfig{N: *n, M: *m, Directed: *directed, Alpha: *alpha, Seed: *seed, MaxW: *maxw, Labels: *labels}
		switch *kind {
		case "powerlaw":
			g = graph.PowerLaw(c)
		case "uniform":
			g = graph.Uniform(c)
		case "rmat":
			g = graph.RMAT(c)
		case "grid":
			g = graph.Grid(*rows, *cols, c)
		case "kb":
			g = graph.KnowledgeBase(c)
		default:
			fatal("unknown -kind %q", *kind)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	if *binary {
		err = graph.WriteBinary(w, g)
	} else {
		err = graph.WriteEdgeList(w, g)
	}
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %v\n", g)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
