// Command arganpoll scrapes a telemetry-plane endpoint (arganrun -serve),
// validates the Prometheus exposition format strictly, and evaluates
// threshold checks against the scraped samples — a monitoring-style probe
// for CI and cron.
//
// Usage:
//
//	arganpoll -url http://127.0.0.1:9090/metrics
//	arganpoll -url http://host:9090/metrics \
//	    -check 'argan_run_unrecoverable==0' \
//	    -check 'argan_dropped_events_total<1000' \
//	    -check 'argan_runs_failed_total<=0'
//
// A check is SERIES OP VALUE with OP one of == != < <= > >=. SERIES is the
// exact series string (labels sorted by name, e.g.
// argan_updates_total{worker="0"}); a bare family name whose series all
// carry labels is evaluated as the sum over the family.
//
// -retry N (with -backoff DUR, doubling per attempt) retries transient
// scrape failures — connection refused while a server binds, a non-200
// from a restarting process — instead of exiting 3 on the first miss.
// Lint violations and failed checks are never retried: those are findings,
// not flakes.
//
// Exit codes: 0 all good; 2 lint violation or failed check; 3 scrape or
// usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"argan/internal/obs/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arganpoll", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "metrics endpoint to scrape (e.g. http://127.0.0.1:9090/metrics)")
	timeout := fs.Duration("timeout", 5*time.Second, "scrape timeout")
	quiet := fs.Bool("quiet", false, "print only failures")
	retry := fs.Int("retry", 0, "retry a failed scrape up to `N` times before giving up (transport errors and non-200s only; lint and check failures never retry)")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "initial delay between scrape retries, doubling per attempt")
	var checks multiFlag
	fs.Var(&checks, "check", "threshold `EXPR` (SERIES OP VALUE); repeatable")
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *url == "" {
		fmt.Fprintln(stderr, "arganpoll: -url is required")
		return 3
	}
	parsed := make([]check, 0, len(checks))
	for _, c := range checks {
		ck, err := parseCheck(c)
		if err != nil {
			fmt.Fprintf(stderr, "arganpoll: %v\n", err)
			return 3
		}
		parsed = append(parsed, ck)
	}

	if *retry < 0 {
		fmt.Fprintln(stderr, "arganpoll: -retry must be >= 0")
		return 3
	}

	// Scrape, retrying only the exit-3 class (transport errors, non-200
	// responses): a flaky network or a server still binding is transient,
	// but a lint violation or failed check is a real finding that a second
	// scrape cannot unmake.
	client := &http.Client{Timeout: *timeout}
	var resp *http.Response
	delay := *backoff
	for attempt := 0; ; attempt++ {
		var err error
		resp, err = client.Get(*url)
		if err == nil && resp.StatusCode == http.StatusOK {
			break
		}
		reason := ""
		if err != nil {
			reason = err.Error()
		} else {
			reason = "scrape returned " + resp.Status
			resp.Body.Close()
		}
		if attempt >= *retry {
			fmt.Fprintf(stderr, "arganpoll: scrape failed: %s\n", reason)
			return 3
		}
		if !*quiet {
			fmt.Fprintf(stdout, "retry %d/%d in %v: %s\n", attempt+1, *retry, delay, reason)
		}
		time.Sleep(delay)
		delay *= 2
	}
	defer resp.Body.Close()
	samples, err := serve.ParseSamples(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "arganpoll: %v\n", err)
		return 2
	}
	if !*quiet {
		fmt.Fprintf(stdout, "ok: exposition valid (%d series)\n", len(samples))
	}
	failed := 0
	for _, ck := range parsed {
		v, ok := lookup(samples, ck.series)
		switch {
		case !ok:
			fmt.Fprintf(stdout, "FAIL: %s — no such series\n", ck)
			failed++
		case !ck.holds(v):
			fmt.Fprintf(stdout, "FAIL: %s — value %s\n", ck, strconv.FormatFloat(v, 'g', -1, 64))
			failed++
		default:
			if !*quiet {
				fmt.Fprintf(stdout, "ok: %s (value %s)\n", ck, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "%d of %d checks failed\n", failed, len(parsed))
		return 2
	}
	return 0
}

type check struct {
	series string
	op     string
	value  float64
}

func (c check) String() string {
	return c.series + c.op + strconv.FormatFloat(c.value, 'g', -1, 64)
}

func (c check) holds(v float64) bool {
	switch c.op {
	case "==":
		return v == c.value
	case "!=":
		return v != c.value
	case "<":
		return v < c.value
	case "<=":
		return v <= c.value
	case ">":
		return v > c.value
	case ">=":
		return v >= c.value
	}
	return false
}

// checkRe splits SERIES OP VALUE; the series part is validated by lookup
// against the actually-scraped names, so it is matched loosely here.
var checkRe = regexp.MustCompile(`^\s*(.+?)\s*(==|!=|<=|>=|<|>)\s*([^=<>\s].*?)\s*$`)

func parseCheck(s string) (check, error) {
	m := checkRe.FindStringSubmatch(s)
	if m == nil {
		return check{}, fmt.Errorf("bad check %q (want SERIES OP VALUE)", s)
	}
	v, err := strconv.ParseFloat(m[3], 64)
	if err != nil {
		return check{}, fmt.Errorf("bad check %q: value %q is not a number", s, m[3])
	}
	return check{series: m[1], op: m[2], value: v}, nil
}

// lookup resolves a check's series: exact match first, then — for a bare
// family name — the sum over every labeled series of that family.
func lookup(samples map[string]float64, series string) (float64, bool) {
	if v, ok := samples[series]; ok {
		return v, true
	}
	if strings.ContainsRune(series, '{') {
		return 0, false
	}
	sum, any := 0.0, false
	for k, v := range samples {
		if strings.HasPrefix(k, series+"{") {
			sum += v
			any = true
		}
	}
	return sum, any
}
