package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

const goodDoc = `# HELP argan_run_running A live run is currently executing (0/1).
# TYPE argan_run_running gauge
argan_run_running 1
# HELP argan_updates_total Update-function invocations.
# TYPE argan_updates_total counter
argan_updates_total{worker="0"} 5
argan_updates_total{worker="1"} 7
`

func serveDoc(t *testing.T, doc string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, doc)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestScrapeOK(t *testing.T) {
	srv := serveDoc(t, goodDoc)
	code, out, _ := runCLI(t, "-url", srv.URL,
		"-check", "argan_run_running==1",
		"-check", `argan_updates_total{worker="0"}>=5`,
		"-check", "argan_updates_total==12", // family sum
	)
	if code != 0 {
		t.Fatalf("exit %d, out:\n%s", code, out)
	}
	if !strings.Contains(out, "exposition valid") {
		t.Errorf("missing validity line: %s", out)
	}
}

func TestCheckFails(t *testing.T) {
	srv := serveDoc(t, goodDoc)
	code, out, _ := runCLI(t, "-url", srv.URL, "-check", "argan_run_running==0")
	if code != 2 {
		t.Fatalf("exit %d, want 2; out:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: argan_run_running==0") {
		t.Errorf("missing FAIL line: %s", out)
	}
}

func TestMissingSeriesFails(t *testing.T) {
	srv := serveDoc(t, goodDoc)
	code, out, _ := runCLI(t, "-url", srv.URL, "-check", "argan_nope<1")
	if code != 2 || !strings.Contains(out, "no such series") {
		t.Fatalf("exit %d out %q", code, out)
	}
}

func TestLintFailure(t *testing.T) {
	srv := serveDoc(t, "argan_untyped_sample 1\n")
	code, _, errb := runCLI(t, "-url", srv.URL)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", code, errb)
	}
	if !strings.Contains(errb, "lint") {
		t.Errorf("stderr lacks lint diagnosis: %q", errb)
	}
}

func TestScrapeError(t *testing.T) {
	code, _, _ := runCLI(t, "-url", "http://127.0.0.1:1/metrics", "-timeout", "200ms")
	if code != 3 {
		t.Fatalf("exit %d, want 3", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 3 {
		t.Fatal("missing -url must exit 3")
	}
	srv := serveDoc(t, goodDoc)
	if code, _, _ := runCLI(t, "-url", srv.URL, "-check", "nonsense"); code != 3 {
		t.Fatal("bad check must exit 3")
	}
	if code, _, _ := runCLI(t, "-url", srv.URL, "-check", "a==b"); code != 3 {
		t.Fatal("non-numeric value must exit 3")
	}
}

func TestParseCheck(t *testing.T) {
	ck, err := parseCheck(` argan_x{worker="0"} <= 10 `)
	if err != nil {
		t.Fatal(err)
	}
	if ck.series != `argan_x{worker="0"}` || ck.op != "<=" || ck.value != 10 {
		t.Fatalf("parsed %+v", ck)
	}
	if !ck.holds(10) || ck.holds(11) {
		t.Error("holds() wrong")
	}
}

// TestRetryRecoversTransientFailure: the first scrapes hit a server that
// errors, then it heals; -retry must ride out the transient and exit 0.
func TestRetryRecoversTransientFailure(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, goodDoc)
	}))
	t.Cleanup(srv.Close)
	code, out, stderr := runCLI(t, "-url", srv.URL, "-retry", "3", "-backoff", "10ms",
		"-check", "argan_run_running==1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "retry 1/3") || !strings.Contains(out, "retry 2/3") {
		t.Errorf("retry progress lines missing:\n%s", out)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hit %d times, want 3", got)
	}
}

// TestRetryExhaustedStillExitsThree: a persistently down endpoint exhausts
// the retries and keeps the scrape-error exit code.
func TestRetryExhaustedStillExitsThree(t *testing.T) {
	srv := serveDoc(t, goodDoc)
	url := srv.URL
	srv.Close() // connection refused from now on
	code, _, stderr := runCLI(t, "-url", url, "-retry", "2", "-backoff", "5ms", "-quiet")
	if code != 3 {
		t.Fatalf("exit %d, want 3 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "scrape failed") {
		t.Errorf("stderr missing scrape failure: %s", stderr)
	}
}

// TestRetryNeverRepeatsFindings: lint violations and failed checks are
// findings, not flakes — they must not consume retries.
func TestRetryNeverRepeatsFindings(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, goodDoc)
	}))
	t.Cleanup(srv.Close)
	code, _, _ := runCLI(t, "-url", srv.URL, "-retry", "5", "-backoff", "5ms",
		"-check", "argan_run_running==0")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("failed check was retried: %d scrapes", got)
	}
	if code, _, _ := runCLI(t, "-url", srv.URL, "-retry", "-1"); code != 3 {
		t.Errorf("negative -retry accepted")
	}
}
