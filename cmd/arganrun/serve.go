package main

// arganrun serve — the resident multi-tenant job service (internal/serve)
// behind the hardened telemetry server (internal/obs/serve): one process,
// one set of frozen datasets, many concurrent GAP jobs with admission
// control, per-job fault isolation, deadlines and graceful SIGTERM drain.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	obsserve "argan/internal/obs/serve"
	"argan/internal/serve"
)

// runServe is the testable body of the serve subcommand. It blocks until
// stop yields a signal (or closes), drains, and returns the exit code:
// 0 for a clean drain — including one that had to force stragglers — and
// 2 for flag errors, 1 for startup errors.
func runServe(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("arganrun serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address for the job API + telemetry plane")
	cores := fs.Int("cores", 0, "admission core-token budget (0 = 4)")
	queue := fs.Int("queue", 0, "admission queue depth; beyond it submissions shed with 429 (0 = 2x cores)")
	memBudget := fs.String("mem-budget", "", "total governed memory shared by concurrent jobs in `BYTES` (k/m/g suffixes; empty = ungoverned)")
	spillDir := fs.String("spill-dir", "", "directory for governed jobs' spill files (default: the OS temp dir)")
	maxWorkers := fs.Int("max-workers", 0, "per-job worker clamp (0 = 4, never above -cores)")
	deadline := fs.Duration("deadline", 0, "default per-job deadline from submission (0 = none)")
	watchdog := fs.Duration("watchdog", 0, "per-job stuck-run budget (0 = driver default 30s)")
	history := fs.Int("history", 0, "terminal jobs retained for status/result/metrics; older ones are evicted (0 = 512, negative = unbounded)")
	preload := fs.String("preload", "", "datasets to load and partition at startup, e.g. \"HW@0.05,LJ@0.1\"")
	churn := fs.String("churn", "", "apply synthetic edge-churn batches to `DATASET[@SCALE]` while serving, exercising live incremental re-convergence")
	churnEvery := fs.Duration("churn-every", 5*time.Second, "interval between synthetic churn batches")
	churnOps := fs.Int("churn-ops", 32, "edge operations per synthetic churn batch (half deletes, half inserts)")
	stateDir := fs.String("state-dir", "", "durable state `DIR`: per-dataset mutation WALs + warm-fixpoint snapshots, replayed to the last durable version on restart (empty = ephemeral)")
	snapEvery := fs.Duration("snapshot-every", 10*time.Second, "warm-fixpoint snapshot flush period under -state-dir (0 = only the final flush at drain)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs on SIGTERM before cancel-forcing them")
	drainOut := fs.String("drain-out", "", "write the drain stats JSON to `FILE` on shutdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		fmt.Fprintf(stderr, "arganrun serve: -mem-budget: %v\n", err)
		return 2
	}

	svc, err := serve.Open(serve.Config{
		Cores: *cores, QueueDepth: *queue,
		MemBudget: budget, SpillDir: *spillDir,
		MaxWorkersPerJob: *maxWorkers,
		DefaultDeadline:  *deadline, Watchdog: *watchdog,
		MaxHistory: *history,
		StateDir:   *stateDir, SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fmt.Fprintf(stderr, "arganrun serve: %v\n", err)
		return 1
	}
	cfg := svc.Config()
	if rec := svc.Recovery(); rec != nil {
		tail := ""
		if rec.TruncatedTail {
			tail = ", torn tail truncated"
		}
		fmt.Fprintf(stdout, "recovered     : %d datasets, %d wal records (%d bytes) replayed, %d warm fixpoints reseeded (%d skipped)%s\n",
			rec.Datasets, rec.Records, rec.Bytes, rec.WarmReseeded, rec.WarmSkipped, tail)
	}

	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, scaleStr, _ := strings.Cut(spec, "@")
		scale := 0.25
		if scaleStr != "" {
			if scale, err = strconv.ParseFloat(scaleStr, 64); err != nil {
				fmt.Fprintf(stderr, "arganrun serve: -preload %q: bad scale %q\n", spec, scaleStr)
				return 2
			}
		}
		if err := svc.Preload(name, scale, cfg.MaxWorkersPerJob); err != nil {
			fmt.Fprintf(stderr, "arganrun serve: -preload %q: %v\n", spec, err)
			return 1
		}
		fmt.Fprintf(stdout, "preloaded     : %s@%g (%d fragments)\n", name, scale, cfg.MaxWorkersPerJob)
	}

	srv := obsserve.New()
	if err := svc.Attach(srv); err != nil {
		fmt.Fprintf(stderr, "arganrun serve: %v\n", err)
		return 1
	}
	srv.SetRunInfo(map[string]string{
		"driver": "service",
		"cores":  strconv.Itoa(cfg.Cores),
		"queue":  strconv.Itoa(cfg.QueueDepth),
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "arganrun serve: -addr %s: %v\n", *addr, err)
		return 1
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "job service   : http://%s/api/jobs (cores %d, queue %d)\n", bound, cfg.Cores, cfg.QueueDepth)
	fmt.Fprintf(stdout, "telemetry     : http://%s/metrics (also /status /healthz /readyz /debug/pprof)\n", bound)

	// Background writer: one synthetic churn batch per tick against the
	// named dataset. Jobs in flight keep their pinned version; later jobs
	// re-converge incrementally across the bumps.
	var churnStop, churnDone chan struct{}
	if *churn != "" {
		name, scaleStr, _ := strings.Cut(*churn, "@")
		scale := 0.25
		if scaleStr != "" {
			if scale, err = strconv.ParseFloat(scaleStr, 64); err != nil {
				fmt.Fprintf(stderr, "arganrun serve: -churn %q: bad scale %q\n", *churn, scaleStr)
				return 2
			}
		}
		if err := svc.Preload(name, scale, cfg.MaxWorkersPerJob); err != nil {
			fmt.Fprintf(stderr, "arganrun serve: -churn %q: %v\n", *churn, err)
			return 1
		}
		churnStop, churnDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(churnDone)
			tick := time.NewTicker(*churnEvery)
			defer tick.Stop()
			for seed := int64(1); ; seed++ {
				select {
				case <-churnStop:
					return
				case <-tick.C:
					// The drain latch is the authoritative gate: a SIGTERM can
					// flip it between the tick firing and the write landing, so
					// a refused batch during shutdown is a clean stop, not an
					// error to report.
					if svc.Draining() {
						return
					}
					mr, err := svc.Churn(name, scale, seed, *churnOps)
					if err != nil {
						if errors.Is(err, serve.ErrDraining) {
							return
						}
						fmt.Fprintf(stderr, "arganrun serve: churn: %v\n", err)
						continue
					}
					fmt.Fprintf(stdout, "churn         : %s@%g v%d -> v%d (+%d -%d edges, %d fragments rebuilt)\n",
						mr.Dataset, mr.Scale, mr.OldVersion, mr.NewVersion, mr.Inserts, mr.Deletes, mr.RebuiltFragments)
				}
			}
		}()
		fmt.Fprintf(stdout, "churn         : %s every %s, %d ops/batch\n", *churn, *churnEvery, *churnOps)
	}

	sig := <-stop
	if churnStop != nil {
		close(churnStop)
		<-churnDone
	}
	if sig != nil {
		fmt.Fprintf(stdout, "signal        : %v — draining (no new admissions)\n", sig)
	} else {
		fmt.Fprintf(stdout, "stop          : draining (no new admissions)\n")
	}
	stats := svc.Drain(*drainTimeout)
	fmt.Fprintf(stdout, "drained       : %d in-flight jobs finished in %.0fms (%d forced); lifetime %d done / %d failed / %d canceled\n",
		stats.Jobs, stats.WaitMS, stats.Forced, stats.Completed, stats.Failed, stats.Canceled)
	if *drainOut != "" {
		blob, _ := json.MarshalIndent(stats, "", "  ")
		if err := os.WriteFile(*drainOut, blob, 0o644); err != nil {
			fmt.Fprintf(stderr, "arganrun serve: -drain-out: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "drain stats   : %s\n", *drainOut)
	}
	return 0
}
