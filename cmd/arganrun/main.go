// Command arganrun executes one graph application over an edge-list file
// (or a built-in dataset stand-in) under a chosen system or parallel model
// and reports the result summary and run metrics.
//
// Usage:
//
//	arganrun -app sssp -dataset LJ -n 16 -source 0
//	arganrun -app pr -graph web.el -system Grape+
//	arganrun -app color -dataset HW -system GraphLab_sync   # reports NA
//
// Observability (applies to the ACE applications, not -stats/-app mst):
//
//	-trace FILE        write the run's event trace as Chrome trace-event
//	                   JSON: open in Perfetto (ui.perfetto.dev) or
//	                   chrome://tracing; one span track per worker with
//	                   LocalEval/h_in/h_out/Adjust spans, counter tracks,
//	                   and indicator-flip (R1/R2/R3) instants. Virtual
//	                   cost units are rendered as microseconds.
//	-metrics-out FILE  write long-format CSV time series
//	                   (time,worker,series,value) with per-worker η, φ,
//	                   active-set size, mailbox depth and cumulative
//	                   counters — the input for Fig. 7/8-style plots.
//	-progress DUR      while the run executes, print a live progress line
//	                   (virtual time, busy workers, updates, backlog)
//	                   every DUR (e.g. -progress 500ms).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/obs"
	"argan/internal/systems"
)

func main() {
	app := flag.String("app", "sssp", "application: sssp, bfs, wcc, color, pr, core, sim, mst")
	file := flag.String("graph", "", "edge-list file (see graph.ReadEdgeList)")
	dataset := flag.String("dataset", "", "built-in dataset stand-in (HW, DP, LJ, TW, FS, UK)")
	scale := flag.Float64("scale", 0.25, "dataset scale")
	n := flag.Int("n", 16, "number of workers")
	system := flag.String("system", "Argan", "system: Argan, Grape, Grape+, Grape*, GraphLab_sync, GraphLab_async, PowerSwitch, Maiter")
	source := flag.Int("source", 0, "source vertex for sssp/bfs")
	eps := flag.Float64("eps", 1e-3, "delta threshold for pr")
	hetero := flag.Float64("hetero", 0, "execution-noise amplitude")
	top := flag.Int("top", 5, "print the top-k result vertices")
	stats := flag.Bool("stats", false, "print structural graph statistics and exit")
	traceFile := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to `FILE`")
	metricsOut := flag.String("metrics-out", "", "write per-worker time-series CSV to `FILE`")
	progress := flag.Duration("progress", 0, "print live progress every `DUR` (0 disables)")
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *file != "":
		f, ferr := os.Open(*file)
		if ferr != nil {
			fatal("%v", ferr)
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
	case *dataset != "":
		g, err = graph.LoadDataset(*dataset, *scale)
	default:
		fatal("need -graph or -dataset")
	}
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("graph: %v\n", g)
	if *stats {
		st := graph.ComputeStats(g)
		fmt.Printf("avg degree %.1f, max %d (p99 %d), skew %.1f, tail alpha %.2f, giant component %.0f%%\n",
			st.AvgDegree, st.MaxDegree, st.DegreeP99, st.Skew, st.PowerLawAlpha, 100*st.GiantComponentFrac)
		return
	}
	if *app == "mst" {
		env := core.Env{Workers: *n, Hetero: *hetero}
		frags, err := env.Fragments(g)
		if err != nil {
			fatal("%v", err)
		}
		edges, total, rounds, err := core.MST(g, frags, env.DefaultConfig())
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("minimum spanning forest: %d edges, total weight %.1f, %d Borůvka rounds\n",
			len(edges), total, rounds)
		return
	}

	sys, err := systems.ByName(*system)
	if err != nil {
		fatal("%v", err)
	}
	env := core.Env{Workers: *n, Hetero: *hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		fatal("%v", err)
	}
	job, err := sys.Job(*app)
	if err != nil {
		fatal("%v", err)
	}

	q := ace.Query{Source: graph.VID(*source), Eps: *eps}
	if *app == "sim" {
		q.Pattern = algorithms.RandomPattern(g, 4, 5, 42)
	}
	cfg := sys.Config(env.DefaultConfig())
	var rec *obs.Recorder
	if *traceFile != "" || *metricsOut != "" || *progress > 0 {
		rec = obs.NewRecorder(*n, 0)
		cfg.Tracer = rec
	}
	m, err := runJob(job, frags, q, cfg, rec, *progress)
	if err != nil {
		fatal("%v", err)
	}
	if rec != nil {
		if *traceFile != "" {
			writeExport(*traceFile, rec.WriteChromeTrace)
			fmt.Printf("trace         : %s (%d workers, %d events dropped)\n", *traceFile, rec.Workers(), rec.Dropped())
		}
		if *metricsOut != "" {
			writeExport(*metricsOut, rec.WriteCSV)
			fmt.Printf("metrics       : %s\n", *metricsOut)
		}
	}
	if !m.Converged {
		fmt.Println("result: NA (did not converge — oscillating synchronous execution)")
		return
	}
	fmt.Printf("response time : %.0f cost units\n", m.RespTime)
	fmt.Printf("updates       : %d over %d rounds, %d messages (%d bytes)\n",
		m.Updates, m.Rounds, m.MsgsSent, m.BytesSent)
	fmt.Printf("composition   : busy=%.0f  T_w=%.0f  T_c=%.0f  T_a=%.0f  phi=%.1f%%\n",
		m.TotalBusy, m.TotalTw, m.TotalTc, m.TotalTa, 100*m.Phi)

	printTop(g, env, *app, q, *top, *source)
}

// printTop recomputes the answer under Argan's defaults and prints a small
// result sample, so the tool is useful beyond timing.
func printTop(g *graph.Graph, env core.Env, app string, q ace.Query, k, source int) {
	cfg := env.DefaultConfig()
	switch app {
	case "sssp":
		res, err := core.SSSP(g, graph.VID(source), env, cfg)
		if err != nil {
			return
		}
		type pair struct {
			v graph.VID
			d float64
		}
		var ps []pair
		for v, d := range res.Values {
			if d > 0 && d < algorithms.Inf {
				ps = append(ps, pair{graph.VID(v), d})
			}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
		fmt.Printf("nearest %d vertices from %d:\n", k, source)
		for i := 0; i < k && i < len(ps); i++ {
			fmt.Printf("  v%-8d dist %.1f\n", ps[i].v, ps[i].d)
		}
	case "pr":
		res, err := core.PageRank(g, q.Eps, env, cfg)
		if err != nil {
			return
		}
		type pair struct {
			v graph.VID
			r float64
		}
		ps := make([]pair, len(res.Values))
		for v, r := range res.Values {
			ps[v] = pair{graph.VID(v), r}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].r > ps[j].r })
		fmt.Printf("top %d by PageRank:\n", k)
		for i := 0; i < k && i < len(ps); i++ {
			fmt.Printf("  v%-8d rank %.4f\n", ps[i].v, ps[i].r)
		}
	case "color":
		res, err := core.Color(g, env, cfg)
		if err != nil {
			return
		}
		max := int32(0)
		for _, c := range res.Values {
			if c > max {
				max = c
			}
		}
		fmt.Printf("colors used: %d\n", max+1)
	case "core":
		res, err := core.CoreDecomposition(g, env, cfg)
		if err != nil {
			return
		}
		max := int32(0)
		for _, c := range res.Values {
			if c > max {
				max = c
			}
		}
		fmt.Printf("degeneracy (max coreness): %d\n", max)
	case "sim":
		res, err := core.Simulation(g, q.Pattern, env, cfg)
		if err != nil {
			return
		}
		matches := 0
		for _, m := range res.Values {
			if m != 0 {
				matches++
			}
		}
		fmt.Printf("vertices simulating some pattern vertex: %d\n", matches)
	}
}

// runJob executes the job, optionally polling the recorder for live
// progress: the engine runs in its own goroutine while the main goroutine
// prints a per-tick status line assembled from Recorder.Snapshot.
func runJob(job core.Job, frags []*graph.Fragment, q ace.Query, cfg gap.Config, rec *obs.Recorder, every time.Duration) (gap.Metrics, error) {
	if rec == nil || every <= 0 {
		return job(frags, q, cfg)
	}
	type result struct {
		m   gap.Metrics
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := job(frags, q, cfg)
		done <- result{m, err}
	}()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case r := <-done:
			return r.m, r.err
		case <-tick.C:
			printProgress(rec)
		}
	}
}

// printProgress renders one live status line from the recorder snapshot.
func printProgress(rec *obs.Recorder) {
	st := rec.Snapshot()
	var upd, msgs int64
	var vt, backlog float64
	busy := 0
	etaLo, etaHi := math.Inf(1), math.Inf(-1)
	for _, w := range st.Workers {
		upd += w.Updates
		msgs += w.MsgsSent
		backlog += w.Mailbox
		if !w.Idle {
			busy++
		}
		if w.T > vt {
			vt = w.T
		}
		if w.HasEta {
			etaLo = math.Min(etaLo, w.Eta)
			etaHi = math.Max(etaHi, w.Eta)
		}
	}
	line := fmt.Sprintf("progress: t=%.0f busy=%d/%d updates=%d msgs=%d backlog=%.0f",
		vt, busy, len(st.Workers), upd, msgs, backlog)
	if etaLo <= etaHi {
		line += fmt.Sprintf(" eta=[%.0f..%.0f]", etaLo, etaHi)
	}
	fmt.Fprintln(os.Stderr, line)
}

// writeExport writes one exporter's output to path.
func writeExport(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arganrun: "+format+"\n", args...)
	os.Exit(1)
}
