// Command arganrun executes one graph application over an edge-list file
// (or a built-in dataset stand-in) under a chosen system or parallel model
// and reports the result summary and run metrics.
//
// Usage:
//
//	arganrun -app sssp -dataset LJ -n 16 -source 0
//	arganrun -app pr -graph web.el -system Grape+
//	arganrun -app color -dataset HW -system GraphLab_sync   # reports NA
//
// Fault injection (sim driver; see internal/fault for the grammar):
//
//	-faults SPEC       inject a fault plan, given inline ("crash=1@300+150;
//	                   drop=0.05") or as a file of spec lines. Crashed
//	                   workers are recovered from periodic checkpoints when
//	                   the crash schedules a restart ("+R").
//	-no-recover        strip the restarts from the plan: crashed workers
//	                   stay dead and the run reports non-convergence.
//	-ckpt-every N      checkpoint interval in virtual cost units.
//
// Live driver (real goroutines; apps sssp, bfs, wcc, pr):
//
//	-recovery MODE     run under the live driver with the given crash
//	                   recovery strategy: "global" (stop-and-sync snapshots,
//	                   whole-cluster rollback) or "local" (per-worker logging
//	                   checkpoints, survivor-local repair, message replay).
//	                   Plan times are wall-clock milliseconds here.
//	-soak N            repeat the live run N times (the fault plan's seed is
//	                   re-derived per iteration), verify every run against
//	                   the sequential reference, and print a soak summary.
//	                   Any mismatch makes the exit code non-zero.
//	-mem-budget BYTES  bound the live driver's memory (k/m/g suffixes, e.g.
//	                   64m). Recovery logs, checkpoints and reorder buffers
//	                   are accounted against the budget; under pressure the
//	                   driver pages logs and checkpoints to the spill dir,
//	                   forces early checkpoints, backpressures senders and
//	                   finally streams edge partitions from disk — instead
//	                   of OOMing. Each soak iteration gets a fresh governor.
//	-spill-dir DIR     where spilled state lives (default: the OS temp dir).
//
// Observability (applies to the ACE applications, not -stats/-app mst):
//
//	-trace FILE        write the run's event trace as Chrome trace-event
//	                   JSON: open in Perfetto (ui.perfetto.dev) or
//	                   chrome://tracing; one span track per worker with
//	                   LocalEval/h_in/h_out/Adjust spans, counter tracks,
//	                   indicator-flip (R1/R2/R3) instants and
//	                   crash/detect/restart/ckpt fault events. Virtual
//	                   cost units are rendered as microseconds.
//	-metrics-out FILE  write long-format CSV time series
//	                   (time,worker,series,value) with per-worker η, φ,
//	                   active-set size, mailbox depth and cumulative
//	                   counters — the input for Fig. 7/8-style plots.
//	-progress DUR      while the run executes, print a live progress line
//	                   (virtual time, busy workers, updates, backlog, and —
//	                   under a governed live run — memory stage and spilled
//	                   bytes) every DUR (e.g. -progress 500ms). Warns when
//	                   the trace ring dropped events.
//	-serve ADDR        start the telemetry plane on ADDR (e.g. :9090 or
//	                   127.0.0.1:0) for the duration of the run: Prometheus
//	                   /metrics, JSON /status, /healthz + /readyz wired to
//	                   the live control plane, and /debug/pprof. The server
//	                   spans every soak iteration.
//	-report FILE       after the run, write the critical-path straggler
//	                   attribution report (per-worker compute/merge/wait/
//	                   replay/spill/throttle shares, straggler chain) as
//	                   text to FILE ("-" = stdout).
//	-report-json FILE  the same report as JSON ("-" = stdout).
//
// Job service (resident multi-tenant mode):
//
//	arganrun serve -addr 127.0.0.1:9090 -cores 8 -queue 16 -mem-budget 256m
//
// Starts a long-lived server that loads frozen datasets once and admits
// many concurrent GAP jobs over shared immutable fragments (POST
// /api/jobs, GET /api/jobs/{id}, .../result, .../cancel — see
// internal/serve). Saturation sheds with 429, deadlines and cancellations
// propagate into each job's driver, a panicking job is quarantined without
// touching its neighbors, and SIGTERM drains gracefully: admissions stop,
// every admitted job finishes, the process exits 0. See `arganrun serve
// -h` for the flag set.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/mem"
	"argan/internal/obs"
	"argan/internal/obs/crit"
	"argan/internal/obs/serve"
	"argan/internal/systems"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
		os.Exit(runServe(args[1:], os.Stdout, os.Stderr, stop))
	}
	os.Exit(run(args, os.Stdout, os.Stderr))
}

// run is main's testable body: parse flags, execute, report. Errors print
// to stderr and become exit code 1 (2 for flag-parse errors), never panics.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arganrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "sssp", "application: sssp, bfs, wcc, color, pr, core, sim, mst")
	file := fs.String("graph", "", "edge-list file (see graph.ReadEdgeList)")
	dataset := fs.String("dataset", "", "built-in dataset stand-in (HW, DP, LJ, TW, FS, UK)")
	scale := fs.Float64("scale", 0.25, "dataset scale")
	n := fs.Int("n", 16, "number of workers")
	system := fs.String("system", "Argan", "system: Argan, Grape, Grape+, Grape*, GraphLab_sync, GraphLab_async, PowerSwitch, Maiter")
	source := fs.Int("source", 0, "source vertex for sssp/bfs")
	eps := fs.Float64("eps", 1e-3, "delta threshold for pr")
	hetero := fs.Float64("hetero", 0, "execution-noise amplitude")
	top := fs.Int("top", 5, "print the top-k result vertices")
	stats := fs.Bool("stats", false, "print structural graph statistics and exit")
	faults := fs.String("faults", "", "fault plan `SPEC` (inline or a file of spec lines)")
	noRecover := fs.Bool("no-recover", false, "strip restarts from the fault plan (crashed workers stay dead)")
	ckptEvery := fs.Float64("ckpt-every", 0, "checkpoint interval in virtual cost units (0 = default)")
	recovery := fs.String("recovery", "", "live-driver crash recovery strategy: global or local (empty = sim driver)")
	soak := fs.Int("soak", 0, "repeat the live run `N` times, verifying each against the sequential reference")
	memBudget := fs.String("mem-budget", "", "live-driver memory budget in `BYTES` (k/m/g suffixes; empty = unbounded)")
	spillDir := fs.String("spill-dir", "", "directory for spilled logs, checkpoints and edges (default: the OS temp dir)")
	traceFile := fs.String("trace", "", "write Chrome trace-event JSON (Perfetto) to `FILE`")
	metricsOut := fs.String("metrics-out", "", "write per-worker time-series CSV to `FILE`")
	progress := fs.Duration("progress", 0, "print live progress every `DUR` (0 disables)")
	serveAddr := fs.String("serve", "", "serve /metrics, /status, /healthz, /readyz and /debug/pprof on `ADDR` while the run executes")
	report := fs.String("report", "", "write the straggler attribution report as text to `FILE` (\"-\" = stdout)")
	reportJSON := fs.String("report-json", "", "write the straggler attribution report as JSON to `FILE` (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		fmt.Fprintf(stderr, "arganrun: -mem-budget: %v\n", err)
		return 2
	}

	if err := runMain(stdout, stderr, options{
		app: *app, file: *file, dataset: *dataset, scale: *scale, n: *n,
		system: *system, source: *source, eps: *eps, hetero: *hetero,
		top: *top, stats: *stats,
		faults: *faults, noRecover: *noRecover, ckptEvery: *ckptEvery,
		recovery: *recovery, soak: *soak,
		memBudget: budget, spillDir: *spillDir,
		traceFile: *traceFile, metricsOut: *metricsOut, progress: *progress,
		serveAddr: *serveAddr, report: *report, reportJSON: *reportJSON,
	}); err != nil {
		fmt.Fprintf(stderr, "arganrun: %v\n", err)
		return 1
	}
	return 0
}

type options struct {
	app, file, dataset    string
	scale                 float64
	n                     int
	system                string
	source                int
	eps, hetero           float64
	top                   int
	stats                 bool
	faults                string
	noRecover             bool
	ckptEvery             float64
	recovery              string
	soak                  int
	memBudget             int64
	spillDir              string
	traceFile, metricsOut string
	progress              time.Duration
	serveAddr             string
	report, reportJSON    string
}

// wantsRecorder reports whether any observability sink needs a trace.
func (o options) wantsRecorder() bool {
	return o.traceFile != "" || o.metricsOut != "" || o.progress > 0 ||
		o.serveAddr != "" || o.report != "" || o.reportJSON != ""
}

// parseBytes reads a byte count with an optional k/m/g (KiB/MiB/GiB) suffix.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 67108864, 64m, 1g)", s)
	}
	return v * mult, nil
}

func runMain(stdout, stderr io.Writer, o options) error {
	var g *graph.Graph
	var err error
	switch {
	case o.file != "":
		f, ferr := os.Open(o.file)
		if ferr != nil {
			return fmt.Errorf("opening graph file: %w", ferr)
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading graph file %s: %w", o.file, err)
		}
	case o.dataset != "":
		if g, err = graph.LoadDataset(o.dataset, o.scale); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -graph or -dataset")
	}
	fmt.Fprintf(stdout, "graph: %v\n", g)
	if o.stats {
		st := graph.ComputeStats(g)
		fmt.Fprintf(stdout, "avg degree %.1f, max %d (p99 %d), skew %.1f, tail alpha %.2f, giant component %.0f%%\n",
			st.AvgDegree, st.MaxDegree, st.DegreeP99, st.Skew, st.PowerLawAlpha, 100*st.GiantComponentFrac)
		return nil
	}
	if o.app == "mst" {
		env := core.Env{Workers: o.n, Hetero: o.hetero}
		frags, err := env.Fragments(g)
		if err != nil {
			return err
		}
		edges, total, rounds, err := core.MST(g, frags, env.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "minimum spanning forest: %d edges, total weight %.1f, %d Borůvka rounds\n",
			len(edges), total, rounds)
		return nil
	}

	if o.recovery != "" || o.soak != 0 {
		return runLiveSoak(stdout, stderr, o, g)
	}

	sys, err := systems.ByName(o.system)
	if err != nil {
		return err
	}
	env := core.Env{Workers: o.n, Hetero: o.hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	job, err := sys.Job(o.app)
	if err != nil {
		return err
	}

	q := ace.Query{Source: graph.VID(o.source), Eps: o.eps}
	if o.app == "sim" {
		q.Pattern = algorithms.RandomPattern(g, 4, 5, 42)
	}
	cfg := sys.Config(env.DefaultConfig())
	if o.faults != "" {
		plan, err := fault.Load(o.faults)
		if err != nil {
			return err
		}
		if o.noRecover {
			for i := range plan.Crashes {
				plan.Crashes[i].Restart = -1
			}
		}
		cfg.Faults = plan
		cfg.FT.CheckpointEvery = o.ckptEvery
	}
	var rec *obs.Recorder
	if o.wantsRecorder() {
		rec = obs.NewRecorder(o.n, 0)
		cfg.Tracer = rec
	}
	if o.serveAddr != "" {
		srv, err := startTelemetry(stdout, o, rec, nil, "sim")
		if err != nil {
			return err
		}
		defer srv.Close()
	}
	m, err := runJob(stderr, job, frags, q, cfg, rec, o.progress)
	if err != nil {
		return err
	}
	if rec != nil {
		if o.traceFile != "" {
			if err := writeExport(o.traceFile, rec.WriteChromeTrace); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "trace         : %s (%d workers, %d events dropped)\n", o.traceFile, rec.Workers(), rec.Dropped())
		}
		if o.metricsOut != "" {
			if err := writeExport(o.metricsOut, rec.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "metrics       : %s\n", o.metricsOut)
		}
		if err := writeReports(stdout, rec, o); err != nil {
			return err
		}
	}
	if !m.Converged {
		if m.Crashes > m.Recoveries {
			fmt.Fprintln(stdout, "result: NA (a crashed worker was never recovered)")
		} else {
			fmt.Fprintln(stdout, "result: NA (did not converge — oscillating synchronous execution)")
		}
		return nil
	}
	fmt.Fprintf(stdout, "response time : %.0f cost units\n", m.RespTime)
	fmt.Fprintf(stdout, "updates       : %d over %d rounds, %d messages (%d bytes)\n",
		m.Updates, m.Rounds, m.MsgsSent, m.BytesSent)
	fmt.Fprintf(stdout, "composition   : busy=%.0f  T_w=%.0f  T_c=%.0f  T_a=%.0f  phi=%.1f%%\n",
		m.TotalBusy, m.TotalTw, m.TotalTc, m.TotalTa, 100*m.Phi)
	if o.faults != "" {
		fmt.Fprintf(stdout, "faults        : crashes=%d recoveries=%d checkpoints=%d T_f=%.0f\n",
			m.Crashes, m.Recoveries, m.Checkpoints, m.TotalTf)
	}

	printTop(stdout, g, env, o.app, q, o.top, o.source)
	return nil
}

// runLiveSoak is the -recovery / -soak path: execute the application under
// the LIVE driver (real goroutines, wall-clock fault plans) one or more
// times, verify every run against the sequential reference, and summarize.
// Any incorrect vertex makes the whole soak fail with a non-zero exit.
func runLiveSoak(stdout, stderr io.Writer, o options, g *graph.Graph) error {
	switch o.recovery {
	case "", gap.RecoveryGlobal, gap.RecoveryLocal:
	default:
		return fmt.Errorf("unknown -recovery strategy %q (want global or local)", o.recovery)
	}
	if o.soak < 0 {
		return fmt.Errorf("-soak must be >= 0, got %d", o.soak)
	}
	env := core.Env{Workers: o.n, Hetero: o.hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	var plan *fault.Plan
	if o.faults != "" {
		if plan, err = fault.Load(o.faults); err != nil {
			return err
		}
		if o.noRecover {
			for i := range plan.Crashes {
				plan.Crashes[i].Restart = -1
			}
		}
	}
	q := ace.Query{Source: graph.VID(o.source), Eps: o.eps}
	cfg := gap.LiveConfig{Mode: gap.ModeGAP, Recovery: o.recovery, NoRecover: o.noRecover}
	var rec *obs.Recorder
	if o.wantsRecorder() {
		// One recorder spans every iteration (n worker tracks plus the
		// monitor's coordinator track): recovery spans, replay marks and —
		// under global rollback only — epoch marks land in one export, so
		// `grep '"name":"epoch"'` on the trace audits the strategy.
		rec = obs.NewRecorder(o.n+1, 0)
		cfg.Tracer = rec
	}
	// The health tracker outlives individual iterations, so /healthz and
	// /readyz report continuously across the soak.
	health := &gap.HealthTracker{}
	cfg.Health = health
	var iterDone int64 // completed soak iterations, for the telemetry plane
	if o.serveAddr != "" {
		srv, err := startTelemetry(stdout, o, rec, health, "live")
		if err != nil {
			return err
		}
		if err := srv.RegisterMetric(serve.Metric{
			Name: "argan_soak_iterations_total",
			Help: "Soak iterations finished under this process.",
			Type: "counter",
			Collect: func() []serve.Sample {
				return []serve.Sample{{Value: float64(atomic.LoadInt64(&iterDone))}}
			},
		}); err != nil {
			return err
		}
		defer srv.Close()
	}
	if o.progress > 0 && rec != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(o.progress)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					printLiveProgress(stderr, rec, health)
				}
			}
		}()
	}

	// The per-iteration runner: execute one live run and count wrong
	// vertices against the precomputed sequential reference.
	var once func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error)
	switch o.app {
	case "sssp":
		want := algorithms.SeqSSSP(g, graph.VID(o.source))
		once = func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return liveSoakOnce(frags, algorithms.NewSSSP(), q, cfg, want,
				func(got, w float64) bool { return got == w })
		}
	case "bfs":
		want := algorithms.SeqBFS(g, graph.VID(o.source))
		once = func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return liveSoakOnce(frags, algorithms.NewBFS(), q, cfg, want,
				func(got, w int32) bool {
					if w < 0 { // Seq marks unreachable -1; the engine leaves Init's MaxInt32
						return got == math.MaxInt32
					}
					return got == w
				})
		}
	case "wcc":
		want := algorithms.SeqWCC(g)
		once = func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return liveSoakOnce(frags, algorithms.NewWCC(), q, cfg, want,
				func(got, w uint32) bool { return got == w })
		}
	case "pr":
		want := algorithms.SeqPageRank(g, o.eps)
		once = func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return liveSoakOnce(frags, algorithms.NewPageRank(), q, cfg, want,
				func(got, w float64) bool { return math.Abs(got-w) <= 0.02*(w+1) })
		}
	default:
		return fmt.Errorf("app %q does not run under the live driver (want sssp, bfs, wcc or pr)", o.app)
	}

	iters := o.soak
	if iters < 1 {
		iters = 1
	}
	governed := o.memBudget > 0 || o.spillDir != ""
	var crashes, recoveries, epochs, replayed int64
	var memPeak, spilled, replayedDisk, forcedCkpts int64
	bad := 0
	for it := 0; it < iters; it++ {
		c := cfg
		if plan != nil {
			// Re-derive the link-fault stream per iteration so a soak
			// explores distinct (but reproducible) schedules.
			p := *plan
			p.Seed = plan.Seed + int64(it)
			c.Faults = &p
		}
		var gov *mem.Governor
		if governed {
			// A fresh governor per iteration: budgets, spill files and peak
			// accounting must not leak across runs.
			gov = mem.NewGovernor(o.memBudget, o.spillDir)
			c.Mem = gov
		}
		lm, wrong, err := once(c)
		if gov != nil {
			gov.Close()
			// Fragments are shared across iterations; a StageStream run may
			// have left their edge payloads on disk.
			for _, f := range frags {
				if _, uerr := f.UnspillEdges(); uerr != nil && err == nil {
					err = uerr
				}
			}
		}
		if err != nil {
			return fmt.Errorf("soak run %d/%d: %w", it+1, iters, err)
		}
		crashes += lm.Crashes
		recoveries += lm.Recoveries
		epochs += lm.Epochs
		replayed += lm.Replayed
		if lm.MemPeakBytes > memPeak {
			memPeak = lm.MemPeakBytes
		}
		spilled += lm.SpilledBytes
		replayedDisk += lm.ReplayedFromDisk
		forcedCkpts += lm.ForcedCkpts
		status := "ok"
		if wrong > 0 {
			status = fmt.Sprintf("%d wrong vertices", wrong)
			bad++
		}
		fmt.Fprintf(stdout, "soak %d/%d [%s]: %s (wall=%v crashes=%d recoveries=%d epochs=%d replayed=%d)\n",
			it+1, iters, lm.Recovery, status, lm.WallTime.Round(time.Millisecond),
			lm.Crashes, lm.Recoveries, lm.Epochs, lm.Replayed)
		if gov != nil {
			fmt.Fprintf(stdout, "  mem: peak=%d spilled=%d replayed-from-disk=%d forced-ckpts=%d throttles=%d edge-spills=%d\n",
				lm.MemPeakBytes, lm.SpilledBytes, lm.ReplayedFromDisk, lm.ForcedCkpts, lm.Throttles, lm.EdgeSpills)
		}
		atomic.AddInt64(&iterDone, 1)
	}
	fmt.Fprintf(stdout, "soak summary  : %d/%d correct; crashes=%d recoveries=%d epochs=%d replayed=%d\n",
		iters-bad, iters, crashes, recoveries, epochs, replayed)
	if governed {
		fmt.Fprintf(stdout, "mem summary   : budget=%d peak=%d spilled=%d replayed-from-disk=%d forced-ckpts=%d\n",
			o.memBudget, memPeak, spilled, replayedDisk, forcedCkpts)
	}
	if rec != nil {
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(stdout, "WARNING: the trace ring dropped %d events; exports and reports are missing the oldest data\n", d)
		}
		if o.traceFile != "" {
			if err := writeExport(o.traceFile, rec.WriteChromeTrace); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "trace         : %s (%d tracks, %d events dropped)\n", o.traceFile, rec.Workers(), rec.Dropped())
		}
		if o.metricsOut != "" {
			if err := writeExport(o.metricsOut, rec.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "metrics       : %s\n", o.metricsOut)
		}
		if err := writeReports(stdout, rec, o); err != nil {
			return err
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d soak runs diverged from the sequential reference", bad, iters)
	}
	return nil
}

// liveSoakOnce runs one live execution and verifies it vertex-by-vertex.
func liveSoakOnce[V any, W any](frags []*graph.Fragment, f ace.Factory[V], q ace.Query, cfg gap.LiveConfig, want []W, eq func(got V, w W) bool) (*gap.LiveMetrics, int, error) {
	res, lm, err := gap.RunLive(frags, f, q, cfg)
	if err != nil {
		return nil, 0, err
	}
	wrong := 0
	for v := range want {
		if !eq(res.Values[v], want[v]) {
			wrong++
		}
	}
	return lm, wrong, nil
}

// printTop recomputes the answer under Argan's defaults and prints a small
// result sample, so the tool is useful beyond timing.
func printTop(out io.Writer, g *graph.Graph, env core.Env, app string, q ace.Query, k, source int) {
	cfg := env.DefaultConfig()
	switch app {
	case "sssp":
		res, err := core.SSSP(g, graph.VID(source), env, cfg)
		if err != nil {
			return
		}
		type pair struct {
			v graph.VID
			d float64
		}
		var ps []pair
		for v, d := range res.Values {
			if d > 0 && d < algorithms.Inf {
				ps = append(ps, pair{graph.VID(v), d})
			}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
		fmt.Fprintf(out, "nearest %d vertices from %d:\n", k, source)
		for i := 0; i < k && i < len(ps); i++ {
			fmt.Fprintf(out, "  v%-8d dist %.1f\n", ps[i].v, ps[i].d)
		}
	case "pr":
		res, err := core.PageRank(g, q.Eps, env, cfg)
		if err != nil {
			return
		}
		type pair struct {
			v graph.VID
			r float64
		}
		ps := make([]pair, len(res.Values))
		for v, r := range res.Values {
			ps[v] = pair{graph.VID(v), r}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].r > ps[j].r })
		fmt.Fprintf(out, "top %d by PageRank:\n", k)
		for i := 0; i < k && i < len(ps); i++ {
			fmt.Fprintf(out, "  v%-8d rank %.4f\n", ps[i].v, ps[i].r)
		}
	case "color":
		res, err := core.Color(g, env, cfg)
		if err != nil {
			return
		}
		max := int32(0)
		for _, c := range res.Values {
			if c > max {
				max = c
			}
		}
		fmt.Fprintf(out, "colors used: %d\n", max+1)
	case "core":
		res, err := core.CoreDecomposition(g, env, cfg)
		if err != nil {
			return
		}
		max := int32(0)
		for _, c := range res.Values {
			if c > max {
				max = c
			}
		}
		fmt.Fprintf(out, "degeneracy (max coreness): %d\n", max)
	case "sim":
		res, err := core.Simulation(g, q.Pattern, env, cfg)
		if err != nil {
			return
		}
		matches := 0
		for _, m := range res.Values {
			if m != 0 {
				matches++
			}
		}
		fmt.Fprintf(out, "vertices simulating some pattern vertex: %d\n", matches)
	}
}

// runJob executes the job, optionally polling the recorder for live
// progress: the engine runs in its own goroutine while the main goroutine
// prints a per-tick status line assembled from Recorder.Snapshot.
func runJob(stderr io.Writer, job core.Job, frags []*graph.Fragment, q ace.Query, cfg gap.Config, rec *obs.Recorder, every time.Duration) (gap.Metrics, error) {
	if rec == nil || every <= 0 {
		return job(frags, q, cfg)
	}
	type result struct {
		m   gap.Metrics
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := job(frags, q, cfg)
		done <- result{m, err}
	}()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case r := <-done:
			return r.m, r.err
		case <-tick.C:
			printProgress(stderr, rec)
		}
	}
}

// printProgress renders one live status line from the recorder snapshot.
func printProgress(stderr io.Writer, rec *obs.Recorder) {
	st := rec.Snapshot()
	var upd, msgs int64
	var vt, backlog float64
	busy := 0
	etaLo, etaHi := math.Inf(1), math.Inf(-1)
	for _, w := range st.Workers {
		upd += w.Updates
		msgs += w.MsgsSent
		backlog += w.Mailbox
		if !w.Idle {
			busy++
		}
		if w.T > vt {
			vt = w.T
		}
		if w.HasEta {
			etaLo = math.Min(etaLo, w.Eta)
			etaHi = math.Max(etaHi, w.Eta)
		}
	}
	line := fmt.Sprintf("progress: t=%.0f busy=%d/%d updates=%d msgs=%d backlog=%.0f",
		vt, busy, len(st.Workers), upd, msgs, backlog)
	if etaLo <= etaHi {
		line += fmt.Sprintf(" eta=[%.0f..%.0f]", etaLo, etaHi)
	}
	if st.Dropped > 0 {
		line += fmt.Sprintf(" DROPPED=%d(!)", st.Dropped)
	}
	fmt.Fprintln(stderr, line)
}

// printLiveProgress renders one live-soak status line: recorder snapshot
// plus the control plane's health view (governor stage, spilled bytes,
// watchdog progress age).
func printLiveProgress(stderr io.Writer, rec *obs.Recorder, health *gap.HealthTracker) {
	st := rec.Snapshot()
	var upd, msgs int64
	busy := 0
	etaLo, etaHi := math.Inf(1), math.Inf(-1)
	for _, w := range st.Workers {
		upd += w.Updates
		msgs += w.MsgsSent
		if !w.Idle {
			busy++
		}
		if w.HasEta {
			etaLo = math.Min(etaLo, w.Eta)
			etaHi = math.Max(etaHi, w.Eta)
		}
	}
	h := health.Health()
	line := fmt.Sprintf("progress: busy=%d/%d updates=%d msgs=%d dead=%d epoch=%d age=%v",
		busy, len(st.Workers), upd, msgs, h.Dead, h.Epoch, h.ProgressAge.Round(time.Millisecond))
	if etaLo <= etaHi {
		line += fmt.Sprintf(" eta=[%.0f..%.0f]", etaLo, etaHi)
	}
	if h.MemStage != "" {
		line += fmt.Sprintf(" stage=%s spilled=%d", h.MemStage, h.SpilledBytes)
	}
	if st.Dropped > 0 {
		line += fmt.Sprintf(" DROPPED=%d(!)", st.Dropped)
	}
	fmt.Fprintln(stderr, line)
}

// startTelemetry brings up the telemetry plane and points it at this run.
func startTelemetry(stdout io.Writer, o options, rec *obs.Recorder, health *gap.HealthTracker, driver string) (*serve.Server, error) {
	srv := serve.New()
	srv.SetRecorder(rec)
	if health != nil {
		srv.SetHealth(func() serve.Health {
			h := health.Health()
			return serve.Health{
				Running: h.Running, Completed: h.Completed, Failed: h.Failed, Err: h.Err,
				Draining: h.Draining,
				Workers:  h.Workers, Idle: h.Idle, Dead: h.Dead,
				Unrecoverable: h.Unrecoverable, Epoch: h.Epoch, Recovery: h.Recovery,
				Sent: h.Sent, Recv: h.Recv, Updates: h.Updates,
				ProgressAge: h.ProgressAge, Watchdog: h.Watchdog,
				MemStage: h.MemStage, SpilledBytes: h.SpilledBytes,
				UpdatedAt: h.UpdatedAt,
			}
		})
	}
	info := map[string]string{
		"app": o.app, "system": o.system, "driver": driver,
		"workers": strconv.Itoa(o.n),
	}
	if o.dataset != "" {
		info["dataset"] = o.dataset
	}
	if o.file != "" {
		info["graph"] = o.file
	}
	if o.recovery != "" {
		info["recovery"] = o.recovery
	}
	srv.SetRunInfo(info)
	addr, err := srv.Start(o.serveAddr)
	if err != nil {
		return nil, fmt.Errorf("-serve %s: %w", o.serveAddr, err)
	}
	fmt.Fprintf(stdout, "telemetry     : http://%s/metrics (also /status /healthz /readyz /debug/pprof)\n", addr)
	return srv, nil
}

// writeReports runs the critical-path analyzer over the retained trace and
// writes the requested renderings ("-" = stdout).
func writeReports(stdout io.Writer, rec *obs.Recorder, o options) error {
	if o.report == "" && o.reportJSON == "" {
		return nil
	}
	r := crit.Analyze(rec)
	emit := func(path string, write func(io.Writer) error, label string) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return write(stdout)
		}
		if err := writeExport(path, write); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-14s: %s\n", label, path)
		return nil
	}
	if err := emit(o.report, r.WriteText, "report"); err != nil {
		return err
	}
	return emit(o.reportJSON, r.WriteJSON, "report-json")
}

// writeExport writes one exporter's output to path.
func writeExport(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
