package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the command body the way main does, capturing both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestBadInputsExitNonZero: every malformed invocation must produce exit
// code 1 with a clear one-line diagnostic on stderr — never a panic, never
// a zero exit.
func TestBadInputsExitNonZero(t *testing.T) {
	garbage := filepath.Join(t.TempDir(), "garbage.el")
	if err := os.WriteFile(garbage, []byte("this is not an edge list\n1 2 3 4 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"no_input", nil, "need -graph or -dataset"},
		{"missing_graph_file", []string{"-graph", filepath.Join(t.TempDir(), "nope.el")}, "opening graph file"},
		{"malformed_graph_file", []string{"-graph", garbage}, "reading graph file"},
		{"unknown_dataset", []string{"-dataset", "NOPE"}, "unknown dataset"},
		{"bad_fault_spec", []string{"-dataset", "HW", "-scale", "0.05", "-faults", "crash=oops"}, "fault"},
		{"unknown_system", []string{"-dataset", "HW", "-scale", "0.05", "-system", "NoSuch"}, "unknown system"},
		{"bad_recovery", []string{"-dataset", "HW", "-scale", "0.05", "-recovery", "zonal"}, "unknown -recovery strategy"},
		{"negative_soak", []string{"-dataset", "HW", "-scale", "0.05", "-soak", "-3"}, "-soak must be >= 0"},
		{"live_unsupported_app", []string{"-dataset", "HW", "-scale", "0.05", "-app", "color", "-recovery", "local"}, "does not run under the live driver"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := runCLI(c.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, "arganrun: ") || !strings.Contains(stderr, c.want) {
				t.Fatalf("stderr %q missing prefix or %q", stderr, c.want)
			}
		})
	}
}

// TestBadFlagExitsTwo: flag-parse failures use the conventional exit 2.
func TestBadFlagExitsTwo(t *testing.T) {
	code, _, stderr := runCLI("-no-such-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
}

// TestRunWithFaultPlan is a smoke test of the full fault-injection path
// through the CLI: a crash-and-recover plan on a small stand-in must still
// exit 0 and report the fault accounting line.
func TestRunWithFaultPlan(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-dataset", "HW", "-scale", "0.05", "-app", "sssp",
		"-faults", "crash=1@300+50", "-ckpt-every", "150")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "faults        :") || !strings.Contains(stdout, "crashes=1") {
		t.Fatalf("missing fault accounting in output:\n%s", stdout)
	}
}

// TestNoRecoverReportsNA: stripping the restart must leave the crashed
// worker dead and the run non-convergent, reported as NA rather than an
// error or a wrong answer.
func TestNoRecoverReportsNA(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-dataset", "HW", "-scale", "0.05", "-app", "sssp",
		"-faults", "crash=1@300+50", "-no-recover")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "result: NA") || !strings.Contains(stdout, "never recovered") {
		t.Fatalf("want NA result for unrecovered crash, got:\n%s", stdout)
	}
}

// TestLiveSoakLocalRecovery drives the -recovery/-soak path end to end: a
// crash-and-restart plan under localized recovery, three iterations, every
// run verified against the sequential reference, and no epoch bumps.
func TestLiveSoakLocalRecovery(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-dataset", "HW", "-scale", "0.05", "-app", "sssp", "-n", "4",
		"-recovery", "local", "-soak", "3", "-faults", "crash=1@u40+10")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s\nstdout: %s", code, stderr, stdout)
	}
	if !strings.Contains(stdout, "soak summary  : 3/3 correct") {
		t.Fatalf("missing soak summary in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[local]") || !strings.Contains(stdout, "epochs=0") {
		t.Fatalf("soak lines missing local-recovery accounting:\n%s", stdout)
	}
}

// TestSimReportFlags: a plain sim run with both report sinks must print the
// text report to stdout and write parseable JSON to the file.
func TestSimReportFlags(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "attr.json")
	code, stdout, stderr := runCLI(
		"-dataset", "HW", "-scale", "0.05", "-app", "sssp", "-n", "4",
		"-report", "-", "-report-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "straggler attribution: window") ||
		!strings.Contains(stdout, "straggler: worker ") {
		t.Fatalf("stdout missing attribution report:\n%s", stdout)
	}
	if !strings.Contains(stdout, "report-json   : "+jsonPath) {
		t.Fatalf("stdout missing report-json confirmation line:\n%s", stdout)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Workers   []struct{ Coverage float64 } `json:"workers"`
		Straggler int                          `json:"straggler"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if len(doc.Workers) != 4 {
		t.Fatalf("report has %d workers, want 4", len(doc.Workers))
	}
	for i, w := range doc.Workers {
		if w.Coverage < 0.95 {
			t.Errorf("worker %d coverage %.4f < 0.95", i, w.Coverage)
		}
	}
}

// TestServeTelemetry: -serve on an ephemeral port must announce the endpoint
// and stay compatible with both drivers (sim here, live soak elsewhere).
func TestServeTelemetry(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-dataset", "HW", "-scale", "0.05", "-app", "wcc",
		"-serve", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "telemetry     : http://127.0.0.1:") ||
		!strings.Contains(stdout, "/metrics") {
		t.Fatalf("stdout missing telemetry endpoint line:\n%s", stdout)
	}
}

// TestLiveSoakGlobalRecovery: the same plan under the default global
// strategy still verifies; -recovery alone (no -soak) runs once.
func TestLiveSoakGlobalRecovery(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-dataset", "HW", "-scale", "0.05", "-app", "wcc", "-n", "4",
		"-recovery", "global", "-faults", "crash=0@u40+10")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s\nstdout: %s", code, stderr, stdout)
	}
	if !strings.Contains(stdout, "soak summary  : 1/1 correct") {
		t.Fatalf("missing soak summary in output:\n%s", stdout)
	}
}
