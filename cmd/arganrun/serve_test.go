package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"argan/internal/serve"
)

// syncBuffer lets the test read runServe's stdout while the server is
// still writing to it from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var serveAddrRe = regexp.MustCompile(`job service   : http://([^/]+)/api/jobs`)

// TestServeModeLifecycle drives the full resident-service lifecycle through
// the CLI entry point: start, preload, submit over HTTP, SIGTERM, graceful
// drain with the in-flight job finished, drain artifact written, exit 0.
func TestServeModeLifecycle(t *testing.T) {
	drainOut := filepath.Join(t.TempDir(), "drain.json")
	var stdout, stderr syncBuffer
	stop := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- runServe([]string{
			"-addr", "127.0.0.1:0", "-cores", "2", "-queue", "4",
			"-mem-budget", "32m", "-preload", "HW@0.02",
			"-drain-out", drainOut,
		}, &stdout, &stderr, stop)
	}()

	// Wait for the bound address to appear on stdout.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := serveAddrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(stdout.String(), "preloaded     : HW@0.02") {
		t.Fatalf("preload line missing:\n%s", stdout.String())
	}

	c := &serve.Client{Base: base}
	id, err := c.Submit(serve.JobSpec{App: "sssp", Dataset: "HW", Scale: 0.02, Workers: 2, Source: 1, Verify: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, err := c.WaitTerminal(id, 30*time.Second); err != nil || st.State != serve.StateDone {
		t.Fatalf("job: %+v err %v", st, err)
	}
	// Leave a slow job in flight so the drain has real work to wait for.
	slowID, err := c.Submit(serve.JobSpec{
		App: "sssp", Dataset: "HW", Scale: 0.02, Workers: 2, Source: 1,
		CheckEvery: 1, Faults: "slow=0@0:400:10; slow=1@0:400:10",
	})
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}

	stop <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("drain never completed; stdout:\n%s", stdout.String())
	}

	out := stdout.String()
	for _, want := range []string{"draining (no new admissions)", "drained       : "} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(drainOut)
	if err != nil {
		t.Fatalf("drain artifact: %v", err)
	}
	var stats serve.DrainStats
	if err := json.Unmarshal(blob, &stats); err != nil {
		t.Fatalf("drain artifact JSON: %v\n%s", err, blob)
	}
	if stats.Forced != 0 || stats.Completed != 2 {
		t.Fatalf("drain stats: %+v (slow job %s should have finished)", stats, slowID)
	}
}

var churnLineRe = regexp.MustCompile(`churn         : HW@0\.02 v(\d+) -> v(\d+)`)

// TestServeModeChurn drives the evolving-dataset loop through the CLI: the
// -churn writer bumps the dataset version in the background while a job
// submitted over HTTP pins whatever version is current, completes verified,
// and reports it.
func TestServeModeChurn(t *testing.T) {
	var stdout, stderr syncBuffer
	stop := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- runServe([]string{
			"-addr", "127.0.0.1:0", "-cores", "2",
			"-churn", "HW@0.02", "-churn-every", "60ms", "-churn-ops", "8",
		}, &stdout, &stderr, stop)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := serveAddrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Wait for at least two applied batches so the version chain is real.
	deadline = time.Now().Add(15 * time.Second)
	for len(churnLineRe.FindAllString(stdout.String(), -1)) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("churn batches never applied; stdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	c := &serve.Client{Base: base}
	id, err := c.Submit(serve.JobSpec{App: "sssp", Dataset: "HW", Scale: 0.02, Workers: 2, Source: 1, Verify: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, err := c.WaitTerminal(id, 30*time.Second); err != nil || st.State != serve.StateDone {
		t.Fatalf("job under churn: %+v err %v", st, err)
	}
	res, err := c.Result(id)
	if err != nil || res.Wrong != 0 {
		t.Fatalf("result under churn: %+v err %v", res, err)
	}
	if res.Version < 2 {
		t.Fatalf("job pinned version %d, want >= 2 after two churn batches", res.Version)
	}
	ds, err := c.Datasets()
	if err != nil || len(ds) != 1 || ds[0].Version < 2 {
		t.Fatalf("datasets under churn: %+v err %v", ds, err)
	}

	stop <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never completed under churn")
	}
}

// TestServeModeBadFlags: flag and startup failures keep the conventional
// exit codes (2 parse, 1 startup) and never hang on the stop channel.
func TestServeModeBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	stop := make(chan os.Signal)
	if code := runServe([]string{"-no-such-flag"}, &stdout, &stderr, stop); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := runServe([]string{"-mem-budget", "lots"}, &stdout, &stderr, stop); code != 2 {
		t.Fatalf("bad budget: exit %d", code)
	}
	if code := runServe([]string{"-preload", "NOPE@1"}, &stdout, &stderr, stop); code != 1 {
		t.Fatalf("bad preload: exit %d", code)
	}
	if code := runServe([]string{"-preload", "HW@zero"}, &stdout, &stderr, stop); code != 2 {
		t.Fatalf("bad preload scale: exit %d", code)
	}
	if code := runServe([]string{"-addr", "256.0.0.1:bad"}, &stdout, &stderr, stop); code != 1 {
		t.Fatalf("bad addr: exit %d", code)
	}
	if code := runServe([]string{"-churn", "HW@zero"}, &stdout, &stderr, stop); code != 2 {
		t.Fatalf("bad churn scale: exit %d", code)
	}
	if code := runServe([]string{"-churn", "NOPE@1"}, &stdout, &stderr, stop); code != 1 {
		t.Fatalf("bad churn dataset: exit %d", code)
	}
}
