package main

// Crash-durability drills for the resident service binary: the kill -9
// restart soak (real process, real SIGKILL, torn WAL tail, exact-version
// resume with a warm first job) and the churn-drain regression that pins
// the writer's clean stop on SIGTERM.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"argan/internal/fault"
	"argan/internal/graph"
	"argan/internal/serve"
)

// TestServeChurnDrainClean is the regression for the churn writer racing
// the drain latch: with a 1ms churn period, a SIGTERM lands between a tick
// firing and its batch being applied essentially every run. The writer
// must stop silently — no "churn:" errors on stderr — and exit 0.
func TestServeChurnDrainClean(t *testing.T) {
	for i := 0; i < 3; i++ {
		var stdout, stderr syncBuffer
		stop := make(chan os.Signal, 1)
		exit := make(chan int, 1)
		go func() {
			exit <- runServe([]string{
				"-addr", "127.0.0.1:0", "-cores", "2",
				"-churn", "HW@0.02", "-churn-every", "1ms", "-churn-ops", "8",
				"-state-dir", t.TempDir(), "-snapshot-every", "0",
			}, &stdout, &stderr, stop)
		}()

		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(stdout.String(), "churn         : HW@0.02 v") {
			if time.Now().After(deadline) {
				t.Fatalf("churn never started; stdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
			}
			time.Sleep(time.Millisecond)
		}
		stop <- syscall.SIGTERM
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("exit code = %d; stderr:\n%s", code, stderr.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("drain never completed under 1ms churn")
		}
		if s := stderr.String(); strings.Contains(s, "churn:") {
			t.Fatalf("churn writer reported errors during drain:\n%s", s)
		}
	}
}

// TestServeKillNineRestartSoak is the acceptance drill from the durability
// work: run the real binary with -state-dir, storm it with mutations and
// jobs, SIGKILL it mid-flight, tear the WAL tail the way a crashed append
// would, restart, and require byte-exact resume — the version matches the
// last acknowledged mutation, recovery reports the torn tail truncated,
// and the first post-restart job re-converges incrementally, verified.
//
// RESTART_RACE=1 builds the binary with -race; RESTART_STATS_OUT=FILE
// saves the post-restart /api/service JSON as a CI artifact.
func TestServeKillNineRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("real-binary restart soak skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "arganrun")
	buildArgs := []string{"build"}
	if os.Getenv("RESTART_RACE") == "1" {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, "argan/cmd/arganrun")
	if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
		t.Fatalf("go %v: %v\n%s", buildArgs, err, out)
	}

	stateDir := filepath.Join(tmp, "state")
	startServe := func() (*exec.Cmd, *syncBuffer, string) {
		var stdout syncBuffer
		cmd := exec.Command(bin, "serve",
			"-addr", "127.0.0.1:0", "-cores", "4",
			"-preload", "HW@0.05",
			"-state-dir", stateDir, "-snapshot-every", "150ms")
		cmd.Stdout = &stdout
		cmd.Stderr = &stdout
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", bin, err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if m := serveAddrRe.FindStringSubmatch(stdout.String()); m != nil {
				return cmd, &stdout, "http://" + m[1]
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never announced its address; output:\n%s", stdout.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	probe := func(c *serve.Client, app string) *serve.JobResult {
		t.Helper()
		id, err := c.Submit(serve.JobSpec{
			App: app, Dataset: "HW", Scale: 0.05, Workers: 2, Source: 1, Verify: true,
		})
		if err != nil {
			t.Fatalf("%s submit: %v", app, err)
		}
		if st, err := c.WaitTerminal(id, 60*time.Second); err != nil || st.State != serve.StateDone {
			t.Fatalf("%s: %+v err %v", app, st, err)
		}
		res, err := c.Result(id)
		if err != nil {
			t.Fatalf("%s result: %v", app, err)
		}
		if res.Wrong != 0 {
			t.Fatalf("%s diverged: %d wrong of %d", app, res.Wrong, res.Vertices)
		}
		return res
	}

	cmd, _, base := startServe()
	defer func() { _ = cmd.Process.Kill() }()
	c := &serve.Client{Base: base, Retries: 10, Backoff: 50 * time.Millisecond}

	// Converge a pr fixpoint at v0 and wait for the snapshot loop to
	// persist it, so the restart has warm state older than the WAL head —
	// the reseed-plus-bridge path, not the trivial same-version one.
	probe(c, "pr")
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Stats()
		if err == nil && st.Snapshots >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never flushed: stats %+v err %v", st, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Mutation + job storm: six acknowledged batches interleaved with sssp
	// jobs. Durable-on-ack means every version the client saw acknowledged
	// must survive the SIGKILL.
	var lastVersion uint64
	for i := 0; i < 6; i++ {
		mr, err := c.Mutate("HW", serve.MutateRequest{
			Scale: 0.05,
			Inserts: []graph.Edge{
				{Src: 1, Dst: graph.VID(3 + i), W: 1.5 + float64(i)},
				{Src: 2, Dst: graph.VID(4 + i), W: 2.5 + float64(i)},
			},
		})
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		lastVersion = mr.NewVersion
		if i%2 == 1 {
			probe(c, "sssp")
		}
	}
	if lastVersion != 6 {
		t.Fatalf("storm ended at v%d, want v6", lastVersion)
	}

	// SIGKILL: no drain, no final snapshot, no WAL close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	_ = cmd.Wait()

	// A crashed append leaves a torn frame past the committed tail; recovery
	// must cut it without losing any acknowledged record.
	walPath := filepath.Join(stateDir, "HW@0.05", "wal.log")
	if _, err := os.Stat(walPath); err != nil {
		t.Fatalf("wal missing after kill: %v", err)
	}
	if err := fault.InjectDisk(walPath, fault.DiskTornTail, 42); err != nil {
		t.Fatalf("InjectDisk: %v", err)
	}

	cmd2, out2, base2 := startServe()
	defer func() { _ = cmd2.Process.Kill() }()
	c2 := &serve.Client{Base: base2, Retries: 10, Backoff: 50 * time.Millisecond}

	if s := out2.String(); !strings.Contains(s, "recovered     : 1 datasets") ||
		!strings.Contains(s, "torn tail truncated") {
		t.Fatalf("recovery banner missing or wrong:\n%s", s)
	}
	infos, err := c2.Datasets()
	if err != nil || len(infos) != 1 {
		t.Fatalf("datasets after restart: %+v err %v", infos, err)
	}
	if infos[0].Version != lastVersion {
		t.Fatalf("resumed at v%d, want the last acknowledged v%d", infos[0].Version, lastVersion)
	}
	st, err := c2.Stats()
	if err != nil || st.Recovery == nil {
		t.Fatalf("stats after restart: %+v err %v", st, err)
	}
	if st.Recovery.Records != int(lastVersion) || !st.Recovery.TruncatedTail {
		t.Fatalf("recovery stats = %+v, want %d records with the torn tail truncated", st.Recovery, lastVersion)
	}
	if st.Recovery.WarmReseeded < 1 {
		t.Fatalf("recovery stats = %+v, want at least one warm fixpoint reseeded", st.Recovery)
	}

	// The acceptance gate: the first post-restart job must be incremental
	// from the reseeded fixpoint and verified against the reference.
	res := probe(c2, "pr")
	if !res.Incremental || res.Version != lastVersion {
		t.Fatalf("first post-restart job: incremental=%v version=%d (fallback %q), want warm v%d",
			res.Incremental, res.Version, res.Fallback, lastVersion)
	}

	// Save the post-restart service stats as the CI artifact.
	if dst := os.Getenv("RESTART_STATS_OUT"); dst != "" {
		resp, err := http.Get(base2 + "/api/service")
		if err != nil {
			t.Fatalf("fetch /api/service: %v", err)
		}
		blob, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read /api/service: %v", err)
		}
		var pretty json.RawMessage = blob
		enc, _ := json.MarshalIndent(pretty, "", "  ")
		if err := os.WriteFile(dst, append(enc, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", dst, err)
		}
		fmt.Fprintf(os.Stderr, "restart soak: recovery stats saved to %s\n", dst)
	}

	// Clean SIGTERM exit to prove the recovered service drains normally.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered service exited dirty: %v\n%s", err, out2.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("recovered service never drained:\n%s", out2.String())
	}
}
