// Command arganbench regenerates the paper's tables and figures.
//
// Usage:
//
//	arganbench -exp fig6a            # one experiment
//	arganbench -exp all              # everything, paper order
//	arganbench -exp all -full        # paper-scale stand-ins (slow)
//	arganbench -list                 # available experiment ids
//
// Extensions beyond the paper carry machine-readable results via -json,
// e.g. the live hot-path baseline and the recovery-strategy comparison:
//
//	arganbench -exp perf -json BENCH_perf.json
//	arganbench -exp recovery -json BENCH_recovery.json
//	arganbench -exp incremental -json BENCH_incremental.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"argan/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig4a..c, fig5, fig6a..l) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	full := flag.Bool("full", false, "run at the full reduced-dataset scale (slow)")
	scale := flag.Float64("scale", 0, "override dataset scale (0 = per -full/-quick default)")
	workers := flag.String("workers", "", "comma-separated worker counts, e.g. 16,32,64,128")
	queries := flag.Int("queries", 0, "query repetitions per point (paper uses 5)")
	jsonPath := flag.String("json", "", "write machine-readable results here (experiments that support it, e.g. -exp perf or -exp recovery)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var o bench.Options
	if *full {
		o = bench.Full(os.Stdout)
	} else {
		o = bench.Quick(os.Stdout)
	}
	if *scale > 0 {
		o.Scale = *scale
	}
	if *queries > 0 {
		o.Queries = *queries
	}
	o.JSONPath = *jsonPath
	if *workers != "" {
		o.Workers = nil
		for _, f := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fatal("bad -workers value %q", f)
			}
			o.Workers = append(o.Workers, n)
		}
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			fmt.Printf("\n### %s — %s\n", e.ID, e.Title)
			if err := e.Run(o); err != nil {
				fatal("%s: %v", e.ID, err)
			}
		}
		return
	}
	e, err := bench.ByID(*exp)
	if err != nil {
		fatal("%v (try -list)", err)
	}
	if err := e.Run(o); err != nil {
		fatal("%s: %v", e.ID, err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arganbench: "+format+"\n", args...)
	os.Exit(1)
}
