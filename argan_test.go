package argan

import (
	"math"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := NewBuilder(4, false).
		AddWeighted(0, 1, 2).
		AddWeighted(1, 2, 2).
		AddWeighted(0, 2, 5).
		MustBuild()
	env := Env{Workers: 2}
	res, err := SSSP(g, 0, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4, math.Inf(1)}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
	if res.Metrics.RespTime <= 0 || !res.Metrics.Converged {
		t.Fatalf("bad metrics: %+v", res.Metrics)
	}
}

func TestPublicAPIModesAgree(t *testing.T) {
	g := PowerLaw(GenConfig{N: 500, M: 3000, Directed: true, Seed: 61, MaxW: 10})
	env := Env{Workers: 4}
	ref, err := SSSP(g, 0, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeBSP, ModeAAP, ModeAPGC, ModeAPVC} {
		res, err := SSSP(g, 0, env, env.Config(mode, AdaptFixed))
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.Values {
			if res.Values[v] != ref.Values[v] {
				t.Fatalf("%v: dist[%d] differs", mode, v)
			}
		}
	}
}

func TestPublicAPIApplications(t *testing.T) {
	g := KnowledgeBase(GenConfig{N: 400, M: 2000, Seed: 62, Labels: 8})
	env := Env{Workers: 3}
	cfg := env.DefaultConfig()

	if _, err := Color(g, env, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := WCC(g, env, cfg); err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, 1e-3, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pr.Values {
		if r < 0.1499 {
			t.Fatalf("rank below teleport mass: %v", r)
		}
	}
	pat := RandomPattern(g, 4, 5, 9)
	if _, err := Simulation(g, pat, env, cfg); err != nil {
		t.Fatal(err)
	}

	gu := Uniform(GenConfig{N: 300, M: 1500, Directed: false, Seed: 63})
	if _, err := CoreDecomposition(gu, env, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := BFS(gu, 0, env, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPILiveDrivers(t *testing.T) {
	g := PowerLaw(GenConfig{N: 800, M: 6000, Directed: true, Seed: 64, MaxW: 10})
	env := Env{Workers: 4}
	sim, err := SSSP(g, 0, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dist, lm, err := LiveSSSP(g, 0, 4, LiveConfig{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := range dist {
		if dist[v] != sim.Values[v] {
			t.Fatalf("live dist[%d] = %v, sim %v", v, dist[v], sim.Values[v])
		}
	}
	if lm.WallTime <= 0 {
		t.Fatal("no wall time recorded")
	}
	if _, _, err := LivePageRank(g, 1e-3, 4, LiveConfig{Mode: ModeGAP}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	if len(DatasetNames()) != 6 {
		t.Fatalf("datasets: %v", DatasetNames())
	}
	g, err := LoadDataset("HW", 0.02)
	if err != nil || g.Directed() {
		t.Fatalf("HW stand-in wrong: %v %v", g, err)
	}
}

func TestPublicAPIMST(t *testing.T) {
	g := Uniform(GenConfig{N: 200, M: 700, Directed: false, Seed: 65, MaxW: 40})
	env := Env{Workers: 4}
	edges, total, rounds, err := MST(g, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 || total <= 0 || rounds < 1 {
		t.Fatalf("bad MST: %d edges, total %v, %d rounds", len(edges), total, rounds)
	}
	// A spanning forest has |V| - #components edges.
	comps := map[uint32]bool{}
	wcc, err := WCC(g, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range wcc.Values {
		comps[c] = true
	}
	if want := g.NumVertices() - len(comps); len(edges) != want {
		t.Fatalf("forest has %d edges, want %d", len(edges), want)
	}
}

func TestPublicAPIWelshPowell(t *testing.T) {
	g := PowerLaw(GenConfig{N: 600, M: 6000, Directed: false, Seed: 66})
	env := Env{Workers: 4}
	plain, err := Color(g, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rg, perm := RelabelByDegree(g)
	wp, err := Color(rg, env, env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	countColors := func(cs []int32) int {
		max := int32(0)
		for _, c := range cs {
			if c > max {
				max = c
			}
		}
		return int(max) + 1
	}
	// Welsh–Powell (degree-ordered greedy) is a heuristic: usually at least
	// as good as arbitrary-order greedy, never wildly worse.
	if countColors(wp.Values) > countColors(plain.Values)+2 {
		t.Fatalf("Welsh-Powell used %d colors, plain greedy %d",
			countColors(wp.Values), countColors(plain.Values))
	}
	// The relabeled coloring must still be proper under the permutation.
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(VID(v)) {
			if u != VID(v) && wp.Values[perm[v]] == wp.Values[perm[u]] {
				t.Fatalf("conflict on edge (%d,%d)", v, u)
			}
		}
	}
}
