// Package argan is the public API of Argan-Go, a reproduction of "Graph
// Computation with Adaptive Granularity" (ICDE 2024): a parallel graph
// engine built on the ACE programming model (graph-centric computation
// decomposed into per-vertex update functions) and the GAP parallel model
// (asynchronous execution whose computation/communication granularity is
// adjusted at runtime by maximizing computation effectiveness).
//
// # Quick start
//
//	g := argan.PowerLaw(argan.GenConfig{N: 100_000, M: 1_400_000, Directed: true, Seed: 1, MaxW: 100})
//	env := argan.Env{Workers: 16}
//	res, err := argan.SSSP(g, 0, env, env.DefaultConfig())
//	// res.Values[v] is the distance of v; res.Metrics carries the run's
//	// response time, staleness (T_w), communication (T_c) and adjustment
//	// (T_a) costs.
//
// Two drivers execute the same programs: the deterministic virtual-time
// cluster simulator (used by every experiment; see RunSim-based runners
// here) and a goroutine-per-worker live driver (LiveSSSP and friends).
//
// The engine, programming model, algorithms, baseline systems and the
// benchmark harness that regenerates every table and figure of the paper
// live under internal/; this package re-exports the surface a downstream
// user needs.
package argan

import (
	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/fixpoint"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/netsim"
	"argan/internal/obs"
	"argan/internal/partition"
)

// Graph construction and generation.
type (
	// Graph is an immutable CSR graph; build one with NewBuilder or a
	// generator.
	Graph = graph.Graph
	// Builder accumulates edges for a Graph.
	Builder = graph.Builder
	// VID is a vertex identifier (dense, 0-based).
	VID = graph.VID
	// GenConfig parameterizes the synthetic generators.
	GenConfig = graph.GenConfig
	// Fragment is one worker's share of a partitioned graph.
	Fragment = graph.Fragment
)

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// Generators (see internal/graph for details).
var (
	PowerLaw      = graph.PowerLaw
	Uniform       = graph.Uniform
	RMAT          = graph.RMAT
	Grid          = graph.Grid
	KnowledgeBase = graph.KnowledgeBase
	Chain         = graph.Chain
	Star          = graph.Star
	LoadDataset   = graph.LoadDataset
	DatasetNames  = graph.DatasetNames
	ReadEdgeList  = graph.ReadEdgeList
	WriteEdgeList = graph.WriteEdgeList
	ReadBinary    = graph.ReadBinary
	WriteBinary   = graph.WriteBinary
	// RelabelByDegree reorders vertex ids in descending degree order; with
	// it the id-priority coloring is exactly Welsh–Powell.
	RelabelByDegree = graph.RelabelByDegree
	// ComputeStats measures size, degree skew, tail exponent and giant
	// component of a graph.
	ComputeStats = graph.ComputeStats
)

// GraphStats summarizes structural graph properties.
type GraphStats = graph.Stats

// Partitioners.
type (
	// Partitioner assigns vertices to workers.
	Partitioner = partition.Partitioner
	// HashPartitioner spreads vertices by hashed id (the default).
	HashPartitioner = partition.Hash
	// RangePartitioner slices the id space contiguously.
	RangePartitioner = partition.Range
	// GreedyPartitioner is the LDG-style streaming partitioner.
	GreedyPartitioner = partition.Greedy
)

// Engine configuration.
type (
	// Env describes the (simulated) cluster.
	Env = core.Env
	// Config parameterizes one engine run.
	Config = gap.Config
	// Metrics is the accounting of a run (response time, T_w, T_c, T_a, φ).
	Metrics = gap.Metrics
	// Mode selects the parallel model.
	Mode = gap.Mode
	// AdaptPolicy selects the granularity-adjustment algorithm.
	AdaptPolicy = adapt.Policy
	// Query carries per-run inputs (source vertex, threshold, pattern).
	Query = ace.Query
	// CostModel is the interconnect cost function T_B.
	CostModel = netsim.CostModel
)

// Parallel models (BSP, AP and AAP are special cases of GAP, §II-B).
const (
	ModeGAP         = gap.ModeGAP
	ModeBSP         = gap.ModeBSP
	ModeBSPVC       = gap.ModeBSPVC
	ModeAPGC        = gap.ModeAPGC
	ModeAPVC        = gap.ModeAPVC
	ModeAAP         = gap.ModeAAP
	ModePowerSwitch = gap.ModePowerSwitch
)

// Granularity-adjustment policies (§III).
const (
	AdaptFixed = adapt.PolicyFixed
	AdaptGA    = adapt.PolicyGA
	AdaptGAwD  = adapt.PolicyGAwD
)

// Typed results.
type (
	// FloatResult is a per-vertex float64 answer plus metrics.
	FloatResult = core.Result[float64]
	// IntResult is a per-vertex int32 answer plus metrics.
	IntResult = core.Result[int32]
	// SimSet is graph simulation's per-vertex pattern bitmask.
	SimSet = algorithms.SimSet
)

// Built-in applications under the virtual-time driver.
var (
	// SSSP computes single-source shortest paths (parallelized Dijkstra).
	SSSP = core.SSSP
	// BFS computes hop distances.
	BFS = core.BFS
	// WCC labels weakly connected components.
	WCC = core.WCC
	// Color computes a greedy coloring (parallelized Welsh–Powell).
	Color = core.Color
	// PageRank computes Δ-based accumulative PageRank.
	PageRank = core.PageRank
	// CoreDecomposition computes per-vertex coreness.
	CoreDecomposition = core.CoreDecomposition
	// Simulation computes the graph-simulation relation of a pattern.
	Simulation = core.Simulation
	// RandomPattern samples a labeled query pattern from a graph.
	RandomPattern = algorithms.RandomPattern
)

// MSTEdge is one selected minimum-spanning-forest edge.
type MSTEdge = algorithms.MSTEdge

// MST computes the minimum spanning forest with parallel Borůvka: one ACE
// query per round over the environment's fragments, hooking at the
// coordinator. It returns the forest edges, total weight and round count.
func MST(g *Graph, env Env, cfg Config) ([]MSTEdge, float64, int, error) {
	frags, err := env.Fragments(g)
	if err != nil {
		return nil, 0, 0, err
	}
	return core.MST(g, frags, cfg)
}

// The ACE programming model, re-exported so downstream users can write
// their own programs (§IV: model the batch algorithm as fixpoint
// iterations of per-vertex update functions, and the engine runs it at any
// granularity under any parallel model).
type (
	// Program is a user-defined ACE program over status variables of type V.
	Program[V any] interface{ ace.Program[V] }
	// Ctx is the engine-provided context update functions work through.
	Ctx[V any] = ace.Ctx[V]
	// Factory builds one program instance per worker.
	Factory[V any] func() Program[V]
	// Category classifies the staleness behaviour (CategoryI/II/III).
	Category = ace.Category
	// DepKind declares the inputs Y_xv of the update function.
	DepKind = ace.DepKind
)

// Staleness categories (§III-C) and dependency kinds for user programs.
const (
	CategoryI   = ace.CategoryI
	CategoryII  = ace.CategoryII
	CategoryIII = ace.CategoryIII

	DepIn   = ace.DepIn
	DepOut  = ace.DepOut
	DepSelf = ace.DepSelf
	DepBoth = ace.DepBoth
)

// Run executes a user-defined ACE program over g under the virtual-time
// driver, returning per-vertex outputs (indexed by global id) and metrics.
func Run[V any](g *Graph, env Env, cfg Config, factory Factory[V], q Query) ([]V, Metrics, error) {
	frags, err := env.Fragments(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	res, err := gap.RunSim(frags, func() ace.Program[V] { return factory() }, q, cfg)
	if err != nil {
		return nil, Metrics{}, err
	}
	return res.Values, res.Metrics, nil
}

// RunSequential executes a user-defined ACE program sequentially over the
// whole graph — the §IV batch algorithm A the program was derived from.
// Use it as the ground truth when validating a new program.
func RunSequential[V any](g *Graph, factory Factory[V], q Query) ([]V, error) {
	out, _, err := fixpoint.Run(g, func() ace.Program[V] { return factory() }, q)
	return out, err
}

// Tracer is the observability hook accepted by Config.Tracer and
// LiveConfig.Tracer; Recorder is the ring-buffered implementation that
// exports Chrome traces (Perfetto-loadable) and CSV time series and serves
// live progress snapshots. See internal/obs for the event model.
type (
	Tracer       = obs.Tracer
	Recorder     = obs.Recorder
	TraceStatus  = obs.Status
	WorkerStatus = obs.WorkerStatus
)

// NewRecorder builds a trace recorder for the given worker count (workers
// beyond it are added lazily); eventsPerWorker <= 0 selects the default
// per-worker ring capacity.
func NewRecorder(workers, eventsPerWorker int) *Recorder {
	return obs.NewRecorder(workers, eventsPerWorker)
}

// LiveConfig parameterizes the goroutine-based driver.
type LiveConfig = gap.LiveConfig

// LiveMetrics summarizes a live (goroutine) run.
type LiveMetrics = gap.LiveMetrics

// LiveSSSP runs SSSP under the goroutine-per-worker driver.
func LiveSSSP(g *Graph, src VID, workers int, cfg LiveConfig) ([]float64, *LiveMetrics, error) {
	frags, err := (Env{Workers: workers}).Fragments(g)
	if err != nil {
		return nil, nil, err
	}
	res, m, err := gap.RunLive(frags, algorithms.NewSSSP(), Query{Source: src}, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.Values, m, nil
}

// LivePageRank runs Δ-PageRank under the goroutine-per-worker driver.
func LivePageRank(g *Graph, eps float64, workers int, cfg LiveConfig) ([]float64, *LiveMetrics, error) {
	frags, err := (Env{Workers: workers}).Fragments(g)
	if err != nil {
		return nil, nil, err
	}
	res, m, err := gap.RunLive(frags, algorithms.NewPageRank(), Query{Eps: eps}, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.Values, m, nil
}
