package algorithms

import (
	"math"
	"sort"

	"argan/internal/ace"
	"argan/internal/graph"
)

// Borůvka's minimum-spanning-forest algorithm (Category II in the paper's
// Table III). The parallel version composes one ACE query per Borůvka
// round: within each round, every component agrees on its minimum-weight
// outgoing edge by a label-propagation fixpoint over the component's own
// edges (components are connected, so the min can travel along tree paths),
// then the coordinator hooks the selected edges and re-labels — exactly the
// coordinator/GlobalEval division of labor of §II-A.

// MSTEdge is one selected forest edge.
type MSTEdge struct {
	U, V graph.VID
	W    float64
}

// SeqMST computes the minimum spanning forest of an undirected graph with
// sequential Borůvka and returns its edges sorted by (U,V) plus the total
// weight. Ties are broken by (w, min endpoint, max endpoint), making the
// result unique and comparable with the parallel version.
func SeqMST(g *graph.Graph) ([]MSTEdge, float64) {
	n := g.NumVertices()
	parent := make([]graph.VID, n)
	for i := range parent {
		parent[i] = graph.VID(i)
	}
	var find func(graph.VID) graph.VID
	find = func(v graph.VID) graph.VID {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	var out []MSTEdge
	total := 0.0
	for {
		best := map[graph.VID]MSTEdge{}
		for v := 0; v < n; v++ {
			cv := find(graph.VID(v))
			adj, ws := g.OutNeighbors(graph.VID(v)), g.OutWeights(graph.VID(v))
			for i, u := range adj {
				if find(u) == cv {
					continue
				}
				e := canonEdge(graph.VID(v), u, ws[i])
				if b, ok := best[cv]; !ok || LessMSTEdge(e, b) {
					best[cv] = e
				}
			}
		}
		if len(best) == 0 {
			break
		}
		added := false
		for _, e := range best {
			if find(e.U) == find(e.V) {
				continue // both sides picked the same edge
			}
			parent[find(e.U)] = find(e.V)
			out = append(out, e)
			total += e.W
			added = true
		}
		if !added {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out, total
}

func canonEdge(a, b graph.VID, w float64) MSTEdge {
	if a > b {
		a, b = b, a
	}
	return MSTEdge{a, b, w}
}

// lessEdge is the deterministic tie-broken edge order.
func LessMSTEdge(a, b MSTEdge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// MSTVal is the status variable of one Borůvka round: the vertex's current
// component label and the best outgoing edge its component has seen so far.
type MSTVal struct {
	Comp graph.VID
	Edge MSTEdge // Edge.W = +Inf when none
}

// mstRound is the per-round ACE program: vertices push their component's
// best outgoing edge to same-component neighbors until every member agrees
// (a min-propagation fixpoint along the component's internal edges).
type mstRound struct {
	f    *graph.Fragment
	comp []graph.VID // global component labels, read-only this round
}

func (p *mstRound) Name() string           { return "mst-round" }
func (p *mstRound) Category() ace.Category { return ace.CategoryII }
func (p *mstRound) Deps() ace.DepKind      { return ace.DepSelf }
func (p *mstRound) Setup(f *graph.Fragment, _ ace.Query) {
	p.f = f
}

func (p *mstRound) InitValue(f *graph.Fragment, local uint32, _ ace.Query) (MSTVal, bool) {
	g := f.Global(local)
	v := MSTVal{Comp: p.comp[g], Edge: MSTEdge{W: math.Inf(1)}}
	if !f.IsOwned(local) {
		return v, false
	}
	// Local candidate: the lightest incident edge leaving the component.
	adj, ws := f.OutNeighbors(local), f.OutWeights(local)
	for i, lu := range adj {
		u := f.Global(lu)
		if p.comp[u] == v.Comp {
			continue
		}
		e := canonEdge(g, u, ws[i])
		if LessMSTEdge(e, v.Edge) {
			v.Edge = e
		}
	}
	return v, true
}

func (p *mstRound) Update(ctx *ace.Ctx[MSTVal], local uint32) {
	v := ctx.Get(local)
	if math.IsInf(v.Edge.W, 1) {
		return
	}
	// Push the candidate to same-component neighbors so the whole
	// component converges to one minimum.
	for _, lu := range p.f.OutNeighbors(local) {
		if ctx.Get(lu).Comp == v.Comp {
			ctx.Send(lu, v)
		}
	}
}

func (p *mstRound) Aggregate(cur, in MSTVal) (MSTVal, bool) {
	if in.Comp == cur.Comp && LessMSTEdge(in.Edge, cur.Edge) {
		cur.Edge = in.Edge
		return cur, true
	}
	return cur, false
}

func (p *mstRound) Equal(a, b MSTVal) bool { return a == b }
func (p *mstRound) Delta(a, b MSTVal) float64 {
	if a == b {
		return 0
	}
	return 1
}
func (p *mstRound) Size(MSTVal) int                                  { return 24 }
func (p *mstRound) Output(ctx *ace.Ctx[MSTVal], local uint32) MSTVal { return ctx.Get(local) }

// NewMSTRound builds the factory for one Borůvka round's ACE program over
// the current component labeling (read-only during the round).
func NewMSTRound(comp []graph.VID) ace.Factory[MSTVal] {
	return func() ace.Program[MSTVal] { return &mstRound{comp: comp} }
}
