package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"argan/internal/graph"
)

func TestSeqSSSPSmall(t *testing.T) {
	g := graph.NewBuilder(5, true).
		AddWeighted(0, 1, 4).AddWeighted(0, 2, 1).
		AddWeighted(2, 1, 2).AddWeighted(1, 3, 1).
		AddWeighted(2, 3, 5).MustBuild()
	d := SeqSSSP(g, 0)
	want := []float64{0, 3, 1, 4, math.Inf(1)}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, d[v], want[v])
		}
	}
}

// Property: Dijkstra and queue-based Bellman-Ford agree on any graph with
// positive weights.
func TestSSSPVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.PowerLaw(graph.GenConfig{N: 120, M: 700, Directed: true, Seed: seed, MaxW: 9})
		a, b := SeqSSSP(g, 0), SeqBellmanFord(g, 0)
		for v := range a {
			if a[v] != b[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distance lower-bounds weighted distance scaled by min
// weight, and every BFS-reachable vertex is SSSP-reachable.
func TestBFSConsistentWithSSSP(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.PowerLaw(graph.GenConfig{N: 100, M: 500, Directed: true, Seed: seed})
		hops, dist := SeqBFS(g, 0), SeqSSSP(g, 0)
		for v := range hops {
			if (hops[v] >= 0) != !math.IsInf(dist[v], 1) {
				return false
			}
			if hops[v] >= 0 && dist[v] < float64(hops[v]) {
				return false // unit weights: dist >= hops
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: WCC labels are the minimum id of each component, and two
// endpoint of any edge share a label.
func TestWCCProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Uniform(graph.GenConfig{N: 90, M: 120, Directed: true, Seed: seed})
		cc := SeqWCC(g)
		for v := 0; v < g.NumVertices(); v++ {
			if cc[v] > graph.VID(v) {
				return false // label must not exceed own id
			}
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if cc[u] != cc[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SeqColor yields a proper coloring.
func TestSeqColorProper(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		g := graph.PowerLaw(graph.GenConfig{N: 100, M: 600, Directed: directed, Seed: seed})
		colors := SeqColor(g)
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if u != graph.VID(v) && colors[u] == colors[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		in   []int32
		want int32
	}{
		{nil, 0},
		{[]int32{0}, 0},
		{[]int32{5}, 1},
		{[]int32{1, 1, 1}, 1},
		{[]int32{3, 3, 3}, 3},
		{[]int32{5, 4, 3, 2, 1}, 3},
		{[]int32{9, 9, 9, 9}, 4},
	}
	for _, c := range cases {
		in := append([]int32{}, c.in...)
		if got := hIndex(in); got != c.want {
			t.Fatalf("hIndex(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: coreness values from peeling satisfy the defining property:
// in the subgraph induced by {v : core[v] >= k}, every vertex has degree
// >= k, for k = max coreness.
func TestSeqCoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.PowerLaw(graph.GenConfig{N: 80, M: 500, Directed: false, Seed: seed})
		core := SeqCore(g)
		var kmax int32
		for _, c := range core {
			if c > kmax {
				kmax = c
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			if core[v] != kmax {
				continue
			}
			deg := 0
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if core[u] >= kmax && u != graph.VID(v) {
					deg++
				}
			}
			if deg < int(kmax) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the graph-simulation relation is sound — every retained pattern
// vertex has all its pattern edges matched by some successor.
func TestSeqSimSound(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.KnowledgeBase(graph.GenConfig{N: 90, M: 400, Seed: seed, Labels: 5})
		pat := RandomPattern(g, 4, 5, seed+1)
		sim := SeqSim(g, pat)
		for v := 0; v < g.NumVertices(); v++ {
			m := sim[v]
			for q := 0; q < pat.NumVertices(); q++ {
				if m&(1<<q) == 0 {
					continue
				}
				if pat.Label(graph.VID(q)) != g.Label(graph.VID(v)) {
					return false
				}
				for _, qq := range pat.OutNeighbors(graph.VID(q)) {
					ok := false
					for _, u := range g.OutNeighbors(graph.VID(v)) {
						if sim[u]&(1<<qq) != 0 {
							ok = true
							break
						}
					}
					if !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPatternShape(t *testing.T) {
	g := graph.KnowledgeBase(graph.GenConfig{N: 200, M: 800, Seed: 4, Labels: 6})
	p := RandomPattern(g, 4, 5, 9)
	if p.NumVertices() != 4 {
		t.Fatalf("|V_Q| = %d", p.NumVertices())
	}
	if p.NumEdges() < 3 || p.NumEdges() > 5 {
		t.Fatalf("|E_Q| = %d, want 3..5", p.NumEdges())
	}
	if !p.Labeled() {
		t.Fatal("pattern must carry labels")
	}
}

func TestSeqPageRankMass(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 300, M: 2000, Directed: true, Seed: 5})
	pr := SeqPageRank(g, 1e-7)
	for v, r := range pr {
		if r < 1-Damping-1e-9 {
			t.Fatalf("rank[%d] = %v below teleport mass", v, r)
		}
	}
	// With a tighter threshold the ranks only grow (monotone accumulation).
	loose := SeqPageRank(g, 1e-3)
	for v := range pr {
		if loose[v] > pr[v]+1e-9 {
			t.Fatalf("rank[%d]: loose %v > tight %v", v, loose[v], pr[v])
		}
	}
}

func TestProgramMetadata(t *testing.T) {
	type meta interface {
		Name() string
	}
	progs := []meta{
		NewSSSP()(), NewBellmanFord()(), NewBFS()(), NewWCC()(),
		NewColor()(), NewNaiveColor()(), NewPageRank()(), NewCore()(), NewSim()(),
	}
	seen := map[string]bool{}
	for _, p := range progs {
		if p.Name() == "" || seen[p.Name()] {
			t.Fatalf("bad or duplicate program name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}
