package algorithms

import (
	"sort"
	"testing"

	"argan/internal/graph"
)

// kruskal is an independent MSF reference for cross-checking Borůvka.
func kruskal(g *graph.Graph) float64 {
	type e struct {
		u, v graph.VID
		w    float64
	}
	var edges []e
	for v := 0; v < g.NumVertices(); v++ {
		adj, ws := g.OutNeighbors(graph.VID(v)), g.OutWeights(graph.VID(v))
		for i, u := range adj {
			if u > graph.VID(v) {
				edges = append(edges, e{graph.VID(v), u, ws[i]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	parent := make([]graph.VID, g.NumVertices())
	for i := range parent {
		parent[i] = graph.VID(i)
	}
	var find func(graph.VID) graph.VID
	find = func(v graph.VID) graph.VID {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	total := 0.0
	for _, ed := range edges {
		if find(ed.u) != find(ed.v) {
			parent[find(ed.u)] = find(ed.v)
			total += ed.w
		}
	}
	return total
}

func mstGraph(seed int64) *graph.Graph {
	return graph.Uniform(graph.GenConfig{N: 200, M: 800, Directed: false, Seed: seed, MaxW: 50})
}

func TestSeqMSTMatchesKruskal(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := mstGraph(seed)
		_, totalB := SeqMST(g)
		totalK := kruskal(g)
		if diff := totalB - totalK; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: Borůvka %v != Kruskal %v", seed, totalB, totalK)
		}
	}
}

func TestSeqMSTForestShape(t *testing.T) {
	// Two disconnected triangles: the forest has 4 edges.
	b := graph.NewBuilder(6, false)
	b.AddWeighted(0, 1, 1).AddWeighted(1, 2, 2).AddWeighted(2, 0, 3)
	b.AddWeighted(3, 4, 1).AddWeighted(4, 5, 2).AddWeighted(5, 3, 3)
	g := b.MustBuild()
	edges, total := SeqMST(g)
	if len(edges) != 4 || total != 6 {
		t.Fatalf("forest edges %v total %v", edges, total)
	}
}
