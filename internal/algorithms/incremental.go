package algorithms

import (
	"math"

	"argan/internal/ace"
	"argan/internal/graph"
)

// Incremental re-convergence planners: given two graph versions and the
// fixpoint computed on the old one, build the ace.WarmState a program
// re-converges from on the new version, re-seeding the scheduler only at
// the vertices a mutation can actually affect. Each planner encodes the
// retract-and-repush rule of its program's algebra:
//
//   - Δ-PageRank (sum fold, ace.Inverter): the converged state satisfies
//     Ψ = b + A·rank − rank, which is linear in the transition matrix A, so
//     after a mutation the exact pending delta is Ψ′ = Ψ + (A′−A)·rank.
//     The planner retracts d·rank[u]/deg_old(u) from every old out-neighbor
//     of a rewired source u (via Invert) and pushes d·rank[u]/deg_new(u) to
//     every new one. No history is replayed — linearity makes the
//     correction exact regardless of how the old fixpoint was reached.
//   - SSSP/BFS (min fold, idempotent): a deleted arc can strand distances
//     that used it as a support. The planner conservatively marks dirty
//     every vertex whose distance was justified by a removed arc, cascades
//     dirtiness along still-justified arcs of the new graph, resets dirty
//     distances to +Inf, and re-activates their clean upstream frontier
//     (plus the tails of inserted arcs, which can only improve distances).
//   - WCC (min fold, idempotent): a deleted arc can split a component, and
//     stale minimum labels cannot be retracted under a lattice join, so the
//     planner resets every vertex of a deletion-affected component to its
//     self-label and re-floods; insert endpoints are activated so merged
//     components exchange minima.
//
// Programs that are neither invertible nor idempotent cannot restart from a
// stale Ψ without double counting; ace.CanIncrement gates callers into a
// full recompute instead.

// diffArcs compares the out-adjacency of the touched vertices across two
// graph versions and returns the arcs present only in the old graph
// (removed) and only in the new one (added). A weight change appears as a
// removed arc plus an added arc. touched must contain every vertex whose
// adjacency may differ (MutationBatch.Endpoints guarantees this); for
// undirected graphs both endpoints of an edge are touched, so both arc
// directions are reported.
func diffArcs(oldG, newG *graph.Graph, touched []graph.VID) (removed, added []graph.Edge) {
	for _, u := range touched {
		oa, ow := oldG.OutNeighbors(u), oldG.OutWeights(u)
		na, nw := newG.OutNeighbors(u), newG.OutWeights(u)
		i, j := 0, 0
		// Adjacency is sorted by (dst, weight) — a sorted-merge diff.
		for i < len(oa) || j < len(na) {
			switch {
			case j == len(na) || (i < len(oa) && (oa[i] < na[j] || (oa[i] == na[j] && ow[i] < nw[j]))):
				removed = append(removed, graph.Edge{Src: u, Dst: oa[i], W: ow[i]})
				i++
			case i == len(oa) || na[j] < oa[i] || (na[j] == oa[i] && nw[j] < ow[i]):
				added = append(added, graph.Edge{Src: u, Dst: na[j], W: nw[j]})
				j++
			default: // same dst, same weight: arc survived
				i++
				j++
			}
		}
	}
	return removed, added
}

// sameAdjacency reports whether a vertex has the same out-neighbor multiset
// in both graphs, ignoring weights (Δ-PageRank is weight-blind).
func sameAdjacency(oldG, newG *graph.Graph, u graph.VID) bool {
	oa, na := oldG.OutNeighbors(u), newG.OutNeighbors(u)
	if len(oa) != len(na) {
		return false
	}
	for i := range oa {
		if oa[i] != na[i] {
			return false
		}
	}
	return true
}

// WarmPageRank plans the Δ-PageRank warm start: psi and ranks are the prior
// fixpoint's pending deltas and accumulated ranks (gap.Result Psi/Values),
// both global-vertex indexed over the old graph. eps <= 0 means
// DefaultPREps. The returned state's Aux carries the rank array for
// PageRank.Setup to restore.
func WarmPageRank(oldG, newG *graph.Graph, touched []graph.VID, psi, ranks []float64, eps float64) *ace.WarmState[float64] {
	if eps <= 0 {
		eps = DefaultPREps
	}
	inv := any(NewPageRank()()).(ace.Inverter[float64])

	values := append([]float64(nil), psi...)
	for _, u := range touched {
		if sameAdjacency(oldG, newG, u) {
			continue // weight-only change: PR's transition row is unchanged
		}
		r := ranks[u]
		if oldDeg := oldG.OutDegree(u); oldDeg > 0 {
			contrib := Damping * r / float64(oldDeg)
			for _, v := range oldG.OutNeighbors(u) {
				values[v] = inv.Invert(values[v], contrib) // retract the stale push
			}
		}
		if newDeg := newG.OutDegree(u); newDeg > 0 {
			contrib := Damping * r / float64(newDeg)
			for _, v := range newG.OutNeighbors(u) {
				values[v] += contrib // re-push over the new row
			}
		}
	}
	active := make([]bool, len(values))
	for v, d := range values {
		active[v] = math.Abs(d) >= eps
	}
	return &ace.WarmState[float64]{Values: values, Active: active, Aux: ranks}
}

// WarmSSSP plans the SSSP warm start from the prior distances (Inf =
// unreachable) for the same source. KickStarter-style conservative
// invalidation: a removed arc (u,v,w) dirties v if dist[v] was justified by
// it; dirtiness cascades along arcs of the new graph that still justify
// their head's old distance; dirty vertices reset to +Inf and their clean
// finite in-neighbors (plus tails of added arcs) re-activate.
func WarmSSSP(oldG, newG *graph.Graph, touched []graph.VID, dist []float64, src graph.VID) *ace.WarmState[float64] {
	removed, added := diffArcs(oldG, newG, touched)
	dirty := make([]bool, len(dist))
	var queue []graph.VID
	mark := func(v graph.VID) {
		if !dirty[v] && v != src && !math.IsInf(dist[v], 1) {
			dirty[v] = true
			queue = append(queue, v)
		}
	}
	for _, e := range removed {
		if !math.IsInf(dist[e.Src], 1) && dist[e.Dst] == dist[e.Src]+e.W {
			mark(e.Dst)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		adj, ws := newG.OutNeighbors(p), newG.OutWeights(p)
		for i, x := range adj {
			if dist[x] == dist[p]+ws[i] {
				mark(x) // x's old distance leaned on a now-dirty support
			}
		}
	}

	values := append([]float64(nil), dist...)
	active := make([]bool, len(dist))
	for v := range dirty {
		if !dirty[v] {
			continue
		}
		values[v] = Inf
		// The clean finite upstream frontier recomputes the dirty region.
		for _, p := range newG.InNeighbors(graph.VID(v)) {
			if !dirty[p] && !math.IsInf(values[p], 1) {
				active[p] = true
			}
		}
	}
	for _, e := range added {
		if !dirty[e.Src] && !math.IsInf(values[e.Src], 1) {
			active[e.Src] = true // an added arc can only improve its head
		}
	}
	return &ace.WarmState[float64]{Values: values, Active: active}
}

// WarmBFS is WarmSSSP over unit-weight int32 hop counts (bfsInf =
// unreachable).
func WarmBFS(oldG, newG *graph.Graph, touched []graph.VID, dist []int32, src graph.VID) *ace.WarmState[int32] {
	removed, added := diffArcs(oldG, newG, touched)
	dirty := make([]bool, len(dist))
	var queue []graph.VID
	mark := func(v graph.VID) {
		if !dirty[v] && v != src && dist[v] != bfsInf {
			dirty[v] = true
			queue = append(queue, v)
		}
	}
	for _, e := range removed {
		if dist[e.Src] != bfsInf && dist[e.Dst] == dist[e.Src]+1 {
			mark(e.Dst)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, x := range newG.OutNeighbors(p) {
			if dist[x] == dist[p]+1 {
				mark(x)
			}
		}
	}

	values := append([]int32(nil), dist...)
	active := make([]bool, len(dist))
	for v := range dirty {
		if !dirty[v] {
			continue
		}
		values[v] = bfsInf
		for _, p := range newG.InNeighbors(graph.VID(v)) {
			if !dirty[p] && values[p] != bfsInf {
				active[p] = true
			}
		}
	}
	for _, e := range added {
		if !dirty[e.Src] && values[e.Src] != bfsInf {
			active[e.Src] = true
		}
	}
	return &ace.WarmState[int32]{Values: values, Active: active}
}

// WarmWCC plans the WCC warm start from the prior component labels. Min
// labels cannot be retracted under a lattice join, so every component that
// lost an edge is reset wholesale to self-labels and re-flooded; endpoints
// of inserted arcs are activated so merging components exchange minima.
// An old arc between a reset and a clean vertex is impossible (adjacent
// vertices shared a component, whose label is affected), so the reset
// region's frontier is exactly the insert endpoints.
func WarmWCC(oldG, newG *graph.Graph, touched []graph.VID, labels []uint32) *ace.WarmState[uint32] {
	removed, added := diffArcs(oldG, newG, touched)
	affected := make(map[uint32]bool, 2*len(removed))
	for _, e := range removed {
		affected[labels[e.Src]] = true
		affected[labels[e.Dst]] = true
	}

	values := make([]uint32, len(labels))
	active := make([]bool, len(labels))
	for v, l := range labels {
		if affected[l] {
			values[v] = uint32(v)
			active[v] = true
		} else {
			values[v] = l
		}
	}
	for _, e := range added {
		active[e.Src] = true
		active[e.Dst] = true
	}
	return &ace.WarmState[uint32]{Values: values, Active: active}
}
