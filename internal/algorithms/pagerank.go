package algorithms

import (
	"math"

	"argan/internal/ace"
	"argan/internal/graph"
)

// Damping is the PageRank damping factor.
const Damping = 0.85

// SeqPageRank is the sequential Δ-based accumulative PageRank of Maiter
// (Zhang et al.): ranks satisfy r_v = (1-d) + d·Σ_{u→v} r_u/outdeg(u),
// computed by propagating deltas until every pending delta is below eps.
// It is the reference the ACE program converges to.
func SeqPageRank(g *graph.Graph, eps float64) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	delta := make([]float64, n)
	for v := range delta {
		delta[v] = 1 - Damping
	}
	queue := make([]graph.VID, n)
	inQ := make([]bool, n)
	for v := range queue {
		queue[v] = graph.VID(v)
		inQ[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQ[v] = false
		d := delta[v]
		if d < eps {
			continue
		}
		delta[v] = 0
		rank[v] += d
		deg := g.OutDegree(v)
		if deg == 0 {
			continue
		}
		out := Damping * d / float64(deg)
		for _, u := range g.OutNeighbors(v) {
			delta[u] += out
			if delta[u] >= eps && !inQ[u] {
				inQ[u] = true
				queue = append(queue, u)
			}
		}
	}
	return rank
}

// PageRank is the Δ-based accumulative PageRank as an ACE program (Maiter
// [5]): the status variable is the pending delta, g_aggr is addition, the
// update function folds the delta into the rank and scatters d·Δ/outdeg to
// out-neighbors. Deltas below Query.Eps are parked until more mass arrives,
// which is also the termination condition. PBF both sequentially and in
// parallel — Category III.
type PageRank struct {
	f    *graph.Fragment
	eps  float64
	rank []float64
	warm *ace.WarmState[float64]
}

// NewPageRank returns a factory for PageRank program instances.
func NewPageRank() ace.Factory[float64] {
	return func() ace.Program[float64] { return &PageRank{} }
}

// DefaultPREps is the delta threshold when Query.Eps is unset.
const DefaultPREps = 1e-3

// Name implements ace.Program.
func (p *PageRank) Name() string { return "pr" }

// Category implements ace.Program.
func (p *PageRank) Category() ace.Category { return ace.CategoryIII }

// Deps implements ace.Program.
func (p *PageRank) Deps() ace.DepKind { return ace.DepSelf }

// Setup implements ace.Program.
func (p *PageRank) Setup(f *graph.Fragment, q ace.Query) {
	p.f = f
	p.eps = q.Eps
	if p.eps <= 0 {
		p.eps = DefaultPREps
	}
	p.rank = make([]float64, f.NumLocal())
	p.warm = ace.WarmOf[float64](q)
	if p.warm != nil {
		// Restore the accumulated ranks of owned vertices from the prior
		// fixpoint (ghost entries stay 0: they are never read by Output and
		// never folded into). Ψ itself is restored through InitValue.
		ranks, ok := p.warm.Aux.([]float64)
		if !ok {
			p.warm = nil // malformed warm state: cold-start instead
			return
		}
		for l := uint32(0); int(l) < f.NumOwned(); l++ {
			p.rank[l] = ranks[f.Global(l)]
		}
	}
}

// InitValue implements ace.Program: every owned vertex holds the teleport
// mass (1-d) as its initial delta — or, on a warm start, the prior run's
// parked residual delta plus the planner's (A′−A)·rank re-seed correction.
// Ghosts always start at 0: their Ψ is a scatter accumulator.
func (p *PageRank) InitValue(f *graph.Fragment, local uint32, q ace.Query) (float64, bool) {
	if !f.IsOwned(local) {
		return 0, false
	}
	if p.warm != nil {
		g := f.Global(local)
		return p.warm.Values[g], p.warm.Active[g]
	}
	return 1 - Damping, true
}

// Update implements ace.Program.
func (p *PageRank) Update(ctx *ace.Ctx[float64], local uint32) {
	d := ctx.Get(local)
	if math.Abs(d) < p.eps {
		// Park the delta until more mass accumulates. The magnitude check
		// matters for incremental runs: edge retraction seeds *negative*
		// deltas, which must flow (scaled by d/outdeg) exactly like positive
		// mass so the stale contribution is subtracted back out downstream.
		return
	}
	ctx.Set(local, 0)
	p.rank[local] += d
	deg := p.f.OutDegree(local)
	if deg == 0 {
		return
	}
	out := Damping * d / float64(deg)
	for _, u := range p.f.OutNeighbors(local) {
		ctx.Send(u, out)
	}
}

// Aggregate implements ace.Program (accumulative addition).
func (p *PageRank) Aggregate(cur, in float64) (float64, bool) {
	if in == 0 {
		return cur, false
	}
	return cur + in, true
}

// Equal implements ace.Program.
func (p *PageRank) Equal(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// Delta implements ace.Program.
func (p *PageRank) Delta(a, b float64) float64 { return math.Abs(a - b) }

// Size implements ace.Program.
func (p *PageRank) Size(float64) int { return 8 }

// Output implements ace.Program: the accumulated rank.
func (p *PageRank) Output(ctx *ace.Ctx[float64], local uint32) float64 { return p.rank[local] }

// Combine implements ace.Combiner: two deltas headed to one vertex fold to
// their sum before leaving the worker (addition is the program's g_aggr, so
// coalescing preserves the fixpoint exactly).
func (p *PageRank) Combine(a, b float64) float64 { return a + b }

// ShardSafe implements ace.ShardSafe: Update reads only the vertex's own
// delta and writes only rank[local], so sweeps may be sharded.
func (p *PageRank) ShardSafe() bool { return true }

// Invert implements ace.Inverter: addition is the aggregate, so removing a
// previously folded contribution is subtraction. Localized recovery uses it
// to un-apply the post-checkpoint deltas a rolled-back sender re-sends; the
// resulting (possibly negative) pending delta is parked by Update's eps
// threshold and cancelled exactly by the replayed mass.
func (p *PageRank) Invert(cur, contrib float64) float64 { return cur - contrib }

// SnapshotAux implements ace.Checkpointer: the rank vector is mutable state
// outside Ψ (the pending deltas), so checkpoints must capture it.
func (p *PageRank) SnapshotAux() any { return append([]float64(nil), p.rank...) }

// RestoreAux implements ace.Checkpointer.
func (p *PageRank) RestoreAux(snap any) { copy(p.rank, snap.([]float64)) }
