package algorithms

import (
	"math"

	"argan/internal/ace"
	"argan/internal/graph"
)

// SeqBFS returns hop distances from src (-1 when unreachable).
func SeqBFS(g *graph.Graph, src graph.VID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []graph.VID{src}
	for len(frontier) > 0 {
		var next []graph.VID
		for _, v := range frontier {
			for _, u := range g.OutNeighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

const bfsInf = int32(math.MaxInt32)

// BFS is breadth-first search as an ACE program: SSSP with unit weights over
// int32 hop counts. Category II.
type BFS struct {
	f    *graph.Fragment
	warm *ace.WarmState[int32]
}

// NewBFS returns a factory for BFS program instances.
func NewBFS() ace.Factory[int32] {
	return func() ace.Program[int32] { return &BFS{} }
}

// Name implements ace.Program.
func (p *BFS) Name() string { return "bfs" }

// Category implements ace.Program.
func (p *BFS) Category() ace.Category { return ace.CategoryII }

// Deps implements ace.Program.
func (p *BFS) Deps() ace.DepKind { return ace.DepSelf }

// Setup implements ace.Program.
func (p *BFS) Setup(f *graph.Fragment, q ace.Query) {
	p.f = f
	p.warm = ace.WarmOf[int32](q)
}

// InitValue implements ace.Program. Warm starts follow the SSSP pattern:
// owned vertices resume from the planner-adjusted hop counts, ghosts start
// cold.
func (p *BFS) InitValue(f *graph.Fragment, local uint32, q ace.Query) (int32, bool) {
	if p.warm != nil && f.IsOwned(local) {
		g := f.Global(local)
		return p.warm.Values[g], p.warm.Active[g]
	}
	if f.Global(local) == q.Source {
		return 0, true
	}
	return bfsInf, false
}

// Update implements ace.Program.
func (p *BFS) Update(ctx *ace.Ctx[int32], local uint32) {
	d := ctx.Get(local)
	if d == bfsInf {
		return
	}
	for _, u := range p.f.OutNeighbors(local) {
		ctx.Send(u, d+1)
	}
}

// Aggregate implements ace.Program (min).
func (p *BFS) Aggregate(cur, in int32) (int32, bool) {
	if in < cur {
		return in, true
	}
	return cur, false
}

// Equal implements ace.Program.
func (p *BFS) Equal(a, b int32) bool { return a == b }

// Delta implements ace.Program.
func (p *BFS) Delta(a, b int32) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// Size implements ace.Program.
func (p *BFS) Size(int32) int { return 4 }

// Output implements ace.Program.
func (p *BFS) Output(ctx *ace.Ctx[int32], local uint32) int32 { return ctx.Get(local) }

// Priority processes nearer frontiers first.
func (p *BFS) Priority(v int32) float64 { return float64(v) }

// Combine implements ace.Combiner (min hop count).
func (p *BFS) Combine(a, b int32) int32 {
	if b < a {
		return b
	}
	return a
}

// ShardSafe implements ace.ShardSafe.
func (p *BFS) ShardSafe() bool { return true }

// IdempotentAggregate implements ace.IdempotentAggregator (min fold).
func (p *BFS) IdempotentAggregate() bool { return true }

// SeqWCC labels weakly connected components with the smallest member id.
func SeqWCC(g *graph.Graph) []graph.VID {
	n := g.NumVertices()
	parent := make([]graph.VID, n)
	for i := range parent {
		parent[i] = graph.VID(i)
	}
	var find func(graph.VID) graph.VID
	find = func(v graph.VID) graph.VID {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	union := func(a, b graph.VID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			union(graph.VID(v), u)
		}
	}
	out := make([]graph.VID, n)
	for v := range out {
		out[v] = find(graph.VID(v))
	}
	return out
}

// WCC is weakly-connected-components as an ACE program: label propagation of
// the minimum vertex id across the undirected closure of the graph.
// Category II (a label is final once the component minimum reaches it).
type WCC struct {
	f    *graph.Fragment
	warm *ace.WarmState[uint32]
}

// NewWCC returns a factory for WCC program instances.
func NewWCC() ace.Factory[uint32] {
	return func() ace.Program[uint32] { return &WCC{} }
}

// Name implements ace.Program.
func (p *WCC) Name() string { return "wcc" }

// Category implements ace.Program.
func (p *WCC) Category() ace.Category { return ace.CategoryII }

// Deps implements ace.Program.
func (p *WCC) Deps() ace.DepKind { return ace.DepSelf }

// Setup implements ace.Program.
func (p *WCC) Setup(f *graph.Fragment, q ace.Query) {
	p.f = f
	p.warm = ace.WarmOf[uint32](q)
}

// InitValue implements ace.Program. Warm starts resume owned vertices from
// the planner-adjusted labels (deletion-affected components reset to
// self-labels); ghosts always start at their own id, the min-fold identity
// for anything the owner will scatter.
func (p *WCC) InitValue(f *graph.Fragment, local uint32, q ace.Query) (uint32, bool) {
	if p.warm != nil && f.IsOwned(local) {
		g := f.Global(local)
		return p.warm.Values[g], p.warm.Active[g]
	}
	return f.Global(local), f.IsOwned(local)
}

// Update implements ace.Program: push the current label both ways (weak
// connectivity ignores direction).
func (p *WCC) Update(ctx *ace.Ctx[uint32], local uint32) {
	l := ctx.Get(local)
	for _, u := range p.f.OutNeighbors(local) {
		ctx.Send(u, l)
	}
	if p.f.Directed() {
		for _, u := range p.f.InNeighbors(local) {
			ctx.Send(u, l)
		}
	}
}

// Aggregate implements ace.Program (min label).
func (p *WCC) Aggregate(cur, in uint32) (uint32, bool) {
	if in < cur {
		return in, true
	}
	return cur, false
}

// Equal implements ace.Program.
func (p *WCC) Equal(a, b uint32) bool { return a == b }

// Delta implements ace.Program.
func (p *WCC) Delta(a, b uint32) float64 {
	if a == b {
		return 0
	}
	return 1
}

// Size implements ace.Program.
func (p *WCC) Size(uint32) int { return 4 }

// Output implements ace.Program.
func (p *WCC) Output(ctx *ace.Ctx[uint32], local uint32) uint32 { return ctx.Get(local) }

// Combine implements ace.Combiner (min label).
func (p *WCC) Combine(a, b uint32) uint32 {
	if b < a {
		return b
	}
	return a
}

// ShardSafe implements ace.ShardSafe.
func (p *WCC) ShardSafe() bool { return true }

// IdempotentAggregate implements ace.IdempotentAggregator (min-label fold).
func (p *WCC) IdempotentAggregate() bool { return true }

// Cost implements ace.Coster: WCC scans both adjacencies on directed graphs.
func (p *WCC) Cost(f *graph.Fragment, local uint32) float64 {
	c := float64(f.OutDegree(local)) + 1
	if f.Directed() {
		c += float64(f.InDegree(local))
	}
	return c
}
