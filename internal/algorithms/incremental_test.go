package algorithms

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/graph"
)

// TestCanIncrementGate pins down which programs are allowed into the
// incremental path: retractable sum folds (Inverter) and idempotent lattice
// joins may restart from a stale Ψ; everything else must full-recompute.
func TestCanIncrementGate(t *testing.T) {
	if !ace.CanIncrement(NewPageRank()()) {
		t.Error("PageRank (Inverter) must be incrementable")
	}
	if !ace.CanIncrement(NewSSSP()()) || !ace.CanIncrement(NewBFS()()) || !ace.CanIncrement(NewWCC()()) {
		t.Error("min-fold programs (idempotent) must be incrementable")
	}
	if ace.CanIncrement(NewColor()()) {
		t.Error("Color is neither invertible nor idempotent; it must fall back to recompute")
	}
	if ace.CanIncrement(NewCore()()) {
		t.Error("Core is neither invertible nor idempotent; it must fall back to recompute")
	}
}

func TestDiffArcs(t *testing.T) {
	oldG := graph.NewBuilder(4, true).
		AddWeighted(0, 1, 5).AddWeighted(0, 2, 3).AddWeighted(1, 2, 7).MustBuild()
	b := graph.MutationBatch{
		Deletes: []graph.Edge{{Src: 0, Dst: 1}},
		Inserts: []graph.Edge{{Src: 0, Dst: 2, W: 9}, {Src: 2, Dst: 3, W: 1}},
	}
	newG, _, err := oldG.ApplyMutations(b)
	if err != nil {
		t.Fatal(err)
	}
	removed, added := diffArcs(oldG, newG, b.Endpoints())
	wantRemoved := []graph.Edge{{Src: 0, Dst: 1, W: 5}, {Src: 0, Dst: 2, W: 3}}
	wantAdded := []graph.Edge{{Src: 0, Dst: 2, W: 9}, {Src: 2, Dst: 3, W: 1}}
	if len(removed) != len(wantRemoved) || len(added) != len(wantAdded) {
		t.Fatalf("diff = removed %v added %v, want removed %v added %v", removed, added, wantRemoved, wantAdded)
	}
	for i := range wantRemoved {
		if removed[i] != wantRemoved[i] {
			t.Fatalf("removed[%d] = %v, want %v", i, removed[i], wantRemoved[i])
		}
	}
	for i := range wantAdded {
		if added[i] != wantAdded[i] {
			t.Fatalf("added[%d] = %v, want %v", i, added[i], wantAdded[i])
		}
	}
}

// TestWarmSSSPPlannerConservative replays the planner against a brute-force
// recompute: every vertex whose distance changed between versions must be
// either dirty (reset to Inf) or downstream of an activated vertex — the
// planner may over-approximate but must never leave a stale-but-clean
// shorter distance in place (min folds cannot grow back).
func TestWarmSSSPPlannerConservative(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := graph.PowerLaw(graph.GenConfig{N: 300, M: 1800, Directed: true, Seed: seed, MaxW: 9})
		oldDist := SeqSSSP(g, 0)

		// Drop a handful of existing arcs (the hard direction for min folds).
		var b graph.MutationBatch
		for v := 0; v < g.NumVertices() && len(b.Deletes) < 12; v += 17 {
			adj := g.OutNeighbors(graph.VID(v))
			if len(adj) > 0 {
				b.Deletes = append(b.Deletes, graph.Edge{Src: graph.VID(v), Dst: adj[0]})
			}
		}
		newG, _, err := g.ApplyMutations(b)
		if err != nil {
			t.Fatal(err)
		}
		w := WarmSSSP(g, newG, b.Endpoints(), oldDist, 0)
		newDist := SeqSSSP(newG, 0)

		for v := range newDist {
			if w.Values[v] == newDist[v] {
				continue // warm value already correct
			}
			// The warm value is wrong; the planner must have reset it (Inf
			// can only shrink toward the truth) — a finite wrong distance
			// could never be repaired by a min fold.
			if !math.IsInf(w.Values[v], 1) {
				t.Fatalf("seed %d: vertex %d warm %v, truth %v — finite stale value not invalidated",
					seed, v, w.Values[v], newDist[v])
			}
			if newDist[v] < w.Values[v] && math.IsInf(newDist[v], 1) {
				t.Fatalf("seed %d: vertex %d reset below truth", seed, v)
			}
		}
	}
}

// TestWarmWCCPlannerResetsAffected checks the component-reset rule: after a
// deletion, every vertex of the deleted edge's old component restarts from
// its self-label, and untouched components keep their labels verbatim.
func TestWarmWCCPlannerResetsAffected(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 200, M: 600, Directed: true, Seed: 5})
	labels32 := SeqWCC(g)
	labels := make([]uint32, len(labels32))
	for v, l := range labels32 {
		labels[v] = uint32(l)
	}
	var del graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		if adj := g.OutNeighbors(graph.VID(v)); len(adj) > 0 {
			del = graph.Edge{Src: graph.VID(v), Dst: adj[0]}
			break
		}
	}
	b := graph.MutationBatch{Deletes: []graph.Edge{del}}
	newG, _, err := g.ApplyMutations(b)
	if err != nil {
		t.Fatal(err)
	}
	w := WarmWCC(g, newG, b.Endpoints(), labels)
	affected := labels[del.Src]
	for v, l := range labels {
		if l == affected {
			if w.Values[v] != uint32(v) || !w.Active[v] {
				t.Fatalf("vertex %d of affected component: warm %d active %v", v, w.Values[v], w.Active[v])
			}
		} else if w.Values[v] != l || w.Active[v] {
			t.Fatalf("vertex %d of clean component: warm %d active %v, want label %d inactive", v, w.Values[v], w.Active[v], l)
		}
	}
}
