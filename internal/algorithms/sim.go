package algorithms

import (
	"math/bits"
	"math/rand"

	"argan/internal/ace"
	"argan/internal/graph"
)

// SimSet is the status variable of graph simulation: a bitmask over pattern
// vertices (patterns have at most 64 vertices; the paper uses |V_Q| = 4).
// Bit q set means "graph vertex v may simulate pattern vertex q".
type SimSet = uint64

// SeqSim computes the graph-simulation relation of pattern onto g
// (Henzinger-Henzinger-Kopke fixpoint): sim[v] has bit q set iff v
// simulates pattern vertex q — labels match and every pattern edge q→q' is
// matched by some edge v→v' with v' simulating q'.
func SeqSim(g *graph.Graph, pattern *graph.Graph) []SimSet {
	n := g.NumVertices()
	sim := make([]SimSet, n)
	for v := 0; v < n; v++ {
		for q := 0; q < pattern.NumVertices(); q++ {
			if pattern.Label(graph.VID(q)) == g.Label(graph.VID(v)) {
				sim[v] |= 1 << q
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			m := simUpdate(sim[v], pattern, g.OutNeighbors(graph.VID(v)), sim)
			if m != sim[v] {
				sim[v] = m
				changed = true
			}
		}
	}
	return sim
}

// simUpdate removes pattern vertices whose out-edges cannot be matched by
// the successors' masks.
func simUpdate(m SimSet, pattern *graph.Graph, succ []uint32, simOf []SimSet) SimSet {
	for q := 0; q < pattern.NumVertices(); q++ {
		if m&(1<<q) == 0 {
			continue
		}
		for _, qq := range pattern.OutNeighbors(graph.VID(q)) {
			ok := false
			for _, u := range succ {
				if simOf[u]&(1<<qq) != 0 {
					ok = true
					break
				}
			}
			if !ok {
				m &^= 1 << q
				break
			}
		}
	}
	return m
}

// Sim is graph simulation as an ACE program. The status variable only
// shrinks and is read through out-edges (Y_xv is the successor masks), so
// both sequential and parallel executions are PAF — Category I, τ ≡ 0 —
// which is why the paper finds GAP has no staleness to remove for Sim.
type Sim struct {
	f       *graph.Fragment
	pattern *graph.Graph
}

// NewSim returns a factory for Sim program instances.
func NewSim() ace.Factory[SimSet] {
	return func() ace.Program[SimSet] { return &Sim{} }
}

// Name implements ace.Program.
func (p *Sim) Name() string { return "sim" }

// Category implements ace.Program.
func (p *Sim) Category() ace.Category { return ace.CategoryI }

// Deps implements ace.Program.
func (p *Sim) Deps() ace.DepKind { return ace.DepOut }

// Setup implements ace.Program.
func (p *Sim) Setup(f *graph.Fragment, q ace.Query) {
	p.f = f
	p.pattern = q.Pattern
}

// InitValue implements ace.Program: label-compatible pattern vertices.
func (p *Sim) InitValue(f *graph.Fragment, local uint32, q ace.Query) (SimSet, bool) {
	var m SimSet
	for pv := 0; pv < q.Pattern.NumVertices(); pv++ {
		if q.Pattern.Label(graph.VID(pv)) == f.Label(local) {
			m |= 1 << pv
		}
	}
	return m, f.IsOwned(local) && m != 0
}

// Update implements ace.Program.
func (p *Sim) Update(ctx *ace.Ctx[SimSet], local uint32) {
	m := ctx.Get(local)
	if m == 0 {
		return
	}
	succ := p.f.OutNeighbors(local)
	for q := 0; q < p.pattern.NumVertices(); q++ {
		if m&(1<<q) == 0 {
			continue
		}
		for _, qq := range p.pattern.OutNeighbors(graph.VID(q)) {
			ok := false
			for _, u := range succ {
				if ctx.Get(u)&(1<<qq) != 0 {
					ok = true
					break
				}
			}
			if !ok {
				m &^= 1 << q
				break
			}
		}
	}
	if m != ctx.Get(local) {
		ctx.Set(local, m)
	}
}

// Aggregate implements ace.Program: masks only shrink, so intersection is
// the order-insensitive monotone merge.
func (p *Sim) Aggregate(cur, in SimSet) (SimSet, bool) {
	m := cur & in
	return m, m != cur
}

// Equal implements ace.Program.
func (p *Sim) Equal(a, b SimSet) bool { return a == b }

// Delta implements ace.Program: number of pattern vertices dropped/changed.
func (p *Sim) Delta(a, b SimSet) float64 { return float64(bits.OnesCount64(a ^ b)) }

// Size implements ace.Program.
func (p *Sim) Size(SimSet) int { return 8 }

// Output implements ace.Program.
func (p *Sim) Output(ctx *ace.Ctx[SimSet], local uint32) SimSet { return ctx.Get(local) }

// Cost implements ace.Coster: the update scans the successor list once per
// live pattern edge.
func (p *Sim) Cost(f *graph.Fragment, local uint32) float64 {
	e := p.pattern.NumEdges()
	if e == 0 {
		e = 1
	}
	return float64(f.OutDegree(local)*e) + 1
}

// RandomPattern generates a connected labeled query pattern with nv
// vertices and ne edges, drawing labels from the data graph so matches
// exist with reasonable probability (the paper uses |Q| = (4,5)).
func RandomPattern(g *graph.Graph, nv, ne int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nv, true)
	// Labels sampled from actual graph vertices.
	for v := 0; v < nv; v++ {
		b.SetLabel(graph.VID(v), g.Label(graph.VID(r.Intn(g.NumVertices()))))
	}
	// Spanning path for connectivity, then extra random edges.
	type edge struct{ a, b graph.VID }
	seen := map[edge]bool{}
	add := func(a, bb graph.VID) bool {
		if a == bb || seen[edge{a, bb}] {
			return false
		}
		seen[edge{a, bb}] = true
		b.AddEdge(a, bb)
		return true
	}
	for v := 1; v < nv; v++ {
		add(graph.VID(r.Intn(v)), graph.VID(v))
	}
	for b.NumPendingEdges() < ne {
		if !add(graph.VID(r.Intn(nv)), graph.VID(r.Intn(nv))) && len(seen) >= nv*(nv-1) {
			break
		}
	}
	return b.MustBuild()
}
