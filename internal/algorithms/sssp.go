// Package algorithms provides the graph applications of the paper — SSSP
// (parallelized Dijkstra and Bellman-Ford), BFS, WCC, graph coloring,
// Δ-based PageRank, core decomposition (h-index) and graph simulation —
// each as a sequential reference implementation (the batch algorithm A of
// §IV, used as ground truth) plus the ACE program ρ_A derived from it
// following the paper's parallelization recipe.
package algorithms

import (
	"container/heap"
	"math"

	"argan/internal/ace"
	"argan/internal/graph"
)

// Inf is the distance of unreachable vertices.
var Inf = math.Inf(1)

// SeqSSSP is Dijkstra's algorithm with a binary heap: the sequential
// reference for SSSP.
func SeqSSSP(g *graph.Graph, src graph.VID) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &distHeap{{0, src}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		adj, ws := g.OutNeighbors(it.v), g.OutWeights(it.v)
		for i, u := range adj {
			if nd := it.d + ws[i]; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{nd, u})
			}
		}
	}
	return dist
}

type distItem struct {
	d float64
	v graph.VID
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)   { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SSSP is the ACE program derived from Dijkstra's algorithm: the status
// variable is the tentative distance, the update function relaxes the
// vertex's out-edges, g_aggr is min, and the active set is a priority queue
// so nearer vertices relax first (the parallelized Dijkstra of [3]).
// Sequentially PAF, PBF in parallel — Category II.
type SSSP struct {
	f    *graph.Fragment
	warm *ace.WarmState[float64]
}

// NewSSSP returns a factory for SSSP program instances.
func NewSSSP() ace.Factory[float64] {
	return func() ace.Program[float64] { return &SSSP{} }
}

// Name implements ace.Program.
func (p *SSSP) Name() string { return "sssp" }

// Category implements ace.Program.
func (p *SSSP) Category() ace.Category { return ace.CategoryII }

// Deps implements ace.Program.
func (p *SSSP) Deps() ace.DepKind { return ace.DepSelf }

// Setup implements ace.Program.
func (p *SSSP) Setup(f *graph.Fragment, q ace.Query) {
	p.f = f
	p.warm = ace.WarmOf[float64](q)
}

// InitValue implements ace.Program. On a warm start, owned vertices resume
// from the planner-adjusted prior distances (dirty ones reset to +Inf);
// ghosts always start cold at +Inf — their Ψ is a min-accumulator refilled
// by the first scatter that reaches them.
func (p *SSSP) InitValue(f *graph.Fragment, local uint32, q ace.Query) (float64, bool) {
	if p.warm != nil && f.IsOwned(local) {
		g := f.Global(local)
		return p.warm.Values[g], p.warm.Active[g]
	}
	if f.Global(local) == q.Source {
		return 0, true
	}
	return Inf, false
}

// Update relaxes the out-edges of the vertex (f_xv reads x_v and scatters
// x_v + w along each edge).
func (p *SSSP) Update(ctx *ace.Ctx[float64], local uint32) {
	d := ctx.Get(local)
	if math.IsInf(d, 1) {
		return
	}
	adj, ws := p.f.OutNeighbors(local), p.f.OutWeights(local)
	for i, u := range adj {
		ctx.Send(u, d+ws[i])
	}
}

// Aggregate is min (monotone, idempotent, commutative — the convergence
// condition of §II-B).
func (p *SSSP) Aggregate(cur, in float64) (float64, bool) {
	if in < cur {
		return in, true
	}
	return cur, false
}

// Equal implements ace.Program.
func (p *SSSP) Equal(a, b float64) bool { return a == b }

// Delta implements ace.Program.
func (p *SSSP) Delta(a, b float64) float64 {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			return 0
		}
		return 1
	}
	return math.Abs(a - b)
}

// Size implements ace.Program.
func (p *SSSP) Size(float64) int { return 8 }

// Output implements ace.Program.
func (p *SSSP) Output(ctx *ace.Ctx[float64], local uint32) float64 { return ctx.Get(local) }

// Priority orders the active set by tentative distance (Dijkstra order).
func (p *SSSP) Priority(v float64) float64 { return v }

// Combine implements ace.Combiner: two distances headed to one vertex fold
// to their minimum before leaving the worker.
func (p *SSSP) Combine(a, b float64) float64 {
	if b < a {
		return b
	}
	return a
}

// ShardSafe implements ace.ShardSafe: Update only reads the vertex's own
// distance and the fragment, so sweeps may be sharded across goroutines.
func (p *SSSP) ShardSafe() bool { return true }

// IdempotentAggregate implements ace.IdempotentAggregator: min is a lattice
// join, so re-folding a replayed distance is harmless and localized recovery
// can repair survivors by re-ingestion alone.
func (p *SSSP) IdempotentAggregate() bool { return true }

// SeqBellmanFord is the queue-based Bellman-Ford reference.
func SeqBellmanFord(g *graph.Graph, src graph.VID) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	queue := []graph.VID{src}
	inQ := make([]bool, g.NumVertices())
	inQ[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQ[v] = false
		adj, ws := g.OutNeighbors(v), g.OutWeights(v)
		for i, u := range adj {
			if nd := dist[v] + ws[i]; nd < dist[u] {
				dist[u] = nd
				if !inQ[u] {
					inQ[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return dist
}

// BellmanFord is the Category III SSSP variant: identical relaxation but
// FIFO scheduling (x_v is read and propagated before its fixpoint even
// sequentially).
type BellmanFord struct{ SSSP }

// NewBellmanFord returns a factory for Bellman-Ford program instances.
func NewBellmanFord() ace.Factory[float64] {
	return func() ace.Program[float64] { return &BellmanFord{} }
}

// Name implements ace.Program.
func (p *BellmanFord) Name() string { return "bellman-ford" }

// Category implements ace.Program.
func (p *BellmanFord) Category() ace.Category { return ace.CategoryIII }

// Setup implements ace.Program.
func (p *BellmanFord) Setup(f *graph.Fragment, q ace.Query) { p.SSSP.Setup(f, q) }

// BellmanFord deliberately does not implement Prioritizer: relaxations run
// in FIFO order. The embedded SSSP.Priority method is shadowed away.
func (p *BellmanFord) Priority() {}
