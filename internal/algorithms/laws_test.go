package algorithms

import (
	"math"
	"math/rand"
	"testing"

	"argan/internal/ace"
)

// The §II-B convergence conditions, checked as executable algebraic laws
// of every built-in program's aggregate function over random samples.

func floatSamples(r *rand.Rand, n int) []float64 {
	s := []float64{0, 1, math.Inf(1)}
	for len(s) < n {
		s = append(s, r.Float64()*100)
	}
	return s
}

func TestSSSPLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := NewSSSP()()
	leq := func(a, b float64) bool { return a <= b }
	if err := ace.CheckLaws(p, ace.SelectionLaws(), leq, floatSamples(r, 25)); err != nil {
		t.Fatal(err)
	}
}

func TestBellmanFordLaws(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := NewBellmanFord()()
	leq := func(a, b float64) bool { return a <= b }
	if err := ace.CheckLaws(p, ace.SelectionLaws(), leq, floatSamples(r, 25)); err != nil {
		t.Fatal(err)
	}
}

func TestBFSLaws(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := NewBFS()()
	var s []int32
	for i := 0; i < 25; i++ {
		s = append(s, int32(r.Intn(1000)))
	}
	leq := func(a, b int32) bool { return a <= b }
	if err := ace.CheckLaws(p, ace.SelectionLaws(), leq, s); err != nil {
		t.Fatal(err)
	}
}

func TestWCCLaws(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := NewWCC()()
	var s []uint32
	for i := 0; i < 25; i++ {
		s = append(s, uint32(r.Intn(1000)))
	}
	leq := func(a, b uint32) bool { return a <= b }
	if err := ace.CheckLaws(p, ace.SelectionLaws(), leq, s); err != nil {
		t.Fatal(err)
	}
}

func TestCoreLaws(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := NewCore()()
	var s []int32
	for i := 0; i < 25; i++ {
		s = append(s, int32(r.Intn(100)))
	}
	leq := func(a, b int32) bool { return a <= b }
	if err := ace.CheckLaws(p, ace.SelectionLaws(), leq, s); err != nil {
		t.Fatal(err)
	}
}

func TestSimLaws(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	p := NewSim()()
	var s []SimSet
	for i := 0; i < 25; i++ {
		s = append(s, SimSet(r.Uint64()&0xFFFF))
	}
	// The order is set inclusion: aggregation only clears bits.
	leq := func(a, b SimSet) bool { return a&b == a }
	if err := ace.CheckLaws(p, ace.SelectionLaws(), leq, s); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankLaws(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := NewPageRank()()
	var s []float64
	for i := 0; i < 20; i++ {
		s = append(s, r.Float64())
	}
	// Accumulation: deltas only grow, so the order is >=.
	leq := func(a, b float64) bool { return a >= b-1e-12 }
	if err := ace.CheckLaws(p, ace.AccumulationLaws(), leq, s); err != nil {
		t.Fatal(err)
	}
	// And PR's sum must NOT be idempotent — duplicate suppression relies on
	// exactly-once delivery instead.
	if err := ace.CheckLaws(p, ace.Laws{Idempotent: true}, nil, []float64{1}); err == nil {
		t.Fatal("PageRank aggregation must fail the idempotence law")
	}
}

func TestColorLaws(t *testing.T) {
	p := NewColor()()
	// Replace-style: idempotent only.
	if err := ace.CheckLaws(p, ace.ReplacementLaws(), nil, []int32{0, 1, 2, 5}); err != nil {
		t.Fatal(err)
	}
}
