package algorithms

import (
	"sort"

	"argan/internal/ace"
	"argan/internal/graph"
)

// SeqCore computes the core decomposition by the classic peeling algorithm
// (Seidman / Batagelj-Zaveršnik bucket peeling): repeatedly remove the
// minimum-degree vertex. It is the PAF sequential reference; the h-index
// fixpoint below converges to the same coreness values (Lü et al.).
func SeqCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort by degree.
	bins := make([]int, maxDeg+2)
	for _, d := range deg {
		bins[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bins[d]
		bins[d] = start
		start += c
	}
	pos := make([]int, n)
	order := make([]graph.VID, n)
	cursor := append([]int{}, bins...)
	for v := 0; v < n; v++ {
		pos[v] = cursor[deg[v]]
		order[pos[v]] = graph.VID(v)
		cursor[deg[v]]++
	}
	core := make([]int32, n)
	for i := 0; i < n; i++ {
		v := order[i]
		core[v] = int32(deg[v])
		for _, u := range g.OutNeighbors(v) {
			if deg[u] > deg[v] {
				du := deg[u]
				pu := pos[u]
				pw := bins[du]
				w := order[pw]
				if u != w {
					order[pu], order[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				bins[du]++
				deg[u]--
			}
		}
	}
	return core
}

// Core is the h-index based core decomposition as an ACE program (Lü et
// al., [25]): x_v starts at deg(v) and iterates x_v ← H({x_u : u ∈ N(v)}),
// the largest h such that at least h neighbors have value ≥ h. Values
// decrease monotonically to the coreness. PBF both ways — Category III.
// Defined for undirected graphs (the paper evaluates Core on HW and FS).
type Core struct {
	f   *graph.Fragment
	buf []int32
}

// NewCore returns a factory for Core program instances.
func NewCore() ace.Factory[int32] {
	return func() ace.Program[int32] { return &Core{} }
}

// Name implements ace.Program.
func (p *Core) Name() string { return "core" }

// Category implements ace.Program.
func (p *Core) Category() ace.Category { return ace.CategoryIII }

// Deps implements ace.Program.
func (p *Core) Deps() ace.DepKind { return ace.DepIn }

// Setup implements ace.Program.
func (p *Core) Setup(f *graph.Fragment, q ace.Query) { p.f = f }

// InitValue implements ace.Program. Ghost vertices start at the safe upper
// bound +inf-like value so they never drag an owner's h-index down before
// their true estimate arrives.
func (p *Core) InitValue(f *graph.Fragment, local uint32, q ace.Query) (int32, bool) {
	if f.IsOwned(local) {
		return int32(f.InDegree(local)), true
	}
	return int32(f.GlobalVertices()), false
}

// Update implements ace.Program: the H-operator over neighbor values,
// clamped by the current value (monotone non-increasing).
func (p *Core) Update(ctx *ace.Ctx[int32], local uint32) {
	nbrs := p.f.InNeighbors(local)
	p.buf = p.buf[:0]
	for _, u := range nbrs {
		p.buf = append(p.buf, ctx.Get(u))
	}
	h := hIndex(p.buf)
	if h < ctx.Get(local) {
		ctx.Set(local, h)
	}
}

// hIndex returns the largest h with at least h values ≥ h. It mutates vals.
func hIndex(vals []int32) int32 {
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	h := int32(0)
	for i, v := range vals {
		if v >= int32(i+1) {
			h = int32(i + 1)
		} else {
			break
		}
	}
	return h
}

// Aggregate implements ace.Program: estimates only decrease, so min is the
// order-insensitive merge.
func (p *Core) Aggregate(cur, in int32) (int32, bool) {
	if in < cur {
		return in, true
	}
	return cur, false
}

// Equal implements ace.Program.
func (p *Core) Equal(a, b int32) bool { return a == b }

// Delta implements ace.Program.
func (p *Core) Delta(a, b int32) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// Size implements ace.Program.
func (p *Core) Size(int32) int { return 4 }

// Output implements ace.Program.
func (p *Core) Output(ctx *ace.Ctx[int32], local uint32) int32 { return ctx.Get(local) }

// InitialSync implements ace.InitialSyncer: replicas cannot derive the
// owner's initial degree locally, so border degrees are shipped up front.
func (p *Core) InitialSync() bool { return true }
