package algorithms

import (
	"argan/internal/ace"
	"argan/internal/graph"
)

// SeqColor is the sequential greedy coloring in vertex-id order: vertex v
// takes the smallest color unused by its already-colored (smaller-id)
// neighbors. With vertices relabeled in descending degree order this is
// exactly the Welsh–Powell algorithm the paper parallelizes; the id-priority
// fixpoint below converges to precisely this coloring, which is how the
// §IV correctness property is tested.
func SeqColor(g *graph.Graph) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	used := map[int32]bool{}
	for v := 0; v < n; v++ {
		for k := range used {
			delete(used, k)
		}
		mark := func(u graph.VID) {
			if int(u) < v {
				used[colors[u]] = true
			}
		}
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			mark(u)
		}
		if g.Directed() {
			for _, u := range g.InNeighbors(graph.VID(v)) {
				mark(u)
			}
		}
		c := int32(0)
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// Color is greedy coloring as an ACE program. The update function
// recomputes x_v as the smallest color not used by higher-priority
// (smaller-id) neighbors; the dependency graph is acyclic, so the fixpoint
// converges under any asynchronous schedule and equals SeqColor. Category
// II (sequentially each color is assigned once; in parallel a vertex may
// recolor when a smaller-id neighbor's color arrives late).
type Color struct {
	f *graph.Fragment
}

// NewColor returns a factory for Color program instances.
func NewColor() ace.Factory[int32] {
	return func() ace.Program[int32] { return &Color{} }
}

// Name implements ace.Program.
func (p *Color) Name() string { return "color" }

// Category implements ace.Program.
func (p *Color) Category() ace.Category { return ace.CategoryII }

// Deps implements ace.Program: conflicts cross edges in either direction.
func (p *Color) Deps() ace.DepKind { return ace.DepBoth }

// Setup implements ace.Program.
func (p *Color) Setup(f *graph.Fragment, q ace.Query) { p.f = f }

// InitValue implements ace.Program: everything starts at color 0 and active.
func (p *Color) InitValue(f *graph.Fragment, local uint32, q ace.Query) (int32, bool) {
	return 0, f.IsOwned(local)
}

// Update implements ace.Program.
func (p *Color) Update(ctx *ace.Ctx[int32], local uint32) {
	c := p.choose(ctx, local, true)
	if c != ctx.Get(local) {
		ctx.Set(local, c)
	}
}

// choose returns the smallest color not used by neighbors; onlyHigher
// restricts the scan to higher-priority (smaller global id) neighbors.
func (p *Color) choose(ctx *ace.Ctx[int32], local uint32, onlyHigher bool) int32 {
	me := p.f.Global(local)
	deg := p.f.OutDegree(local) + p.f.InDegree(local)
	used := make([]bool, deg+1)
	mark := func(u uint32) {
		if onlyHigher && p.f.Global(u) >= me {
			return
		}
		if c := ctx.Get(u); int(c) <= deg {
			used[c] = true
		}
	}
	for _, u := range p.f.OutNeighbors(local) {
		mark(u)
	}
	if p.f.Directed() {
		for _, u := range p.f.InNeighbors(local) {
			mark(u)
		}
	}
	c := int32(0)
	for used[c] {
		c++
	}
	return c
}

// Aggregate replaces the replica's color with the owner's latest value.
func (p *Color) Aggregate(cur, in int32) (int32, bool) { return in, cur != in }

// Equal implements ace.Program.
func (p *Color) Equal(a, b int32) bool { return a == b }

// Delta implements ace.Program.
func (p *Color) Delta(a, b int32) float64 {
	if a == b {
		return 0
	}
	return 1
}

// Size implements ace.Program.
func (p *Color) Size(int32) int { return 4 }

// Output implements ace.Program.
func (p *Color) Output(ctx *ace.Ctx[int32], local uint32) int32 { return ctx.Get(local) }

// NaiveColor is the symmetric greedy coloring used by the vertex-centric
// competitors (GraphLab_sync, PowerSwitch): x_v is the smallest color not
// used by *any* neighbor. Under a synchronous schedule adjacent vertices
// recolor simultaneously and oscillate forever — the non-convergence the
// paper reports as "NA" in Fig. 5.
type NaiveColor struct {
	Color
}

// NewNaiveColor returns a factory for NaiveColor program instances.
func NewNaiveColor() ace.Factory[int32] {
	return func() ace.Program[int32] { return &NaiveColor{} }
}

// Name implements ace.Program.
func (p *NaiveColor) Name() string { return "color-naive" }

// Setup implements ace.Program.
func (p *NaiveColor) Setup(f *graph.Fragment, q ace.Query) { p.f = f }

// Update implements ace.Program: scan all neighbors, not only
// higher-priority ones.
func (p *NaiveColor) Update(ctx *ace.Ctx[int32], local uint32) {
	c := p.choose(ctx, local, false)
	if c != ctx.Get(local) {
		ctx.Set(local, c)
	}
}
