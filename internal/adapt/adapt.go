// Package adapt implements the paper's §III: runtime granularity adjustment
// driven by computation effectiveness φ(η) = (η − T_w)/(η + T_c). A Tuner
// runs the two-phase GA algorithm (Algorithm 2) — an information-collection
// phase of length η recording amortized per-vertex costs χ_v and outgoing
// buffer sizes S_j, then an estimation phase after which φ is evaluated for
// candidate granularities in (0, η] and η is updated to the argmax (or
// doubled when φ is still rising at η). GAwD is the discretized variant:
// k candidates, |Y|+1 cost estimates instead of clock reads.
package adapt

import (
	"math"

	"argan/internal/ace"
)

// Policy selects the granularity-adjustment algorithm.
type Policy int

const (
	// PolicyFixed keeps η at its initial value (FG⁺ is η=+Inf, FG⁻ is η=0).
	PolicyFixed Policy = iota
	// PolicyGA is the exact algorithm: every update timestamped, every
	// recorded time a candidate.
	PolicyGA
	// PolicyGAwD is GA with discretization: k candidate granularities,
	// estimated update costs.
	PolicyGAwD
)

func (p Policy) String() string {
	switch p {
	case PolicyGA:
		return "GA"
	case PolicyGAwD:
		return "GAwD"
	}
	return "fixed"
}

// Config parameterizes a Tuner.
type Config struct {
	Policy   Policy
	K        int          // number of GAwD candidates (paper default 4)
	Category ace.Category // selects the staleness function τ
	// TB maps cumulative outgoing bytes to communication cost (Eq. 2);
	// TB is only charged for peers that received any bytes.
	TB func(bytes int) float64

	// Overhead model, in virtual cost units, charged back to the worker so
	// that T_a appears in the response time exactly as in Fig. 4c:
	// ClockCost per high-precision clock read (GA only), RecordCost per χ_v
	// bookkeeping entry, CandidateCost per S_η candidate scanned in phase 2
	// (GAwD pre-sizes S_η to k, so the charge is k per adjustment).
	ClockCost     float64
	RecordCost    float64
	CandidateCost float64

	EtaMin, EtaMax float64 // clamp for the adjusted η
}

// DefaultConfig returns the GAwD configuration used throughout the
// experiments (k = 4 per §VI-A).
func DefaultConfig(cat ace.Category, tb func(int) float64) Config {
	return Config{
		Policy: PolicyGAwD, K: 4, Category: cat, TB: tb,
		// A high-precision clock read costs several edge scans; GAwD's
		// whole point (§III-D) is replacing it with the |Y|+1 estimate.
		ClockCost: 8, RecordCost: 0.05, CandidateCost: 0.01,
		EtaMin: 8, EtaMax: 1 << 16,
	}
}

// TwSample pairs the estimated staleness (fixpoint substituted by x^{2η},
// Eq. 6) with the real staleness computed from the true fixpoint (Eq. 5);
// Fig. 4b plots these.
type TwSample struct {
	Est  float64
	Real float64
}

type record struct {
	local  uint32
	bucket int32
	rel    float64 // time since t0 (exact candidate time for GA)
	cost   float64
	delta  float64
}

type byteRec struct {
	peer   int
	bucket int32
	bytes  int
}

type vstate struct {
	cumCost  float64
	cumDelta float64
	lastIdx  int32 // index into valLog of the last value snapshot
}

// Tuner adjusts one worker's granularity bound η. It is generic in the
// status-variable type V so that Category II equality tests can snapshot
// values.
type Tuner[V any] struct {
	cfg   Config
	equal func(a, b V) bool
	delta func(a, b V) float64
	peers int

	eta     float64
	t0      float64
	active  bool // inside a collection+estimation cycle
	records []record
	vals    []V // value snapshots parallel to records
	bytes   []byteRec

	samples    []TwSample
	etaHistory []float64
	adjusts    int
	observer   func(AdjustInfo)
}

// AdjustInfo describes one granularity-adjustment decision for observers
// (tracing): what the sweep saw and what it chose. PhiLow/PhiHigh are the
// estimated effectiveness at η/2 and η driving the hill-climb; TwReal is
// only meaningful when HasReal is set (ground truth supplied).
type AdjustInfo struct {
	OldEta, NewEta float64
	// Candidates is the number of sweep candidates scanned (k for GAwD,
	// one per record for GA); Records is the χ_v log length.
	Candidates, Records int
	PhiLow, PhiHigh     float64
	TwEst, TwReal       float64
	HasReal             bool
}

// SetObserver registers a callback invoked at the end of every Adjust with
// the decision's inputs and outcome; nil unregisters. The callback runs
// synchronously on the worker's execution path, so it must be cheap.
func (t *Tuner[V]) SetObserver(fn func(AdjustInfo)) { t.observer = fn }

// NewTuner builds a tuner for one worker. equal and delta come from the
// program (Equal / Delta); peers is n-1 (used only for sizing).
func NewTuner[V any](cfg Config, equal func(a, b V) bool, delta func(a, b V) float64, peers int) *Tuner[V] {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.EtaMax == 0 {
		cfg.EtaMax = 1 << 26
	}
	if cfg.EtaMin == 0 {
		cfg.EtaMin = 1
	}
	return &Tuner[V]{cfg: cfg, equal: equal, delta: delta, peers: peers}
}

// Active reports whether the tuner adjusts η at all.
func (t *Tuner[V]) Active() bool { return t.cfg.Policy != PolicyFixed }

// Begin starts a collection cycle at virtual time now with the current η.
func (t *Tuner[V]) Begin(now, eta float64) {
	if !t.Active() || math.IsInf(eta, 1) || eta <= 0 {
		return
	}
	t.eta = eta
	t.t0 = now
	t.active = true
	t.records = t.records[:0]
	t.vals = t.vals[:0]
	t.bytes = t.bytes[:0]
}

// Collecting reports whether now falls inside the information-collection
// phase (the first η of the cycle).
func (t *Tuner[V]) Collecting(now float64) bool {
	return t.active && now < t.t0+t.eta
}

// Due reports whether the estimation phase has elapsed (now ≥ t0 + 2η), so
// Adjust should run.
func (t *Tuner[V]) Due(now float64) bool {
	return t.active && now >= t.t0+2*t.eta
}

// CycleOpen reports whether a collection/estimation cycle is in progress.
func (t *Tuner[V]) CycleOpen() bool { return t.active }

func (t *Tuner[V]) bucketOf(now float64) int32 {
	if t.cfg.Policy == PolicyGA {
		return int32(len(t.records)) // every record its own candidate
	}
	b := int32(float64(t.cfg.K) * (now - t.t0) / t.eta)
	if b < 0 {
		b = 0
	}
	if b >= int32(t.cfg.K) {
		b = int32(t.cfg.K) - 1
	}
	return b
}

// Record adds one χ_v entry: the update of local at virtual time now with
// the given amortized cost, producing value val with change magnitude
// delta. It returns the bookkeeping overhead to charge to the worker.
func (t *Tuner[V]) Record(local uint32, now, cost float64, val V, delta float64) float64 {
	if !t.Collecting(now) {
		return 0
	}
	t.records = append(t.records, record{local: local, bucket: t.bucketOf(now), rel: now - t.t0, cost: cost, delta: delta})
	t.vals = append(t.vals, val)
	if t.cfg.Policy == PolicyGA {
		return t.cfg.ClockCost + t.cfg.RecordCost
	}
	return t.cfg.RecordCost
}

// RecordBytes adds an S_j entry: bytes appended for peer at time now.
func (t *Tuner[V]) RecordBytes(peer int, now float64, bytes int) {
	if !t.Collecting(now) || bytes <= 0 {
		return
	}
	t.bytes = append(t.bytes, byteRec{peer: peer, bucket: t.bucketOf(now), bytes: bytes})
}

// candidateTime maps a bucket to the candidate granularity it represents.
func (t *Tuner[V]) candidateTime(bucket int32) float64 {
	if t.cfg.Policy == PolicyGA {
		// For GA every record is a candidate at its exact recorded time.
		// bucketOf stamps each record with its own index, so bucket is a
		// valid index whenever records is non-empty; the clamp only
		// defends against a malformed bucket reaching a short log.
		if bucket >= int32(len(t.records)) {
			bucket = int32(len(t.records)) - 1
		}
		if bucket < 0 {
			return t.eta / float64(len(t.records)+1)
		}
		r := t.records[bucket].rel
		if r <= 0 {
			r = t.eta / float64(len(t.records)+1)
		}
		return r
	}
	return t.eta * (float64(bucket) + 1) / float64(t.cfg.K)
}

// sweep evaluates T_w and T_c incrementally over candidates using the given
// fixpoint oracle, returning the per-candidate φ values, the candidate
// times, and T_w at the final candidate (t = η).
func (t *Tuner[V]) sweep(fix func(local uint32) V) (phis, times []float64, twAtEta float64) {
	state := make(map[uint32]*vstate, 256)
	contrib := func(vs *vstate, local uint32) float64 {
		switch t.cfg.Category {
		case ace.CategoryI:
			return 0
		case ace.CategoryII:
			if t.equal(t.vals[vs.lastIdx], fix(local)) {
				return 0
			}
			return vs.cumCost
		default: // Category III, Eq. 9
			dstar := t.delta(t.vals[vs.lastIdx], fix(local))
			den := vs.cumDelta + dstar
			if den == 0 {
				return 0
			}
			return vs.cumCost * dstar / den
		}
	}

	tw := 0.0
	tc := 0.0
	peerBytes := make(map[int]int, t.peers)
	alpha := t.cfg.TB(0) // fixed per-batch part of T_B
	bi := 0

	emit := func(tc64 float64, tcand float64) {
		phi := (tcand - tw) / (tcand + tc64)
		phis = append(phis, phi)
		times = append(times, tcand)
	}

	flushBucket := func(b int32) {
		// Fold in byte records up to bucket b.
		for bi < len(t.bytes) && t.bytes[bi].bucket <= b {
			r := t.bytes[bi]
			prev := peerBytes[r.peer]
			if prev == 0 {
				tc += alpha
			}
			tc += t.cfg.TB(prev+r.bytes) - t.cfg.TB(prev) // β·Δbytes
			peerBytes[r.peer] = prev + r.bytes
			bi++
		}
	}

	last := int32(-1)
	for i, r := range t.records {
		if r.bucket != last {
			if last >= 0 {
				flushBucket(last)
				emit(tc, t.candidateTime(last))
			}
			last = r.bucket
		}
		vs := state[r.local]
		if vs == nil {
			vs = &vstate{}
			state[r.local] = vs
		} else {
			tw -= contrib(vs, r.local)
		}
		vs.cumCost += r.cost
		vs.cumDelta += r.delta
		vs.lastIdx = int32(i)
		tw += contrib(vs, r.local)
	}
	if last >= 0 {
		flushBucket(last)
		emit(tc, t.candidateTime(last))
	}
	twAtEta = tw
	return phis, times, twAtEta
}

// Adjust runs the granularity-adjustment phase (lines 9–18 of Algorithm 2):
// it estimates φ for every candidate using the intermediate values x^{t=2η}
// as the fixpoint substitute (cur), picks the best granularity, and returns
// the new η together with the modeled adjustment overhead T_a. When truth
// is non-nil the real staleness T_w* is also computed and a TwSample
// recorded (Fig. 4b). The cycle ends; call Begin to start the next one.
func (t *Tuner[V]) Adjust(cur func(local uint32) V, truth func(local uint32) V) (newEta, overhead float64) {
	if !t.active {
		return t.eta, 0
	}
	t.active = false
	t.adjusts++

	// Overhead: phase-1 bookkeeping was charged per record; phase-2 scans
	// the candidate structures, whose size is k for GAwD (pre-allocated,
	// per the discretization) and the full record log for GA.
	candidates := len(t.records)
	if t.cfg.Policy == PolicyGAwD {
		candidates = t.cfg.K
	}
	overhead = t.cfg.CandidateCost * float64(candidates)

	if len(t.records) == 0 {
		t.etaHistory = append(t.etaHistory, t.eta)
		if t.observer != nil {
			t.observer(AdjustInfo{OldEta: t.eta, NewEta: t.eta, Candidates: candidates})
		}
		return t.eta, overhead
	}

	phis, times, twEst := t.sweep(cur)
	if len(phis) == 0 {
		// Unreachable with a non-empty record log (sweep always emits at
		// least one candidate), but a hold is the only sane answer here.
		t.etaHistory = append(t.etaHistory, t.eta)
		if t.observer != nil {
			t.observer(AdjustInfo{OldEta: t.eta, NewEta: t.eta, Candidates: candidates, Records: len(t.records), TwEst: twEst})
		}
		return t.eta, overhead
	}
	info := AdjustInfo{OldEta: t.eta, Candidates: candidates, Records: len(t.records), TwEst: twEst}
	if truth != nil {
		_, _, twReal := t.sweep(truth)
		t.samples = append(t.samples, TwSample{Est: twEst, Real: twReal})
		info.TwReal, info.HasReal = twReal, true
	}

	// Damped hill climbing on the estimated profile: compare the
	// effectiveness of truncating at η/2 against running the full η. The
	// growth margin is larger than the shrink margin because the fixpoint
	// substitute x^{2η} systematically favors later candidates (values
	// recorded late had more time to converge toward it), which would
	// otherwise always read as "still rising".
	phiAt := func(frac float64) float64 {
		cut := frac * t.eta
		v := phis[0]
		for i, tc := range times {
			if tc <= cut {
				v = phis[i]
			}
		}
		return v
	}
	low, high := phiAt(0.5), phiAt(1.0)
	switch {
	case high > low*1.3+0.02:
		newEta = 2 * t.eta // genuinely rising: explore beyond η
	case low > high*1.1+0.01:
		newEta = t.eta / 2 // falling: finer granularity is more effective
	default:
		newEta = t.eta // flat or noise: hold
	}
	if newEta < t.cfg.EtaMin {
		newEta = t.cfg.EtaMin
	}
	if newEta > t.cfg.EtaMax {
		newEta = t.cfg.EtaMax
	}
	t.etaHistory = append(t.etaHistory, newEta)
	if t.observer != nil {
		info.NewEta, info.PhiLow, info.PhiHigh = newEta, low, high
		t.observer(info)
	}
	return newEta, overhead
}

// Samples returns the (estimated, real) staleness pairs gathered so far.
func (t *Tuner[V]) Samples() []TwSample { return t.samples }

// EtaHistory returns the sequence of adjusted granularity bounds.
func (t *Tuner[V]) EtaHistory() []float64 { return t.etaHistory }

// Adjustments returns how many times Adjust ran.
func (t *Tuner[V]) Adjustments() int { return t.adjusts }
