package adapt

import (
	"math"
	"testing"
	"testing/quick"

	"argan/internal/ace"
)

func tb(bytes int) float64 {
	if bytes <= 0 {
		return 6
	}
	return 6 + 0.01*float64(bytes)
}

func newTestTuner(policy Policy, cat ace.Category, k int) *Tuner[float64] {
	cfg := DefaultConfig(cat, tb)
	cfg.Policy = policy
	cfg.K = k
	return NewTuner[float64](cfg,
		func(a, b float64) bool { return a == b },
		func(a, b float64) float64 { return math.Abs(a - b) },
		4)
}

func TestLifecycle(t *testing.T) {
	tu := newTestTuner(PolicyGAwD, ace.CategoryII, 4)
	if !tu.Active() || tu.CycleOpen() {
		t.Fatal("fresh tuner state wrong")
	}
	tu.Begin(100, 64)
	if !tu.CycleOpen() || !tu.Collecting(110) || tu.Collecting(200) {
		t.Fatal("phase boundaries wrong")
	}
	if tu.Due(150) || !tu.Due(228) {
		t.Fatal("due boundary wrong")
	}
	tu.Adjust(func(uint32) float64 { return 0 }, nil)
	if tu.CycleOpen() {
		t.Fatal("cycle should close after Adjust")
	}
	if tu.Adjustments() != 1 || len(tu.EtaHistory()) != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestFixedPolicyInert(t *testing.T) {
	tu := newTestTuner(PolicyFixed, ace.CategoryII, 4)
	tu.Begin(0, 64)
	if tu.CycleOpen() || tu.Record(1, 1, 5, 1, 0) != 0 {
		t.Fatal("fixed policy must not collect")
	}
}

func TestInfiniteEtaInert(t *testing.T) {
	tu := newTestTuner(PolicyGAwD, ace.CategoryII, 4)
	tu.Begin(0, math.Inf(1))
	if tu.CycleOpen() {
		t.Fatal("infinite eta cannot run a cycle")
	}
}

func TestRecordOverheads(t *testing.T) {
	ga := newTestTuner(PolicyGA, ace.CategoryII, 4)
	ga.Begin(0, 1000)
	gaCost := ga.Record(1, 10, 5, 1, 0)
	gawd := newTestTuner(PolicyGAwD, ace.CategoryII, 4)
	gawd.Begin(0, 1000)
	gawdCost := gawd.Record(1, 10, 5, 1, 0)
	if gaCost <= gawdCost {
		t.Fatalf("GA per-record cost (%v) must exceed GAwD's (%v): the clock reads", gaCost, gawdCost)
	}
	// Outside the collection window nothing is recorded.
	if gawd.Record(1, 1500, 5, 1, 0) != 0 {
		t.Fatal("record outside collection window")
	}
}

func TestAdjustShrinksWhenEarlyCandidatesWin(t *testing.T) {
	// Category II: all values recorded late differ from the fixpoint (stale
	// tail), early values equal it -> phi falls with t -> eta shrinks.
	tu := newTestTuner(PolicyGAwD, ace.CategoryII, 4)
	tu.Begin(0, 1000)
	// Early bucket: value 1 (the fixpoint) at low cost.
	tu.Record(1, 100, 50, 1, 0)
	// Later buckets: values that will not match the fixpoint.
	tu.Record(2, 400, 200, 7, 1)
	tu.Record(3, 600, 200, 8, 1)
	tu.Record(4, 900, 300, 9, 1)
	fix := func(l uint32) float64 {
		if l == 1 {
			return 1
		}
		return 0 // none of the others reached their fixpoint
	}
	newEta, overhead := tu.Adjust(fix, nil)
	if newEta >= 1000 {
		t.Fatalf("eta should shrink, got %v", newEta)
	}
	if overhead <= 0 {
		t.Fatal("phase-2 scan must cost something")
	}
}

func TestAdjustGrowsWhenPhiRises(t *testing.T) {
	// All recorded work converged (matches fixpoint): zero staleness, and
	// a large fixed per-batch T_B cost that amortizes with larger t ->
	// phi rises steeply -> eta doubles.
	cfg := DefaultConfig(ace.CategoryII, func(bytes int) float64 { return 300 + 0.01*float64(bytes) })
	tu := NewTuner[float64](cfg, func(a, b float64) bool { return a == b },
		func(a, b float64) float64 { return math.Abs(a - b) }, 4)
	tu.Begin(0, 100)
	vals := []float64{1, 2, 3, 4}
	times := []float64{10, 40, 60, 90}
	for i := range vals {
		tu.Record(uint32(i), times[i], 10, vals[i], 0)
		tu.RecordBytes(1, times[i], 40)
	}
	fix := func(l uint32) float64 { return vals[l] }
	newEta, _ := tu.Adjust(fix, nil)
	if newEta != 200 {
		t.Fatalf("eta should double to 200, got %v", newEta)
	}
}

func TestCategoryIStalenessZero(t *testing.T) {
	tu := newTestTuner(PolicyGAwD, ace.CategoryI, 4)
	tu.Begin(0, 1000)
	tu.Record(1, 100, 50, 1, 1)
	tu.Record(2, 800, 300, 9, 5)
	phis, _, tw := tu.sweep(func(uint32) float64 { return 0 })
	if tw != 0 {
		t.Fatalf("category I staleness must be 0, got %v", tw)
	}
	for _, p := range phis {
		if p <= 0 {
			t.Fatalf("phi must be positive with zero staleness: %v", phis)
		}
	}
}

func TestCategoryIIIRatio(t *testing.T) {
	tu := newTestTuner(PolicyGAwD, ace.CategoryIII, 4)
	tu.Begin(0, 1000)
	// One vertex, cost 100, moved by delta 3; fixpoint is 2 further away.
	tu.Record(1, 500, 100, 3, 3)
	_, _, tw := tu.sweep(func(uint32) float64 { return 5 })
	want := 100 * 2.0 / (3 + 2)
	if math.Abs(tw-want) > 1e-9 {
		t.Fatalf("Eq.9 staleness = %v, want %v", tw, want)
	}
}

func TestTwSamplesWithTruth(t *testing.T) {
	tu := newTestTuner(PolicyGAwD, ace.CategoryII, 4)
	tu.Begin(0, 1000)
	tu.Record(1, 100, 50, 1, 0)
	tu.Record(2, 600, 70, 2, 0)
	cur := func(l uint32) float64 { return float64(l) } // both match x^{2eta}
	truth := func(l uint32) float64 { return -1 }       // nothing matches truth
	tu.Adjust(cur, truth)
	s := tu.Samples()
	if len(s) != 1 {
		t.Fatalf("want 1 sample, got %d", len(s))
	}
	if !(s[0].Est <= s[0].Real) {
		t.Fatalf("estimate (%v) should not exceed real staleness (%v) here", s[0].Est, s[0].Real)
	}
}

func TestEtaClamp(t *testing.T) {
	cfg := DefaultConfig(ace.CategoryII, tb)
	cfg.EtaMin, cfg.EtaMax = 100, 1500
	tu := NewTuner[float64](cfg, func(a, b float64) bool { return a == b }, func(a, b float64) float64 { return 0 }, 2)
	tu.Begin(0, 1000)
	vals := []float64{1, 2, 3, 4}
	for i := range vals {
		tu.Record(uint32(i), float64(100+250*i), 100, vals[i], 0)
		tu.RecordBytes(1, float64(100+250*i), 40)
	}
	newEta, _ := tu.Adjust(func(l uint32) float64 { return vals[l] }, nil)
	if newEta > 1500 {
		t.Fatalf("eta exceeds clamp: %v", newEta)
	}
}

// Property: bucket indices are within [0, k) for any time inside the
// collection window.
func TestBucketRange(t *testing.T) {
	f := func(raw uint16, kRaw uint8) bool {
		k := int(kRaw%30) + 2
		tu := newTestTuner(PolicyGAwD, ace.CategoryII, k)
		tu.Begin(0, 1000)
		now := float64(raw) / 65.536 // 0..1000
		b := tu.bucketOf(now)
		return b >= 0 && int(b) < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyGA.String() != "GA" || PolicyGAwD.String() != "GAwD" || PolicyFixed.String() != "fixed" {
		t.Fatal("policy strings wrong")
	}
}

// TestAdjustDegenerateCycles is the regression suite for out-of-range
// access on near-empty collection cycles: Adjust must hold η (and stay
// panic-free) on zero-record cycles, single-record cycles, and cycles
// that recorded only outgoing bytes, under both GA and GAwD.
func TestAdjustDegenerateCycles(t *testing.T) {
	for _, policy := range []Policy{PolicyGA, PolicyGAwD} {
		t.Run(policy.String()+"/zero_records", func(t *testing.T) {
			tu := newTestTuner(policy, ace.CategoryII, 4)
			tu.Begin(0, 64)
			newEta, overhead := tu.Adjust(func(uint32) float64 { return 0 }, nil)
			if newEta != 64 {
				t.Fatalf("zero-record Adjust moved eta: %v", newEta)
			}
			if overhead < 0 {
				t.Fatalf("negative overhead %v", overhead)
			}
			if tu.Adjustments() != 1 || len(tu.EtaHistory()) != 1 || tu.EtaHistory()[0] != 64 {
				t.Fatalf("bookkeeping wrong: adjusts=%d history=%v", tu.Adjustments(), tu.EtaHistory())
			}
		})
		t.Run(policy.String()+"/single_record", func(t *testing.T) {
			tu := newTestTuner(policy, ace.CategoryII, 4)
			tu.Begin(0, 64)
			tu.Record(3, 10, 2, 1.5, 0.5)
			newEta, _ := tu.Adjust(func(uint32) float64 { return 1.5 }, nil)
			if newEta <= 0 || math.IsNaN(newEta) {
				t.Fatalf("single-record Adjust produced eta=%v", newEta)
			}
		})
		t.Run(policy.String()+"/bytes_only", func(t *testing.T) {
			tu := newTestTuner(policy, ace.CategoryII, 4)
			tu.Begin(0, 64)
			tu.RecordBytes(1, 5, 128)
			tu.RecordBytes(2, 20, 64)
			newEta, _ := tu.Adjust(func(uint32) float64 { return 0 }, nil)
			if newEta != 64 {
				t.Fatalf("bytes-only Adjust moved eta: %v", newEta)
			}
		})
	}
}

// TestAdjustZeroRecordObserver: the observer must still see a (held)
// decision on a zero-record cycle, so traces stay complete.
func TestAdjustZeroRecordObserver(t *testing.T) {
	tu := newTestTuner(PolicyGAwD, ace.CategoryII, 4)
	var got []AdjustInfo
	tu.SetObserver(func(i AdjustInfo) { got = append(got, i) })
	tu.Begin(0, 32)
	tu.Adjust(func(uint32) float64 { return 0 }, nil)
	if len(got) != 1 || got[0].OldEta != 32 || got[0].NewEta != 32 || got[0].Records != 0 {
		t.Fatalf("observer saw %+v", got)
	}
}
