package graph

import "testing"

func TestComputeStatsBasics(t *testing.T) {
	g := Chain(10, true)
	st := ComputeStats(g)
	if st.Vertices != 10 || st.Arcs != 9 || st.MaxDegree != 1 {
		t.Fatalf("%+v", st)
	}
	if st.GiantComponentFrac != 1 {
		t.Fatalf("chain is one weak component: %v", st.GiantComponentFrac)
	}
	if s := ComputeStats(NewBuilder(0, true).MustBuild()); s.Vertices != 0 {
		t.Fatalf("empty graph stats: %+v", s)
	}
}

func TestComputeStatsSkew(t *testing.T) {
	star := Star(1000, false)
	st := ComputeStats(star)
	if st.MaxDegree != 999 || st.Skew < 400 {
		t.Fatalf("star skew missing: %+v", st)
	}
	uni := Uniform(GenConfig{N: 2000, M: 10000, Directed: true, Seed: 1})
	if ComputeStats(uni).Skew > 10 {
		t.Fatalf("uniform graph should have low skew: %+v", ComputeStats(uni))
	}
}

// The dataset stand-ins must preserve the structural properties the
// substitution argument relies on: heavy-tailed degrees for the social
// graphs and a dominant weak giant component (the paper requires SSSP
// sources reaching >90% of vertices).
func TestDatasetStandInsAreFaithful(t *testing.T) {
	for _, name := range []string{"LJ", "TW", "FS", "HW", "UK"} {
		g := MustDataset(name, 0.05)
		st := ComputeStats(g)
		minSkew := 15.0
		if name == "HW" {
			minSkew = 8 // dense collaboration network: milder hub skew
		}
		if st.Skew < minSkew {
			t.Fatalf("%s: degree skew too low for a social/web graph: %+v", name, st)
		}
		if st.GiantComponentFrac < 0.6 {
			t.Fatalf("%s: giant component too small: %+v", name, st)
		}
		if st.PowerLawAlpha < 1.2 || st.PowerLawAlpha > 5 {
			t.Fatalf("%s: implausible tail exponent %v", name, st.PowerLawAlpha)
		}
	}
	// DP is sparse and fragmented by construction; only check labeling.
	dp := MustDataset("DP", 0.05)
	if !dp.Labeled() {
		t.Fatal("DP must be labeled")
	}
}

func TestPowerLawAlphaRecovered(t *testing.T) {
	// The Chung-Lu generator targets alpha = 2.5; the Hill estimate over
	// the tail should land in a band around it.
	g := PowerLaw(GenConfig{N: 20000, M: 280000, Directed: true, Seed: 5, Alpha: 2.5})
	st := ComputeStats(g)
	if st.PowerLawAlpha < 1.6 || st.PowerLawAlpha > 3.8 {
		t.Fatalf("tail exponent estimate %v too far from 2.5", st.PowerLawAlpha)
	}
}
