package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Dataset is a named recipe for a synthetic stand-in of one of the paper's
// six real-life graphs (Table IV), scaled down so experiments run on one
// machine. The stand-ins preserve directedness, network type (degree
// distribution / diameter shape) and relative size ordering.
type Dataset struct {
	Name     string // paper abbreviation: HW, DP, LJ, TW, FS, UK
	Kind     string // network type from Table IV
	Directed bool
	Scale    float64 // |V| relative to LJ'
	Build    func(scale float64) *Graph
}

// scaleBase is the |V| of the LJ stand-in at scale 1. The paper's LJ has
// 4.8e6 vertices; the stand-in defaults to 4.8e4 (a 100x reduction) with the
// same average degree.
const scaleBase = 48_000

var datasets = map[string]Dataset{
	// Hollywood: undirected collaboration network, dense (avg degree ~51).
	"HW": {Name: "HW", Kind: "collaboration", Directed: false, Build: func(s float64) *Graph {
		n := int(11_000 * s)
		return PowerLaw(GenConfig{N: n, M: 25 * n, Directed: false, Alpha: 2.3, Seed: 101, MaxW: 100, Labels: 16})
	}},
	// DBpedia: directed labeled knowledge base, sparse (avg degree ~5).
	"DP": {Name: "DP", Kind: "knowledge base", Directed: true, Build: func(s float64) *Graph {
		n := int(62_000 * s)
		return KnowledgeBase(GenConfig{N: n, M: 5 * n, Seed: 102, MaxW: 100, Labels: 24})
	}},
	// LiveJournal: directed social network (avg degree ~14).
	"LJ": {Name: "LJ", Kind: "social network", Directed: true, Build: func(s float64) *Graph {
		n := int(48_000 * s)
		return PowerLaw(GenConfig{N: n, M: 14 * n, Directed: true, Alpha: 2.5, Seed: 103, MaxW: 100, Labels: 16})
	}},
	// Twitter: directed social network with extreme skew (avg degree ~36).
	"TW": {Name: "TW", Kind: "social network", Directed: true, Build: func(s float64) *Graph {
		n := int(84_000 * s)
		return RMAT(GenConfig{N: n, M: 18 * n, Directed: true, Seed: 104, MaxW: 100, Labels: 16})
	}},
	// Friendster: undirected social network (avg degree ~27).
	"FS": {Name: "FS", Kind: "social network", Directed: false, Build: func(s float64) *Graph {
		n := int(96_000 * s)
		return PowerLaw(GenConfig{N: n, M: 13 * n, Directed: false, Alpha: 2.5, Seed: 105, MaxW: 100, Labels: 16})
	}},
	// UKWeb: directed hyperlink graph, very dense (avg degree ~34).
	"UK": {Name: "UK", Kind: "hyperlink", Directed: true, Build: func(s float64) *Graph {
		n := int(110_000 * s)
		return RMAT(GenConfig{N: n, M: 17 * n, Directed: true, Seed: 106, MaxW: 100, Labels: 16})
	}},
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]*Graph{}
)

// LoadDataset builds (and memoizes) the stand-in for the named paper dataset
// at the given scale (1.0 = default reduced size; smaller values shrink the
// graph further, which tests use to stay fast).
//
// The memoized instance is shared across trials, so it is frozen at build
// time: every later load re-verifies the structural fingerprint and fails
// loudly if any caller mutated the graph through an aliasing accessor —
// otherwise one trial could silently poison every subsequent one.
func LoadDataset(name string, scale float64) (*Graph, error) {
	d, ok := datasets[name]
	if !ok {
		return nil, fmt.Errorf("graph: unknown dataset %q (have %v)", name, DatasetNames())
	}
	key := fmt.Sprintf("%s@%g", name, scale)
	dsMu.Lock()
	defer dsMu.Unlock()
	if g, ok := dsCache[key]; ok {
		if err := g.CheckFrozen(); err != nil {
			return nil, fmt.Errorf("graph: cached dataset %s is corrupt: %w", key, err)
		}
		return g, nil
	}
	g := d.Build(scale)
	g.Freeze()
	dsCache[key] = g
	return g, nil
}

// MustDataset is LoadDataset that panics on an unknown name.
func MustDataset(name string, scale float64) *Graph {
	g, err := LoadDataset(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// DatasetNames lists the registered stand-ins in a stable order.
func DatasetNames() []string {
	names := make([]string, 0, len(datasets))
	for n := range datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DatasetInfo returns the registry entry for name.
func DatasetInfo(name string) (Dataset, bool) {
	d, ok := datasets[name]
	return d, ok
}
