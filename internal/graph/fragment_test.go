package graph

import (
	"testing"
	"testing/quick"
)

func hashOwner(n, workers int) []uint16 {
	owner := make([]uint16, n)
	for v := range owner {
		x := uint32(v) * 2654435761
		x ^= x >> 16
		owner[v] = uint16(x % uint32(workers))
	}
	return owner
}

func TestBuildFragmentsBasic(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, plus 3 -> 0. Two workers by parity.
	g := NewBuilder(4, true).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 0).MustBuild()
	owner := []uint16{0, 1, 0, 1}
	frags, err := BuildFragments(g, owner, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0 := frags[0]
	if f0.NumOwned() != 2 || f0.NumGhosts() != 2 {
		t.Fatalf("f0: %v", f0)
	}
	// Every vertex is a ghost on the other fragment here (cycle).
	l0, ok := f0.Local(0)
	if !ok || !f0.IsOwned(l0) || f0.Global(l0) != 0 {
		t.Fatalf("local mapping broken")
	}
	l1, ok := f0.Local(1)
	if !ok || f0.IsOwned(l1) {
		t.Fatal("vertex 1 should be a ghost on worker 0")
	}
	// Out-adjacency of owned vertex 0 must contain local index of 1.
	found := false
	for _, u := range f0.OutNeighbors(l0) {
		if f0.Global(u) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("missing arc 0->1 in fragment 0")
	}
	// Vertex 0 has out-neighbor 1 owned by worker 1 => replicated there.
	reps := f0.ReplicasOut(l0)
	if len(reps) != 1 || reps[0] != 1 {
		t.Fatalf("replicasOut(0) = %v", reps)
	}
	// Vertex 0 has in-neighbor 3 owned by worker 1.
	repsIn := f0.ReplicasIn(l0)
	if len(repsIn) != 1 || repsIn[0] != 1 {
		t.Fatalf("replicasIn(0) = %v", repsIn)
	}
}

func TestBuildFragmentsErrors(t *testing.T) {
	g := Chain(4, true)
	if _, err := BuildFragments(g, []uint16{0, 0}, 2); err == nil {
		t.Fatal("want length error")
	}
	if _, err := BuildFragments(g, []uint16{0, 0, 0, 9}, 2); err == nil {
		t.Fatal("want range error")
	}
}

// Fragment invariants, checked over random graphs and partitions:
//  1. owned sets are disjoint and cover V;
//  2. every arc of G appears in the out-CSR of the owner of its source (and
//     total owned-source arcs equals |E|);
//  3. ghosts are exactly the vertices adjacent to owned vertices;
//  4. replica lists are consistent: w in ReplicasOut(v) iff v is present on
//     w's fragment with an arc v->u, owner(u)=w.
func TestFragmentInvariants(t *testing.T) {
	check := func(seed int64, workers int, directed bool) bool {
		g := PowerLaw(GenConfig{N: 120, M: 600, Directed: directed, Seed: seed, MaxW: 4})
		owner := hashOwner(g.NumVertices(), workers)
		frags, err := BuildFragments(g, owner, workers)
		if err != nil {
			return false
		}
		// (1) cover
		seen := make([]int, g.NumVertices())
		for _, f := range frags {
			for l := uint32(0); int(l) < f.NumOwned(); l++ {
				seen[f.Global(l)]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// (2) arcs with owned source
		totalOwnedArcs := 0
		for _, f := range frags {
			for l := uint32(0); int(l) < f.NumOwned(); l++ {
				v := f.Global(l)
				if f.OutDegree(l) != g.OutDegree(v) {
					return false
				}
				totalOwnedArcs += f.OutDegree(l)
				// every global out-neighbor must be present locally
				for _, lu := range f.OutNeighbors(l) {
					u := f.Global(lu)
					if !g.HasEdge(v, u) {
						return false
					}
				}
			}
		}
		if totalOwnedArcs != g.NumEdges() {
			return false
		}
		// (3) ghosts adjacency
		for _, f := range frags {
			for l := uint32(f.NumOwned()); int(l) < f.NumLocal(); l++ {
				if f.IsOwned(l) {
					return false
				}
				deg := f.OutDegree(l) + f.InDegree(l)
				if deg == 0 {
					return false // ghost with no local edge should not exist
				}
			}
		}
		// (4) replica consistency
		for _, f := range frags {
			for l := uint32(0); int(l) < f.NumOwned(); l++ {
				v := f.Global(l)
				want := map[uint16]bool{}
				for _, u := range g.OutNeighbors(v) {
					if owner[u] != uint16(f.Worker()) {
						want[owner[u]] = true
					}
				}
				reps := f.ReplicasOut(l)
				if len(reps) != len(want) {
					return false
				}
				for _, r := range reps {
					if !want[r] {
						return false
					}
					// and v must be present on r's fragment
					if _, ok := frags[r].Local(v); !ok {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(s int64, w uint8, d bool) bool {
		return check(s, int(w%7)+1, d)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentLabelsAndWeights(t *testing.T) {
	g := KnowledgeBase(GenConfig{N: 80, M: 320, Seed: 3, Labels: 6, MaxW: 10})
	owner := hashOwner(g.NumVertices(), 3)
	frags, err := BuildFragments(g, owner, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		for l := uint32(0); int(l) < f.NumLocal(); l++ {
			if f.Label(l) != g.Label(f.Global(l)) {
				t.Fatalf("label mismatch at %d", f.Global(l))
			}
		}
		for l := uint32(0); int(l) < f.NumOwned(); l++ {
			v := f.Global(l)
			gotW := f.OutWeights(l)
			wantW := g.OutWeights(v)
			if len(gotW) != len(wantW) {
				t.Fatalf("weights len mismatch at %d", v)
			}
		}
	}
}

func TestFragmentSingleWorker(t *testing.T) {
	g := Chain(10, true)
	frags, err := BuildFragments(g, make([]uint16, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	f := frags[0]
	if f.NumGhosts() != 0 || f.NumOwned() != 10 || f.NumArcs() != 9 {
		t.Fatalf("single worker fragment wrong: %v", f)
	}
	l5, _ := f.Local(5)
	if len(f.ReplicasOut(l5)) != 0 {
		t.Fatal("no replicas expected with 1 worker")
	}
}
