// Package graph provides the in-memory graph substrate used by the Argan
// engine: compact CSR storage, weighted and labeled graphs, builders,
// loaders, synthetic generators, and the Fragment type produced by
// partitioning (owned vertices plus ghost replicas with routing metadata).
package graph

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// VID identifies a vertex globally. Vertex identifiers are dense: a graph
// with n vertices uses identifiers 0..n-1.
type VID = uint32

// NoVID is a sentinel for "no vertex".
const NoVID = ^VID(0)

// Edge is a single directed (or half of an undirected) edge with a weight.
// The JSON form is used by the serve mutation API.
type Edge struct {
	Src VID     `json:"src"`
	Dst VID     `json:"dst"`
	W   float64 `json:"w,omitempty"`
}

// Graph is an immutable directed or undirected graph in CSR form. Undirected
// graphs store each edge in both directions, so OutDegree == InDegree for
// every vertex and the in- and out-adjacency share storage.
type Graph struct {
	n        int
	directed bool

	outIndex []int64
	outTo    []VID
	outW     []float64

	inIndex []int64
	inTo    []VID
	inW     []float64

	labels []int32 // optional vertex labels; nil when unlabeled

	// frozen guards shared instances (the dataset cache): once set, fprint
	// holds the structural fingerprint taken at freeze time, and any later
	// mutation through an aliasing accessor is detectable.
	frozen bool
	fprint uint64

	// version counts mutation batches applied since the base build:
	// ApplyMutations returns a fresh graph with version+1 and never touches
	// this one. fver records the version at freeze time, so a version bump
	// smuggled onto a frozen shared instance fails CheckFrozen with
	// ErrVersionMismatch even before re-fingerprinting.
	version uint64
	fver    uint64
}

// Version returns how many mutation batches separate this graph from its
// base build (0 for a freshly built graph).
func (g *Graph) Version() uint64 { return g.version }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of stored directed arcs. For an undirected
// graph this is twice the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.outTo) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Labeled reports whether vertices carry labels.
func (g *Graph) Labeled() bool { return g.labels != nil }

// Label returns the label of v, or 0 for unlabeled graphs.
func (g *Graph) Label(v VID) int32 {
	if g.labels == nil {
		return 0
	}
	return g.labels[v]
}

// Labels returns the underlying label slice (nil when unlabeled). The slice
// must not be modified.
func (g *Graph) Labels() []int32 { return g.labels }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VID) int { return int(g.outIndex[v+1] - g.outIndex[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VID) int { return int(g.inIndex[v+1] - g.inIndex[v]) }

// OutNeighbors returns the out-neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VID) []VID { return g.outTo[g.outIndex[v]:g.outIndex[v+1]] }

// OutWeights returns the weights parallel to OutNeighbors(v).
func (g *Graph) OutWeights(v VID) []float64 { return g.outW[g.outIndex[v]:g.outIndex[v+1]] }

// InNeighbors returns the in-neighbor list of v.
func (g *Graph) InNeighbors(v VID) []VID { return g.inTo[g.inIndex[v]:g.inIndex[v+1]] }

// InWeights returns the weights parallel to InNeighbors(v).
func (g *Graph) InWeights(v VID) []float64 { return g.inW[g.inIndex[v]:g.inIndex[v+1]] }

// Size returns |G| = |V| + |E| as used by the paper's scalability study.
func (g *Graph) Size() int64 { return int64(g.n) + int64(len(g.outTo)) }

func (g *Graph) String() string {
	kind := "directed"
	if !g.directed {
		kind = "undirected"
	}
	return fmt.Sprintf("graph{%s |V|=%d arcs=%d labeled=%v}", kind, g.n, len(g.outTo), g.labels != nil)
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; construct with NewBuilder.
type Builder struct {
	n        int
	directed bool
	edges    []Edge
	labels   []int32
	dedup    bool
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// SetDedup makes Build remove parallel edges, keeping the smallest weight.
func (b *Builder) SetDedup(on bool) *Builder { b.dedup = on; return b }

// AddEdge records an edge with weight 1.
func (b *Builder) AddEdge(src, dst VID) *Builder { return b.AddWeighted(src, dst, 1) }

// AddWeighted records a weighted edge. Self-loops are permitted; they are
// kept as-is (algorithms that cannot use them skip them).
func (b *Builder) AddWeighted(src, dst VID, w float64) *Builder {
	b.edges = append(b.edges, Edge{src, dst, w})
	return b
}

// SetLabel assigns a label to vertex v. Assigning any label makes the graph
// labeled; unassigned vertices keep label 0.
func (b *Builder) SetLabel(v VID, label int32) *Builder {
	if b.labels == nil {
		b.labels = make([]int32, b.n)
	}
	b.labels[v] = label
	return b
}

// NumPendingEdges returns the number of edges recorded so far.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build validates the recorded edges and produces the CSR graph. Edges with
// endpoints outside [0,n) cause an error.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if int(e.Src) >= b.n || int(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, b.n)
		}
	}
	arcs := b.edges
	if !b.directed {
		arcs = make([]Edge, 0, 2*len(b.edges))
		for _, e := range b.edges {
			arcs = append(arcs, e)
			if e.Src != e.Dst {
				arcs = append(arcs, Edge{e.Dst, e.Src, e.W})
			}
		}
	}
	if b.dedup {
		arcs = dedupEdges(arcs)
	}
	g := &Graph{n: b.n, directed: b.directed, labels: b.labels}
	g.outIndex, g.outTo, g.outW = buildCSR(b.n, arcs, false)
	if b.directed {
		g.inIndex, g.inTo, g.inW = buildCSR(b.n, arcs, true)
	} else {
		g.inIndex, g.inTo, g.inW = g.outIndex, g.outTo, g.outW
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func dedupEdges(arcs []Edge) []Edge {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Src != arcs[j].Src {
			return arcs[i].Src < arcs[j].Src
		}
		if arcs[i].Dst != arcs[j].Dst {
			return arcs[i].Dst < arcs[j].Dst
		}
		return arcs[i].W < arcs[j].W
	})
	out := arcs[:0]
	for i, e := range arcs {
		if i > 0 && e.Src == out[len(out)-1].Src && e.Dst == out[len(out)-1].Dst {
			continue
		}
		out = append(out, e)
	}
	return out
}

// buildCSR builds index/targets/weights arrays. When reverse is true the CSR
// is keyed by destination (an in-adjacency).
func buildCSR(n int, arcs []Edge, reverse bool) ([]int64, []VID, []float64) {
	index := make([]int64, n+1)
	for _, e := range arcs {
		k := e.Src
		if reverse {
			k = e.Dst
		}
		index[k+1]++
	}
	for i := 0; i < n; i++ {
		index[i+1] += index[i]
	}
	to := make([]VID, len(arcs))
	w := make([]float64, len(arcs))
	cursor := make([]int64, n)
	for _, e := range arcs {
		k, other := e.Src, e.Dst
		if reverse {
			k, other = e.Dst, e.Src
		}
		p := index[k] + cursor[k]
		cursor[k]++
		to[p] = other
		w[p] = e.W
	}
	// Sort each adjacency list for deterministic iteration and binary search.
	for v := 0; v < n; v++ {
		lo, hi := index[v], index[v+1]
		sortAdj(to[lo:hi], w[lo:hi])
	}
	return index, to, w
}

func sortAdj(to []VID, w []float64) {
	sort.Sort(&adjSorter{to, w})
}

type adjSorter struct {
	to []VID
	w  []float64
}

func (s *adjSorter) Len() int { return len(s.to) }
func (s *adjSorter) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
func (s *adjSorter) Less(i, j int) bool {
	if s.to[i] != s.to[j] {
		return s.to[i] < s.to[j]
	}
	return s.w[i] < s.w[j]
}

// Fingerprint returns an FNV-1a hash over the graph's entire structure:
// shape, CSR index/target arrays, weight bit patterns and labels. Two
// graphs with equal fingerprints are structurally identical for all
// practical purposes; a single flipped weight or rewired edge changes it.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w64(uint64(g.n))
	if g.directed {
		w64(1)
	} else {
		w64(0)
	}
	for _, v := range g.outIndex {
		w64(uint64(v))
	}
	for _, v := range g.outTo {
		w64(uint64(v))
	}
	for _, v := range g.outW {
		w64(math.Float64bits(v))
	}
	if g.directed {
		for _, v := range g.inIndex {
			w64(uint64(v))
		}
		for _, v := range g.inTo {
			w64(uint64(v))
		}
		for _, v := range g.inW {
			w64(math.Float64bits(v))
		}
	}
	w64(uint64(len(g.labels)))
	for _, v := range g.labels {
		w64(uint64(uint32(v)))
	}
	return h.Sum64()
}

// Mutation-safety errors for frozen shared graphs. Both are returned
// wrapped with context; test with errors.Is.
var (
	// ErrFrozenMutated means a frozen graph's structure no longer matches
	// the fingerprint recorded at freeze time: some writer mutated shared
	// data through an aliasing accessor.
	ErrFrozenMutated = errors.New("graph: frozen graph was mutated")
	// ErrVersionMismatch means a graph version does not match the one the
	// caller (or the freeze stamp) expected: the dataset evolved underneath
	// an operation that pinned an older version.
	ErrVersionMismatch = errors.New("graph: version mismatch")
)

// Freeze marks the graph as shared read-only and records its fingerprint
// and version. Adjacency accessors alias internal storage, so immutability
// cannot be enforced by the type system; Freeze + CheckFrozen make
// violations detectable instead. Freezing twice is a no-op.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	g.fprint = g.Fingerprint()
	g.fver = g.version
	g.frozen = true
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// FrozenFingerprint returns the fingerprint recorded at freeze time without
// rehashing. Fingerprint is O(E), so replay paths that already froze a graph
// (the durable WAL recovery comparing each replayed version against the
// fingerprint logged at commit time) read the stamp instead of paying the
// hash twice. ok is false for unfrozen graphs, whose stamp is meaningless.
func (g *Graph) FrozenFingerprint() (fp uint64, ok bool) {
	return g.fprint, g.frozen
}

// CheckFrozen re-validates a frozen graph and returns a typed error if it
// was mutated since Freeze (nil for unfrozen graphs): ErrVersionMismatch
// when the version counter moved — someone applied a mutation batch to the
// shared instance instead of the copy-on-write path — and ErrFrozenMutated
// when the structural fingerprint changed.
func (g *Graph) CheckFrozen() error {
	if !g.frozen {
		return nil
	}
	if g.version != g.fver {
		return fmt.Errorf("%w: frozen %v is at version %d, frozen at %d (mutations must go through ApplyMutations, which copies)",
			ErrVersionMismatch, g, g.version, g.fver)
	}
	if got := g.Fingerprint(); got != g.fprint {
		return fmt.Errorf("%w: %v fingerprint %#x, expected %#x (adjacency accessors alias internal storage and must be treated as read-only)",
			ErrFrozenMutated, g, got, g.fprint)
	}
	return nil
}

// HasEdge reports whether the arc src->dst exists.
func (g *Graph) HasEdge(src, dst VID) bool {
	adj := g.OutNeighbors(src)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= dst })
	return i < len(adj) && adj[i] == dst
}

// EdgeWeight returns the weight of the arc src->dst and whether it exists.
// With parallel arcs it returns the smallest weight (adjacency is sorted by
// target, then weight).
func (g *Graph) EdgeWeight(src, dst VID) (float64, bool) {
	adj := g.OutNeighbors(src)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= dst })
	if i < len(adj) && adj[i] == dst {
		return g.OutWeights(src)[i], true
	}
	return 0, false
}
