package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// edgeSpill records where a fragment's edge payload lives once it has been
// paged out. The CSR index arrays stay resident (8 bytes per local vertex);
// only the target/weight arrays — the bulk of a fragment at 12 bytes per arc
// per direction — move to disk. Records are immutable once written, so
// concurrent reads through os.File.ReadAt need no locking.
type edgeSpill struct {
	f    *os.File
	path string

	outToOff, outWOff int64
	inToOff, inWOff   int64
	outArcs, inArcs   int
	shared            bool // in-arrays aliased out-arrays before spilling
}

// EdgesSpilled reports whether the fragment's edge payload lives on disk.
func (f *Fragment) EdgesSpilled() bool { return f.espill != nil }

// EdgesResidentBytes returns the RAM held by the fragment's edge payload
// (the part SpillEdges can free); zero while spilled.
func (f *Fragment) EdgesResidentBytes() int64 {
	if f.espill != nil {
		return 0
	}
	b := int64(len(f.outTo))*4 + int64(len(f.outW))*8
	if !f.edgesShared() {
		b += int64(len(f.inTo))*4 + int64(len(f.inW))*8
	}
	return b
}

func (f *Fragment) edgesShared() bool {
	return len(f.inTo) > 0 && len(f.outTo) > 0 && &f.inTo[0] == &f.outTo[0]
}

// SpillEdges writes the fragment's edge target/weight arrays to a fresh file
// in dir and drops the in-RAM copies, freeing ~12 bytes per arc per stored
// direction. Adjacency accessors keep working, reading from disk on demand
// (StageStream of the degradation ladder: slower, never dead). The caller
// must ensure no accessor runs concurrently with the transition — in the
// live driver only the owning worker calls this, at a wave boundary.
// Returns the bytes freed; a no-op (0, nil) when already spilled.
func (f *Fragment) SpillEdges(dir string) (int64, error) {
	if f.espill != nil {
		return 0, nil
	}
	freed := f.EdgesResidentBytes()
	file, err := os.CreateTemp(dir, fmt.Sprintf("argan-edges-w%d-*.bin", f.worker))
	if err != nil {
		return 0, fmt.Errorf("graph: create edge spill: %w", err)
	}
	es := &edgeSpill{f: file, path: file.Name(), outArcs: len(f.outTo), inArcs: len(f.inTo), shared: f.edgesShared()}
	bw := bufio.NewWriter(file)
	off := int64(0)
	put := func(data any, bytes int64) int64 {
		o := off
		if err == nil {
			err = WriteLE(bw, data)
		}
		off += bytes
		return o
	}
	es.outToOff = put(f.outTo, int64(len(f.outTo))*4)
	es.outWOff = put(f.outW, int64(len(f.outW))*8)
	if es.shared {
		es.inToOff, es.inWOff = es.outToOff, es.outWOff
	} else {
		es.inToOff = put(f.inTo, int64(len(f.inTo))*4)
		es.inWOff = put(f.inW, int64(len(f.inW))*8)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		file.Close()
		os.Remove(es.path)
		return 0, fmt.Errorf("graph: spill edges of worker %d: %w", f.worker, err)
	}
	f.outTo, f.outW, f.inTo, f.inW = nil, nil, nil, nil
	f.espill = es
	return freed, nil
}

// UnspillEdges reloads the edge payload into RAM and removes the spill file.
// Returns the bytes brought back; a no-op (0, nil) when not spilled.
func (f *Fragment) UnspillEdges() (int64, error) {
	es := f.espill
	if es == nil {
		return 0, nil
	}
	if _, err := es.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("graph: unspill edges of worker %d: %w", f.worker, err)
	}
	br := bufio.NewReader(es.f)
	outTo := make([]uint32, es.outArcs)
	outW := make([]float64, es.outArcs)
	var err error
	if err = ReadLE(br, outTo); err == nil {
		err = ReadLE(br, outW)
	}
	inTo, inW := outTo, outW
	if !es.shared {
		inTo = make([]uint32, es.inArcs)
		inW = make([]float64, es.inArcs)
		if err == nil {
			err = ReadLE(br, inTo)
		}
		if err == nil {
			err = ReadLE(br, inW)
		}
	}
	if err != nil {
		return 0, fmt.Errorf("graph: unspill edges of worker %d: %w", f.worker, err)
	}
	f.outTo, f.outW, f.inTo, f.inW = outTo, outW, inTo, inW
	f.espill = nil
	es.f.Close()
	os.Remove(es.path)
	return f.EdgesResidentBytes(), nil
}

// readU32 loads the element range [lo, hi) of a spilled uint32 array.
func (es *edgeSpill) readU32(base, lo, hi int64) []uint32 {
	out := make([]uint32, hi-lo)
	if len(out) == 0 {
		return out
	}
	sr := io.NewSectionReader(es.f, base+4*lo, 4*(hi-lo))
	if err := ReadLE(sr, out); err != nil {
		panic(fmt.Sprintf("graph: spilled adjacency read [%d,%d) from %s failed: %v", lo, hi, es.path, err))
	}
	return out
}

// readF64 loads the element range [lo, hi) of a spilled float64 array.
func (es *edgeSpill) readF64(base, lo, hi int64) []float64 {
	out := make([]float64, hi-lo)
	if len(out) == 0 {
		return out
	}
	sr := io.NewSectionReader(es.f, base+8*lo, 8*(hi-lo))
	if err := ReadLE(sr, out); err != nil {
		panic(fmt.Sprintf("graph: spilled adjacency read [%d,%d) from %s failed: %v", lo, hi, es.path, err))
	}
	return out
}
