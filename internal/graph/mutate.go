package graph

import (
	"fmt"
	"sort"
)

// Streaming mutations over immutable CSR graphs. A MutationBatch is applied
// with ApplyMutations, which never touches the receiver: it returns a fresh
// graph at version+1 whose edge list is the old one ± the batch, plus the
// exact inverse batch for undo/property testing. Fragments follow with
// UpdateFragments, which rebuilds only the partitions an edge mutation can
// reach (the owners of its endpoints) and shares every other fragment's
// arrays with the previous version — tenants pinned to the old version keep
// reading data that is immutable by construction.

// MutationBatch is one atomic set of edge mutations. Deletes are applied
// before inserts, so a delete+insert of the same edge in one batch is a
// weight replacement. For undirected graphs an edge is identified by its
// unordered endpoint pair.
type MutationBatch struct {
	// Inserts adds edges. Inserting an existing edge replaces its weight.
	Inserts []Edge `json:"inserts,omitempty"`
	// Deletes removes edges (weights are ignored). Deleting an edge that
	// does not exist is an error: a versioned mutation API must fail loudly
	// rather than silently diverge from what the client believes the graph
	// contains.
	Deletes []Edge `json:"deletes,omitempty"`
}

// Empty reports whether the batch contains no mutations.
func (b MutationBatch) Empty() bool { return len(b.Inserts) == 0 && len(b.Deletes) == 0 }

// Size returns the number of mutations in the batch.
func (b MutationBatch) Size() int { return len(b.Inserts) + len(b.Deletes) }

// Endpoints returns every vertex named by the batch, deduplicated. This is
// the "touched" set consumed by UpdateFragments and the incremental
// planners: any structural change is confined to the adjacency of these
// vertices.
func (b MutationBatch) Endpoints() []VID {
	seen := make(map[VID]struct{}, 2*b.Size())
	var out []VID
	add := func(v VID) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, e := range b.Deletes {
		add(e.Src)
		add(e.Dst)
	}
	for _, e := range b.Inserts {
		add(e.Src)
		add(e.Dst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// edgeKey identifies an edge for mutation matching: ordered endpoints for
// directed graphs, unordered for undirected ones.
func edgeKey(directed bool, src, dst VID) [2]VID {
	if !directed && dst < src {
		src, dst = dst, src
	}
	return [2]VID{src, dst}
}

// logicalEdges reconstructs the builder-level edge list from the CSR: every
// arc for a directed graph; each undirected edge once (smaller endpoint
// first, self-loops included) for an undirected one.
func (g *Graph) logicalEdges() []Edge {
	out := make([]Edge, 0, len(g.outTo))
	for v := 0; v < g.n; v++ {
		adj, ws := g.OutNeighbors(VID(v)), g.OutWeights(VID(v))
		for i, u := range adj {
			if !g.directed && u < VID(v) {
				continue // the (u,v) arc carries this undirected edge
			}
			out = append(out, Edge{VID(v), u, ws[i]})
		}
	}
	return out
}

// ApplyMutations applies the batch to a copy of the graph and returns the
// new graph (version+1, unfrozen — callers freeze before sharing) together
// with the exact inverse batch: applying the inverse to the result restores
// a graph with a bit-identical fingerprint. The receiver is never modified,
// so it is safe to mutate "from" a frozen shared instance. The vertex set is
// fixed: edges must stay within [0, NumVertices). Cost is O(|E| + |B|).
//
// Semantics per operation (deletes first, then inserts):
//   - delete (u,v): removes the edge, all parallel copies included; an
//     absent edge is an error.
//   - insert (u,v,w): adds the edge; if (u,v) already exists — including
//     via a delete in this same batch — the insert replaces its weight.
func (g *Graph) ApplyMutations(b MutationBatch) (*Graph, MutationBatch, error) {
	for _, e := range b.Deletes {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			return nil, MutationBatch{}, fmt.Errorf("graph: delete (%d,%d) out of range for n=%d", e.Src, e.Dst, g.n)
		}
	}
	for _, e := range b.Inserts {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			return nil, MutationBatch{}, fmt.Errorf("graph: insert (%d,%d) out of range for n=%d", e.Src, e.Dst, g.n)
		}
	}

	dels := make(map[[2]VID]bool, len(b.Deletes))
	for _, e := range b.Deletes {
		dels[edgeKey(g.directed, e.Src, e.Dst)] = true
	}
	// Last insert of a key wins within one batch, like a sequential replay.
	ins := make(map[[2]VID]Edge, len(b.Inserts))
	insOrder := make([][2]VID, 0, len(b.Inserts))
	for _, e := range b.Inserts {
		k := edgeKey(g.directed, e.Src, e.Dst)
		if _, dup := ins[k]; !dup {
			insOrder = append(insOrder, k)
		}
		ins[k] = e
	}

	// One pass over the old edge list: record the prior copy of every edge
	// the batch names (for the inverse), keep everything the batch does not
	// replace or delete.
	nb := NewBuilder(g.n, g.directed)
	oldCopy := make(map[[2]VID]Edge, len(dels)+len(ins))
	for _, e := range g.logicalEdges() {
		k := edgeKey(g.directed, e.Src, e.Dst)
		_, inserted := ins[k]
		if dels[k] || inserted {
			if _, seen := oldCopy[k]; !seen {
				// Parallel copies collapse: the inverse restores one edge,
				// matching the "delete removes all copies" semantics.
				oldCopy[k] = e
			}
			continue
		}
		nb.AddWeighted(e.Src, e.Dst, e.W)
	}
	for k := range dels {
		if _, ok := oldCopy[k]; !ok {
			return nil, MutationBatch{}, fmt.Errorf("%w: delete (%d,%d): no such edge", ErrNoSuchEdge, k[0], k[1])
		}
	}

	var inverse MutationBatch
	// Pure deletions (not re-inserted in the same batch): restore the edge.
	for _, e := range b.Deletes {
		k := edgeKey(g.directed, e.Src, e.Dst)
		if old, ok := oldCopy[k]; ok {
			if _, reinserted := ins[k]; !reinserted {
				inverse.Inserts = append(inverse.Inserts, old)
				delete(oldCopy, k) // emit each restored edge once
			}
		}
	}
	// Inserts: replacements restore the old weight; fresh edges are deleted.
	for _, k := range insOrder {
		e := ins[k]
		nb.AddWeighted(e.Src, e.Dst, e.W)
		if old, ok := oldCopy[k]; ok {
			inverse.Inserts = append(inverse.Inserts, old)
		} else {
			inverse.Deletes = append(inverse.Deletes, Edge{Src: e.Src, Dst: e.Dst})
		}
	}

	if g.labels != nil {
		for v, l := range g.labels {
			if l != 0 {
				nb.SetLabel(VID(v), l)
			}
		}
		if len(g.labels) > 0 {
			nb.SetLabel(0, g.labels[0]) // force the labeled state even if all labels are 0
		}
	}
	ng, err := nb.Build()
	if err != nil {
		return nil, MutationBatch{}, err
	}
	ng.version = g.version + 1
	return ng, inverse, nil
}

// ErrNoSuchEdge is returned by ApplyMutations when a delete names an edge
// that does not exist in the graph.
var ErrNoSuchEdge = fmt.Errorf("graph: no such edge")

// UpdateFragments derives the fragment partition of newG from the previous
// version's fragments by copy-on-write: only the fragments owning an
// endpoint of a mutated edge are rebuilt; every other fragment is a shallow
// copy sharing all of its arrays with the old version (an arc lives only in
// the fragments owning one of its endpoints, so no other fragment's local
// CSR, ghost set or replica table can have changed). The old fragments stay
// fully usable — jobs pinned to the previous version keep running over them.
//
// touched is the set of vertices whose adjacency may differ between the two
// versions (MutationBatch.Endpoints, or a union of them across versions). It
// returns the new fragments plus the ids of the workers actually rebuilt.
func UpdateFragments(oldFrags []*Fragment, newG *Graph, touched []VID) ([]*Fragment, []int, error) {
	if len(oldFrags) == 0 {
		return nil, nil, fmt.Errorf("graph: no fragments to update")
	}
	owner := oldFrags[0].owner
	if len(owner) != newG.n {
		return nil, nil, fmt.Errorf("graph: owner assignment has %d entries, want %d (mutations cannot change the vertex set)", len(owner), newG.n)
	}
	numWorkers := oldFrags[0].numWorkers
	dirty := make([]bool, numWorkers)
	for _, v := range touched {
		if int(v) >= len(owner) {
			return nil, nil, fmt.Errorf("graph: touched vertex %d out of range for n=%d", v, newG.n)
		}
		dirty[owner[v]] = true
	}

	out := make([]*Fragment, numWorkers)
	var rebuilt []int
	for i, f := range oldFrags {
		// A fragment with spilled edges cannot share its spill file with a
		// sibling version (close/ownership would double up), so rebuild it.
		if dirty[i] || f.espill != nil {
			out[i] = buildFragment(newG, owner, numWorkers, i)
			rebuilt = append(rebuilt, i)
			continue
		}
		cp := *f
		cp.globalEdges = len(newG.outTo)
		out[i] = &cp
	}
	return out, rebuilt, nil
}
