package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func testGraph(t *testing.T, directed bool, seed int64) *Graph {
	t.Helper()
	return PowerLaw(GenConfig{N: 400, M: 2400, Directed: directed, Alpha: 2.5, Seed: seed, MaxW: 50})
}

// randomBatch builds a deterministic churn batch: frac of the existing
// edges deleted, the same number of fresh edges inserted, plus a few weight
// replacements.
func randomBatch(g *Graph, frac float64, seed int64) MutationBatch {
	r := rand.New(rand.NewSource(seed))
	edges := g.logicalEdges()
	k := int(float64(len(edges)) * frac)
	if k < 1 {
		k = 1
	}
	var b MutationBatch
	taken := map[[2]VID]bool{}
	for _, i := range r.Perm(len(edges))[:k] {
		e := edges[i]
		key := edgeKey(g.directed, e.Src, e.Dst)
		if taken[key] {
			continue
		}
		taken[key] = true
		b.Deletes = append(b.Deletes, Edge{Src: e.Src, Dst: e.Dst})
	}
	n := VID(g.NumVertices())
	for len(b.Inserts) < k {
		u, v := VID(r.Intn(int(n))), VID(r.Intn(int(n)))
		key := edgeKey(g.directed, u, v)
		if u == v || g.HasEdge(u, v) || (!g.directed && g.HasEdge(v, u)) || taken[key] {
			continue
		}
		taken[key] = true
		b.Inserts = append(b.Inserts, Edge{Src: u, Dst: v, W: 1 + 10*r.Float64()})
	}
	// A couple of weight replacements (insert over an existing edge).
	for _, i := range r.Perm(len(edges))[:2] {
		e := edges[i]
		key := edgeKey(g.directed, e.Src, e.Dst)
		if taken[key] {
			continue
		}
		taken[key] = true
		b.Inserts = append(b.Inserts, Edge{Src: e.Src, Dst: e.Dst, W: e.W + 3})
	}
	return b
}

// TestMutationInverseRestoresFingerprint is the inversion-soundness property
// test at the graph layer: applying a batch and then its exact inverse must
// restore a bit-identical structure (fingerprint included) at version+2.
func TestMutationInverseRestoresFingerprint(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for seed := int64(1); seed <= 5; seed++ {
			g := testGraph(t, directed, seed)
			want := g.Fingerprint()
			b := randomBatch(g, 0.02, seed*31)
			g2, inv, err := g.ApplyMutations(b)
			if err != nil {
				t.Fatalf("directed=%v seed=%d: apply: %v", directed, seed, err)
			}
			if g2.Version() != 1 {
				t.Fatalf("version after one batch = %d, want 1", g2.Version())
			}
			if g2.Fingerprint() == want {
				t.Fatalf("directed=%v seed=%d: mutation did not change the fingerprint", directed, seed)
			}
			g3, _, err := g2.ApplyMutations(inv)
			if err != nil {
				t.Fatalf("directed=%v seed=%d: apply inverse: %v", directed, seed, err)
			}
			if got := g3.Fingerprint(); got != want {
				t.Fatalf("directed=%v seed=%d: batch+inverse fingerprint %#x, want %#x", directed, seed, got, want)
			}
			if g3.Version() != 2 {
				t.Fatalf("version after batch+inverse = %d, want 2", g3.Version())
			}
			// The original graph was never touched.
			if g.Fingerprint() != want || g.Version() != 0 {
				t.Fatalf("directed=%v seed=%d: ApplyMutations mutated its receiver", directed, seed)
			}
		}
	}
}

func TestApplyMutationsSemantics(t *testing.T) {
	g := NewBuilder(4, true).
		AddWeighted(0, 1, 5).
		AddWeighted(1, 2, 7).
		AddWeighted(2, 3, 9).
		MustBuild()

	// Weight replacement.
	g2, inv, err := g.ApplyMutations(MutationBatch{Inserts: []Edge{{Src: 0, Dst: 1, W: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g2.EdgeWeight(0, 1); !ok || w != 2 {
		t.Fatalf("replaced weight = %v,%v want 2,true", w, ok)
	}
	if len(inv.Inserts) != 1 || inv.Inserts[0].W != 5 || len(inv.Deletes) != 0 {
		t.Fatalf("replacement inverse = %+v, want insert (0,1,5)", inv)
	}

	// Delete + reinsert in one batch is a weight replacement.
	g3, inv3, err := g.ApplyMutations(MutationBatch{
		Deletes: []Edge{{Src: 1, Dst: 2}},
		Inserts: []Edge{{Src: 1, Dst: 2, W: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g3.EdgeWeight(1, 2); w != 1 {
		t.Fatalf("delete+reinsert weight = %v, want 1", w)
	}
	if len(inv3.Inserts) != 1 || inv3.Inserts[0].W != 7 || len(inv3.Deletes) != 0 {
		t.Fatalf("delete+reinsert inverse = %+v, want insert (1,2,7)", inv3)
	}

	// Deleting a missing edge fails loudly with the typed error.
	if _, _, err := g.ApplyMutations(MutationBatch{Deletes: []Edge{{Src: 3, Dst: 0}}}); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("missing delete error = %v, want ErrNoSuchEdge", err)
	}
	// Out-of-range endpoints fail.
	if _, _, err := g.ApplyMutations(MutationBatch{Inserts: []Edge{{Src: 9, Dst: 0, W: 1}}}); err == nil {
		t.Fatal("out-of-range insert did not fail")
	}
}

// TestFreezeVersionStamp covers the frozen-fragment-path bugfix: a version
// bump on a frozen shared graph must fail CheckFrozen with the typed
// ErrVersionMismatch, and a structural mutation with ErrFrozenMutated.
func TestFreezeVersionStamp(t *testing.T) {
	g := testGraph(t, true, 3)
	g.Freeze()
	if err := g.CheckFrozen(); err != nil {
		t.Fatalf("clean frozen graph: %v", err)
	}

	g.version++ // simulate a writer bumping the version in place
	err := g.CheckFrozen()
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version bump error = %v, want ErrVersionMismatch", err)
	}
	g.version--

	g.outW[0] += 1 // simulate a writer through an aliasing accessor
	err = g.CheckFrozen()
	if !errors.Is(err, ErrFrozenMutated) {
		t.Fatalf("structural mutation error = %v, want ErrFrozenMutated", err)
	}
	g.outW[0] -= 1
	if err := g.CheckFrozen(); err != nil {
		t.Fatalf("restored graph: %v", err)
	}

	// ApplyMutations from a frozen instance copies: the shared graph stays
	// valid and the result is unfrozen at version+1.
	g2, _, err := g.ApplyMutations(MutationBatch{Inserts: []Edge{{Src: 0, Dst: 9, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Frozen() {
		t.Fatal("ApplyMutations result is frozen")
	}
	if err := g.CheckFrozen(); err != nil {
		t.Fatalf("frozen base after ApplyMutations: %v", err)
	}
}

// fragEqual compares the externally observable structure of two fragments.
func fragEqual(a, b *Fragment) bool {
	if a.numOwned != b.numOwned || len(a.locals) != len(b.locals) {
		return false
	}
	if !reflect.DeepEqual(a.locals, b.locals) ||
		!reflect.DeepEqual(a.outIndex, b.outIndex) ||
		!reflect.DeepEqual(a.outTo, b.outTo) ||
		!reflect.DeepEqual(a.outW, b.outW) ||
		!reflect.DeepEqual(a.inIndex, b.inIndex) ||
		!reflect.DeepEqual(a.inTo, b.inTo) ||
		!reflect.DeepEqual(a.inW, b.inW) ||
		!reflect.DeepEqual(a.repOutIdx, b.repOutIdx) ||
		!reflect.DeepEqual(a.repOut, b.repOut) ||
		!reflect.DeepEqual(a.repInIdx, b.repInIdx) ||
		!reflect.DeepEqual(a.repIn, b.repIn) ||
		!reflect.DeepEqual(a.labels, b.labels) {
		return false
	}
	return a.globalN == b.globalN && a.globalEdges == b.globalEdges
}

// TestUpdateFragmentsCOW checks that the copy-on-write fragment update is
// (a) equivalent to a from-scratch partition of the new graph, (b) rebuilds
// only the touched owners, and (c) leaves the old fragments intact for
// pinned readers.
func TestUpdateFragmentsCOW(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := testGraph(t, directed, 11)
		const workers = 5
		owner := make([]uint16, g.NumVertices())
		for v := range owner {
			owner[v] = uint16((v * 2654435761) % workers)
		}
		frags, err := BuildFragments(g, owner, workers)
		if err != nil {
			t.Fatal(err)
		}
		oldArcs := make([]int, workers)
		for i, f := range frags {
			oldArcs[i] = f.NumArcs()
		}

		b := randomBatch(g, 0.01, 77)
		g2, _, err := g.ApplyMutations(b)
		if err != nil {
			t.Fatal(err)
		}
		touched := b.Endpoints()
		cow, rebuilt, err := UpdateFragments(frags, g2, touched)
		if err != nil {
			t.Fatal(err)
		}

		// Equivalent to a fresh partition.
		fresh, err := BuildFragments(g2, owner, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fresh {
			if !fragEqual(cow[i], fresh[i]) {
				t.Fatalf("directed=%v: COW fragment %d differs from fresh build", directed, i)
			}
		}

		// Only touched owners rebuilt; untouched fragments share arrays.
		touchedOwners := map[int]bool{}
		for _, v := range touched {
			touchedOwners[int(owner[v])] = true
		}
		rebuiltSet := map[int]bool{}
		for _, w := range rebuilt {
			rebuiltSet[w] = true
		}
		for w := 0; w < workers; w++ {
			if rebuiltSet[w] != touchedOwners[w] {
				t.Fatalf("directed=%v: worker %d rebuilt=%v touched=%v", directed, w, rebuiltSet[w], touchedOwners[w])
			}
			if !rebuiltSet[w] && len(frags[w].outTo) > 0 && &cow[w].outTo[0] != &frags[w].outTo[0] {
				t.Fatalf("directed=%v: untouched worker %d does not share storage", directed, w)
			}
		}

		// Old fragments unchanged for pinned readers.
		for i, f := range frags {
			if f.NumArcs() != oldArcs[i] || f.GlobalArcs() != g.NumEdges() {
				t.Fatalf("directed=%v: old fragment %d changed under COW", directed, i)
			}
		}
		if len(rebuilt) == workers {
			t.Logf("directed=%v: warning: every worker touched (batch too wide for COW to pay off)", directed)
		}
	}
}
