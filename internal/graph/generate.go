package graph

import (
	"math"
	"math/rand"
)

// GenConfig controls the synthetic generators. All generators are
// deterministic given Seed.
type GenConfig struct {
	N        int     // number of vertices
	M        int     // target number of edges (pre-symmetrization)
	Directed bool    // directed graph?
	Alpha    float64 // power-law exponent for PowerLaw (paper uses 2.5)
	Seed     int64   // RNG seed
	MaxW     float64 // if > 0, random edge weights drawn uniformly from (0, MaxW]
	Labels   int     // if > 0, assign each vertex a random label in [0, Labels)
}

func (c GenConfig) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c GenConfig) finish(b *Builder, r *rand.Rand) *Graph {
	if c.Labels > 0 {
		for v := 0; v < c.N; v++ {
			b.SetLabel(VID(v), int32(r.Intn(c.Labels)))
		}
	}
	return b.SetDedup(true).MustBuild()
}

func (c GenConfig) weight(r *rand.Rand) float64 {
	if c.MaxW <= 0 {
		return 1
	}
	return 1 + (c.MaxW-1)*r.Float64()
}

// PowerLaw generates a Chung–Lu style random graph whose expected degree
// sequence follows a power law with exponent Alpha. This mirrors the
// "built-in power-law graph generator of GraphLab (α = 2.5)" the paper uses
// for its synthetic datasets.
func PowerLaw(c GenConfig) *Graph {
	if c.Alpha == 0 {
		c.Alpha = 2.5
	}
	r := c.rng()
	// Expected degree weights w_i ∝ (i+1)^(-1/(alpha-1)) produce a degree
	// distribution with exponent alpha.
	exp := -1.0 / (c.Alpha - 1)
	w := make([]float64, c.N)
	cum := make([]float64, c.N+1)
	for i := 0; i < c.N; i++ {
		w[i] = math.Pow(float64(i+1), exp)
		cum[i+1] = cum[i] + w[i]
	}
	total := cum[c.N]
	sample := func() VID {
		x := r.Float64() * total
		lo, hi := 0, c.N
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return VID(lo)
	}
	b := NewBuilder(c.N, c.Directed)
	for len(b.edges) < c.M {
		u, v := sample(), sample()
		if u == v {
			continue
		}
		b.AddWeighted(u, v, c.weight(r))
	}
	return c.finish(b, r)
}

// Uniform generates an Erdős–Rényi style G(n,m) graph.
func Uniform(c GenConfig) *Graph {
	r := c.rng()
	b := NewBuilder(c.N, c.Directed)
	for len(b.edges) < c.M {
		u := VID(r.Intn(c.N))
		v := VID(r.Intn(c.N))
		if u == v {
			continue
		}
		b.AddWeighted(u, v, c.weight(r))
	}
	return c.finish(b, r)
}

// RMAT generates a Kronecker-style R-MAT graph with the standard
// (0.57, 0.19, 0.19, 0.05) partition probabilities, producing the heavy
// community skew typical of social networks (TW/FS stand-ins).
func RMAT(c GenConfig) *Graph {
	r := c.rng()
	levels := 0
	for (1 << levels) < c.N {
		levels++
	}
	n := 1 << levels
	if c.N < n {
		c.N = n
	}
	const a, b2, c2 = 0.57, 0.19, 0.19
	b := NewBuilder(c.N, c.Directed)
	for len(b.edges) < c.M {
		var u, v int
		for l := 0; l < levels; l++ {
			p := r.Float64()
			switch {
			case p < a:
			case p < a+b2:
				v |= 1 << l
			case p < a+b2+c2:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u == v {
			continue
		}
		b.AddWeighted(VID(u), VID(v), c.weight(r))
	}
	return c.finish(b, r)
}

// Grid generates a rows×cols 4-neighbor lattice: a road-network-like graph
// with large diameter and uniform low degree. Weights are randomized when
// MaxW > 0, mimicking road segment lengths.
func Grid(rows, cols int, c GenConfig) *Graph {
	r := c.rng()
	c.N = rows * cols
	b := NewBuilder(c.N, c.Directed)
	id := func(i, j int) VID { return VID(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.AddWeighted(id(i, j), id(i, j+1), c.weight(r))
				if c.Directed {
					b.AddWeighted(id(i, j+1), id(i, j), c.weight(r))
				}
			}
			if i+1 < rows {
				b.AddWeighted(id(i, j), id(i+1, j), c.weight(r))
				if c.Directed {
					b.AddWeighted(id(i+1, j), id(i, j), c.weight(r))
				}
			}
		}
	}
	return c.finish(b, r)
}

// Chain generates a simple weighted path v0 -> v1 -> ... -> v(n-1); useful in
// tests that need a graph with maximal diameter.
func Chain(n int, directed bool) *Graph {
	b := NewBuilder(n, directed)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(VID(i), VID(i+1))
	}
	return b.MustBuild()
}

// Star generates a hub-and-spokes graph (vertex 0 is the hub): the extreme
// skew case for partition-balance tests.
func Star(n int, directed bool) *Graph {
	b := NewBuilder(n, directed)
	for i := 1; i < n; i++ {
		b.AddEdge(0, VID(i))
	}
	return b.MustBuild()
}

// KnowledgeBase generates a labeled, directed DBpedia-like graph: a sparse
// power-law directed graph whose vertices carry labels from a skewed label
// distribution (a few very common types, a long tail), as needed by graph
// simulation queries.
func KnowledgeBase(c GenConfig) *Graph {
	if c.Labels <= 0 {
		c.Labels = 16
	}
	c.Directed = true
	r := c.rng()
	g := PowerLaw(GenConfig{N: c.N, M: c.M, Directed: true, Alpha: 2.5, Seed: c.Seed, MaxW: c.MaxW})
	b := NewBuilder(c.N, true)
	b.edges = make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for i, u := range g.OutNeighbors(VID(v)) {
			b.AddWeighted(VID(v), u, g.OutWeights(VID(v))[i])
		}
	}
	// Skewed labels: label l drawn with probability ∝ 1/(l+1).
	var cum []float64
	total := 0.0
	for l := 0; l < c.Labels; l++ {
		total += 1 / float64(l+1)
		cum = append(cum, total)
	}
	for v := 0; v < c.N; v++ {
		x := r.Float64() * total
		l := 0
		for l < len(cum)-1 && cum[l] < x {
			l++
		}
		b.SetLabel(VID(v), int32(l))
	}
	return b.SetDedup(true).MustBuild()
}
