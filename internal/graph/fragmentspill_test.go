package graph

import (
	"testing"
)

// snapshotAdjacency copies every accessor result for later comparison.
type fragAdj struct {
	outN [][]uint32
	outW [][]float64
	inN  [][]uint32
	inW  [][]float64
}

func captureAdj(f *Fragment) fragAdj {
	nl := f.NumLocal()
	a := fragAdj{
		outN: make([][]uint32, nl), outW: make([][]float64, nl),
		inN: make([][]uint32, nl), inW: make([][]float64, nl),
	}
	for l := 0; l < nl; l++ {
		a.outN[l] = append([]uint32{}, f.OutNeighbors(uint32(l))...)
		a.outW[l] = append([]float64{}, f.OutWeights(uint32(l))...)
		a.inN[l] = append([]uint32{}, f.InNeighbors(uint32(l))...)
		a.inW[l] = append([]float64{}, f.InWeights(uint32(l))...)
	}
	return a
}

func assertAdjEqual(t *testing.T, want, got fragAdj, when string) {
	t.Helper()
	for l := range want.outN {
		if len(want.outN[l]) != len(got.outN[l]) {
			t.Fatalf("%s: out-degree of local %d changed: %d -> %d", when, l, len(want.outN[l]), len(got.outN[l]))
		}
		for i := range want.outN[l] {
			if want.outN[l][i] != got.outN[l][i] || want.outW[l][i] != got.outW[l][i] {
				t.Fatalf("%s: out-adjacency of local %d diverges at %d", when, l, i)
			}
		}
		if len(want.inN[l]) != len(got.inN[l]) {
			t.Fatalf("%s: in-degree of local %d changed: %d -> %d", when, l, len(want.inN[l]), len(got.inN[l]))
		}
		for i := range want.inN[l] {
			if want.inN[l][i] != got.inN[l][i] || want.inW[l][i] != got.inW[l][i] {
				t.Fatalf("%s: in-adjacency of local %d diverges at %d", when, l, i)
			}
		}
	}
}

func TestFragmentSpillEdges(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := PowerLaw(GenConfig{N: 200, M: 900, Directed: directed, Seed: 11, MaxW: 5})
		frags, err := BuildFragments(g, hashOwner(g.NumVertices(), 3), 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frags {
			want := captureAdj(f)
			resident := f.EdgesResidentBytes()
			if resident <= 0 {
				t.Fatalf("EdgesResidentBytes = %d, want > 0", resident)
			}
			arcs := f.NumArcs()

			freed, err := f.SpillEdges(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if freed != resident {
				t.Fatalf("freed %d bytes, resident said %d", freed, resident)
			}
			if !f.EdgesSpilled() || f.EdgesResidentBytes() != 0 {
				t.Fatal("fragment should report spilled with zero resident bytes")
			}
			if f.NumArcs() != arcs {
				t.Fatalf("NumArcs changed across spill: %d -> %d", arcs, f.NumArcs())
			}
			assertAdjEqual(t, want, captureAdj(f), "spilled")

			// Double-spill is a no-op.
			if freed2, err := f.SpillEdges(t.TempDir()); err != nil || freed2 != 0 {
				t.Fatalf("second SpillEdges = (%d, %v), want (0, nil)", freed2, err)
			}

			back, err := f.UnspillEdges()
			if err != nil {
				t.Fatal(err)
			}
			if back != resident {
				t.Fatalf("unspill restored %d bytes, want %d", back, resident)
			}
			if f.EdgesSpilled() {
				t.Fatal("fragment should be resident after unspill")
			}
			assertAdjEqual(t, want, captureAdj(f), "unspilled")

			if back2, err := f.UnspillEdges(); err != nil || back2 != 0 {
				t.Fatalf("second UnspillEdges = (%d, %v), want (0, nil)", back2, err)
			}
		}
	}
}

func TestFragmentSpillConcurrentReads(t *testing.T) {
	g := PowerLaw(GenConfig{N: 150, M: 700, Directed: true, Seed: 5, MaxW: 3})
	frags, err := BuildFragments(g, hashOwner(g.NumVertices(), 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := frags[0]
	want := captureAdj(f)
	if _, err := f.SpillEdges(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer f.UnspillEdges()
	done := make(chan error, 4)
	for r := 0; r < 4; r++ {
		go func() {
			for rep := 0; rep < 20; rep++ {
				for l := 0; l < f.NumLocal(); l++ {
					adj := f.OutNeighbors(uint32(l))
					for i, u := range adj {
						if u != want.outN[l][i] {
							done <- errMismatch(l, i)
							return
						}
					}
				}
			}
			done <- nil
		}()
	}
	for r := 0; r < 4; r++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchErr struct{ l, i int }

func (e mismatchErr) Error() string {
	return "spilled read mismatch"
}

func errMismatch(l, i int) error { return mismatchErr{l, i} }
