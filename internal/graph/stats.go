package graph

import (
	"math"
	"sort"
)

// Stats summarizes the structural properties that matter for granularity
// behaviour: size, density, degree skew and an estimate of the power-law
// tail exponent. The dataset stand-ins are validated against these (the
// substitution argument of DESIGN.md rests on preserving skew and
// diameter shape, not on absolute size).
type Stats struct {
	Vertices  int
	Arcs      int
	AvgDegree float64
	MaxDegree int
	// DegreeP99 is the 99th-percentile out-degree.
	DegreeP99 int
	// Skew is MaxDegree / AvgDegree — the straggler potential of hash
	// partitioning.
	Skew float64
	// PowerLawAlpha is the Hill estimator of the degree-tail exponent over
	// the top 10% of degrees (meaningful only for heavy-tailed graphs).
	PowerLawAlpha float64
	// GiantComponentFrac is the fraction of vertices in the largest weakly
	// connected component.
	GiantComponentFrac float64
}

// ComputeStats measures g.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	st := Stats{Vertices: n, Arcs: g.NumEdges()}
	if n == 0 {
		return st
	}
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.OutDegree(VID(v))
		if degs[v] > st.MaxDegree {
			st.MaxDegree = degs[v]
		}
	}
	st.AvgDegree = float64(g.NumEdges()) / float64(n)
	sort.Ints(degs)
	st.DegreeP99 = degs[n-1-n/100]
	if st.AvgDegree > 0 {
		st.Skew = float64(st.MaxDegree) / st.AvgDegree
	}
	st.PowerLawAlpha = hillAlpha(degs)
	st.GiantComponentFrac = giantFrac(g)
	return st
}

// hillAlpha estimates the tail exponent α of a power-law degree
// distribution P(d) ∝ d^-α with the Hill estimator over the top decile.
func hillAlpha(sortedDegs []int) float64 {
	n := len(sortedDegs)
	k := n / 10
	if k < 10 {
		k = min(n, 10)
	}
	if k < 2 {
		return 0
	}
	xmin := float64(sortedDegs[n-k])
	if xmin < 1 {
		xmin = 1
	}
	sum := 0.0
	cnt := 0
	for _, d := range sortedDegs[n-k:] {
		if float64(d) <= xmin {
			continue
		}
		sum += math.Log(float64(d) / xmin)
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(cnt)/sum
}

func giantFrac(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []VID
	best := 0
	next := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		size := 0
		stack = append(stack[:0], VID(s))
		comp[s] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			expand := func(us []VID) {
				for _, u := range us {
					if comp[u] < 0 {
						comp[u] = next
						stack = append(stack, u)
					}
				}
			}
			expand(g.OutNeighbors(v))
			if g.Directed() {
				expand(g.InNeighbors(v))
			}
		}
		if size > best {
			best = size
		}
		next++
	}
	return float64(best) / float64(n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
