package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// corruptHeader builds a binary blob with the given header and no payload.
func corruptHeader(t *testing.T, flags, n, m uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteLE(&buf, []uint32{binMagic, flags, n, m}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBinaryHugeHeaderSizedReader(t *testing.T) {
	// A header claiming two billion arcs over a 16-byte input must be
	// rejected up front, before any allocation.
	blob := corruptHeader(t, 1, 1000, 2_000_000_000)
	_, err := ReadBinary(bytes.NewReader(blob))
	if err == nil {
		t.Fatal("want size-validation error")
	}
	if !strings.Contains(err.Error(), "requiring") {
		t.Fatalf("want descriptive size error, got: %v", err)
	}
}

func TestReadBinaryHugeHeaderUnsizedReader(t *testing.T) {
	// Behind a plain stream the size is unknowable; the chunked reader must
	// fail fast on truncation without allocating the declared two billion
	// entries.
	blob := corruptHeader(t, 1, 1000, 2_000_000_000)
	_, err := ReadBinary(io.MultiReader(bytes.NewReader(blob)))
	if err == nil {
		t.Fatal("want truncation error")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got: %v", err)
	}
}

func TestReadBinaryTruncatedPayload(t *testing.T) {
	g := Uniform(GenConfig{N: 50, M: 200, Directed: true, Seed: 3, MaxW: 2})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{len(whole) / 4, len(whole) / 2, len(whole) - 1} {
		if _, err := ReadBinary(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("want error for input truncated to %d of %d bytes", cut, len(whole))
		}
	}
}

func TestReadBinaryCorruptCSR(t *testing.T) {
	g := Chain(10, true)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Out-of-range arc target: outTo starts after header + index.
	toOff := 16 + 8*(g.NumVertices()+1)
	bad := append([]byte{}, blob...)
	binary.LittleEndian.PutUint32(bad[toOff:], uint32(g.NumVertices())+7)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "targets vertex") {
		t.Fatalf("want arc-target error, got: %v", err)
	}

	// Decreasing index.
	bad = append([]byte{}, blob...)
	binary.LittleEndian.PutUint64(bad[16+8:], uint64(1<<40))
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatalf("want corrupt-index error, got nil")
	}

	// index[n] disagreeing with the header's arc count (still monotone).
	bad = append([]byte{}, blob...)
	lastIdx := 16 + 8*g.NumVertices()
	binary.LittleEndian.PutUint64(bad[lastIdx:], uint64(g.NumEdges()+1))
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "header declares") {
		t.Fatalf("want index/header mismatch error, got: %v", err)
	}
}

func TestReadEdgeListNegativeN(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("# argan directed=true n=-5 labeled=false\n")); err == nil {
		t.Fatal("want negative-n error")
	}
}

func TestReadEdgeListLabelOutOfRange(t *testing.T) {
	src := "# argan directed=true n=2 labeled=true\nl 9 3\n0 1 1\n"
	if _, err := ReadEdgeList(strings.NewReader(src)); err == nil {
		t.Fatal("want label-range error")
	}
}

func TestReadEdgeListEdgeOutOfRange(t *testing.T) {
	src := "# argan directed=true n=2 labeled=false\n0 7 1\n"
	if _, err := ReadEdgeList(strings.NewReader(src)); err == nil {
		t.Fatal("want edge-range error")
	}
}

func TestLECodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []uint32{1, 2, 3, 0xFFFFFFFF}
	if err := WriteLE(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(in))
	if err := ReadLE(&buf, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("LE round-trip mismatch at %d", i)
		}
	}
}
