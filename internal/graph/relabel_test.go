package graph

import (
	"testing"
	"testing/quick"
)

func TestRelabelByDegreeOrder(t *testing.T) {
	g := PowerLaw(GenConfig{N: 300, M: 1800, Directed: true, Seed: 81, MaxW: 5, Labels: 4})
	rg, perm := RelabelByDegree(g)
	if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", rg, g)
	}
	deg := func(gr *Graph, v VID) int { return gr.OutDegree(v) + gr.InDegree(v) }
	for v := 1; v < rg.NumVertices(); v++ {
		if deg(rg, VID(v-1)) < deg(rg, VID(v)) {
			t.Fatalf("degrees not descending at %d: %d < %d", v, deg(rg, VID(v-1)), deg(rg, VID(v)))
		}
	}
	// Isomorphism: every original edge exists under the permutation, with
	// labels carried over.
	for v := 0; v < g.NumVertices(); v++ {
		if rg.Label(perm[v]) != g.Label(VID(v)) {
			t.Fatalf("label of %d lost", v)
		}
		for _, u := range g.OutNeighbors(VID(v)) {
			if !rg.HasEdge(perm[v], perm[u]) {
				t.Fatalf("edge (%d,%d) missing after relabel", v, u)
			}
		}
	}
}

func TestRelabelUndirectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := Uniform(GenConfig{N: 60, M: 150, Directed: false, Seed: seed, MaxW: 3})
		rg, perm := RelabelByDegree(g)
		if rg.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			if rg.OutDegree(perm[v]) != g.OutDegree(VID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPermutation(t *testing.T) {
	vals := []string{"a", "b", "c"}
	perm := []VID{2, 0, 1} // old 0 -> new 2, etc.
	out := ApplyPermutation(vals, perm)
	if out[0] != "c" || out[1] != "a" || out[2] != "b" {
		t.Fatalf("got %v", out)
	}
}
