package graph

import "sort"

// RelabelByDegree returns an isomorphic copy of g whose vertex ids are
// assigned in descending total-degree order (ties by original id), plus the
// mapping perm with perm[old] = new. Running the id-priority greedy
// coloring on the relabeled graph is exactly the Welsh–Powell algorithm the
// paper parallelizes (process highest-degree vertices first).
func RelabelByDegree(g *Graph) (*Graph, []VID) {
	n := g.NumVertices()
	order := make([]VID, n)
	for i := range order {
		order[i] = VID(i)
	}
	deg := func(v VID) int {
		d := g.OutDegree(v)
		if g.Directed() {
			d += g.InDegree(v)
		}
		return d
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := deg(order[i]), deg(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	perm := make([]VID, n)
	for newID, old := range order {
		perm[old] = VID(newID)
	}
	b := NewBuilder(n, g.Directed())
	for v := 0; v < n; v++ {
		adj, ws := g.OutNeighbors(VID(v)), g.OutWeights(VID(v))
		for i, u := range adj {
			if !g.Directed() && perm[u] < perm[v] {
				continue // undirected edges once
			}
			b.AddWeighted(perm[v], u2(perm, u), ws[i])
		}
	}
	if g.Labeled() {
		for v := 0; v < n; v++ {
			b.SetLabel(perm[v], g.Label(VID(v)))
		}
	}
	return b.MustBuild(), perm
}

func u2(perm []VID, u VID) VID { return perm[u] }

// ApplyPermutation maps a per-vertex result computed on the relabeled graph
// back to the original ids: out[old] = values[perm[old]].
func ApplyPermutation[T any](values []T, perm []VID) []T {
	out := make([]T, len(values))
	for old, newID := range perm {
		out[old] = values[newID]
	}
	return out
}
