package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a text edge list. The header line is
//
//	# argan directed=<bool> n=<int> labeled=<bool>
//
// followed by optional "l <vid> <label>" lines and one "src dst weight" line
// per arc (undirected edges are written once, with src <= dst).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# argan directed=%v n=%d labeled=%v\n", g.directed, g.n, g.labels != nil)
	if g.labels != nil {
		for v, l := range g.labels {
			if l != 0 {
				fmt.Fprintf(bw, "l %d %d\n", v, l)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		adj, ws := g.OutNeighbors(VID(v)), g.OutWeights(VID(v))
		for i, u := range adj {
			if !g.directed && u < VID(v) {
				continue // written from the smaller endpoint
			}
			fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Plain edge lists
// without the header are also accepted: lines of "src dst [weight]" build a
// directed graph with n = max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	directed := true
	n := -1
	var edges []Edge
	type labelAssign struct {
		v VID
		l int32
	}
	var labels []labelAssign
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(line[1:]) {
				if v, ok := strings.CutPrefix(f, "directed="); ok {
					directed = v == "true"
				}
				if v, ok := strings.CutPrefix(f, "n="); ok {
					x, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("graph: line %d: bad n: %v", lineNo, err)
					}
					if x < 0 {
						return nil, fmt.Errorf("graph: line %d: header declares negative n=%d", lineNo, x)
					}
					n = x
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "l" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad label line", lineNo)
			}
			v, err1 := strconv.ParseUint(fields[1], 10, 32)
			l, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad label line", lineNo)
			}
			labels = append(labels, labelAssign{VID(v), int32(l)})
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'src dst [w]'", lineNo)
		}
		src, err1 := strconv.ParseUint(fields[0], 10, 32)
		dst, err2 := strconv.ParseUint(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id", lineNo)
		}
		w := 1.0
		if len(fields) == 3 {
			var err error
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
		}
		edges = append(edges, Edge{VID(src), VID(dst), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		max := -1
		for _, e := range edges {
			if int(e.Src) > max {
				max = int(e.Src)
			}
			if int(e.Dst) > max {
				max = int(e.Dst)
			}
		}
		n = max + 1
	}
	b := NewBuilder(n, directed)
	b.edges = edges
	for _, a := range labels {
		if int(a.v) >= n {
			return nil, fmt.Errorf("graph: label assigned to vertex %d out of range for n=%d", a.v, n)
		}
		b.SetLabel(a.v, a.l)
	}
	return b.Build()
}

const binMagic = uint32(0x41524732) // "ARG2"

// WriteLE writes data in the repo's canonical little-endian binary form. It
// is the serialization seam shared by the graph codec, the fragment edge
// spill files, and the live driver's spilled recovery logs/checkpoints: one
// encoding, one place to change it.
func WriteLE(w io.Writer, data any) error {
	return binary.Write(w, binary.LittleEndian, data)
}

// ReadLE reads data written by WriteLE.
func ReadLE(r io.Reader, data any) error {
	return binary.Read(r, binary.LittleEndian, data)
}

// readerSize reports the number of bytes remaining in r when that is cheap
// to learn (files, byte/string readers, anything seekable). ok is false for
// plain streams.
func readerSize(r io.Reader) (size int64, ok bool) {
	switch v := r.(type) {
	case interface{ Len() int }: // bytes.Reader, strings.Reader, bytes.Buffer
		return int64(v.Len()), true
	case io.Seeker:
		cur, err1 := v.Seek(0, io.SeekCurrent)
		end, err2 := v.Seek(0, io.SeekEnd)
		if err1 != nil || err2 != nil {
			return 0, false
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return 0, false
		}
		return end - cur, true
	}
	return 0, false
}

// WriteSliceLE writes a fixed-size element slice in bounded chunks, so an
// encoder working under a memory budget (the durable warm-fixpoint snapshot
// writer) never stages more than one chunk of encoding state regardless of
// slice length. It is the writer dual of ReadSliceLE.
func WriteSliceLE[T int32 | int64 | uint32 | float64](w io.Writer, data []T) error {
	const chunk = 1 << 16
	for off := 0; off < len(data); off += chunk {
		end := min(off+chunk, len(data))
		if err := WriteLE(w, data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSliceLE reads count fixed-size elements into a fresh slice. When the
// input may be shorter than the header claims (sized=false, so the caller
// could not pre-validate), it reads in bounded chunks and grows the result
// incrementally, so a corrupt header that declares billions of elements
// fails fast with a truncation error instead of one huge up-front
// allocation.
func ReadSliceLE[T int32 | int64 | uint32 | float64](r io.Reader, count int, sized bool, what string) ([]T, error) {
	if count == 0 {
		return []T{}, nil
	}
	if sized {
		out := make([]T, count)
		if err := ReadLE(r, out); err != nil {
			return nil, fmt.Errorf("graph: reading %s (%d entries): %w", what, count, err)
		}
		return out, nil
	}
	const chunk = 1 << 16
	out := make([]T, 0, min(count, chunk))
	buf := make([]T, min(count, chunk))
	for read := 0; read < count; {
		c := min(count-read, chunk)
		if err := ReadLE(r, buf[:c]); err != nil {
			return nil, fmt.Errorf("graph: %s truncated after %d of %d entries: %w", what, read, count, err)
		}
		out = append(out, buf[:c]...)
		read += c
	}
	return out, nil
}

// WriteBinary writes a compact binary encoding (little-endian), much faster
// to reload than the text form for large graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flags := uint32(0)
	if g.directed {
		flags |= 1
	}
	if g.labels != nil {
		flags |= 2
	}
	hdr := []uint32{binMagic, flags, uint32(g.n), uint32(len(g.outTo))}
	if err := WriteLE(bw, hdr); err != nil {
		return err
	}
	if err := WriteLE(bw, g.outIndex); err != nil {
		return err
	}
	if err := WriteLE(bw, g.outTo); err != nil {
		return err
	}
	if err := WriteLE(bw, g.outW); err != nil {
		return err
	}
	if g.labels != nil {
		if err := WriteLE(bw, g.labels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary, reconstructing the
// reverse adjacency. The header counts are validated against the reader's
// size (when it is knowable) before anything is allocated, and the CSR
// structure is validated after decoding, so truncated or corrupt inputs
// produce descriptive errors instead of huge allocations or silent short
// reads.
func ReadBinary(r io.Reader) (*Graph, error) {
	size, sized := readerSize(r)
	br := bufio.NewReader(r)
	var hdr [4]uint32
	if err := ReadLE(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, m := int(hdr[2]), int(hdr[3])
	need := int64(16) + 8*int64(n+1) + 12*int64(m)
	if hdr[1]&2 != 0 {
		need += 4 * int64(n)
	}
	if sized && size < need {
		return nil, fmt.Errorf("graph: binary header declares n=%d m=%d requiring %d bytes, input has only %d", n, m, need, size)
	}
	g := &Graph{n: n, directed: hdr[1]&1 != 0}
	var err error
	if g.outIndex, err = ReadSliceLE[int64](br, n+1, sized, "out-index"); err != nil {
		return nil, err
	}
	if g.outTo, err = ReadSliceLE[VID](br, m, sized, "arc targets"); err != nil {
		return nil, err
	}
	if g.outW, err = ReadSliceLE[float64](br, m, sized, "arc weights"); err != nil {
		return nil, err
	}
	if hdr[1]&2 != 0 {
		if g.labels, err = ReadSliceLE[int32](br, n, sized, "labels"); err != nil {
			return nil, err
		}
	}
	if g.outIndex[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt CSR: index[0] = %d, want 0", g.outIndex[0])
	}
	for v := 0; v < n; v++ {
		if g.outIndex[v+1] < g.outIndex[v] {
			return nil, fmt.Errorf("graph: corrupt CSR: index decreases at vertex %d (%d -> %d)", v, g.outIndex[v], g.outIndex[v+1])
		}
	}
	if g.outIndex[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt CSR: index covers %d arcs, header declares %d", g.outIndex[n], m)
	}
	for i, t := range g.outTo {
		if int(t) >= n {
			return nil, fmt.Errorf("graph: corrupt CSR: arc %d targets vertex %d >= n=%d", i, t, n)
		}
	}
	if g.directed {
		arcs := make([]Edge, 0, m)
		for v := 0; v < g.n; v++ {
			for i := g.outIndex[v]; i < g.outIndex[v+1]; i++ {
				arcs = append(arcs, Edge{VID(v), g.outTo[i], g.outW[i]})
			}
		}
		g.inIndex, g.inTo, g.inW = buildCSR(g.n, arcs, true)
	} else {
		g.inIndex, g.inTo, g.inW = g.outIndex, g.outTo, g.outW
	}
	return g, nil
}
