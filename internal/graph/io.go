package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a text edge list. The header line is
//
//	# argan directed=<bool> n=<int> labeled=<bool>
//
// followed by optional "l <vid> <label>" lines and one "src dst weight" line
// per arc (undirected edges are written once, with src <= dst).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# argan directed=%v n=%d labeled=%v\n", g.directed, g.n, g.labels != nil)
	if g.labels != nil {
		for v, l := range g.labels {
			if l != 0 {
				fmt.Fprintf(bw, "l %d %d\n", v, l)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		adj, ws := g.OutNeighbors(VID(v)), g.OutWeights(VID(v))
		for i, u := range adj {
			if !g.directed && u < VID(v) {
				continue // written from the smaller endpoint
			}
			fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Plain edge lists
// without the header are also accepted: lines of "src dst [weight]" build a
// directed graph with n = max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	directed := true
	n := -1
	var edges []Edge
	type labelAssign struct {
		v VID
		l int32
	}
	var labels []labelAssign
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(line[1:]) {
				if v, ok := strings.CutPrefix(f, "directed="); ok {
					directed = v == "true"
				}
				if v, ok := strings.CutPrefix(f, "n="); ok {
					x, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("graph: line %d: bad n: %v", lineNo, err)
					}
					n = x
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "l" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad label line", lineNo)
			}
			v, err1 := strconv.ParseUint(fields[1], 10, 32)
			l, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad label line", lineNo)
			}
			labels = append(labels, labelAssign{VID(v), int32(l)})
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'src dst [w]'", lineNo)
		}
		src, err1 := strconv.ParseUint(fields[0], 10, 32)
		dst, err2 := strconv.ParseUint(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id", lineNo)
		}
		w := 1.0
		if len(fields) == 3 {
			var err error
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
		}
		edges = append(edges, Edge{VID(src), VID(dst), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		max := -1
		for _, e := range edges {
			if int(e.Src) > max {
				max = int(e.Src)
			}
			if int(e.Dst) > max {
				max = int(e.Dst)
			}
		}
		n = max + 1
	}
	b := NewBuilder(n, directed)
	b.edges = edges
	for _, a := range labels {
		if int(a.v) < n {
			b.SetLabel(a.v, a.l)
		}
	}
	return b.Build()
}

const binMagic = uint32(0x41524732) // "ARG2"

// WriteBinary writes a compact binary encoding (little-endian), much faster
// to reload than the text form for large graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flags := uint32(0)
	if g.directed {
		flags |= 1
	}
	if g.labels != nil {
		flags |= 2
	}
	hdr := []uint32{binMagic, flags, uint32(g.n), uint32(len(g.outTo))}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outIndex); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outTo); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outW); err != nil {
		return err
	}
	if g.labels != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.labels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary, reconstructing the
// reverse adjacency.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	g := &Graph{n: int(hdr[2]), directed: hdr[1]&1 != 0}
	m := int(hdr[3])
	g.outIndex = make([]int64, g.n+1)
	g.outTo = make([]VID, m)
	g.outW = make([]float64, m)
	if err := binary.Read(br, binary.LittleEndian, g.outIndex); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.outTo); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.outW); err != nil {
		return nil, err
	}
	if hdr[1]&2 != 0 {
		g.labels = make([]int32, g.n)
		if err := binary.Read(br, binary.LittleEndian, g.labels); err != nil {
			return nil, err
		}
	}
	if g.directed {
		arcs := make([]Edge, 0, m)
		for v := 0; v < g.n; v++ {
			for i := g.outIndex[v]; i < g.outIndex[v+1]; i++ {
				arcs = append(arcs, Edge{VID(v), g.outTo[i], g.outW[i]})
			}
		}
		g.inIndex, g.inTo, g.inW = buildCSR(g.n, arcs, true)
	} else {
		g.inIndex, g.inTo, g.inW = g.outIndex, g.outTo, g.outW
	}
	return g, nil
}
