package graph

import (
	"bytes"
	"testing"
)

// TestWriteSliceLERoundTrip exercises the chunked slice writer against the
// bounded reader for every supported element type, including a slice longer
// than the 64K-element chunk so the multi-chunk path is covered.
func TestWriteSliceLERoundTrip(t *testing.T) {
	n := (1 << 16) + 3
	f64 := make([]float64, n)
	i32 := make([]int32, n)
	u32 := make([]uint32, n)
	i64 := make([]int64, n)
	for i := 0; i < n; i++ {
		f64[i] = float64(i) * 0.5
		i32[i] = int32(i - 7)
		u32[i] = uint32(i * 3)
		i64[i] = int64(i) << 20
	}

	roundTrip := func(t *testing.T, write func(*bytes.Buffer) error, read func(*bytes.Buffer) error) {
		t.Helper()
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := read(&buf); err != nil {
			t.Fatalf("read: %v", err)
		}
	}

	roundTrip(t,
		func(b *bytes.Buffer) error { return WriteSliceLE(b, f64) },
		func(b *bytes.Buffer) error {
			got, err := ReadSliceLE[float64](b, n, false, "f64")
			if err != nil {
				return err
			}
			for i := range got {
				if got[i] != f64[i] {
					t.Fatalf("f64[%d] = %v, want %v", i, got[i], f64[i])
				}
			}
			return nil
		})
	roundTrip(t,
		func(b *bytes.Buffer) error { return WriteSliceLE(b, i32) },
		func(b *bytes.Buffer) error {
			got, err := ReadSliceLE[int32](b, n, false, "i32")
			if err != nil {
				return err
			}
			for i := range got {
				if got[i] != i32[i] {
					t.Fatalf("i32[%d] = %v, want %v", i, got[i], i32[i])
				}
			}
			return nil
		})
	roundTrip(t,
		func(b *bytes.Buffer) error { return WriteSliceLE(b, u32) },
		func(b *bytes.Buffer) error {
			got, err := ReadSliceLE[uint32](b, n, false, "u32")
			if err != nil {
				return err
			}
			for i := range got {
				if got[i] != u32[i] {
					t.Fatalf("u32[%d] = %v, want %v", i, got[i], u32[i])
				}
			}
			return nil
		})
	roundTrip(t,
		func(b *bytes.Buffer) error { return WriteSliceLE(b, i64) },
		func(b *bytes.Buffer) error {
			got, err := ReadSliceLE[int64](b, n, false, "i64")
			if err != nil {
				return err
			}
			for i := range got {
				if got[i] != i64[i] {
					t.Fatalf("i64[%d] = %v, want %v", i, got[i], i64[i])
				}
			}
			return nil
		})
}

// TestFrozenFingerprintAccessor: the accessor must expose the fingerprint
// Freeze computed without rehashing, and report ok=false before Freeze.
func TestFrozenFingerprintAccessor(t *testing.T) {
	g := testGraph(t, true, 11)
	if _, ok := g.FrozenFingerprint(); ok {
		t.Fatal("unfrozen graph reports a frozen fingerprint")
	}
	g.Freeze()
	fp, ok := g.FrozenFingerprint()
	if !ok {
		t.Fatal("frozen graph reports ok=false")
	}
	if fp != g.Fingerprint() {
		t.Fatalf("FrozenFingerprint %#x != Fingerprint() %#x", fp, g.Fingerprint())
	}
}
