package graph

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderDirected(t *testing.T) {
	g := NewBuilder(4, true).
		AddWeighted(0, 1, 2).
		AddWeighted(0, 2, 3).
		AddWeighted(2, 1, 1).
		AddWeighted(3, 0, 5).
		MustBuild()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %v", g)
	}
	if !g.Directed() {
		t.Fatal("want directed")
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.InNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("in(1) = %v", got)
	}
	if w := g.OutWeights(3); len(w) != 1 || w[0] != 5 {
		t.Fatalf("w(3) = %v", w)
	}
	if g.OutDegree(1) != 0 || g.InDegree(0) != 1 {
		t.Fatalf("degrees wrong: out(1)=%d in(0)=%d", g.OutDegree(1), g.InDegree(0))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderUndirected(t *testing.T) {
	g := NewBuilder(3, false).AddEdge(0, 1).AddEdge(1, 2).MustBuild()
	if g.NumEdges() != 4 {
		t.Fatalf("undirected arcs = %d, want 4", g.NumEdges())
	}
	for v := VID(0); v < 3; v++ {
		if g.OutDegree(v) != g.InDegree(v) {
			t.Fatalf("v%d: out %d != in %d", v, g.OutDegree(v), g.InDegree(v))
		}
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("missing reverse arcs")
	}
}

func TestBuilderRangeError(t *testing.T) {
	if _, err := NewBuilder(2, true).AddEdge(0, 5).Build(); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestBuilderSelfLoopUndirected(t *testing.T) {
	g := NewBuilder(2, false).AddEdge(0, 0).AddEdge(0, 1).MustBuild()
	// The self-loop is stored once, the edge twice.
	if g.NumEdges() != 3 {
		t.Fatalf("arcs = %d, want 3", g.NumEdges())
	}
}

func TestDedup(t *testing.T) {
	g := NewBuilder(2, true).
		AddWeighted(0, 1, 5).
		AddWeighted(0, 1, 2).
		AddWeighted(0, 1, 9).
		SetDedup(true).
		MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("arcs = %d, want 1", g.NumEdges())
	}
	if g.OutWeights(0)[0] != 2 {
		t.Fatalf("kept weight %v, want smallest (2)", g.OutWeights(0)[0])
	}
}

func TestLabels(t *testing.T) {
	g := NewBuilder(3, true).AddEdge(0, 1).SetLabel(1, 42).MustBuild()
	if !g.Labeled() || g.Label(1) != 42 || g.Label(0) != 0 {
		t.Fatalf("labels wrong: %v %d", g.Labeled(), g.Label(1))
	}
	g2 := NewBuilder(3, true).AddEdge(0, 1).MustBuild()
	if g2.Labeled() || g2.Label(1) != 0 {
		t.Fatal("unlabeled graph should report zero labels")
	}
}

// Property: for any edge set, sum of out-degrees == number of arcs and the
// in-adjacency is exactly the transpose of the out-adjacency.
func TestCSRTransposeProperty(t *testing.T) {
	f := func(raw []uint16, directed bool) bool {
		const n = 17
		b := NewBuilder(n, directed)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(VID(raw[i]%n), VID(raw[i+1]%n))
		}
		g := b.MustBuild()
		sumOut, sumIn := 0, 0
		for v := VID(0); v < n; v++ {
			sumOut += g.OutDegree(v)
			sumIn += g.InDegree(v)
		}
		if sumOut != g.NumEdges() || sumIn != g.NumEdges() {
			return false
		}
		// Transpose check: u in out(v) <=> v in in(u), with multiplicity.
		type pair struct{ a, b VID }
		fw := map[pair]int{}
		bw := map[pair]int{}
		for v := VID(0); v < n; v++ {
			for _, u := range g.OutNeighbors(v) {
				fw[pair{v, u}]++
			}
			for _, u := range g.InNeighbors(v) {
				bw[pair{u, v}]++
			}
		}
		if len(fw) != len(bw) {
			return false
		}
		for k, c := range fw {
			if bw[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"powerlaw", PowerLaw(GenConfig{N: 500, M: 2000, Directed: true, Alpha: 2.5, Seed: 1, MaxW: 10})},
		{"uniform", Uniform(GenConfig{N: 500, M: 1500, Directed: false, Seed: 2})},
		{"rmat", RMAT(GenConfig{N: 512, M: 2000, Directed: true, Seed: 3})},
		{"grid", Grid(10, 20, GenConfig{Seed: 4, MaxW: 5})},
		{"kb", KnowledgeBase(GenConfig{N: 300, M: 1200, Seed: 5, Labels: 8})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.g
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				t.Fatalf("empty graph: %v", g)
			}
			for v := 0; v < g.NumVertices(); v++ {
				for i, u := range g.OutNeighbors(VID(v)) {
					if int(u) >= g.NumVertices() {
						t.Fatalf("edge target out of range: %d", u)
					}
					if w := g.OutWeights(VID(v))[i]; w <= 0 || math.IsNaN(w) {
						t.Fatalf("bad weight %v", w)
					}
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := PowerLaw(GenConfig{N: 200, M: 900, Directed: true, Seed: 9, MaxW: 10})
	b := PowerLaw(GenConfig{N: 200, M: 900, Directed: true, Seed: 9, MaxW: 10})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.OutNeighbors(VID(v)), b.OutNeighbors(VID(v))
		if len(av) != len(bv) {
			t.Fatalf("degree of %d differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("adjacency of %d differs", v)
			}
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(GenConfig{N: 2000, M: 20000, Directed: false, Alpha: 2.5, Seed: 11})
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.OutDegree(VID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// The hottest vertex should carry far more than its fair share.
	fair := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(degs[0]) < 5*fair {
		t.Fatalf("max degree %d not skewed vs fair share %.1f", degs[0], fair)
	}
}

func TestChainStar(t *testing.T) {
	c := Chain(5, true)
	if c.NumEdges() != 4 || c.OutDegree(4) != 0 || c.InDegree(0) != 0 {
		t.Fatalf("chain wrong: %v", c)
	}
	s := Star(6, false)
	if s.OutDegree(0) != 5 {
		t.Fatalf("star hub degree = %d", s.OutDegree(0))
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := KnowledgeBase(GenConfig{N: 120, M: 500, Seed: 6, Labels: 5, MaxW: 9})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, g, g2)
}

func TestEdgeListRoundTripUndirected(t *testing.T) {
	g := Uniform(GenConfig{N: 60, M: 150, Directed: false, Seed: 7, MaxW: 3})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := KnowledgeBase(GenConfig{N: 150, M: 600, Seed: 8, Labels: 6, MaxW: 4})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, g, g2)
}

func TestReadPlainEdgeList(t *testing.T) {
	src := "0 1\n1 2 3.5\n\n2 0\n"
	g, err := ReadEdgeList(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 || !g.Directed() {
		t.Fatalf("got %v", g)
	}
	if g.OutWeights(1)[0] != 3.5 {
		t.Fatalf("weight = %v", g.OutWeights(1)[0])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, src := range []string{"0\n", "a b\n", "0 1 x\n", "l 1\n"} {
		if _, err := ReadEdgeList(bytes.NewBufferString(src)); err == nil {
			t.Fatalf("want error for %q", src)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBuffer([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})); err == nil {
		t.Fatal("want bad-magic error")
	}
}

func TestDatasets(t *testing.T) {
	for _, name := range DatasetNames() {
		g, err := LoadDataset(name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		info, _ := DatasetInfo(name)
		if g.Directed() != info.Directed {
			t.Fatalf("%s: directedness mismatch", name)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty", name)
		}
		// Memoized: second load returns identical pointer.
		g2, _ := LoadDataset(name, 0.02)
		if g2 != g {
			t.Fatalf("%s: dataset cache miss", name)
		}
	}
	if _, err := LoadDataset("NOPE", 1); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if g := MustDataset("DP", 0.02); !g.Labeled() {
		t.Fatal("DP stand-in must be labeled")
	}
}

func assertGraphEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.Directed() != b.Directed() || a.Labeled() != b.Labeled() {
		t.Fatalf("shape differs: %v vs %v", a, b)
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(VID(v)) != b.Label(VID(v)) {
			t.Fatalf("label of %d differs", v)
		}
		an, bn := a.OutNeighbors(VID(v)), b.OutNeighbors(VID(v))
		if len(an) != len(bn) {
			t.Fatalf("degree of %d differs: %d vs %d", v, len(an), len(bn))
		}
		aw, bw := a.OutWeights(VID(v)), b.OutWeights(VID(v))
		for i := range an {
			if an[i] != bn[i] || math.Abs(aw[i]-bw[i]) > 1e-9 {
				t.Fatalf("adjacency of %d differs at %d: (%d,%g) vs (%d,%g)", v, i, an[i], aw[i], bn[i], bw[i])
			}
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	build := func() *Graph {
		return NewBuilder(4, true).
			AddWeighted(0, 1, 2).AddWeighted(1, 2, 3).AddWeighted(2, 3, 1).
			MustBuild()
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical builds must fingerprint identically")
	}
	// A single flipped weight changes the fingerprint.
	c := NewBuilder(4, true).
		AddWeighted(0, 1, 2).AddWeighted(1, 2, 3).AddWeighted(2, 3, 1.5).
		MustBuild()
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("weight change not reflected in fingerprint")
	}
	// A rewired edge changes it too.
	d := NewBuilder(4, true).
		AddWeighted(0, 1, 2).AddWeighted(1, 3, 3).AddWeighted(2, 3, 1).
		MustBuild()
	if d.Fingerprint() == a.Fingerprint() {
		t.Fatal("edge rewire not reflected in fingerprint")
	}
}

// TestFrozenMutationDetected is the regression test for the shared
// dataset cache: adjacency accessors alias CSR storage, so a trial that
// scribbles on a neighbor list used to silently corrupt every later
// trial's graph. Frozen graphs now detect the mutation.
func TestFrozenMutationDetected(t *testing.T) {
	g := NewBuilder(3, true).AddEdge(0, 1).AddEdge(1, 2).MustBuild()
	if g.Frozen() {
		t.Fatal("fresh graph must not be frozen")
	}
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	if err := g.CheckFrozen(); err != nil {
		t.Fatalf("untouched frozen graph flagged: %v", err)
	}
	// Mutate through an aliasing accessor, as a buggy caller would.
	g.OutNeighbors(0)[0] = 2
	if err := g.CheckFrozen(); err == nil {
		t.Fatal("mutation of frozen graph not detected")
	}
	g.OutNeighbors(0)[0] = 1 // repair
	if err := g.CheckFrozen(); err != nil {
		t.Fatalf("repaired graph still flagged: %v", err)
	}
	g.OutWeights(1)[0] = 99
	if err := g.CheckFrozen(); err == nil {
		t.Fatal("weight mutation of frozen graph not detected")
	}
}

// TestDatasetCacheImmutable: two sequential trials must see the identical
// graph, and a trial that mutates the shared instance must surface a
// descriptive error on the next load instead of poisoning it silently.
func TestDatasetCacheImmutable(t *testing.T) {
	g1, err := LoadDataset("LJ", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Frozen() {
		t.Fatal("cached dataset must be frozen")
	}
	fp := g1.Fingerprint()
	g2, err := LoadDataset("LJ", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g1 {
		t.Fatal("memoization lost: sequential trials got different instances")
	}
	if g2.Fingerprint() != fp {
		t.Fatal("sequential trials see different graph content")
	}

	// Corrupt the shared instance; the next load must refuse to serve it.
	w := g1.OutWeights(0)
	if len(w) == 0 {
		t.Fatal("test graph has no edges at vertex 0")
	}
	orig := w[0]
	w[0] = orig + 1
	_, err = LoadDataset("LJ", 0.01)
	w[0] = orig // repair before asserting so other tests keep a clean cache
	if err == nil {
		t.Fatal("mutated cached dataset served without error")
	}
	if !strings.Contains(err.Error(), "mutated") {
		t.Fatalf("error not descriptive: %v", err)
	}
	if _, err := LoadDataset("LJ", 0.01); err != nil {
		t.Fatalf("repaired cache still refused: %v", err)
	}
}
