package graph

import (
	"fmt"
	"sort"
)

// Fragment is the part of a partitioned graph held by one worker, following
// the paper's vertex-partitioning convention (§II-A): fragment F_i contains
// (1) the owned vertices V'_i, (2) every edge adjacent to V'_i, and (3) the
// ghost vertices induced by those edges.
//
// Vertices are addressed by dense *local indices*: owned vertices occupy
// [0, NumOwned) and ghosts occupy [NumOwned, NumLocal), each group sorted by
// global id. Adjacency is stored in CSR form over local indices:
//
//   - the out-adjacency of an owned vertex is complete; the out-adjacency of
//     a ghost contains only arcs into owned vertices;
//   - symmetrically for the in-adjacency.
//
// Replica routing: for an owned border vertex v, ReplicasOut(v) lists the
// workers that hold v as a ghost because v has an out-edge into their owned
// set (they need v's value when update functions read in-neighbors), and
// ReplicasIn(v) the workers reached through v's in-edges.
type Fragment struct {
	worker     int
	numWorkers int
	directed   bool

	numOwned int
	locals   []VID          // local -> global
	index    map[VID]uint32 // global -> local
	owner    []uint16       // global -> owning worker (shared, read-only)

	outIndex []int64
	outTo    []uint32 // local indices
	outW     []float64
	inIndex  []int64
	inTo     []uint32
	inW      []float64

	labels []int32 // per local vertex; nil when unlabeled

	repOutIdx []int32
	repOut    []uint16
	repInIdx  []int32
	repIn     []uint16

	espill *edgeSpill // non-nil while the edge payload is paged to disk

	globalN     int
	globalEdges int
}

// Worker returns the id of the worker owning this fragment (0-based).
func (f *Fragment) Worker() int { return f.worker }

// NumWorkers returns the number of fragments the graph was split into.
func (f *Fragment) NumWorkers() int { return f.numWorkers }

// Directed reports whether the underlying graph is directed.
func (f *Fragment) Directed() bool { return f.directed }

// NumOwned returns |V'_i|.
func (f *Fragment) NumOwned() int { return f.numOwned }

// NumLocal returns the number of local vertices including ghosts.
func (f *Fragment) NumLocal() int { return len(f.locals) }

// NumGhosts returns the number of ghost vertices.
func (f *Fragment) NumGhosts() int { return len(f.locals) - f.numOwned }

// NumArcs returns the number of arcs stored in the fragment's out-CSR.
func (f *Fragment) NumArcs() int {
	if f.espill != nil {
		return f.espill.outArcs
	}
	return len(f.outTo)
}

// GlobalVertices returns |V| of the whole graph.
func (f *Fragment) GlobalVertices() int { return f.globalN }

// GlobalArcs returns the arc count of the whole graph.
func (f *Fragment) GlobalArcs() int { return f.globalEdges }

// IsOwned reports whether the local index denotes an owned vertex.
func (f *Fragment) IsOwned(local uint32) bool { return int(local) < f.numOwned }

// Global maps a local index to its global vertex id.
func (f *Fragment) Global(local uint32) VID { return f.locals[local] }

// Local maps a global id to the local index, if the vertex is present.
func (f *Fragment) Local(v VID) (uint32, bool) {
	l, ok := f.index[v]
	return l, ok
}

// OwnerOf returns the worker owning global vertex v.
func (f *Fragment) OwnerOf(v VID) int { return int(f.owner[v]) }

// Label returns the label of the local vertex (0 when unlabeled).
func (f *Fragment) Label(local uint32) int32 {
	if f.labels == nil {
		return 0
	}
	return f.labels[local]
}

// OutDegree returns the stored out-degree of the local vertex.
func (f *Fragment) OutDegree(local uint32) int {
	return int(f.outIndex[local+1] - f.outIndex[local])
}

// InDegree returns the stored in-degree of the local vertex.
func (f *Fragment) InDegree(local uint32) int {
	return int(f.inIndex[local+1] - f.inIndex[local])
}

// OutNeighbors returns the out-adjacency (local indices) of the local vertex.
// The slice aliases internal storage while resident; when the edge payload
// is spilled (StageStream) it is a fresh slice streamed from disk.
func (f *Fragment) OutNeighbors(local uint32) []uint32 {
	if es := f.espill; es != nil {
		return es.readU32(es.outToOff, f.outIndex[local], f.outIndex[local+1])
	}
	return f.outTo[f.outIndex[local]:f.outIndex[local+1]]
}

// OutWeights returns weights parallel to OutNeighbors.
func (f *Fragment) OutWeights(local uint32) []float64 {
	if es := f.espill; es != nil {
		return es.readF64(es.outWOff, f.outIndex[local], f.outIndex[local+1])
	}
	return f.outW[f.outIndex[local]:f.outIndex[local+1]]
}

// InNeighbors returns the in-adjacency (local indices) of the local vertex.
func (f *Fragment) InNeighbors(local uint32) []uint32 {
	if es := f.espill; es != nil {
		return es.readU32(es.inToOff, f.inIndex[local], f.inIndex[local+1])
	}
	return f.inTo[f.inIndex[local]:f.inIndex[local+1]]
}

// InWeights returns weights parallel to InNeighbors.
func (f *Fragment) InWeights(local uint32) []float64 {
	if es := f.espill; es != nil {
		return es.readF64(es.inWOff, f.inIndex[local], f.inIndex[local+1])
	}
	return f.inW[f.inIndex[local]:f.inIndex[local+1]]
}

// ReplicasOut lists the workers holding the owned vertex as a ghost via its
// out-edges. Empty for interior vertices.
func (f *Fragment) ReplicasOut(local uint32) []uint16 {
	return f.repOut[f.repOutIdx[local]:f.repOutIdx[local+1]]
}

// ReplicasIn lists the workers holding the owned vertex as a ghost via its
// in-edges.
func (f *Fragment) ReplicasIn(local uint32) []uint16 {
	return f.repIn[f.repInIdx[local]:f.repInIdx[local+1]]
}

// TrueOutDegree returns the out-degree of an owned vertex in the full graph
// (equal to OutDegree for owned vertices by construction).
func (f *Fragment) TrueOutDegree(local uint32) int { return f.OutDegree(local) }

func (f *Fragment) String() string {
	return fmt.Sprintf("fragment{worker=%d owned=%d ghosts=%d arcs=%d}",
		f.worker, f.numOwned, f.NumGhosts(), f.NumArcs())
}

// BuildFragments splits g into numWorkers fragments according to the owner
// assignment (owner[v] = worker id for every global vertex). It validates the
// assignment and returns one fragment per worker.
func BuildFragments(g *Graph, owner []uint16, numWorkers int) ([]*Fragment, error) {
	if len(owner) != g.n {
		return nil, fmt.Errorf("graph: owner assignment has %d entries, want %d", len(owner), g.n)
	}
	for v, o := range owner {
		if int(o) >= numWorkers {
			return nil, fmt.Errorf("graph: vertex %d assigned to worker %d >= %d", v, o, numWorkers)
		}
	}
	frags := make([]*Fragment, numWorkers)
	for i := range frags {
		frags[i] = buildFragment(g, owner, numWorkers, i)
	}
	return frags, nil
}

func buildFragment(g *Graph, owner []uint16, numWorkers, worker int) *Fragment {
	w := uint16(worker)
	// Collect owned vertices and the ghosts induced by their edges.
	var owned []VID
	ghostSet := map[VID]struct{}{}
	for v := 0; v < g.n; v++ {
		if owner[v] != w {
			continue
		}
		owned = append(owned, VID(v))
		for _, u := range g.OutNeighbors(VID(v)) {
			if owner[u] != w {
				ghostSet[u] = struct{}{}
			}
		}
		for _, u := range g.InNeighbors(VID(v)) {
			if owner[u] != w {
				ghostSet[u] = struct{}{}
			}
		}
	}
	ghosts := make([]VID, 0, len(ghostSet))
	for u := range ghostSet {
		ghosts = append(ghosts, u)
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })

	f := &Fragment{
		worker:      worker,
		numWorkers:  numWorkers,
		directed:    g.directed,
		numOwned:    len(owned),
		locals:      append(append([]VID{}, owned...), ghosts...),
		index:       make(map[VID]uint32, len(owned)+len(ghosts)),
		owner:       owner,
		globalN:     g.n,
		globalEdges: len(g.outTo),
	}
	for l, v := range f.locals {
		f.index[v] = uint32(l)
	}
	if g.labels != nil {
		f.labels = make([]int32, len(f.locals))
		for l, v := range f.locals {
			f.labels[l] = g.labels[v]
		}
	}

	// Localized arcs of E_i: every arc with at least one owned endpoint.
	var arcs []localArc
	seen := map[[2]VID]struct{}{}
	addArcsOf := func(v VID) {
		lv := f.index[v]
		for i, u := range g.OutNeighbors(v) {
			if owner[v] != w && owner[u] != w {
				continue
			}
			lu, ok := f.index[u]
			if !ok {
				continue // neighbor of a ghost outside this fragment
			}
			key := [2]VID{v, u}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			arcs = append(arcs, localArc{lv, lu, g.OutWeights(v)[i]})
		}
	}
	for _, v := range f.locals {
		addArcsOf(v)
	}
	// For undirected graphs the Graph CSR already stores both directions, so
	// the arc set above is symmetric where both endpoints are local.

	nl := len(f.locals)
	f.outIndex, f.outTo, f.outW = buildLocalCSR(nl, arcs, false)
	f.inIndex, f.inTo, f.inW = buildLocalCSR(nl, arcs, true)

	// Replica routing tables for owned vertices.
	f.repOutIdx, f.repOut = buildReplicas(f, g, owned, w, true)
	if g.directed {
		f.repInIdx, f.repIn = buildReplicas(f, g, owned, w, false)
	} else {
		f.repInIdx, f.repIn = f.repOutIdx, f.repOut
	}
	return f
}

type localArc struct {
	src, dst uint32
	w        float64
}

func buildLocalCSR(n int, arcs []localArc, reverse bool) ([]int64, []uint32, []float64) {
	index := make([]int64, n+1)
	for _, a := range arcs {
		k := a.src
		if reverse {
			k = a.dst
		}
		index[k+1]++
	}
	for i := 0; i < n; i++ {
		index[i+1] += index[i]
	}
	to := make([]uint32, len(arcs))
	ws := make([]float64, len(arcs))
	cursor := make([]int64, n)
	for _, a := range arcs {
		k, other := a.src, a.dst
		if reverse {
			k, other = a.dst, a.src
		}
		p := index[k] + cursor[k]
		cursor[k]++
		to[p] = other
		ws[p] = a.w
	}
	for v := 0; v < n; v++ {
		lo, hi := index[v], index[v+1]
		sortLocalAdj(to[lo:hi], ws[lo:hi])
	}
	return index, to, ws
}

func sortLocalAdj(to []uint32, w []float64) {
	sort.Sort(&localAdjSorter{to, w})
}

type localAdjSorter struct {
	to []uint32
	w  []float64
}

func (s *localAdjSorter) Len() int { return len(s.to) }
func (s *localAdjSorter) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
func (s *localAdjSorter) Less(i, j int) bool {
	if s.to[i] != s.to[j] {
		return s.to[i] < s.to[j]
	}
	return s.w[i] < s.w[j]
}

// buildReplicas computes, for each owned vertex, the sorted set of remote
// workers owning its out-neighbors (outDir) or in-neighbors (!outDir).
func buildReplicas(f *Fragment, g *Graph, owned []VID, w uint16, outDir bool) ([]int32, []uint16) {
	idx := make([]int32, len(f.locals)+1)
	var flat []uint16
	var set [256]bool // numWorkers <= 256 in this repo
	for l, v := range owned {
		var nbrs []VID
		if outDir {
			nbrs = g.OutNeighbors(v)
		} else {
			nbrs = g.InNeighbors(v)
		}
		var touched []uint16
		for _, u := range nbrs {
			o := g.ownerOf(u, f.owner)
			if o != w && !set[o] {
				set[o] = true
				touched = append(touched, o)
			}
		}
		sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
		flat = append(flat, touched...)
		for _, o := range touched {
			set[o] = false
		}
		idx[l+1] = int32(len(flat))
	}
	// Ghost entries keep empty ranges.
	for l := len(owned); l < len(f.locals); l++ {
		idx[l+1] = idx[l]
	}
	return idx, flat
}

func (g *Graph) ownerOf(v VID, owner []uint16) uint16 { return owner[v] }
