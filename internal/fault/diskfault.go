package fault

import (
	"fmt"
	"os"
)

// Disk-fault injection for the durability layer (internal/durable): the
// byte-level damage a kill -9, a bad sector or an interrupted append leaves
// in a write-ahead log. Each mode is deterministic for a (path-size, seed)
// pair via the same splitmix64 stream the in-run injector uses, so a
// recovery test that fails reproduces byte-identically from its seed.
//
// The frame-aware modes (DropTail) parse the argan WAL layout — an 8-byte
// file header followed by [len uint32 | crc uint32 | payload] frames — which
// is the documented on-disk format of internal/durable; they exist so skew
// drills (snapshot newer than WAL) can remove exactly one committed record
// without recomputing checksums.

// DiskFault selects one corruption mode for InjectDisk.
type DiskFault int

const (
	// DiskTornTail appends a garbage partial frame: a plausible length
	// prefix followed by fewer payload bytes than declared, the signature a
	// kill -9 mid-append leaves. Committed records are untouched.
	DiskTornTail DiskFault = iota
	// DiskTruncateTail cuts 1–12 bytes off the end of the file, tearing the
	// last record's payload (every WAL record is at least 48 bytes, so only
	// the final record is damaged).
	DiskTruncateTail
	// DiskFlipByte flips one byte within the last 16 bytes of the file,
	// corrupting the final record's payload or CRC in place.
	DiskFlipByte
	// DiskZeroLength appends an 8-byte frame declaring a zero-length
	// record — a forbidden frame recovery must stop at.
	DiskZeroLength
	// DiskDropTail removes the last record frame cleanly (frame-aware), so
	// the log ends one committed version early with valid checksums: the
	// "WAL older than snapshot" version-skew drill.
	DiskDropTail
)

func (d DiskFault) String() string {
	switch d {
	case DiskTornTail:
		return "torn-tail"
	case DiskTruncateTail:
		return "truncate-tail"
	case DiskFlipByte:
		return "flip-byte"
	case DiskZeroLength:
		return "zero-length"
	case DiskDropTail:
		return "drop-tail"
	}
	return fmt.Sprintf("disk-fault(%d)", int(d))
}

const (
	diskWALHeader = 8 // magic + format
	diskFrameLen  = 8 // length + crc prefix per record
)

// InjectDisk applies one corruption mode to the file at path. The damage is
// deterministic for a given (file size, seed): running a failed recovery
// test again with its printed seed reproduces the same bytes.
func InjectDisk(path string, mode DiskFault, seed int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	h := mix(uint64(seed), uint64(size), uint64(mode))

	switch mode {
	case DiskTornTail:
		// Declared length well past what we append: the payload is torn.
		declared := uint32(256 + h%1024)
		short := 4 + int(h>>32%8)
		frame := make([]byte, diskFrameLen+short)
		frame[0], frame[1], frame[2], frame[3] = byte(declared), byte(declared>>8), byte(declared>>16), byte(declared>>24)
		for i := 4; i < len(frame); i++ {
			frame[i] = byte(mix(h, uint64(i), 0))
		}
		_, err = f.WriteAt(frame, size)
		return err
	case DiskTruncateTail:
		cut := int64(1 + h%12)
		if cut >= size {
			return fmt.Errorf("fault: %s: file too small (%d bytes) to truncate %d", path, size, cut)
		}
		return f.Truncate(size - cut)
	case DiskFlipByte:
		if size < 16 {
			return fmt.Errorf("fault: %s: file too small (%d bytes) to flip a tail byte", path, size)
		}
		off := size - 1 - int64(h%16)
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return err
		}
		flip := byte(1 + (h>>32)%255) // never the identity xor
		b[0] ^= flip
		_, err = f.WriteAt(b[:], off)
		return err
	case DiskZeroLength:
		_, err = f.WriteAt(make([]byte, diskFrameLen), size)
		return err
	case DiskDropTail:
		offs, err := diskFrameOffsets(f, size)
		if err != nil {
			return err
		}
		if len(offs) == 0 {
			return fmt.Errorf("fault: %s: no record frames to drop", path)
		}
		return f.Truncate(offs[len(offs)-1])
	}
	return fmt.Errorf("fault: unknown disk fault mode %d", mode)
}

// diskFrameOffsets walks the WAL frame chain and returns each record's
// starting offset. It trusts length prefixes only as far as the file size,
// which is all DropTail needs.
func diskFrameOffsets(f *os.File, size int64) ([]int64, error) {
	var offs []int64
	off := int64(diskWALHeader)
	for off+diskFrameLen <= size {
		var frame [diskFrameLen]byte
		if _, err := f.ReadAt(frame[:], off); err != nil {
			return nil, err
		}
		length := int64(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
		if length == 0 || off+diskFrameLen+length > size {
			break
		}
		offs = append(offs, off)
		off += diskFrameLen + length
	}
	return offs, nil
}
