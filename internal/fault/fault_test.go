package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7; crash=1@300+150; crash=2@u500; slow=0@100:200:4; drop=0.05; dup=0.01; reorder=0.02; retry=12"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Crashes) != 2 || len(p.Slowdowns) != 1 {
		t.Fatalf("parsed %+v", p)
	}
	c := p.Crashes[0]
	if c.Worker != 1 || c.At != 300 || c.Restart != 150 || c.AfterUpdates != 0 {
		t.Fatalf("crash[0] = %+v", c)
	}
	c = p.Crashes[1]
	if c.Worker != 2 || c.AfterUpdates != 500 || c.Restart != -1 {
		t.Fatalf("crash[1] = %+v", c)
	}
	s := p.Slowdowns[0]
	if s.Worker != 0 || s.At != 100 || s.Duration != 200 || s.Factor != 4 {
		t.Fatalf("slow[0] = %+v", s)
	}
	if p.Drop != 0.05 || p.Dup != 0.01 || p.Reorder != 0.02 || p.Retry != 12 {
		t.Fatalf("link faults %+v", p)
	}
	// String must round-trip through Parse to an identical plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("round trip: %q != %q", p.String(), p2.String())
	}
}

func TestParseSqueeze(t *testing.T) {
	p, err := Parse("squeeze=50:200:1048576; squeeze=300:100:2048")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Squeezes) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	if s := p.Squeezes[0]; s.At != 50 || s.Duration != 200 || s.Bytes != 1<<20 {
		t.Fatalf("squeeze[0] = %+v", s)
	}
	if p.Empty() {
		t.Fatal("plan with squeezes must not be Empty")
	}
	p2, err := Parse(p.String())
	if err != nil || p.String() != p2.String() {
		t.Fatalf("round trip: %q != %q (%v)", p.String(), p2.String(), err)
	}
	in := NewInjector(p)
	if got := in.SqueezeBytes(25); got != 0 {
		t.Fatalf("SqueezeBytes(25) = %d, want 0", got)
	}
	if got := in.SqueezeBytes(100); got != 1<<20 {
		t.Fatalf("SqueezeBytes(100) = %d, want %d", got, 1<<20)
	}
	if got := in.SqueezeBytes(310); got != 2048 {
		t.Fatalf("SqueezeBytes(310) = %d, want 2048", got)
	}
	if got := in.SqueezeBytes(500); got != 0 {
		t.Fatalf("SqueezeBytes(500) = %d, want 0", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"unknown=3",
		"crash=1",
		"crash=x@5",
		"crash=1@-5",
		"crash=1@u0",
		"crash=1@5+-3",
		"slow=1@5",
		"slow=1@5:0:2",
		"slow=1@5:10:0.5",
		"squeeze=5:10",
		"squeeze=-1:10:100",
		"squeeze=5:0:100",
		"squeeze=5:10:0",
		"drop=1.5",
		"dup=-0.1",
		"retry=-1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestParsePanicClause(t *testing.T) {
	p, err := Parse("panic=2@u30; panic=0@150")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	c := p.Crashes[0]
	if c.Worker != 2 || c.AfterUpdates != 30 || !c.Panic || c.Restart >= 0 {
		t.Fatalf("panic[0] = %+v", c)
	}
	c = p.Crashes[1]
	if c.Worker != 0 || c.At != 150 || !c.Panic || c.Restart >= 0 {
		t.Fatalf("panic[1] = %+v", c)
	}
	// String keeps the panic spelling and round-trips.
	s := p.String()
	if !strings.Contains(s, "panic=2@u30") || !strings.Contains(s, "panic=0@150") {
		t.Fatalf("String() = %q", s)
	}
	p2, err := Parse(s)
	if err != nil || p2.String() != s {
		t.Fatalf("round trip: %q != %q (%v)", s, p2.String(), err)
	}
	// A panic fault never restarts: the restart suffix is a parse error.
	for _, bad := range []string{"panic=1@u30+5", "panic=1@100+50"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("empty spec parsed to %+v", p)
	}
	if NewInjector(nil).Plan() != nil {
		t.Fatal("nil plan should stay nil")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.txt")
	content := "# comment\nseed=3\ncrash=0@100+50\n\ndrop=0.1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || len(p.Crashes) != 1 || p.Drop != 0.1 {
		t.Fatalf("loaded %+v", p)
	}
	// Non-path argument parses as spec.
	p, err = Load("crash=1@5")
	if err != nil || len(p.Crashes) != 1 {
		t.Fatalf("inline load: %+v, %v", p, err)
	}
}

func TestInjectorCrashTriggers(t *testing.T) {
	p, _ := Parse("crash=0@100+20; crash=1@u50")
	in := NewInjector(p)

	if tc := in.TimeCrashes(); len(tc) != 1 || tc[0].Worker != 0 {
		t.Fatalf("TimeCrashes = %+v", tc)
	}
	// Time trigger fires via TakeDue once the clock passes.
	if _, ok := in.TakeDue(0, 0, 50); ok {
		t.Fatal("fired early")
	}
	c, ok := in.TakeDue(0, 0, 120)
	if !ok || c.Restart != 20 {
		t.Fatalf("TakeDue time = %+v, %v", c, ok)
	}
	if _, ok := in.TakeDue(0, 0, 200); ok {
		t.Fatal("crash fired twice")
	}
	if tc := in.TimeCrashes(); len(tc) != 0 {
		t.Fatalf("fired crash still listed: %+v", tc)
	}

	// Update-count trigger.
	if _, ok := in.TakeDue(1, 49, 0); ok {
		t.Fatal("update trigger fired early")
	}
	c, ok = in.TakeDue(1, 50, 0)
	if !ok || c.Restart != -1 {
		t.Fatalf("TakeDue updates = %+v, %v", c, ok)
	}
	if _, ok := in.TakeDue(1, 999, 999); ok {
		t.Fatal("update trigger fired twice")
	}
}

func TestInjectorTake(t *testing.T) {
	p, _ := Parse("crash=0@100")
	in := NewInjector(p)
	if c, ok := in.Take(0); !ok || c.Worker != 0 {
		t.Fatalf("Take(0) = %+v, %v", c, ok)
	}
	if _, ok := in.Take(0); ok {
		t.Fatal("Take fired twice")
	}
	if _, ok := in.Take(5); ok {
		t.Fatal("Take out of range succeeded")
	}
}

func TestSlowFactor(t *testing.T) {
	p, _ := Parse("slow=1@100:50:4; slow=1@120:50:2")
	in := NewInjector(p)
	if f := in.SlowFactor(1, 99); f != 1 {
		t.Fatalf("before window: %v", f)
	}
	if f := in.SlowFactor(1, 110); f != 4 {
		t.Fatalf("in first window: %v", f)
	}
	if f := in.SlowFactor(1, 130); f != 8 {
		t.Fatalf("overlap should compose: %v", f)
	}
	if f := in.SlowFactor(1, 160); f != 2 {
		t.Fatalf("in second window only: %v", f)
	}
	if f := in.SlowFactor(0, 110); f != 1 {
		t.Fatalf("other worker: %v", f)
	}
}

func TestBatchFateDeterminism(t *testing.T) {
	p, _ := Parse("seed=42; drop=0.2; dup=0.1; reorder=0.1")
	draw := func() []Fate {
		in := NewInjector(p)
		var fates []Fate
		for k := 0; k < 200; k++ {
			fates = append(fates, in.BatchFate(0, 1))
		}
		return fates
	}
	a, b := draw()[:], draw()[:]
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("fate %d differs across runs: %+v vs %+v", k, a[k], b[k])
		}
	}
	// Roughly the right rates, and at most one fault per batch.
	var drops, dups, reorders int
	for _, f := range a {
		n := 0
		if f.Drop {
			drops++
			n++
		}
		if f.Dup {
			dups++
			n++
		}
		if f.Reorder {
			reorders++
			n++
		}
		if n > 1 {
			t.Fatalf("batch drew multiple faults: %+v", f)
		}
	}
	if drops == 0 || dups == 0 || reorders == 0 {
		t.Fatalf("rates off over 200 draws: drop=%d dup=%d reorder=%d", drops, dups, reorders)
	}
	// Different links draw different streams.
	in := NewInjector(p)
	same := true
	for k := 0; k < 50; k++ {
		if in.BatchFate(0, 1) != in.BatchFate(1, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("links (0,1) and (1,0) drew identical streams")
	}
}

func TestRetryDelay(t *testing.T) {
	p, _ := Parse("retry=9")
	if d := NewInjector(p).RetryDelay(5); d != 9 {
		t.Fatalf("plan retry ignored: %v", d)
	}
	p2, _ := Parse("drop=0.1")
	if d := NewInjector(p2).RetryDelay(5); d != 5 {
		t.Fatalf("fallback retry: %v", d)
	}
}

func TestLinkDrop(t *testing.T) {
	p, err := Parse("seed=9; drop=1>0:1; drop=0>2:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0 {
		t.Fatalf("global drop should stay 0, got %v", p.Drop)
	}
	if got := p.LinkDrop[[2]int{1, 0}]; got != 1 {
		t.Fatalf("LinkDrop[1>0] = %v", got)
	}
	if got := p.LinkDrop[[2]int{0, 2}]; got != 0.5 {
		t.Fatalf("LinkDrop[0>2] = %v", got)
	}
	if !p.HasLinkFaults() {
		t.Fatal("per-link drop should count as a link fault")
	}
	// String must round-trip, with links emitted deterministically.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("round trip: %q != %q", p.String(), p2.String())
	}

	// Probability 1 on the named link drops every batch; other links are
	// untouched.
	in := NewInjector(p)
	for k := 0; k < 50; k++ {
		if !in.BatchFate(1, 0).Drop {
			t.Fatalf("batch %d on 1->0 not dropped under drop=1>0:1", k)
		}
		if f := in.BatchFate(2, 1); f != (Fate{}) {
			t.Fatalf("batch %d on unlisted link 2->1 drew %+v", k, f)
		}
	}

	// A per-link entry overrides the global rate rather than stacking.
	p3, _ := Parse("seed=9; drop=1; drop=0>1:0")
	in3 := NewInjector(p3)
	for k := 0; k < 50; k++ {
		if in3.BatchFate(0, 1).Drop {
			t.Fatalf("batch %d dropped despite drop=0>1:0 override", k)
		}
		if !in3.BatchFate(1, 2).Drop {
			t.Fatalf("batch %d on 1->2 must still use global drop=1", k)
		}
	}
}

func TestLinkDropParseErrors(t *testing.T) {
	for _, spec := range []string{
		"drop=1>0",      // missing probability
		"drop=x>0:0.5",  // bad source
		"drop=0>y:0.5",  // bad destination
		"drop=0>0:0.5",  // self-link
		"drop=0>1:1.5",  // probability out of range
		"drop=-1>0:0.5", // negative worker
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}
