package fault

import "sort"

// StormOpts shapes the chaos schedules produced by Storm. Zero values
// select reasonable soak defaults, so fault.Storm(seed, n, StormOpts{})
// already yields a crash-plus-link-noise storm.
type StormOpts struct {
	// Crashes is how many worker crashes to schedule (default 2). Crash
	// victims are drawn with replacement, so one worker can die twice
	// across its restarts.
	Crashes int
	// Span is the update-count window the crash triggers are spread
	// over (default 2000): each crash fires after its victim's k-th
	// update with k drawn uniformly from [1, Span]. Update-count
	// triggers keep storms machine-independent — the same schedule
	// bites at the same point of the computation on any host.
	Span int64
	// Restart is the detection-to-restart delay (ms under the live
	// driver, cost units under sim; default 5). Negative means the
	// victims stay dead, which the live driver treats as unrecoverable.
	Restart float64
	// Drop, Dup, Reorder are per-batch link-fault probabilities. Their
	// sum is clamped to 1 (drop wins over dup over reorder, matching
	// Injector.BatchFate's disjoint ranges).
	Drop    float64
	Dup     float64
	Reorder float64
}

// Storm generates a deterministic chaos schedule: a Plan combining
// crash/restart events with background drop/dup/reorder link noise.
// The schedule is a pure function of (seed, workers, o) — the same
// arguments always yield the same Plan, and the Plan's own link-fault
// stream is seeded with the same seed — so a failing soak iteration is
// reproducible from its seed alone.
func Storm(seed int64, workers int, o StormOpts) *Plan {
	if workers < 1 {
		workers = 1
	}
	if o.Crashes == 0 {
		o.Crashes = 2
	}
	if o.Span <= 0 {
		o.Span = 2000
	}
	if o.Restart == 0 {
		o.Restart = 5
	}
	if s := o.Drop + o.Dup + o.Reorder; s > 1 {
		o.Drop, o.Dup, o.Reorder = o.Drop/s, o.Dup/s, o.Reorder/s
	}
	p := &Plan{
		Seed:    seed,
		Drop:    o.Drop,
		Dup:     o.Dup,
		Reorder: o.Reorder,
	}
	for i := 0; i < o.Crashes; i++ {
		w := int(mix(uint64(seed), 0x57ab, uint64(i)) % uint64(workers))
		k := 1 + int64(mix(uint64(seed), 0x57ac, uint64(i))%uint64(o.Span))
		p.Crashes = append(p.Crashes, Crash{
			Worker:       w,
			AfterUpdates: k,
			Restart:      o.Restart,
		})
	}
	// Order by trigger count purely for readable String() output; the
	// injector fires crashes by per-worker update counts regardless.
	sort.Slice(p.Crashes, func(i, j int) bool {
		if p.Crashes[i].AfterUpdates != p.Crashes[j].AfterUpdates {
			return p.Crashes[i].AfterUpdates < p.Crashes[j].AfterUpdates
		}
		return p.Crashes[i].Worker < p.Crashes[j].Worker
	})
	return p
}
