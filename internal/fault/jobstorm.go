package fault

// Tenant-level fault plans: where Storm shapes the faults *inside* one run,
// JobStorm shapes a whole population of runs arriving at a resident job
// service — burst arrivals that saturate the admission controller, crashy
// jobs that must recover inside their own fault domain, and rogue jobs that
// panic and must be quarantined without touching their neighbors.

// JobFault is one scheduled job in a tenant storm.
type JobFault struct {
	// ArrivalMS is the submit time relative to the storm's start. Arrivals
	// cluster into bursts so the admission queue actually fills (a uniform
	// trickle would never shed).
	ArrivalMS int64
	// Plan is the in-run fault plan spec ("" = clean run). Parseable by
	// fault.Parse; the service passes it through to the job's LiveConfig.
	Plan string
	// Rogue marks a job whose plan injects a panic: it is *expected* to be
	// quarantined (fail with a contained panic), and the soak asserts that
	// its neighbors still finish correctly.
	Rogue bool
	// Crashy marks a job whose plan injects crash+restart faults: it must
	// still complete with reference-correct results via localized recovery.
	Crashy bool
}

// JobStormOpts shapes a tenant storm. Zero values select soak defaults.
type JobStormOpts struct {
	// Bursts is how many arrival bursts the jobs cluster into (default 3).
	Bursts int
	// BurstGapMS is the idle gap between bursts (default 300).
	BurstGapMS int64
	// Rogues is how many rogue (panicking) jobs to schedule (default 1).
	Rogues int
	// Crashy is how many crash+restart jobs to schedule (default 2).
	Crashy int
	// Span is the update-count window in-run crash/panic triggers are
	// drawn from (default 400 — early enough to bite on small datasets).
	Span int64
	// RestartMS is the crashy jobs' detection-to-restart delay (default 5).
	RestartMS float64
}

// JobStorm generates a deterministic multi-tenant arrival schedule for n
// jobs: a pure function of (seed, n, o), so a failing service soak is
// reproducible from its seed alone. Rogue and crashy roles are assigned to
// distinct jobs (rogues win ties); every other job runs clean.
func JobStorm(seed int64, n int, o JobStormOpts) []JobFault {
	if n < 1 {
		n = 1
	}
	if o.Bursts <= 0 {
		o.Bursts = 3
	}
	if o.Bursts > n {
		o.Bursts = n
	}
	if o.BurstGapMS <= 0 {
		o.BurstGapMS = 300
	}
	if o.Rogues == 0 {
		o.Rogues = 1
	}
	if o.Crashy == 0 {
		o.Crashy = 2
	}
	if o.Span <= 0 {
		o.Span = 400
	}
	if o.RestartMS == 0 {
		o.RestartMS = 5
	}

	// Role assignment: draw victim indices with a distinct stream per role;
	// collisions re-draw linearly so roles never overlap.
	taken := make(map[int]bool, o.Rogues+o.Crashy)
	draw := func(stream uint64, i int) int {
		j := int(mix(uint64(seed), stream, uint64(i)) % uint64(n))
		for taken[j] {
			j = (j + 1) % n
		}
		taken[j] = true
		return j
	}
	rogue := make(map[int]bool, o.Rogues)
	crashy := make(map[int]bool, o.Crashy)
	for i := 0; i < o.Rogues && len(taken) < n; i++ {
		rogue[draw(0x6a01, i)] = true
	}
	for i := 0; i < o.Crashy && len(taken) < n; i++ {
		crashy[draw(0x6a02, i)] = true
	}

	jobs := make([]JobFault, n)
	perBurst := (n + o.Bursts - 1) / o.Bursts
	for i := 0; i < n; i++ {
		burst := i / perBurst
		// Inside a burst, arrivals land within a 20ms window: effectively
		// simultaneous against a core-capped server, so the queue fills.
		jitter := int64(mix(uint64(seed), 0x6a03, uint64(i)) % 20)
		jobs[i].ArrivalMS = int64(burst)*o.BurstGapMS + jitter
		trig := 1 + int64(mix(uint64(seed), 0x6a04, uint64(i))%uint64(o.Span))
		switch {
		case rogue[i]:
			jobs[i].Rogue = true
			jobs[i].Plan = (&Plan{Crashes: []Crash{{
				AfterUpdates: trig, Restart: -1, Panic: true,
			}}}).String()
		case crashy[i]:
			jobs[i].Crashy = true
			jobs[i].Plan = (&Plan{Seed: seed + int64(i), Crashes: []Crash{{
				AfterUpdates: trig, Restart: o.RestartMS,
			}}}).String()
		}
	}
	return jobs
}
