package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestJobStormDeterministic(t *testing.T) {
	a := JobStorm(42, 16, JobStormOpts{})
	b := JobStorm(42, 16, JobStormOpts{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the same storm")
	}
	c := JobStorm(43, 16, JobStormOpts{})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestJobStormRolesDistinctAndParseable(t *testing.T) {
	jobs := JobStorm(7, 20, JobStormOpts{Rogues: 3, Crashy: 4})
	rogues, crashy := 0, 0
	for i, j := range jobs {
		if j.Rogue && j.Crashy {
			t.Fatalf("job %d holds both roles", i)
		}
		if j.Rogue {
			rogues++
			if !strings.Contains(j.Plan, "panic=") {
				t.Fatalf("rogue job %d plan %q lacks a panic clause", i, j.Plan)
			}
		}
		if j.Crashy {
			crashy++
			if !strings.Contains(j.Plan, "crash=") {
				t.Fatalf("crashy job %d plan %q lacks a crash clause", i, j.Plan)
			}
		}
		if !j.Rogue && !j.Crashy && j.Plan != "" {
			t.Fatalf("clean job %d has plan %q", i, j.Plan)
		}
		// Every emitted plan must survive Parse — the service feeds them
		// straight into LiveConfig.
		if j.Plan != "" {
			if _, err := Parse(j.Plan); err != nil {
				t.Fatalf("job %d plan %q: %v", i, j.Plan, err)
			}
		}
	}
	if rogues != 3 || crashy != 4 {
		t.Fatalf("roles: %d rogues, %d crashy (want 3, 4)", rogues, crashy)
	}
}

func TestJobStormBurstsCluster(t *testing.T) {
	jobs := JobStorm(11, 12, JobStormOpts{Bursts: 3, BurstGapMS: 300})
	bursts := map[int64]int{}
	for _, j := range jobs {
		// Arrivals within a burst jitter inside a 20ms window, so integer
		// division by the gap recovers the burst index.
		bursts[j.ArrivalMS/300]++
		if j.ArrivalMS%300 >= 20 {
			t.Fatalf("arrival %dms falls outside its burst window", j.ArrivalMS)
		}
	}
	if len(bursts) != 3 {
		t.Fatalf("got %d bursts, want 3: %v", len(bursts), bursts)
	}
	for b, n := range bursts {
		if n != 4 {
			t.Fatalf("burst %d has %d jobs, want 4", b, n)
		}
	}
}

func TestJobStormMoreRolesThanJobs(t *testing.T) {
	// Role assignment must terminate and stay within bounds even when the
	// requested roles exceed the population.
	jobs := JobStorm(3, 4, JobStormOpts{Rogues: 10, Crashy: 10})
	if len(jobs) != 4 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	assigned := 0
	for _, j := range jobs {
		if j.Rogue || j.Crashy {
			assigned++
		}
	}
	if assigned != 4 {
		t.Fatalf("only %d of 4 jobs got a role", assigned)
	}
}
