package fault

import (
	"reflect"
	"testing"
)

func TestMutationStormDeterministic(t *testing.T) {
	a := MutationStorm(42, 8, MutationStormOpts{})
	b := MutationStorm(42, 8, MutationStormOpts{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the same storm")
	}
	c := MutationStorm(43, 8, MutationStormOpts{})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestMutationStormShape(t *testing.T) {
	evs := MutationStorm(7, 6, MutationStormOpts{BurstGapMS: 300, MinOps: 4, MaxOps: 32})
	var last int64 = -1
	for i, e := range evs {
		if e.ArrivalMS <= last {
			t.Fatalf("event %d arrival %dms not after previous %dms", i, e.ArrivalMS, last)
		}
		last = e.ArrivalMS
		// Each batch lands inside its own gap's middle window.
		lo := int64(i)*300 + 150
		if e.ArrivalMS < lo || e.ArrivalMS >= lo+60 {
			t.Fatalf("event %d arrival %dms outside [%d,%d)", i, e.ArrivalMS, lo, lo+60)
		}
		if e.Ops < 4 || e.Ops > 32 {
			t.Fatalf("event %d ops %d outside [4,32]", i, e.Ops)
		}
		if e.Seed == 0 {
			t.Fatalf("event %d has zero seed", i)
		}
	}
}
