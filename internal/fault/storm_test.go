package fault

import (
	"reflect"
	"testing"
)

func TestStormDeterministic(t *testing.T) {
	o := StormOpts{Crashes: 3, Span: 500, Restart: 10, Drop: 0.02, Dup: 0.02, Reorder: 0.05}
	a := Storm(42, 4, o)
	b := Storm(42, 4, o)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%s\nvs\n%s", a, b)
	}
	c := Storm(43, 4, o)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical plans: %s", a)
	}
}

func TestStormShape(t *testing.T) {
	p := Storm(7, 4, StormOpts{})
	if len(p.Crashes) != 2 {
		t.Fatalf("default storm scheduled %d crashes, want 2", len(p.Crashes))
	}
	for _, c := range p.Crashes {
		if c.Worker < 0 || c.Worker >= 4 {
			t.Errorf("crash victim %d out of range [0,4)", c.Worker)
		}
		if c.AfterUpdates < 1 || c.AfterUpdates > 2000 {
			t.Errorf("crash trigger u%d outside default span [1,2000]", c.AfterUpdates)
		}
		if c.Restart != 5 {
			t.Errorf("crash restart %v, want default 5", c.Restart)
		}
	}
	if !p.HasCrashes() {
		t.Error("storm plan reports no crashes")
	}
}

func TestStormClampsProbabilities(t *testing.T) {
	p := Storm(1, 2, StormOpts{Drop: 0.8, Dup: 0.8, Reorder: 0.4})
	if s := p.Drop + p.Dup + p.Reorder; s > 1+1e-12 {
		t.Fatalf("link-fault probabilities sum to %v > 1", s)
	}
	if p.Drop <= p.Reorder {
		t.Errorf("clamp should preserve proportions: drop=%v reorder=%v", p.Drop, p.Reorder)
	}
}

func TestStormRoundTripsThroughSpec(t *testing.T) {
	p := Storm(99, 8, StormOpts{Crashes: 4, Drop: 0.01, Reorder: 0.03})
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("spec round-trip mismatch:\n%s\nvs\n%s", p, q)
	}
}
