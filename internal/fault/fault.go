// Package fault defines deterministic, seedable fault plans for the GAP
// runtime and the injector that interprets them at run time.
//
// A Plan is a declarative description of what goes wrong during a run:
// worker crashes (triggered at a virtual time or after an update count,
// optionally followed by a restart), transient slowdowns, and per-link
// message-batch faults (drop, duplicate, reorder). The same plan drives
// both drivers: the virtual-time simulator charges faults deterministic
// costs so runs stay byte-reproducible for a fixed seed, and the live
// driver kills and restarts real goroutines.
//
// Plans are written as compact spec strings, e.g.
//
//	seed=7; crash=1@300+150; crash=2@u500; slow=0@100:200:4; drop=0.05
//
// meaning: seed 7; worker 1 crashes at time 300 and restarts after 150
// units; worker 2 crashes permanently after its 500th update; worker 0
// runs 4× slower between t=100 and t=300; each message batch is dropped
// (and retransmitted late) with probability 0.05. Times are virtual cost
// units under the sim driver and milliseconds under the live driver.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Crash kills one worker once. Exactly one of At (time trigger) or
// AfterUpdates (update-count trigger) is active; AfterUpdates > 0 wins.
// Restart < 0 means the worker stays dead for the rest of the run.
type Crash struct {
	Worker       int
	At           float64 // trigger time (cost units / ms); used when AfterUpdates == 0
	AfterUpdates int64   // trigger after this many updates on the worker (0 = use At)
	Restart      float64 // delay from detection to restart; < 0 = never
	// Panic makes the worker blow up (a Go panic on its goroutine) instead
	// of exiting cleanly — the rogue-program fault a multi-tenant service
	// must contain. Panic crashes never restart: the run is expected to
	// fail with a contained panic error, not to recover. Written
	// "panic=W@T" / "panic=W@uN" in specs.
	Panic bool
}

// Slowdown multiplies one worker's compute cost by Factor during
// [At, At+Duration).
type Slowdown struct {
	Worker   int
	At       float64
	Duration float64
	Factor   float64
}

// Squeeze injects synthetic memory pressure: Bytes of phantom usage are
// charged to the run's memory governor during [At, At+Duration), driving it
// up the degradation ladder without allocating anything. Written
// "squeeze=T:DUR:B" in specs.
type Squeeze struct {
	At       float64
	Duration float64
	Bytes    int64
}

// Plan is a complete, deterministic fault schedule for one run.
type Plan struct {
	Seed      int64
	Crashes   []Crash
	Slowdowns []Slowdown
	Squeezes  []Squeeze

	// Per-batch link fault probabilities in [0,1]. The fate of the k-th
	// batch on link (i→j) is a pure function of (Seed, i, j, k), so a plan
	// injects identically into repeated runs regardless of scheduling.
	Drop    float64 // batch is lost and retransmitted after Retry
	Dup     float64 // batch is delivered twice (idempotent programs only)
	Reorder float64 // batch is held back / delayed past FIFO order

	// LinkDrop overrides Drop on individual links: the key is {from, to}
	// and the value a probability in [0,1]. Written "drop=F>T:P" in specs.
	// A per-link entry fully replaces the global Drop on that link, so
	// "drop=0>1:1" with no global clause drops every 0→1 batch and nothing
	// else.
	LinkDrop map[[2]int]float64

	// Retry is the retransmit delay charged for a dropped batch
	// (cost units / ms). Zero selects a driver default.
	Retry float64
}

// HasCrashes reports whether the plan schedules any worker crash.
func (p *Plan) HasCrashes() bool { return p != nil && len(p.Crashes) > 0 }

// HasLinkFaults reports whether any per-batch link fault can fire.
func (p *Plan) HasLinkFaults() bool {
	if p == nil {
		return false
	}
	if p.Drop > 0 || p.Dup > 0 || p.Reorder > 0 {
		return true
	}
	for _, pr := range p.LinkDrop {
		if pr > 0 {
			return true
		}
	}
	return false
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Slowdowns) == 0 &&
		len(p.Squeezes) == 0 && !p.HasLinkFaults())
}

// String renders the plan in the spec grammar accepted by Parse, so
// Parse(p.String()) round-trips.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, c := range p.Crashes {
		key := "crash"
		if c.Panic {
			key = "panic"
		}
		var s string
		if c.AfterUpdates > 0 {
			s = fmt.Sprintf("%s=%d@u%d", key, c.Worker, c.AfterUpdates)
		} else {
			s = fmt.Sprintf("%s=%d@%s", key, c.Worker, ftoa(c.At))
		}
		if c.Restart >= 0 && !c.Panic {
			s += "+" + ftoa(c.Restart)
		}
		parts = append(parts, s)
	}
	for _, s := range p.Slowdowns {
		parts = append(parts, fmt.Sprintf("slow=%d@%s:%s:%s",
			s.Worker, ftoa(s.At), ftoa(s.Duration), ftoa(s.Factor)))
	}
	for _, s := range p.Squeezes {
		parts = append(parts, fmt.Sprintf("squeeze=%s:%s:%d",
			ftoa(s.At), ftoa(s.Duration), s.Bytes))
	}
	if p.Drop > 0 {
		parts = append(parts, "drop="+ftoa(p.Drop))
	}
	links := make([][2]int, 0, len(p.LinkDrop))
	for l := range p.LinkDrop {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, l := range links {
		parts = append(parts, fmt.Sprintf("drop=%d>%d:%s", l[0], l[1], ftoa(p.LinkDrop[l])))
	}
	if p.Dup > 0 {
		parts = append(parts, "dup="+ftoa(p.Dup))
	}
	if p.Reorder > 0 {
		parts = append(parts, "reorder="+ftoa(p.Reorder))
	}
	if p.Retry > 0 {
		parts = append(parts, "retry="+ftoa(p.Retry))
	}
	return strings.Join(parts, "; ")
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse builds a Plan from a spec string. Clauses are separated by ';'
// or ',' and each is key=value:
//
//	seed=N                 deterministic seed for link-fault streams
//	crash=W@T[+R]          worker W crashes at time T, restarts after R
//	crash=W@uN[+R]         worker W crashes after its N-th update
//	panic=W@T, panic=W@uN  worker W panics (rogue program; never restarts)
//	slow=W@T:DUR:F         worker W runs F× slower during [T, T+DUR)
//	squeeze=T:DUR:B        B bytes of synthetic memory pressure in [T, T+DUR)
//	drop=P dup=P reorder=P per-batch link fault probabilities
//	retry=D                retransmit delay for dropped batches
//
// Omitting "+R" on a crash makes it permanent.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "crash":
			err = parseCrash(p, val, false)
		case "panic":
			err = parseCrash(p, val, true)
		case "slow":
			err = parseSlow(p, val)
		case "squeeze":
			err = parseSqueeze(p, val)
		case "drop":
			if strings.Contains(val, ">") {
				err = parseLinkDrop(p, val)
			} else {
				p.Drop, err = parseProb(val)
			}
		case "dup":
			p.Dup, err = parseProb(val)
		case "reorder":
			p.Reorder, err = parseProb(val)
		case "retry":
			p.Retry, err = strconv.ParseFloat(val, 64)
			if err == nil && p.Retry < 0 {
				err = fmt.Errorf("negative retry delay")
			}
		default:
			return nil, fmt.Errorf("fault: unknown clause key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %v", clause, err)
		}
	}
	return p, nil
}

// Load parses specOrPath as a spec string, or — if it names a readable
// file — parses the file's contents (lines starting with '#' ignored).
func Load(specOrPath string) (*Plan, error) {
	if b, err := os.ReadFile(specOrPath); err == nil {
		var lines []string
		for _, ln := range strings.Split(string(b), "\n") {
			ln = strings.TrimSpace(ln)
			if ln == "" || strings.HasPrefix(ln, "#") {
				continue
			}
			lines = append(lines, ln)
		}
		return Parse(strings.Join(lines, ";"))
	}
	return Parse(specOrPath)
}

func parseCrash(p *Plan, val string, panicFault bool) error {
	ws, rest, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want W@T[+R] or W@uN[+R]")
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w < 0 {
		return fmt.Errorf("bad worker %q", ws)
	}
	c := Crash{Worker: w, Restart: -1, Panic: panicFault}
	trig, restart, hasRestart := strings.Cut(rest, "+")
	if panicFault && hasRestart {
		return fmt.Errorf("panic faults cannot restart (drop the +%s)", restart)
	}
	if strings.HasPrefix(trig, "u") {
		c.AfterUpdates, err = strconv.ParseInt(trig[1:], 10, 64)
		if err != nil || c.AfterUpdates <= 0 {
			return fmt.Errorf("bad update trigger %q", trig)
		}
	} else {
		c.At, err = strconv.ParseFloat(trig, 64)
		if err != nil || c.At < 0 {
			return fmt.Errorf("bad trigger time %q", trig)
		}
	}
	if hasRestart {
		c.Restart, err = strconv.ParseFloat(restart, 64)
		if err != nil || c.Restart < 0 {
			return fmt.Errorf("bad restart delay %q", restart)
		}
	}
	p.Crashes = append(p.Crashes, c)
	return nil
}

func parseSlow(p *Plan, val string) error {
	ws, rest, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want W@T:DUR:F")
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w < 0 {
		return fmt.Errorf("bad worker %q", ws)
	}
	f := strings.Split(rest, ":")
	if len(f) != 3 {
		return fmt.Errorf("want W@T:DUR:F")
	}
	s := Slowdown{Worker: w}
	if s.At, err = strconv.ParseFloat(f[0], 64); err != nil || s.At < 0 {
		return fmt.Errorf("bad start time %q", f[0])
	}
	if s.Duration, err = strconv.ParseFloat(f[1], 64); err != nil || s.Duration <= 0 {
		return fmt.Errorf("bad duration %q", f[1])
	}
	if s.Factor, err = strconv.ParseFloat(f[2], 64); err != nil || s.Factor < 1 {
		return fmt.Errorf("bad factor %q (want >= 1)", f[2])
	}
	p.Slowdowns = append(p.Slowdowns, s)
	return nil
}

func parseSqueeze(p *Plan, val string) error {
	f := strings.Split(val, ":")
	if len(f) != 3 {
		return fmt.Errorf("want T:DUR:B")
	}
	var s Squeeze
	var err error
	if s.At, err = strconv.ParseFloat(f[0], 64); err != nil || s.At < 0 {
		return fmt.Errorf("bad start time %q", f[0])
	}
	if s.Duration, err = strconv.ParseFloat(f[1], 64); err != nil || s.Duration <= 0 {
		return fmt.Errorf("bad duration %q", f[1])
	}
	if s.Bytes, err = strconv.ParseInt(f[2], 10, 64); err != nil || s.Bytes <= 0 {
		return fmt.Errorf("bad byte count %q", f[2])
	}
	p.Squeezes = append(p.Squeezes, s)
	return nil
}

// parseLinkDrop handles the "drop=F>T:P" form: batches on link F→T are
// dropped with probability P, overriding the global drop rate there.
func parseLinkDrop(p *Plan, val string) error {
	fs, rest, _ := strings.Cut(val, ">")
	ts, ps, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("want F>T:P")
	}
	from, err := strconv.Atoi(strings.TrimSpace(fs))
	if err != nil || from < 0 {
		return fmt.Errorf("bad source worker %q", fs)
	}
	to, err := strconv.Atoi(strings.TrimSpace(ts))
	if err != nil || to < 0 {
		return fmt.Errorf("bad destination worker %q", ts)
	}
	if from == to {
		return fmt.Errorf("link %d>%d is not a link", from, to)
	}
	prob, err := parseProb(strings.TrimSpace(ps))
	if err != nil {
		return err
	}
	if p.LinkDrop == nil {
		p.LinkDrop = make(map[[2]int]float64)
	}
	p.LinkDrop[[2]int{from, to}] = prob
	return nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

// Fate is the deterministic outcome drawn for one message batch.
type Fate struct {
	Drop    bool
	Dup     bool
	Reorder bool
}

// Injector interprets a Plan during one run. It is safe for concurrent
// use (the live driver calls it from every worker goroutine); under the
// single-threaded sim driver the locks are uncontended.
//
// Link-fault decisions are pure functions of (Seed, from, to, seq) where
// seq is a per-link counter, so two runs of the same plan draw the same
// fates for the same batch sequence regardless of goroutine scheduling.
type Injector struct {
	plan *Plan

	mu      sync.Mutex
	fired   []bool // per-crash: already triggered
	linkSeq map[[2]int]uint64
}

// NewInjector builds the runtime interpreter for plan. A nil plan yields
// an injector that never injects.
func NewInjector(plan *Plan) *Injector {
	inj := &Injector{plan: plan, linkSeq: make(map[[2]int]uint64)}
	if plan != nil {
		inj.fired = make([]bool, len(plan.Crashes))
	}
	return inj
}

// Plan returns the plan the injector interprets (possibly nil).
func (in *Injector) Plan() *Plan { return in.plan }

// TimeCrashes returns the not-yet-fired time-triggered crashes, for the
// sim driver to pre-schedule as events. It does not mark them fired;
// use Take when the event executes.
func (in *Injector) TimeCrashes() []Crash {
	if in.plan == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Crash
	for i, c := range in.plan.Crashes {
		if c.AfterUpdates == 0 && !in.fired[i] {
			out = append(out, c)
		}
	}
	return out
}

// Take marks crash index i fired and returns it; the second result is
// false if it had already fired. Index order matches Plan.Crashes.
func (in *Injector) Take(i int) (Crash, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan == nil || i < 0 || i >= len(in.plan.Crashes) || in.fired[i] {
		return Crash{}, false
	}
	in.fired[i] = true
	return in.plan.Crashes[i], true
}

// TakeDue fires and returns the first pending crash for worker that is
// due given the worker's cumulative update count and current time. The
// second result is false when no crash is due. Each crash fires at most
// once even across worker restarts.
func (in *Injector) TakeDue(worker int, updates int64, now float64) (Crash, bool) {
	if in.plan == nil {
		return Crash{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, c := range in.plan.Crashes {
		if in.fired[i] || c.Worker != worker {
			continue
		}
		if c.AfterUpdates > 0 {
			if updates >= c.AfterUpdates {
				in.fired[i] = true
				return c, true
			}
		} else if now >= c.At {
			in.fired[i] = true
			return c, true
		}
	}
	return Crash{}, false
}

// SlowFactor returns the compute-cost multiplier in effect for worker at
// time now (1 when no slowdown applies). Overlapping slowdowns compose
// multiplicatively.
func (in *Injector) SlowFactor(worker int, now float64) float64 {
	if in.plan == nil {
		return 1
	}
	f := 1.0
	for _, s := range in.plan.Slowdowns {
		if s.Worker == worker && now >= s.At && now < s.At+s.Duration {
			f *= s.Factor
		}
	}
	return f
}

// SqueezeBytes returns the synthetic memory pressure in effect at time now:
// the sum of all active squeeze windows (0 when none).
func (in *Injector) SqueezeBytes(now float64) int64 {
	if in.plan == nil {
		return 0
	}
	var b int64
	for _, s := range in.plan.Squeezes {
		if now >= s.At && now < s.At+s.Duration {
			b += s.Bytes
		}
	}
	return b
}

// BatchFate draws the deterministic fate of the next batch on link
// from→to. A batch suffers at most one fault; drop takes precedence over
// dup over reorder (disjoint probability ranges on one uniform draw).
func (in *Injector) BatchFate(from, to int) Fate {
	if in.plan == nil || !in.plan.HasLinkFaults() {
		return Fate{}
	}
	in.mu.Lock()
	k := in.linkSeq[[2]int{from, to}]
	in.linkSeq[[2]int{from, to}] = k + 1
	in.mu.Unlock()
	u := u01(mix(uint64(in.plan.Seed), uint64(from)<<32|uint64(uint32(to)), k))
	p := in.plan
	drop := p.Drop
	if pr, ok := p.LinkDrop[[2]int{from, to}]; ok {
		drop = pr
	}
	switch {
	case u < drop:
		return Fate{Drop: true}
	case u < drop+p.Dup:
		return Fate{Dup: true}
	case u < drop+p.Dup+p.Reorder:
		return Fate{Reorder: true}
	}
	return Fate{}
}

// RetryDelay returns the retransmit delay for dropped batches, using
// fallback when the plan does not set one.
func (in *Injector) RetryDelay(fallback float64) float64 {
	if in.plan != nil && in.plan.Retry > 0 {
		return in.plan.Retry
	}
	return fallback
}

// mix is a splitmix64-style avalanche over three words; the result is a
// uniform 64-bit hash usable as a deterministic per-decision stream.
func mix(a, b, c uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15
	z += b * 0xbf58476d1ce4e5b9
	z += c * 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// u01 maps a 64-bit hash to [0,1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }
