package fault

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"argan/internal/durable"
	"argan/internal/graph"
)

// buildWAL writes a 3-record log and returns its path.
func buildWAL(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	w, _, _, err := durable.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for v := uint64(1); v <= 3; v++ {
		rec := durable.Record{Version: v, Fingerprint: v * 7}
		for i := uint64(0); i <= v; i++ {
			rec.Batch.Inserts = append(rec.Batch.Inserts, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: 1})
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestInjectDiskRecovery drives every disk-fault mode against a real WAL
// and asserts what the durable layer's recovery scan makes of the damage.
func TestInjectDiskRecovery(t *testing.T) {
	cases := []struct {
		mode        DiskFault
		wantRecords int
		wantTrunc   bool
	}{
		// A torn append damages only the unacknowledged tail frame.
		{DiskTornTail, 3, true},
		// Cutting 1-12 bytes tears the last committed record's payload.
		{DiskTruncateTail, 2, true},
		// A flipped tail byte lands in the last record's payload or CRC.
		{DiskFlipByte, 2, true},
		// A zero-length frame is forbidden; the scan stops and cuts it.
		{DiskZeroLength, 3, true},
		// DropTail removes the last frame cleanly: one version lost, no
		// corruption for the scan to flag — the version-skew drill.
		{DiskDropTail, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			path := buildWAL(t, t.TempDir())
			if err := InjectDisk(path, tc.mode, 42); err != nil {
				t.Fatalf("InjectDisk(%s): %v", tc.mode, err)
			}
			w, recs, stats, err := durable.OpenWAL(path)
			if err != nil {
				t.Fatalf("recovery open after %s: %v", tc.mode, err)
			}
			defer w.Close()
			if len(recs) != tc.wantRecords {
				t.Fatalf("%s: recovered %d records, want %d", tc.mode, len(recs), tc.wantRecords)
			}
			if stats.Truncated != tc.wantTrunc {
				t.Fatalf("%s: Truncated = %v, want %v", tc.mode, stats.Truncated, tc.wantTrunc)
			}
			for i, rec := range recs {
				if rec.Version != uint64(i+1) {
					t.Fatalf("%s: record %d has version %d", tc.mode, i, rec.Version)
				}
			}
		})
	}
}

// TestInjectDiskDeterministic: the same (file, mode, seed) must produce
// byte-identical damage, so a failed recovery test replays from its seed.
func TestInjectDiskDeterministic(t *testing.T) {
	for _, mode := range []DiskFault{DiskTornTail, DiskTruncateTail, DiskFlipByte, DiskZeroLength, DiskDropTail} {
		a := buildWAL(t, t.TempDir())
		b := buildWAL(t, t.TempDir())
		if err := InjectDisk(a, mode, 7); err != nil {
			t.Fatal(err)
		}
		if err := InjectDisk(b, mode, 7); err != nil {
			t.Fatal(err)
		}
		ba, _ := os.ReadFile(a)
		bb, _ := os.ReadFile(b)
		if !bytes.Equal(ba, bb) {
			t.Fatalf("%s with seed 7 produced different bytes across runs", mode)
		}
	}
}

func TestInjectDiskUnknownMode(t *testing.T) {
	path := buildWAL(t, t.TempDir())
	if err := InjectDisk(path, DiskFault(99), 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if got := DiskFault(99).String(); got != "disk-fault(99)" {
		t.Fatalf("String() = %q", got)
	}
}
