// Package fixpoint implements the paper's §IV: sequential batch algorithms
// modeled as fixpoint iterations, and their relationship to parallel ACE
// programs. In this architecture an ace.Program *is* the fixpoint form of
// the algorithm — status variables x_v, update functions f_xv, an active
// set H — so the derivation of ρ_A from A is the identity, and this package
// supplies the two other halves of the story:
//
//   - Run executes a program sequentially over the whole graph (one
//     fragment, no engine): this is exactly the batch algorithm A, and the
//     paper's correctness argument maps A to this special case of ρ_A;
//   - Verify checks the §IV correctness property, i.e. that a parallel
//     execution returned the same fixpoint as the sequential one.
package fixpoint

import (
	"fmt"

	"argan/internal/ace"
	"argan/internal/gap"
	"argan/internal/graph"
)

// Run executes the ACE program sequentially over g: a single fragment, the
// local iteration loop of LocalEval, no communication. It returns the
// per-vertex outputs and the number of update-function invocations.
func Run[V any](g *graph.Graph, factory ace.Factory[V], q ace.Query) ([]V, int64, error) {
	owner := make([]uint16, g.NumVertices())
	frags, err := graph.BuildFragments(g, owner, 1)
	if err != nil {
		return nil, 0, err
	}
	f := frags[0]
	prog := factory()
	prog.Setup(f, q)

	psi := make([]V, f.NumLocal())
	active := newQueue(f.NumOwned())
	var prio func(uint32) float64
	var ctx *ace.Ctx[V]
	if p, ok := any(prog).(ace.Prioritizer[V]); ok {
		prio = func(l uint32) float64 { return p.Priority(psi[l]) }
		active = newPQ(f.NumOwned(), prio)
	}
	ctx = ace.NewCtx(f, psi,
		func(l uint32, v V) { psi[l] = v; activateDeps(prog, f, active, l) },
		func(l uint32, d V) {
			nv, ch := prog.Aggregate(psi[l], d)
			if ch {
				psi[l] = nv
				active.push(l)
			}
		},
		func(l uint32) { active.push(l) },
	)
	for l := uint32(0); int(l) < f.NumLocal(); l++ {
		v, act := prog.InitValue(f, l, q)
		psi[l] = v
		if act && f.IsOwned(l) {
			active.push(l)
		}
	}
	var updates int64
	limit := int64(2000) * int64(g.NumVertices()+1)
	for !active.empty() {
		v := active.pop()
		prog.Update(ctx, v)
		updates++
		if updates > limit {
			return nil, updates, fmt.Errorf("fixpoint: no convergence after %d updates", updates)
		}
	}
	out := make([]V, g.NumVertices())
	for l := uint32(0); int(l) < f.NumOwned(); l++ {
		out[f.Global(l)] = prog.Output(ctx, l)
	}
	return out, updates, nil
}

func activateDeps[V any](p ace.Program[V], f *graph.Fragment, a *queue, l uint32) {
	switch p.Deps() {
	case ace.DepSelf:
		// Push-style programs propagate explicitly.
	case ace.DepOut:
		for _, u := range f.InNeighbors(l) {
			a.push(u)
		}
	case ace.DepBoth:
		for _, u := range f.InNeighbors(l) {
			a.push(u)
		}
		for _, u := range f.OutNeighbors(l) {
			a.push(u)
		}
	default:
		for _, u := range f.OutNeighbors(l) {
			a.push(u)
		}
	}
}

// Verify runs the program both sequentially and in parallel under the given
// engine configuration and reports the first mismatch, if any — the §IV
// correctness check "ρ_A always returns the same results as A".
func Verify[V any](g *graph.Graph, frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, cfg gap.Config, close func(a, b V) bool) error {
	want, _, err := Run(g, factory, q)
	if err != nil {
		return err
	}
	res, err := gap.RunSim(frags, factory, q, cfg)
	if err != nil {
		return err
	}
	if !res.Metrics.Converged {
		return fmt.Errorf("fixpoint: parallel run did not converge")
	}
	for v := range want {
		if !close(want[v], res.Values[v]) {
			return fmt.Errorf("fixpoint: vertex %d: sequential %v != parallel %v", v, want[v], res.Values[v])
		}
	}
	return nil
}

// queue is a small FIFO / priority active set shared by the sequential
// runner (a simplified twin of the engine's).
type queue struct {
	inQ  []bool
	size int
	fifo []uint32
	head int
	prio func(uint32) float64
	heap []uint32
}

func newQueue(n int) *queue { return &queue{inQ: make([]bool, n)} }

func newPQ(n int, prio func(uint32) float64) *queue {
	return &queue{inQ: make([]bool, n), prio: prio}
}

func (a *queue) empty() bool { return a.size == 0 }

func (a *queue) push(l uint32) {
	if int(l) >= len(a.inQ) || a.inQ[l] {
		if a.prio != nil && int(l) < len(a.inQ) && a.inQ[l] {
			a.heap = append(a.heap, l)
			a.up(len(a.heap) - 1)
		}
		return
	}
	a.inQ[l] = true
	a.size++
	if a.prio == nil {
		a.fifo = append(a.fifo, l)
		return
	}
	a.heap = append(a.heap, l)
	a.up(len(a.heap) - 1)
}

func (a *queue) pop() uint32 {
	a.size--
	if a.prio == nil {
		for !a.inQ[a.fifo[a.head]] {
			a.head++
		}
		v := a.fifo[a.head]
		a.head++
		a.inQ[v] = false
		return v
	}
	for {
		v := a.heap[0]
		last := len(a.heap) - 1
		a.heap[0] = a.heap[last]
		a.heap = a.heap[:last]
		if len(a.heap) > 0 {
			a.down(0)
		}
		if a.inQ[v] {
			a.inQ[v] = false
			return v
		}
	}
}

func (a *queue) less(i, j int) bool {
	pi, pj := a.prio(a.heap[i]), a.prio(a.heap[j])
	if pi != pj {
		return pi < pj
	}
	return a.heap[i] < a.heap[j]
}

func (a *queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !a.less(i, p) {
			return
		}
		a.heap[i], a.heap[p] = a.heap[p], a.heap[i]
		i = p
	}
}

func (a *queue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a.heap) && a.less(l, m) {
			m = l
		}
		if r < len(a.heap) && a.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		a.heap[i], a.heap[m] = a.heap[m], a.heap[i]
		i = m
	}
}
