package fixpoint

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/partition"
)

func TestRunEqualsSequentialReferences(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 300, M: 1800, Directed: true, Seed: 31, MaxW: 9, Labels: 8})

	dist, updates, err := Run(g, algorithms.NewSSSP(), ace.Query{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if updates == 0 {
		t.Fatal("no updates recorded")
	}
	for v, d := range algorithms.SeqSSSP(g, 0) {
		if dist[v] != d {
			t.Fatalf("sssp[%d] = %v, want %v", v, dist[v], d)
		}
	}

	colors, _, err := Run(g, algorithms.NewColor(), ace.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqColor(g) {
		if colors[v] != c {
			t.Fatalf("color[%d] = %d, want %d", v, colors[v], c)
		}
	}

	ranks, _, err := Run(g, algorithms.NewPageRank(), ace.Query{Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range algorithms.SeqPageRank(g, 1e-4) {
		if math.Abs(ranks[v]-r) > 0.02*(r+1) {
			t.Fatalf("pr[%d] = %v, want ~%v", v, ranks[v], r)
		}
	}

	gu := graph.PowerLaw(graph.GenConfig{N: 200, M: 1400, Directed: false, Seed: 32})
	core, _, err := Run(gu, algorithms.NewCore(), ace.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqCore(gu) {
		if core[v] != c {
			t.Fatalf("core[%d] = %d, want %d", v, core[v], c)
		}
	}

	pat := algorithms.RandomPattern(g, 4, 5, 5)
	sim, _, err := Run(g, algorithms.NewSim(), ace.Query{Pattern: pat})
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range algorithms.SeqSim(g, pat) {
		if sim[v] != m {
			t.Fatalf("sim[%d] = %b, want %b", v, sim[v], m)
		}
	}
}

func TestVerifyPasses(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 250, M: 1500, Directed: true, Seed: 33, MaxW: 7})
	frags, err := partition.Partition(g, partition.Hash{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = Verify(g, frags, algorithms.NewSSSP(), ace.Query{Source: 0},
		gap.Config{Mode: gap.ModeGAP},
		func(a, b float64) bool { return a == b })
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	g := graph.Chain(6, true)
	frags, err := partition.Partition(g, partition.Hash{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = Verify(g, frags, algorithms.NewSSSP(), ace.Query{Source: 0},
		gap.Config{Mode: gap.ModeGAP},
		func(a, b float64) bool { return false }) // everything "differs"
	if err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	prio := []float64{5, 1, 3, 2, 4}
	q := newPQ(5, func(l uint32) float64 { return prio[l] })
	for i := 0; i < 5; i++ {
		q.push(uint32(i))
	}
	want := []uint32{1, 3, 2, 4, 0}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
	if !q.empty() {
		t.Fatal("queue should be empty")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue(4)
	q.push(2)
	q.push(0)
	q.push(2) // duplicate ignored
	if q.pop() != 2 || q.pop() != 0 || !q.empty() {
		t.Fatal("fifo order wrong")
	}
}
