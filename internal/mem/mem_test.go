package mem

import (
	"bytes"
	"os"
	"sync"
	"testing"
)

func TestNilGovernorIsSafe(t *testing.T) {
	var g *Governor
	if g.Budget() != 0 || g.Used() != 0 || g.Peak() != 0 {
		t.Fatal("nil governor should report zeros")
	}
	if g.Stage() != StageOK {
		t.Fatal("nil governor should stay StageOK")
	}
	a := g.Account("log")
	a.Add(1 << 20) // must not panic
	if a.Used() != 0 {
		t.Fatal("nil account should report zero")
	}
	g.SetExternal(1 << 30)
	g.NoteSpill(42)
	if g.SpilledBytes() != 0 || g.SpillWritten() != 0 {
		t.Fatal("nil governor spill counters should be zero")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingAndPeak(t *testing.T) {
	g := NewGovernor(1000, t.TempDir())
	a := g.Account("log")
	b := g.Account("pool")
	a.Add(300)
	b.Add(400)
	if got := g.Used(); got != 700 {
		t.Fatalf("Used = %d, want 700", got)
	}
	a.Add(-300)
	if got := g.Used(); got != 400 {
		t.Fatalf("Used = %d after release, want 400", got)
	}
	if got := g.Peak(); got != 700 {
		t.Fatalf("Peak = %d, want 700", got)
	}
	if g.Account("log") != a {
		t.Fatal("Account must return the same instance per name")
	}
}

func TestStageLadder(t *testing.T) {
	g := NewGovernor(1000, t.TempDir())
	a := g.Account("x")
	cases := []struct {
		used int64
		want Stage
	}{
		{0, StageOK},
		{699, StageOK},
		{700, StageCkpt},
		{849, StageCkpt},
		{850, StageThrottle},
		{999, StageThrottle},
		{1000, StageStream},
		{5000, StageStream},
	}
	prev := int64(0)
	for _, c := range cases {
		a.Add(c.used - prev)
		prev = c.used
		if got := g.Stage(); got != c.want {
			t.Fatalf("Stage at used=%d = %v, want %v", c.used, got, c.want)
		}
	}
}

func TestUnboundedNeverEscalates(t *testing.T) {
	g := NewGovernor(0, t.TempDir())
	g.Account("x").Add(1 << 40)
	if g.Stage() != StageOK {
		t.Fatal("unbounded governor must stay StageOK")
	}
	if g.Peak() != 1<<40 {
		t.Fatalf("Peak = %d, want %d (unbounded still measures)", g.Peak(), int64(1)<<40)
	}
}

func TestExternalPressure(t *testing.T) {
	g := NewGovernor(1000, t.TempDir())
	g.Account("x").Add(500)
	if g.Stage() != StageOK {
		t.Fatal("want StageOK at 50%")
	}
	g.SetExternal(400)
	if got := g.Used(); got != 900 {
		t.Fatalf("Used = %d with external, want 900", got)
	}
	if g.Stage() != StageThrottle {
		t.Fatalf("Stage = %v at 90%%, want throttle", g.Stage())
	}
	g.SetExternal(0)
	if g.Stage() != StageOK {
		t.Fatal("external release should drop back to StageOK")
	}
	if g.Peak() != 900 {
		t.Fatalf("Peak = %d, want 900", g.Peak())
	}
}

func TestSpillerRoundTrip(t *testing.T) {
	g := NewGovernor(1000, t.TempDir())
	sp, err := g.NewSpiller("test")
	if err != nil {
		t.Fatal(err)
	}
	r1 := []byte("first record")
	r2 := bytes.Repeat([]byte{0xAB}, 1024)
	o1, err := sp.Append(r1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := sp.Append(r2)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != 0 || o2 != int64(len(r1)) {
		t.Fatalf("offsets (%d, %d), want (0, %d)", o1, o2, len(r1))
	}
	got1 := make([]byte, len(r1))
	got2 := make([]byte, len(r2))
	if err := sp.ReadAt(got2, o2); err != nil {
		t.Fatal(err)
	}
	if err := sp.ReadAt(got1, o1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, r1) || !bytes.Equal(got2, r2) {
		t.Fatal("spill round-trip mismatch")
	}
	wantLive := int64(len(r1) + len(r2))
	if g.SpilledBytes() != wantLive || g.SpillWritten() != wantLive {
		t.Fatalf("spill counters live=%d written=%d, want %d", g.SpilledBytes(), g.SpillWritten(), wantLive)
	}
	sp.Release(int64(len(r1)))
	if g.SpilledBytes() != int64(len(r2)) {
		t.Fatalf("SpilledBytes = %d after release, want %d", g.SpilledBytes(), len(r2))
	}
	if g.SpillWritten() != wantLive {
		t.Fatal("SpillWritten must be cumulative")
	}
	path := sp.Path()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Append([]byte("x")); err == nil {
		t.Fatal("append after close should fail")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("spill file should be removed on close")
	}
}

func TestSpillerConcurrent(t *testing.T) {
	g := NewGovernor(0, t.TempDir())
	sp, err := g.NewSpiller("conc")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	const writers, records = 8, 64
	type rec struct {
		off int64
		val byte
	}
	var mu sync.Mutex
	var recs []rec
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < records; i++ {
				val := byte(w*records + i)
				off, err := sp.Append(bytes.Repeat([]byte{val}, 32))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				recs = append(recs, rec{off, val})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	buf := make([]byte, 32)
	for _, r := range recs {
		if err := sp.ReadAt(buf, r.off); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != r.val {
				t.Fatalf("record at %d corrupted: got %d want %d", r.off, b, r.val)
			}
		}
	}
	if sp.Size() != int64(writers*records*32) {
		t.Fatalf("Size = %d, want %d", sp.Size(), writers*records*32)
	}
}
