package mem

import (
	"errors"
	"testing"
)

// TestPoolHold: commitment-only reservations compete with tenant slices for
// the same budget but never mint a governor.
func TestPoolHold(t *testing.T) {
	p := NewPool(100, t.TempDir())

	release, err := p.Hold(40)
	if err != nil {
		t.Fatalf("Hold(40): %v", err)
	}
	if p.Committed() != 40 {
		t.Fatalf("committed %d after hold, want 40", p.Committed())
	}
	// A tenant slice that no longer fits is refused — the hold really
	// competes for the budget.
	if _, _, err := p.Acquire(70); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Acquire(70) under a 40-byte hold: %v", err)
	}
	// And an over-budget hold is refused the same way.
	if _, err := p.Hold(61); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Hold(61) under a 40-byte hold: %v", err)
	}
	release()
	release() // idempotent
	if p.Committed() != 0 {
		t.Fatalf("committed %d after release, want 0", p.Committed())
	}
	if _, err := p.Hold(0); err == nil {
		t.Fatal("Hold(0) accepted on a bounded pool")
	}

	// Holds are commitments, not lifetime slices: the acquire/release
	// counters used by drain accounting must not move.
	a, r := p.Lifetime()
	if a != 0 || r != 0 {
		t.Fatalf("lifetime counters moved on holds: acquired=%d released=%d", a, r)
	}

	// Unbounded pools: every hold succeeds and reserves nothing.
	u := NewPool(0, "")
	rel, err := u.Hold(1 << 40)
	if err != nil {
		t.Fatalf("unbounded Hold: %v", err)
	}
	rel()
	var nilPool *Pool
	if rel, err := nilPool.Hold(10); err != nil {
		t.Fatalf("nil pool Hold: %v", err)
	} else {
		rel()
	}
}
