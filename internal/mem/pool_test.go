package mem

import (
	"errors"
	"testing"
)

func TestPoolAcquireAndRelease(t *testing.T) {
	p := NewPool(100, t.TempDir())
	gov, release, err := p.Acquire(60)
	if err != nil || gov == nil {
		t.Fatalf("acquire: %v", err)
	}
	if p.Committed() != 60 || p.Available() != 40 {
		t.Fatalf("committed %d available %d", p.Committed(), p.Available())
	}
	// The governor's budget is the slice, not the pool total: 70 bytes on a
	// 60-byte slice escalates, so the job degrades inside its own lane.
	acct := gov.Account("test")
	acct.Add(70)
	if gov.Stage() == StageOK {
		t.Fatal("over-slice usage should escalate the slice governor")
	}
	acct.Add(-70)

	// A second slice that does not fit sheds with ErrPoolExhausted.
	if _, _, err := p.Acquire(50); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
	// Release is idempotent and returns the slice exactly once.
	release()
	release()
	if p.Committed() != 0 {
		t.Fatalf("committed after double release: %d", p.Committed())
	}
	if _, release2, err := p.Acquire(100); err != nil {
		t.Fatalf("re-acquire after release: %v", err)
	} else {
		release2()
	}
}

func TestPoolRejectsNonPositiveSlice(t *testing.T) {
	p := NewPool(100, t.TempDir())
	if _, _, err := p.Acquire(0); err == nil {
		t.Fatal("zero slice on a bounded pool must error, not bypass governance")
	}
	if _, _, err := p.Acquire(-5); err == nil {
		t.Fatal("negative slice must error")
	}
}

func TestPoolUnbounded(t *testing.T) {
	p := NewPool(0, t.TempDir())
	gov, release, err := p.Acquire(1 << 40)
	if err != nil {
		t.Fatalf("unbounded acquire: %v", err)
	}
	defer release()
	gov.Account("test").Add(1 << 30)
	if gov.Stage() != StageOK {
		t.Fatal("unbounded slice governor must never escalate")
	}
	if p.Committed() != 0 || p.Total() != 0 {
		t.Fatalf("unbounded pool tracks commitments: %d/%d", p.Committed(), p.Total())
	}
}

func TestNilPoolIsUnbounded(t *testing.T) {
	var p *Pool
	gov, release, err := p.Acquire(123)
	if err != nil || gov == nil {
		t.Fatalf("nil pool acquire: %v", err)
	}
	release()
	if p.Total() != 0 || p.Committed() != 0 || p.Available() != 0 {
		t.Fatal("nil pool accessors must be safe zeros")
	}
}

func TestPoolCommitmentsNotUsage(t *testing.T) {
	// Admission stability: commitments are charged from Acquire to release
	// regardless of what the governor actually accounts.
	p := NewPool(100, t.TempDir())
	gov, release, err := p.Acquire(80)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Zero live usage, yet the slice stays reserved.
	if gov.Used() != 0 {
		t.Fatalf("used = %d", gov.Used())
	}
	if _, _, err := p.Acquire(30); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("idle slice must still block neighbors, got %v", err)
	}
}
