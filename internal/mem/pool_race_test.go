package mem

import (
	"sync"
	"testing"
)

// TestPoolReleaseRace hammers every slice's release func from many
// goroutines at once: the refund must land exactly once per slice (no
// committed-balance underflow, no double refund inflating the budget), and a
// fully drained pool must account acquired == released with zero committed.
// Run under -race this also proves the release path itself is data-race free
// against concurrent Acquire/Committed traffic.
func TestPoolReleaseRace(t *testing.T) {
	const (
		slices    = 16
		slice     = 64
		releasers = 8
	)
	p := NewPool(slices*slice, t.TempDir())

	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		releases := make([]func(), slices)
		for i := range releases {
			_, rel, err := p.Acquire(slice)
			if err != nil {
				t.Fatalf("round %d acquire %d: %v", round, i, err)
			}
			releases[i] = rel
		}
		if got := p.Committed(); got != slices*slice {
			t.Fatalf("round %d committed %d, want %d", round, got, slices*slice)
		}
		for _, rel := range releases {
			for r := 0; r < releasers; r++ {
				wg.Add(1)
				go func(rel func()) {
					defer wg.Done()
					rel()
				}(rel)
			}
			// Concurrent readers race the refunds; committed must only ever
			// be a sum of whole outstanding slices, never a partial refund.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if c := p.Committed(); c < 0 || c > slices*slice || c%slice != 0 {
					t.Errorf("torn committed balance: %d", c)
				}
			}()
		}
		wg.Wait()
		if got := p.Committed(); got != 0 {
			t.Fatalf("round %d drained pool committed %d", round, got)
		}
		if a, r := p.Lifetime(); a != r || a != int64((round+1)*slices) {
			t.Fatalf("round %d lifetime acquired %d released %d", round, a, r)
		}
	}
	// The whole budget is reusable after the storm — nothing leaked, nothing
	// was refunded twice.
	if _, rel, err := p.Acquire(slices * slice); err != nil {
		t.Fatalf("full re-acquire after race: %v", err)
	} else {
		rel()
	}
}

// TestPoolUnboundedReleaseRace covers the unbounded pool's release closure,
// which guards the governor Close the same way.
func TestPoolUnboundedReleaseRace(t *testing.T) {
	p := NewPool(0, t.TempDir())
	_, rel, err := p.Acquire(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); rel() }()
	}
	wg.Wait()
	if a, r := p.Lifetime(); a != 0 || r != 0 {
		t.Fatalf("unbounded pool tracked lifetime %d/%d", a, r)
	}
}
