package mem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrPoolExhausted is returned by Pool.Acquire when the requested slice does
// not fit in the pool's uncommitted budget.
var ErrPoolExhausted = errors.New("mem: pool exhausted")

// Pool partitions one process-wide byte budget across concurrent runs: each
// Acquire carves out a slice and hands back a fresh Governor budgeted to it,
// so one job degrading under pressure (spilling, throttling) cannot consume
// a neighbor's headroom. A Pool with total <= 0 is unbounded: every Acquire
// succeeds with an unbounded (measure-only) governor.
//
// The pool tracks commitments, not live usage — a slice is charged from
// Acquire until its release func runs, whatever the governor actually
// accounts. That makes admission decisions stable: a job's budget cannot be
// stolen mid-run by a burst of neighbors.
type Pool struct {
	total int64
	dir   string

	mu        sync.Mutex
	committed int64
	acquired  int64 // lifetime counts, for diagnostics
	released  int64
}

// NewPool builds a pool over total bytes (<= 0 = unbounded) with spill files
// created under dir ("" resolves to the OS temp dir per governor).
func NewPool(total int64, dir string) *Pool {
	return &Pool{total: total, dir: dir}
}

// Total returns the pool's budget (<= 0 = unbounded).
func (p *Pool) Total() int64 {
	if p == nil {
		return 0
	}
	return p.total
}

// Committed returns the bytes currently reserved by live slices.
func (p *Pool) Committed() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed
}

// Available returns the uncommitted budget (0 for unbounded pools, whose
// capacity is not meaningfully finite).
func (p *Pool) Available() int64 {
	if p == nil || p.total <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total - p.committed
}

// Acquire reserves want bytes and returns a fresh Governor budgeted to the
// slice plus a release func that returns the slice to the pool (closing the
// governor's spill files). Release is idempotent. On an unbounded pool the
// governor is unbounded too and nothing is reserved. A want <= 0 on a
// bounded pool is an error — a zero-budget governor would never escalate,
// silently exempting the job from governance.
func (p *Pool) Acquire(want int64) (*Governor, func(), error) {
	if p == nil || p.total <= 0 {
		gov := NewGovernor(0, p.poolDir())
		var once sync.Once
		return gov, func() { once.Do(func() { gov.Close() }) }, nil
	}
	if want <= 0 {
		return nil, nil, fmt.Errorf("mem: pool slice must be positive, got %d", want)
	}
	p.mu.Lock()
	if p.committed+want > p.total {
		free := p.total - p.committed
		p.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: want %d, %d free of %d", ErrPoolExhausted, want, free, p.total)
	}
	p.committed += want
	p.acquired++
	p.mu.Unlock()

	gov := NewGovernor(want, p.dir)
	var once sync.Once
	release := func() {
		// once makes concurrent and repeated releases of one slice count
		// exactly once; the lock orders the refund against other slices. A
		// negative balance is impossible through this path — if it shows up
		// anyway, something returned bytes it never reserved, which must
		// surface immediately rather than inflate the budget silently.
		once.Do(func() {
			gov.Close()
			p.mu.Lock()
			p.committed -= want
			p.released++
			if p.committed < 0 {
				p.mu.Unlock()
				panic(fmt.Sprintf("mem: pool committed balance underflowed to %d releasing %d bytes", p.committed, want))
			}
			p.mu.Unlock()
		})
	}
	return gov, release, nil
}

// Hold reserves want bytes of the pool's budget without carving a governor
// slice: the commitment-only form for short-lived maintenance work — the
// durable layer's warm-fixpoint snapshot encoder — that must compete with
// tenant slices for the budget instead of stacking on top of it. When the
// budget cannot cover the hold, ErrPoolExhausted comes back and the caller
// defers its work rather than overcommitting. The returned release func is
// idempotent. On an unbounded pool nothing is reserved and Hold always
// succeeds.
func (p *Pool) Hold(want int64) (func(), error) {
	if p == nil || p.total <= 0 {
		return func() {}, nil
	}
	if want <= 0 {
		return nil, fmt.Errorf("mem: pool hold must be positive, got %d", want)
	}
	p.mu.Lock()
	if p.committed+want > p.total {
		free := p.total - p.committed
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: hold %d, %d free of %d", ErrPoolExhausted, want, free, p.total)
	}
	p.committed += want
	p.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.committed -= want
			if p.committed < 0 {
				p.mu.Unlock()
				panic(fmt.Sprintf("mem: pool committed balance underflowed to %d releasing a %d-byte hold", p.committed, want))
			}
			p.mu.Unlock()
		})
	}, nil
}

// Lifetime reports the pool's cumulative acquire/release counts: every
// successfully acquired slice must eventually be released exactly once, so a
// drained pool has acquired == released and Committed() == 0.
func (p *Pool) Lifetime() (acquired, released int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquired, p.released
}

func (p *Pool) poolDir() string {
	if p == nil {
		return ""
	}
	return p.dir
}
