// Package mem is the memory governor of the GAP runtime: a budget-tracked
// accounting layer that the live driver's recovery logs, local checkpoints,
// batch pool, reorder buffers and fragment edge payloads register with, plus
// an append-only spill tier that pages cold state to disk when the in-RAM
// budget is exceeded.
//
// The governor never allocates or frees memory itself — components report
// what they hold via Account.Add and consult Stage() to decide how hard to
// shed. Pressure escalates through a graceful-degradation ladder:
//
//	StageOK       usage <  70% of budget: run normally
//	StageCkpt     usage >= 70%: page recovery logs / checkpoints to the
//	              spill tier and force an early checkpoint on the slowest
//	              receiver (bounding log retention in bytes)
//	StageThrottle usage >= 85%: apply backpressure to senders through the
//	              pooled-batch pipeline and trim the batch free list
//	StageStream   usage >= 100%: stream fragment edge partitions from disk
//	              rather than aborting — slower, never dead
//
// A zero (or negative) budget disables the ladder: Stage is always StageOK
// and the governor only measures, which is how the unbounded-run peak for
// the `arganbench -exp memory` degradation curve is obtained. All methods
// are safe on a nil *Governor (no-ops / zero values), mirroring the
// nil-Tracer discipline of internal/obs: the drivers' default path carries
// one nil check per accounting site and nothing else.
package mem

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Stage is a rung of the degradation ladder; higher is more desperate.
type Stage int32

const (
	StageOK Stage = iota
	StageCkpt
	StageThrottle
	StageStream
)

func (s Stage) String() string {
	switch s {
	case StageOK:
		return "ok"
	case StageCkpt:
		return "ckpt"
	case StageThrottle:
		return "throttle"
	case StageStream:
		return "stream"
	}
	return "stage?"
}

// Ladder thresholds as fractions of the budget.
const (
	ckptFrac     = 0.70
	throttleFrac = 0.85
	streamFrac   = 1.00
)

// Governor tracks a byte budget shared by named accounts. Attach one fresh
// Governor per run; accounts persist for its lifetime.
type Governor struct {
	budget int64
	dir    string

	used     atomic.Int64 // sum over accounts
	peak     atomic.Int64 // high-water mark of used+external
	external atomic.Int64 // injected synthetic pressure (fault plans)

	spillLive    atomic.Int64 // bytes resident on disk and still referenced
	spillWritten atomic.Int64 // cumulative bytes ever written to the tier

	mu       sync.Mutex
	accounts map[string]*Account
	spillers []*Spiller
}

// NewGovernor builds a governor with the given budget in bytes (<= 0 means
// unbounded: measure only, never escalate) and the directory spill files are
// created in ("" resolves to os.TempDir()).
func NewGovernor(budget int64, dir string) *Governor {
	if dir == "" {
		dir = os.TempDir()
	}
	return &Governor{budget: budget, dir: dir, accounts: map[string]*Account{}}
}

// Budget returns the configured budget in bytes (<= 0 = unbounded).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// SpillDir returns the directory spill files live in.
func (g *Governor) SpillDir() string {
	if g == nil {
		return ""
	}
	return g.dir
}

// Account returns the named account, creating it on first use.
func (g *Governor) Account(name string) *Account {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.accounts[name]
	if a == nil {
		a = &Account{g: g, name: name}
		g.accounts[name] = a
	}
	return a
}

// Used returns the governed bytes currently accounted in RAM, including any
// injected synthetic pressure.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load() + g.external.Load()
}

// Peak returns the high-water mark of Used over the governor's lifetime.
func (g *Governor) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Stage maps current usage to the degradation ladder. Unbounded governors
// never leave StageOK.
func (g *Governor) Stage() Stage {
	if g == nil || g.budget <= 0 {
		return StageOK
	}
	u := float64(g.Used())
	b := float64(g.budget)
	switch {
	case u >= streamFrac*b:
		return StageStream
	case u >= throttleFrac*b:
		return StageThrottle
	case u >= ckptFrac*b:
		return StageCkpt
	}
	return StageOK
}

// SetExternal overrides the injected synthetic usage (memory-pressure fault
// injection). The value is absolute, not a delta.
func (g *Governor) SetExternal(n int64) {
	if g == nil {
		return
	}
	g.external.Store(n)
	g.bumpPeak()
}

// NoteSpill adjusts the governor's count of bytes resident on disk (positive
// when state pages out, negative when it is released or read back). Spillers
// call it automatically; components paging through their own files (fragment
// edge partitions) call it directly.
func (g *Governor) NoteSpill(delta int64) {
	if g == nil {
		return
	}
	g.spillLive.Add(delta)
	if delta > 0 {
		g.spillWritten.Add(delta)
	}
}

// SpilledBytes returns the bytes currently resident on disk.
func (g *Governor) SpilledBytes() int64 {
	if g == nil {
		return 0
	}
	return g.spillLive.Load()
}

// SpillWritten returns the cumulative bytes ever written to the spill tier.
func (g *Governor) SpillWritten() int64 {
	if g == nil {
		return 0
	}
	return g.spillWritten.Load()
}

// Breakdown renders the per-account usage sorted by name, for diagnostics.
func (g *Governor) Breakdown() string {
	if g == nil {
		return ""
	}
	g.mu.Lock()
	names := make([]string, 0, len(g.accounts))
	for n := range g.accounts {
		names = append(names, n)
	}
	sort.Strings(names)
	accts := make([]*Account, len(names))
	for i, n := range names {
		accts[i] = g.accounts[n]
	}
	g.mu.Unlock()
	s := ""
	for i, a := range accts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", a.name, a.Used())
	}
	return s
}

// Close closes and removes every spill file the governor opened. Call after
// the run that used the governor has finished.
func (g *Governor) Close() error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	sps := g.spillers
	g.spillers = nil
	g.mu.Unlock()
	var first error
	for _, sp := range sps {
		if err := sp.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (g *Governor) add(n int64) {
	g.used.Add(n)
	if n > 0 {
		g.bumpPeak()
	}
}

func (g *Governor) bumpPeak() {
	u := g.used.Load() + g.external.Load()
	for {
		p := g.peak.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// Account is one component's byte counter within a governor. All methods are
// safe on a nil *Account (the unbounded / ungoverned case).
type Account struct {
	g    *Governor
	name string
	used atomic.Int64
}

// Add adjusts the account by n bytes (negative to release).
func (a *Account) Add(n int64) {
	if a == nil || n == 0 {
		return
	}
	a.used.Add(n)
	a.g.add(n)
}

// Used returns the account's current bytes.
func (a *Account) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Name returns the account's name.
func (a *Account) Name() string {
	if a == nil {
		return ""
	}
	return a.name
}
