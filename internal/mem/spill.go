package mem

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Spiller is one append-only spill file within a governor's spill tier.
// Records are opaque byte blobs addressed by the offset Append returned;
// there is no in-file index — callers keep the (offset, length) pair, which
// is exactly what the spilled loggedBatch / checkpoint headers do. Appends
// are serialized; ReadAt is safe concurrently with appends because records
// are immutable once written.
type Spiller struct {
	g    *Governor
	path string

	mu   sync.Mutex
	f    *os.File
	size int64
}

// NewSpiller creates a fresh spill file in the governor's spill directory.
// The name is a prefix only; an O_EXCL temp suffix keeps concurrent runs
// from colliding.
func (g *Governor) NewSpiller(name string) (*Spiller, error) {
	if g == nil {
		return nil, fmt.Errorf("mem: no governor attached")
	}
	f, err := os.CreateTemp(g.dir, "argan-spill-"+name+"-*.bin")
	if err != nil {
		return nil, fmt.Errorf("mem: create spill file: %w", err)
	}
	sp := &Spiller{g: g, path: f.Name(), f: f}
	g.mu.Lock()
	g.spillers = append(g.spillers, sp)
	g.mu.Unlock()
	return sp, nil
}

// Path returns the spill file's path.
func (sp *Spiller) Path() string {
	if sp == nil {
		return ""
	}
	return sp.path
}

// Append writes one record and returns its offset. The governor's spill
// counters grow by len(p).
func (sp *Spiller) Append(p []byte) (int64, error) {
	if sp == nil {
		return 0, fmt.Errorf("mem: nil spiller")
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.f == nil {
		return 0, fmt.Errorf("mem: spiller %s is closed", filepath.Base(sp.path))
	}
	off := sp.size
	if _, err := sp.f.WriteAt(p, off); err != nil {
		return 0, fmt.Errorf("mem: spill append: %w", err)
	}
	sp.size += int64(len(p))
	sp.g.NoteSpill(int64(len(p)))
	return off, nil
}

// ReadAt fills p with the record at off. Safe concurrently with Append.
func (sp *Spiller) ReadAt(p []byte, off int64) error {
	if sp == nil {
		return fmt.Errorf("mem: nil spiller")
	}
	sp.mu.Lock()
	f := sp.f
	sp.mu.Unlock()
	if f == nil {
		return fmt.Errorf("mem: spiller %s is closed", filepath.Base(sp.path))
	}
	if _, err := f.ReadAt(p, off); err != nil {
		return fmt.Errorf("mem: spill read at %d: %w", off, err)
	}
	return nil
}

// Release tells the governor n bytes of previously appended records are no
// longer referenced (pruned log entries, superseded checkpoints). The file
// itself is append-only — space is reclaimed when the spiller closes.
func (sp *Spiller) Release(n int64) {
	if sp == nil || n == 0 {
		return
	}
	sp.g.NoteSpill(-n)
}

// Size returns the bytes written so far.
func (sp *Spiller) Size() int64 {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.size
}

// Close closes and removes the spill file. Idempotent.
func (sp *Spiller) Close() error {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.f == nil {
		return nil
	}
	err := sp.f.Close()
	sp.f = nil
	if rmErr := os.Remove(sp.path); err == nil {
		err = rmErr
	}
	return err
}
