package obs

import "sync"

// EventKind discriminates recorded events.
type EventKind uint8

const (
	KindSpanBegin EventKind = iota
	KindSpanEnd
	KindCounter
	KindGauge
	KindMark
)

// Event is one recorded trace event. Code is the Phase/Counter/Gauge/Mark
// constant selected by Kind; Value carries the counter delta or gauge
// sample.
type Event struct {
	T      float64
	Worker int32
	Kind   EventKind
	Code   uint8
	Value  float64
}

// shard is one worker's ring buffer plus its live status view. Each shard
// has its own lock so live-driver workers never contend with each other,
// only with an occasional Snapshot poll.
type shard struct {
	mu      sync.Mutex
	ring    []Event
	head    int // next write position
	n       int // valid events (≤ cap)
	dropped int64

	// Live status for Snapshot.
	t        float64
	depth    [numPhases]int // open-span depth per phase
	phase    Phase          // innermost open phase
	idle     bool
	counters [numCounters]int64
	gauges   [numGauges]float64
	gaugeOK  [numGauges]bool
}

// Recorder is a ring-buffered Tracer: it keeps the most recent events per
// worker (default 1<<17 each) and serves exporters and live snapshots.
// The zero value is not usable; call NewRecorder.
type Recorder struct {
	perWorker int

	mu     sync.RWMutex // guards growth of shards only
	shards []*shard
}

// DefaultEventsPerWorker is the per-worker ring capacity when NewRecorder
// is given a non-positive capacity (≈4 MB per worker at 32 B per event).
const DefaultEventsPerWorker = 1 << 17

// NewRecorder builds a recorder sized for the given worker count; workers
// beyond it are added lazily. eventsPerWorker bounds each worker's ring
// (oldest events are overwritten; Dropped reports how many).
func NewRecorder(workers, eventsPerWorker int) *Recorder {
	if eventsPerWorker <= 0 {
		eventsPerWorker = DefaultEventsPerWorker
	}
	r := &Recorder{perWorker: eventsPerWorker}
	if workers > 0 {
		r.shards = make([]*shard, workers)
		for i := range r.shards {
			r.shards[i] = &shard{ring: make([]Event, 0, eventsPerWorker)}
		}
	}
	return r
}

func (r *Recorder) shard(worker int) *shard {
	r.mu.RLock()
	if worker < len(r.shards) {
		s := r.shards[worker]
		r.mu.RUnlock()
		return s
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for worker >= len(r.shards) {
		r.shards = append(r.shards, &shard{ring: make([]Event, 0, r.perWorker)})
	}
	return r.shards[worker]
}

func (s *shard) push(e Event) {
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, e)
		s.n++
		s.head = len(s.ring) % cap(s.ring)
		return
	}
	s.ring[s.head] = e
	s.head = (s.head + 1) % cap(s.ring)
	if s.n < cap(s.ring) {
		s.n++
	} else {
		s.dropped++
	}
}

func (r *Recorder) record(worker int, e Event) *shard {
	s := r.shard(worker)
	s.mu.Lock()
	s.push(e)
	if e.T > s.t {
		s.t = e.T
	}
	return s // caller updates status view, then unlocks
}

// SpanBegin implements Tracer.
func (r *Recorder) SpanBegin(worker int, p Phase, t float64) {
	s := r.record(worker, Event{T: t, Worker: int32(worker), Kind: KindSpanBegin, Code: uint8(p)})
	s.depth[p]++
	s.phase = p
	s.idle = false
	s.mu.Unlock()
}

// SpanEnd implements Tracer.
func (r *Recorder) SpanEnd(worker int, p Phase, t float64) {
	s := r.record(worker, Event{T: t, Worker: int32(worker), Kind: KindSpanEnd, Code: uint8(p)})
	if s.depth[p] > 0 {
		s.depth[p]--
	}
	// Fall back to the outermost still-open phase for the status view.
	s.phase = PhaseLocalEval
	for q := numPhases - 1; q >= 0; q-- {
		if s.depth[q] > 0 {
			s.phase = Phase(q)
			break
		}
	}
	s.mu.Unlock()
}

// Count implements Tracer.
func (r *Recorder) Count(worker int, c Counter, t float64, delta int64) {
	s := r.record(worker, Event{T: t, Worker: int32(worker), Kind: KindCounter, Code: uint8(c), Value: float64(delta)})
	s.counters[c] += delta
	s.mu.Unlock()
}

// Sample implements Tracer.
func (r *Recorder) Sample(worker int, g Gauge, t float64, v float64) {
	s := r.record(worker, Event{T: t, Worker: int32(worker), Kind: KindGauge, Code: uint8(g), Value: v})
	s.gauges[g] = v
	s.gaugeOK[g] = true
	s.mu.Unlock()
}

// Mark implements Tracer.
func (r *Recorder) Mark(worker int, m Mark, t float64) {
	s := r.record(worker, Event{T: t, Worker: int32(worker), Kind: KindMark, Code: uint8(m)})
	switch m {
	case MarkIdle:
		s.idle = true
	case MarkBusy:
		s.idle = false
	}
	s.mu.Unlock()
}

var _ Tracer = (*Recorder)(nil)

// Workers returns the number of worker tracks seen so far.
func (r *Recorder) Workers() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (r *Recorder) Dropped() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var d int64
	for _, s := range r.shards {
		s.mu.Lock()
		d += s.dropped
		s.mu.Unlock()
	}
	return d
}

// DroppedOf returns one worker's ring-overwrite count.
func (r *Recorder) DroppedOf(worker int) int64 {
	r.mu.RLock()
	if worker >= len(r.shards) {
		r.mu.RUnlock()
		return 0
	}
	s := r.shards[worker]
	r.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Events returns one worker's retained events oldest-first.
func (r *Recorder) Events(worker int) []Event {
	r.mu.RLock()
	if worker >= len(r.shards) {
		r.mu.RUnlock()
		return nil
	}
	s := r.shards[worker]
	r.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += cap(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%cap(s.ring)])
	}
	return out
}

// WorkerStatus is one worker's live view for progress reporting.
type WorkerStatus struct {
	Worker int
	// T is the latest timestamp the worker has reported (virtual cost
	// units under the sim driver, wall µs under the live driver).
	T float64
	// Phase is the innermost open span.
	Phase Phase
	// Idle reports the worker's last status transition.
	Idle bool
	// Eta and Phi are the latest tuner gauges (NaN-free: ok flags below).
	Eta, Phi       float64
	HasEta, HasPhi bool
	// Active and Mailbox are the latest sampled queue depths.
	Active, Mailbox float64
	// Cumulative counters.
	Updates, MsgsSent, BytesSent, MsgsRecv, Flushes int64
	// Dropped is this worker's ring-buffer overwrite count: events beyond
	// the ring capacity silently evicted the oldest ones.
	Dropped int64
	// Counters holds every cumulative counter indexed by Counter code
	// (iterate with AllCounters); the named fields above are views into the
	// common ones.
	Counters []int64
	// Gauges holds the latest sample of every gauge indexed by Gauge code;
	// GaugeKnown reports whether the gauge was ever sampled.
	Gauges     []float64
	GaugeKnown []bool
}

// Status is a point-in-time view of a (possibly still running) traced run.
type Status struct {
	Workers []WorkerStatus
	Dropped int64
}

// Snapshot assembles the live status of every worker. It is safe to call
// concurrently with recording; each shard is locked briefly in turn, so the
// view is per-worker consistent (not globally atomic).
func (r *Recorder) Snapshot() Status {
	r.mu.RLock()
	shards := r.shards
	r.mu.RUnlock()
	st := Status{Workers: make([]WorkerStatus, len(shards))}
	for i, s := range shards {
		s.mu.Lock()
		w := &st.Workers[i]
		w.Worker = i
		w.T = s.t
		w.Phase = s.phase
		w.Idle = s.idle
		w.Eta, w.HasEta = s.gauges[GaugeEta], s.gaugeOK[GaugeEta]
		w.Phi, w.HasPhi = s.gauges[GaugePhi], s.gaugeOK[GaugePhi]
		w.Active = s.gauges[GaugeActive]
		w.Mailbox = s.gauges[GaugeMailbox]
		w.Updates = s.counters[CounterUpdates]
		w.MsgsSent = s.counters[CounterMsgsSent]
		w.BytesSent = s.counters[CounterBytesSent]
		w.MsgsRecv = s.counters[CounterMsgsRecv]
		w.Flushes = s.counters[CounterFlushes]
		w.Dropped = s.dropped
		w.Counters = append([]int64(nil), s.counters[:]...)
		w.Gauges = append([]float64(nil), s.gauges[:]...)
		w.GaugeKnown = append([]bool(nil), s.gaugeOK[:]...)
		st.Dropped += s.dropped
		s.mu.Unlock()
	}
	return st
}
