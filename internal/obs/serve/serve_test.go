package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"argan/internal/obs"
)

// testRecorder builds a small deterministic two-worker trace.
func testRecorder() *obs.Recorder {
	rec := obs.NewRecorder(2, 0)
	rec.SpanBegin(0, obs.PhaseLocalEval, 0)
	rec.Count(0, obs.CounterUpdates, 1, 5)
	rec.Sample(0, obs.GaugeEta, 2, 64)
	rec.Sample(1, obs.GaugeEta, 2, 16)
	rec.Sample(0, obs.GaugePhi, 3, 0.5)
	rec.Sample(1, obs.GaugePhi, 3, 0.25)
	rec.Count(1, obs.CounterMsgsSent, 4, 7)
	rec.Mark(1, obs.MarkIdle, 5)
	rec.SpanEnd(0, obs.PhaseLocalEval, 6)
	return rec
}

func testHealth() Health {
	return Health{
		Running: true, Workers: 2, Idle: 1,
		Recovery: "localized", MemStage: "ok",
		Sent: 9, Recv: 9, Updates: 12,
		ProgressAge: 50 * time.Millisecond, Watchdog: time.Second,
		UpdatedAt: time.Unix(0, 0),
	}
}

func testServer(t *testing.T) *Server {
	t.Helper()
	s := New()
	s.SetRecorder(testRecorder())
	s.SetHealth(func() Health { return testHealth() })
	s.SetRunInfo(map[string]string{"dataset": "hw", "algo": "pagerank", "bad key!": `quo"te`})
	if err := s.RegisterMetric(Metric{
		Name: "argan_soak_iterations_total", Help: "Soak iterations finished.", Type: "counter",
		Collect: func() []Sample { return []Sample{{Value: 3}} },
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWriteMetricsScrape is the golden scrape: the exposition must pass the
// strict lint, carry the expected series, and be byte-identical across
// scrapes of an idle recorder.
func TestWriteMetricsScrape(t *testing.T) {
	s := testServer(t)
	var a, b bytes.Buffer
	if err := s.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two scrapes of an idle recorder differ")
	}
	if err := Lint(bytes.NewReader(a.Bytes())); err != nil {
		t.Fatalf("self-lint failed: %v", err)
	}
	for _, want := range []string{
		`argan_updates_total{worker="0"} 5`,
		`argan_updates_total{worker="1"} 0`,
		`argan_msgs_sent_total{worker="1"} 7`,
		`argan_eta{worker="0"} 64`,
		`argan_eta{worker="1"} 16`,
		`argan_eta_spread 48`,
		`argan_phi_spread 0.25`,
		`argan_worker_idle{worker="1"} 1`,
		`argan_dropped_events_total{worker="0"} 0`,
		`argan_run_running 1`,
		`argan_run_workers 2`,
		`argan_run_info{mem_stage="ok",recovery="localized"} 1`,
		`argan_run_config{algo="pagerank",bad_key_="quo\"te",dataset="hw"} 1`,
		`argan_soak_iterations_total 3`,
		`# TYPE argan_updates_total counter`,
		`# TYPE argan_eta gauge`,
	} {
		if !strings.Contains(a.String(), want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestParseSamplesRoundTrip(t *testing.T) {
	s := testServer(t)
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m[`argan_updates_total{worker="0"}`]; got != 5 {
		t.Fatalf("updates[0] = %v, want 5", got)
	}
	if got := m[`argan_eta_spread`]; got != 48 {
		t.Fatalf("eta_spread = %v, want 48", got)
	}
}

// TestLintRejects feeds the lint known-bad documents.
func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":   "argan_x_total 1\n",
		"counter sans _total":  "# TYPE argan_x counter\nargan_x 1\n",
		"duplicate series":     "# TYPE a gauge\na{w=\"0\"} 1\na{w=\"0\"} 2\n",
		"dup reordered labels": "# TYPE a gauge\na{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n",
		"bad metric name":      "# TYPE a gauge\n0bad 1\n",
		"bad label name":       "# TYPE a gauge\na{0x=\"v\"} 1\n",
		"bad value":            "# TYPE a gauge\na one\n",
		"unterminated labels":  "# TYPE a gauge\na{x=\"v\" 1\n",
		"bad escape":           "# TYPE a gauge\na{x=\"\\q\"} 1\n",
		"second TYPE":          "# TYPE a gauge\n# TYPE a gauge\na 1\n",
		"interleaved family":   "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na{w=\"1\"} 2\n",
		"unknown type":         "# TYPE a foo\na 1\n",
	}
	for name, doc := range cases {
		if err := Lint(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: lint accepted %q", name, doc)
		}
	}
	good := "# HELP a Fine.\n# TYPE a gauge\na{x=\"quo\\\"te\"} +Inf\na 1e-3 1700000000\n"
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected valid doc: %v", err)
	}
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestEndpoints(t *testing.T) {
	s := testServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", s.Addr(), addr)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}
	if err := Lint(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics lint: %v", err)
	}

	code, body, hdr = get(t, base+"/status")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/status: %d %q", code, hdr.Get("Content-Type"))
	}
	var doc struct {
		Health  *Health `json:"health"`
		Workers []struct {
			Worker   int              `json:"worker"`
			Phase    string           `json:"phase"`
			Counters map[string]int64 `json:"counters"`
		} `json:"workers"`
		Run map[string]string `json:"run"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if len(doc.Workers) != 2 || doc.Workers[0].Counters["updates"] != 5 {
		t.Fatalf("/status workers wrong: %+v", doc.Workers)
	}
	if doc.Health == nil || doc.Health.Workers != 2 || doc.Run["dataset"] != "hw" {
		t.Fatalf("/status health/run wrong: %s", body)
	}

	if code, _, _ = get(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz: %d", code)
	}
	if code, _, _ = get(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz: %d", code)
	}
	if code, _, _ = get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	// Wedged run: watchdog blown → liveness fails; unrecoverable → both fail.
	s.SetHealth(func() Health {
		h := testHealth()
		h.ProgressAge = 2 * time.Second
		return h
	})
	if code, body, _ = get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz stuck run: %d %q", code, body)
	}
	s.SetHealth(func() Health {
		h := testHealth()
		h.Unrecoverable = true
		return h
	})
	if code, _, _ = get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz unrecoverable: %d", code)
	}

	// Detached plane: live but not ready.
	s.SetHealth(nil)
	if code, _, _ = get(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz detached: %d", code)
	}
	if code, _, _ = get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz detached: %d", code)
	}
}

func TestRegisterMetricValidation(t *testing.T) {
	s := New()
	collect := func() []Sample { return nil }
	for _, m := range []Metric{
		{Name: "0bad", Type: "gauge", Collect: collect},
		{Name: "a_count", Type: "counter", Collect: collect},
		{Name: "a", Type: "histogram", Collect: collect},
		{Name: "a", Type: "gauge"},
	} {
		if err := s.RegisterMetric(m); err == nil {
			t.Errorf("RegisterMetric(%+v) accepted", m)
		}
	}
	ok := Metric{Name: "a", Type: "gauge", Collect: collect}
	if err := s.RegisterMetric(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterMetric(ok); err == nil {
		t.Error("duplicate registration accepted")
	}
}
