package serve

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"argan/internal/obs"
)

// Prometheus text exposition (format 0.0.4) of a recorder snapshot.
//
// Naming scheme: every obs.Counter becomes argan_<counter>_total with a
// worker label; every obs.Gauge becomes argan_<gauge> (emitted only once
// sampled). Derived families — ring drops, η/φ spread, worker idleness —
// and the control-plane argan_run_* families ride alongside. Output is
// deterministic: families sort by name, samples keep worker/insertion
// order, floats render in shortest round-trip form.

type promSample struct {
	labels string // rendered `{k="v",...}` or ""
	value  float64
}

type family struct {
	name, help, typ string
	samples         []promSample
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel renders a label value per the exposition rules.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp renders HELP text (only \ and newline are escaped there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func workerLabel(i int) string { return `{worker="` + strconv.Itoa(i) + `"}` }

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

var counterHelp = map[obs.Counter]string{
	obs.CounterUpdates:     "Update-function (f_xv) invocations.",
	obs.CounterMsgsSent:    "Messages shipped to peers.",
	obs.CounterBytesSent:   "Bytes shipped to peers.",
	obs.CounterMsgsRecv:    "Messages ingested from the incoming buffer.",
	obs.CounterFlushes:     "h_out batches flushed.",
	obs.CounterReplayed:    "Logged batches re-delivered by localized recovery.",
	obs.CounterRetransmits: "Dropped batches redelivered by the retransmit path.",
	obs.CounterForcedCkpts: "Checkpoints forced by retention or memory pressure.",
	obs.CounterEtaReseeds:  "Post-recovery granularity reseeds.",
}

var gaugeHelp = map[obs.Gauge]string{
	obs.GaugeEta:        "Granularity bound eta_i after the last adjustment.",
	obs.GaugePhi:        "Estimated computation effectiveness phi_i(eta).",
	obs.GaugeActive:     "Active-set size |H_i|.",
	obs.GaugeMailbox:    "Incoming-buffer depth.",
	obs.GaugeTwEst:      "Tuner-estimated staleness T_w.",
	obs.GaugeTwReal:     "Ground-truth staleness T_w (instrumented runs only).",
	obs.GaugeCandidates: "Granularity sweep candidates scanned.",
	obs.GaugeLogSize:    "Batches retained in the sender-side message log.",
	obs.GaugeAcksOut:    "Outstanding survivor undo acknowledgements.",
	obs.GaugeMemUsed:    "Governor-accounted RAM bytes.",
	obs.GaugeMemSpilled: "Governed bytes resident on the spill tier.",
	obs.GaugeMemStage:   "Memory degradation stage (0 ok, 1 ckpt, 2 throttle, 3 stream).",
	obs.GaugeMemPeak:    "High-water mark of governor-accounted bytes.",
}

func helpOr(m string, ok bool, fallback string) string {
	if ok && m != "" {
		return m
	}
	return fallback
}

// families materializes every family at scrape time.
func (s *Server) families() []family {
	s.mu.Lock()
	rec, hfn, info := s.rec, s.healthFn, s.runInfo
	extras := append([]Metric(nil), s.extras...)
	s.mu.Unlock()

	var fams []family
	add := func(f family) {
		if len(f.samples) > 0 {
			fams = append(fams, f)
		}
	}

	if rec != nil {
		st := rec.Snapshot()
		for _, c := range obs.AllCounters() {
			f := family{
				name: "argan_" + c.String() + "_total",
				help: helpOr(counterHelp[c], true, "GAP runtime counter."),
				typ:  "counter",
			}
			for _, w := range st.Workers {
				f.samples = append(f.samples, promSample{workerLabel(w.Worker), float64(w.Counters[c])})
			}
			add(f)
		}
		for _, g := range obs.AllGauges() {
			f := family{
				name: "argan_" + g.String(),
				help: helpOr(gaugeHelp[g], true, "GAP runtime gauge."),
				typ:  "gauge",
			}
			for _, w := range st.Workers {
				if w.GaugeKnown[g] {
					f.samples = append(f.samples, promSample{workerLabel(w.Worker), w.Gauges[g]})
				}
			}
			add(f)
		}
		drop := family{
			name: "argan_dropped_events_total",
			help: "Trace events evicted by ring-buffer wraparound (telemetry is lossy when > 0).",
			typ:  "counter",
		}
		idle := family{name: "argan_worker_idle", help: "Worker is at f_term with an empty mailbox (0/1).", typ: "gauge"}
		for _, w := range st.Workers {
			drop.samples = append(drop.samples, promSample{workerLabel(w.Worker), float64(w.Dropped)})
			idle.samples = append(idle.samples, promSample{workerLabel(w.Worker), boolGauge(w.Idle)})
		}
		add(drop)
		add(idle)
		// Cross-worker spread of the adaptive-granularity gauges: the load
		// imbalance signal the straggler analyzer keys on.
		addSpread := func(name, help string, get func(obs.WorkerStatus) (float64, bool)) {
			lo, hi, any := 0.0, 0.0, false
			for _, w := range st.Workers {
				v, ok := get(w)
				if !ok {
					continue
				}
				if !any || v < lo {
					lo = v
				}
				if !any || v > hi {
					hi = v
				}
				any = true
			}
			if any {
				add(family{name: name, help: help, typ: "gauge",
					samples: []promSample{{"", hi - lo}}})
			}
		}
		addSpread("argan_eta_spread", "Max-min spread of eta_i across workers.",
			func(w obs.WorkerStatus) (float64, bool) { return w.Eta, w.HasEta })
		addSpread("argan_phi_spread", "Max-min spread of phi_i across workers.",
			func(w obs.WorkerStatus) (float64, bool) { return w.Phi, w.HasPhi })
	}

	if hfn != nil {
		h := hfn()
		one := func(name, help, typ string, v float64) {
			add(family{name: name, help: help, typ: typ, samples: []promSample{{"", v}}})
		}
		one("argan_run_running", "A live run is currently executing (0/1).", "gauge", boolGauge(h.Running))
		one("argan_run_draining", "Process is draining: no new runs admitted (0/1).", "gauge", boolGauge(h.Draining))
		one("argan_runs_completed_total", "Runs finished successfully under this plane.", "counter", float64(h.Completed))
		one("argan_runs_failed_total", "Runs finished in failure under this plane.", "counter", float64(h.Failed))
		one("argan_run_workers", "Cluster size of the current run.", "gauge", float64(h.Workers))
		one("argan_run_workers_idle", "Workers at f_term with empty mailboxes.", "gauge", float64(h.Idle))
		one("argan_run_workers_dead", "Workers with stale heartbeats, not yet restored.", "gauge", float64(h.Dead))
		one("argan_run_unrecoverable", "Control plane gave up on a worker (0/1).", "gauge", boolGauge(h.Unrecoverable))
		one("argan_run_epoch", "Cluster epoch (bumped by global rollbacks).", "gauge", float64(h.Epoch))
		one("argan_run_msgs_sent_total", "Termination-ledger messages sent this run.", "counter", float64(h.Sent))
		one("argan_run_msgs_recv_total", "Termination-ledger messages received this run.", "counter", float64(h.Recv))
		one("argan_run_updates_total", "Update-function invocations this run.", "counter", float64(h.Updates))
		one("argan_run_progress_age_seconds", "Time since the watchdog last saw progress.", "gauge", h.ProgressAge.Seconds())
		one("argan_run_watchdog_seconds", "Configured stuck-run budget (0 = disabled).", "gauge", h.Watchdog.Seconds())
		one("argan_run_spilled_bytes", "Governed bytes currently on the spill tier.", "gauge", float64(h.SpilledBytes))
		if h.Recovery != "" || h.MemStage != "" {
			add(family{
				name: "argan_run_info", typ: "gauge",
				help: "Run mode labels; value is always 1.",
				samples: []promSample{{
					`{mem_stage="` + escapeLabel(h.MemStage) + `",recovery="` + escapeLabel(h.Recovery) + `"}`, 1}},
			})
		}
	}

	if len(info) > 0 {
		keys := make([]string, 0, len(info))
		for k := range info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(sanitizeLabelName(k))
			b.WriteString(`="`)
			b.WriteString(escapeLabel(info[k]))
			b.WriteString(`"`)
		}
		b.WriteByte('}')
		add(family{name: "argan_run_config", typ: "gauge",
			help:    "Run configuration labels; value is always 1.",
			samples: []promSample{{b.String(), 1}}})
	}

	for _, m := range extras {
		f := family{name: m.Name, help: m.Help, typ: m.Type}
		for _, sm := range m.Collect() {
			f.samples = append(f.samples, promSample{renderLabels(sm.Labels), sm.Value})
		}
		add(f)
	}

	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sanitizeLabelName maps an arbitrary key onto the exposition label-name
// alphabet.
func sanitizeLabelName(k string) string {
	if k == "" {
		return "key"
	}
	b := []byte(k)
	for i, c := range b {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

func renderLabels(ls map[string]string) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteMetrics renders the full exposition document. The output always
// passes Lint; the scrape test enforces this.
func (s *Server) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.families() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, sm := range f.samples {
			fmt.Fprintf(bw, "%s%s %s\n", f.name, sm.labels, ftoa(sm.value))
		}
	}
	return bw.Flush()
}
