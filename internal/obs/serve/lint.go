package serve

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-exposition document (format 0.0.4) the
// way a strict scraper would, plus the project's own conventions. It checks:
//
//   - metric and label names match the exposition alphabet
//   - every sample is preceded by a # TYPE for its family, with a known type
//   - counter families end in _total
//   - HELP/TYPE appear at most once per family, before its samples
//   - a family's lines are contiguous (no interleaving)
//   - label values are well-formed quoted strings with valid escapes
//   - values parse as floats (+Inf/-Inf/NaN allowed)
//   - no duplicate series (same name + label set)
//
// It returns nil on a clean document, or an error listing every violation
// with its line number.
func Lint(r io.Reader) error {
	issues, err := lint(r, nil)
	if err != nil {
		return err
	}
	if len(issues) > 0 {
		return fmt.Errorf("exposition lint: %s", strings.Join(issues, "; "))
	}
	return nil
}

// ParseSamples reads a document into a map keyed by the canonical series
// string — name alone, or name{labels} with label pairs sorted by name. It
// does a full Lint pass first and fails on any violation, so threshold
// checks never run against malformed input.
func ParseSamples(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	issues, err := lint(r, func(series string, v float64) { out[series] = v })
	if err != nil {
		return nil, err
	}
	if len(issues) > 0 {
		return nil, fmt.Errorf("exposition lint: %s", strings.Join(issues, "; "))
	}
	return out, nil
}

var lintName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var lintLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

type famLint struct {
	typ         string
	helped      bool
	typed       bool
	interrupted bool
}

func lint(r io.Reader, emit func(series string, v float64)) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	fams := map[string]*famLint{}
	series := map[string]bool{}
	var issues []string
	cur := "" // family currently being emitted
	bad := func(ln int, format string, args ...any) {
		issues = append(issues, fmt.Sprintf("line %d: %s", ln, fmt.Sprintf(format, args...)))
	}
	fam := func(name string) *famLint {
		f := fams[name]
		if f == nil {
			f = &famLint{}
			fams[name] = f
		}
		return f
	}
	enter := func(ln int, name string) *famLint {
		f := fam(name)
		if cur != name {
			if cur != "" && name != cur {
				// leaving cur; it may not come back
				fam(cur).interrupted = true
			}
			if f.interrupted {
				bad(ln, "family %s is not contiguous", name)
			}
			cur = name
		}
		return f
	}
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) >= 2 && (parts[1] == "HELP" || parts[1] == "TYPE") {
				if len(parts) < 3 || !lintName.MatchString(parts[2]) {
					bad(ln, "malformed %s line", parts[1])
					continue
				}
				name := parts[2]
				f := enter(ln, name)
				switch parts[1] {
				case "HELP":
					if f.helped {
						bad(ln, "second HELP for %s", name)
					}
					f.helped = true
				case "TYPE":
					if f.typed {
						bad(ln, "second TYPE for %s", name)
					}
					f.typed = true
					typ := ""
					if len(parts) >= 4 {
						typ = strings.TrimSpace(parts[3])
					}
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
						f.typ = typ
					default:
						bad(ln, "unknown type %q for %s", typ, name)
					}
					if typ == "counter" && !strings.HasSuffix(name, "_total") {
						bad(ln, "counter %s must end in _total", name)
					}
				}
			}
			// other # lines are free-form comments
			continue
		}
		name, canon, v, perr := parseSampleLine(line)
		if perr != "" {
			bad(ln, "%s", perr)
			continue
		}
		f := enter(ln, name)
		if !f.typed {
			bad(ln, "sample for %s before its # TYPE", name)
		}
		if series[canon] {
			bad(ln, "duplicate series %s", canon)
		}
		series[canon] = true
		if emit != nil {
			emit(canon, v)
		}
	}
	return issues, sc.Err()
}

// parseSampleLine parses `name{labels} value [timestamp]`, returning the
// family name, the canonical series key (labels sorted), the value, and a
// problem description ("" when clean).
func parseSampleLine(line string) (name, canon string, v float64, problem string) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !lintName.MatchString(name) {
		return name, "", 0, fmt.Sprintf("invalid metric name %q", name)
	}
	type pair struct{ k, v string }
	var pairs []pair
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return name, "", 0, "unterminated label set"
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return name, "", 0, "label without '='"
			}
			lname := line[i:j]
			if !lintLabel.MatchString(lname) {
				return name, "", 0, fmt.Sprintf("invalid label name %q", lname)
			}
			j++
			if j >= len(line) || line[j] != '"' {
				return name, "", 0, fmt.Sprintf("label %s value is not quoted", lname)
			}
			j++
			var val strings.Builder
			closed := false
			for j < len(line) {
				c := line[j]
				if c == '\\' {
					if j+1 >= len(line) {
						return name, "", 0, "dangling escape in label value"
					}
					switch line[j+1] {
					case '\\', '"', 'n':
						val.WriteByte(line[j+1])
					default:
						return name, "", 0, fmt.Sprintf("bad escape \\%c in label value", line[j+1])
					}
					j += 2
					continue
				}
				if c == '"' {
					closed = true
					j++
					break
				}
				val.WriteByte(c)
				j++
			}
			if !closed {
				return name, "", 0, "unterminated label value"
			}
			pairs = append(pairs, pair{lname, val.String()})
			if j < len(line) && line[j] == ',' {
				j++
			} else if j < len(line) && line[j] != '}' {
				return name, "", 0, "expected ',' or '}' after label"
			}
			i = j
		}
	}
	if i >= len(line) || (line[i] != ' ' && line[i] != '\t') {
		return name, "", 0, "missing value"
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return name, "", 0, "expected 'value [timestamp]'"
	}
	var err error
	v, err = strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return name, "", 0, fmt.Sprintf("bad value %q", rest[0])
	}
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return name, "", 0, fmt.Sprintf("bad timestamp %q", rest[1])
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteString(name)
	if len(pairs) > 0 {
		b.WriteByte('{')
		for k, p := range pairs {
			if k > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s=%q`, p.k, p.v)
		}
		b.WriteByte('}')
	}
	return name, b.String(), v, ""
}
