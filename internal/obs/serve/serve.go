// Package serve is the live telemetry plane of the GAP runtime: an HTTP
// server that exposes a running (or just-finished) traced run as
//
//	/metrics      Prometheus text exposition (format version 0.0.4)
//	/status       JSON dump of the recorder snapshot, health and run config
//	/healthz      liveness: 200 while the control plane reports progress
//	/readyz       readiness: 200 once a run is attached and recoverable
//	/debug/pprof  the standard Go profiling endpoints
//
// The server is deliberately passive: it holds an *obs.Recorder (the same
// ring-buffered tracer the drivers already write to) and a health callback,
// and materializes everything at scrape time. Attaching it to a run costs
// nothing on the hot path — the drivers keep tracing exactly as before.
//
// One server outlives individual runs: arganrun starts it once and re-points
// SetRecorder/SetRunInfo at each soak iteration, so a scraper sees a
// continuous stream across iterations.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"regexp"
	"sync"
	"time"

	"argan/internal/obs"
)

// Health mirrors the live driver's control-plane view (gap.Health) without
// importing the driver: the binary that wires the two together adapts one
// struct to the other. Field meanings are identical.
type Health struct {
	Running       bool          `json:"running"`
	Completed     int64         `json:"completed"`
	Failed        int64         `json:"failed"`
	Err           string        `json:"err,omitempty"`
	Draining      bool          `json:"draining,omitempty"`
	Workers       int           `json:"workers"`
	Idle          int           `json:"idle"`
	Dead          int           `json:"dead"`
	Unrecoverable bool          `json:"unrecoverable"`
	Epoch         int32         `json:"epoch"`
	Recovery      string        `json:"recovery,omitempty"`
	Sent          int64         `json:"sent"`
	Recv          int64         `json:"recv"`
	Updates       int64         `json:"updates"`
	ProgressAge   time.Duration `json:"progress_age_ns"`
	Watchdog      time.Duration `json:"watchdog_ns"`
	MemStage      string        `json:"mem_stage,omitempty"`
	SpilledBytes  int64         `json:"spilled_bytes"`
	UpdatedAt     time.Time     `json:"updated_at"`
}

// Sample is one labeled value of a registered Metric.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// Metric is a caller-registered metric family, evaluated at scrape time.
// Collect must be safe for concurrent calls and deterministic in sample
// order (the exposition preserves it).
type Metric struct {
	Name    string // full exposition name; counters must end in _total
	Help    string
	Type    string // "counter" or "gauge"
	Collect func() []Sample
}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Server is the telemetry-plane HTTP server. The zero value is not usable;
// call New. All Set*/Register* methods are safe to call while serving.
type Server struct {
	mu       sync.Mutex
	rec      *obs.Recorder
	healthFn func() Health
	runInfo  map[string]string
	extras   []Metric
	names    map[string]bool
	mounts   map[string]http.Handler

	ln net.Listener
	hs *http.Server
}

// Client-facing hardening limits: a slow or malicious client may neither pin
// a connection forever (header/idle timeouts) nor stream an unbounded body
// into a mounted API handler.
const (
	readHeaderTimeout = 5 * time.Second
	idleTimeout       = 60 * time.Second
	// maxRequestBody bounds request bodies on every route, including
	// mounted API handlers (job specs are a few hundred bytes; 1 MiB is
	// generous). Oversized bodies fail the handler's read with an error
	// http.MaxBytesReader turns into a 413.
	maxRequestBody = 1 << 20
)

// New builds a server with no recorder or health source attached; every
// endpoint works from the start (an empty /metrics is still valid
// exposition).
func New() *Server {
	return &Server{names: make(map[string]bool)}
}

// SetRecorder points the plane at a run's recorder (nil detaches).
func (s *Server) SetRecorder(r *obs.Recorder) {
	s.mu.Lock()
	s.rec = r
	s.mu.Unlock()
}

// SetHealth installs the health callback backing /healthz, /readyz and the
// argan_run_* families. The callback is invoked once per request.
func (s *Server) SetHealth(fn func() Health) {
	s.mu.Lock()
	s.healthFn = fn
	s.mu.Unlock()
}

// SetRunInfo replaces the run-configuration labels exported as
// argan_run_config and echoed in /status (the map is copied).
func (s *Server) SetRunInfo(info map[string]string) {
	cp := make(map[string]string, len(info))
	for k, v := range info {
		cp[k] = v
	}
	s.mu.Lock()
	s.runInfo = cp
	s.mu.Unlock()
}

// RegisterMetric adds a scrape-time metric family. It rejects malformed
// names, unknown types, counters without the _total suffix, and duplicates.
func (s *Server) RegisterMetric(m Metric) error {
	if !metricName.MatchString(m.Name) {
		return fmt.Errorf("serve: invalid metric name %q", m.Name)
	}
	switch m.Type {
	case "gauge":
	case "counter":
		if len(m.Name) < len("_total") || m.Name[len(m.Name)-len("_total"):] != "_total" {
			return fmt.Errorf("serve: counter %q must end in _total", m.Name)
		}
	default:
		return fmt.Errorf("serve: metric %q has unknown type %q", m.Name, m.Type)
	}
	if m.Collect == nil {
		return fmt.Errorf("serve: metric %q has no Collect", m.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.names[m.Name] {
		return fmt.Errorf("serve: metric %q already registered", m.Name)
	}
	s.names[m.Name] = true
	s.extras = append(s.extras, m)
	return nil
}

// Mount attaches an additional handler under the given pattern (ServeMux
// syntax, e.g. "/api/jobs" or "/api/jobs/"), letting a job service share the
// telemetry plane's listener, hardening limits and lifecycle. Mount before
// Handler/Start; patterns colliding with the built-in routes or each other
// return an error.
func (s *Server) Mount(pattern string, h http.Handler) error {
	if pattern == "" || pattern[0] != '/' {
		return fmt.Errorf("serve: mount pattern %q must start with /", pattern)
	}
	switch pattern {
	case "/metrics", "/status", "/healthz", "/readyz":
		return fmt.Errorf("serve: pattern %q collides with a built-in route", pattern)
	}
	if h == nil {
		return fmt.Errorf("serve: nil handler for %q", pattern)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mounts == nil {
		s.mounts = make(map[string]http.Handler)
	}
	if s.mounts[pattern] != nil {
		return fmt.Errorf("serve: pattern %q already mounted", pattern)
	}
	s.mounts[pattern] = h
	return nil
}

// Handler returns the plane's route table; useful for tests and for mounting
// under an existing server. Every route — built-in and mounted — reads its
// request body through a MaxBytesReader.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/status", s.status)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/readyz", s.readyz)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	s.mu.Lock()
	for pat, h := range s.mounts {
		mux.Handle(pat, h)
	}
	s.mu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		}
		mux.ServeHTTP(w, r)
	})
}

// Start listens on addr (":0" picks a free port) and serves in the
// background. It returns the resolved address. The server carries header and
// idle timeouts so a slow client cannot pin a connection forever.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	s.mu.Lock()
	s.ln, s.hs = ln, hs
	s.mu.Unlock()
	go hs.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the listening address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// statusWorker is one worker's row in the /status document.
type statusWorker struct {
	Worker   int                `json:"worker"`
	T        float64            `json:"t"`
	Phase    string             `json:"phase"`
	Idle     bool               `json:"idle"`
	Dropped  int64              `json:"dropped,omitempty"`
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

type statusDoc struct {
	Run     map[string]string `json:"run,omitempty"`
	Health  *Health           `json:"health,omitempty"`
	Dropped int64             `json:"dropped"`
	Workers []statusWorker    `json:"workers"`
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec, hfn, info := s.rec, s.healthFn, s.runInfo
	s.mu.Unlock()
	doc := statusDoc{Run: info, Workers: []statusWorker{}}
	if hfn != nil {
		h := hfn()
		doc.Health = &h
	}
	if rec != nil {
		st := rec.Snapshot()
		doc.Dropped = st.Dropped
		for _, ws := range st.Workers {
			sw := statusWorker{
				Worker:   ws.Worker,
				T:        ws.T,
				Phase:    ws.Phase.String(),
				Idle:     ws.Idle,
				Dropped:  ws.Dropped,
				Counters: map[string]int64{},
			}
			for _, c := range obs.AllCounters() {
				sw.Counters[c.String()] = ws.Counters[c]
			}
			for _, g := range obs.AllGauges() {
				v := ws.Gauges[g]
				if !ws.GaugeKnown[g] || math.IsNaN(v) || math.IsInf(v, 0) {
					continue // ±Inf (η of FG⁺) is not valid JSON
				}
				if sw.Gauges == nil {
					sw.Gauges = map[string]float64{}
				}
				sw.Gauges[g.String()] = v
			}
			doc.Workers = append(doc.Workers, sw)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// healthz is liveness: it fails only while the run is demonstrably wedged —
// the control plane gave up on a worker, or the watchdog budget is blown
// with no progress. A failed-and-finished run is still "live" (the plane
// keeps serving its telemetry).
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	hfn := s.healthFn
	s.mu.Unlock()
	if hfn == nil {
		fmt.Fprintln(w, "ok: no run attached")
		return
	}
	h := hfn()
	if h.Unrecoverable {
		http.Error(w, "unhealthy: unrecoverable worker loss", http.StatusServiceUnavailable)
		return
	}
	if h.Running && h.Watchdog > 0 && h.ProgressAge > h.Watchdog {
		http.Error(w, fmt.Sprintf("unhealthy: no progress for %v (watchdog %v)", h.ProgressAge, h.Watchdog),
			http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintf(w, "ok: running=%v dead=%d/%d progress_age=%v\n", h.Running, h.Dead, h.Workers, h.ProgressAge)
}

// readyz is readiness: 200 once a run has been attached (started or already
// finished) and the cluster is recoverable.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	hfn := s.healthFn
	s.mu.Unlock()
	if hfn == nil {
		http.Error(w, "not ready: no run attached", http.StatusServiceUnavailable)
		return
	}
	h := hfn()
	if h.Draining {
		// A draining process finishes its in-flight work but must fall out
		// of load-balancer rotation immediately.
		http.Error(w, "not ready: draining", http.StatusServiceUnavailable)
		return
	}
	if !h.Running && h.Completed+h.Failed == 0 {
		http.Error(w, "not ready: run not started", http.StatusServiceUnavailable)
		return
	}
	if h.Unrecoverable {
		http.Error(w, "not ready: unrecoverable worker loss", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}
