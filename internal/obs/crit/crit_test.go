package crit_test

import (
	"bytes"
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/obs"
	"argan/internal/obs/crit"
	"argan/internal/partition"
)

// syntheticTrace crafts a two-worker trace with known bucket shares over the
// window [0, 100]:
//
//	worker 0: LocalEval [0,40] containing merge [10,20]; throttle [50,60]
//	          → compute 30, merge 10, throttle 10, wait 50
//	worker 1: replay [0,100] → replay 100; flush at t=8 wakes worker 0? no —
//	          worker 0 has a MarkBusy at 50 so the critical path test can
//	          walk 0 → 1.
func syntheticTrace() *obs.Recorder {
	rec := obs.NewRecorder(2, 0)
	rec.SpanBegin(0, obs.PhaseLocalEval, 0)
	rec.SpanBegin(0, obs.PhaseMerge, 10)
	rec.SpanEnd(0, obs.PhaseMerge, 20)
	rec.SpanEnd(0, obs.PhaseLocalEval, 40)
	rec.Mark(0, obs.MarkBusy, 50)
	rec.SpanBegin(0, obs.PhaseThrottle, 50)
	rec.SpanEnd(0, obs.PhaseThrottle, 60)
	rec.SpanBegin(1, obs.PhaseReplay, 0)
	rec.Count(1, obs.CounterFlushes, 45, 1)
	rec.SpanEnd(1, obs.PhaseReplay, 100)
	return rec
}

func TestAttributeSynthetic(t *testing.T) {
	r := crit.Analyze(syntheticTrace())
	if r.Wall != 100 {
		t.Fatalf("wall = %v, want 100", r.Wall)
	}
	w0 := r.Workers[0].Buckets
	want0 := map[int]float64{
		crit.BucketCompute: 30, crit.BucketMerge: 10,
		crit.BucketThrottle: 10, crit.BucketWait: 50,
	}
	for b, want := range want0 {
		if math.Abs(w0[b]-want) > 1e-9 {
			t.Errorf("worker 0 bucket %s = %v, want %v", crit.BucketNames()[b], w0[b], want)
		}
	}
	w1 := r.Workers[1].Buckets
	if math.Abs(w1[crit.BucketReplay]-100) > 1e-9 {
		t.Errorf("worker 1 replay = %v, want 100", w1[crit.BucketReplay])
	}
	for _, w := range r.Workers {
		if math.Abs(w.Coverage-1) > 1e-9 {
			t.Errorf("worker %d coverage = %v, want 1", w.Worker, w.Coverage)
		}
	}
	if r.Straggler != 1 {
		t.Errorf("straggler = %d, want 1 (busy 100 vs 50)", r.Straggler)
	}
	// Critical path: worker 1 finishes last at 100 with no wakeup, so the
	// chain is just worker 1 back to the trace start.
	if len(r.Chain) == 0 || r.Chain[len(r.Chain)-1] != 1 {
		t.Errorf("chain = %v, want to end at worker 1", r.Chain)
	}
}

// TestCriticalPathWalk builds an explicit sender→wakeup chain:
// worker 0 computes [0,10] and flushes at 10; worker 1 wakes at 12,
// computes [12,50], finishing last.
func TestCriticalPathWalk(t *testing.T) {
	rec := obs.NewRecorder(2, 0)
	rec.SpanBegin(0, obs.PhaseLocalEval, 0)
	rec.Count(0, obs.CounterFlushes, 10, 1)
	rec.SpanEnd(0, obs.PhaseLocalEval, 10)
	rec.Mark(1, obs.MarkBusy, 12)
	rec.SpanBegin(1, obs.PhaseLocalEval, 12)
	rec.SpanEnd(1, obs.PhaseLocalEval, 50)
	r := crit.Analyze(rec)
	if got, want := len(r.CriticalPath), 2; got != want {
		t.Fatalf("path length %d, want %d: %+v", got, want, r.CriticalPath)
	}
	if r.CriticalPath[0].Worker != 0 || r.CriticalPath[1].Worker != 1 {
		t.Fatalf("path workers = %+v, want 0 then 1", r.CriticalPath)
	}
	if r.CriticalPath[1].Note != "woken by worker 0" {
		t.Errorf("note = %q", r.CriticalPath[1].Note)
	}
	if got, want := r.Chain, []int{0, 1}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("chain = %v, want %v", got, want)
	}
}

func renderBoth(t *testing.T, r *crit.Report) (text, js []byte) {
	t.Helper()
	var tb, jb bytes.Buffer
	if err := r.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

// TestReportDeterminismSim: two same-seed sim runs stamp identical virtual
// times, so their analysis must render byte-identically.
func TestReportDeterminismSim(t *testing.T) {
	run := func() *crit.Report {
		g, err := graph.LoadDataset("HW", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		frags, err := partition.Partition(g, partition.Hash{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder(4, 0)
		cfg := gap.Config{Mode: gap.ModeGAP, Adapt: adapt.PolicyGAwD, Hetero: 0.8, Tracer: rec}
		if _, err := gap.RunSim(frags, algorithms.NewSSSP(), ace.Query{Source: 0}, cfg); err != nil {
			t.Fatal(err)
		}
		return crit.Analyze(rec)
	}
	ta, ja := renderBoth(t, run())
	tb, jb := renderBoth(t, run())
	if !bytes.Equal(ta, tb) {
		t.Error("text reports differ between identical sim runs")
	}
	if !bytes.Equal(ja, jb) {
		t.Error("JSON reports differ between identical sim runs")
	}
	if len(ta) == 0 || len(ja) == 0 {
		t.Fatal("empty report")
	}
}

// TestLivePageRankCoverage is the acceptance experiment: a 4-worker live
// PageRank over a power-law graph must attribute at least 95% of every
// worker's window, on repeated runs.
func TestLivePageRankCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("live run")
	}
	g, err := graph.LoadDataset("HW", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	frags, err := partition.Partition(g, partition.Hash{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		rec := obs.NewRecorder(5, 0)
		cfg := gap.LiveConfig{Mode: gap.ModeGAP, Tracer: rec, IntraParallelism: 2}
		if _, _, err := gap.RunLive(frags, algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg); err != nil {
			t.Fatal(err)
		}
		r := crit.Analyze(rec)
		if r.Wall <= 0 {
			t.Fatalf("rep %d: empty window", rep)
		}
		for _, w := range r.Workers {
			if w.Coverage < 0.95 || w.Coverage > 1.0001 {
				t.Errorf("rep %d: worker %d coverage %.4f outside [0.95, 1]", rep, w.Worker, w.Coverage)
			}
		}
		if r.Coverage < 0.95 {
			t.Errorf("rep %d: total coverage %.4f < 0.95", rep, r.Coverage)
		}
		if r.Straggler < 0 {
			t.Errorf("rep %d: no straggler named", rep)
		}
		if len(r.CriticalPath) == 0 {
			t.Errorf("rep %d: empty critical path", rep)
		}
		var total int
		for _, w := range r.Workers {
			total += w.Spans
		}
		if total == 0 {
			t.Errorf("rep %d: no spans parsed", rep)
		}
	}
}

// TestReportDroppedWarning: a wrapped ring must surface its drop count in
// both renderings.
func TestReportDroppedWarning(t *testing.T) {
	rec := obs.NewRecorder(1, 16)
	for i := 0; i < 100; i++ {
		rec.Count(0, obs.CounterUpdates, float64(i), 1)
	}
	r := crit.Analyze(rec)
	if r.Dropped == 0 {
		t.Fatal("expected drops")
	}
	text, js := renderBoth(t, r)
	if !bytes.Contains(text, []byte("WARNING")) {
		t.Error("text report lacks drop warning")
	}
	if !bytes.Contains(js, []byte(`"dropped"`)) {
		t.Error("JSON report lacks dropped field")
	}
}
