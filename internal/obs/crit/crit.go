// Package crit is the post-run straggler analyzer: it consumes the span and
// instant events retained by an obs.Recorder and answers "where did the wall
// clock go, and whose chain of work gated the finish line?".
//
// Attribution is deterministic and purely trace-driven: each worker's share
// of the run window is split into buckets by the innermost open span at each
// instant — compute (LocalEval/h_in/h_out/Adjust/superstep), merge (the
// sharded-wave publication), replay (recovery, checkpoint and replay spans),
// spill (page-outs), throttle (backpressure pauses) — and every instant not
// covered by any span is wait. The buckets therefore always account for the
// full window; the coverage figure exists to catch parser bugs (mismatched
// spans double-count and push it past 1).
//
// The critical path is reconstructed backwards from the last-finishing
// worker: each busy period extends back to the MarkBusy wakeup that started
// it, and the wakeup is attributed to the peer with the latest flush or send
// at or before that instant (the recorder does not keep sender identity, so
// this is a deterministic nearest-sender heuristic, ties broken toward the
// lower worker id). Times are in the trace's native unit — wall microseconds
// under the live driver, virtual cost units under the simulator.
package crit

import (
	"fmt"
	"strconv"
	"strings"

	"argan/internal/obs"
)

// Bucket indices of an attribution vector.
const (
	BucketCompute = iota
	BucketMerge
	BucketReplay
	BucketSpill
	BucketThrottle
	BucketWait
	BucketOther
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"compute", "merge", "replay", "spill", "throttle", "wait", "other",
}

// BucketNames returns the bucket labels in index order.
func BucketNames() []string { return append([]string(nil), bucketNames[:]...) }

// Buckets is one attribution vector, indexed by the Bucket* constants, in
// trace time units. It marshals as a JSON object in index order.
type Buckets [NumBuckets]float64

// MarshalJSON renders the vector with its bucket names, floats in shortest
// round-trip form (deterministic across runs and platforms).
func (b Buckets) MarshalJSON() ([]byte, error) {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range bucketNames {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('"')
		sb.WriteString(n)
		sb.WriteString(`":`)
		sb.WriteString(strconv.FormatFloat(b[i], 'g', -1, 64))
	}
	sb.WriteByte('}')
	return []byte(sb.String()), nil
}

// Sum is the total attributed time.
func (b Buckets) Sum() float64 {
	s := 0.0
	for _, v := range b {
		s += v
	}
	return s
}

// Busy is the non-wait attributed time.
func (b Buckets) Busy() float64 { return b.Sum() - b[BucketWait] }

func bucketOf(p obs.Phase) int {
	switch p {
	case obs.PhaseMerge:
		return BucketMerge
	case obs.PhaseRecovery, obs.PhaseReplay, obs.PhaseCheckpoint:
		return BucketReplay
	case obs.PhaseSpill:
		return BucketSpill
	case obs.PhaseThrottle:
		return BucketThrottle
	case obs.PhaseLocalEval, obs.PhaseHin, obs.PhaseHout, obs.PhaseAdjust, obs.PhaseSuperstep:
		return BucketCompute
	}
	return BucketOther
}

// WorkerReport is one worker's attribution over the run window.
type WorkerReport struct {
	Worker int `json:"worker"`
	// Wall is the run window length (identical for every worker: the
	// attribution always spans the global [Start, End]).
	Wall    float64 `json:"wall"`
	Buckets Buckets `json:"buckets"`
	// Coverage is Buckets.Sum()/Wall; 1.0 up to float rounding unless the
	// trace is malformed.
	Coverage float64 `json:"coverage"`
	// Spans is the number of span-begin events parsed.
	Spans int `json:"spans"`
	// Dropped is the worker's ring-eviction count; a non-zero value means
	// the oldest events are missing and early time is misread as wait.
	Dropped int64 `json:"dropped,omitempty"`
}

// Step is one link of the critical path, oldest first.
type Step struct {
	Worker int     `json:"worker"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	// Note says how the busy period started: "run start", "trace start", or
	// "woken by worker N".
	Note string `json:"note"`
}

// Report is the full analysis.
type Report struct {
	// Start/End bound the run window (min/max event time across workers);
	// Wall is their difference. Unit: trace time units.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Wall  float64 `json:"wall"`
	// Dropped is the total ring-eviction count (telemetry is lossy if > 0).
	Dropped int64          `json:"dropped,omitempty"`
	Workers []WorkerReport `json:"workers"`
	// Totals sums the per-worker vectors; Coverage is its sum over
	// Workers*Wall.
	Totals   Buckets `json:"totals"`
	Coverage float64 `json:"coverage"`
	// Straggler is the worker with the most busy (non-wait) time.
	Straggler int `json:"straggler"`
	// CriticalPath walks the gating chain oldest-first; Chain lists its
	// workers in order (consecutive duplicates collapsed).
	CriticalPath []Step `json:"critical_path"`
	Chain        []int  `json:"chain"`
}

// Analyze attributes the recorder's retained trace. It never mutates the
// recorder and may run while recording continues (the snapshot is
// per-worker consistent, like Recorder.Snapshot).
func Analyze(rec *obs.Recorder) *Report {
	n := rec.Workers()
	events := make([][]obs.Event, n)
	r := &Report{Dropped: rec.Dropped()}
	first := true
	for i := 0; i < n; i++ {
		events[i] = rec.Events(i)
		for _, e := range events[i] {
			if first || e.T < r.Start {
				r.Start = e.T
			}
			if first || e.T > r.End {
				r.End = e.T
			}
			first = false
		}
	}
	r.Wall = r.End - r.Start
	for i := 0; i < n; i++ {
		w := WorkerReport{Worker: i, Wall: r.Wall, Dropped: rec.DroppedOf(i)}
		w.Buckets, w.Spans = attribute(events[i], r.Start, r.End)
		if r.Wall > 0 {
			w.Coverage = w.Buckets.Sum() / r.Wall
		} else {
			w.Coverage = 1
		}
		for b := range w.Buckets {
			r.Totals[b] += w.Buckets[b]
		}
		r.Workers = append(r.Workers, w)
	}
	if r.Wall > 0 && n > 0 {
		r.Coverage = r.Totals.Sum() / (float64(n) * r.Wall)
	} else {
		r.Coverage = 1
	}
	r.Straggler = -1
	best := -1.0
	for _, w := range r.Workers {
		if busy := w.Buckets.Busy(); busy > best {
			best, r.Straggler = busy, w.Worker
		}
	}
	r.CriticalPath = criticalPath(events, r.Start)
	for _, s := range r.CriticalPath {
		if len(r.Chain) == 0 || r.Chain[len(r.Chain)-1] != s.Worker {
			r.Chain = append(r.Chain, s.Worker)
		}
	}
	return r
}

// attribute splits [start, end] by the innermost open span. Timestamps are
// clamped monotone (the recorder permits slightly-in-the-past delivery
// stamps) exactly as the Chrome exporter does, so both views agree.
func attribute(events []obs.Event, start, end float64) (Buckets, int) {
	var b Buckets
	spans := 0
	cursor := start
	var stack []obs.Phase
	accrue := func(upto float64) {
		if upto <= cursor {
			return
		}
		if len(stack) == 0 {
			b[BucketWait] += upto - cursor
		} else {
			b[bucketOf(stack[len(stack)-1])] += upto - cursor
		}
		cursor = upto
	}
	for _, e := range events {
		t := e.T
		if t < cursor {
			t = cursor
		}
		if t > end {
			t = end
		}
		accrue(t)
		switch e.Kind {
		case obs.KindSpanBegin:
			stack = append(stack, obs.Phase(e.Code))
			spans++
		case obs.KindSpanEnd:
			// Pop the innermost open span of this phase; orphan ends (their
			// begin was evicted by the ring) are ignored.
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i] == obs.Phase(e.Code) {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
		}
	}
	accrue(end)
	return b, spans
}

// maxCritSteps bounds the backward walk; real chains are far shorter.
const maxCritSteps = 64

// criticalPath walks backwards from the last-finishing worker.
func criticalPath(events [][]obs.Event, start float64) []Step {
	cur, curEnd := -1, 0.0
	for i, evs := range events {
		if len(evs) == 0 {
			continue
		}
		if t := evs[len(evs)-1].T; cur < 0 || t > curEnd {
			cur, curEnd = i, t
		}
	}
	if cur < 0 {
		return nil
	}
	var rev []Step
	t := curEnd
	for len(rev) < maxCritSteps {
		// The busy period ending at t started at the latest wakeup ≤ t.
		busyStart, woken := start, false
		if len(events[cur]) > 0 {
			busyStart = events[cur][0].T
		}
		for _, e := range events[cur] {
			if e.T > t {
				break
			}
			if e.Kind == obs.KindMark && obs.Mark(e.Code) == obs.MarkBusy {
				busyStart, woken = e.T, true
			}
		}
		if busyStart > t {
			busyStart = t
		}
		note := "trace start"
		if !woken && busyStart == start {
			note = "run start"
		}
		// Predecessor: the peer with the latest flush/send ≤ the wakeup.
		pred, predT := -1, 0.0
		if woken {
			for w, evs := range events {
				if w == cur {
					continue
				}
				for _, e := range evs {
					if e.T > busyStart {
						break
					}
					if e.Kind == obs.KindCounter &&
						(obs.Counter(e.Code) == obs.CounterFlushes || obs.Counter(e.Code) == obs.CounterMsgsSent) {
						if pred < 0 || e.T > predT {
							pred, predT = w, e.T
						}
					}
				}
			}
			if pred >= 0 {
				note = fmt.Sprintf("woken by worker %d", pred)
			}
		}
		rev = append(rev, Step{Worker: cur, Start: busyStart, End: t, Note: note})
		if !woken || pred < 0 || predT >= t {
			break // chain root reached, or no backward progress
		}
		cur, t = pred, predT
	}
	// Oldest first.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
