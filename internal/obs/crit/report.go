package crit

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteJSON renders the report as indented JSON. Output is a pure function
// of the report (floats in shortest round-trip form via the Buckets
// marshaller, struct field order fixed), so identical traces yield
// byte-identical documents.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable report: one attribution row per
// worker (bucket shares as percentages of the run window), the straggler,
// and the reconstructed critical path. Deterministic for identical traces.
func (r *Report) WriteText(w io.Writer) error {
	unit := func(v float64) string { return fmt.Sprintf("%.1f", v/1e3) }
	fmt.Fprintf(w, "straggler attribution: window %sms across %d workers", unit(r.Wall), len(r.Workers))
	if r.Dropped > 0 {
		fmt.Fprintf(w, " (WARNING: %d trace events dropped; early time reads as wait)", r.Dropped)
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "worker\twall_ms\t")
	for _, n := range bucketNames {
		fmt.Fprintf(tw, "%s%%\t", n)
	}
	fmt.Fprint(tw, "coverage\tspans\t\n")
	row := func(name string, wall float64, b Buckets, cov float64, spans int) {
		fmt.Fprintf(tw, "%s\t%s\t", name, unit(wall))
		for i := range bucketNames {
			pct := 0.0
			if wall > 0 {
				pct = 100 * b[i] / wall
			}
			fmt.Fprintf(tw, "%.1f\t", pct)
		}
		fmt.Fprintf(tw, "%.3f\t%d\t\n", cov, spans)
	}
	spans := 0
	for _, wr := range r.Workers {
		row(fmt.Sprintf("%d", wr.Worker), wr.Wall, wr.Buckets, wr.Coverage, wr.Spans)
		spans += wr.Spans
	}
	row("total", float64(len(r.Workers))*r.Wall, r.Totals, r.Coverage, spans)
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.Straggler >= 0 && r.Straggler < len(r.Workers) {
		b := r.Workers[r.Straggler].Buckets
		frac := 0.0
		if r.Wall > 0 {
			frac = 100 * b.Busy() / r.Wall
		}
		fmt.Fprintf(w, "straggler: worker %d (busy %sms, %.1f%% of window)\n",
			r.Straggler, unit(b.Busy()), frac)
	}
	if len(r.CriticalPath) > 0 {
		fmt.Fprintln(w, "critical path (oldest first):")
		for _, s := range r.CriticalPath {
			fmt.Fprintf(w, "  worker %d  [%sms .. %sms]  %s\n", s.Worker, unit(s.Start), unit(s.End), s.Note)
		}
	}
	return nil
}
