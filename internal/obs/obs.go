// Package obs is the observability layer of the GAP runtime: a pluggable
// event tracer plus a ring-buffered recorder that turns one run into a
// Chrome trace (one span track per worker, loadable in Perfetto) and CSV
// time series (η_i, φ_i, active-set size, mailbox depth over time).
//
// The design goal is a clean hot path: drivers hold a Tracer interface that
// is nil when tracing is off, so the disabled cost is a single nil check and
// no allocation per event site. Timestamps are supplied by the caller — the
// virtual-time simulator passes cost units, the live driver passes wall
// microseconds — so the same recorder serves both and sim traces are
// exactly reproducible (the determinism tests rely on this).
package obs

// Phase identifies a span kind on a worker's track. Spans nest: LocalEval
// contains the h_in/h_out handler spans of that round and any granularity
// adjustment that ran inside it.
type Phase uint8

const (
	// PhaseLocalEval is one LocalEval round (IncEval in Grape terms): from
	// h_in ingest to the f_term-triggered h_out flush.
	PhaseLocalEval Phase = iota
	// PhaseHin is the h_in handler: ingesting B⁺ into Ψ.
	PhaseHin
	// PhaseHout is the h_out handler: flushing one B⁻_j batch to a peer.
	PhaseHout
	// PhaseAdjust is one granularity adjustment (Algorithm 2 phase 2).
	PhaseAdjust
	// PhaseSuperstep is one superstep of the live BSP driver.
	PhaseSuperstep
	// PhaseRecovery spans a fault recovery: from failure detection to the
	// crashed worker's restart (rollback + state restore + replay).
	PhaseRecovery
	// PhaseCheckpoint spans one consistent-snapshot checkpoint.
	PhaseCheckpoint
	// PhaseReplay spans a localized recovery's message replay: from the
	// first survivor replaying its logged batches to the restored worker
	// until the last replayer drains (coordinator track).
	PhaseReplay
	// PhaseMerge spans the deterministic shard-merge of one sharded
	// local-evaluation wave (live driver, IntraParallelism > 1): the
	// single-threaded Set/Send/Activate publication after the pool joins.
	PhaseMerge
	// PhaseSpill spans a synchronous page-out to the spill tier (fragment
	// edge partitions under StageStream).
	PhaseSpill
	// PhaseThrottle spans one sender backpressure pause (degradation
	// rung 2, or log-retention pressure).
	PhaseThrottle

	numPhases = int(PhaseThrottle) + 1
)

func (p Phase) String() string {
	switch p {
	case PhaseLocalEval:
		return "LocalEval"
	case PhaseHin:
		return "h_in"
	case PhaseHout:
		return "h_out"
	case PhaseAdjust:
		return "Adjust"
	case PhaseSuperstep:
		return "superstep"
	case PhaseRecovery:
		return "recovery"
	case PhaseCheckpoint:
		return "checkpoint"
	case PhaseReplay:
		return "replay"
	case PhaseMerge:
		return "merge"
	case PhaseSpill:
		return "spill_io"
	case PhaseThrottle:
		return "throttle"
	}
	return "phase?"
}

// Counter identifies a monotone per-worker count; tracers receive deltas.
type Counter uint8

const (
	// CounterUpdates counts update-function (f_xv) invocations.
	CounterUpdates Counter = iota
	// CounterMsgsSent counts messages shipped to peers.
	CounterMsgsSent
	// CounterBytesSent counts shipped bytes.
	CounterBytesSent
	// CounterMsgsRecv counts messages ingested from B⁺.
	CounterMsgsRecv
	// CounterFlushes counts h_out batches.
	CounterFlushes
	// CounterReplayed counts logged batches re-delivered to a restored
	// worker by localized recovery.
	CounterReplayed
	// CounterRetransmits counts dropped batches redelivered by the async
	// retransmit path.
	CounterRetransmits
	// CounterForcedCkpts counts checkpoints forced out of turn by the
	// retention cap or the memory-pressure ladder (coordinator track).
	CounterForcedCkpts
	// CounterEtaReseeds counts post-recovery granularity reseeds
	// (coordinator track).
	CounterEtaReseeds

	numCounters = int(CounterEtaReseeds) + 1
)

func (c Counter) String() string {
	switch c {
	case CounterUpdates:
		return "updates"
	case CounterMsgsSent:
		return "msgs_sent"
	case CounterBytesSent:
		return "bytes_sent"
	case CounterMsgsRecv:
		return "msgs_recv"
	case CounterFlushes:
		return "flushes"
	case CounterReplayed:
		return "replayed"
	case CounterRetransmits:
		return "retransmits"
	case CounterForcedCkpts:
		return "forced_ckpts"
	case CounterEtaReseeds:
		return "eta_reseeds"
	}
	return "counter?"
}

// Gauge identifies a sampled per-worker value.
type Gauge uint8

const (
	// GaugeEta is the worker's granularity bound η_i after an adjustment.
	GaugeEta Gauge = iota
	// GaugePhi is the worker's computation effectiveness φ_i(η) as
	// estimated by the tuner sweep at adjustment time.
	GaugePhi
	// GaugeActive is |H_i|, the active-set size at a round boundary.
	GaugeActive
	// GaugeMailbox is the B⁺ depth (sim: buffered messages; live: queued
	// channel batches) at a delivery or round boundary.
	GaugeMailbox
	// GaugeTwEst is the tuner's estimated staleness T_w at adjustment.
	GaugeTwEst
	// GaugeTwReal is the real staleness T_w* (only with ground truth).
	GaugeTwReal
	// GaugeCandidates is the number of sweep candidates the adjustment
	// scanned (k for GAwD, the record count for GA).
	GaugeCandidates
	// GaugeLogSize is the number of batches retained in a worker's
	// sender-side message log at a sample point (localized recovery).
	GaugeLogSize
	// GaugeAcksOut is the number of survivor undo acknowledgements the
	// monitor is still waiting for during a localized recovery.
	GaugeAcksOut
	// GaugeMemUsed is the memory governor's accounted RAM usage in bytes
	// (including injected synthetic pressure), sampled by the monitor.
	GaugeMemUsed
	// GaugeMemSpilled is the bytes of governed state currently resident on
	// the spill tier (recovery logs, checkpoints, fragment edges).
	GaugeMemSpilled
	// GaugeMemStage is the governor's degradation-ladder stage (0 = ok,
	// 1 = forced-checkpoint, 2 = sender throttle, 3 = edge streaming).
	GaugeMemStage
	// GaugeMemPeak is the governor's high-water mark of accounted bytes,
	// sampled alongside GaugeMemUsed (coordinator track).
	GaugeMemPeak

	numGauges = int(GaugeMemPeak) + 1
)

func (g Gauge) String() string {
	switch g {
	case GaugeEta:
		return "eta"
	case GaugePhi:
		return "phi"
	case GaugeActive:
		return "active"
	case GaugeMailbox:
		return "mailbox"
	case GaugeTwEst:
		return "tw_est"
	case GaugeTwReal:
		return "tw_real"
	case GaugeCandidates:
		return "candidates"
	case GaugeLogSize:
		return "log_size"
	case GaugeAcksOut:
		return "acks_out"
	case GaugeMemUsed:
		return "mem_used"
	case GaugeMemSpilled:
		return "mem_spilled"
	case GaugeMemStage:
		return "mem_stage"
	case GaugeMemPeak:
		return "mem_peak"
	}
	return "gauge?"
}

// Mark identifies an instant event: the message-passing indicator flips and
// worker status transitions.
type Mark uint8

const (
	// MarkR1 fires when rule R1 flips ξ⁻ (forward to an idle peer).
	MarkR1 Mark = iota
	// MarkR2 fires when rule R2 flips ξ⁺ (last busy worker ingests).
	MarkR2
	// MarkR3 fires when rule R3 flips both indicators (η exceeded).
	MarkR3
	// MarkIdle fires when the worker reaches f_term with an empty B⁺.
	MarkIdle
	// MarkBusy fires when a delivery reactivates an idle worker.
	MarkBusy
	// MarkCrash fires on the worker's track when an injected fault kills it.
	MarkCrash
	// MarkDetect fires when the coordinator detects the failure.
	MarkDetect
	// MarkRestart fires when the recovered worker resumes execution.
	MarkRestart
	// MarkCkpt fires when the worker's state is captured in a checkpoint.
	MarkCkpt
	// MarkReplay fires when a survivor finishes replaying its logged
	// batches to a restored worker (localized recovery).
	MarkReplay
	// MarkEpoch fires on the coordinator track when a global rollback bumps
	// the cluster epoch; localized recoveries never emit it, which is how
	// the chaos soak asserts "zero global epoch bumps".
	MarkEpoch
	// MarkSpill fires on a worker's track when governed state pages out to
	// the spill tier (log entries, a checkpoint, or the fragment's edges).
	MarkSpill

	numMarks = int(MarkSpill) + 1
)

func (m Mark) String() string {
	switch m {
	case MarkR1:
		return "R1"
	case MarkR2:
		return "R2"
	case MarkR3:
		return "R3"
	case MarkIdle:
		return "idle"
	case MarkBusy:
		return "busy"
	case MarkCrash:
		return "crash"
	case MarkDetect:
		return "detect"
	case MarkRestart:
		return "restart"
	case MarkCkpt:
		return "ckpt"
	case MarkReplay:
		return "replay"
	case MarkEpoch:
		return "epoch"
	case MarkSpill:
		return "spill"
	}
	return "mark?"
}

// Tracer is the instrumentation hook held by the drivers. Implementations
// must tolerate calls from multiple goroutines as long as each worker id is
// used by at most one goroutine at a time (the live driver's discipline);
// cross-worker calls may be concurrent. Timestamps are monotone per worker
// except for deliveries, which may be stamped slightly in the past of the
// receiving worker's cursor (the recorder clamps these on export).
type Tracer interface {
	// SpanBegin opens a phase span on the worker's track at time t.
	SpanBegin(worker int, p Phase, t float64)
	// SpanEnd closes the innermost open span of the phase.
	SpanEnd(worker int, p Phase, t float64)
	// Count adds delta to a monotone counter at time t.
	Count(worker int, c Counter, t float64, delta int64)
	// Sample records a gauge value at time t.
	Sample(worker int, g Gauge, t float64, v float64)
	// Mark records an instant event at time t.
	Mark(worker int, m Mark, t float64)
}

// Nop is a Tracer that drops everything; useful when a call site needs a
// non-nil tracer but the run is untraced.
type Nop struct{}

func (Nop) SpanBegin(int, Phase, float64)      {}
func (Nop) SpanEnd(int, Phase, float64)        {}
func (Nop) Count(int, Counter, float64, int64) {}
func (Nop) Sample(int, Gauge, float64, float64) {
}
func (Nop) Mark(int, Mark, float64) {}

var _ Tracer = Nop{}

// AllPhases, AllCounters, AllGauges and AllMarks enumerate the event
// vocabularies in code order, for exporters (the telemetry plane, the
// critical-path analyzer) that must cover every series without hard-coding
// the constants.
func AllPhases() []Phase {
	ps := make([]Phase, numPhases)
	for i := range ps {
		ps[i] = Phase(i)
	}
	return ps
}

func AllCounters() []Counter {
	cs := make([]Counter, numCounters)
	for i := range cs {
		cs[i] = Counter(i)
	}
	return cs
}

func AllGauges() []Gauge {
	gs := make([]Gauge, numGauges)
	for i := range gs {
		gs[i] = Gauge(i)
	}
	return gs
}

func AllMarks() []Mark {
	ms := make([]Mark, numMarks)
	for i := range ms {
		ms[i] = Mark(i)
	}
	return ms
}
