package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ftoa renders a float the same way on every run/platform (shortest
// round-trip form), which is what makes sim-driver exports byte-identical
// across runs with the same config and seed.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteChromeTrace renders the retained events as Chrome trace-event JSON
// (the "JSON array format" understood by Perfetto and chrome://tracing):
// one pid for the run, one tid (track) per worker carrying the nested
// LocalEval/h_in/h_out/Adjust spans, counter tracks for the monotone
// counters and gauges, and instant events for the indicator flips.
//
// Virtual cost units (sim driver) are exported 1:1 as microseconds, so a
// span of cost 64 reads as 64 µs in the viewer. Timestamps are clamped to
// be monotone per worker: deliveries may be stamped slightly before the
// receiving worker's cursor (see Tracer), and trace viewers require
// in-order begin/end pairs per track.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"gap"}}`)
	n := r.Workers()
	for i := 0; i < n; i++ {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"worker %d"}}`, i, i))
	}
	// Ring overwrites truncated the oldest events: say so in the trace
	// itself, so a clipped Perfetto view is never mistaken for a short run.
	if d := r.Dropped(); d > 0 {
		emit(fmt.Sprintf(`{"name":"dropped_events","ph":"M","pid":0,"tid":0,"args":{"dropped":%d}}`, d))
	}
	for i := 0; i < n; i++ {
		var cum [numCounters]int64
		last := 0.0
		open := 0
		for _, e := range r.Events(i) {
			ts := e.T
			if ts < last {
				ts = last
			}
			last = ts
			switch e.Kind {
			case KindSpanBegin:
				emit(fmt.Sprintf(`{"name":%q,"ph":"B","pid":0,"tid":%d,"ts":%s}`, Phase(e.Code).String(), i, ftoa(ts)))
				open++
			case KindSpanEnd:
				// The ring may have evicted the matching begin; dropping the
				// orphan end keeps the track well-nested.
				if open == 0 {
					continue
				}
				open--
				emit(fmt.Sprintf(`{"name":%q,"ph":"E","pid":0,"tid":%d,"ts":%s}`, Phase(e.Code).String(), i, ftoa(ts)))
			case KindCounter:
				c := Counter(e.Code)
				cum[c] += int64(e.Value)
				emit(fmt.Sprintf(`{"name":%q,"ph":"C","pid":0,"tid":%d,"ts":%s,"args":{%q:%d}}`,
					c.String(), i, ftoa(ts), c.String(), cum[c]))
			case KindGauge:
				g := Gauge(e.Code)
				if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
					continue // ±Inf/NaN (η of FG⁺) is not valid JSON
				}
				emit(fmt.Sprintf(`{"name":%q,"ph":"C","pid":0,"tid":%d,"ts":%s,"args":{%q:%s}}`,
					g.String(), i, ftoa(ts), g.String(), ftoa(e.Value)))
			case KindMark:
				emit(fmt.Sprintf(`{"name":%q,"ph":"i","pid":0,"tid":%d,"ts":%s,"s":"t"}`, Mark(e.Code).String(), i, ftoa(ts)))
			}
		}
		// Close spans left open by an aborted or truncated run so the
		// viewer does not extend them to infinity.
		for ; open > 0; open-- {
			emit(fmt.Sprintf(`{"name":"(truncated)","ph":"E","pid":0,"tid":%d,"ts":%s}`, i, ftoa(last)))
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSV renders the gauge samples and counters as a long-format CSV time
// series: time,worker,series,value — one row per sample, counters
// cumulative. This is the input for η/φ/active-set trajectory plots
// (Fig. 7/8 style): filter series=="eta" or "phi" and facet by worker.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time,worker,series,value\n"); err != nil {
		return err
	}
	n := r.Workers()
	for i := 0; i < n; i++ {
		var cum [numCounters]int64
		last := 0.0
		for _, e := range r.Events(i) {
			if e.T > last {
				last = e.T
			}
			switch e.Kind {
			case KindGauge:
				fmt.Fprintf(bw, "%s,%d,%s,%s\n", ftoa(e.T), i, Gauge(e.Code).String(), ftoa(e.Value))
			case KindCounter:
				c := Counter(e.Code)
				cum[c] += int64(e.Value)
				fmt.Fprintf(bw, "%s,%d,%s,%d\n", ftoa(e.T), i, c.String(), cum[c])
			}
		}
		// A worker whose ring wrapped exports a final "dropped" row: the
		// series above are incomplete and downstream plots should know.
		if d := r.DroppedOf(i); d > 0 {
			fmt.Fprintf(bw, "%s,%d,dropped,%d\n", ftoa(last), i, d)
		}
	}
	return bw.Flush()
}
