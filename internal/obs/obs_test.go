package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2, 0)
	r.SpanBegin(0, PhaseLocalEval, 0)
	r.SpanBegin(0, PhaseHin, 1)
	r.SpanEnd(0, PhaseHin, 3)
	r.Count(0, CounterUpdates, 4, 10)
	r.Count(0, CounterUpdates, 5, 7)
	r.Sample(0, GaugeEta, 6, 64)
	r.Mark(0, MarkR3, 7)
	r.SpanEnd(0, PhaseLocalEval, 8)
	r.Sample(1, GaugePhi, 2, 0.5)

	ev := r.Events(0)
	if len(ev) != 8 {
		t.Fatalf("worker 0: got %d events, want 8", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].T < ev[i-1].T {
			t.Fatalf("events out of order at %d: %v", i, ev)
		}
	}
	st := r.Snapshot()
	if len(st.Workers) != 2 {
		t.Fatalf("snapshot workers = %d, want 2", len(st.Workers))
	}
	w0 := st.Workers[0]
	if w0.Updates != 17 {
		t.Errorf("updates = %d, want 17", w0.Updates)
	}
	if !w0.HasEta || w0.Eta != 64 {
		t.Errorf("eta = %v (has %v), want 64", w0.Eta, w0.HasEta)
	}
	if w0.T != 8 {
		t.Errorf("last t = %v, want 8", w0.T)
	}
	if !st.Workers[1].HasPhi || st.Workers[1].Phi != 0.5 {
		t.Errorf("worker 1 phi = %+v", st.Workers[1])
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(1, 8)
	for i := 0; i < 20; i++ {
		r.Count(0, CounterUpdates, float64(i), 1)
	}
	ev := r.Events(0)
	if len(ev) != 8 {
		t.Fatalf("retained %d, want 8", len(ev))
	}
	if ev[0].T != 12 || ev[7].T != 19 {
		t.Fatalf("wrong window: first %v last %v", ev[0].T, ev[7].T)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	// The status view survives eviction: counters stay cumulative.
	if st := r.Snapshot(); st.Workers[0].Updates != 20 {
		t.Fatalf("updates = %d, want 20", st.Workers[0].Updates)
	}
}

func TestRecorderLazyWorkerGrowth(t *testing.T) {
	r := NewRecorder(0, 16)
	r.Mark(3, MarkIdle, 1)
	if r.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", r.Workers())
	}
	if !r.Snapshot().Workers[3].Idle {
		t.Fatal("worker 3 should be idle")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := NewRecorder(2, 0)
	r.SpanBegin(0, PhaseLocalEval, 0)
	r.SpanBegin(0, PhaseHout, 2.5)
	r.SpanEnd(0, PhaseHout, 3.25)
	r.Mark(0, MarkR1, 3.5)
	r.Count(0, CounterMsgsSent, 3.5, 12)
	r.SpanEnd(0, PhaseLocalEval, 4)
	r.Sample(1, GaugeEta, 1, 128)
	// Leave a span open on worker 1: the exporter must close it.
	r.SpanBegin(1, PhaseLocalEval, 2)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	begins, ends := 0, 0
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins != ends {
		t.Fatalf("unbalanced spans: %d begins, %d ends", begins, ends)
	}
	if !strings.Contains(buf.String(), `"thread_name"`) {
		t.Fatal("missing thread_name metadata")
	}
}

func TestChromeTraceClampsRegressingTimestamps(t *testing.T) {
	r := NewRecorder(1, 0)
	r.SpanBegin(0, PhaseLocalEval, 10)
	r.Mark(0, MarkBusy, 4) // delivery stamped before the worker's cursor
	r.SpanEnd(0, PhaseLocalEval, 12)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ts":10,"s":"t"`) {
		t.Fatalf("mark not clamped to span begin:\n%s", buf.String())
	}
}

func TestCSVCumulativeCounters(t *testing.T) {
	r := NewRecorder(1, 0)
	r.Count(0, CounterUpdates, 1, 5)
	r.Count(0, CounterUpdates, 2, 5)
	r.Sample(0, GaugePhi, 3, 0.75)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time,worker,series,value\n1,0,updates,5\n2,0,updates,10\n3,0,phi,0.75\n"
	if buf.String() != want {
		t.Fatalf("csv mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestRecorderConcurrentWorkers(t *testing.T) {
	r := NewRecorder(8, 1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Count(w, CounterUpdates, float64(i), 1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	st := r.Snapshot()
	for w := 0; w < 8; w++ {
		if st.Workers[w].Updates != 500 {
			t.Fatalf("worker %d updates = %d, want 500", w, st.Workers[w].Updates)
		}
	}
}
