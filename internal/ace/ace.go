// Package ace defines the paper's ACE programming model (§II-A): local
// computation over a fragment is expressed as fixpoint iterations of
// per-vertex update functions f_xv over status variables x_v, with an
// aggregate function g_aggr merging remote updates. Because the runtime can
// pause between any two update batches to ingest or forward messages, one
// ACE program runs unchanged at every granularity from vertex-centric to
// whole-subgraph batches — granularity is owned by the parallel model
// (package gap), not by user code.
package ace

import (
	"fmt"

	"argan/internal/graph"
)

// Category classifies an algorithm by the access pattern of its status
// variables (paper §III-C, Table III); the category selects the staleness
// function τ used by granularity adjustment.
type Category int

const (
	// CategoryI — PAF sequentially and in parallel (Sim, peeling Core):
	// τ = 0, no staleness is possible.
	CategoryI Category = iota + 1
	// CategoryII — PAF sequentially, PBF in parallel (Dijkstra SSSP, BFS,
	// WCC, Borůvka MST, Color): an update is entirely stale when the value
	// it produced is later overridden (Eq. 8).
	CategoryII
	// CategoryIII — PBF in both (Δ-PageRank, h-index Core, Bellman-Ford,
	// SimRank): staleness is the residual-change fraction of the update
	// cost (Eq. 9).
	CategoryIII
)

func (c Category) String() string {
	switch c {
	case CategoryI:
		return "I"
	case CategoryII:
		return "II"
	case CategoryIII:
		return "III"
	}
	return "?"
}

// DepKind declares which status variables form Y_xv, the inputs of the
// update function, which in turn determines message routing: whose replicas
// must learn about a change, and which vertices to re-activate when a value
// changes.
type DepKind int

const (
	// DepIn: Y_xv is the in-neighborhood (pull along incoming edges);
	// changes to x_v re-activate out-neighbors and are shipped to the
	// workers owning out-neighbors of v.
	DepIn DepKind = iota
	// DepOut: Y_xv is the out-neighborhood (pull along outgoing edges, e.g.
	// graph simulation reads successor status).
	DepOut
	// DepSelf: the program pushes explicit deltas to neighbors via
	// Ctx.Send; an incoming message re-activates its target only.
	DepSelf
	// DepBoth: Y_xv is the full neighborhood regardless of direction
	// (coloring on directed graphs); changes propagate both ways.
	DepBoth
)

// Query carries the per-run input Q broadcast by the coordinator at start.
type Query struct {
	// Source is the source vertex for traversal queries (SSSP, BFS).
	Source graph.VID
	// Eps is a convergence threshold (Δ-PageRank).
	Eps float64
	// Pattern is the labeled query pattern for graph simulation.
	Pattern *graph.Graph
	// Args carries any extra scalar parameters.
	Args map[string]float64
	// Warm, when non-nil, is a *WarmState[V] for the program's value type:
	// a prior fixpoint to re-converge from instead of the cold start.
	// Programs that understand warm starts read it in Setup/InitValue; the
	// dynamic type is checked with WarmOf, so a mismatched V falls back to
	// cold init rather than failing.
	Warm any
}

// WarmState is a prior fixpoint handed to a program through Query.Warm for
// incremental re-convergence. All slices are global-vertex indexed; the
// incremental planners (internal/algorithms) construct it from a previous
// Result plus the mutation batch that separates the two graph versions.
type WarmState[V any] struct {
	// Values holds the converged Ψ per global vertex, already adjusted by
	// the planner for the mutation (dirty SSSP distances reset to +Inf,
	// Δ-PageRank re-seed corrections folded into the pending deltas).
	Values []V
	// Active marks the vertices the scheduler must start from. A vertex not
	// marked active starts parked at its warm value.
	Active []bool
	// Aux is program-private auxiliary state captured at the prior fixpoint
	// (e.g. Δ-PageRank's accumulated rank array), pre-adjusted by the
	// planner where needed.
	Aux any
}

// WarmOf extracts the warm state from a query if it carries one of the
// right value type.
func WarmOf[V any](q Query) *WarmState[V] {
	w, _ := q.Warm.(*WarmState[V])
	return w
}

// Validate checks the state's shape against the vertex count of the graph
// it is about to seed. Warm states built from a just-completed run are
// correct by construction, but a service that persists fixpoints across
// restarts re-derives them from disk — Validate is the gate that keeps a
// stale or corrupt reseed from indexing out of bounds deep inside the
// engine. A nil state is valid (cold start).
func (w *WarmState[V]) Validate(n int) error {
	if w == nil {
		return nil
	}
	if len(w.Values) != n {
		return fmt.Errorf("ace: warm state carries %d values for a %d-vertex graph", len(w.Values), n)
	}
	if w.Active != nil && len(w.Active) != n {
		return fmt.Errorf("ace: warm state carries %d active marks for a %d-vertex graph", len(w.Active), n)
	}
	return nil
}

// Arg returns Args[k] or def when absent.
func (q Query) Arg(k string, def float64) float64 {
	if v, ok := q.Args[k]; ok {
		return v
	}
	return def
}

// Ctx is the engine-provided view an update function works through: the
// fragment, the status variables Ψ_i, and the channels by which changes
// leave the update function (publish, scatter, activate). All methods must
// be called only from within Program callbacks.
type Ctx[V any] struct {
	frag *graph.Fragment
	psi  []V

	set      func(local uint32, v V)
	send     func(local uint32, d V)
	activate func(local uint32)
}

// NewCtx wires a context; used by the engine (and by tests of programs).
func NewCtx[V any](f *graph.Fragment, psi []V,
	set func(uint32, V), send func(uint32, V), activate func(uint32)) *Ctx[V] {
	return &Ctx[V]{frag: f, psi: psi, set: set, send: send, activate: activate}
}

// Frag returns the fragment being computed over.
func (c *Ctx[V]) Frag() *graph.Fragment { return c.frag }

// Get reads the status variable of a local vertex.
func (c *Ctx[V]) Get(local uint32) V { return c.psi[local] }

// Psi exposes the whole status slice (read-only use).
func (c *Ctx[V]) Psi() []V { return c.psi }

// Set publishes a new value for the *owned* vertex the update function is
// responsible for. The engine stores it, forwards ⟨v, x_v⟩ to v's replicas,
// and re-activates dependents according to the program's DepKind.
func (c *Ctx[V]) Set(local uint32, v V) { c.set(local, v) }

// Send scatters a delta toward a vertex (DepSelf programs): local targets
// are aggregated immediately, ghost targets are buffered for their owner.
func (c *Ctx[V]) Send(local uint32, d V) { c.send(local, d) }

// Activate re-inserts an owned vertex into the active set H.
func (c *Ctx[V]) Activate(local uint32) { c.activate(local) }

// Program is a parallel ACE program ρ. One instance is created per worker
// (programs may hold per-fragment auxiliary state).
type Program[V any] interface {
	// Name identifies the program ("sssp", "pr", ...).
	Name() string
	// Category selects the staleness function τ (§III-C).
	Category() Category
	// Deps declares the shape of Y_xv (see DepKind).
	Deps() DepKind

	// Setup is called once per worker before initialization; programs
	// allocate auxiliary per-vertex state here.
	Setup(f *graph.Fragment, q Query)
	// InitValue returns the initial status variable of a local vertex and
	// whether the vertex starts in the active set (ghosts are never
	// activated regardless).
	InitValue(f *graph.Fragment, local uint32, q Query) (V, bool)
	// Update is the update function f_xv applied to an owned active vertex.
	// It reads Y_xv through ctx.Get and emits changes via ctx.Set/Send.
	Update(ctx *Ctx[V], local uint32)
	// Aggregate is g_aggr: it merges an incoming value into the current one
	// and reports whether the result differs (h_in only acts on changes).
	Aggregate(cur, in V) (V, bool)

	// Equal reports value equality; drives Category II staleness and
	// correctness checks.
	Equal(a, b V) bool
	// Delta returns |a-b|, the change magnitude; drives Category III
	// staleness (Eq. 9).
	Delta(a, b V) float64
	// Size estimates the wire size of a value in bytes for the network
	// cost model.
	Size(v V) int
	// Output extracts the answer for an owned vertex once the fixpoint is
	// reached (usually just the status variable).
	Output(ctx *Ctx[V], local uint32) V
}

// InitialSyncer is an optional Program extension: when InitialSync reports
// true, the runtime ships every border vertex's initial value to its
// replicas before computation starts. Pull-style programs whose owned
// initial values cannot be derived locally at the replica side (e.g. Core's
// x_v = deg(v)) require this.
type InitialSyncer interface {
	InitialSync() bool
}

// Checkpointer is an optional Program extension for programs that hold
// mutable auxiliary state outside the status variables Ψ (e.g. PageRank's
// accumulated rank vector). The fault-tolerance layer snapshots that state
// alongside Ψ at each checkpoint and restores it on rollback; without it,
// only Ψ and the active set are captured, which is sufficient for programs
// whose entire mutable state lives in Ψ.
type Checkpointer interface {
	// SnapshotAux returns a deep copy of the program's auxiliary state.
	SnapshotAux() any
	// RestoreAux restores state previously returned by SnapshotAux. The
	// argument may be restored more than once, so implementations must not
	// alias it into mutable state — copy out of it.
	RestoreAux(snap any)
}

// IdempotentAggregator is an optional Program extension declaring that
// Aggregate is idempotent: folding the same incoming value into Ψ twice
// leaves the same result as folding it once (min/max-style lattice joins).
// Localized recovery uses this to decide how to repair a survivor that
// ingested messages from a rolled-back sender — idempotent programs simply
// re-ingest the replayed stream, while non-idempotent ones need Inverter.
type IdempotentAggregator interface {
	IdempotentAggregate() bool
}

// Inverter is an optional Program extension for accumulation-style programs
// (sum folds such as Δ-PageRank): Invert returns cur with one previously
// aggregated contribution removed, i.e. Invert(Aggregate(cur, in), in) ==
// cur. Localized recovery uses it to un-apply the post-checkpoint messages a
// rolled-back sender will re-send, so the replay cannot double-count. The
// checkpoint delta hook: programs that are neither idempotent nor
// invertible force the driver back to global rollback.
type Inverter[V any] interface {
	Invert(cur, contrib V) V
}

// CanIncrement reports whether a program is safe to re-converge
// incrementally from a warm fixpoint after an edge mutation: it must either
// be able to retract a stale contribution (Inverter) or tolerate re-ingesting
// one (idempotent lattice join). Programs with neither property fall back to
// a flagged full recompute — restarting them from a stale Ψ could
// double-count retracted mass.
func CanIncrement[V any](prog Program[V]) bool {
	if _, ok := any(prog).(Inverter[V]); ok {
		return true
	}
	if ia, ok := any(prog).(IdempotentAggregator); ok {
		return ia.IdempotentAggregate()
	}
	return false
}

// Coster is an optional Program extension overriding the default update
// cost model (deg(Y_xv) + 1 edge-scan units).
type Coster interface {
	Cost(f *graph.Fragment, local uint32) float64
}

// Combiner is an optional Program extension: a pure, associative and
// commutative fold the runtime applies to coalesce two values addressed to
// the same vertex inside one outgoing batch (min for SSSP/BFS/WCC, sum for
// Δ-PageRank), shrinking cross-worker traffic before h_out. Unlike
// Aggregate it carries no changed flag and must not touch program state.
// When absent, the runtime coalesces through Aggregate instead.
type Combiner[V any] interface {
	Combine(a, b V) V
}

// ShardSafe is an optional Program extension marking Update as safe for
// intra-worker sharded evaluation: when ShardSafe reports true, the runtime
// may invoke Update concurrently for distinct vertices of the same program
// instance, provided every Ctx effect is buffered (the sharded evaluator
// buffers Set/Send/Activate and merges them in shard order). A conforming
// Update only reads Ψ and the fragment, and only writes per-vertex
// auxiliary state of the vertex being updated.
type ShardSafe interface {
	ShardSafe() bool
}

// Prioritizer is an optional Program extension: when implemented, the
// engine's active set becomes a priority queue popping the smallest
// priority first (parallelized Dijkstra processes nearest vertices first).
type Prioritizer[V any] interface {
	Priority(v V) float64
}

// UpdateCost returns the modeled cost of one f_xv invocation: |Y_xv| + 1
// edge scans (the paper's GAwD estimate for fixed-size values), honoring a
// Coster override.
func UpdateCost[V any](p Program[V], f *graph.Fragment, local uint32) float64 {
	if c, ok := p.(Coster); ok {
		return c.Cost(f, local)
	}
	switch p.Deps() {
	case DepIn:
		return float64(f.InDegree(local)) + 1
	case DepOut:
		return float64(f.OutDegree(local)) + 1
	case DepBoth:
		return float64(f.InDegree(local)+f.OutDegree(local)) + 1
	default: // DepSelf scatters along out-edges
		return float64(f.OutDegree(local)) + 1
	}
}

// Message is one ⟨v, x_v⟩ pair in flight. V is the vertex's *global* id so
// that it survives crossing fragments.
type Message[V any] struct {
	V   graph.VID
	Val V
}

// Batch is a set of messages M_{i,j} travelling together, with enough
// metadata for the cost model.
type Batch[V any] struct {
	From  int
	To    int
	Msgs  []Message[V]
	Bytes int
}

// Factory builds a fresh program instance for one worker.
type Factory[V any] func() Program[V]
