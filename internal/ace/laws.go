package ace

import "fmt"

// This file implements the convergence conditions of §II-B: GAP guarantees
// asynchronous convergence when LocalEval is monotone with respect to the
// partial results, which for the derived programs of §IV reduces to
// algebraic laws of the aggregate function g_aggr. CheckLaws verifies them
// over caller-supplied sample values, turning the paper's proof obligation
// into an executable property check (used by the test suite over random
// samples for every built-in program).

// Laws describes which algebraic properties a program's aggregation must
// satisfy for asynchronous convergence.
type Laws struct {
	// Commutative: g(a,b) == g(b,a) — message arrival order is irrelevant.
	Commutative bool
	// Associative: g(g(a,b),c) == g(a,g(b,c)) — batching is irrelevant.
	Associative bool
	// Idempotent: g(a,a) == a — duplicated delivery is harmless. Holds for
	// the selection-style aggregates (min/and/replace), not for the
	// accumulative ones (Δ-PageRank's sum), which instead rely on
	// exactly-once delivery.
	Idempotent bool
	// Monotone: repeated aggregation never moves a value "backwards"
	// (g(a,b) ⊑ a in the program's order) — the fixpoint is approached from
	// one side, the core §II-B condition.
	Monotone bool
}

// SelectionLaws are the laws satisfied by min/intersection-style programs
// (SSSP, BFS, WCC, Core, Sim).
func SelectionLaws() Laws {
	return Laws{Commutative: true, Associative: true, Idempotent: true, Monotone: true}
}

// AccumulationLaws are the laws satisfied by sum-style programs
// (Δ-PageRank): order-insensitive but not idempotent.
func AccumulationLaws() Laws {
	return Laws{Commutative: true, Associative: true, Monotone: true}
}

// ReplacementLaws are the laws of single-writer replace-style programs
// (Color): neither commutative nor monotone across writers, correct only
// because each status variable has a unique writer and links are FIFO.
func ReplacementLaws() Laws { return Laws{Idempotent: true} }

// CheckLaws verifies the declared laws of the program's Aggregate over the
// given sample values. leq is the program's partial order (nil skips the
// monotonicity check). It returns the first violated law.
func CheckLaws[V any](p Program[V], laws Laws, leq func(a, b V) bool, samples []V) error {
	agg := func(a, b V) V {
		v, _ := p.Aggregate(a, b)
		return v
	}
	for _, a := range samples {
		for _, b := range samples {
			if laws.Commutative {
				if !p.Equal(agg(a, b), agg(b, a)) {
					return fmt.Errorf("ace: %s: aggregate not commutative at (%v,%v)", p.Name(), a, b)
				}
			}
			if laws.Monotone && leq != nil {
				if !leq(agg(a, b), a) {
					return fmt.Errorf("ace: %s: aggregate not monotone at (%v,%v)", p.Name(), a, b)
				}
			}
			for _, c := range samples {
				if laws.Associative {
					if !p.Equal(agg(agg(a, b), c), agg(a, agg(b, c))) {
						return fmt.Errorf("ace: %s: aggregate not associative at (%v,%v,%v)", p.Name(), a, b, c)
					}
				}
			}
		}
		if laws.Idempotent {
			if !p.Equal(agg(a, a), a) {
				return fmt.Errorf("ace: %s: aggregate not idempotent at %v", p.Name(), a)
			}
		}
	}
	return nil
}
