package ace

import (
	"testing"

	"argan/internal/graph"
)

type fakeProg struct {
	deps DepKind
}

func (p *fakeProg) Name() string                                           { return "fake" }
func (p *fakeProg) Category() Category                                     { return CategoryII }
func (p *fakeProg) Deps() DepKind                                          { return p.deps }
func (p *fakeProg) Setup(*graph.Fragment, Query)                           {}
func (p *fakeProg) InitValue(*graph.Fragment, uint32, Query) (int32, bool) { return 0, false }
func (p *fakeProg) Update(*Ctx[int32], uint32)                             {}
func (p *fakeProg) Aggregate(cur, in int32) (int32, bool)                  { return in, cur != in }
func (p *fakeProg) Equal(a, b int32) bool                                  { return a == b }
func (p *fakeProg) Delta(a, b int32) float64                               { return 0 }
func (p *fakeProg) Size(int32) int                                         { return 4 }
func (p *fakeProg) Output(c *Ctx[int32], l uint32) int32                   { return c.Get(l) }

type costedProg struct{ fakeProg }

func (p *costedProg) Cost(*graph.Fragment, uint32) float64 { return 42 }

func testFragment(t *testing.T) *graph.Fragment {
	t.Helper()
	// 0 -> 1 -> 2, 2 -> 0; one worker.
	g := graph.NewBuilder(3, true).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0).MustBuild()
	frags, err := graph.BuildFragments(g, make([]uint16, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	return frags[0]
}

func TestCategoryStrings(t *testing.T) {
	if CategoryI.String() != "I" || CategoryII.String() != "II" || CategoryIII.String() != "III" {
		t.Fatal("category strings wrong")
	}
	if Category(9).String() != "?" {
		t.Fatal("unknown category string wrong")
	}
}

func TestQueryArg(t *testing.T) {
	q := Query{Args: map[string]float64{"k": 3}}
	if q.Arg("k", 7) != 3 || q.Arg("missing", 7) != 7 {
		t.Fatal("Arg lookup wrong")
	}
	if (Query{}).Arg("x", 1.5) != 1.5 {
		t.Fatal("nil-args default wrong")
	}
}

func TestUpdateCostByDeps(t *testing.T) {
	f := testFragment(t)
	l0, _ := f.Local(0)
	// Vertex 0: in-degree 1 (from 2), out-degree 1 (to 1).
	for _, c := range []struct {
		deps DepKind
		want float64
	}{
		{DepIn, 2}, {DepOut, 2}, {DepSelf, 2}, {DepBoth, 3},
	} {
		p := &fakeProg{deps: c.deps}
		if got := UpdateCost[int32](p, f, l0); got != c.want {
			t.Fatalf("deps %v: cost %v, want %v", c.deps, got, c.want)
		}
	}
}

func TestUpdateCostOverride(t *testing.T) {
	f := testFragment(t)
	p := &costedProg{}
	if got := UpdateCost[int32](p, f, 0); got != 42 {
		t.Fatalf("Coster override ignored: %v", got)
	}
}

func TestCtxAccessors(t *testing.T) {
	f := testFragment(t)
	psi := []int32{10, 20, 30}
	var setL uint32
	var setV int32
	var sent, activated []uint32
	ctx := NewCtx(f, psi,
		func(l uint32, v int32) { setL, setV = l, v },
		func(l uint32, d int32) { sent = append(sent, l) },
		func(l uint32) { activated = append(activated, l) })
	if ctx.Frag() != f || ctx.Get(1) != 20 || len(ctx.Psi()) != 3 {
		t.Fatal("ctx reads wrong")
	}
	ctx.Set(2, 99)
	ctx.Send(1, 5)
	ctx.Activate(0)
	if setL != 2 || setV != 99 || len(sent) != 1 || sent[0] != 1 || len(activated) != 1 {
		t.Fatal("ctx dispatch wrong")
	}
}
