package ace

import (
	"strings"
	"testing"
)

// TestWarmStateValidate: shape checks for warm state that may have come off
// disk (durable recovery) rather than out of a live run.
func TestWarmStateValidate(t *testing.T) {
	var nilWS *WarmState[float64]
	if err := nilWS.Validate(10); err != nil {
		t.Fatalf("nil warm state: %v", err)
	}
	ok := &WarmState[float64]{Values: make([]float64, 10)}
	if err := ok.Validate(10); err != nil {
		t.Fatalf("matching values: %v", err)
	}
	okActive := &WarmState[float64]{Values: make([]float64, 10), Active: make([]bool, 10)}
	if err := okActive.Validate(10); err != nil {
		t.Fatalf("matching values+active: %v", err)
	}
	short := &WarmState[float64]{Values: make([]float64, 7)}
	if err := short.Validate(10); err == nil || !strings.Contains(err.Error(), "7 values") {
		t.Fatalf("short values: %v", err)
	}
	badActive := &WarmState[float64]{Values: make([]float64, 10), Active: make([]bool, 4)}
	if err := badActive.Validate(10); err == nil || !strings.Contains(err.Error(), "4 active") {
		t.Fatalf("short active: %v", err)
	}
}
