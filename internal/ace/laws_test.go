package ace

import (
	"strings"
	"testing"

	"argan/internal/graph"
)

// badProg's aggregate is subtraction: fails every law, so each check path
// is exercised.
type badProg struct{ fakeProg }

func (p *badProg) Aggregate(cur, in int32) (int32, bool) { return cur - in, true }

// addProg's aggregate is addition: order-insensitive but neither
// idempotent nor monotone under <=.
type addProg struct{ fakeProg }

func (p *addProg) Aggregate(cur, in int32) (int32, bool) { return cur + in, true }

// replaceProg's aggregate is last-writer-wins: idempotent only.
type replaceProg struct{ fakeProg }

func (p *replaceProg) Aggregate(cur, in int32) (int32, bool) { return in, cur != in }

func TestCheckLawsViolations(t *testing.T) {
	samples := []int32{0, 1, 5, 7}
	leq := func(a, b int32) bool { return a <= b }
	bad := &badProg{}
	cases := []struct {
		laws Laws
		want string
	}{
		{Laws{Commutative: true}, "not commutative"},
		{Laws{Associative: true}, "not associative"},
		{Laws{Idempotent: true}, "not idempotent"},
		{Laws{Monotone: true}, "not monotone"},
	}
	for _, c := range cases {
		var p Program[int32] = bad
		if c.laws.Monotone {
			p = &addProg{} // subtraction is monotone on non-negative samples
		}
		err := CheckLaws[int32](p, c.laws, leq, samples)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("laws %+v: got %v, want %q", c.laws, err, c.want)
		}
	}
}

func TestCheckLawsPasses(t *testing.T) {
	rp := &replaceProg{}
	if err := CheckLaws[int32](rp, ReplacementLaws(), nil, []int32{1, 2, 9}); err != nil {
		t.Fatal(err)
	}
	// Monotone check skipped without a partial order.
	if err := CheckLaws[int32](&addProg{}, Laws{Monotone: true}, nil, []int32{1, 2}); err != nil {
		t.Fatal("monotone check must be skipped with nil leq")
	}
	if !SelectionLaws().Idempotent || AccumulationLaws().Idempotent {
		t.Fatal("canned law sets wrong")
	}
}

func TestMessageBatchTypes(t *testing.T) {
	b := Batch[int32]{From: 1, To: 2, Msgs: []Message[int32]{{V: graph.VID(7), Val: 9}}, Bytes: 12}
	if b.Msgs[0].V != 7 || b.Msgs[0].Val != 9 || b.Bytes != 12 {
		t.Fatalf("batch fields wrong: %+v", b)
	}
}
