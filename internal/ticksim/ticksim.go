// Package ticksim reproduces the execution-trace model of the paper's §I
// (Table I): time advances in unit ticks; in one tick a worker either scans
// a single edge (updating the tentative distance of the edge's target) or
// ejects its queued messages ("X"), which arrive at the next tick. Four
// scheduling policies mirror the compared model combinations: BSP & GC,
// AAP & GC, AP & VC, and GAP & ACE with granularity bound η.
//
// The paper's Figures 1–2 (the 10-edge example graph and its 3-way
// partition) are not part of the provided text, so the graph here is a
// reconstruction engineered to exhibit the same phenomena the table
// narrates: P1 starts alone (straggler), P2's work depends on P1's first
// message, P3 scans stale values that later messages override, and finer
// ingestion (AP/GAP) removes re-scans while GAP additionally batches
// messages and wakes idle workers early.
package ticksim

import (
	"fmt"
	"math"
	"strings"
)

// Edge is a named weighted edge of the example. Edges are scanned by the
// worker owning their target vertex (pull-style graph-centric SSSP).
type Edge struct {
	Name     string
	Src, Dst int
	W        float64
}

// Example is a tick-simulation instance.
type Example struct {
	NumVertices int
	Edges       []Edge
	Owner       []int // vertex -> worker
	Workers     int
	Source      int
}

// PaperExample returns the reconstructed running example: SSSP from v1
// (vertex 0) over a 10-edge digraph partitioned across 3 workers.
func PaperExample() *Example {
	// Vertices: 0:v1 1:v2 2:v3 3:v4 4:v5 (P1) | 5:v6 6:v7 (P2) |
	// 7:v8 8:v9 9:v10 (P3). Final distances: v2=1 v3=2 v4=3 v5=6 v6=2
	// v7=3 v8=4 (first found as 6) v9=5 v10=6; the late shortcut i makes
	// the first pass over h, j (and g at P1) stale under coarse grain.
	return &Example{
		NumVertices: 10,
		Workers:     3,
		Source:      0,
		Owner:       []int{0, 0, 0, 0, 0, 1, 1, 2, 2, 2},
		Edges: []Edge{
			{"a", 0, 1, 1}, // v1->v2   scanned by P1; unblocks P2
			{"b", 1, 2, 1}, // v2->v3   P1
			{"c", 2, 3, 1}, // v3->v4   P1; unblocks P3
			{"g", 8, 4, 1}, // v9->v5   P1; re-scanned when v9 improves
			{"d", 1, 5, 1}, // v2->v6   P2
			{"e", 5, 6, 1}, // v6->v7   P2
			{"f", 3, 7, 3}, // v4->v8   P3; v8 = 6 via the long path
			{"h", 7, 8, 1}, // v8->v9   P3; first pass uses stale v8
			{"j", 8, 9, 1}, // v9->v10  P3; first pass uses stale v9
			{"i", 6, 7, 1}, // v7->v8   P3; the shortcut via P2's full round, v8 = 4
		},
	}
}

// Model selects the scheduling policy of the trace.
type Model int

const (
	// BSPGC: global barriers; all workers exchange together.
	BSPGC Model = iota
	// AAPGC: no barriers; each worker ejects at its own round end and
	// delays ingestion until its round ends.
	AAPGC
	// APVC: eject and ingest at every tick (vertex-centric asynchronous).
	APVC
	// GAPACE: adaptive granularity with bound η: ingestion mid-round after
	// messages waited η ticks, eager forwarding to idle workers (rule R1).
	GAPACE
)

func (m Model) String() string {
	switch m {
	case BSPGC:
		return "BSP & GC"
	case AAPGC:
		return "AAP & GC"
	case APVC:
		return "AP & VC"
	case GAPACE:
		return "GAP & ACE"
	}
	return "?"
}

// Trace is the tick-by-tick record: Cells[w][t] is the symbol worker w
// produced at tick t+1 (an edge name, "X" for an ejection, "-" for a
// deliberate delay, "" for idle).
type Trace struct {
	Model Model
	Eta   int
	Cells [][]string
	// Ticks is the response time: the last tick any worker acted.
	Ticks int
	// Scans counts edge scans per edge name (staleness shows as re-scans).
	Scans map[string]int
	// Dist is the final distance vector (for correctness checks).
	Dist []float64
}

type message struct {
	v int
	d float64
}

type worker struct {
	id      int
	edges   []int // indices into ex.Edges, in declaration order
	pending []bool
	dist    []float64 // local view (owned + ghost copies)
	outQ    map[int][]message
	inQ     []message
	inSince int // tick the oldest pending message arrived; -1 when empty
}

// Run simulates the example under the model. eta is the GAP granularity
// bound in ticks (the paper uses η=2).
func Run(ex *Example, model Model, eta int) *Trace {
	ws := make([]*worker, ex.Workers)
	for i := range ws {
		ws[i] = &worker{
			id:      i,
			dist:    make([]float64, ex.NumVertices),
			outQ:    map[int][]message{},
			inSince: -1,
		}
		for v := range ws[i].dist {
			ws[i].dist[v] = math.Inf(1)
		}
	}
	for ei, e := range ex.Edges {
		w := ws[ex.Owner[e.Dst]]
		w.edges = append(w.edges, ei)
	}
	for _, w := range ws {
		w.pending = make([]bool, len(ex.Edges))
	}
	// The source is known everywhere it is needed.
	for _, w := range ws {
		w.dist[ex.Source] = 0
	}
	for _, w := range ws {
		for _, ei := range w.edges {
			if ex.Edges[ei].Src == ex.Source {
				w.pending[ei] = true
			}
		}
	}

	tr := &Trace{Model: model, Eta: eta, Scans: map[string]int{}}
	cells := make([][]string, ex.Workers)

	// replicaTargets lists, per vertex, the remote workers scanning an edge
	// out of it (they hold ghost copies).
	replicaTargets := make([][]int, ex.NumVertices)
	for _, e := range ex.Edges {
		tw := ex.Owner[e.Dst]
		if ex.Owner[e.Src] != tw {
			found := false
			for _, x := range replicaTargets[e.Src] {
				if x == tw {
					found = true
				}
			}
			if !found {
				replicaTargets[e.Src] = append(replicaTargets[e.Src], tw)
			}
		}
	}

	hasPending := func(w *worker) bool {
		for _, ei := range w.edges {
			if w.pending[ei] {
				return true
			}
		}
		return false
	}
	ingest := func(w *worker) {
		for _, m := range w.inQ {
			if m.d < w.dist[m.v] {
				w.dist[m.v] = m.d
				for _, ei := range w.edges {
					if ex.Edges[ei].Src == m.v {
						w.pending[ei] = true
					}
				}
			}
		}
		w.inQ = w.inQ[:0]
		w.inSince = -1
	}
	improve := func(w *worker, v int, d float64, tick int) {
		if d >= w.dist[v] {
			return
		}
		w.dist[v] = d
		for _, ei := range w.edges {
			if ex.Edges[ei].Src == v {
				w.pending[ei] = true
			}
		}
		for _, tw := range replicaTargets[v] {
			if tw != w.id {
				w.outQ[tw] = append(w.outQ[tw], message{v, d})
			}
		}
	}
	// Graph-centric models run the sequential algorithm over the local
	// fragment, so they scan pending edges in Dijkstra order (smallest
	// source distance first); the vertex-centric AP cannot and uses plain
	// declaration order.
	priority := model != APVC
	scanNext := func(w *worker, tick int) string {
		best := -1
		for _, ei := range w.edges {
			if !w.pending[ei] {
				continue
			}
			if best < 0 {
				best = ei
				if !priority {
					break
				}
				continue
			}
			if w.dist[ex.Edges[ei].Src] < w.dist[ex.Edges[best].Src] {
				best = ei
			}
		}
		if ei := best; ei >= 0 {
			w.pending[ei] = false
			e := ex.Edges[ei]
			tr.Scans[e.Name]++
			if !math.IsInf(w.dist[e.Src], 1) {
				improve(w, e.Dst, w.dist[e.Src]+e.W, tick)
			}
			return e.Name
		}
		return ""
	}

	type delivery struct {
		to   int
		msgs []message
	}
	var inflight []delivery
	eject := func(w *worker) bool {
		sent := false
		for tw := 0; tw < ex.Workers; tw++ {
			if len(w.outQ[tw]) > 0 {
				inflight = append(inflight, delivery{tw, append([]message{}, w.outQ[tw]...)})
				w.outQ[tw] = nil
				sent = true
			}
		}
		return sent
	}
	queuedOut := func(w *worker) bool {
		for _, q := range w.outQ {
			if len(q) > 0 {
				return true
			}
		}
		return false
	}

	barrierPhase := false // BSP: true during the exchange tick
	wasBusy := make([]bool, ex.Workers)
	const maxTicks = 200
	for tick := 1; tick <= maxTicks; tick++ {
		// Deliver messages ejected at the previous tick.
		for _, d := range inflight {
			w := ws[d.to]
			w.inQ = append(w.inQ, d.msgs...)
			if w.inSince < 0 {
				w.inSince = tick
			}
		}
		inflight = inflight[:0]

		acted := false
		syms := make([]string, ex.Workers)

		switch model {
		case BSPGC:
			if barrierPhase {
				// Exchange tick: everyone ejects/receives together.
				for _, w := range ws {
					eject(w)
					syms[w.id] = "X"
				}
				barrierPhase = false
				acted = true
				break
			}
			for _, w := range ws {
				if len(w.inQ) > 0 && !hasPending(w) {
					ingest(w)
				}
				if s := scanNext(w, tick); s != "" {
					syms[w.id] = s
					acted = true
				}
			}
			// Superstep over when no worker has local work left.
			stepDone := true
			for _, w := range ws {
				if hasPending(w) {
					stepDone = false
				}
			}
			if stepDone && acted {
				// Barrier at the next tick if anything must be exchanged.
				for _, w := range ws {
					if queuedOut(w) {
						barrierPhase = true
					}
				}
			}
			if !acted {
				anyOut := false
				for _, w := range ws {
					if queuedOut(w) {
						anyOut = true
					}
				}
				if anyOut {
					barrierPhase = true
					// spend this tick as the barrier directly
					for _, w := range ws {
						eject(w)
						syms[w.id] = "X"
					}
					barrierPhase = false
					acted = true
				}
			}
		case AAPGC:
			for _, w := range ws {
				if !hasPending(w) {
					// Round over: eject, then (after a one-tick delay
					// sketch) ingest.
					if queuedOut(w) {
						eject(w)
						syms[w.id] = "X"
						acted = true
						continue
					}
					if len(w.inQ) > 0 {
						// Delay sketch: messages that arrived while the
						// round was still running settle for one tick; an
						// idle worker ingests immediately.
						if w.inSince == tick && wasBusy[w.id] {
							syms[w.id] = "-"
							acted = true
							continue
						}
						ingest(w)
					}
				}
				if s := scanNext(w, tick); s != "" {
					syms[w.id] = s
					acted = true
				}
			}
		case APVC:
			for _, w := range ws {
				if len(w.inQ) > 0 {
					ingest(w)
				}
				if queuedOut(w) {
					eject(w)
					syms[w.id] = "X"
					acted = true
					continue
				}
				if s := scanNext(w, tick); s != "" {
					syms[w.id] = s
					acted = true
				}
			}
		case GAPACE:
			idle := make([]bool, ex.Workers)
			for _, w := range ws {
				idle[w.id] = !hasPending(w) && len(w.inQ) == 0 && !queuedOut(w)
			}
			for _, w := range ws {
				// ξ⁺ rules: ingest at round start, after η ticks of buffer
				// residence (R3), or when everyone else is idle (R2).
				if len(w.inQ) > 0 {
					othersIdle := true
					for j := range ws {
						if j != w.id && !idle[j] {
							othersIdle = false
						}
					}
					if !hasPending(w) || tick-w.inSince >= eta || othersIdle {
						ingest(w)
					}
				}
				// ξ⁻ rules: eject at round end, or early when this worker is
				// the lone straggler (rule R1: everyone else idles waiting
				// for its messages).
				if queuedOut(w) {
					othersIdle := true
					for j := range ws {
						if j != w.id && !idle[j] {
							othersIdle = false
						}
					}
					if othersIdle || !hasPending(w) {
						eject(w)
						syms[w.id] = "X"
						acted = true
						continue
					}
				}
				if s := scanNext(w, tick); s != "" {
					syms[w.id] = s
					acted = true
				}
			}
		}

		for i, s := range syms {
			cells[i] = append(cells[i], s)
		}
		for i, w := range ws {
			wasBusy[i] = hasPending(w)
		}
		if acted {
			tr.Ticks = tick
		}
		// Quiescent?
		done := len(inflight) == 0 && !barrierPhase
		for _, w := range ws {
			if hasPending(w) || len(w.inQ) > 0 || queuedOut(w) {
				done = false
			}
		}
		if done {
			break
		}
	}

	tr.Cells = cells
	tr.Dist = make([]float64, ex.NumVertices)
	for v := range tr.Dist {
		best := math.Inf(1)
		for _, w := range ws {
			if w.dist[v] < best {
				best = w.dist[v]
			}
		}
		tr.Dist[v] = best
	}
	return tr
}

// Render prints the trace in the layout of Table I.
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s (response: %d ticks)\n", t.Model, t.Ticks)
	for i, row := range t.Cells {
		fmt.Fprintf(&b, "  P%d |", i+1)
		for j := 0; j < t.Ticks && j < len(row); j++ {
			s := row[j]
			if s == "" {
				s = "."
			}
			fmt.Fprintf(&b, " %-2s", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}
