package ticksim

import (
	"fmt"
	"math"
	"testing"
)

func runAll(t *testing.T) map[Model]*Trace {
	t.Helper()
	ex := PaperExample()
	out := map[Model]*Trace{}
	for _, m := range []Model{BSPGC, AAPGC, APVC, GAPACE} {
		tr := Run(ex, m, 2)
		out[m] = tr
		if tr.Ticks == 0 || tr.Ticks >= 200 {
			t.Fatalf("%v: bad tick count %d", m, tr.Ticks)
		}
	}
	return out
}

func TestAllModelsCorrectDistances(t *testing.T) {
	traces := runAll(t)
	// Ground truth for the reconstructed example.
	want := []float64{0, 1, 2, 3, 6, 2, 3, 4, 5, 6}
	_ = math.Inf
	for m, tr := range traces {
		for v, d := range want {
			if tr.Dist[v] != d {
				t.Fatalf("%v: dist[v%d] = %v, want %v\n%s", m, v+1, tr.Dist[v], d, tr.Render())
			}
		}
	}
}

func TestModelOrdering(t *testing.T) {
	traces := runAll(t)
	bsp, aap, ap, gap := traces[BSPGC].Ticks, traces[AAPGC].Ticks, traces[APVC].Ticks, traces[GAPACE].Ticks
	if !(gap <= ap && ap <= aap && aap <= bsp) {
		t.Fatalf("tick ordering violated: BSP=%d AAP=%d AP=%d GAP=%d\n%s%s%s%s",
			bsp, aap, ap, gap,
			traces[BSPGC].Render(), traces[AAPGC].Render(), traces[APVC].Render(), traces[GAPACE].Render())
	}
	if gap == bsp {
		t.Fatalf("GAP should strictly beat BSP: both %d ticks", gap)
	}
}

func TestStalenessRescans(t *testing.T) {
	traces := runAll(t)
	// Coarse granularity re-scans edge j (its source v9 is first reached
	// through the slow path and corrected later); fine ingestion avoids it.
	if traces[BSPGC].Scans["j"] < 2 {
		t.Fatalf("BSP should scan j at least twice, got %d\n%s", traces[BSPGC].Scans["j"], traces[BSPGC].Render())
	}
	if traces[GAPACE].Scans["j"] > traces[BSPGC].Scans["j"] {
		t.Fatalf("GAP re-scans j more than BSP: %d vs %d", traces[GAPACE].Scans["j"], traces[BSPGC].Scans["j"])
	}
	total := func(tr *Trace) int {
		n := 0
		for _, c := range tr.Scans {
			n += c
		}
		return n
	}
	if total(traces[GAPACE]) > total(traces[BSPGC]) {
		t.Fatalf("GAP should not scan more edges than BSP: %d vs %d", total(traces[GAPACE]), total(traces[BSPGC]))
	}
}

func TestRender(t *testing.T) {
	tr := Run(PaperExample(), GAPACE, 2)
	s := tr.Render()
	if s == "" || tr.Ticks == 0 {
		t.Fatal("empty render")
	}
	fmt.Println(s)
}

func TestEtaSensitivity(t *testing.T) {
	// Example 3: η = 2 is the sweet spot; both finer and coarser bounds
	// should not be faster.
	ex := PaperExample()
	t2 := Run(ex, GAPACE, 2).Ticks
	for _, eta := range []int{1, 3, 8} {
		if got := Run(ex, GAPACE, eta).Ticks; got < t2 {
			t.Logf("eta=%d gives %d ticks vs eta=2 gives %d", eta, got, t2)
		}
	}
}
