package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostModelTB(t *testing.T) {
	m := CostModel{Alpha: 10, Beta: 0.5, Gamma: 2}
	if m.TB(0) != 10 || m.TB(-3) != 10 {
		t.Fatalf("TB(0)=%v", m.TB(0))
	}
	if m.TB(100) != 60 {
		t.Fatalf("TB(100)=%v", m.TB(100))
	}
	if m.SendCost(5) != 10 || m.RecvCost(1, 3) != 6 {
		t.Fatal("handler costs wrong")
	}
	mb := CostModel{Gamma: 2, BatchCPU: 7}
	if mb.SendCost(5) != 17 || mb.RecvCost(2, 3) != 20 {
		t.Fatal("batch CPU costs wrong")
	}
	if m.String() == "" || DefaultCostModel().TB(1) <= 0 {
		t.Fatal("stringer/default wrong")
	}
}

func TestNetworkLinkFactor(t *testing.T) {
	n := NewNetwork(CostModel{Alpha: 10, Beta: 1}, 1)
	base := n.Latency(0, 1, 100)
	n.SetLinkFactor(0, 1, 3)
	if got := n.Latency(0, 1, 100); math.Abs(got-3*base) > 1e-9 {
		t.Fatalf("slow link latency %v, want %v", got, 3*base)
	}
	// Other links unaffected.
	if got := n.Latency(1, 0, 100); math.Abs(got-base) > 1e-9 {
		t.Fatalf("reverse link changed: %v", got)
	}
}

func TestNetworkJitterDeterministic(t *testing.T) {
	a := NewNetwork(CostModel{Alpha: 5, Beta: 0.1}, 42)
	b := NewNetwork(CostModel{Alpha: 5, Beta: 0.1}, 42)
	a.Jitter, b.Jitter = 0.3, 0.3
	for i := 0; i < 20; i++ {
		if a.Latency(0, 1, i*10) != b.Latency(0, 1, i*10) {
			t.Fatal("jitter not deterministic under same seed")
		}
	}
}

func TestProfileAndFitRecoversModel(t *testing.T) {
	truth := CostModel{Alpha: 200, Beta: 0.05, Gamma: 1}
	n := NewNetwork(truth, 7)
	fit, err := n.ProfileAndFit(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-truth.Alpha) > 1e-6 || math.Abs(fit.Beta-truth.Beta) > 1e-9 {
		t.Fatalf("fit %+v, want %+v", fit, truth)
	}
	if fit.Gamma != truth.Gamma {
		t.Fatal("gamma must be carried over")
	}
}

func TestProfileAndFitWithJitter(t *testing.T) {
	truth := CostModel{Alpha: 100, Beta: 0.2, Gamma: 1}
	n := NewNetwork(truth, 9)
	n.Jitter = 0.1
	fit, err := n.ProfileAndFit(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	// With 10% jitter the fit should land within ~15% of the true beta.
	if fit.Beta < truth.Beta*0.85 || fit.Beta > truth.Beta*1.25 {
		t.Fatalf("beta fit %v too far from %v", fit.Beta, truth.Beta)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Fatal("want error for no samples")
	}
	if _, err := Fit([]Sample{{1, 1}}, 1); err == nil {
		t.Fatal("want error for 1 sample")
	}
	if _, err := Fit([]Sample{{5, 1}, {5, 2}, {5, 3}}, 1); err == nil {
		t.Fatal("want degenerate error for constant x")
	}
}

// Property: fitting exact affine samples recovers alpha/beta for any
// positive coefficients.
func TestFitProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		alpha := float64(aRaw%1000) + 1
		beta := float64(bRaw%100)/100 + 0.01
		var samples []Sample
		for x := 1; x <= 1024; x *= 2 {
			samples = append(samples, Sample{x, alpha + beta*float64(x)})
		}
		fit, err := Fit(samples, 0)
		if err != nil {
			return false
		}
		return math.Abs(fit.Alpha-alpha) < 1e-6 && math.Abs(fit.Beta-beta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTBMonotone(t *testing.T) {
	m := DefaultCostModel()
	prev := m.TB(0)
	for b := 1; b < 1<<20; b *= 4 {
		cur := m.TB(b)
		if cur < prev {
			t.Fatalf("T_B not monotone at %d", b)
		}
		prev = cur
	}
}
