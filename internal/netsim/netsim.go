// Package netsim models the cluster interconnect. The GAP runtime only
// needs an end-to-end point-to-point cost function T_B(bytes) (Eq. 2 of the
// paper); this package provides the affine model used by the simulator, a
// Netgauge-style offline profiler that recovers the model's coefficients
// from measurements, and per-link heterogeneity/failure knobs for the
// robustness experiments.
package netsim

import (
	"fmt"
	"math"
	"sync"
)

// CostModel is the hardware-dependent function T_B mapping a message batch
// to its end-to-end transfer cost, plus the per-message handler overheads
// charged to h_in/h_out.
type CostModel struct {
	// Alpha is the fixed per-batch latency (cost units).
	Alpha float64
	// Beta is the per-byte transfer cost (cost units / byte).
	Beta float64
	// Gamma is the per-message handler cost charged at both endpoints
	// (serialization on send, aggregation on receive).
	Gamma float64
	// BatchCPU is the fixed per-batch CPU overhead charged at each endpoint
	// (syscall/flush cost); it is what makes overly fine-grained
	// communication expensive beyond pure latency.
	BatchCPU float64
}

// DefaultCostModel mirrors a commodity cluster NIC relative to a 1-unit
// edge scan, rescaled to the repository's ~100× reduced dataset stand-ins
// so the computation/communication balance of the paper's testbed is
// preserved: a batch costs 20 edge-scan units of wire latency plus 0.01
// units/byte, each message costs 0.5 units of handler work, and each batch
// 4 units of fixed CPU at either endpoint.
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 6, Beta: 0.01, Gamma: 0.5, BatchCPU: 10}
}

// TB returns T_B(bytes): the transfer cost of one batch.
func (m CostModel) TB(bytes int) float64 {
	if bytes <= 0 {
		return m.Alpha
	}
	return m.Alpha + m.Beta*float64(bytes)
}

// SendCost returns the cost charged to the sender's h_out for a batch of
// msgs messages.
func (m CostModel) SendCost(msgs int) float64 { return m.BatchCPU + m.Gamma*float64(msgs) }

// RecvCost returns the cost charged to the receiver's h_in for batches
// batches carrying msgs messages in total.
func (m CostModel) RecvCost(batches, msgs int) float64 {
	return m.BatchCPU*float64(batches) + m.Gamma*float64(msgs)
}

func (m CostModel) String() string {
	return fmt.Sprintf("T_B(b)=%.3g+%.3g*b, gamma=%.3g", m.Alpha, m.Beta, m.Gamma)
}

// Network adds per-link behaviour on top of a CostModel: heterogeneous link
// speeds (stragglers at the network level) and optional jitter, all
// deterministic under Seed. Latency is safe for concurrent use: jitter is
// drawn from a stateless hash of (seed, link, per-link counter) rather than
// a shared math/rand stream, so each link gets its own deterministic
// sequence and the live driver can call it from every worker goroutine.
type Network struct {
	Model CostModel
	// SlowLinks maps "i->j" links to latency multipliers (>1 is slower).
	slow map[[2]int]float64
	// Jitter adds up to Jitter*latency of deterministic pseudo-random delay.
	Jitter float64
	seed   int64

	mu  sync.Mutex
	seq map[[2]int]uint64
}

// NewNetwork builds a homogeneous network over the model.
func NewNetwork(model CostModel, seed int64) *Network {
	return &Network{Model: model, slow: map[[2]int]float64{}, seed: seed, seq: map[[2]int]uint64{}}
}

// SetLinkFactor makes the i->j link factor-times slower than the base model.
// Not safe to call concurrently with Latency; configure links before the run.
func (n *Network) SetLinkFactor(i, j int, factor float64) { n.slow[[2]int{i, j}] = factor }

// Latency returns the delivery delay for a batch of the given size on link
// i->j. Safe for concurrent use.
func (n *Network) Latency(i, j, bytes int) float64 {
	l := n.Model.TB(bytes)
	if f, ok := n.slow[[2]int{i, j}]; ok {
		l *= f
	}
	if n.Jitter > 0 {
		n.mu.Lock()
		k := n.seq[[2]int{i, j}]
		n.seq[[2]int{i, j}] = k + 1
		n.mu.Unlock()
		l *= 1 + n.Jitter*u01(mix(uint64(n.seed), uint64(i)<<32|uint64(uint32(j)), k))
	}
	return l
}

// mix is a splitmix64-style avalanche over three words.
func mix(a, b, c uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15
	z += b * 0xbf58476d1ce4e5b9
	z += c * 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// u01 maps a 64-bit hash to [0,1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Sample is one profiler observation: batch size and measured cost.
type Sample struct {
	Bytes int
	Cost  float64
}

// Profile measures the transport the way Netgauge does: it sends batches of
// exponentially growing sizes over the link i->j and records the observed
// end-to-end costs.
func (n *Network) Profile(i, j int, maxBytes int) []Sample {
	var out []Sample
	for b := 1; b <= maxBytes; b *= 2 {
		// Three repetitions per size, as a real harness would, to smooth jitter.
		for rep := 0; rep < 3; rep++ {
			out = append(out, Sample{Bytes: b, Cost: n.Latency(i, j, b)})
		}
	}
	return out
}

// Fit recovers an affine CostModel (alpha, beta) from profiler samples by
// least squares. Gamma is not observable from transfer timings and is kept
// from the prior model.
func Fit(samples []Sample, gamma float64) (CostModel, error) {
	if len(samples) < 2 {
		return CostModel{}, fmt.Errorf("netsim: need at least 2 samples, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		x := float64(s.Bytes)
		sx += x
		sy += s.Cost
		sxx += x * x
		sxy += x * s.Cost
	}
	k := float64(len(samples))
	den := k*sxx - sx*sx
	if den == 0 {
		return CostModel{}, fmt.Errorf("netsim: degenerate samples")
	}
	beta := (k*sxy - sx*sy) / den
	alpha := (sy - beta*sx) / k
	if math.IsNaN(alpha) || math.IsNaN(beta) {
		return CostModel{}, fmt.Errorf("netsim: fit produced NaN")
	}
	return CostModel{Alpha: alpha, Beta: beta, Gamma: gamma}, nil
}

// ProfileAndFit runs the full Netgauge-equivalent workflow: profile the
// 0->1 link and fit the affine model.
func (n *Network) ProfileAndFit(maxBytes int) (CostModel, error) {
	return Fit(n.Profile(0, 1, maxBytes), n.Model.Gamma)
}
