package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	obsserve "argan/internal/obs/serve"
)

// Tiny shared dataset so the suite stays fast; the cache makes later tests
// nearly free.
func tinySpec(app string) JobSpec {
	return JobSpec{App: app, Dataset: "HW", Scale: 0.02, Workers: 2, Source: 1, Verify: true}
}

// slowSpec builds a job that runs for roughly durMS of wall clock: with
// CheckEvery 1 the injected slowdown sleeps at every update, so the job is
// reliably still in flight when a test cancels, drains or saturates around
// it.
func slowSpec(durMS, factor int) JobSpec {
	sp := tinySpec("sssp")
	sp.Verify = false
	sp.CheckEvery = 1
	sp.Faults = fmt.Sprintf("slow=0@0:%d:%d; slow=1@0:%d:%d", durMS, factor, durMS, factor)
	return sp
}

func TestJobLifecycleAllApps(t *testing.T) {
	s := New(Config{Cores: 4})
	for _, app := range []string{"sssp", "bfs", "wcc", "pr"} {
		id, err := s.Submit(tinySpec(app))
		if err != nil {
			t.Fatalf("%s submit: %v", app, err)
		}
		st, err := s.Wait(id, 30*time.Second)
		if err != nil {
			t.Fatalf("%s wait: %v", app, err)
		}
		if st.State != StateDone {
			t.Fatalf("%s: state %s err %q", app, st.State, st.Err)
		}
		res, err := s.Result(id)
		if err != nil {
			t.Fatalf("%s result: %v", app, err)
		}
		if res.Wrong != 0 {
			t.Fatalf("%s: %d wrong vertices", app, res.Wrong)
		}
		if res.Vertices == 0 || res.Updates == 0 {
			t.Fatalf("%s: empty result summary %+v", app, res)
		}
		if res.App != app || res.ID != id {
			t.Fatalf("%s: mislabeled result %+v", app, res)
		}
	}
	st := s.Stats()
	if st.Completed != 4 || st.Failed != 0 || st.Admitted != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSpecValidation(t *testing.T) {
	s := New(Config{Cores: 4})
	bad := []JobSpec{
		{App: "nope", Dataset: "HW"},
		{App: "sssp"},
		{App: "sssp", Dataset: "HW", Faults: "crash=bogus"},
		{App: "sssp", Dataset: "HW", Deadline: "yesterday"},
	}
	for i, sp := range bad {
		if _, err := s.Submit(sp); err == nil {
			t.Fatalf("spec %d admitted: %+v", i, sp)
		}
	}
	// Worker clamp: requests above MaxWorkersPerJob shrink, not fail.
	sp := tinySpec("sssp")
	sp.Workers = 64
	id, err := s.Submit(sp)
	if err != nil {
		t.Fatalf("clamped submit: %v", err)
	}
	st, _ := s.Wait(id, 30*time.Second)
	if st.Workers != 4 || st.State != StateDone {
		t.Fatalf("clamp: workers %d state %s err %q", st.Workers, st.State, st.Err)
	}
}

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	s := New(Config{Cores: 2, QueueDepth: 1})
	slow := slowSpec(5000, 40)
	id1, err := s.Submit(slow) // takes both cores, runs slow
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	id2, err := s.Submit(slow) // fills the queue
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	_, err = s.Submit(slow) // queue full: shed
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	if st := s.Stats(); st.Shed != 1 || st.Queued != 1 {
		t.Fatalf("stats after shed: %+v", st)
	}
	// Canceling the queued job must not run it; canceling the running one
	// must propagate through the driver's control plane.
	if err := s.Cancel(id2); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	st2, _ := s.Status(id2)
	if st2.State != StateCanceled || st2.RunMS != 0 {
		t.Fatalf("queued cancel: %+v", st2)
	}
	if err := s.Cancel(id1); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	st1, err := s.Wait(id1, 10*time.Second)
	if err != nil || st1.State != StateCanceled {
		t.Fatalf("running cancel: %+v err %v", st1, err)
	}
	if st := s.Stats(); st.Canceled != 2 || st.Running != 0 || st.CoresFree != 2 {
		t.Fatalf("tokens leaked: %+v", st)
	}
}

func TestDeadlineCancelsJob(t *testing.T) {
	s := New(Config{Cores: 2})
	sp := slowSpec(10000, 60)
	sp.Deadline = "200ms"
	id, err := s.Submit(sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := s.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateCanceled || !strings.Contains(st.Err, "deadline") {
		t.Fatalf("want deadline cancellation, got %+v", st)
	}
}

func TestPanicQuarantinedNeighborsUnharmed(t *testing.T) {
	s := New(Config{Cores: 4})
	rogue := tinySpec("sssp")
	rogue.Verify = false
	rogue.Faults = "panic=0@u10"
	rid, err := s.Submit(rogue)
	if err != nil {
		t.Fatalf("submit rogue: %v", err)
	}
	nid, err := s.Submit(tinySpec("bfs"))
	if err != nil {
		t.Fatalf("submit neighbor: %v", err)
	}
	rst, _ := s.Wait(rid, 30*time.Second)
	if rst.State != StateFailed || !strings.Contains(rst.Err, "panic") {
		t.Fatalf("rogue not quarantined: %+v", rst)
	}
	nst, _ := s.Wait(nid, 30*time.Second)
	if nst.State != StateDone {
		t.Fatalf("neighbor harmed by rogue: %+v", nst)
	}
	if res, err := s.Result(nid); err != nil || res.Wrong != 0 {
		t.Fatalf("neighbor result: %+v err %v", res, err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Failed != 1 {
		t.Fatalf("quarantine accounting: %+v", st)
	}
}

func TestCrashyJobRecoversLocally(t *testing.T) {
	s := New(Config{Cores: 2})
	sp := tinySpec("sssp")
	sp.Faults = "crash=1@u40+5"
	id, err := s.Submit(sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, _ := s.Wait(id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("crashy job: %+v", st)
	}
	res, err := s.Result(id)
	if err != nil || res.Wrong != 0 {
		t.Fatalf("crashy result: %+v err %v", res, err)
	}
	if res.Crashes < 1 || res.Recoveries < 1 || res.Recovery != "local" {
		t.Fatalf("recovery not localized: %+v", res)
	}
}

func TestDrainFinishesAdmittedAndRefusesNew(t *testing.T) {
	s := New(Config{Cores: 2, QueueDepth: 4})
	slow := slowSpec(150, 10)
	var ids []string
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		id, err := s.Submit(slow)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	done := make(chan DrainStats, 2)
	go func() { done <- s.Drain(60 * time.Second) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	// A concurrent second Drain must block until completion and report the
	// same recorded stats as the first caller, not a stale snapshot.
	go func() { done <- s.Drain(60 * time.Second) }()
	if _, err := s.Submit(tinySpec("sssp")); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
	for i := 0; i < 2; i++ {
		stats := <-done
		if stats.Jobs != 3 || stats.Forced != 0 || stats.Completed != 3 {
			t.Fatalf("drain stats (caller %d): %+v", i, stats)
		}
	}
	for _, id := range ids {
		st, _ := s.Status(id)
		if st.State != StateDone {
			t.Fatalf("drain abandoned %s: %+v", id, st)
		}
	}
	// A later drain returns the recorded stats, wall time included.
	again := s.Drain(time.Second)
	if again.Jobs != 3 || again.Completed != 3 || again.WaitMS <= 0 {
		t.Fatalf("re-drain stats: %+v", again)
	}
}

func TestDrainTimeoutForcesStragglers(t *testing.T) {
	s := New(Config{Cores: 2})
	sp := slowSpec(60000, 150) // effectively wedged
	id, err := s.Submit(sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	stats := s.Drain(300 * time.Millisecond)
	if stats.Forced != 1 {
		t.Fatalf("drain did not force the straggler: %+v", stats)
	}
	st, _ := s.Status(id)
	if st.State != StateCanceled || !strings.Contains(st.Err, "drain") {
		t.Fatalf("straggler state: %+v", st)
	}
	// Repeat callers see the recorded forced count, not a zero snapshot.
	if again := s.Drain(time.Second); again.Forced != 1 || again.Canceled != 1 {
		t.Fatalf("re-drain stats: %+v", again)
	}
}

func TestTerminalHistoryEviction(t *testing.T) {
	s := New(Config{Cores: 4, MaxHistory: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(tinySpec("sssp"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st, err := s.Wait(id, 30*time.Second); err == nil && st.State != StateDone {
			t.Fatalf("job %d: %+v", i, st)
		}
		ids = append(ids, id)
	}
	// Only the two newest terminal jobs survive; the oldest were evicted
	// and now resolve like never-assigned IDs.
	if list := s.List(); len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(list), list)
	}
	for _, id := range ids[:2] {
		if _, err := s.Status(id); !errors.Is(err, ErrNoSuchJob) {
			t.Fatalf("evicted %s status: %v", id, err)
		}
		if _, err := s.Result(id); !errors.Is(err, ErrNoSuchJob) {
			t.Fatalf("evicted %s result: %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		if res, err := s.Result(id); err != nil || res.Wrong != 0 {
			t.Fatalf("retained %s result: %+v err %v", id, res, err)
		}
	}
	// Lifetime counters are not rewound by eviction.
	if st := s.Stats(); st.Completed != 4 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestHTTPAPI(t *testing.T) {
	s := New(Config{Cores: 2, QueueDepth: 1})
	ts := httptest.NewServer(s.APIHandler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	id, err := c.Submit(tinySpec("sssp"))
	if err != nil || id == "" {
		t.Fatalf("submit: id %q err %v", id, err)
	}
	st, err := c.WaitTerminal(id, 30*time.Second)
	if err != nil || st.State != StateDone {
		t.Fatalf("wait: %+v err %v", st, err)
	}
	res, err := c.Result(id)
	if err != nil || res.Wrong != 0 || res.ID != id {
		t.Fatalf("result: %+v err %v", res, err)
	}
	list, err := c.List()
	if err != nil || len(list) != 1 {
		t.Fatalf("list: %v err %v", list, err)
	}
	stats, err := c.Stats()
	if err != nil || stats.Completed != 1 {
		t.Fatalf("stats: %+v err %v", stats, err)
	}

	// Error mapping: bad spec → 400, unknown id → 404, unfinished → 409.
	if _, err := c.Submit(JobSpec{App: "nope", Dataset: "HW"}); err == nil ||
		errors.Is(err, ErrSaturated) || errors.Is(err, ErrDraining) {
		t.Fatalf("bad spec error: %v", err)
	}
	if _, err := c.Status("job-999"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("unknown id: %v", err)
	}
	if _, err := c.Result("job-999"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("unknown id result: %v", err)
	}
	slow := slowSpec(5000, 40)
	sid, err := c.Submit(slow)
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}
	if _, err := c.Result(sid); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("unfinished result: %v", err)
	}
	// Saturate: one running (2 cores), one queued, then shed with 429.
	if _, err := c.Submit(slow); err != nil {
		t.Fatalf("fill queue: %v", err)
	}
	if _, err := c.Submit(slow); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated over HTTP, got %v", err)
	}
	// Cancel over HTTP propagates into the driver.
	if err := c.Cancel(sid); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st, err = c.WaitTerminal(sid, 10*time.Second)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("canceled: %+v err %v", st, err)
	}
}

func TestAttachTelemetry(t *testing.T) {
	s := New(Config{Cores: 2})
	srv := obsserve.New()
	if err := s.Attach(srv); err != nil {
		t.Fatalf("attach: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	id, err := c.Submit(tinySpec("sssp"))
	if err != nil {
		t.Fatalf("submit via mounted API: %v", err)
	}
	if _, err := c.WaitTerminal(id, 30*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if err := obsserve.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	for _, want := range []string{
		"argan_service_cores 2",
		"argan_service_jobs_completed_total 1",
		`argan_job_state{app="sssp",job="` + id + `",state="done"} 2`,
		`argan_job_updates_total{app="sssp",job="` + id + `"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	s.Drain(10 * time.Second)
	code, body = get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz during drain: %d %q", code, body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "argan_service_draining 1") {
		t.Fatalf("draining gauge not exported")
	}
	// Submits over the mounted API now refuse with 503.
	if _, err := c.Submit(tinySpec("sssp")); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining via HTTP, got %v", err)
	}
}

func TestPreloadSharesFragments(t *testing.T) {
	s := New(Config{Cores: 4})
	if err := s.Preload("HW", 0.02, 2); err != nil {
		t.Fatalf("preload: %v", err)
	}
	if err := s.Preload("nope", 1, 2); err == nil {
		t.Fatal("preload of unknown dataset succeeded")
	}
	// Two jobs over the same (dataset, scale, workers) must reuse the one
	// cached partition (and pin the same version).
	p1, err := s.data.pin("HW", 0.02, 2)
	if err != nil {
		t.Fatalf("pin: %v", err)
	}
	p2, _ := s.data.pin("HW", 0.02, 2)
	if p1.g != p2.g || len(p1.frags) != 2 || p1.frags[0] != p2.frags[0] || p1.version != p2.version {
		t.Fatal("fragment cache did not share")
	}
}
