package serve

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"argan/internal/durable"
	"argan/internal/graph"
	"argan/internal/mem"
)

// Startup recovery and the snapshot flusher: the serve-side half of the
// durability layer (internal/durable holds the on-disk formats).
//
// Recovery is replay, not trust: the base dataset is regenerated
// deterministically at version 0, each WAL record's batch is re-applied
// through the same ApplyMutations/Freeze path a live mutation takes, and the
// resulting frozen fingerprint must equal the one recorded when the batch
// was acknowledged. A record that re-applies to a different graph than it
// was acked against is treated exactly like a corrupt one — the log is
// truncated right before it, and the service resumes from the last version
// it can prove. Warm-fixpoint snapshots are an optimization on top: a
// snapshot entry is reseeded into the warm cache only when its version is
// one the replay actually reconstructed and its array shape matches both
// the app and the graph; anything else is skipped and recomputed cold.

// dsRecovery is what startup recovery replayed for one dataset.
type dsRecovery struct {
	durable.RecoverStats
	// WarmReseeded / WarmSkipped count snapshot fixpoints accepted into the
	// warm cache vs rejected (version skew, kind mismatch, wrong length).
	WarmReseeded int
	WarmSkipped  int
	// SnapshotDiscarded reports the snapshot file was present but corrupt;
	// recovery proceeded cold from the WAL.
	SnapshotDiscarded bool
}

// RecoveryStats aggregates startup recovery across every dataset with
// durable state, exposed through Stats (GET /api/service) so a restart
// drill can assert on exactly what was replayed.
type RecoveryStats struct {
	// Datasets is how many dataset keys were recovered from the store.
	Datasets int `json:"datasets"`
	// Records / Bytes count the WAL records replayed onto base graphs.
	Records int   `json:"records_replayed"`
	Bytes   int64 `json:"bytes_replayed"`
	// TruncatedTail reports at least one WAL had a torn, corrupt or
	// semantically rejected tail cut during recovery.
	TruncatedTail bool `json:"truncated_tail"`
	// WarmReseeded / WarmSkipped total the per-dataset snapshot verdicts.
	WarmReseeded int `json:"warm_reseeded"`
	WarmSkipped  int `json:"warm_skipped"`
	// SnapshotsDiscarded counts corrupt snapshot files ignored.
	SnapshotsDiscarded int `json:"snapshots_discarded"`
}

// parseDSKey inverts dsName: "HW@0.25" → ("HW", 0.25). %g formatting makes
// the round trip exact for every scale the service accepts.
func parseDSKey(key string) (dataset string, scale float64, ok bool) {
	name, sc, found := strings.Cut(key, "@")
	if !found || name == "" {
		return "", 0, false
	}
	f, err := strconv.ParseFloat(sc, 64)
	if err != nil || f <= 0 {
		return "", 0, false
	}
	return name, f, true
}

// appWarmKind is the snapshot array kind each app's fixpoint must carry;
// a persisted entry whose kind contradicts its app is corruption (or an
// incompatible format drift) and is skipped at reseed.
func appWarmKind(app string) (uint32, bool) {
	switch app {
	case "sssp", "pr":
		return durable.KindF64, true
	case "bfs":
		return durable.KindI32, true
	case "wcc":
		return durable.KindU32, true
	}
	return 0, false
}

// recoverDurable replays the dataset's WAL on top of the freshly loaded
// base graph and reseeds the warm cache from the snapshot. It runs inside
// the state entry's once-fill, before ds is shared, so no locking is
// needed; ds.g is the base graph at version 0 on entry and the last
// durable version on return.
func (ds *dsState) recoverDurable(store *durable.Store) error {
	wal, recs, stats, err := store.OpenWAL(ds.key)
	if err != nil {
		return fmt.Errorf("open wal: %w", err)
	}
	ds.wal = wal
	ds.rec.RecoverStats = stats

	snap, err := store.ReadSnapshot(ds.key)
	if err != nil {
		// A corrupt snapshot costs warm starts, never correctness: the WAL
		// is the version authority, so recovery proceeds cold.
		ds.rec.SnapshotDiscarded = true
		snap = nil
	}

	// Versions whose graphs the snapshot needs pinned: a reseeded fixpoint
	// keeps the graph it converged on so the incremental planner can diff
	// old-adjacency against new.
	need := make(map[uint64]bool)
	if snap != nil {
		for _, e := range snap.Entries {
			need[e.Version] = true
		}
	}

	g := ds.g
	held := map[uint64]*graph.Graph{g.Version(): g}
	applied := 0
	var appliedBytes int64
	for _, rec := range recs {
		ng, _, aerr := g.ApplyMutations(rec.Batch)
		if aerr == nil {
			ng.Freeze()
			if fp, _ := ng.FrozenFingerprint(); fp != rec.Fingerprint {
				aerr = fmt.Errorf("version %d replays to fingerprint %#x, wal recorded %#x", rec.Version, fp, rec.Fingerprint)
			}
		}
		if aerr != nil {
			// CRC-valid but semantically unreplayable (base dataset drift,
			// fingerprint mismatch): cut the log here so the rejected suffix
			// cannot resurrect on the next restart, and resume from the
			// last version that replays clean.
			if terr := wal.Truncate(rec.Offset, g.Version()); terr != nil {
				return fmt.Errorf("truncate rejected tail: %w (rejected because: %v)", terr, aerr)
			}
			ds.rec.Truncated = true
			break
		}
		g = ng
		applied++
		appliedBytes += rec.End - rec.Offset
		if need[g.Version()] {
			held[g.Version()] = g
		}
		ds.log = append(ds.log, mutRecord{version: rec.Version, touched: rec.Batch.Endpoints()})
		if len(ds.log) > maxMutLog {
			ds.log = ds.log[len(ds.log)-maxMutLog:]
		}
	}
	ds.rec.Records = applied
	ds.rec.Bytes = appliedBytes
	if err := g.CheckFrozen(); err != nil {
		return fmt.Errorf("recovered graph at version %d: %w", g.Version(), err)
	}
	ds.g = g

	if snap == nil {
		return nil
	}
	n := g.NumVertices()
	for _, e := range snap.Entries {
		wk := warmKey{app: e.App, source: int(e.Source), eps: e.Eps}
		kind, nv, ok := durable.KindOf(e.Values)
		wantKind, known := appWarmKind(e.App)
		kp, np, okP := durable.KindOf(e.Psi)
		hg := held[e.Version]
		switch {
		case e.Version > g.Version():
			// Version skew: the snapshot outran the surviving WAL (its tail
			// was lost or rejected). A fixpoint from a version the service
			// cannot reconstruct is unusable.
			ds.rec.WarmSkipped++
		case hg == nil:
			ds.rec.WarmSkipped++ // version replayed but graph not retained (duplicate key)
		case !ok || !okP || !known || kind != wantKind || kp != kind || nv != n || np != n:
			ds.rec.WarmSkipped++
		default:
			if cur := ds.warm[wk]; cur == nil || cur.version <= e.Version {
				ds.warm[wk] = &warmEntry{version: e.Version, g: hg, values: e.Values, psi: e.Psi}
				ds.rec.WarmReseeded++
			} else {
				ds.rec.WarmSkipped++
			}
		}
	}
	// Everything reseeded is already on disk: start the flush generation
	// clock at parity so the first snapshot tick is a no-op until a job
	// actually stores a fresh fixpoint.
	ds.warmFlushed = ds.warmGen
	return nil
}

// recoverAll enumerates the store and recovers every known dataset key,
// aggregating per-dataset stats. Unknown keys (a foreign directory in the
// state dir, a dataset this build does not ship) are skipped, not errors:
// the state dir may be shared across binary versions.
func (s *Service) recoverAll() (RecoveryStats, error) {
	var rs RecoveryStats
	keys, err := s.data.store.Keys()
	if err != nil {
		return rs, fmt.Errorf("enumerate state dir: %w", err)
	}
	for _, key := range keys {
		name, scale, ok := parseDSKey(key)
		if !ok {
			continue
		}
		if _, known := graph.DatasetInfo(name); !known {
			continue
		}
		ds, err := s.data.state(name, scale)
		if err != nil {
			return rs, err
		}
		rs.Datasets++
		rs.Records += ds.rec.Records
		rs.Bytes += ds.rec.Bytes
		rs.TruncatedTail = rs.TruncatedTail || ds.rec.Truncated
		rs.WarmReseeded += ds.rec.WarmReseeded
		rs.WarmSkipped += ds.rec.WarmSkipped
		if ds.rec.SnapshotDiscarded {
			rs.SnapshotsDiscarded++
		}
	}
	return rs, nil
}

// SnapshotNow flushes every dataset whose warm cache changed since its last
// persisted snapshot, returning how many snapshot files were written. Write
// errors are counted (Stats.SnapshotErrs) and the first is returned, but
// one dataset's bad disk does not stop the others' flushes. A service
// without a state dir returns (0, nil).
func (s *Service) SnapshotNow() (int, error) {
	if s.data.store == nil {
		return 0, nil
	}
	wrote := 0
	var firstErr error
	for _, h := range s.data.materialized() {
		ok, err := s.snapshotDS(h.ds)
		if err != nil {
			s.mu.Lock()
			s.snapshotErrs++
			s.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot %s: %w", h.ds.key, err)
			}
			continue
		}
		if ok {
			wrote++
		}
	}
	return wrote, firstErr
}

// snapshotDS flushes one dataset's warm cache if it is dirty. The encode
// competes with tenant jobs for the memory pool via a commitment-only hold;
// when the pool cannot cover it the flush is deferred (counted, not
// errored) — durability of fixpoints yields to live work, and the WAL keeps
// correctness either way.
func (s *Service) snapshotDS(ds *dsState) (bool, error) {
	ds.mu.Lock()
	if ds.key == "" || ds.warmGen == ds.warmFlushed {
		ds.mu.Unlock()
		return false, nil
	}
	gen := ds.warmGen
	snap := &durable.Snapshot{Entries: make([]durable.WarmFixpoint, 0, len(ds.warm))}
	for wk, e := range ds.warm {
		snap.Entries = append(snap.Entries, durable.WarmFixpoint{
			App: wk.app, Source: int32(wk.source), Eps: wk.eps,
			Version: e.version, Values: e.values, Psi: e.psi,
		})
	}
	ds.mu.Unlock()

	release, err := s.pool.Hold(snap.EncodedBytes() + 64<<10)
	if err != nil {
		if errors.Is(err, mem.ErrPoolExhausted) {
			s.mu.Lock()
			s.snapshotsDeferred++
			s.mu.Unlock()
			return false, nil
		}
		return false, err
	}
	defer release()
	if err := s.data.store.WriteSnapshot(ds.key, snap); err != nil {
		return false, err
	}
	ds.mu.Lock()
	// Forward-only: a storeWarm that landed mid-flush bumped warmGen past
	// gen, leaving the dataset dirty for the next tick.
	if ds.warmFlushed < gen {
		ds.warmFlushed = gen
	}
	ds.mu.Unlock()
	s.mu.Lock()
	s.snapshots++
	s.mu.Unlock()
	return true, nil
}

// snapshotLoop is the periodic flusher started by Open when both StateDir
// and SnapshotEvery are set. Errors are counted in Stats, never fatal.
func (s *Service) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			_, _ = s.SnapshotNow() // errors counted in snapshotErrs
		}
	}
}

// shutdownDurable stops the flusher, takes a final snapshot and closes the
// WALs. Idempotent; Drain calls it after the last admitted job finishes.
// Mutations racing the shutdown fail cleanly at Append ("wal closed")
// without the in-memory version moving, so memory and disk stay agreed.
func (s *Service) shutdownDurable() {
	s.shutdownOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
		if s.data.store == nil {
			return
		}
		_, _ = s.SnapshotNow()
		for _, h := range s.data.materialized() {
			if h.ds.wal != nil {
				_ = h.ds.wal.Close()
			}
		}
	})
}

// Recovery returns what startup recovery replayed, or nil for a service
// opened without a state dir. The value is immutable after Open.
func (s *Service) Recovery() *RecoveryStats { return s.recovery }
