package serve

import (
	"fmt"
	"sync"

	"argan/internal/core"
	"argan/internal/graph"
)

// dataCache loads each (dataset, scale) once, freezes it with a structural
// fingerprint, and shares one immutable fragment partition per worker count
// across every job that runs over it. Sequential reference answers are
// cached the same way, so verification costs one sequential pass per unique
// query, not per job.
//
// Sharing frozen fragments is what makes a resident service cheaper than
// per-request processes — but it also means no job may mutate them: every
// job runs with LiveConfig.NoEdgeSpill, and graph.Freeze trips loudly if a
// writer slips through anyway.

type fragKey struct {
	dataset string
	scale   float64
	workers int
}

type refKey struct {
	app     string
	dataset string
	scale   float64
	source  int
	eps     float64
}

type dataCache struct {
	mu     sync.Mutex
	graphs map[string]*entry[*graph.Graph]
	frags  map[fragKey]*entry[[]*graph.Fragment]
	refs   map[refKey]*entry[any]
}

// entry is a once-per-key fill slot: concurrent requesters block on the
// first loader instead of duplicating the build.
type entry[T any] struct {
	once sync.Once
	val  T
	err  error
}

func newDataCache() dataCache {
	return dataCache{
		graphs: make(map[string]*entry[*graph.Graph]),
		frags:  make(map[fragKey]*entry[[]*graph.Fragment]),
		refs:   make(map[refKey]*entry[any]),
	}
}

func (c *dataCache) graph(dataset string, scale float64) (*graph.Graph, error) {
	key := fmt.Sprintf("%s@%g", dataset, scale)
	c.mu.Lock()
	e := c.graphs[key]
	if e == nil {
		e = &entry[*graph.Graph]{}
		c.graphs[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// LoadDataset memoizes and freezes internally (fingerprinted), so
		// this is the single build for the server's lifetime.
		e.val, e.err = graph.LoadDataset(dataset, scale)
	})
	return e.val, e.err
}

func (c *dataCache) fragments(dataset string, scale float64, workers int) (*graph.Graph, []*graph.Fragment, error) {
	g, err := c.graph(dataset, scale)
	if err != nil {
		return nil, nil, err
	}
	key := fragKey{dataset, scale, workers}
	c.mu.Lock()
	e := c.frags[key]
	if e == nil {
		e = &entry[[]*graph.Fragment]{}
		c.frags[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		env := core.Env{Workers: workers}
		e.val, e.err = env.Fragments(g)
	})
	return g, e.val, e.err
}

// reference returns the cached sequential answer for a query, computing it
// on first use. The stored value's concrete type is app-dependent; the
// typed runners in job.go assert it back.
func (c *dataCache) reference(key refKey, compute func() any) any {
	c.mu.Lock()
	e := c.refs[key]
	if e == nil {
		e = &entry[any]{}
		c.refs[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}
