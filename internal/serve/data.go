package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"argan/internal/core"
	"argan/internal/durable"
	"argan/internal/graph"
)

// dataCache loads each (dataset, scale) once, freezes it with a structural
// fingerprint, and shares one immutable fragment partition per worker count
// across every job that runs over it. Sequential reference answers are
// cached the same way, so verification costs one sequential pass per unique
// (query, version), not per job.
//
// Datasets evolve: Service.Mutate applies a graph.MutationBatch under the
// per-dataset version counter, producing a fresh frozen graph at version+1
// with copy-on-write fragment partitions (graph.UpdateFragments rebuilds
// only the partitions owning a mutated endpoint). Jobs pin the version
// current at dispatch — everything they can reach is immutable by
// construction, so tenants running over version k are undisturbed by the
// swap to k+1. Completed fixpoints are retained per query key and used to
// warm-start re-convergence on later versions (see job.go).
//
// Sharing frozen fragments is what makes a resident service cheaper than
// per-request processes — but it also means no job may mutate them: every
// job runs with LiveConfig.NoEdgeSpill, and graph.CheckFrozen trips loudly
// (typed ErrFrozenMutated / ErrVersionMismatch) if a writer slips through
// anyway. Mutations never touch a shared graph in place; they copy.

type dsKey struct {
	dataset string
	scale   float64
}

type refKey struct {
	app     string
	source  int
	eps     float64
	version uint64
}

// warmKey identifies a query whose fixpoint is retained for incremental
// re-convergence. Worker count is deliberately absent: warm state is stored
// as global-vertex arrays, so a 2-worker job can resume a fixpoint a
// 4-worker job computed.
type warmKey struct {
	app    string
	source int
	eps    float64
}

// warmEntry is one retained fixpoint: the version and graph it was computed
// on plus the program's global-vertex state (values = Output view, psi =
// raw Ψ — Δ-PageRank's parked residual deltas live there).
type warmEntry struct {
	version uint64
	g       *graph.Graph
	values  any
	psi     any
}

// mutRecord logs one applied batch: the version it created and the vertices
// whose adjacency it touched. Warm starts bridging versions (a, b] union
// these touched sets; a bridge that falls off the bounded log forces a
// flagged full recompute.
type mutRecord struct {
	version uint64
	touched []graph.VID
}

// maxMutLog bounds the per-dataset mutation log. 128 batches of history is
// far more than any live warm entry can lag behind (entries refresh on
// every completed job), while keeping a hot dataset's log at worst a few MB.
const maxMutLog = 128

// dsState is the versioned state of one (dataset, scale): the current
// frozen graph, its fragment partitions per worker count, the mutation log,
// retained fixpoints and sequential references. All fields are guarded by
// mu; the graphs and fragments handed out under it are immutable.
//
// When the service is durable (Config.StateDir), the state also owns the
// dataset's WAL: mutate appends+fsyncs each batch before swapping the new
// version in, and the warm generation counters track which retained
// fixpoints the snapshot flusher still owes to disk.
type dsState struct {
	mu    sync.Mutex
	g     *graph.Graph
	frags map[int]*entry[[]*graph.Fragment]
	log   []mutRecord
	warm  map[warmKey]*warmEntry
	refs  map[refKey]*entry[any]

	// Durable fields. key/wal/rec are set once during the state fill (before
	// the state is shared) and immutable after; warmGen/warmFlushed/warmHits
	// are guarded by mu like the cache itself.
	key         string       // "NAME@SCALE" store identity ("" = ephemeral)
	wal         *durable.WAL // nil when ephemeral
	rec         dsRecovery   // what startup recovery replayed for this dataset
	warmGen     uint64       // bumped by storeWarm
	warmFlushed uint64       // warmGen as of the last persisted snapshot
	warmHits    int64        // jobs that re-converged from a retained fixpoint
}

// noteWarmHit counts one job that seeded from a retained fixpoint, feeding
// the argan_dataset_warm_hits_total family.
func (ds *dsState) noteWarmHit() {
	ds.mu.Lock()
	ds.warmHits++
	ds.mu.Unlock()
}

type dataCache struct {
	mu     sync.Mutex
	graphs map[string]*entry[*graph.Graph]
	states map[dsKey]*entry[*dsState]

	// store is the durable state directory (nil = ephemeral service). Set
	// once before the cache is shared.
	store *durable.Store
}

// entry is a once-per-key fill slot: concurrent requesters block on the
// first loader instead of duplicating the build. done publishes the fill
// for readers that must not block on a slow loader (metrics collection,
// dataset listings): a false load means "still loading, skip".
type entry[T any] struct {
	once sync.Once
	done atomic.Bool
	val  T
	err  error
}

func newDataCache() dataCache {
	return dataCache{
		graphs: make(map[string]*entry[*graph.Graph]),
		states: make(map[dsKey]*entry[*dsState]),
	}
}

func (c *dataCache) graph(dataset string, scale float64) (*graph.Graph, error) {
	key := fmt.Sprintf("%s@%g", dataset, scale)
	c.mu.Lock()
	e := c.graphs[key]
	if e == nil {
		e = &entry[*graph.Graph]{}
		c.graphs[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// LoadDataset memoizes and freezes internally (fingerprinted), so
		// this is the single base build for the server's lifetime.
		e.val, e.err = graph.LoadDataset(dataset, scale)
		e.done.Store(true)
	})
	return e.val, e.err
}

// dsName is the durable-store identity of a (dataset, scale); %g keeps the
// round trip through parseDSKey exact.
func dsName(dataset string, scale float64) string {
	return fmt.Sprintf("%s@%g", dataset, scale)
}

// state returns the versioned state for a (dataset, scale), loading the
// base graph (version 0) on first touch.
func (c *dataCache) state(dataset string, scale float64) (*dsState, error) {
	key := dsKey{dataset, scale}
	c.mu.Lock()
	e := c.states[key]
	if e == nil {
		e = &entry[*dsState]{}
		c.states[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer e.done.Store(true)
		g, err := c.graph(dataset, scale)
		if err != nil {
			e.err = err
			return
		}
		ds := &dsState{
			g:     g,
			frags: make(map[int]*entry[[]*graph.Fragment]),
			warm:  make(map[warmKey]*warmEntry),
			refs:  make(map[refKey]*entry[any]),
		}
		if c.store != nil {
			// Durable service: open the dataset's WAL, replay it on top of
			// the deterministic base, and reseed the warm cache from the
			// snapshot — one recovery path whether the state is touched at
			// startup (Open enumerates the store) or on first request.
			ds.key = dsName(dataset, scale)
			if err := ds.recoverDurable(c.store); err != nil {
				e.err = fmt.Errorf("recover %s: %w", ds.key, err)
				return
			}
		}
		e.val = ds
	})
	return e.val, e.err
}

// pinned is a job's immutable snapshot of a dataset at dispatch time: the
// graph and fragments of one version, plus the state handle for warm
// lookups. A concurrent Mutate swaps ds.g/ds.frags to the next version but
// never modifies what a pinned job holds.
type pinned struct {
	g       *graph.Graph
	frags   []*graph.Fragment
	version uint64
	ds      *dsState
}

// pin resolves the current version of a dataset for the given worker count,
// building (and caching) the fragment partition on first use per version.
func (c *dataCache) pin(dataset string, scale float64, workers int) (pinned, error) {
	ds, err := c.state(dataset, scale)
	if err != nil {
		return pinned{}, err
	}
	ds.mu.Lock()
	g := ds.g
	e := ds.frags[workers]
	if e == nil {
		e = &entry[[]*graph.Fragment]{}
		ds.frags[workers] = e
	}
	ds.mu.Unlock()
	if err := g.CheckFrozen(); err != nil {
		// The frozen-fragment safety net: a writer that mutated the shared
		// graph in place (instead of copying through ApplyMutations) is
		// detected before any job computes over poisoned data.
		return pinned{}, fmt.Errorf("dataset %s@%g: %w", dataset, scale, err)
	}
	e.once.Do(func() {
		env := core.Env{Workers: workers}
		e.val, e.err = env.Fragments(g)
	})
	if e.err != nil {
		return pinned{}, e.err
	}
	return pinned{g: g, frags: e.val, version: g.Version(), ds: ds}, nil
}

// mutate applies one batch to the current version of a dataset, swapping in
// the new graph and COW-updated fragment partitions. expect, when non-nil,
// is an optimistic-concurrency guard: the mutation only applies if the
// current version matches (mismatch returns graph.ErrVersionMismatch).
// Returns the old/new versions plus rebuilt/shared fragment counts summed
// over the cached worker counts.
func (c *dataCache) mutate(dataset string, scale float64, b graph.MutationBatch, expect *uint64) (*MutateResult, error) {
	ds, err := c.state(dataset, scale)
	if err != nil {
		return nil, err
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()

	old := ds.g
	if expect != nil && *expect != old.Version() {
		return nil, fmt.Errorf("%w: dataset %s@%g is at version %d, request expects %d",
			graph.ErrVersionMismatch, dataset, scale, old.Version(), *expect)
	}
	if err := old.CheckFrozen(); err != nil {
		return nil, fmt.Errorf("dataset %s@%g: %w", dataset, scale, err)
	}
	ng, _, err := old.ApplyMutations(b)
	if err != nil {
		return nil, err
	}
	ng.Freeze()

	touched := b.Endpoints()
	res := &MutateResult{
		Dataset: dataset, Scale: scale,
		OldVersion: old.Version(), NewVersion: ng.Version(),
		Inserts: len(b.Inserts), Deletes: len(b.Deletes),
	}
	nfrags := make(map[int]*entry[[]*graph.Fragment], len(ds.frags))
	for workers, e := range ds.frags {
		if e.err != nil {
			continue // a failed partition build is not carried forward
		}
		// Force the fill if a pin is racing us: entry.once makes this the
		// same value the pinned job got.
		e.once.Do(func() {
			env := core.Env{Workers: workers}
			e.val, e.err = env.Fragments(ds.g)
		})
		if e.err != nil {
			continue
		}
		nfs, rebuilt, err := graph.UpdateFragments(e.val, ng, touched)
		if err != nil {
			return nil, err
		}
		ne := &entry[[]*graph.Fragment]{val: nfs}
		ne.once.Do(func() {}) // mark filled
		ne.done.Store(true)
		nfrags[workers] = ne
		res.RebuiltFragments += len(rebuilt)
		res.SharedFragments += workers - len(rebuilt)
	}
	if ds.wal != nil {
		// Durability point: the batch is appended and fsynced as the LAST
		// fallible step before the in-memory swap. An append failure leaves
		// both memory and disk at the old version; once Append returns, the
		// acknowledged version is provably on disk. The frozen fingerprint
		// rides along so restart replay can verify each reconstructed
		// version bit-for-bit.
		fp, _ := ng.FrozenFingerprint()
		if err := ds.wal.Append(durable.Record{Version: ng.Version(), Fingerprint: fp, Batch: b}); err != nil {
			return nil, fmt.Errorf("dataset %s@%g: wal append: %w", dataset, scale, err)
		}
	}
	ds.g = ng
	ds.frags = nfrags
	ds.log = append(ds.log, mutRecord{version: ng.Version(), touched: touched})
	if len(ds.log) > maxMutLog {
		ds.log = ds.log[len(ds.log)-maxMutLog:]
	}
	return res, nil
}

// warmFor returns the retained fixpoint for a query key together with the
// union of vertices touched between its version and the pinned one. A nil
// entry with empty fallback means a cold first run; a nil entry with a
// fallback reason means a fixpoint existed but cannot be bridged (the job
// must full-recompute and flag it).
func (ds *dsState) warmFor(wk warmKey, version uint64) (*warmEntry, []graph.VID, string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	e := ds.warm[wk]
	if e == nil {
		return nil, nil, ""
	}
	if e.version == version {
		// Same version: nothing changed, so a warm start would trivially
		// return the retained values without exercising the engine (and
		// without honoring per-job fault plans). Run cold instead — the
		// incremental path only engages across a real version bump.
		return nil, nil, ""
	}
	if e.version > version {
		// The fixpoint is from a newer version than the pinned graph (a
		// mutate landed between pin and warm lookup, then a faster job
		// refreshed the entry). Re-converging backwards is unsound.
		return nil, nil, fmt.Sprintf("fixpoint at version %d is newer than pinned version %d", e.version, version)
	}
	seen := make(map[graph.VID]struct{})
	var touched []graph.VID
	need := e.version + 1
	for _, rec := range ds.log {
		if rec.version <= e.version || rec.version > version {
			continue
		}
		if rec.version != need {
			break // hole in the retained log
		}
		need++
		for _, v := range rec.touched {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				touched = append(touched, v)
			}
		}
	}
	if need != version+1 {
		return nil, nil, fmt.Sprintf("mutation log no longer covers versions %d..%d", e.version+1, version)
	}
	return e, touched, ""
}

// storeWarm retains a completed fixpoint for later warm starts, never
// regressing to an older version.
func (ds *dsState) storeWarm(wk warmKey, e *warmEntry) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if cur := ds.warm[wk]; cur == nil || cur.version <= e.version {
		ds.warm[wk] = e
		// The snapshot flusher owes this state to disk now; the generation
		// counter (not a bool) means a store landing mid-flush keeps the
		// dataset dirty instead of being masked by the flush completing.
		ds.warmGen++
	}
}

// reference returns the cached sequential answer for a (query, version),
// computing it on first use. The stored value's concrete type is
// app-dependent; the typed runners in job.go assert it back.
func (ds *dsState) reference(key refKey, compute func() any) any {
	ds.mu.Lock()
	e := ds.refs[key]
	if e == nil {
		e = &entry[any]{}
		ds.refs[key] = e
		// References for superseded versions are dead weight: keep only the
		// entries still reachable by pinned jobs (a small trailing window).
		for k := range ds.refs {
			if k.version+4 <= key.version {
				delete(ds.refs, k)
			}
		}
	}
	ds.mu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}

// dsHandle pairs a materialized state with its cache key.
type dsHandle struct {
	key dsKey
	ds  *dsState
}

// materialized snapshots the filled dataset states, sorted by (dataset,
// scale) so every consumer — the API listing, the metric families, the
// snapshot flusher — iterates deterministically.
func (c *dataCache) materialized() []dsHandle {
	c.mu.Lock()
	keys := make([]dsKey, 0, len(c.states))
	for k := range c.states {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dataset != keys[j].dataset {
			return keys[i].dataset < keys[j].dataset
		}
		return keys[i].scale < keys[j].scale
	})
	out := make([]dsHandle, 0, len(keys))
	for _, k := range keys {
		e := c.states[k]
		if !e.done.Load() || e.val == nil {
			continue // still loading or failed
		}
		out = append(out, dsHandle{key: k, ds: e.val})
	}
	c.mu.Unlock()
	return out
}

// versions lists the datasets the cache has materialized, for the API.
func (c *dataCache) versions() []DatasetInfo {
	var out []DatasetInfo
	for _, h := range c.materialized() {
		h.ds.mu.Lock()
		out = append(out, DatasetInfo{
			Dataset: h.key.dataset, Scale: h.key.scale,
			Version:  h.ds.g.Version(),
			Vertices: h.ds.g.NumVertices(), Edges: h.ds.g.NumEdges(),
		})
		h.ds.mu.Unlock()
	}
	return out
}

// dsMetric is one dataset's sample for the per-dataset metric families.
type dsMetric struct {
	dataset  string
	scale    float64
	version  uint64
	warmHits int64
}

// dsMetrics samples every materialized dataset for /metrics, in the same
// deterministic order as versions().
func (c *dataCache) dsMetrics() []dsMetric {
	var out []dsMetric
	for _, h := range c.materialized() {
		h.ds.mu.Lock()
		out = append(out, dsMetric{
			dataset: h.key.dataset, scale: h.key.scale,
			version: h.ds.g.Version(), warmHits: h.ds.warmHits,
		})
		h.ds.mu.Unlock()
	}
	return out
}
