// Package serve is the resident multi-tenant job service of the GAP
// runtime: a long-lived Service that loads frozen, fingerprinted datasets
// once and admits many concurrent GAP jobs over shared immutable fragments,
// each job with its own worker pool, tuner state, recovery domain and memory
// budget slice.
//
// Robustness is the design center:
//
//   - Admission control: jobs cost core tokens; a bounded FIFO queue holds
//     what the cores cannot run yet, and past the queue the service sheds
//     load (ErrSaturated → HTTP 429) instead of queueing forever or OOMing.
//   - Fault isolation: every job runs its own live driver with localized
//     recovery, a private mem.Governor slice carved from one shared
//     mem.Pool, and NoEdgeSpill so the shared fragments are never mutated.
//     A job that crashes, panics or blows its deadline is quarantined —
//     marked failed/canceled with the error — while its neighbors keep
//     running.
//   - Deadlines and cancellation: per-job deadlines (ticking from
//     submission, so queue time counts) and client cancellations propagate
//     into the driver's control plane via LiveConfig.Cancel.
//   - Graceful drain: Drain stops admissions (readyz goes red) but finishes
//     every admitted job — queued ones included — before returning, so a
//     SIGTERM rollout never loses accepted work.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"argan/internal/durable"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/mem"
)

// Job states.
const (
	StatePending  = "pending"  // admitted, waiting for core tokens
	StateRunning  = "running"  // executing under its own live driver
	StateDone     = "done"     // finished; result available
	StateFailed   = "failed"   // quarantined: crashed, panicked or diverged
	StateCanceled = "canceled" // client cancellation or deadline
)

// Admission errors. Submit wraps them with detail; test with errors.Is.
var (
	// ErrSaturated means cores and queue are both full: the service sheds
	// the job (HTTP 429) rather than queueing it forever.
	ErrSaturated = errors.New("serve: saturated")
	// ErrDraining means the service is shutting down and admits nothing
	// new (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrNoSuchJob means the job ID is unknown — never assigned, or a
	// terminal job already evicted from the bounded history (HTTP 404).
	ErrNoSuchJob = errors.New("serve: no such job")
)

// Config parameterizes a Service. Zero values select sensible defaults.
type Config struct {
	// Cores is the admission controller's token budget: the sum of worker
	// counts across running jobs never exceeds it. Default 4.
	Cores int
	// QueueDepth bounds the admitted-but-not-running FIFO queue; a full
	// queue sheds (429). Default 2×Cores.
	QueueDepth int
	// MemBudget is the total governed bytes shared by all concurrent jobs;
	// each running job gets a slice proportional to its core share. 0
	// leaves jobs ungoverned.
	MemBudget int64
	// SpillDir is where governed jobs spill ("" = OS temp dir).
	SpillDir string
	// MaxWorkersPerJob clamps a job's requested worker count. Default 4,
	// and never above Cores.
	MaxWorkersPerJob int
	// DefaultDeadline applies to jobs that do not set their own (0 = no
	// deadline). Deadlines tick from submission, so queue time counts.
	DefaultDeadline time.Duration
	// Watchdog is each job's stuck-run budget (gap.LiveConfig.Watchdog).
	// 0 keeps the driver default (30s); it bounds how long a wedged job
	// can hold its core tokens.
	Watchdog time.Duration
	// StateDir, when set, makes the service crash-durable: every applied
	// mutation batch is appended+fsynced to a per-dataset WAL before it is
	// acknowledged, warm fixpoints are snapshotted periodically, and Open
	// replays the directory back to the last durable version on restart.
	// Empty = ephemeral (all state dies with the process).
	StateDir string
	// SnapshotEvery is the warm-fixpoint flush period (<= 0 disables the
	// periodic flusher; a final snapshot is still taken at drain). Only
	// meaningful with StateDir.
	SnapshotEvery time.Duration
	// MaxHistory bounds how many terminal jobs the service retains for
	// Status/Result/List and the per-job metric families. Past the bound
	// the oldest terminal jobs are evicted (their JobResults freed, their
	// metric series dropped); running and queued jobs are never evicted,
	// so a resident service stays memory- and scrape-bounded under
	// sustained load. Default 512; negative retains everything.
	MaxHistory int
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Cores
	}
	if c.MaxWorkersPerJob <= 0 {
		c.MaxWorkersPerJob = 4
	}
	if c.MaxWorkersPerJob > c.Cores {
		c.MaxWorkersPerJob = c.Cores
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 512
	}
	return c
}

// JobSpec is a submitted job: which application over which frozen dataset,
// with optional fault injection, verification and deadline.
type JobSpec struct {
	App     string  `json:"app"`     // sssp, bfs, wcc or pr
	Dataset string  `json:"dataset"` // built-in dataset name (HW, DP, LJ, ...)
	Scale   float64 `json:"scale"`   // dataset scale (default 0.25)
	Workers int     `json:"workers"` // worker pool size (clamped; default 2)
	Source  int     `json:"source"`  // source vertex for sssp/bfs
	Eps     float64 `json:"eps"`     // delta threshold for pr (default 1e-3)
	// CheckEvery seeds the job's granularity bound η (0 = driver default).
	// Tenants with latency-sensitive jobs can trade throughput for faster
	// cancellation/fault detection by lowering it.
	CheckEvery int `json:"check_every,omitempty"`
	// Faults is an in-run fault plan spec (internal/fault grammar), e.g.
	// "crash=1@u200+10" or "panic=0@u300". Empty = clean run.
	Faults string `json:"faults,omitempty"`
	// Deadline bounds the job's total lifetime from submission (a
	// time.ParseDuration string, e.g. "5s"). Empty uses the service
	// default; "0" means no deadline even if the service has a default.
	Deadline string `json:"deadline,omitempty"`
	// Verify re-checks the result against the cached sequential reference;
	// the job is quarantined (failed) if any vertex diverges.
	Verify bool `json:"verify,omitempty"`
}

func (sp *JobSpec) normalize(cfg Config) (time.Duration, error) {
	switch sp.App {
	case "sssp", "bfs", "wcc", "pr":
	default:
		return 0, fmt.Errorf("app %q does not run under the live driver (want sssp, bfs, wcc or pr)", sp.App)
	}
	if sp.Dataset == "" {
		return 0, fmt.Errorf("dataset is required")
	}
	if sp.Scale <= 0 {
		sp.Scale = 0.25
	}
	if sp.Workers <= 0 {
		sp.Workers = 2
	}
	if sp.Workers > cfg.MaxWorkersPerJob {
		sp.Workers = cfg.MaxWorkersPerJob
	}
	if sp.Eps <= 0 {
		sp.Eps = 1e-3
	}
	if sp.CheckEvery < 0 {
		sp.CheckEvery = 0
	}
	if sp.Faults != "" {
		if _, err := fault.Parse(sp.Faults); err != nil {
			return 0, err
		}
	}
	deadline := cfg.DefaultDeadline
	if sp.Deadline != "" {
		d, err := time.ParseDuration(sp.Deadline)
		if err != nil {
			return 0, fmt.Errorf("deadline: %w", err)
		}
		if d < 0 {
			return 0, fmt.Errorf("deadline must be >= 0")
		}
		deadline = d
	}
	return deadline, nil
}

// JobStatus is the externally visible state of one job.
type JobStatus struct {
	ID       string  `json:"id"`
	State    string  `json:"state"`
	App      string  `json:"app"`
	Dataset  string  `json:"dataset"`
	Scale    float64 `json:"scale"`
	Workers  int     `json:"workers"`
	Err      string  `json:"err,omitempty"`
	Queued   string  `json:"queued_at"`
	WaitMS   float64 `json:"wait_ms"`          // submission → start (or now)
	RunMS    float64 `json:"run_ms,omitempty"` // start → finish (or now)
	Deadline string  `json:"deadline,omitempty"`
	// Live control-plane view of a running job (zero after it ends).
	Dead    int   `json:"dead,omitempty"`
	Updates int64 `json:"updates,omitempty"`
}

// JobResult is the summary a finished job serves. Raw vertex arrays stay on
// the server; clients get counts, a checksum and the driver metrics.
type JobResult struct {
	ID       string `json:"id"`
	App      string `json:"app"`
	Vertices int    `json:"vertices"`
	// Wrong counts vertices diverging from the sequential reference; -1
	// when the job did not request verification.
	Wrong      int     `json:"wrong"`
	Checksum   float64 `json:"checksum"`
	WallMS     float64 `json:"wall_ms"`
	Updates    int64   `json:"updates"`
	MsgsSent   int64   `json:"msgs_sent"`
	Crashes    int64   `json:"crashes"`
	Recoveries int64   `json:"recoveries"`
	Replayed   int64   `json:"replayed"`
	Epochs     int64   `json:"epochs"`
	Recovery   string  `json:"recovery,omitempty"`
	MemPeak    int64   `json:"mem_peak_bytes,omitempty"`
	Spilled    int64   `json:"spilled_bytes,omitempty"`
	// Version is the dataset version the job pinned at dispatch.
	Version uint64 `json:"version"`
	// Incremental marks a warm re-convergence from the fixpoint of
	// IncrementalFrom instead of a cold full run. Incremental results are
	// always verified against the sequential reference of the pinned
	// version (Wrong is never -1 for them).
	Incremental     bool   `json:"incremental,omitempty"`
	IncrementalFrom uint64 `json:"incremental_from,omitempty"`
	// Fallback carries the reason an available fixpoint could NOT be used
	// (mutation-log truncation, non-invertible program), i.e. why this run
	// recomputed from scratch despite prior state.
	Fallback string `json:"fallback,omitempty"`
}

// DrainStats summarizes a graceful drain.
type DrainStats struct {
	// Jobs is how many admitted jobs (running + queued) the drain waited
	// for; Forced of them were cancel-forced by the drain timeout.
	Jobs   int `json:"jobs"`
	Forced int `json:"forced"`
	// WaitMS is how long the drain took end to end.
	WaitMS float64 `json:"wait_ms"`
	// Completed/Failed/Canceled are the service lifetime totals at drain
	// completion.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
}

type job struct {
	id       string
	spec     JobSpec
	deadline time.Duration
	cores    int

	// Guarded by Service.mu.
	state      string
	err        string
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	result     *JobResult

	cancel     chan struct{}
	cancelOnce sync.Once
	timer      *time.Timer
	timerStop  sync.Once
	health     *gap.HealthTracker
	done       chan struct{}
}

func (j *job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Service is the resident job service. Create with New, then Submit jobs
// (directly or through the HTTP API in http.go) and Drain before exit.
type Service struct {
	cfg  Config
	pool *mem.Pool

	mu        sync.Mutex
	seq       int
	jobs      map[string]*job
	order     []string
	queue     []*job
	coresFree int
	running   int
	draining  bool
	drained   chan struct{}

	// Lifetime counters (guarded by mu; read via Stats).
	submitted, admitted, shed                int64
	completed, failed, canceled, quarantined int64
	mutations, mutatedEdges                  int64
	incremental, recomputes                  int64
	terminals                                int // jobs still retained in terminal state

	// timersLive counts armed deadline timers not yet released through
	// stopDeadline. Every terminal path funnels through finalize, so a
	// non-zero residue after all jobs are terminal is a timer leak — the
	// regression tests assert on it.
	timersLive atomic.Int64

	// Durable-layer counters (guarded by mu) and recovery summary
	// (immutable after Open).
	snapshots, snapshotsDeferred, snapshotErrs int64
	recovery                                   *RecoveryStats
	snapStop, snapDone                         chan struct{}
	shutdownOnce                               sync.Once

	drainStart  time.Time
	drainMS     float64
	drainJobs   int
	drainForced int

	data dataCache
}

// Stats is a point-in-time service summary, also exported as /metrics
// families in metrics.go.
type Stats struct {
	Cores, CoresFree, QueueDepth, Queued, Running int
	Draining                                      bool
	Submitted, Admitted, Shed                     int64
	Completed, Failed, Canceled, Quarantined      int64
	// Mutations counts applied edge batches; MutatedEdges the total edge
	// operations in them. Incremental/Recomputes split completed runs that
	// had a prior fixpoint available into warm re-convergences vs flagged
	// full recomputes.
	Mutations, MutatedEdges int64
	Incremental, Recomputes int64
	DeadlineTimers          int64
	DrainMS                 float64
	// Snapshots counts persisted warm-fixpoint flushes; SnapshotsDeferred
	// flushes skipped because the memory pool could not cover the encode;
	// SnapshotErrs failed flush attempts. All zero on ephemeral services.
	Snapshots, SnapshotsDeferred, SnapshotErrs int64
	// Recovery is what startup recovery replayed (nil without a StateDir).
	Recovery *RecoveryStats `json:",omitempty"`
}

// Open builds a Service, recovering durable state first when StateDir is
// set: the state directory is enumerated, each known dataset's WAL is
// replayed (fingerprint-verified) on top of its deterministic base, warm
// fixpoints are reseeded from snapshots, and the periodic flusher starts.
// Datasets without durable state still load lazily on first use.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		pool:      mem.NewPool(cfg.MemBudget, cfg.SpillDir),
		jobs:      make(map[string]*job),
		coresFree: cfg.Cores,
		drained:   make(chan struct{}),
		data:      newDataCache(),
	}
	if cfg.StateDir != "" {
		store, err := durable.OpenStore(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		s.data.store = store
		rs, err := s.recoverAll()
		if err != nil {
			return nil, fmt.Errorf("serve: recover state dir %s: %w", cfg.StateDir, err)
		}
		s.recovery = &rs
		if cfg.SnapshotEvery > 0 {
			s.snapStop = make(chan struct{})
			s.snapDone = make(chan struct{})
			go s.snapshotLoop(cfg.SnapshotEvery)
		}
	}
	return s, nil
}

// New builds an ephemeral-or-durable Service like Open but panics on
// durable-state errors; it exists for callers (and a large body of tests)
// that predate the durability layer and never set StateDir, for which Open
// cannot fail.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("serve.New: %v (use serve.Open to handle durable-state errors)", err))
	}
	return s
}

// Config returns the resolved configuration.
func (s *Service) Config() Config { return s.cfg }

// Preload loads, freezes and partitions a dataset at the given scale for
// the given worker count, so the first job over it does not pay the build.
func (s *Service) Preload(dataset string, scale float64, workers int) error {
	if workers <= 0 {
		workers = s.cfg.MaxWorkersPerJob
	}
	_, err := s.data.pin(dataset, scale, workers)
	return err
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Cores: s.cfg.Cores, CoresFree: s.coresFree,
		QueueDepth: s.cfg.QueueDepth, Queued: len(s.queue), Running: s.running,
		Draining:  s.draining,
		Submitted: s.submitted, Admitted: s.admitted, Shed: s.shed,
		Completed: s.completed, Failed: s.failed, Canceled: s.canceled,
		Quarantined: s.quarantined,
		Mutations:   s.mutations, MutatedEdges: s.mutatedEdges,
		Incremental: s.incremental, Recomputes: s.recomputes,
		DeadlineTimers: s.timersLive.Load(),
		DrainMS:        s.drainMS,
		Snapshots:      s.snapshots, SnapshotsDeferred: s.snapshotsDeferred,
		SnapshotErrs: s.snapshotErrs,
		Recovery:     s.recovery,
	}
}

// Submit admits a job (or sheds it). On success the job is pending or
// already running; its ID resolves through Status/Result/Cancel.
func (s *Service) Submit(spec JobSpec) (string, error) {
	deadline, err := spec.normalize(s.cfg)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitted++
	if s.draining {
		return "", ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.shed++
		return "", fmt.Errorf("%w: queue full (%d jobs deep)", ErrSaturated, len(s.queue))
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("job-%d", s.seq),
		spec:     spec,
		deadline: deadline,
		cores:    spec.Workers,
		state:    StatePending,
		queuedAt: time.Now(),
		cancel:   make(chan struct{}),
		health:   &gap.HealthTracker{},
		done:     make(chan struct{}),
	}
	if deadline > 0 {
		j.timer = time.AfterFunc(deadline, func() {
			s.CancelReason(j.id, "deadline exceeded")
		})
		s.timersLive.Add(1)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	s.admitted++
	s.pump()
	return j.id, nil
}

// pump dispatches queued jobs while core tokens last. FIFO with no
// overtaking: a wide job at the head waits rather than starving behind a
// stream of narrow ones. Callers hold s.mu.
func (s *Service) pump() {
	for len(s.queue) > 0 && s.queue[0].cores <= s.coresFree {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.coresFree -= j.cores
		s.running++
		j.state = StateRunning
		j.startedAt = time.Now()
		go s.execute(j)
	}
}

// stopDeadline releases j's deadline timer exactly once, whatever terminal
// path got here first — normal completion, panic quarantine, queued-then-
// canceled, drain force-cancel, or the timer itself firing. The once guard
// makes the accounting race-free when several of those paths converge on
// finalize concurrently.
func (s *Service) stopDeadline(j *job) {
	if j.timer == nil {
		return
	}
	j.timerStop.Do(func() {
		j.timer.Stop()
		s.timersLive.Add(-1)
	})
}

// finalize moves j to a terminal state, returns its tokens and kicks the
// dispatcher. Callers must NOT hold s.mu. It is the single terminal-
// transition choke point, so the deadline timer is released here on every
// path a job can end through.
func (s *Service) finalize(j *job, state, errMsg string, res *JobResult, heldCores bool) {
	s.stopDeadline(j)
	s.mu.Lock()
	if j.terminal() {
		s.mu.Unlock()
		return
	}
	j.state = state
	j.err = errMsg
	j.finishedAt = time.Now()
	j.result = res
	switch state {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateCanceled:
		s.canceled++
	}
	if heldCores {
		s.coresFree += j.cores
		s.running--
	}
	s.terminals++
	s.evictLocked()
	s.pump()
	s.checkDrained()
	s.mu.Unlock()
	close(j.done)
}

// evictLocked drops the oldest terminal jobs once more than MaxHistory of
// them are retained, so a resident service's job table, JobResults and
// per-job metric exposition stay bounded under sustained load. Running and
// queued jobs are never evicted. Callers hold s.mu.
func (s *Service) evictLocked() {
	if s.cfg.MaxHistory < 0 {
		return
	}
	for s.terminals > s.cfg.MaxHistory {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.terminals--
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// checkDrained closes the drain gate once draining is on and every admitted
// job is terminal, recording the drain wall time so every Drain caller —
// first or repeat — reports the same stats. Callers hold s.mu.
func (s *Service) checkDrained() {
	if !s.draining || s.running > 0 || len(s.queue) > 0 {
		return
	}
	select {
	case <-s.drained:
	default:
		s.drainMS = float64(time.Since(s.drainStart)) / 1e6
		close(s.drained)
	}
}

// Cancel cancels a job: a queued job is removed, a running one has the
// cancellation propagated through its driver's control plane. Canceling a
// finished job is a no-op. Unknown IDs return an error.
func (s *Service) Cancel(id string) error {
	return s.CancelReason(id, "canceled by client")
}

// CancelReason is Cancel with an explicit reason recorded in the job's Err.
func (s *Service) CancelReason(id, reason string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w %q", ErrNoSuchJob, id)
	}
	if j.terminal() {
		s.mu.Unlock()
		return nil
	}
	if j.state == StatePending {
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		s.finalize(j, StateCanceled, reason, nil, false)
		return nil
	}
	// Running: record the reason and close the driver's cancel channel.
	// The write stays under s.mu — statusLocked readers and finalize touch
	// j.err concurrently — and precedes the close, so execute() reads the
	// reason safely after RunLive observes the cancellation. execute()
	// finalizes when RunLive returns ErrCanceled.
	j.cancelOnce.Do(func() {
		j.err = reason
		close(j.cancel)
	})
	s.mu.Unlock()
	return nil
}

// Status reports one job.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w %q", ErrNoSuchJob, id)
	}
	return s.statusLocked(j), nil
}

// List reports every job in submission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

func (s *Service) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, State: j.state, App: j.spec.App,
		Dataset: j.spec.Dataset, Scale: j.spec.Scale, Workers: j.spec.Workers,
		Err:    j.err,
		Queued: j.queuedAt.Format(time.RFC3339Nano),
	}
	if j.deadline > 0 {
		st.Deadline = j.deadline.String()
	}
	switch {
	case j.state == StatePending:
		st.WaitMS = float64(time.Since(j.queuedAt)) / 1e6
	case j.startedAt.IsZero():
		st.WaitMS = float64(j.finishedAt.Sub(j.queuedAt)) / 1e6
	default:
		st.WaitMS = float64(j.startedAt.Sub(j.queuedAt)) / 1e6
		end := j.finishedAt
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = float64(end.Sub(j.startedAt)) / 1e6
	}
	if j.state == StateRunning {
		h := j.health.Health()
		st.Dead = h.Dead
		st.Updates = h.Updates
	}
	return st
}

// Result returns a finished job's result summary. Running/pending jobs
// return an error distinguishable from unknown IDs via errors.Is.
var ErrNotFinished = errors.New("serve: job not finished")

func (s *Service) Result(id string) (*JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w %q", ErrNoSuchJob, id)
	}
	if !j.terminal() {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.state)
	}
	if j.result == nil {
		return nil, fmt.Errorf("serve: job %s %s: %s", id, j.state, j.err)
	}
	return j.result, nil
}

// Wait blocks until the job reaches a terminal state or the timeout lapses
// (timeout <= 0 waits forever). Returns the final status.
func (s *Service) Wait(id string, timeout time.Duration) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w %q", ErrNoSuchJob, id)
	}
	if timeout > 0 {
		select {
		case <-j.done:
		case <-time.After(timeout):
			return s.Status(id)
		}
	} else {
		<-j.done
	}
	return s.Status(id)
}

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admissions and waits for every admitted job — running and
// queued — to finish. Jobs still unfinished at the first caller's timeout
// are cancel-forced and waited for briefly (a forced job still releases its
// tokens). A zero timeout waits forever. Safe to call repeatedly and
// concurrently: every call blocks until the drain completes and returns the
// same recorded stats (wall time, forced count, final lifetime counters).
func (s *Service) Drain(timeout time.Duration) DrainStats {
	s.mu.Lock()
	first := !s.draining
	var jobs []*job
	if first {
		s.draining = true
		s.drainStart = time.Now()
		s.drainJobs = s.running + len(s.queue)
		for _, j := range s.jobs {
			if !j.terminal() {
				jobs = append(jobs, j)
			}
		}
		s.checkDrained() // nothing in flight: drain completes immediately
	}
	s.mu.Unlock()

	if first && timeout > 0 {
		select {
		case <-s.drained:
		case <-time.After(timeout):
			for _, j := range jobs {
				// Count the forced job under s.mu before cancel-forcing it,
				// so s.drainForced is complete before the last finalize can
				// close s.drained and wake any waiter below.
				s.mu.Lock()
				force := !j.terminal()
				if force {
					s.drainForced++
				}
				s.mu.Unlock()
				if force {
					s.CancelReason(j.id, "drain timeout")
				}
			}
		}
	}
	<-s.drained

	// Every admitted job is terminal: flush the warm cache one last time
	// and close the WALs so the state dir is consistent the moment Drain
	// returns (idempotent across repeat callers).
	s.shutdownDurable()

	// The drain wall time was recorded by checkDrained at gate-close, so
	// first and repeat callers all rebuild the same stats here.
	s.mu.Lock()
	defer s.mu.Unlock()
	return DrainStats{
		Jobs: s.drainJobs, Forced: s.drainForced, WaitMS: s.drainMS,
		Completed: s.completed, Failed: s.failed, Canceled: s.canceled,
	}
}
