package serve

// Tests for the evolving-dataset path: Mutate bumps the version under COW,
// pinned jobs are undisturbed, later jobs re-converge incrementally from the
// retained fixpoint, and every increment is verified against the sequential
// reference on the new version. Plus the timer-leak regression suite and the
// mutate-vs-compute interleaving storm.

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"argan/internal/fault"
	"argan/internal/graph"
)

// churnRequest materializes ops edge operations against g: half deletes of
// existing arcs, half fresh inserts, drawn deterministically from seed.
func churnRequest(g *graph.Graph, scale float64, seed int64, ops int) MutateRequest {
	r := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		adj, ws := g.OutNeighbors(graph.VID(v)), g.OutWeights(graph.VID(v))
		for i, u := range adj {
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: u, W: ws[i]})
		}
	}
	k := ops / 2
	if k < 1 {
		k = 1
	}
	req := MutateRequest{Scale: scale}
	seen := map[[2]graph.VID]bool{}
	for _, i := range r.Perm(len(edges))[:k] {
		e := edges[i]
		if seen[[2]graph.VID{e.Src, e.Dst}] {
			continue
		}
		seen[[2]graph.VID{e.Src, e.Dst}] = true
		req.Deletes = append(req.Deletes, graph.Edge{Src: e.Src, Dst: e.Dst})
	}
	n := g.NumVertices()
	for len(req.Inserts) < k {
		u, v := graph.VID(r.Intn(n)), graph.VID(r.Intn(n))
		if u == v || g.HasEdge(u, v) || seen[[2]graph.VID{u, v}] {
			continue
		}
		seen[[2]graph.VID{u, v}] = true
		req.Inserts = append(req.Inserts, graph.Edge{Src: u, Dst: v, W: float64(1 + r.Intn(9))})
	}
	return req
}

func runVerified(t *testing.T, s *Service, app string) *JobResult {
	t.Helper()
	id, err := s.Submit(tinySpec(app))
	if err != nil {
		t.Fatalf("%s submit: %v", app, err)
	}
	st, err := s.Wait(id, 60*time.Second)
	if err != nil || st.State != StateDone {
		t.Fatalf("%s: %+v err %v", app, st, err)
	}
	res, err := s.Result(id)
	if err != nil {
		t.Fatalf("%s result: %v", app, err)
	}
	if res.Wrong != 0 {
		t.Fatalf("%s diverged: %d wrong of %d", app, res.Wrong, res.Vertices)
	}
	return res
}

func TestMutateBumpsVersionAndWarmStartsJobs(t *testing.T) {
	s := New(Config{Cores: 4})
	apps := []string{"pr", "sssp", "bfs", "wcc"}
	for _, app := range apps {
		res := runVerified(t, s, app)
		if res.Version != 0 || res.Incremental || res.Fallback != "" {
			t.Fatalf("%s cold run mislabeled: %+v", app, res)
		}
	}
	p, err := s.data.pin("HW", 0.02, 2)
	if err != nil {
		t.Fatalf("pin: %v", err)
	}
	req := churnRequest(p.g, 0.02, 7, 12)
	mr, err := s.Mutate("HW", req)
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if mr.OldVersion != 0 || mr.NewVersion != 1 || mr.RebuiltFragments == 0 {
		t.Fatalf("mutate result: %+v", mr)
	}
	// The pinned snapshot is undisturbed by the swap; the service now serves
	// version 1.
	if p.g.Version() != 0 {
		t.Fatalf("pinned graph version changed: %d", p.g.Version())
	}
	p2, _ := s.data.pin("HW", 0.02, 2)
	if p2.version != 1 || p2.g == p.g {
		t.Fatalf("post-mutate pin: version %d, shared graph %v", p2.version, p2.g == p.g)
	}
	// Every app re-converges from its retained fixpoint — incremental,
	// bridged from version 0, and verified against the version-1 reference.
	for _, app := range apps {
		res := runVerified(t, s, app)
		if res.Version != 1 || !res.Incremental || res.IncrementalFrom != 0 {
			t.Fatalf("%s warm run mislabeled: %+v", app, res)
		}
	}
	st := s.Stats()
	if st.Mutations != 1 || st.MutatedEdges != int64(len(req.Inserts)+len(req.Deletes)) {
		t.Fatalf("mutation accounting: %+v", st)
	}
	if st.Incremental != int64(len(apps)) {
		t.Fatalf("incremental accounting: %+v", st)
	}
}

func TestMutateGuards(t *testing.T) {
	s := New(Config{Cores: 2})
	if err := s.Preload("HW", 0.02, 2); err != nil {
		t.Fatalf("preload: %v", err)
	}
	ins := []graph.Edge{{Src: 1, Dst: 40, W: 3}}

	// Optimistic-concurrency guard: a stale expected version refuses with the
	// typed mismatch error and does not bump the dataset.
	stale := uint64(5)
	_, err := s.Mutate("HW", MutateRequest{Scale: 0.02, ExpectVersion: &stale, Inserts: ins})
	if !errors.Is(err, graph.ErrVersionMismatch) {
		t.Fatalf("stale expect: %v", err)
	}
	// Empty batches and deletes of absent edges fail whole; the version stays.
	if _, err := s.Mutate("HW", MutateRequest{Scale: 0.02}); err == nil {
		t.Fatal("empty batch accepted")
	}
	_, err = s.Mutate("HW", MutateRequest{Scale: 0.02, Deletes: []graph.Edge{{Src: 1, Dst: 1}}})
	if !errors.Is(err, graph.ErrNoSuchEdge) {
		t.Fatalf("absent delete: %v", err)
	}
	if p, _ := s.data.pin("HW", 0.02, 2); p.version != 0 {
		t.Fatalf("failed mutations bumped the version to %d", p.version)
	}
	// A correct expectation applies.
	cur := uint64(0)
	mr, err := s.Mutate("HW", MutateRequest{Scale: 0.02, ExpectVersion: &cur, Inserts: ins})
	if err != nil || mr.NewVersion != 1 {
		t.Fatalf("guarded mutate: %+v err %v", mr, err)
	}
	// A draining service refuses writes like it refuses jobs.
	s.Drain(time.Second)
	if _, err := s.Mutate("HW", MutateRequest{Scale: 0.02, Inserts: ins}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining mutate: %v", err)
	}
}

func TestMutateHTTP(t *testing.T) {
	s := New(Config{Cores: 2})
	ts := httptest.NewServer(s.APIHandler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	id, err := c.Submit(tinySpec("sssp"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.WaitTerminal(id, 30*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
	mr, err := c.Mutate("HW", MutateRequest{Scale: 0.02, Inserts: []graph.Edge{{Src: 1, Dst: 40, W: 3}}})
	if err != nil || mr.OldVersion != 0 || mr.NewVersion != 1 {
		t.Fatalf("mutate over HTTP: %+v err %v", mr, err)
	}
	// Version mismatch maps to 412 and back to the typed error.
	stale := uint64(0)
	_, err = c.Mutate("HW", MutateRequest{Scale: 0.02, ExpectVersion: &stale, Inserts: []graph.Edge{{Src: 1, Dst: 41, W: 3}}})
	if !errors.Is(err, graph.ErrVersionMismatch) {
		t.Fatalf("want ErrVersionMismatch over HTTP, got %v", err)
	}
	if _, err := c.Mutate("HW", MutateRequest{Scale: 0.02}); err == nil {
		t.Fatal("empty batch accepted over HTTP")
	}
	if _, err := c.Mutate("", MutateRequest{Scale: 0.02}); err == nil {
		t.Fatal("missing dataset accepted over HTTP")
	}
	ds, err := c.Datasets()
	if err != nil || len(ds) != 1 {
		t.Fatalf("datasets: %+v err %v", ds, err)
	}
	if ds[0].Dataset != "HW" || ds[0].Version != 1 || ds[0].Vertices == 0 || ds[0].Edges == 0 {
		t.Fatalf("dataset info: %+v", ds[0])
	}
	// The post-mutate job runs incrementally end to end over HTTP.
	id, err = c.Submit(tinySpec("sssp"))
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := c.WaitTerminal(id, 30*time.Second); err != nil {
		t.Fatalf("wait 2: %v", err)
	}
	res, err := c.Result(id)
	if err != nil || res.Wrong != 0 || !res.Incremental || res.Version != 1 {
		t.Fatalf("incremental over HTTP: %+v err %v", res, err)
	}
}

// TestDeadlineTimersStoppedOnAllPaths is the timer-leak regression: every
// terminal path — normal completion, queued cancel, running cancel, panic
// quarantine, drain force, and the deadline actually firing — must release
// its armed deadline timer. A leak shows up as DeadlineTimers > 0.
func TestDeadlineTimersStoppedOnAllPaths(t *testing.T) {
	s := New(Config{Cores: 2, QueueDepth: 4})
	deadline := func(sp JobSpec, d string) JobSpec { sp.Deadline = d; return sp }

	// Normal completion.
	id, err := s.Submit(deadline(tinySpec("sssp"), "30s"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, _ := s.Wait(id, 30*time.Second); st.State != StateDone {
		t.Fatalf("done path: %+v", st)
	}

	// Queued cancel + running cancel: the slow job takes both cores, the
	// queued one never dispatches.
	rid, err := s.Submit(deadline(slowSpec(10000, 60), "60s"))
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	qid, err := s.Submit(deadline(slowSpec(10000, 60), "60s"))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if err := s.Cancel(qid); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if err := s.Cancel(rid); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if st, _ := s.Wait(rid, 10*time.Second); st.State != StateCanceled {
		t.Fatalf("running cancel: %+v", st)
	}

	// Panic quarantine.
	rogue := deadline(tinySpec("sssp"), "30s")
	rogue.Verify = false
	rogue.Faults = "panic=0@u10"
	pid, err := s.Submit(rogue)
	if err != nil {
		t.Fatalf("submit rogue: %v", err)
	}
	if st, _ := s.Wait(pid, 30*time.Second); st.State != StateFailed {
		t.Fatalf("rogue path: %+v", st)
	}

	// Deadline fires.
	did, err := s.Submit(deadline(slowSpec(10000, 60), "150ms"))
	if err != nil {
		t.Fatalf("submit deadline: %v", err)
	}
	if st, _ := s.Wait(did, 10*time.Second); st.State != StateCanceled || !strings.Contains(st.Err, "deadline") {
		t.Fatalf("deadline path: %+v", st)
	}

	// Drain force.
	fid, err := s.Submit(deadline(slowSpec(60000, 150), "90s"))
	if err != nil {
		t.Fatalf("submit straggler: %v", err)
	}
	if stats := s.Drain(300 * time.Millisecond); stats.Forced != 1 {
		t.Fatalf("drain did not force: %+v", stats)
	}
	if st, _ := s.Status(fid); st.State != StateCanceled {
		t.Fatalf("forced path: %+v", st)
	}

	if st := s.Stats(); st.DeadlineTimers != 0 {
		t.Fatalf("deadline timers leaked: %+v", st)
	}
}

// TestMutationStormUnderLoad interleaves a fault.MutationStorm of edge
// batches with a fault.JobStorm of concurrent tenants (crashy jobs included)
// over the same dataset. Every non-rogue job must finish reference-verified
// against the version it pinned; mutations racing dispatch are absorbed by
// version pinning, and warm re-convergence engages across the bumps.
func TestMutationStormUnderLoad(t *testing.T) {
	const clients = 12
	const seed = 20260808
	s := New(Config{Cores: 4, QueueDepth: clients, MaxWorkersPerJob: 2,
		DefaultDeadline: 2 * time.Minute})
	if err := s.Preload("HW", 0.04, 2); err != nil {
		t.Fatalf("preload: %v", err)
	}

	jobs := fault.JobStorm(seed, clients, fault.JobStormOpts{
		Bursts: 3, BurstGapMS: 120, Rogues: -1, Crashy: 2, Span: 200, RestartMS: 5,
	})
	muts := fault.MutationStorm(seed, 3, fault.MutationStormOpts{
		BurstGapMS: 120, MinOps: 6, MaxOps: 24,
	})
	apps := []string{"sssp", "bfs", "wcc", "pr"}

	start := time.Now()
	var wg sync.WaitGroup
	results := make([]*JobResult, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jf := jobs[i]
			time.Sleep(time.Until(start.Add(time.Duration(jf.ArrivalMS) * time.Millisecond)))
			spec := JobSpec{
				App: apps[i%len(apps)], Dataset: "HW", Scale: 0.04,
				Workers: 2, Source: 1, Verify: true, Faults: jf.Plan,
			}
			id, err := s.Submit(spec)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := s.Wait(id, 90*time.Second); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Result(id)
		}(i)
	}

	// One writer applies the storm's batches in order, each drawn against the
	// then-current version with an exact ExpectVersion guard — the guard can
	// never trip (single writer), so a 412 here would be a bug.
	applied := 0
	for _, ev := range muts {
		time.Sleep(time.Until(start.Add(time.Duration(ev.ArrivalMS) * time.Millisecond)))
		p, err := s.data.pin("HW", 0.04, 2)
		if err != nil {
			t.Fatalf("pin for batch: %v", err)
		}
		expect := p.version
		req := churnRequest(p.g, 0.04, ev.Seed, ev.Ops)
		req.ExpectVersion = &expect
		mr, err := s.Mutate("HW", req)
		if err != nil {
			t.Fatalf("storm mutate at version %d: %v", expect, err)
		}
		if mr.NewVersion != expect+1 {
			t.Fatalf("storm mutate version: %+v", mr)
		}
		applied++
	}
	wg.Wait()

	incremental := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		res := results[i]
		if res.Wrong != 0 {
			t.Errorf("client %d (%s) diverged at version %d: %d wrong of %d",
				i, res.App, res.Version, res.Wrong, res.Vertices)
		}
		if res.Incremental {
			incremental++
			if res.IncrementalFrom >= res.Version {
				t.Errorf("client %d claims increment %d -> %d", i, res.IncrementalFrom, res.Version)
			}
		}
	}
	st := s.Stats()
	if st.Mutations != int64(applied) {
		t.Errorf("mutation accounting: applied %d, stats %+v", applied, st)
	}
	if st.DeadlineTimers != 0 {
		t.Errorf("deadline timers leaked under storm: %+v", st)
	}
	t.Logf("storm: %d clients, %d mutations, %d incremental re-convergences, stats %+v",
		clients, applied, incremental, st)
}
