package serve

import (
	"fmt"
	"strconv"

	obsserve "argan/internal/obs/serve"
)

// Service metric families for the /metrics exposition. Two layers:
//
//   - argan_service_*: the admission controller and drain state — queue
//     depth, free core tokens, shed counts — the signals an operator
//     alarms on.
//   - argan_job_*: per-job families labeled {job, app}, so a dashboard can
//     attribute load and faults to tenants. Only the argan_job_state gauge
//     carries the mutable "state" label: putting it on counters would make
//     the same logical series migrate across label sets as the job moves
//     pending→running→done, breaking rate() continuity in Prometheus.
//     Samples iterate jobs in submission order, keeping the exposition
//     deterministic (the scrape lint in obs/serve depends on that), and the
//     job set itself is bounded by Config.MaxHistory terminal-job eviction.
func (s *Service) registerMetrics(srv *obsserve.Server) error {
	gauge := func(name, help string, get func(Stats) float64) obsserve.Metric {
		return obsserve.Metric{Name: name, Help: help, Type: "gauge",
			Collect: func() []obsserve.Sample { return []obsserve.Sample{{Value: get(s.Stats())}} }}
	}
	counter := func(name, help string, get func(Stats) float64) obsserve.Metric {
		m := gauge(name, help, get)
		m.Type = "counter"
		return m
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	fams := []obsserve.Metric{
		gauge("argan_service_cores", "Admission controller core-token budget.",
			func(st Stats) float64 { return float64(st.Cores) }),
		gauge("argan_service_cores_free", "Unclaimed core tokens.",
			func(st Stats) float64 { return float64(st.CoresFree) }),
		gauge("argan_service_queue_depth", "Jobs admitted but not yet running.",
			func(st Stats) float64 { return float64(st.Queued) }),
		gauge("argan_service_queue_cap", "Bound on the admission queue; beyond it the service sheds.",
			func(st Stats) float64 { return float64(st.QueueDepth) }),
		gauge("argan_service_jobs_running", "Jobs currently executing.",
			func(st Stats) float64 { return float64(st.Running) }),
		gauge("argan_service_draining", "Service is draining: no new jobs admitted (0/1).",
			func(st Stats) float64 { return b2f(st.Draining) }),
		gauge("argan_service_drain_seconds", "Wall-clock the last drain took (0 before any drain).",
			func(st Stats) float64 { return st.DrainMS / 1e3 }),
		counter("argan_service_jobs_submitted_total", "Job submissions, admitted or not.",
			func(st Stats) float64 { return float64(st.Submitted) }),
		counter("argan_service_jobs_admitted_total", "Jobs accepted by the admission controller.",
			func(st Stats) float64 { return float64(st.Admitted) }),
		counter("argan_service_jobs_shed_total", "Submissions refused with 429 because the queue was full.",
			func(st Stats) float64 { return float64(st.Shed) }),
		counter("argan_service_jobs_completed_total", "Jobs finished successfully.",
			func(st Stats) float64 { return float64(st.Completed) }),
		counter("argan_service_jobs_failed_total", "Jobs quarantined by crash, panic, divergence or load error.",
			func(st Stats) float64 { return float64(st.Failed) }),
		counter("argan_service_jobs_canceled_total", "Jobs canceled by clients, deadlines or drain timeouts.",
			func(st Stats) float64 { return float64(st.Canceled) }),
		counter("argan_service_jobs_quarantined_total", "Failed jobs whose cause was a contained worker panic.",
			func(st Stats) float64 { return float64(st.Quarantined) }),
	}

	// Per-job families. Collect snapshots under s.mu; the health read per
	// running job is lock-free (HealthTracker publishes atomically).
	type jobSnap struct {
		id, app, state string
		updates        float64
		dead           float64
	}
	snapshot := func() []jobSnap {
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]jobSnap, 0, len(s.order))
		for _, id := range s.order {
			j := s.jobs[id]
			sn := jobSnap{id: j.id, app: j.spec.App, state: j.state}
			if j.result != nil {
				sn.updates = float64(j.result.Updates)
			} else {
				// Running (or short-lived) jobs: the driver's health
				// tracker publishes lock-free control-plane snapshots.
				h := j.health.Health()
				sn.updates = float64(h.Updates)
				sn.dead = float64(h.Dead)
			}
			out = append(out, sn)
		}
		return out
	}
	perJob := func(name, help, typ string, withState bool, sample func(jobSnap) (float64, bool)) obsserve.Metric {
		return obsserve.Metric{Name: name, Help: help, Type: typ,
			Collect: func() []obsserve.Sample {
				snaps := snapshot()
				out := make([]obsserve.Sample, 0, len(snaps))
				for _, sn := range snaps {
					v, ok := sample(sn)
					if !ok {
						continue
					}
					labels := map[string]string{"job": sn.id, "app": sn.app}
					if withState {
						labels["state"] = sn.state
					}
					out = append(out, obsserve.Sample{Labels: labels, Value: v})
				}
				return out
			}}
	}
	stateOrd := map[string]float64{
		StatePending: 0, StateRunning: 1, StateDone: 2, StateFailed: 3, StateCanceled: 4,
	}
	fams = append(fams,
		perJob("argan_job_state", "Job lifecycle stage (0 pending, 1 running, 2 done, 3 failed, 4 canceled).", "gauge", true,
			func(sn jobSnap) (float64, bool) { return stateOrd[sn.state], true }),
		perJob("argan_job_updates_total", "Update-function invocations attributed to the job.", "counter", false,
			func(sn jobSnap) (float64, bool) { return sn.updates, true }),
		perJob("argan_job_workers_dead", "Job workers with stale heartbeats awaiting localized recovery.", "gauge", false,
			func(sn jobSnap) (float64, bool) { return sn.dead, sn.state == StateRunning }),
	)

	// Per-dataset families, labeled {dataset, scale}. Samples come from
	// dsMetrics(), which iterates materialized datasets in sorted order, so
	// the exposition stays deterministic as the set grows lazily.
	perDataset := func(name, help, typ string, sample func(dsMetric) float64) obsserve.Metric {
		return obsserve.Metric{Name: name, Help: help, Type: typ,
			Collect: func() []obsserve.Sample {
				ms := s.data.dsMetrics()
				out := make([]obsserve.Sample, 0, len(ms))
				for _, m := range ms {
					out = append(out, obsserve.Sample{
						Labels: map[string]string{
							"dataset": m.dataset,
							"scale":   strconv.FormatFloat(m.scale, 'g', -1, 64),
						},
						Value: sample(m),
					})
				}
				return out
			}}
	}
	fams = append(fams,
		perDataset("argan_dataset_version", "Current version of the materialized dataset (0 = base, +1 per applied mutation batch).", "gauge",
			func(m dsMetric) float64 { return float64(m.version) }),
		perDataset("argan_dataset_warm_hits_total", "Jobs that re-converged incrementally from a retained warm fixpoint of the dataset.", "counter",
			func(m dsMetric) float64 { return float64(m.warmHits) }),
	)

	for _, m := range fams {
		if err := srv.RegisterMetric(m); err != nil {
			return fmt.Errorf("register %s: %w", m.Name, err)
		}
	}
	return nil
}
