package serve

import (
	"errors"
	"fmt"
	"math"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/mem"
)

// execute runs one admitted job to completion inside its own fault domain:
// a private live driver over the shared frozen fragments, localized
// recovery, a mem.Pool slice proportional to its core share, and the job's
// cancel channel wired into the driver's control plane. Any error — crash
// without restart, injected panic, divergence from the reference, deadline
// — quarantines this job only; the service keeps running.
func (s *Service) execute(j *job) {
	res, err := s.runOne(j)
	switch {
	case err == nil:
		s.finalize(j, StateDone, "", res, true)
	case errors.Is(err, gap.ErrCanceled):
		s.mu.Lock()
		reason := j.err // set under s.mu by CancelReason before closing the channel
		s.mu.Unlock()
		if reason == "" {
			reason = "canceled"
		}
		s.finalize(j, StateCanceled, reason, nil, true)
	default:
		if errors.Is(err, gap.ErrWorkerPanic) {
			s.mu.Lock()
			s.quarantined++
			s.mu.Unlock()
		}
		s.finalize(j, StateFailed, err.Error(), nil, true)
	}
}

// runOne builds the job's execution environment and dispatches by app. The
// dataset version is pinned here: a concurrent Mutate swaps the service to
// version k+1 without disturbing this job's version-k graph and fragments.
func (s *Service) runOne(j *job) (*JobResult, error) {
	sp := j.spec
	pin, err := s.data.pin(sp.Dataset, sp.Scale, sp.Workers)
	if err != nil {
		return nil, err
	}

	// Memory slice: the job's proportional share of the service budget.
	// Cores gate admission, so the slice always fits — Acquire cannot
	// deadlock a queued job.
	var gov *mem.Governor
	if s.cfg.MemBudget > 0 {
		slice := s.cfg.MemBudget * int64(j.cores) / int64(s.cfg.Cores)
		var release func()
		gov, release, err = s.pool.Acquire(slice)
		if err != nil {
			return nil, fmt.Errorf("memory slice: %w", err)
		}
		defer release()
	}

	var plan *fault.Plan
	if sp.Faults != "" {
		if plan, err = fault.Parse(sp.Faults); err != nil {
			return nil, err // unreachable: normalize() already parsed it
		}
	}

	cfg := gap.LiveConfig{
		Mode:        gap.ModeGAP,
		CheckEvery:  sp.CheckEvery,
		Recovery:    gap.RecoveryLocal,
		Faults:      plan,
		Mem:         gov,
		Health:      j.health,
		Cancel:      j.cancel,
		Watchdog:    s.cfg.Watchdog,
		NoEdgeSpill: true, // fragments are shared: never page their edges
	}

	q := ace.Query{Source: graph.VID(sp.Source), Eps: sp.Eps}
	res, err := s.runApp(pin, sp, q, cfg)
	if err != nil {
		return nil, err
	}
	res.ID, res.App, res.Version = j.id, sp.App, pin.version
	s.mu.Lock()
	if res.Incremental {
		s.incremental++
	} else if res.Fallback != "" {
		s.recomputes++
	}
	s.mu.Unlock()
	if res.Wrong > 0 {
		return nil, fmt.Errorf("result diverged from sequential reference: %d of %d vertices wrong (version %d)", res.Wrong, res.Vertices, pin.version)
	}
	return res, nil
}

// runApp dispatches one live run by application. Each app supplies its
// incremental planner (how to adjust the retained fixpoint for the edge
// churn between versions), its sequential reference, and its comparison
// relation; incRun wires them together.
func (s *Service) runApp(pin pinned, sp JobSpec, q ace.Query, cfg gap.LiveConfig) (*JobResult, error) {
	src := graph.VID(sp.Source)
	switch sp.App {
	case "sssp":
		return incRun(pin, sp, q, cfg, algorithms.NewSSSP(),
			func(prior *warmEntry, touched []graph.VID) *ace.WarmState[float64] {
				return algorithms.WarmSSSP(prior.g, pin.g, touched, prior.values.([]float64), src)
			},
			func() []float64 { return algorithms.SeqSSSP(pin.g, src) },
			func(got, w float64) bool { return got == w },
			func(v float64) float64 {
				if math.IsInf(v, 1) {
					return 0
				}
				return v
			})
	case "bfs":
		return incRun(pin, sp, q, cfg, algorithms.NewBFS(),
			func(prior *warmEntry, touched []graph.VID) *ace.WarmState[int32] {
				return algorithms.WarmBFS(prior.g, pin.g, touched, prior.values.([]int32), src)
			},
			func() []int32 { return algorithms.SeqBFS(pin.g, src) },
			func(got, w int32) bool {
				if w < 0 { // Seq marks unreachable -1; the engine leaves Init's MaxInt32
					return got == math.MaxInt32
				}
				return got == w
			},
			func(v int32) float64 {
				if v == math.MaxInt32 {
					return 0
				}
				return float64(v)
			})
	case "wcc":
		return incRun(pin, sp, q, cfg, algorithms.NewWCC(),
			func(prior *warmEntry, touched []graph.VID) *ace.WarmState[uint32] {
				return algorithms.WarmWCC(prior.g, pin.g, touched, prior.values.([]uint32))
			},
			func() []uint32 {
				want := algorithms.SeqWCC(pin.g)
				out := make([]uint32, len(want))
				for i, w := range want {
					out[i] = uint32(w)
				}
				return out
			},
			func(got, w uint32) bool { return got == w },
			func(v uint32) float64 { return float64(v) })
	case "pr":
		return incRun(pin, sp, q, cfg, algorithms.NewPageRank(),
			func(prior *warmEntry, touched []graph.VID) *ace.WarmState[float64] {
				return algorithms.WarmPageRank(prior.g, pin.g, touched, prior.psi.([]float64), prior.values.([]float64), sp.Eps)
			},
			func() []float64 { return algorithms.SeqPageRank(pin.g, sp.Eps) },
			func(got, w float64) bool { return math.Abs(got-w) <= 0.02*(w+1) },
			func(v float64) float64 { return v })
	}
	return nil, fmt.Errorf("app %q does not run under the live driver", sp.App)
}

// incRun is the retract-and-repush execution path shared by every app:
//
//  1. Look up the retained fixpoint for this query key. If one exists and
//     the mutation log bridges its version to the pinned one, build the
//     planner's warm state and re-converge from it — verifying against the
//     pinned version's sequential reference unconditionally, so every
//     increment is checked, not trusted.
//  2. If the program were not invertible/idempotent, or the bridge is gone
//     (log truncation, version skew), fall back to a cold full run and
//     record why in JobResult.Fallback.
//  3. On a clean (non-diverged) finish, retain this run's fixpoint for the
//     next increment.
func incRun[V any, W any](pin pinned, sp JobSpec, q ace.Query, cfg gap.LiveConfig,
	factory ace.Factory[V],
	plan func(prior *warmEntry, touched []graph.VID) *ace.WarmState[V],
	ref func() []W, eq func(got V, w W) bool, num func(V) float64) (*JobResult, error) {

	wk := warmKey{app: sp.App, source: sp.Source, eps: sp.Eps}
	verify := sp.Verify
	var prior *warmEntry
	var touched []graph.VID
	var fallback string
	if ace.CanIncrement(factory()) {
		prior, touched, fallback = pin.ds.warmFor(wk, pin.version)
	} else {
		fallback = "program is neither invertible nor idempotent"
	}
	if prior != nil {
		ws := plan(prior, touched)
		// Reseeded fixpoints may come off disk (durable recovery): shape-check
		// against the pinned graph before handing them to the engine, and
		// fall back to a cold run rather than crash on a corrupt-but-plausible
		// snapshot that slipped past the coarser reseed checks.
		if err := ws.Validate(pin.g.NumVertices()); err != nil {
			prior, fallback = nil, fmt.Sprintf("warm state rejected: %v", err)
		} else {
			q.Warm = ws
			verify = true // every increment is verified against the reference
			pin.ds.noteWarmHit()
		}
	}

	var want []W
	if verify {
		key := refKey{app: sp.App, source: sp.Source, eps: sp.Eps, version: pin.version}
		want = pin.ds.reference(key, func() any { return ref() }).([]W)
	}

	res, lm, err := gap.RunLive(pin.frags, factory, q, cfg)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Vertices:   len(res.Values),
		Wrong:      -1,
		WallMS:     float64(lm.WallTime) / 1e6,
		Updates:    lm.Updates,
		MsgsSent:   lm.MsgsSent,
		Crashes:    lm.Crashes,
		Recoveries: lm.Recoveries,
		Replayed:   lm.Replayed,
		Epochs:     lm.Epochs,
		Recovery:   lm.Recovery,
		MemPeak:    lm.MemPeakBytes,
		Spilled:    lm.SpilledBytes,

		Incremental: prior != nil,
		Fallback:    fallback,
	}
	if prior != nil {
		out.IncrementalFrom = prior.version
	}
	for _, v := range res.Values {
		out.Checksum += num(v)
	}
	if want != nil {
		out.Wrong = 0
		for i := range want {
			if !eq(res.Values[i], want[i]) {
				out.Wrong++
			}
		}
	}
	if out.Wrong <= 0 {
		// Retain this fixpoint (raw Ψ and output view, global-indexed) so
		// the next job on this key re-converges instead of recomputing.
		pin.ds.storeWarm(wk, &warmEntry{version: pin.version, g: pin.g, values: res.Values, psi: res.Psi})
	}
	return out, nil
}
