package serve

import (
	"errors"
	"fmt"
	"math"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/mem"
)

// execute runs one admitted job to completion inside its own fault domain:
// a private live driver over the shared frozen fragments, localized
// recovery, a mem.Pool slice proportional to its core share, and the job's
// cancel channel wired into the driver's control plane. Any error — crash
// without restart, injected panic, divergence from the reference, deadline
// — quarantines this job only; the service keeps running.
func (s *Service) execute(j *job) {
	res, err := s.runOne(j)
	switch {
	case err == nil:
		s.finalize(j, StateDone, "", res, true)
	case errors.Is(err, gap.ErrCanceled):
		s.mu.Lock()
		reason := j.err // set under s.mu by CancelReason before closing the channel
		s.mu.Unlock()
		if reason == "" {
			reason = "canceled"
		}
		s.finalize(j, StateCanceled, reason, nil, true)
	default:
		if errors.Is(err, gap.ErrWorkerPanic) {
			s.mu.Lock()
			s.quarantined++
			s.mu.Unlock()
		}
		s.finalize(j, StateFailed, err.Error(), nil, true)
	}
}

// runOne builds the job's execution environment and dispatches by app.
func (s *Service) runOne(j *job) (*JobResult, error) {
	sp := j.spec
	g, frags, err := s.data.fragments(sp.Dataset, sp.Scale, sp.Workers)
	if err != nil {
		return nil, err
	}

	// Memory slice: the job's proportional share of the service budget.
	// Cores gate admission, so the slice always fits — Acquire cannot
	// deadlock a queued job.
	var gov *mem.Governor
	if s.cfg.MemBudget > 0 {
		slice := s.cfg.MemBudget * int64(j.cores) / int64(s.cfg.Cores)
		var release func()
		gov, release, err = s.pool.Acquire(slice)
		if err != nil {
			return nil, fmt.Errorf("memory slice: %w", err)
		}
		defer release()
	}

	var plan *fault.Plan
	if sp.Faults != "" {
		if plan, err = fault.Parse(sp.Faults); err != nil {
			return nil, err // unreachable: normalize() already parsed it
		}
	}

	cfg := gap.LiveConfig{
		Mode:        gap.ModeGAP,
		CheckEvery:  sp.CheckEvery,
		Recovery:    gap.RecoveryLocal,
		Faults:      plan,
		Mem:         gov,
		Health:      j.health,
		Cancel:      j.cancel,
		Watchdog:    s.cfg.Watchdog,
		NoEdgeSpill: true, // fragments are shared: never page their edges
	}

	q := ace.Query{Source: graph.VID(sp.Source), Eps: sp.Eps}
	res, err := runApp(g, frags, sp, q, cfg)
	if err != nil {
		return nil, err
	}
	res.ID, res.App = j.id, sp.App
	if res.Wrong > 0 {
		return nil, fmt.Errorf("result diverged from sequential reference: %d of %d vertices wrong", res.Wrong, res.Vertices)
	}
	return res, nil
}

// runApp dispatches one live run by application, verifying against the
// cached sequential reference when the spec asks for it.
func runApp(g *graph.Graph, frags []*graph.Fragment, sp JobSpec, q ace.Query, cfg gap.LiveConfig) (*JobResult, error) {
	key := refKey{app: sp.App, dataset: sp.Dataset, scale: sp.Scale, source: sp.Source, eps: sp.Eps}
	switch sp.App {
	case "sssp":
		var want []float64
		if sp.Verify {
			want = refFor(key, func() []float64 { return algorithms.SeqSSSP(g, graph.VID(sp.Source)) })
		}
		return runTyped(frags, algorithms.NewSSSP(), q, cfg, want,
			func(got, w float64) bool { return got == w },
			func(v float64) float64 {
				if math.IsInf(v, 1) {
					return 0
				}
				return v
			})
	case "bfs":
		var want []int32
		if sp.Verify {
			want = refFor(key, func() []int32 { return algorithms.SeqBFS(g, graph.VID(sp.Source)) })
		}
		return runTyped(frags, algorithms.NewBFS(), q, cfg, want,
			func(got, w int32) bool {
				if w < 0 { // Seq marks unreachable -1; the engine leaves Init's MaxInt32
					return got == math.MaxInt32
				}
				return got == w
			},
			func(v int32) float64 {
				if v == math.MaxInt32 {
					return 0
				}
				return float64(v)
			})
	case "wcc":
		var want []graph.VID
		if sp.Verify {
			want = refFor(key, func() []graph.VID { return algorithms.SeqWCC(g) })
		}
		return runTyped(frags, algorithms.NewWCC(), q, cfg, want,
			func(got uint32, w graph.VID) bool { return got == uint32(w) },
			func(v uint32) float64 { return float64(v) })
	case "pr":
		var want []float64
		if sp.Verify {
			want = refFor(key, func() []float64 { return algorithms.SeqPageRank(g, sp.Eps) })
		}
		return runTyped(frags, algorithms.NewPageRank(), q, cfg, want,
			func(got, w float64) bool { return math.Abs(got-w) <= 0.02*(w+1) },
			func(v float64) float64 { return v })
	}
	return nil, fmt.Errorf("app %q does not run under the live driver", sp.App)
}

// jobRefCache holds sequential references process-wide: references depend
// only on (app, dataset, scale, source, eps), never on the Service, so one
// cache serves every Service in the process (tests included).
var jobRefCache = newDataCache()

func refFor[W any](key refKey, compute func() []W) []W {
	v := jobRefCache.reference(key, func() any { return compute() })
	return v.([]W)
}

// runTyped executes one live run and summarizes it. A nil want skips
// verification (Wrong = -1); otherwise Wrong counts diverging vertices.
func runTyped[V any, W any](frags []*graph.Fragment, f ace.Factory[V], q ace.Query, cfg gap.LiveConfig, want []W, eq func(got V, w W) bool, num func(V) float64) (*JobResult, error) {
	res, lm, err := gap.RunLive(frags, f, q, cfg)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Vertices:   len(res.Values),
		Wrong:      -1,
		WallMS:     float64(lm.WallTime) / 1e6,
		Updates:    lm.Updates,
		MsgsSent:   lm.MsgsSent,
		Crashes:    lm.Crashes,
		Recoveries: lm.Recoveries,
		Replayed:   lm.Replayed,
		Epochs:     lm.Epochs,
		Recovery:   lm.Recovery,
		MemPeak:    lm.MemPeakBytes,
		Spilled:    lm.SpilledBytes,
	}
	for _, v := range res.Values {
		out.Checksum += num(v)
	}
	if want != nil {
		out.Wrong = 0
		for i := range want {
			if !eq(res.Values[i], want[i]) {
				out.Wrong++
			}
		}
	}
	return out, nil
}
