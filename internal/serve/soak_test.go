package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"argan/internal/fault"
	obsserve "argan/internal/obs/serve"
)

// TestServiceChaosSoak is the acceptance soak for the multi-tenant job
// service: 16 concurrent clients storm a core-capped server with burst
// arrivals, rogue (panicking) jobs and crashy (crash+restart) jobs mixed
// into the population.
//
// Asserted end to end:
//   - every admitted non-rogue job completes with reference-verified
//     results (wrong == 0) — neighbors of rogues and crashers included;
//   - saturation sheds load with ErrSaturated/429 rather than queueing
//     forever (clients retry with backoff until admitted);
//   - the rogue job's injected panic is contained: that job fails
//     quarantined, nothing else does;
//   - crashy jobs recover inside their own fault domain (localized
//     recovery: crashes ≥ 1, epochs == 0) and still verify;
//   - a drain started while jobs are in flight finishes every admitted job
//     and refuses later submissions.
//
// Environment hooks for CI:
//   - SERVICE_SOAK_ADDR pins the telemetry address (e.g. 127.0.0.1:9177)
//     so arganpoll can scrape per-job metrics mid-soak; the test then keeps
//     the server up for ≥ 6s before draining.
//   - SERVICE_SOAK_DRAIN_OUT writes the DrainStats JSON artifact there.
func TestServiceChaosSoak(t *testing.T) {
	const clients = 16
	svc := New(Config{
		Cores:            4,
		QueueDepth:       4, // 2 running + 4 queued of 16: the bursts must shed
		MemBudget:        64 << 20,
		SpillDir:         t.TempDir(),
		MaxWorkersPerJob: 2,
		DefaultDeadline:  2 * time.Minute,
	})
	srv := obsserve.New()
	if err := svc.Attach(srv); err != nil {
		t.Fatalf("attach: %v", err)
	}
	addr := os.Getenv("SERVICE_SOAK_ADDR")
	pinned := addr != ""
	if !pinned {
		addr = "127.0.0.1:0"
	}
	bound, err := srv.Start(addr)
	if err != nil {
		t.Fatalf("start telemetry: %v", err)
	}
	defer srv.Close()
	client := &Client{Base: "http://" + bound, HTTP: &http.Client{Timeout: 10 * time.Second}}

	storm := fault.JobStorm(20260808, clients, fault.JobStormOpts{
		Bursts: 2, BurstGapMS: 150, Rogues: 1, Crashy: 3, Span: 200, RestartMS: 5,
	})
	apps := []string{"sssp", "bfs", "wcc", "pr"}

	start := time.Now()
	type outcome struct {
		id     string
		jf     fault.JobFault
		status JobStatus
		sheds  int
		err    error
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jf := storm[i]
			time.Sleep(time.Until(start.Add(time.Duration(jf.ArrivalMS) * time.Millisecond)))
			faults, checkEvery := jf.Plan, 0
			if faults == "" {
				// Clean jobs get a mild slowdown floor: without it, jobs on
				// this tiny dataset can finish inside the 20ms burst jitter,
				// the queue drains between arrivals, and the storm never
				// saturates — making the shed assertion below flaky.
				faults = "slow=0@0:500:3; slow=1@0:500:3"
				checkEvery = 1
			}
			spec := JobSpec{
				App: apps[i%len(apps)], Dataset: "HW", Scale: 0.05,
				Workers: 2, Source: 1, Verify: true, Faults: faults,
				CheckEvery: checkEvery,
			}
			// Retry-with-backoff on shed: load shedding is the expected
			// saturation behavior, and a persistent client eventually gets
			// admitted as the queue turns over.
			var id string
			var serr error
			sheds := 0
			backoff := 25 * time.Millisecond
			for {
				id, serr = client.Submit(spec)
				if !errors.Is(serr, ErrSaturated) {
					break
				}
				sheds++
				time.Sleep(backoff)
				if backoff < 400*time.Millisecond {
					backoff *= 2
				}
			}
			if serr != nil {
				outcomes[i] = outcome{jf: jf, sheds: sheds, err: serr}
				return
			}
			st, werr := client.WaitTerminal(id, 90*time.Second)
			outcomes[i] = outcome{id: id, jf: jf, status: st, sheds: sheds, err: werr}
		}(i)
	}

	// Mid-soak scrape: the per-job families must be present and lint-clean
	// while jobs are actually in flight.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		time.Sleep(100 * time.Millisecond)
		resp, err := http.Get(client.Base + "/metrics")
		if err != nil {
			t.Errorf("mid-soak scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		body := b.String()
		if err := obsserve.Lint(strings.NewReader(body)); err != nil {
			t.Errorf("mid-soak exposition lint: %v", err)
		}
		for _, want := range []string{"argan_job_state{", "argan_service_queue_depth", "argan_service_jobs_shed_total"} {
			if !strings.Contains(body, want) {
				t.Errorf("mid-soak scrape missing %s", want)
			}
		}
	}()

	wg.Wait()
	<-scrapeDone

	// CI scrape window: with a pinned address, hold the server (and its
	// post-run per-job metrics) up long enough for ≥ 3 external scrapes.
	if pinned {
		if held := time.Since(start); held < 6*time.Second {
			time.Sleep(6*time.Second - held)
		}
	}

	totalSheds := 0
	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("client %d (%+v): %v", i, o.jf, o.err)
		}
		totalSheds += o.sheds
		switch {
		case o.jf.Rogue:
			if o.status.State != StateFailed || !strings.Contains(o.status.Err, "panic") {
				t.Errorf("rogue job %s not quarantined: %+v", o.id, o.status)
			}
		default:
			if o.status.State != StateDone {
				t.Errorf("job %s (crashy=%v) did not complete: %+v", o.id, o.jf.Crashy, o.status)
				continue
			}
			res, err := client.Result(o.id)
			if err != nil {
				t.Errorf("result %s: %v", o.id, err)
				continue
			}
			if res.Wrong != 0 {
				t.Errorf("job %s diverged: %d wrong of %d", o.id, res.Wrong, res.Vertices)
			}
			if o.jf.Crashy {
				if res.Crashes < 1 {
					t.Errorf("crashy job %s never crashed: %+v", o.id, res)
				}
				if res.Epochs != 0 {
					t.Errorf("crashy job %s caused a global rollback: %+v", o.id, res)
				}
			}
		}
	}
	if totalSheds == 0 {
		t.Error("no submission was ever shed: the storm never saturated the admission queue")
	}

	// Drain: admit one more slow job so the drain demonstrably waits for
	// in-flight work, then assert the gate closes and everything finishes.
	lastID, err := client.Submit(slowSpec(400, 10))
	if err != nil {
		t.Fatalf("pre-drain submit: %v", err)
	}
	stats := svc.Drain(60 * time.Second)
	if stats.Forced != 0 {
		t.Errorf("drain had to force jobs: %+v", stats)
	}
	if st, _ := client.Status(lastID); st.State != StateDone {
		t.Errorf("drain abandoned in-flight job %s: %+v", lastID, st)
	}
	if _, err := client.Submit(tinySpec("sssp")); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit not refused: %v", err)
	}
	svcStats := svc.Stats()
	if svcStats.Quarantined != 1 {
		t.Errorf("want exactly the rogue quarantined, got %+v", svcStats)
	}
	if got := svcStats.Completed + svcStats.Failed + svcStats.Canceled; got != int64(clients)+1 {
		t.Errorf("job accounting: %d terminal of %d admitted (%+v)", got, clients+1, svcStats)
	}

	if out := os.Getenv("SERVICE_SOAK_DRAIN_OUT"); out != "" {
		blob, _ := json.MarshalIndent(stats, "", "  ")
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Errorf("write drain artifact: %v", err)
		}
		fmt.Printf("drain artifact: %s (%s)\n", out, blob)
	}
}
