package serve

// Durability tests: in-process restart with warm resume, the corrupt-WAL
// recovery table driven through fault.InjectDisk, fingerprint-verified
// replay, the CheckFrozen safety net over a recovered dataset, and the
// retrying API client. The real-binary kill -9 soak lives in cmd/arganrun.

import (
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"argan/internal/durable"
	"argan/internal/fault"
	"argan/internal/graph"
)

const durDS, durScale = "HW", 0.02

func openDurable(t *testing.T, dir string, every time.Duration) *Service {
	t.Helper()
	s, err := Open(Config{Cores: 4, StateDir: dir, SnapshotEvery: every})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mutateN(t *testing.T, s *Service, n int, seed int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		p, err := s.data.pin(durDS, durScale, 2)
		if err != nil {
			t.Fatal(err)
		}
		req := churnRequest(p.g, durScale, seed+int64(i), 8)
		if _, err := s.Mutate(durDS, req); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
}

// seedDurable drives a durable service to a known state and drains it:
// three WAL records (versions 1..3) and a persisted snapshot whose sssp
// fixpoint converged on version 3.
func seedDurable(t *testing.T, dir string) {
	t.Helper()
	s := openDurable(t, dir, 0)
	runVerified(t, s, "sssp") // cold @ v0; fixpoint retained in memory
	mutateN(t, s, 2, 101)     // v1, v2
	runVerified(t, s, "sssp") // re-converges; fixpoint now @ v2
	mutateN(t, s, 1, 301)     // v3
	runVerified(t, s, "sssp") // fixpoint now @ v3
	if n, err := s.SnapshotNow(); err != nil || n != 1 {
		t.Fatalf("SnapshotNow = (%d, %v), want (1, nil)", n, err)
	}
	s.Drain(time.Minute)
}

// TestDurableRestartWarmResume is the in-process restart drill: a second
// Open over the same state dir must land on the exact durable version and
// the first job after restart must re-converge incrementally from the
// persisted fixpoint, reference-verified.
func TestDurableRestartWarmResume(t *testing.T) {
	dir := t.TempDir()
	seedDurable(t, dir)

	// One more version than the snapshot has seen: restart must replay it
	// from the WAL and bridge the persisted v3 fixpoint across it.
	s := openDurable(t, dir, 0)
	mutateN(t, s, 1, 401) // v4
	s.Drain(time.Minute)

	s2 := openDurable(t, dir, 0)
	defer s2.Drain(time.Minute)
	rec := s2.Recovery()
	if rec == nil {
		t.Fatal("durable service has nil Recovery()")
	}
	if rec.Datasets != 1 || rec.Records != 4 || rec.TruncatedTail {
		t.Fatalf("recovery = %+v, want 1 dataset, 4 records, clean tail", rec)
	}
	if rec.WarmReseeded < 1 {
		t.Fatalf("recovery reseeded %d warm fixpoints, want >= 1", rec.WarmReseeded)
	}
	infos := s2.Datasets()
	if len(infos) != 1 || infos[0].Version != 4 {
		t.Fatalf("datasets after restart = %+v, want [%s@%g v4]", infos, durDS, durScale)
	}

	res := runVerified(t, s2, "sssp")
	if !res.Incremental || res.IncrementalFrom != 3 {
		t.Fatalf("first post-restart job: incremental=%v from=%d (fallback %q), want warm resume from v3",
			res.Incremental, res.IncrementalFrom, res.Fallback)
	}
	if res.Wrong != 0 || res.Version != 4 {
		t.Fatalf("post-restart job wrong=%d version=%d", res.Wrong, res.Version)
	}
	st := s2.Stats()
	if st.Incremental != 1 {
		t.Fatalf("Stats.Incremental = %d, want 1", st.Incremental)
	}
	if st.Recovery == nil || st.Recovery.Records != 4 {
		t.Fatalf("Stats.Recovery = %+v", st.Recovery)
	}
	ms := s2.data.dsMetrics()
	if len(ms) != 1 || ms[0].version != 4 || ms[0].warmHits != 1 {
		t.Fatalf("dataset metrics = %+v, want version 4, warmHits 1", ms)
	}
}

// TestDurableRecoveryCorruptionTable injects each disk-fault mode into the
// seeded WAL and asserts exactly what recovery salvages: which version the
// service resumes at, whether the tail was truncated, and whether the
// snapshot's v3 fixpoint is reseeded or rejected for version skew.
func TestDurableRecoveryCorruptionTable(t *testing.T) {
	cases := []struct {
		mode         fault.DiskFault
		wantVersion  uint64
		wantRecords  int
		wantTrunc    bool
		wantReseeded bool // snapshot fixpoint (converged @ v3) accepted
	}{
		// Garbage appended past the committed records: all three survive.
		{fault.DiskTornTail, 3, 3, true, true},
		// The last record's payload is torn/corrupted: resume at v2, and the
		// v3 snapshot outruns the log — version skew, fixpoint rejected.
		{fault.DiskTruncateTail, 2, 2, true, false},
		{fault.DiskFlipByte, 2, 2, true, false},
		// A forbidden zero-length frame after the committed tail.
		{fault.DiskZeroLength, 3, 3, true, true},
		// The last frame removed cleanly: skew again, but nothing corrupt.
		{fault.DiskDropTail, 2, 2, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			seedDurable(t, dir)
			walPath := filepath.Join(dir, dsName(durDS, durScale), "wal.log")
			if err := fault.InjectDisk(walPath, tc.mode, 42); err != nil {
				t.Fatalf("InjectDisk: %v", err)
			}

			s := openDurable(t, dir, 0)
			defer s.Drain(time.Minute)
			rec := s.Recovery()
			if rec.Records != tc.wantRecords || rec.TruncatedTail != tc.wantTrunc {
				t.Fatalf("recovery = %+v, want %d records truncated=%v", rec, tc.wantRecords, tc.wantTrunc)
			}
			if infos := s.Datasets(); len(infos) != 1 || infos[0].Version != tc.wantVersion {
				t.Fatalf("resumed at %+v, want v%d", infos, tc.wantVersion)
			}
			if tc.wantReseeded && rec.WarmReseeded < 1 {
				t.Fatalf("recovery = %+v, want the snapshot fixpoint reseeded", rec)
			}
			if !tc.wantReseeded && (rec.WarmReseeded != 0 || rec.WarmSkipped < 1) {
				t.Fatalf("recovery = %+v, want the v3 fixpoint rejected as version skew", rec)
			}

			// Whatever was salvaged must serve correct answers.
			res := runVerified(t, s, "sssp")
			if res.Version != tc.wantVersion || res.Wrong != 0 {
				t.Fatalf("post-recovery job: version=%d wrong=%d", res.Version, res.Wrong)
			}
		})
	}
}

// TestDurableRecoveryRejectsFingerprintMismatch: a CRC-valid record whose
// batch replays to a different frozen fingerprint than it recorded must be
// rejected and cut from the log so it cannot resurrect.
func TestDurableRecoveryRejectsFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	seedDurable(t, dir)
	walPath := filepath.Join(dir, dsName(durDS, durScale), "wal.log")

	w, recs, _, err := durable.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if err := w.Truncate(last.Offset, last.Version-1); err != nil {
		t.Fatal(err)
	}
	// Same batch, same version, poisoned fingerprint — CRC re-sealed by
	// Append, so only semantic replay can catch it.
	if err := w.Append(durable.Record{Version: last.Version, Fingerprint: last.Fingerprint ^ 0xDEAD, Batch: last.Batch}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	s := openDurable(t, dir, 0)
	rec := s.Recovery()
	if rec.Records != int(last.Version-1) || !rec.TruncatedTail {
		t.Fatalf("recovery = %+v, want %d records with the poisoned tail cut", rec, last.Version-1)
	}
	if infos := s.Datasets(); infos[0].Version != last.Version-1 {
		t.Fatalf("resumed at v%d, want v%d", infos[0].Version, last.Version-1)
	}
	s.Drain(time.Minute)

	// The rejected record must be gone from disk, not lurking for the next
	// restart.
	_, recs2, stats2, err := durable.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != int(last.Version-1) || stats2.Truncated {
		t.Fatalf("wal after rejection: %d records truncated=%v", len(recs2), stats2.Truncated)
	}
}

// TestCheckFrozenTripsOnRecoveredDataset: the frozen-fragment safety net
// must keep working over a replayed graph — an in-place weight write is
// detected at the next pin instead of poisoning jobs.
func TestCheckFrozenTripsOnRecoveredDataset(t *testing.T) {
	dir := t.TempDir()
	seedDurable(t, dir)
	s := openDurable(t, dir, 0)
	defer s.Drain(time.Minute)

	ds, err := s.data.state(durDS, durScale)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered graph at v3 is private to this service (built by
	// replay, not the shared memoized base), so scribbling on it only
	// poisons what this test owns.
	if v := ds.g.Version(); v != 3 {
		t.Fatalf("recovered at v%d, want 3", v)
	}
	var ws []float64
	for v := 0; v < ds.g.NumVertices(); v++ {
		if ws = ds.g.OutWeights(graph.VID(v)); len(ws) > 0 {
			break
		}
	}
	if len(ws) == 0 {
		t.Fatal("recovered graph has no arcs to corrupt")
	}
	ws[0] += 17 // the in-place mutation CheckFrozen exists to catch

	id, err := s.Submit(tinySpec("sssp"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id, time.Minute)
	if err != nil || st.State != StateFailed {
		t.Fatalf("job over a mutated frozen graph: %+v err %v, want failed", st, err)
	}
	if !strings.Contains(st.Err, graph.ErrFrozenMutated.Error()) {
		t.Fatalf("job error %q does not name the frozen mutation", st.Err)
	}
}

// TestClientRetriesDialFailures: a client pointed at a not-yet-listening
// address must retry through the capped backoff and succeed once the
// service binds — including POSTs, which are provably unsent on dial
// failures.
func TestClientRetriesDialFailures(t *testing.T) {
	s := New(Config{Cores: 2})
	defer s.Drain(time.Minute)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // release the port: dials now fail until the rebind below

	hs := &http.Server{Handler: s.APIHandler()}
	bound := make(chan struct{})
	go func() {
		time.Sleep(120 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("rebind %s: %v", addr, err)
			close(bound)
			return
		}
		close(bound)
		_ = hs.Serve(l2)
	}()
	defer hs.Close()

	c := &Client{Base: "http://" + addr, Retries: 30, Backoff: 20 * time.Millisecond}
	id, err := c.Submit(tinySpec("sssp"))
	if err != nil {
		t.Fatalf("submit through retries: %v", err)
	}
	<-bound
	if _, err := c.WaitTerminal(id, time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestClientPostNotRetriedAfterSend: once a POST has reached the server,
// a connection failure must NOT trigger a replay — the service may have
// applied it.
func TestClientPostNotRetriedAfterSend(t *testing.T) {
	var mu sync.Mutex
	posts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		mu.Unlock()
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close() // die mid-exchange, after the request was received
		}
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Retries: 5, Backoff: time.Millisecond}
	if _, err := c.Submit(tinySpec("sssp")); err == nil {
		t.Fatal("submit against a connection-killing server succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if posts != 1 {
		t.Fatalf("POST attempted %d times, want exactly 1 (no replay after send)", posts)
	}
}

// TestClientGetRetriedAfterSend: GETs are idempotent, so the same
// mid-exchange death IS retried and the second attempt succeeds.
func TestClientGetRetriedAfterSend(t *testing.T) {
	s := New(Config{Cores: 2})
	defer s.Drain(time.Minute)
	var mu sync.Mutex
	gets := 0
	api := s.APIHandler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := gets
		gets++
		mu.Unlock()
		if n == 0 {
			if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		api.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Retries: 3, Backoff: time.Millisecond}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("GET through retry: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gets < 2 {
		t.Fatalf("GET attempted %d times, want a retry after the killed attempt", gets)
	}
}
