package serve

import (
	"fmt"
	"math/rand"

	"argan/internal/graph"
)

// MutateRequest is one atomic edge-mutation batch against a dataset served
// by the resident service. Deletes apply before inserts (a delete+insert of
// one edge is a weight replacement); deleting an absent edge fails the
// whole batch.
type MutateRequest struct {
	// Scale selects the dataset instance (default 0.25, matching JobSpec).
	Scale float64 `json:"scale,omitempty"`
	// ExpectVersion, when set, is an optimistic-concurrency guard: the
	// batch applies only if the dataset is still at this version; otherwise
	// the request fails with graph.ErrVersionMismatch (HTTP 412). Absent
	// means apply unconditionally.
	ExpectVersion *uint64      `json:"expect_version,omitempty"`
	Inserts       []graph.Edge `json:"inserts,omitempty"`
	Deletes       []graph.Edge `json:"deletes,omitempty"`
}

// MutateResult reports one applied batch.
type MutateResult struct {
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	OldVersion uint64  `json:"old_version"`
	NewVersion uint64  `json:"new_version"`
	Inserts    int     `json:"inserts"`
	Deletes    int     `json:"deletes"`
	// RebuiltFragments / SharedFragments count fragment partitions across
	// the cached worker counts: rebuilt ones own a mutated endpoint, shared
	// ones are carried over from the previous version by copy-on-write.
	RebuiltFragments int `json:"rebuilt_fragments"`
	SharedFragments  int `json:"shared_fragments"`
}

// DatasetInfo describes one materialized dataset version.
type DatasetInfo struct {
	Dataset  string  `json:"dataset"`
	Scale    float64 `json:"scale"`
	Version  uint64  `json:"version"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
}

// Mutate applies one edge batch to a dataset, bumping its version. Jobs
// already dispatched keep computing over the version they pinned; jobs
// submitted after Mutate returns see the new one. A draining service
// refuses mutations the same way it refuses jobs.
func (s *Service) Mutate(dataset string, req MutateRequest) (*MutateResult, error) {
	if dataset == "" {
		return nil, fmt.Errorf("dataset is required")
	}
	if req.Scale <= 0 {
		req.Scale = 0.25
	}
	b := graph.MutationBatch{Inserts: req.Inserts, Deletes: req.Deletes}
	if b.Empty() {
		return nil, fmt.Errorf("empty mutation batch")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.mu.Unlock()

	res, err := s.data.mutate(dataset, req.Scale, b, req.ExpectVersion)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.mutations++
	s.mutatedEdges += int64(b.Size())
	s.mu.Unlock()
	return res, nil
}

// Datasets lists the datasets the service has materialized, with their
// current versions.
func (s *Service) Datasets() []DatasetInfo { return s.data.versions() }

// Churn applies one synthetic edge-churn batch to a dataset: ops operations
// drawn deterministically from seed against the current version, half
// deleting existing arcs and half inserting fresh ones. It drives live
// re-convergence demos and storm drills (arganrun serve -churn) without the
// caller needing graph access.
func (s *Service) Churn(dataset string, scale float64, seed int64, ops int) (*MutateResult, error) {
	if scale <= 0 {
		scale = 0.25
	}
	if ops < 2 {
		ops = 2
	}
	p, err := s.data.pin(dataset, scale, s.cfg.MaxWorkersPerJob)
	if err != nil {
		return nil, err
	}
	b := synthChurn(p.g, seed, ops)
	// Guard on the drawn-against version: if a concurrent writer moved the
	// dataset, the batch's deletes may name arcs that no longer exist.
	expect := p.version
	return s.Mutate(dataset, MutateRequest{
		Scale: scale, ExpectVersion: &expect,
		Inserts: b.Inserts, Deletes: b.Deletes,
	})
}

// synthChurn draws a deterministic churn batch against g: ops/2 deletes of
// existing arcs and ops/2 fresh inserts.
func synthChurn(g *graph.Graph, seed int64, ops int) graph.MutationBatch {
	r := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		adj, ws := g.OutNeighbors(graph.VID(v)), g.OutWeights(graph.VID(v))
		for i, u := range adj {
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: u, W: ws[i]})
		}
	}
	k := ops / 2
	if k > len(edges) {
		k = len(edges)
	}
	var b graph.MutationBatch
	seen := map[[2]graph.VID]bool{}
	for _, i := range r.Perm(len(edges))[:k] {
		e := edges[i]
		if seen[[2]graph.VID{e.Src, e.Dst}] {
			continue
		}
		seen[[2]graph.VID{e.Src, e.Dst}] = true
		b.Deletes = append(b.Deletes, graph.Edge{Src: e.Src, Dst: e.Dst})
	}
	n := g.NumVertices()
	for tries := 0; len(b.Inserts) < k && tries < 64*k; tries++ {
		u, v := graph.VID(r.Intn(n)), graph.VID(r.Intn(n))
		if u == v || g.HasEdge(u, v) || seen[[2]graph.VID{u, v}] {
			continue
		}
		seen[[2]graph.VID{u, v}] = true
		b.Inserts = append(b.Inserts, graph.Edge{Src: u, Dst: v, W: float64(1 + r.Intn(9))})
	}
	return b
}
