package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"argan/internal/graph"
	obsserve "argan/internal/obs/serve"
)

// HTTP job API, mounted on the telemetry plane's hardened server (header
// timeouts, bounded request bodies — see internal/obs/serve):
//
//	POST   /api/jobs             submit a JobSpec     → 202 {"id": "job-N"}
//	GET    /api/jobs             list all jobs        → 200 [JobStatus...]
//	GET    /api/jobs/{id}        one job's status     → 200 JobStatus
//	GET    /api/jobs/{id}/result finished job result  → 200 JobResult
//	POST   /api/jobs/{id}/cancel cancel a job         → 200 JobStatus
//	DELETE /api/jobs/{id}        cancel a job         → 200 JobStatus
//	GET    /api/service          service Stats        → 200 Stats
//	GET    /api/datasets         materialized datasets → 200 [DatasetInfo...]
//	POST   /api/datasets/{name}/mutate apply an edge batch → 200 MutateResult
//
// Admission maps onto status codes: a saturated queue sheds with 429 and a
// draining service refuses with 503, both as {"error": "..."} JSON. Unknown
// jobs are 404, malformed specs and batches 400, and a mutation whose
// expect_version no longer matches fails with 412 Precondition Failed
// (mapped back to graph.ErrVersionMismatch client-side).

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// APIHandler returns the job API as a stand-alone handler (also usable
// without the telemetry plane, e.g. in tests).
func (s *Service) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /api/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Result(r.PathValue("id"))
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, res)
		case errors.Is(err, ErrNotFinished):
			writeErr(w, http.StatusConflict, err)
		case errors.Is(err, ErrNoSuchJob):
			writeErr(w, http.StatusNotFound, err)
		default:
			// Terminal without a result: failed or canceled — the error
			// carries the quarantine reason.
			writeErr(w, http.StatusGone, err)
		}
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusOK, st)
	}
	mux.HandleFunc("POST /api/jobs/{id}/cancel", cancel)
	mux.HandleFunc("DELETE /api/jobs/{id}", cancel)
	mux.HandleFunc("GET /api/service", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /api/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Datasets())
	})
	mux.HandleFunc("POST /api/datasets/{name}/mutate", s.handleMutate)
	return mux
}

func (s *Service) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode mutation batch: %w", err))
		return
	}
	res, err := s.Mutate(r.PathValue("name"), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, graph.ErrVersionMismatch):
		writeErr(w, http.StatusPreconditionFailed, err)
	default:
		// Bad batch: absent delete target, out-of-range endpoint, unknown
		// dataset — all client errors.
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrSaturated):
		writeErr(w, http.StatusTooManyRequests, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// Attach mounts the job API on a telemetry server, registers the service
// and per-job metric families, and points /healthz & /readyz at the
// service's aggregate health (draining ⇒ not ready).
func (s *Service) Attach(srv *obsserve.Server) error {
	if err := srv.Mount("/api/", s.APIHandler()); err != nil {
		return err
	}
	if err := s.registerMetrics(srv); err != nil {
		return err
	}
	srv.SetHealth(s.healthFn())
	return nil
}

// healthFn aggregates per-job health into the telemetry plane's Health:
// the service is "running" while any job is, and stops being ready the
// moment a drain starts.
func (s *Service) healthFn() func() obsserve.Health {
	return func() obsserve.Health {
		s.mu.Lock()
		defer s.mu.Unlock()
		h := obsserve.Health{
			Running:   s.running > 0,
			Draining:  s.draining,
			Completed: s.completed,
			Failed:    s.failed + s.canceled,
			Workers:   s.cfg.Cores,
			Idle:      s.coresFree,
		}
		for _, id := range s.order {
			j := s.jobs[id]
			if j.state != StateRunning {
				continue
			}
			jh := j.health.Health()
			h.Dead += jh.Dead
			h.Updates += jh.Updates
			h.Sent += jh.Sent
			h.Recv += jh.Recv
			if jh.Unrecoverable {
				h.Unrecoverable = true
			}
			if jh.ProgressAge > h.ProgressAge {
				h.ProgressAge = jh.ProgressAge
			}
		}
		return h
	}
}

// Client is a typed client for the job API. Retries > 0 makes it tolerant
// of transient connection failures (a service mid-restart, a listener not
// yet bound): failed requests are retried with doubling, capped backoff.
// Retry is idempotency-aware — GETs retry on any transport error, but a
// POST is retried only when the error proves the request never reached the
// service (a dial-phase failure). A POST that died after the connection was
// established is never replayed: the service may have applied it, and
// replaying a mutation or submission would double it.
type Client struct {
	Base string // e.g. "http://127.0.0.1:9090"
	HTTP *http.Client
	// Retries is how many additional attempts a transiently failed request
	// gets (0 = fail on the first error).
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt and
	// capped at 5s. <= 0 defaults to 250ms.
	Backoff time.Duration
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// maxBackoff caps the doubling retry delay.
const maxBackoff = 5 * time.Second

// neverSent reports that a request provably never reached the server: the
// transport failed in the dial phase, before any bytes were written. Only
// such failures make a non-idempotent request safe to retry.
func neverSent(err error) bool {
	var opErr *net.OpError
	return errors.As(err, &opErr) && opErr.Op == "dial"
}

// doRetry runs one request attempt function under the client's retry
// policy. Once a response has been received (err == nil) there are no
// retries at this layer, whatever its status code — decode() maps service
// refusals to typed errors and the caller decides.
func (c *Client) doRetry(attempt func() (*http.Response, error), idempotent bool) (*http.Response, error) {
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	for try := 0; ; try++ {
		resp, err := attempt()
		if err == nil || try >= c.Retries || (!idempotent && !neverSent(err)) {
			return resp, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// get issues an idempotent GET under the retry policy.
func (c *Client) get(path string) (*http.Response, error) {
	return c.doRetry(func() (*http.Response, error) {
		return c.client().Get(c.Base + path)
	}, true)
}

// post issues a POST under the retry policy. The body reader is rebuilt per
// attempt, and only dial-phase failures are retried (see neverSent).
func (c *Client) post(path string, body []byte) (*http.Response, error) {
	return c.doRetry(func() (*http.Response, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		return c.client().Post(c.Base+path, "application/json", rd)
	}, false)
}

// decode reads a JSON response, mapping admission status codes back onto
// the service's sentinel errors so clients can errors.Is them.
func decode[T any](resp *http.Response, out *T) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		_ = json.NewDecoder(resp.Body).Decode(&ae)
		msg := ae.Error
		if msg == "" {
			msg = resp.Status
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			return fmt.Errorf("%w: %s", ErrSaturated, msg)
		case http.StatusServiceUnavailable:
			return fmt.Errorf("%w: %s", ErrDraining, msg)
		case http.StatusConflict:
			return fmt.Errorf("%w: %s", ErrNotFinished, msg)
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrNoSuchJob, msg)
		case http.StatusPreconditionFailed:
			return fmt.Errorf("%w: %s", graph.ErrVersionMismatch, msg)
		}
		return fmt.Errorf("http %d: %s", resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a JobSpec and returns the assigned job ID. Saturation and
// drain refusals come back as ErrSaturated / ErrDraining.
func (c *Client) Submit(spec JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := c.post("/api/jobs", body)
	if err != nil {
		return "", err
	}
	var out map[string]string
	if err := decode(resp, &out); err != nil {
		return "", err
	}
	return out["id"], nil
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	resp, err := c.get("/api/jobs/" + id)
	if err != nil {
		return st, err
	}
	return st, decode(resp, &st)
}

// List fetches every job.
func (c *Client) List() ([]JobStatus, error) {
	var sts []JobStatus
	resp, err := c.get("/api/jobs")
	if err != nil {
		return nil, err
	}
	return sts, decode(resp, &sts)
}

// Result fetches a finished job's summary. A job still pending/running
// returns ErrNotFinished.
func (c *Client) Result(id string) (*JobResult, error) {
	resp, err := c.get("/api/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	var res JobResult
	if err := decode(resp, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel cancels a job. Cancellation is idempotent server-side (canceling
// a finished job is a no-op), but the POST still follows the conservative
// dial-only retry rule; callers wanting at-most-once semantics get them.
func (c *Client) Cancel(id string) error {
	resp, err := c.post("/api/jobs/"+id+"/cancel", nil)
	if err != nil {
		return err
	}
	var st JobStatus
	return decode(resp, &st)
}

// Stats fetches the service counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := c.get("/api/service")
	if err != nil {
		return st, err
	}
	return st, decode(resp, &st)
}

// Mutate posts one edge-mutation batch against a dataset. A stale
// expect_version comes back as graph.ErrVersionMismatch; a draining
// service as ErrDraining.
func (c *Client) Mutate(dataset string, req MutateRequest) (*MutateResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.post("/api/datasets/"+dataset+"/mutate", body)
	if err != nil {
		return nil, err
	}
	var res MutateResult
	if err := decode(resp, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Datasets fetches the materialized datasets and their current versions.
func (c *Client) Datasets() ([]DatasetInfo, error) {
	var infos []DatasetInfo
	resp, err := c.get("/api/datasets")
	if err != nil {
		return nil, err
	}
	return infos, decode(resp, &infos)
}

// WaitTerminal polls until the job reaches a terminal state or the timeout
// lapses, returning the final status.
func (c *Client) WaitTerminal(id string, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
