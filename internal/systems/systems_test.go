package systems

import (
	"testing"

	"argan/internal/ace"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 || all[0].Name != "Argan" {
		t.Fatalf("registry wrong: %v", all)
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Fatalf("duplicate system %q", s.Name)
		}
		seen[s.Name] = true
		got, err := ByName(s.Name)
		if err != nil || got.Mode != s.Mode {
			t.Fatalf("ByName(%q) broken", s.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want unknown-system error")
	}
	fam := GrapeFamily()
	if len(fam) != 4 || fam[0].Name != "Argan" || fam[3].Name != "Grape" {
		t.Fatalf("grape family wrong: %v", fam)
	}
}

func TestConfigMapping(t *testing.T) {
	base := gap.Config{Hetero: 0.5}
	cfg := Grape.Config(base)
	if cfg.Mode != gap.ModeBSP || cfg.Hetero != 0.5 {
		t.Fatalf("Grape config wrong: %+v", cfg)
	}
	if Argan.Config(base).Mode != gap.ModeGAP {
		t.Fatal("Argan must run GAP")
	}
}

func TestColorVariantSelection(t *testing.T) {
	g := graph.Uniform(graph.GenConfig{N: 120, M: 500, Directed: false, Seed: 51})
	env := core.Env{Workers: 3}
	frags, err := env.Fragments(g)
	if err != nil {
		t.Fatal(err)
	}
	// GraphLab_sync's symmetric coloring oscillates under its synchronous
	// model; Argan's id-priority coloring converges everywhere.
	for _, s := range []System{GraphLabSync, PowerSwitch} {
		job, err := s.Job("color")
		if err != nil {
			t.Fatal(err)
		}
		cfg := s.Config(env.DefaultConfig())
		cfg.MaxUpdatesPerVertex = 40
		m, err := job(frags, ace.Query{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Converged {
			t.Fatalf("%s color should not converge", s.Name)
		}
	}
	job, err := Argan.Job("color")
	if err != nil {
		t.Fatal(err)
	}
	m, err := job(frags, ace.Query{}, Argan.Config(env.DefaultConfig()))
	if err != nil || !m.Converged {
		t.Fatalf("Argan color must converge: %v %+v", err, m)
	}
}

// TestAllSystemsRunAllApps is the cross-product integration test behind
// Fig. 5: every system executes every application (Color NA cases aside).
func TestAllSystemsRunAllApps(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 250, M: 1500, Directed: true, Seed: 52, MaxW: 10, Labels: 8})
	env := core.Env{Workers: 4}
	frags, err := env.Fragments(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		for _, app := range core.Apps() {
			job, err := s.Job(app)
			if err != nil {
				t.Fatal(err)
			}
			q := ace.Query{Source: 0, Eps: 1e-3}
			if app == "sim" {
				q.Pattern = graphPattern(g)
			}
			cfg := s.Config(env.DefaultConfig())
			cfg.MaxUpdatesPerVertex = 120
			m, err := job(frags, q, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, app, err)
			}
			if app == "color" && s.NaiveColor {
				continue // NA expected
			}
			if !m.Converged {
				t.Fatalf("%s/%s did not converge", s.Name, app)
			}
		}
	}
}

func graphPattern(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(3, true)
	b.SetLabel(0, g.Label(0)).SetLabel(1, g.Label(1)).SetLabel(2, g.Label(2))
	b.AddEdge(0, 1).AddEdge(1, 2)
	return b.MustBuild()
}
