// Package systems expresses the paper's competitor systems as
// configurations of the one engine, the same methodology as §VI: the
// systems differ exactly in their parallel model (BSP / AP / AAP / GAP /
// switching), programming model (graph-centric vs vertex-centric) and,
// where the paper had to port applications by hand, in the application
// variant (the naive symmetric coloring of the synchronous vertex-centric
// systems).
package systems

import (
	"fmt"

	"argan/internal/adapt"
	"argan/internal/core"
	"argan/internal/gap"
)

// System identifies one of the compared systems.
type System struct {
	// Name as used in the paper's figures.
	Name string
	// Mode is the parallel model the system runs under.
	Mode gap.Mode
	// Adapt is the granularity policy (Argan only).
	Adapt adapt.Policy
	// NaiveColor marks systems whose greedy coloring is the symmetric
	// vertex program that oscillates under synchronous execution
	// (GraphLab_sync and PowerSwitch, per Fig. 5's "NA").
	NaiveColor bool
	// Incremental marks systems whose programming model supports
	// re-convergence over evolving graphs from a retained fixpoint: the
	// graph-centric GRAPE family ships it as IncEval, and Argan's ACE
	// programs get it from the Inverter/idempotence extensions (see
	// internal/algorithms' warm planners). The vertex-centric systems
	// compared here recompute from scratch after a mutation.
	Incremental bool
}

// The compared systems.
var (
	// Argan is the paper's system: GAP with GAwD granularity adjustment.
	Argan = System{Name: "Argan", Mode: gap.ModeGAP, Adapt: adapt.PolicyGAwD, Incremental: true}
	// Grape is graph-centric BSP (Fan et al., TODS'18).
	Grape = System{Name: "Grape", Mode: gap.ModeBSP, Incremental: true}
	// GrapePlus is graph-centric AAP (Fan et al., SIGMOD'18/TODS'20).
	GrapePlus = System{Name: "Grape+", Mode: gap.ModeAAP, Incremental: true}
	// GrapeStar is Grape+ restricted to plain AP (the paper's Grape*).
	GrapeStar = System{Name: "Grape*", Mode: gap.ModeAPGC, Incremental: true}
	// GraphLabSync is vertex-centric synchronous GraphLab/PowerGraph.
	GraphLabSync = System{Name: "GraphLab_sync", Mode: gap.ModeBSPVC, NaiveColor: true}
	// GraphLabAsync is vertex-centric asynchronous GraphLab.
	GraphLabAsync = System{Name: "GraphLab_async", Mode: gap.ModeAPVC}
	// PowerSwitch starts synchronous and switches to asynchronous on its
	// throughput heuristic (Xie et al., PPoPP'15).
	PowerSwitch = System{Name: "PowerSwitch", Mode: gap.ModePowerSwitch, NaiveColor: true}
	// Maiter is delta-based asynchronous vertex-centric (Zhang et al.).
	Maiter = System{Name: "Maiter", Mode: gap.ModeAPVC}
)

// All returns the systems in the order Fig. 5 lists them.
func All() []System {
	return []System{Argan, Grape, GrapePlus, GrapeStar, GraphLabSync, GraphLabAsync, PowerSwitch, Maiter}
}

// GrapeFamily returns the systems of the Fig. 6 parallel-model comparison.
func GrapeFamily() []System { return []System{Argan, GrapePlus, GrapeStar, Grape} }

// ByName resolves a system name.
func ByName(name string) (System, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("systems: unknown system %q", name)
}

// Config merges the system's parallel model into an environment config.
func (s System) Config(base gap.Config) gap.Config {
	base.Mode = s.Mode
	base.Adapt = s.Adapt
	return base
}

// Job returns the runnable job of an application under this system,
// selecting the system's application variant where relevant.
func (s System) Job(app string) (core.Job, error) {
	return core.JobFor(app, s.NaiveColor && app == "color")
}
