package vtime

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrder(t *testing.T) {
	var s Scheduler
	var fired []int
	s.At(3, 0, func() { fired = append(fired, 3) })
	s.At(1, 0, func() { fired = append(fired, 1) })
	s.At(2, 0, func() { fired = append(fired, 2) })
	s.Run(nil)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("order = %v", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestTieBreakPrioThenFIFO(t *testing.T) {
	var s Scheduler
	var fired []string
	s.At(5, 1, func() { fired = append(fired, "b1") })
	s.At(5, 0, func() { fired = append(fired, "a1") })
	s.At(5, 0, func() { fired = append(fired, "a2") })
	s.Run(nil)
	if fired[0] != "a1" || fired[1] != "a2" || fired[2] != "b1" {
		t.Fatalf("tie order = %v", fired)
	}
}

func TestAfterAndPastClamp(t *testing.T) {
	var s Scheduler
	s.At(10, 0, func() {
		// Scheduling in the past clamps to now.
		s.At(1, 0, func() {
			if s.Now() != 10 {
				t.Errorf("past event fired at %v", s.Now())
			}
		})
		s.After(5, 0, func() {
			if s.Now() != 15 {
				t.Errorf("after fired at %v", s.Now())
			}
		})
	})
	s.Run(nil)
}

func TestCancel(t *testing.T) {
	var s Scheduler
	fired := false
	e := s.At(1, 0, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Run(nil)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancel after firing is a no-op too.
	e2 := s.At(2, 0, func() {})
	s.Run(nil)
	s.Cancel(e2)
}

func TestRunStop(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), 0, func() { count++ })
	}
	s.Run(func() bool { return count >= 4 })
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), 0, func() { count++ })
	}
	s.RunUntil(5.5)
	if count != 5 || s.Now() != 5.5 {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
	// RunUntil advances time even without events.
	var s2 Scheduler
	s2.RunUntil(42)
	if s2.Now() != 42 {
		t.Fatalf("now = %v", s2.Now())
	}
}

// Property: events fire in nondecreasing time order regardless of insertion
// order, and the clock never goes backwards.
func TestMonotoneProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var s Scheduler
		var fired []Time
		for _, x := range times {
			tt := Time(x % 1000)
			s.At(tt, 0, func() { fired = append(fired, s.Now()) })
		}
		s.Run(nil)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
