// Package vtime provides the deterministic discrete-event machinery that
// drives the simulated cluster: a virtual clock measured in abstract cost
// units (1 unit = one edge scan, the paper's "tick") and an event queue with
// a stable tie-break so runs are exactly reproducible.
package vtime

import "container/heap"

// Time is a point in virtual time, in cost units.
type Time = float64

// Event is a scheduled callback.
type Event struct {
	At   Time
	Prio int // secondary order for equal times (lower fires first)
	Fn   func()

	seq   uint64
	index int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].Prio != h[j].Prio {
		return h[i].Prio < h[j].Prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event loop. The zero value is ready
// to use.
type Scheduler struct {
	now   Time
	queue eventHeap
	seq   uint64
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of scheduled events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute time t (clamped to now if in the past) and
// returns the event, which can be passed to Cancel.
func (s *Scheduler) At(t Time, prio int, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{At: t, Prio: prio, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn delay units from now.
func (s *Scheduler) After(delay Time, prio int, fn func()) *Event {
	return s.At(s.now+delay, prio, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or cancelled
// event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(s.queue) || s.queue[e.index] != e {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// PeekTime returns the time of the earliest pending event, if any.
func (s *Scheduler) PeekTime() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].At, true
}

// Step fires the next event, advancing the clock. It reports whether an
// event was available.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	e.index = -1
	s.now = e.At
	e.Fn()
	return true
}

// Run fires events until the queue empties or until stop returns true
// (checked before each event). It returns the final virtual time.
func (s *Scheduler) Run(stop func() bool) Time {
	for len(s.queue) > 0 {
		if stop != nil && stop() {
			break
		}
		s.Step()
	}
	return s.now
}

// RunUntil fires events with time <= deadline.
func (s *Scheduler) RunUntil(deadline Time) Time {
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}
