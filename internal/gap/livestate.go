package gap

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"argan/internal/ace"
	"argan/internal/graph"
	"argan/internal/mem"
	"argan/internal/obs"
)

// batchPool recycles message batches between senders and receivers: takeOut
// hands a filled batch to the transport and replaces the accumulator's
// backing slice from the pool; the receiver returns the batch after h_in.
// A bounded mutex-guarded free list is used instead of sync.Pool so a put
// never allocates (boxing a slice into an interface would) and reuse is
// deterministic under test.
type batchPool[V any] struct {
	mu   sync.Mutex
	free [][]ace.Message[V]

	// Free-list accounting under a memory governor (nil acct = ungoverned):
	// held tracks the bytes parked in free so the governor sees pooled
	// capacity as pressure it can shed via trim.
	acct *mem.Account
	wire int64
	held int64
}

// batchPoolCap bounds the free list; overflow batches are left to the GC.
const batchPoolCap = 256

func (bp *batchPool[V]) get() []ace.Message[V] {
	bp.mu.Lock()
	if n := len(bp.free); n > 0 {
		s := bp.free[n-1]
		bp.free[n-1] = nil
		bp.free = bp.free[:n-1]
		if bp.acct != nil {
			b := int64(cap(s)) * bp.wire
			bp.held -= b
			bp.acct.Add(-b)
		}
		bp.mu.Unlock()
		return s
	}
	bp.mu.Unlock()
	return make([]ace.Message[V], 0, 64)
}

func (bp *batchPool[V]) put(s []ace.Message[V]) {
	if cap(s) == 0 {
		return
	}
	bp.mu.Lock()
	if len(bp.free) < batchPoolCap {
		bp.free = append(bp.free, s[:0])
		if bp.acct != nil {
			b := int64(cap(s)) * bp.wire
			bp.held += b
			bp.acct.Add(b)
		}
	}
	bp.mu.Unlock()
}

// trim releases the free list under memory pressure; batches in flight are
// untouched and the pool refills organically once pressure clears.
func (bp *batchPool[V]) trim() {
	bp.mu.Lock()
	for i := range bp.free {
		bp.free[i] = nil
	}
	bp.free = bp.free[:0]
	if bp.acct != nil && bp.held != 0 {
		bp.acct.Add(-bp.held)
		bp.held = 0
	}
	bp.mu.Unlock()
}

// liveTuning selects the message-pipeline variant of a live state; the zero
// value is the default pooled, combining pipeline.
type liveTuning struct {
	// legacy reproduces the pre-pooling pipeline byte for byte: a fresh
	// map-indexed accumulator per flush, coalescing through Aggregate, and
	// map-based global→local resolution on ingest. Benchmarks use it as
	// the baseline the pooled pipeline is measured against.
	legacy bool
	// noCombine disables outgoing coalescing entirely (append-only
	// accumulators); isolates the combiner's contribution in benchmarks.
	noCombine bool
}

// liveState is the per-worker state shared by the live drivers (async and
// BSP): status variables, active set, per-peer out-accumulators and the ACE
// context wiring. It contains no synchronization — each instance is owned
// by exactly one goroutine at a time.
type liveState[V any] struct {
	id   int
	frag *graph.Fragment
	prog ace.Program[V]
	deps ace.DepKind

	psi    []V
	active *activeSet
	ctx    *ace.Ctx[V]

	out []liveOutAcc[V]

	// rs is the exactly-once ingestion and localized-recovery state (per-peer
	// sequence cursors, reorder buffers, sender incarnations, undo log). nil
	// unless the live driver runs with link faults or Recovery: local — the
	// default pipeline carries no sequencing overhead.
	rs *recoverState[V]

	pool   *batchPool[V]
	tune   liveTuning
	lookup []uint32 // global id -> local id + 1; 0 = not present (pooled path)
	// combine coalesces two outgoing values for one vertex (the program's
	// Combiner, falling back to an Aggregate fold); nil appends without
	// coalescing (legacy mode indexes by map instead).
	combine func(a, b V) V
}

// liveOutAcc accumulates the outgoing batch for one peer. The pooled path
// coalesces through a generation-stamped dense index keyed by the sender's
// local vertex id (every enqueued vertex is local to the sender), so a
// flush is a pointer swap plus a generation bump — no per-flush allocation.
// The legacy path keeps the original map index and reallocates per flush.
type liveOutAcc[V any] struct {
	msgs []ace.Message[V]

	slotGen []uint32 // slotGen[l] == gen ⇒ msgs[slotIdx[l]] holds vertex l
	slotIdx []uint32
	gen     uint32

	index map[graph.VID]int // legacy only
}

func newLiveState[V any](id int, f *graph.Fragment, prog ace.Program[V], q ace.Query) *liveState[V] {
	return newLiveStateWith(id, f, prog, q, &batchPool[V]{}, liveTuning{})
}

func newLiveStateWith[V any](id int, f *graph.Fragment, prog ace.Program[V], q ace.Query, pool *batchPool[V], tune liveTuning) *liveState[V] {
	st := &liveState[V]{id: id, frag: f, prog: prog, deps: prog.Deps(), pool: pool, tune: tune}
	prog.Setup(f, q)
	st.psi = make([]V, f.NumLocal())
	var prio func(uint32) float64
	if p, ok := any(prog).(ace.Prioritizer[V]); ok {
		prio = func(l uint32) float64 { return p.Priority(st.psi[l]) }
	}
	st.active = newActiveSet(f.NumOwned(), prio)
	st.out = make([]liveOutAcc[V], f.NumWorkers())
	if tune.legacy {
		for j := range st.out {
			st.out[j] = liveOutAcc[V]{index: map[graph.VID]int{}}
		}
	} else {
		for j := range st.out {
			st.out[j] = liveOutAcc[V]{gen: 1}
		}
		st.lookup = make([]uint32, f.GlobalVertices())
		for l := uint32(0); int(l) < f.NumLocal(); l++ {
			st.lookup[f.Global(l)] = l + 1
		}
		if !tune.noCombine {
			if c, ok := any(prog).(ace.Combiner[V]); ok {
				st.combine = c.Combine
			} else {
				st.combine = func(a, b V) V {
					v, _ := prog.Aggregate(a, b)
					return v
				}
			}
		}
	}
	st.ctx = ace.NewCtx(f, st.psi, st.ctxSet, st.ctxSend, st.ctxActivate)
	for l := uint32(0); int(l) < f.NumLocal(); l++ {
		v, act := prog.InitValue(f, l, q)
		st.psi[l] = v
		if act && f.IsOwned(l) {
			st.active.Push(l)
		}
	}
	if is, ok := any(prog).(ace.InitialSyncer); ok && is.InitialSync() {
		for l := uint32(0); int(l) < f.NumOwned(); l++ {
			g := f.Global(l)
			for _, r := range f.ReplicasOut(l) {
				st.enqueue(int(r), l, g, st.psi[l])
			}
			if f.Directed() && st.deps != ace.DepIn && st.deps != ace.DepSelf {
				for _, r := range f.ReplicasIn(l) {
					dup := false
					for _, r2 := range f.ReplicasOut(l) {
						if r2 == r {
							dup = true
							break
						}
					}
					if !dup {
						st.enqueue(int(r), l, g, st.psi[l])
					}
				}
			}
		}
	}
	return st
}

// enqueue buffers ⟨g, val⟩ for peer. l is the sender-local id of g (every
// vertex a worker ships is local to it: owned border vertices and ghosts),
// which keys the pooled path's dense coalescing index.
func (st *liveState[V]) enqueue(peer int, l uint32, g graph.VID, val V) {
	o := &st.out[peer]
	if st.tune.legacy {
		if k, ok := o.index[g]; ok {
			agg, _ := st.prog.Aggregate(o.msgs[k].Val, val)
			o.msgs[k].Val = agg
			return
		}
		o.index[g] = len(o.msgs)
		o.msgs = append(o.msgs, ace.Message[V]{V: g, Val: val})
		return
	}
	if st.combine != nil {
		if o.slotGen == nil {
			o.slotGen = make([]uint32, st.frag.NumLocal())
			o.slotIdx = make([]uint32, st.frag.NumLocal())
		}
		if o.slotGen[l] == o.gen {
			k := o.slotIdx[l]
			o.msgs[k].Val = st.combine(o.msgs[k].Val, val)
			return
		}
		o.slotGen[l] = o.gen
		o.slotIdx[l] = uint32(len(o.msgs))
	}
	o.msgs = append(o.msgs, ace.Message[V]{V: g, Val: val})
}

func (st *liveState[V]) activateDeps(lv uint32) {
	push := func(us []uint32) {
		for _, u := range us {
			if st.frag.IsOwned(u) {
				st.active.Push(u)
			}
		}
	}
	switch st.deps {
	case ace.DepOut:
		push(st.frag.InNeighbors(lv))
	case ace.DepBoth:
		push(st.frag.InNeighbors(lv))
		push(st.frag.OutNeighbors(lv))
	default:
		push(st.frag.OutNeighbors(lv))
	}
}

func (st *liveState[V]) ctxSet(l uint32, v V) {
	old := st.psi[l]
	st.psi[l] = v
	if st.prog.Equal(old, v) || st.deps == ace.DepSelf {
		return
	}
	g := st.frag.Global(l)
	switch st.deps {
	case ace.DepOut:
		for _, r := range st.frag.ReplicasIn(l) {
			st.enqueue(int(r), l, g, v)
		}
	case ace.DepBoth:
		for _, r := range st.frag.ReplicasOut(l) {
			st.enqueue(int(r), l, g, v)
		}
		for _, r := range st.frag.ReplicasIn(l) {
			dup := false
			for _, r2 := range st.frag.ReplicasOut(l) {
				if r2 == r {
					dup = true
					break
				}
			}
			if !dup {
				st.enqueue(int(r), l, g, v)
			}
		}
	default:
		for _, r := range st.frag.ReplicasOut(l) {
			st.enqueue(int(r), l, g, v)
		}
	}
	st.activateDeps(l)
}

func (st *liveState[V]) ctxSend(l uint32, d V) {
	if st.frag.IsOwned(l) {
		nv, ch := st.prog.Aggregate(st.psi[l], d)
		if ch {
			st.psi[l] = nv
			st.active.Push(l)
		}
		return
	}
	g := st.frag.Global(l)
	st.enqueue(st.frag.OwnerOf(g), l, g, d)
}

func (st *liveState[V]) ctxActivate(l uint32) {
	if st.frag.IsOwned(l) {
		st.active.Push(l)
	}
}

// local resolves a global id to the local index through the dense lookup
// when available (pooled path), falling back to the fragment's map.
func (st *liveState[V]) local(g graph.VID) (uint32, bool) {
	if st.lookup != nil {
		if int(g) < len(st.lookup) {
			l := st.lookup[g]
			return l - 1, l != 0
		}
		return 0, false
	}
	return st.frag.Local(g)
}

// ingest applies one batch to Ψ (h_in) and re-activates dependents.
func (st *liveState[V]) ingest(msgs []ace.Message[V]) {
	for _, m := range msgs {
		lv, ok := st.local(m.V)
		if !ok {
			continue
		}
		nv, ch := st.prog.Aggregate(st.psi[lv], m.Val)
		if !ch {
			continue
		}
		st.psi[lv] = nv
		if st.deps == ace.DepSelf {
			if st.frag.IsOwned(lv) {
				st.active.Push(lv)
			}
		} else {
			st.activateDeps(lv)
		}
	}
}

// takeOut removes and returns the accumulated batch for the peer. The pooled
// path swaps in a recycled backing slice and bumps the coalescing
// generation; the legacy path reallocates as the pre-pooling pipeline did.
// Ownership of the returned batch transfers to the caller (the receiver
// recycles it via the pool after h_in).
func (st *liveState[V]) takeOut(peer int) []ace.Message[V] {
	o := &st.out[peer]
	if len(o.msgs) == 0 {
		return nil
	}
	msgs := o.msgs
	if st.tune.legacy {
		st.out[peer] = liveOutAcc[V]{index: map[graph.VID]int{}}
		return msgs
	}
	o.msgs = st.pool.get()
	o.gen++
	return msgs
}

// restoreOut overwrites the peer's accumulator with the snapshot batch,
// rebuilding whichever coalescing index the pipeline variant uses.
func (st *liveState[V]) restoreOut(peer int, msgs []ace.Message[V]) {
	if st.tune.legacy {
		cp := append([]ace.Message[V](nil), msgs...)
		idx := make(map[graph.VID]int, len(cp))
		for k, m := range cp {
			idx[m.V] = k
		}
		st.out[peer] = liveOutAcc[V]{msgs: cp, index: idx}
		return
	}
	o := &st.out[peer]
	o.msgs = append(o.msgs[:0], msgs...)
	o.gen++
	if st.combine != nil && len(o.msgs) > 0 {
		if o.slotGen == nil {
			o.slotGen = make([]uint32, st.frag.NumLocal())
			o.slotIdx = make([]uint32, st.frag.NumLocal())
		}
		for k, m := range o.msgs {
			if l, ok := st.local(m.V); ok {
				o.slotGen[l] = o.gen
				o.slotIdx[l] = uint32(k)
			}
		}
	}
}

// outputs extracts the owned results.
func (st *liveState[V]) outputs(into []V) {
	for l := uint32(0); int(l) < st.frag.NumOwned(); l++ {
		into[st.frag.Global(l)] = st.prog.Output(st.ctx, l)
	}
}

// finalPsi extracts the raw owned status variables (pre-Output view), which
// warm restarts re-converge from.
func (st *liveState[V]) finalPsi(into []V) {
	for l := uint32(0); int(l) < st.frag.NumOwned(); l++ {
		into[st.frag.Global(l)] = st.psi[l]
	}
}

// BSPOptions tunes the live BSP driver's execution pipeline.
type BSPOptions struct {
	// MaxSupersteps bounds the run (<= 0 means effectively unbounded).
	MaxSupersteps int
	// Tracer receives superstep spans and counters; nil disables tracing.
	Tracer obs.Tracer
	// IntraParallelism shards each worker's local fixpoint as in
	// LiveConfig.IntraParallelism: 0 resolves to GOMAXPROCS/NumWorkers
	// (min 1), 1 evaluates serially, > 1 uses the deterministic sharded
	// evaluator for ace.ShardSafe programs. Because the BSP exchange is
	// itself deterministic, sharded BSP runs are bit-reproducible and
	// identical for every shard count.
	IntraParallelism int
	// LegacyBatches / NoCombine select the message-pipeline variant (see
	// LiveConfig).
	LegacyBatches bool
	NoCombine     bool
}

// RunLiveBSP executes the program under a real-concurrency bulk-synchronous
// driver: per superstep every worker runs its local fixpoint in its own
// goroutine, a sync.WaitGroup barrier closes the superstep, and the batches
// are exchanged before the next one starts — Grape's execution model on
// goroutines.
func RunLiveBSP[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, maxSupersteps int) (*Result[V], *LiveMetrics, error) {
	return RunLiveBSPOpts(frags, factory, q, BSPOptions{MaxSupersteps: maxSupersteps, IntraParallelism: 1})
}

// RunLiveBSPTraced is RunLiveBSP with an optional tracer: each worker's
// superstep becomes a PhaseSuperstep span (wall-µs timestamps), with
// per-superstep update/message counters and active-set gauges. Worker
// goroutines carry runtime/pprof worker/phase labels while tracing so CPU
// profiles attribute samples to supersteps.
func RunLiveBSPTraced[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, maxSupersteps int, tr obs.Tracer) (*Result[V], *LiveMetrics, error) {
	return RunLiveBSPOpts(frags, factory, q, BSPOptions{MaxSupersteps: maxSupersteps, Tracer: tr, IntraParallelism: 1})
}

// RunLiveBSPOpts is the fully-parameterized live BSP driver.
func RunLiveBSPOpts[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, o BSPOptions) (*Result[V], *LiveMetrics, error) {
	if len(frags) == 0 {
		return nil, nil, errNoFragments
	}
	maxSupersteps := o.MaxSupersteps
	if maxSupersteps <= 0 {
		maxSupersteps = 1 << 20
	}
	tr := o.Tracer
	n := len(frags)
	pool := &batchPool[V]{}
	tune := liveTuning{legacy: o.LegacyBatches, noCombine: o.NoCombine}
	states := make([]*liveState[V], n)
	for i := range states {
		states[i] = newLiveStateWith(i, frags[i], factory(), q, pool, tune)
	}
	shards := resolveShards(o.IntraParallelism, n, states[0].prog)
	evals := make([]*waveEval[V], n)
	if shards > 1 {
		for i := range evals {
			evals[i] = newWaveEval(states[i], shards)
		}
	}
	inbox := make([][][]ace.Message[V], n) // inbox[worker] = batches
	m := &LiveMetrics{}
	start := nowFn()
	ts := func() float64 { return float64(sinceFn(start)) / 1e3 }

	for step := 0; step < maxSupersteps; step++ {
		m.Rounds++
		var wg waitGroup
		updates := make([]int64, n)
		for i := range states {
			st := states[i]
			batches := inbox[i]
			inbox[i] = nil
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if tr != nil {
					pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
						pprof.Labels("worker", strconv.Itoa(i), "phase", "superstep")))
					defer pprof.SetGoroutineLabels(context.Background())
					t0 := ts()
					tr.SpanBegin(i, obs.PhaseSuperstep, t0)
					tr.Sample(i, obs.GaugeMailbox, t0, float64(len(batches)))
				}
				for _, b := range batches {
					st.ingest(b)
					if !tune.legacy {
						pool.put(b)
					}
				}
				if tr != nil {
					tr.Sample(i, obs.GaugeActive, ts(), float64(st.active.Len()))
				}
				if ev := evals[i]; ev != nil {
					for !st.active.Empty() {
						updates[i] += int64(ev.runWave(liveBSPWaveCap))
					}
				} else {
					for !st.active.Empty() {
						v := st.active.Pop()
						st.prog.Update(st.ctx, v)
						updates[i]++
					}
				}
				if tr != nil {
					t1 := ts()
					tr.Count(i, obs.CounterUpdates, t1, updates[i])
					tr.SpanEnd(i, obs.PhaseSuperstep, t1)
				}
			}(i)
		}
		wg.Wait()
		for i := range updates {
			m.Updates += updates[i]
		}
		// Exchange at the barrier.
		any := false
		for i, st := range states {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if msgs := st.takeOut(j); msgs != nil {
					inbox[j] = append(inbox[j], msgs)
					m.MsgsSent += int64(len(msgs))
					m.Batches++
					if tr != nil {
						tr.Count(i, obs.CounterMsgsSent, ts(), int64(len(msgs)))
					}
					any = true
				}
			}
		}
		if !any {
			break
		}
	}
	m.WallTime = sinceFn(start)

	res := &Result[V]{
		Values: make([]V, frags[0].GlobalVertices()),
		Psi:    make([]V, frags[0].GlobalVertices()),
	}
	for _, st := range states {
		st.outputs(res.Values)
		st.finalPsi(res.Psi)
	}
	res.Metrics.Converged = true
	res.Metrics.Mode = ModeBSP
	res.Metrics.Supersteps = m.Rounds
	return res, m, nil
}

// liveBSPWaveCap is the wave size of the sharded evaluator under the BSP
// driver (the async driver uses CheckEvery instead).
const liveBSPWaveCap = 256

// resolveShards turns an IntraParallelism setting into an effective shard
// count for prog: 0 defaults to GOMAXPROCS/numWorkers (min 1), and values
// above 1 require the program to declare ace.ShardSafe.
func resolveShards[V any](requested, numWorkers int, prog ace.Program[V]) int {
	s := requested
	if s <= 0 {
		s = runtime.GOMAXPROCS(0) / numWorkers
		if s < 1 {
			s = 1
		}
	}
	if s > 1 {
		if ss, ok := any(prog).(ace.ShardSafe); !ok || !ss.ShardSafe() {
			s = 1
		}
	}
	return s
}

// Indirections shared with live.go (kept tiny so tests can stub time).
var (
	nowFn   = timeNow
	sinceFn = timeSince
)
