package gap

import (
	"context"
	"runtime/pprof"
	"strconv"

	"argan/internal/ace"
	"argan/internal/graph"
	"argan/internal/obs"
)

// liveState is the per-worker state shared by the live drivers (async and
// BSP): status variables, active set, per-peer out-accumulators and the ACE
// context wiring. It contains no synchronization — each instance is owned
// by exactly one goroutine at a time.
type liveState[V any] struct {
	id   int
	frag *graph.Fragment
	prog ace.Program[V]
	deps ace.DepKind

	psi    []V
	active *activeSet
	ctx    *ace.Ctx[V]

	out []liveOutAcc[V]
}

type liveOutAcc[V any] struct {
	msgs  []ace.Message[V]
	index map[graph.VID]int
}

func newLiveState[V any](id int, f *graph.Fragment, prog ace.Program[V], q ace.Query) *liveState[V] {
	st := &liveState[V]{id: id, frag: f, prog: prog, deps: prog.Deps()}
	prog.Setup(f, q)
	st.psi = make([]V, f.NumLocal())
	var prio func(uint32) float64
	if p, ok := any(prog).(ace.Prioritizer[V]); ok {
		prio = func(l uint32) float64 { return p.Priority(st.psi[l]) }
	}
	st.active = newActiveSet(f.NumOwned(), prio)
	st.out = make([]liveOutAcc[V], f.NumWorkers())
	for j := range st.out {
		st.out[j] = liveOutAcc[V]{index: map[graph.VID]int{}}
	}
	st.ctx = ace.NewCtx(f, st.psi, st.ctxSet, st.ctxSend, st.ctxActivate)
	for l := uint32(0); int(l) < f.NumLocal(); l++ {
		v, act := prog.InitValue(f, l, q)
		st.psi[l] = v
		if act && f.IsOwned(l) {
			st.active.Push(l)
		}
	}
	if is, ok := any(prog).(ace.InitialSyncer); ok && is.InitialSync() {
		for l := uint32(0); int(l) < f.NumOwned(); l++ {
			g := f.Global(l)
			for _, r := range f.ReplicasOut(l) {
				st.enqueue(int(r), g, st.psi[l])
			}
			if f.Directed() && st.deps != ace.DepIn && st.deps != ace.DepSelf {
				for _, r := range f.ReplicasIn(l) {
					dup := false
					for _, r2 := range f.ReplicasOut(l) {
						if r2 == r {
							dup = true
							break
						}
					}
					if !dup {
						st.enqueue(int(r), g, st.psi[l])
					}
				}
			}
		}
	}
	return st
}

func (st *liveState[V]) enqueue(peer int, g graph.VID, val V) {
	o := &st.out[peer]
	if k, ok := o.index[g]; ok {
		agg, _ := st.prog.Aggregate(o.msgs[k].Val, val)
		o.msgs[k].Val = agg
		return
	}
	o.index[g] = len(o.msgs)
	o.msgs = append(o.msgs, ace.Message[V]{V: g, Val: val})
}

func (st *liveState[V]) activateDeps(lv uint32) {
	push := func(us []uint32) {
		for _, u := range us {
			if st.frag.IsOwned(u) {
				st.active.Push(u)
			}
		}
	}
	switch st.deps {
	case ace.DepOut:
		push(st.frag.InNeighbors(lv))
	case ace.DepBoth:
		push(st.frag.InNeighbors(lv))
		push(st.frag.OutNeighbors(lv))
	default:
		push(st.frag.OutNeighbors(lv))
	}
}

func (st *liveState[V]) ctxSet(l uint32, v V) {
	old := st.psi[l]
	st.psi[l] = v
	if st.prog.Equal(old, v) || st.deps == ace.DepSelf {
		return
	}
	g := st.frag.Global(l)
	switch st.deps {
	case ace.DepOut:
		for _, r := range st.frag.ReplicasIn(l) {
			st.enqueue(int(r), g, v)
		}
	case ace.DepBoth:
		for _, r := range st.frag.ReplicasOut(l) {
			st.enqueue(int(r), g, v)
		}
		for _, r := range st.frag.ReplicasIn(l) {
			dup := false
			for _, r2 := range st.frag.ReplicasOut(l) {
				if r2 == r {
					dup = true
					break
				}
			}
			if !dup {
				st.enqueue(int(r), g, v)
			}
		}
	default:
		for _, r := range st.frag.ReplicasOut(l) {
			st.enqueue(int(r), g, v)
		}
	}
	st.activateDeps(l)
}

func (st *liveState[V]) ctxSend(l uint32, d V) {
	if st.frag.IsOwned(l) {
		nv, ch := st.prog.Aggregate(st.psi[l], d)
		if ch {
			st.psi[l] = nv
			st.active.Push(l)
		}
		return
	}
	g := st.frag.Global(l)
	st.enqueue(st.frag.OwnerOf(g), g, d)
}

func (st *liveState[V]) ctxActivate(l uint32) {
	if st.frag.IsOwned(l) {
		st.active.Push(l)
	}
}

// ingest applies one batch to Ψ (h_in) and re-activates dependents.
func (st *liveState[V]) ingest(msgs []ace.Message[V]) {
	for _, m := range msgs {
		lv, ok := st.frag.Local(m.V)
		if !ok {
			continue
		}
		nv, ch := st.prog.Aggregate(st.psi[lv], m.Val)
		if !ch {
			continue
		}
		st.psi[lv] = nv
		if st.deps == ace.DepSelf {
			if st.frag.IsOwned(lv) {
				st.active.Push(lv)
			}
		} else {
			st.activateDeps(lv)
		}
	}
}

// takeOut removes and returns the accumulated batch for the peer.
func (st *liveState[V]) takeOut(peer int) []ace.Message[V] {
	o := &st.out[peer]
	if len(o.msgs) == 0 {
		return nil
	}
	msgs := o.msgs
	st.out[peer] = liveOutAcc[V]{index: map[graph.VID]int{}}
	return msgs
}

// outputs extracts the owned results.
func (st *liveState[V]) outputs(into []V) {
	for l := uint32(0); int(l) < st.frag.NumOwned(); l++ {
		into[st.frag.Global(l)] = st.prog.Output(st.ctx, l)
	}
}

// RunLiveBSP executes the program under a real-concurrency bulk-synchronous
// driver: per superstep every worker runs its local fixpoint in its own
// goroutine, a sync.WaitGroup barrier closes the superstep, and the batches
// are exchanged before the next one starts — Grape's execution model on
// goroutines.
func RunLiveBSP[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, maxSupersteps int) (*Result[V], *LiveMetrics, error) {
	return RunLiveBSPTraced(frags, factory, q, maxSupersteps, nil)
}

// RunLiveBSPTraced is RunLiveBSP with an optional tracer: each worker's
// superstep becomes a PhaseSuperstep span (wall-µs timestamps), with
// per-superstep update/message counters and active-set gauges. Worker
// goroutines carry runtime/pprof worker/phase labels while tracing so CPU
// profiles attribute samples to supersteps.
func RunLiveBSPTraced[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, maxSupersteps int, tr obs.Tracer) (*Result[V], *LiveMetrics, error) {
	if len(frags) == 0 {
		return nil, nil, errNoFragments
	}
	if maxSupersteps <= 0 {
		maxSupersteps = 1 << 20
	}
	n := len(frags)
	states := make([]*liveState[V], n)
	for i := range states {
		states[i] = newLiveState(i, frags[i], factory(), q)
	}
	inbox := make([][][]ace.Message[V], n) // inbox[worker] = batches
	m := &LiveMetrics{}
	start := nowFn()
	ts := func() float64 { return float64(sinceFn(start)) / 1e3 }

	for step := 0; step < maxSupersteps; step++ {
		m.Rounds++
		var wg waitGroup
		updates := make([]int64, n)
		for i := range states {
			st := states[i]
			batches := inbox[i]
			inbox[i] = nil
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if tr != nil {
					pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
						pprof.Labels("worker", strconv.Itoa(i), "phase", "superstep")))
					defer pprof.SetGoroutineLabels(context.Background())
					t0 := ts()
					tr.SpanBegin(i, obs.PhaseSuperstep, t0)
					tr.Sample(i, obs.GaugeMailbox, t0, float64(len(batches)))
				}
				for _, b := range batches {
					st.ingest(b)
				}
				if tr != nil {
					tr.Sample(i, obs.GaugeActive, ts(), float64(st.active.Len()))
				}
				for !st.active.Empty() {
					v := st.active.Pop()
					st.prog.Update(st.ctx, v)
					updates[i]++
				}
				if tr != nil {
					t1 := ts()
					tr.Count(i, obs.CounterUpdates, t1, updates[i])
					tr.SpanEnd(i, obs.PhaseSuperstep, t1)
				}
			}(i)
		}
		wg.Wait()
		for i := range updates {
			m.Updates += updates[i]
		}
		// Exchange at the barrier.
		any := false
		for i, st := range states {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if msgs := st.takeOut(j); msgs != nil {
					inbox[j] = append(inbox[j], msgs)
					m.MsgsSent += int64(len(msgs))
					m.Batches++
					if tr != nil {
						tr.Count(i, obs.CounterMsgsSent, ts(), int64(len(msgs)))
					}
					any = true
				}
			}
		}
		if !any {
			break
		}
	}
	m.WallTime = sinceFn(start)

	res := &Result[V]{Values: make([]V, frags[0].GlobalVertices())}
	for _, st := range states {
		st.outputs(res.Values)
	}
	res.Metrics.Converged = true
	res.Metrics.Mode = ModeBSP
	res.Metrics.Supersteps = m.Rounds
	return res, m, nil
}

// Indirections shared with live.go (kept tiny so tests can stub time).
var (
	nowFn   = timeNow
	sinceFn = timeSince
)
