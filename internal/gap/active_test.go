package gap

import (
	"testing"
	"testing/quick"
)

func TestActiveSetFIFO(t *testing.T) {
	a := newActiveSet(8, nil)
	if !a.Empty() || a.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	a.Push(3)
	a.Push(1)
	a.Push(3) // duplicate ignored
	if a.Len() != 2 || a.Peek() != 3 {
		t.Fatalf("len=%d peek=%d", a.Len(), a.Peek())
	}
	got := a.Drain()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("drain = %v", got)
	}
	if !a.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestActiveSetPriority(t *testing.T) {
	prio := []float64{9, 2, 7, 1}
	a := newActiveSet(4, func(l uint32) float64 { return prio[l] })
	for i := 3; i >= 0; i-- {
		a.Push(uint32(i))
	}
	// Re-push with an improved priority: lazy duplicate, best pops first.
	prio[0] = 0
	a.Push(0)
	want := []uint32{0, 3, 1, 2}
	for _, w := range want {
		if got := a.Pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
	if !a.Empty() {
		t.Fatal("should be empty")
	}
}

// Property: every pushed vertex pops exactly once per activation epoch,
// regardless of duplicate pushes and priority changes.
func TestActiveSetPopOnce(t *testing.T) {
	f := func(pushes []uint8, usePrio bool) bool {
		prio := make([]float64, 32)
		var pf func(uint32) float64
		if usePrio {
			pf = func(l uint32) float64 { return prio[l] }
		}
		a := newActiveSet(32, pf)
		inSet := map[uint32]bool{}
		for _, p := range pushes {
			v := uint32(p % 32)
			prio[v] = float64(p)
			a.Push(v)
			inSet[v] = true
		}
		popped := map[uint32]bool{}
		for !a.Empty() {
			v := a.Pop()
			if popped[v] {
				return false // double pop
			}
			popped[v] = true
		}
		return len(popped) == len(inSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
