package gap

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/graph"
	"argan/internal/partition"
)

var allModes = []Mode{ModeGAP, ModeBSP, ModeBSPVC, ModeAPGC, ModeAPVC, ModeAAP}

func frags(t testing.TB, g *graph.Graph, n int) []*graph.Fragment {
	t.Helper()
	fs, err := partition.Partition(g, partition.Hash{}, n)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func testGraph(directed bool, seed int64) *graph.Graph {
	return graph.PowerLaw(graph.GenConfig{N: 400, M: 2400, Directed: directed, Seed: seed, MaxW: 20})
}

func TestSSSPAllModesMatchSequential(t *testing.T) {
	g := testGraph(true, 1)
	want := algorithms.SeqSSSP(g, 0)
	for _, mode := range allModes {
		for _, n := range []int{1, 3, 8} {
			res, err := RunSim(frags(t, g, n), algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: mode, Adapt: adapt.PolicyGAwD})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Metrics.Converged {
				t.Fatalf("%v n=%d did not converge", mode, n)
			}
			for v, d := range want {
				if res.Values[v] != d {
					t.Fatalf("%v n=%d: dist[%d] = %v, want %v", mode, n, v, res.Values[v], d)
				}
			}
			if res.Metrics.RespTime <= 0 {
				t.Fatalf("%v n=%d: zero response time", mode, n)
			}
		}
	}
}

func TestBellmanFordMatchesSequential(t *testing.T) {
	g := testGraph(true, 2)
	want := algorithms.SeqBellmanFord(g, 0)
	res, err := RunSim(frags(t, g, 4), algorithms.NewBellmanFord(), ace.Query{Source: 0}, Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

func TestBFSAllModes(t *testing.T) {
	g := testGraph(true, 3)
	want := algorithms.SeqBFS(g, 1)
	for _, mode := range allModes {
		res, err := RunSim(frags(t, g, 4), algorithms.NewBFS(), ace.Query{Source: 1}, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for v, d := range want {
			got := res.Values[v]
			if d < 0 {
				if got != math.MaxInt32 {
					t.Fatalf("%v: bfs[%d] = %d, want unreachable", mode, v, got)
				}
			} else if got != d {
				t.Fatalf("%v: bfs[%d] = %d, want %d", mode, v, got, d)
			}
		}
	}
}

func TestWCCAllModes(t *testing.T) {
	g := testGraph(true, 4)
	want := algorithms.SeqWCC(g)
	for _, mode := range allModes {
		res, err := RunSim(frags(t, g, 5), algorithms.NewWCC(), ace.Query{}, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for v, c := range want {
			if res.Values[v] != c {
				t.Fatalf("%v: wcc[%d] = %d, want %d", mode, v, res.Values[v], c)
			}
		}
	}
}

func TestColorMatchesSequentialAsyncModes(t *testing.T) {
	g := testGraph(true, 5)
	want := algorithms.SeqColor(g)
	// The id-priority coloring fixpoint is schedule-independent, so every
	// mode (including synchronous ones) must match the sequential greedy.
	for _, mode := range allModes {
		res, err := RunSim(frags(t, g, 4), algorithms.NewColor(), ace.Query{}, Config{Mode: mode, Adapt: adapt.PolicyGAwD})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Metrics.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		for v, c := range want {
			if res.Values[v] != c {
				t.Fatalf("%v: color[%d] = %d, want %d", mode, v, res.Values[v], c)
			}
		}
	}
}

func TestNaiveColorOscillatesUnderSync(t *testing.T) {
	g := graph.Uniform(graph.GenConfig{N: 100, M: 400, Directed: false, Seed: 6})
	res, err := RunSim(frags(t, g, 4), algorithms.NewNaiveColor(), ace.Query{},
		Config{Mode: ModeBSPVC, MaxUpdatesPerVertex: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Converged {
		t.Fatal("naive synchronous coloring should oscillate (NA in Fig. 5)")
	}
}

func TestPageRankMatchesSequential(t *testing.T) {
	g := testGraph(true, 7)
	want := algorithms.SeqPageRank(g, 1e-4)
	for _, mode := range allModes {
		res, err := RunSim(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-4}, Config{Mode: mode, Adapt: adapt.PolicyGAwD})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Metrics.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		for v, r := range want {
			if math.Abs(res.Values[v]-r) > 0.02*(r+1) {
				t.Fatalf("%v: pr[%d] = %v, want ~%v", mode, v, res.Values[v], r)
			}
		}
	}
}

func TestCoreMatchesPeeling(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 300, M: 2400, Directed: false, Seed: 8})
	want := algorithms.SeqCore(g)
	for _, mode := range allModes {
		res, err := RunSim(frags(t, g, 4), algorithms.NewCore(), ace.Query{}, Config{Mode: mode, Adapt: adapt.PolicyGAwD})
		if err != nil {
			t.Fatal(err)
		}
		for v, c := range want {
			if res.Values[v] != c {
				t.Fatalf("%v: core[%d] = %d, want %d", mode, v, res.Values[v], c)
			}
		}
	}
}

func TestSimMatchesSequential(t *testing.T) {
	g := graph.KnowledgeBase(graph.GenConfig{N: 300, M: 1500, Seed: 9, Labels: 6})
	pat := algorithms.RandomPattern(g, 4, 5, 42)
	want := algorithms.SeqSim(g, pat)
	for _, mode := range allModes {
		res, err := RunSim(frags(t, g, 4), algorithms.NewSim(), ace.Query{Pattern: pat}, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for v, m := range want {
			if res.Values[v] != m {
				t.Fatalf("%v: sim[%d] = %b, want %b", mode, v, res.Values[v], m)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(true, 10)
	run := func() *Result[float64] {
		res, err := RunSim(frags(t, g, 6), algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Metrics.RespTime != b.Metrics.RespTime || a.Metrics.Updates != b.Metrics.Updates ||
		a.Metrics.MsgsSent != b.Metrics.MsgsSent {
		t.Fatalf("nondeterministic run: %+v vs %+v",
			[3]any{a.Metrics.RespTime, a.Metrics.Updates, a.Metrics.MsgsSent},
			[3]any{b.Metrics.RespTime, b.Metrics.Updates, b.Metrics.MsgsSent})
	}
}

func TestMetricsSanity(t *testing.T) {
	g := testGraph(true, 11)
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.TotalBusy <= 0 || m.Updates <= 0 || m.Rounds <= 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	if m.TotalTw < 0 || m.TotalTw > m.TotalBusy {
		t.Fatalf("Tw out of range: %v of busy %v", m.TotalTw, m.TotalBusy)
	}
	if m.Phi < -1 || m.Phi > 1 {
		t.Fatalf("phi out of range: %v", m.Phi)
	}
	if len(m.Workers) != 4 {
		t.Fatalf("want 4 worker metrics, got %d", len(m.Workers))
	}
}

func TestSingleWorker(t *testing.T) {
	g := testGraph(true, 12)
	want := algorithms.SeqSSSP(g, 0)
	res, err := RunSim(frags(t, g, 1), algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
	if res.Metrics.MsgsSent != 0 {
		t.Fatalf("single worker sent %d messages", res.Metrics.MsgsSent)
	}
}

func TestEmptyFragsError(t *testing.T) {
	if _, err := RunSim(nil, algorithms.NewSSSP(), ace.Query{}, Config{}); err == nil {
		t.Fatal("want error for no fragments")
	}
}
