package gap

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/obs"
)

// tracedSim runs one traced sim-driver SSSP and returns its recorder.
func tracedSim(t *testing.T, seed int64, n int) (*obs.Recorder, *Result[float64]) {
	t.Helper()
	g := testGraph(true, seed)
	rec := obs.NewRecorder(n, 0)
	cfg := Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD, Hetero: 0.8, Tracer: rec}
	res, err := RunSim(frags(t, g, n), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func export(t *testing.T, rec *obs.Recorder) (trace, csv []byte) {
	t.Helper()
	var tb, cb bytes.Buffer
	if err := rec.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), cb.Bytes()
}

// TestSimTraceDeterminism: the sim driver stamps events with virtual time,
// so two runs with the same config and seed must export byte-identical
// Chrome traces and CSVs.
func TestSimTraceDeterminism(t *testing.T) {
	recA, resA := tracedSim(t, 7, 4)
	recB, resB := tracedSim(t, 7, 4)
	if resA.Metrics.RespTime != resB.Metrics.RespTime {
		t.Fatalf("runs diverged: %v vs %v", resA.Metrics.RespTime, resB.Metrics.RespTime)
	}
	traceA, csvA := export(t, recA)
	traceB, csvB := export(t, recB)
	if !bytes.Equal(traceA, traceB) {
		t.Error("chrome traces differ between identical runs")
	}
	if !bytes.Equal(csvA, csvB) {
		t.Error("CSV exports differ between identical runs")
	}
	// And a different seed must NOT reproduce the same trace (the test
	// would otherwise pass with an empty recorder).
	recC, _ := tracedSim(t, 8, 4)
	traceC, _ := export(t, recC)
	if bytes.Equal(traceA, traceC) {
		t.Error("different seeds produced identical traces")
	}
}

// TestSimTraceContent checks the acceptance shape: a valid Chrome trace
// with at least one span track per worker, and a CSV carrying per-worker η
// and φ series.
func TestSimTraceContent(t *testing.T) {
	const n = 4
	rec, _ := tracedSim(t, 7, n)
	trace, csv := export(t, rec)

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spanTracks := map[int]bool{}
	begins := map[int]int{}
	ends := map[int]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			spanTracks[e.Tid] = true
			begins[e.Tid]++
		case "E":
			ends[e.Tid]++
		}
	}
	for w := 0; w < n; w++ {
		if !spanTracks[w] {
			t.Errorf("worker %d has no span track", w)
		}
		if begins[w] != ends[w] {
			t.Errorf("worker %d: %d begins vs %d ends", w, begins[w], ends[w])
		}
	}

	etaWorkers := map[string]bool{}
	phiWorkers := map[string]bool{}
	for _, line := range strings.Split(string(csv), "\n") {
		f := strings.Split(line, ",")
		if len(f) != 4 {
			continue
		}
		switch f[2] {
		case "eta":
			etaWorkers[f[1]] = true
		case "phi":
			phiWorkers[f[1]] = true
		}
	}
	if len(etaWorkers) != n {
		t.Errorf("eta series for %d workers, want %d", len(etaWorkers), n)
	}
	if len(phiWorkers) == 0 {
		t.Error("no phi series in CSV")
	}

	// The live progress view agrees with the run having done work.
	st := rec.Snapshot()
	if len(st.Workers) != n {
		t.Fatalf("snapshot has %d workers, want %d", len(st.Workers), n)
	}
	var upd int64
	for _, w := range st.Workers {
		upd += w.Updates
		if !w.Idle {
			t.Errorf("worker %d not idle after the run", w.Worker)
		}
	}
	if upd == 0 {
		t.Error("snapshot shows zero updates")
	}
}

// TestLiveTraceSane: the live driver emits wall-clock-stamped spans and
// counters that match its LiveMetrics totals.
func TestLiveTraceSane(t *testing.T) {
	g := testGraph(true, 3)
	rec := obs.NewRecorder(4, 0)
	res, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0},
		LiveConfig{Mode: ModeGAP, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.SeqSSSP(g, 0)
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("traced live run wrong: dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
	st := rec.Snapshot()
	var upd int64
	for _, w := range st.Workers {
		upd += w.Updates
	}
	if upd != lm.Updates {
		t.Errorf("traced updates %d != LiveMetrics.Updates %d", upd, lm.Updates)
	}
	trace, _ := export(t, rec)
	var doc map[string]any
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("live trace not valid JSON: %v", err)
	}
}

// TestLiveBSPTraceSane: superstep spans under the live BSP driver.
func TestLiveBSPTraceSane(t *testing.T) {
	g := testGraph(false, 5)
	rec := obs.NewRecorder(3, 0)
	_, lm, err := RunLiveBSPTraced(frags(t, g, 3), algorithms.NewWCC(), ace.Query{}, 0, rec)
	if err != nil {
		t.Fatal(err)
	}
	var upd int64
	for _, w := range rec.Snapshot().Workers {
		upd += w.Updates
	}
	if upd != lm.Updates {
		t.Errorf("traced updates %d != LiveMetrics.Updates %d", upd, lm.Updates)
	}
}

// TestMetricsAvgZeroWorkers: regression for AvgTw/AvgTc/AvgTa returning NaN
// on a zero-value Metrics (no workers).
func TestMetricsAvgZeroWorkers(t *testing.T) {
	var m Metrics
	if got := m.AvgTw(); got != 0 {
		t.Errorf("AvgTw() = %v, want 0", got)
	}
	if got := m.AvgTc(); got != 0 {
		t.Errorf("AvgTc() = %v, want 0", got)
	}
	if got := m.AvgTa(); got != 0 {
		t.Errorf("AvgTa() = %v, want 0", got)
	}
	m.TotalTw, m.TotalTc, m.TotalTa = 10, 20, 30
	m.Workers = make([]WorkerMetrics, 4)
	if got := m.AvgTw(); got != 2.5 {
		t.Errorf("AvgTw() = %v, want 2.5", got)
	}
	if got := m.AvgTc(); got != 5 {
		t.Errorf("AvgTc() = %v, want 5", got)
	}
	if got := m.AvgTa(); got != 7.5 {
		t.Errorf("AvgTa() = %v, want 7.5", got)
	}
}

// TestSimTraceDisabledUnchanged: attaching a tracer must not change the
// simulated execution itself (virtual times are tracer-independent).
func TestSimTraceDisabledUnchanged(t *testing.T) {
	g := testGraph(true, 11)
	cfg := Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD}
	plain, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = obs.NewRecorder(4, 0)
	traced, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics.RespTime != traced.Metrics.RespTime {
		t.Errorf("tracing changed the run: resp %v vs %v", plain.Metrics.RespTime, traced.Metrics.RespTime)
	}
	if plain.Metrics.Updates != traced.Metrics.Updates {
		t.Errorf("tracing changed update count: %d vs %d", plain.Metrics.Updates, traced.Metrics.Updates)
	}
}
