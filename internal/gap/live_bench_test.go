package gap

import (
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/graph"
	"argan/internal/partition"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return graph.PowerLaw(graph.GenConfig{N: 4000, M: 24_000, Directed: true, Seed: 21, MaxW: 20})
}

func benchFrags(b *testing.B, g *graph.Graph, n int) []*graph.Fragment {
	b.Helper()
	fs, err := partition.Partition(g, partition.Hash{}, n)
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkFragmentBuild measures partitioning a mid-size graph into four
// fragments — the fixed setup cost every live run pays.
func BenchmarkFragmentBuild(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Partition(g, partition.Hash{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalEval compares one worker's f_step sweep through the serial
// pop-loop against the sharded wave evaluator (inline and spawned), on an
// identical re-seeded active set each iteration.
func BenchmarkLocalEval(b *testing.B) {
	g := benchGraph(b)
	fs := benchFrags(b, g, 4)
	run := func(b *testing.B, shards int, spawn bool) {
		st := newLiveState(0, fs[0], algorithms.NewPageRank()(), ace.Query{Eps: 1e-4})
		ev := newWaveEval(st, shards)
		if spawn {
			ev.forceSpawn = true
		} else {
			ev.forceInline = true
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := uint32(0); int(l) < st.frag.NumOwned(); l++ {
				st.active.Push(l)
			}
			for !st.active.Empty() {
				ev.runWave(256)
			}
			for j := range st.out {
				if msgs := st.takeOut(j); msgs != nil {
					st.pool.put(msgs)
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, false) })
	b.Run("sharded4_inline", func(b *testing.B) { run(b, 4, false) })
	b.Run("sharded4_spawn", func(b *testing.B) { run(b, 4, true) })
}

// BenchmarkFlushIngest measures the flush → transport → h_in round trip
// between two workers, pooled pipeline vs the legacy pre-PR pipeline.
func BenchmarkFlushIngest(b *testing.B) {
	g := benchGraph(b)
	fs := benchFrags(b, g, 2)
	run := func(b *testing.B, tune liveTuning) {
		pool := &batchPool[float64]{}
		s0 := newLiveStateWith(0, fs[0], algorithms.NewPageRank()(), ace.Query{Eps: 1e-4}, pool, tune)
		s1 := newLiveStateWith(1, fs[1], algorithms.NewPageRank()(), ace.Query{Eps: 1e-4}, pool, tune)
		// Drain the InitialSync payloads so iterations start clean.
		for j := range s0.out {
			s0.takeOut(j)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := uint32(0); int(l) < s0.frag.NumOwned(); l++ {
				for _, r := range s0.frag.ReplicasOut(l) {
					s0.enqueue(int(r), l, s0.frag.Global(l), 0.5)
				}
			}
			msgs := s0.takeOut(1)
			if msgs == nil {
				b.Fatal("no cross-fragment traffic; enlarge the bench graph")
			}
			s1.ingest(msgs)
			if !tune.legacy {
				pool.put(msgs)
			}
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b, liveTuning{}) })
	b.Run("legacy", func(b *testing.B) { run(b, liveTuning{legacy: true}) })
}

// BenchmarkCombiner isolates outgoing coalescing: enqueueing the same
// border vertices repeatedly with the combiner on (dense slot index folds
// duplicates) and off (append-only batches).
func BenchmarkCombiner(b *testing.B) {
	g := benchGraph(b)
	fs := benchFrags(b, g, 2)
	run := func(b *testing.B, tune liveTuning) {
		st := newLiveStateWith(0, fs[0], algorithms.NewPageRank()(), ace.Query{Eps: 1e-4}, &batchPool[float64]{}, tune)
		for j := range st.out {
			st.takeOut(j)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for rep := 0; rep < 8; rep++ {
				for l := uint32(0); int(l) < st.frag.NumOwned(); l++ {
					for _, r := range st.frag.ReplicasOut(l) {
						st.enqueue(int(r), l, st.frag.Global(l), 0.25)
					}
				}
			}
			for j := range st.out {
				if msgs := st.takeOut(j); msgs != nil {
					st.pool.put(msgs)
				}
			}
		}
	}
	b.Run("combine", func(b *testing.B) { run(b, liveTuning{}) })
	b.Run("nocombine", func(b *testing.B) { run(b, liveTuning{noCombine: true}) })
}

// BenchmarkRunLivePageRank is the end-to-end contrast the perf experiment
// reports: the async live driver under the legacy serial configuration
// versus the pooled pipeline (serial and sharded).
func BenchmarkRunLivePageRank(b *testing.B) {
	g := benchGraph(b)
	fs := benchFrags(b, g, 4)
	run := func(b *testing.B, cfg LiveConfig) {
		cfg.Mode = ModeGAP
		cfg.CheckEvery = 64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := RunLive(fs, algorithms.NewPageRank(), ace.Query{Eps: 1e-4}, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("legacy_serial", func(b *testing.B) { run(b, LiveConfig{LegacyBatches: true, NoCombine: true, IntraParallelism: 1}) })
	b.Run("pooled_serial", func(b *testing.B) { run(b, LiveConfig{IntraParallelism: 1}) })
	b.Run("pooled_sharded4", func(b *testing.B) { run(b, LiveConfig{IntraParallelism: 4}) })
}
