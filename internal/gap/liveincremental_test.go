package gap

// Engine-level tests of incremental re-convergence: a cold fixpoint, a
// mutation batch, the planner-built warm state, and a warm RunLive over the
// COW-updated fragments must land on the same answer as a from-scratch
// sequential reference on the new graph — across chained versions.

import (
	"math"
	"math/rand"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/graph"
)

// churnBatch mutates roughly frac of the directed graph's edges: half the
// budget deletes existing arcs, half inserts fresh ones.
func churnBatch(g *graph.Graph, frac float64, seed int64) graph.MutationBatch {
	r := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		adj, ws := g.OutNeighbors(graph.VID(v)), g.OutWeights(graph.VID(v))
		for i, u := range adj {
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: u, W: ws[i]})
		}
	}
	k := int(float64(len(edges)) * frac / 2)
	if k < 1 {
		k = 1
	}
	var b graph.MutationBatch
	seen := map[[2]graph.VID]bool{}
	for _, i := range r.Perm(len(edges))[:k] {
		e := edges[i]
		if seen[[2]graph.VID{e.Src, e.Dst}] {
			continue
		}
		seen[[2]graph.VID{e.Src, e.Dst}] = true
		b.Deletes = append(b.Deletes, graph.Edge{Src: e.Src, Dst: e.Dst})
	}
	n := g.NumVertices()
	for len(b.Inserts) < k {
		u, v := graph.VID(r.Intn(n)), graph.VID(r.Intn(n))
		if u == v || g.HasEdge(u, v) || seen[[2]graph.VID{u, v}] {
			continue
		}
		seen[[2]graph.VID{u, v}] = true
		b.Inserts = append(b.Inserts, graph.Edge{Src: u, Dst: v, W: float64(1 + r.Intn(9))})
	}
	return b
}

// advance applies one churn batch and returns the new graph plus its
// COW-updated fragments.
func advance(t *testing.T, g *graph.Graph, fs []*graph.Fragment, b graph.MutationBatch) (*graph.Graph, []*graph.Fragment) {
	t.Helper()
	ng, _, err := g.ApplyMutations(b)
	if err != nil {
		t.Fatal(err)
	}
	nfs, _, err := graph.UpdateFragments(fs, ng, b.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	return ng, nfs
}

func liveCfg() LiveConfig {
	return LiveConfig{Mode: ModeGAP, CheckEvery: 64}
}

// TestIncrementalPageRankLive chains three 1%-churn batches, each
// re-converged from the previous fixpoint through WarmPageRank, and
// verifies every version against the sequential reference on that version.
func TestIncrementalPageRankLive(t *testing.T) {
	const eps = 1e-3
	g := graph.PowerLaw(graph.GenConfig{N: 2000, M: 12000, Directed: true, Seed: 17, Alpha: 2.5, MaxW: 10})
	fs := frags(t, g, 4)
	res, _, err := RunLive(fs, algorithms.NewPageRank(), ace.Query{Eps: eps}, liveCfg())
	if err != nil {
		t.Fatal(err)
	}

	for round := int64(0); round < 3; round++ {
		b := churnBatch(g, 0.01, 100+round)
		ng, nfs := advance(t, g, fs, b)
		warm := algorithms.WarmPageRank(g, ng, b.Endpoints(), res.Psi, res.Values, eps)
		wres, _, err := RunLive(nfs, algorithms.NewPageRank(), ace.Query{Eps: eps, Warm: warm}, liveCfg())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := algorithms.SeqPageRank(ng, eps)
		for v, w := range want {
			if math.Abs(wres.Values[v]-w) > 0.02*(w+1) {
				t.Fatalf("round %d: rank[%d] = %v, reference %v", round, v, wres.Values[v], w)
			}
		}
		g, fs, res = ng, nfs, wres
	}
}

// TestIncrementalSSSPLive does the same for SSSP, where the reference match
// is exact.
func TestIncrementalSSSPLive(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 2000, M: 12000, Directed: true, Seed: 23, Alpha: 2.5, MaxW: 10})
	fs := frags(t, g, 4)
	const src = 0
	res, _, err := RunLive(fs, algorithms.NewSSSP(), ace.Query{Source: src}, liveCfg())
	if err != nil {
		t.Fatal(err)
	}

	for round := int64(0); round < 3; round++ {
		b := churnBatch(g, 0.01, 200+round)
		ng, nfs := advance(t, g, fs, b)
		warm := algorithms.WarmSSSP(g, ng, b.Endpoints(), res.Values, src)
		wres, _, err := RunLive(nfs, algorithms.NewSSSP(), ace.Query{Source: src, Warm: warm}, liveCfg())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := algorithms.SeqSSSP(ng, src)
		for v, w := range want {
			if wres.Values[v] != w {
				t.Fatalf("round %d: dist[%d] = %v, reference %v", round, v, wres.Values[v], w)
			}
		}
		g, fs, res = ng, nfs, wres
	}
}

func TestIncrementalBFSLive(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 1500, M: 9000, Directed: true, Seed: 31, Alpha: 2.5})
	fs := frags(t, g, 4)
	const src = 0
	res, _, err := RunLive(fs, algorithms.NewBFS(), ace.Query{Source: src}, liveCfg())
	if err != nil {
		t.Fatal(err)
	}

	for round := int64(0); round < 3; round++ {
		b := churnBatch(g, 0.01, 300+round)
		ng, nfs := advance(t, g, fs, b)
		warm := algorithms.WarmBFS(g, ng, b.Endpoints(), res.Values, src)
		wres, _, err := RunLive(nfs, algorithms.NewBFS(), ace.Query{Source: src, Warm: warm}, liveCfg())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := algorithms.SeqBFS(ng, src)
		for v, w := range want {
			got := wres.Values[v]
			if w < 0 {
				if got != math.MaxInt32 {
					t.Fatalf("round %d: hops[%d] = %v, want unreachable", round, v, got)
				}
			} else if got != w {
				t.Fatalf("round %d: hops[%d] = %v, reference %v", round, v, got, w)
			}
		}
		g, fs, res = ng, nfs, wres
	}
}

func TestIncrementalWCCLive(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 1500, M: 4500, Directed: true, Seed: 37, Alpha: 2.5})
	fs := frags(t, g, 4)
	res, _, err := RunLive(fs, algorithms.NewWCC(), ace.Query{}, liveCfg())
	if err != nil {
		t.Fatal(err)
	}

	for round := int64(0); round < 3; round++ {
		b := churnBatch(g, 0.01, 400+round)
		ng, nfs := advance(t, g, fs, b)
		warm := algorithms.WarmWCC(g, ng, b.Endpoints(), res.Values)
		wres, _, err := RunLive(nfs, algorithms.NewWCC(), ace.Query{Warm: warm}, liveCfg())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := algorithms.SeqWCC(ng)
		for v, w := range want {
			if wres.Values[v] != uint32(w) {
				t.Fatalf("round %d: label[%d] = %v, reference %v", round, v, wres.Values[v], w)
			}
		}
		g, fs, res = ng, nfs, wres
	}
}

// TestIncrementalNoopBatch: a batch that changes nothing relevant to the
// program must warm-start into an already-converged state and terminate
// immediately with the same answer.
func TestIncrementalNoopBatch(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 800, M: 4800, Directed: true, Seed: 41, MaxW: 10})
	fs := frags(t, g, 3)
	const src = 0
	res, _, err := RunLive(fs, algorithms.NewSSSP(), ace.Query{Source: src}, liveCfg())
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := g.ApplyMutations(graph.MutationBatch{}) // empty batch: version bump only
	if err != nil {
		t.Fatal(err)
	}
	nfs, rebuilt, err := graph.UpdateFragments(fs, ng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 0 {
		t.Fatalf("empty batch rebuilt %v fragments", rebuilt)
	}
	warm := algorithms.WarmSSSP(g, ng, nil, res.Values, src)
	wres, m, err := RunLive(nfs, algorithms.NewSSSP(), ace.Query{Source: src, Warm: warm}, liveCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Updates > int64(g.NumVertices()) {
		t.Fatalf("no-op warm start performed %d updates", m.Updates)
	}
	for v := range res.Values {
		if wres.Values[v] != res.Values[v] {
			t.Fatalf("no-op warm start changed dist[%d]: %v -> %v", v, res.Values[v], wres.Values[v])
		}
	}
}

// TestMutationInverseBitIdenticalState is the inversion-soundness property
// at the program level (satellite: Inverter programs): a batch followed by
// its exact inverse restores a bit-identical graph, so the deterministic
// driver must produce bit-identical vertex state on it.
func TestMutationInverseBitIdenticalState(t *testing.T) {
	g := testGraph(true, 53)
	b := churnBatch(g, 0.05, 54)
	g1, inv, err := g.ApplyMutations(b)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := g1.ApplyMutations(inv)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("batch+inverse did not restore the fingerprint")
	}

	cfg := Config{Mode: ModeBSP, Adapt: adapt.PolicyFixed}
	q := ace.Query{Eps: 1e-3, Source: 0}
	// PageRank is the Inverter program; the min-fold programs ride along.
	a, err := RunSim(frags(t, g, 4), algorithms.NewPageRank(), q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunSim(frags(t, g2, 4), algorithms.NewPageRank(), q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Values {
		if a.Values[v] != c.Values[v] {
			t.Fatalf("rank[%d] differs on restored graph: %v vs %v", v, a.Values[v], c.Values[v])
		}
	}
	as, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RunSim(frags(t, g2, 4), algorithms.NewSSSP(), q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range as.Values {
		if as.Values[v] != cs.Values[v] {
			t.Fatalf("dist[%d] differs on restored graph: %v vs %v", v, as.Values[v], cs.Values[v])
		}
	}
}
