package gap

// Memory-bounded execution of the live driver (LiveConfig.Mem).
//
// A mem.Governor attached to a run turns the driver's unbounded in-RAM
// structures — the sender-side message log, local checkpoints, the batch
// free list, reorder buffers and the fragments' edge payloads — into
// governed accounts, and degrades gracefully instead of OOMing as the
// budget tightens:
//
//	rung 1 (StageCkpt)     page log entries and checkpoint pages to the
//	                       spill tier; force an early checkpoint on the
//	                       slowest receiver so peers can prune their logs
//	                       (also triggered, governor or not, by the
//	                       LogBytesSoftCap retention cap)
//	rung 2 (StageThrottle) backpressure senders through the pooled-batch
//	                       pipeline and trim the batch free list
//	rung 3 (StageStream)   stream fragment edge partitions from disk
//
// Spilled state is read back transparently: replay resolves log entries
// through msgLog.fetch whether they live in RAM or on disk, and a restore
// materializes a paged checkpoint before rolling the worker back, so
// crash recovery stays exactly-once across the RAM/disk boundary.
//
// Serialization rides the little-endian codec seam in internal/graph/io.go
// (WriteLE/ReadLE), which encoding/binary resolves to fixed-size struct
// layouts — value types without a fixed wire size disable spilling and fall
// back to estimate-only accounting.

import (
	"bytes"
	"encoding/binary"
	"time"

	"argan/internal/ace"
	"argan/internal/graph"
	"argan/internal/mem"
	"argan/internal/obs"
)

// msgWireEstimate is the accounted cost per message when the value type has
// no fixed wire size; deliberately generous so the governor errs toward
// shedding early.
const msgWireEstimate = 24

// logEntryOverhead approximates the fixed per-entry bookkeeping cost of one
// retained batch (header, slice, allocator slack).
const logEntryOverhead = 48

// msgWireSize returns the exact encoded size of one ace.Message[V], or -1
// when V has no fixed size (which disables the spill tier for the run).
func msgWireSize[V any]() int {
	return binary.Size(ace.Message[V]{})
}

// encodeMsgs serializes one batch for the spill tier.
func encodeMsgs[V any](msgs []ace.Message[V]) ([]byte, error) {
	var buf bytes.Buffer
	if err := graph.WriteLE(&buf, msgs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeMsgs reads count messages back from one spilled record.
func decodeMsgs[V any](sp *mem.Spiller, off int64, count, wire int) ([]ace.Message[V], error) {
	p := make([]byte, count*wire)
	if err := sp.ReadAt(p, off); err != nil {
		return nil, err
	}
	msgs := make([]ace.Message[V], count)
	if err := graph.ReadLE(bytes.NewReader(p), msgs); err != nil {
		return nil, err
	}
	return msgs, nil
}

// snapPage is one local checkpoint paged out to the spill tier: Ψ, the
// active set and the out-accumulators in a single record. The program's aux
// state and the small per-peer sequence vectors stay resident. Records are
// immutable and retained until the next checkpoint replaces them, so a
// snapshot can be restored any number of times.
type snapPage struct {
	sp      *mem.Spiller
	off     int64
	size    int64
	psiLen  int
	actLen  int
	outLens []int
}

// spillSnap pages the bulky parts of base out and nils them in place.
func spillSnap[V any](sp *mem.Spiller, base *liveSnap[V]) (*snapPage, error) {
	var buf bytes.Buffer
	if err := graph.WriteLE(&buf, base.psi); err != nil {
		return nil, err
	}
	if err := graph.WriteLE(&buf, base.active); err != nil {
		return nil, err
	}
	pg := &snapPage{sp: sp, psiLen: len(base.psi), actLen: len(base.active), outLens: make([]int, len(base.out))}
	for j, out := range base.out {
		pg.outLens[j] = len(out)
		if len(out) > 0 {
			if err := graph.WriteLE(&buf, out); err != nil {
				return nil, err
			}
		}
	}
	off, err := sp.Append(buf.Bytes())
	if err != nil {
		return nil, err
	}
	pg.off = off
	pg.size = int64(buf.Len())
	base.psi, base.active, base.out = nil, nil, nil
	return pg, nil
}

// unspillSnap materializes a paged checkpoint back into base. The page
// itself stays valid — restores do not consume it.
func unspillSnap[V any](pg *snapPage, base *liveSnap[V]) error {
	p := make([]byte, pg.size)
	if err := pg.sp.ReadAt(p, pg.off); err != nil {
		return err
	}
	r := bytes.NewReader(p)
	base.psi = make([]V, pg.psiLen)
	if err := graph.ReadLE(r, base.psi); err != nil {
		return err
	}
	base.active = make([]uint32, pg.actLen)
	if err := graph.ReadLE(r, base.active); err != nil {
		return err
	}
	base.out = make([][]ace.Message[V], len(pg.outLens))
	for j, k := range pg.outLens {
		if k == 0 {
			continue
		}
		base.out[j] = make([]ace.Message[V], k)
		if err := graph.ReadLE(r, base.out[j]); err != nil {
			return err
		}
	}
	return nil
}

// snapResidentBytes estimates the RAM held by the bulky parts of a resident
// snapshot (the parts spillSnap would page out).
func snapResidentBytes[V any](base *liveSnap[V], vSize, wire int64) int64 {
	b := int64(len(base.psi))*vSize + int64(len(base.active))*4
	for _, out := range base.out {
		b += int64(len(out)) * wire
	}
	return b
}

// memTick is the monitor's per-tick memory-governance step: refresh injected
// synthetic pressure, sample the memory gauges, and climb the degradation
// ladder.
func (d *liveDriver[V]) memTick(now time.Duration) {
	if d.gov != nil {
		if d.inj != nil {
			d.gov.SetExternal(d.inj.SqueezeBytes(float64(now) / 1e6))
		}
		if tr := d.cfg.Tracer; tr != nil {
			t := float64(now) / 1e3
			tr.Sample(d.n, obs.GaugeMemUsed, t, float64(d.gov.Used()))
			tr.Sample(d.n, obs.GaugeMemSpilled, t, float64(d.gov.SpilledBytes()))
			tr.Sample(d.n, obs.GaugeMemStage, t, float64(d.gov.Stage()))
			tr.Sample(d.n, obs.GaugeMemPeak, t, float64(d.gov.Peak()))
		}
	}
	stage := d.gov.Stage()
	if d.localRec && d.mlog != nil {
		// Rung 1: bound log retention in bytes. A slow-to-checkpoint
		// receiver keeps every peer's rows toward it unprunable; forcing it
		// to snapshot out of turn advances its published cursors so the
		// retained bytes fall back under the cap.
		force := stage >= mem.StageCkpt
		if d.logCap > 0 {
			over := false
			for j := 0; j < d.n; j++ {
				if d.mlog.retainedToward(j) > d.logCap {
					over = true
					break
				}
			}
			// Forcing alone cannot bound the overshoot: the slow receiver
			// may take many ticks to reach its checkpoint safe point while
			// its peers keep appending. Pressure also throttles senders
			// (same brake as rung 2) until retention falls back under cap.
			d.logPressure.Store(over)
			force = force || over
		}
		if force {
			d.forceCkptSlowest()
		}
	}
	if stage >= mem.StageThrottle {
		d.pool.trim()
	}
	if stage >= mem.StageStream && d.edgeSpillReq != nil {
		// Rung 3: ask every worker to stream its edge partitions from disk
		// at its next safe point.
		for i := range d.edgeSpillReq {
			d.edgeSpillReq[i].Store(true)
		}
	}
}

// forceCkptSlowest requests an out-of-turn checkpoint on the live receiver
// retaining the most log bytes across its incoming rows.
func (d *liveDriver[V]) forceCkptSlowest() {
	worst, worstBytes := -1, int64(0)
	for j := 0; j < d.n; j++ {
		if b := d.mlog.retainedToward(j); b > worstBytes {
			worst, worstBytes = j, b
		}
	}
	if worst < 0 {
		return
	}
	d.ctrl.mu.Lock()
	dead := d.ctrl.dead[worst]
	d.ctrl.mu.Unlock()
	if dead {
		return
	}
	if !d.ckptReq[worst].Swap(true) {
		d.forcedCkpts.Add(1)
		if tr := d.cfg.Tracer; tr != nil {
			tr.Count(d.n, obs.CounterForcedCkpts, float64(sinceFn(d.start))/1e3, 1)
		}
	}
}
