package gap

import (
	"fmt"
	"math"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/graph"
	"argan/internal/obs"
	"argan/internal/vtime"
)

// Result carries the answer of a run plus its metrics.
type Result[V any] struct {
	// Values holds the per-vertex outputs indexed by global vertex id.
	Values []V
	// Psi holds the raw converged status variables Ψ per global vertex —
	// distinct from Values for programs whose Output transforms Ψ (Δ-PR
	// leaves residual parked deltas there). Incremental warm starts need Ψ,
	// not the output view. Filled by the live drivers; nil under RunSim.
	Psi []V
	// Metrics is the accounting used by the experiments.
	Metrics Metrics
}

// RunSim executes the program over the fragments under the deterministic
// virtual-time driver and returns the global result.
func RunSim[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, cfg Config) (*Result[V], error) {
	return RunSimTruth(frags, factory, q, cfg, nil)
}

// RunSimTruth is RunSim with an optional ground-truth output vector (indexed
// by global id) enabling real-staleness sampling (Fig. 4b).
func RunSimTruth[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, cfg Config, truth []V) (*Result[V], error) {
	if len(frags) == 0 {
		return nil, fmt.Errorf("gap: no fragments")
	}
	cfg = cfg.withDefaults()
	s := &sim[V]{
		cfg:         cfg,
		mode:        cfg.Mode,
		sched:       &vtime.Scheduler{},
		idleV:       make([]bool, len(frags)),
		maxUpd:      int64(cfg.MaxUpdatesPerVertex) * int64(frags[0].GlobalVertices()),
		lastArrival: map[[2]int]float64{},
	}
	if s.mode == ModePowerSwitch {
		s.barrier = true
	}
	if s.mode == ModeBSP || s.mode == ModeBSPVC {
		s.barrier = true
	}
	if cfg.Faults.HasCrashes() && (s.barrier || s.mode == ModePowerSwitch) {
		return nil, fmt.Errorf("gap: crash injection requires an asynchronous mode, not %v", s.mode)
	}
	s.coord = &coordinator[V]{s: s, expected: len(frags)}

	for i, f := range frags {
		w := newSimWorker(s, i, f, factory(), q, truth)
		s.workers = append(s.workers, w)
	}
	if !cfg.Faults.Empty() {
		s.ft = newSimFT(s, cfg.Faults)
	}
	// Initial activation: workers with non-empty H start computing at t=0;
	// the rest begin idle (and, under a barrier, arrive immediately).
	for _, w := range s.workers {
		if w.active.Empty() && !w.hasPendingOut() {
			w.idle = true
			s.idleV[w.id] = true
			s.idleCount++
			if s.barrier {
				w.arrived = true
				s.coord.arrive(w, 0)
			}
		} else {
			if s.effMode() == ModeBSPVC {
				w.needFreeze = true
			}
			w.scheduleResumeAt(0)
		}
	}
	if s.ft != nil {
		s.ft.start()
	}
	s.sched.Run(func() bool { return s.aborted })
	if s.aborted && s.sched.Now() > s.end {
		s.end = s.sched.Now()
	}

	res := &Result[V]{Values: make([]V, frags[0].GlobalVertices())}
	m := &res.Metrics
	m.Mode = cfg.Mode
	m.Converged = !s.aborted && (s.ft == nil || s.ft.nCrashed == 0)
	m.Switched = s.switched
	m.Crashes, m.Recoveries, m.Checkpoints = s.crashes, s.recoveries, s.checkpoints
	m.RespTime = s.end
	m.Supersteps = s.coord.supersteps
	for _, w := range s.workers {
		w.finish()
		m.Workers = append(m.Workers, w.metrics)
		if w.tuner != nil {
			m.TwSamples = append(m.TwSamples, w.tuner.Samples()...)
			m.EtaHistory = append(m.EtaHistory, w.tuner.EtaHistory())
		}
		for l := uint32(0); int(l) < w.frag.NumOwned(); l++ {
			res.Values[w.frag.Global(l)] = w.prog.Output(w.ctx, l)
		}
	}
	m.finalize()
	return res, nil
}

// sim is the shared state of one virtual-time run.
type sim[V any] struct {
	cfg     Config
	mode    Mode // current mode (PowerSwitch may flip it)
	barrier bool // superstep discipline active
	sched   *vtime.Scheduler
	workers []*simWorker[V]
	coord   *coordinator[V]

	// Worker-status view (Σ): what rules R1/R2 read. Updated with
	// StatusDelay virtual latency.
	idleV     []bool
	idleCount int
	statusVer int

	totalUpd int64
	maxUpd   int64
	aborted  bool
	switched bool
	end      float64

	// Fault-tolerance layer (nil on fault-free runs) and its accounting.
	ft                               *simFT[V]
	crashes, recoveries, checkpoints int64

	// lastArrival enforces per-link FIFO delivery (messages on one link
	// never overtake each other), which replace-style aggregators such as
	// Color rely on.
	lastArrival map[[2]int]float64
}

// ship schedules the delivery of a batch over the link from→to, respecting
// per-link FIFO ordering, and returns the arrival time. With a fault layer
// active the batch is subject to injected link faults and registered for
// in-flight replay.
func (s *sim[V]) ship(from, to int, batch []ace.Message[V], bytes int, sentAt float64) float64 {
	if s.ft != nil {
		return s.ft.shipFaulty(from, to, batch, bytes, sentAt)
	}
	at := sentAt + s.cfg.Net.Latency(from, to, bytes)
	if prev, ok := s.lastArrival[[2]int{from, to}]; ok && at < prev {
		at = prev
	}
	s.lastArrival[[2]int{from, to}] = at
	target := s.workers[to]
	s.sched.At(at, prioDeliver, func() { target.deliver(batch, at) })
	return at
}

// setStatus publishes a worker's status change after the configured delay.
func (s *sim[V]) setStatus(id int, idle bool, at float64) {
	apply := func() {
		if s.idleV[id] == idle {
			return
		}
		s.idleV[id] = idle
		if idle {
			s.idleCount++
		} else {
			s.idleCount--
		}
		s.statusVer++
	}
	if s.cfg.StatusDelay <= 0 {
		apply()
		return
	}
	s.sched.At(at+s.cfg.StatusDelay, 0, apply)
}

// allOthersIdle implements the premise of rule R2 for worker i.
func (s *sim[V]) allOthersIdle(i int) bool {
	n := s.idleCount
	if s.idleV[i] {
		n--
	}
	return n == len(s.workers)-1
}

const (
	prioDeliver = 0
	prioResume  = 1
)

// outPeer is one B⁻_{i,j}: messages aggregated per target vertex.
type outPeer[V any] struct {
	msgs  []ace.Message[V]
	index map[graph.VID]int
	bytes int
}

func (o *outPeer[V]) reset() {
	o.msgs = o.msgs[:0]
	o.bytes = 0
	for k := range o.index {
		delete(o.index, k)
	}
}

type simWorker[V any] struct {
	s    *sim[V]
	id   int
	frag *graph.Fragment
	prog ace.Program[V]
	q    ace.Query
	deps ace.DepKind
	cat  ace.Category

	psi    []V
	ctx    *ace.Ctx[V]
	active *activeSet

	// B⁺: accumulated incoming messages.
	inBuf     []ace.Message[V]
	inFirst   float64 // arrival time of the oldest pending message; -1 if none
	inLast    float64 // arrival time of the newest pending message
	inBatches int

	// B⁻_j per peer.
	out     []outPeer[V]
	touched []int // peers that received messages during the current update
	touchfl []bool

	eta   float64
	tuner *adapt.Tuner[V]
	truth []V // global truth outputs, optional
	slow  float64

	now             float64
	idle            bool
	resumeScheduled bool
	arrived         bool    // barrier: arrived this superstep
	penalty         float64 // pending fault-tolerance cost (checkpoint/restore)

	// Superstep work list for the VC disciplines.
	roundList  []uint32
	roundPos   int
	inStep     bool // processing a frozen superstep list
	needFreeze bool // freeze the initial active set on first run

	// AAP delay sketch.
	aapDelay      float64
	aapStallUntil float64
	roundBase     float64 // stale2 at round start
	roundBusy0    float64

	// R1 rate limit: earliest time another R1-triggered flush may go to
	// each peer (one batch-latency apart), so straggler wake-ups don't
	// degenerate into per-update message spray.
	r1Next []float64

	lastStatusVer int

	// Tracing (nil when disabled). roundOpen tracks the LocalEval span so
	// resumes and aborts keep begin/end balanced; updEmitted is the update
	// count already reported, so counters ship as per-round deltas instead
	// of per-update events.
	tr         obs.Tracer
	roundOpen  bool
	updEmitted int64

	// Staleness bookkeeping.
	vcost  []float64 // Category II streak costs
	stale2 float64
	sumC   []float64 // Category III accumulators
	cumD   []float64
	sumCxD []float64

	metrics WorkerMetrics
}

func newSimWorker[V any](s *sim[V], id int, f *graph.Fragment, prog ace.Program[V], q ace.Query, truth []V) *simWorker[V] {
	w := &simWorker[V]{
		s: s, id: id, frag: f, prog: prog, q: q,
		deps: prog.Deps(), cat: prog.Category(),
		inFirst: -1,
		out:     make([]outPeer[V], f.NumWorkers()),
		touchfl: make([]bool, f.NumWorkers()),
		r1Next:  make([]float64, f.NumWorkers()),
		eta:     s.cfg.Eta0,
		slow:    1,
		truth:   truth,
		tr:      s.cfg.Tracer,
	}
	if s.cfg.SlowFactor != nil && id < len(s.cfg.SlowFactor) && s.cfg.SlowFactor[id] > 0 {
		w.slow = s.cfg.SlowFactor[id]
	}
	for j := range w.out {
		w.out[j].index = map[graph.VID]int{}
	}

	prog.Setup(f, q)
	w.psi = make([]V, f.NumLocal())
	var prio func(uint32) float64
	if p, ok := any(prog).(ace.Prioritizer[V]); ok {
		prio = func(l uint32) float64 { return p.Priority(w.psi[l]) }
	}
	w.active = newActiveSet(f.NumOwned(), prio)
	w.ctx = ace.NewCtx(f, w.psi, w.ctxSet, w.ctxSend, w.ctxActivate)
	for l := uint32(0); int(l) < f.NumLocal(); l++ {
		v, act := prog.InitValue(f, l, q)
		w.psi[l] = v
		if act && f.IsOwned(l) {
			w.active.Push(l)
		}
	}
	switch w.cat {
	case ace.CategoryII:
		w.vcost = make([]float64, f.NumOwned())
	case ace.CategoryIII:
		w.sumC = make([]float64, f.NumOwned())
		w.cumD = make([]float64, f.NumOwned())
		w.sumCxD = make([]float64, f.NumOwned())
	}
	// AAP keeps streak accounting as its staleness proxy regardless of
	// category.
	if s.cfg.Mode == ModeAAP && w.vcost == nil {
		w.vcost = make([]float64, f.NumOwned())
	}
	if s.cfg.Mode == ModeAAP {
		w.aapDelay = 2 * s.cfg.Net.Model.Alpha
	}

	if is, ok := any(prog).(ace.InitialSyncer); ok && is.InitialSync() {
		for l := uint32(0); int(l) < f.NumOwned(); l++ {
			g := f.Global(l)
			for _, r := range f.ReplicasOut(l) {
				w.enqueueOut(int(r), g, w.psi[l])
			}
			if f.Directed() && w.deps != ace.DepIn && w.deps != ace.DepSelf {
				for _, r := range f.ReplicasIn(l) {
					if !w.sentTo(f.ReplicasOut(l), r) {
						w.enqueueOut(int(r), g, w.psi[l])
					}
				}
			}
		}
		for j := range w.touchfl {
			w.touchfl[j] = false
		}
		w.touched = w.touched[:0]
	}

	if s.cfg.Mode == ModeGAP && s.cfg.Adapt != adapt.PolicyFixed {
		tcfg := adapt.DefaultConfig(w.cat, func(b int) float64 { return s.cfg.Net.Model.TB(b) })
		tcfg.Policy = s.cfg.Adapt
		tcfg.K = s.cfg.K
		if s.cfg.TunerClockCost > 0 {
			tcfg.ClockCost = s.cfg.TunerClockCost
		}
		if s.cfg.TunerRecordCost > 0 {
			tcfg.RecordCost = s.cfg.TunerRecordCost
		}
		if s.cfg.TunerCandidateCost > 0 {
			tcfg.CandidateCost = s.cfg.TunerCandidateCost
		}
		w.tuner = adapt.NewTuner[V](tcfg, prog.Equal, prog.Delta, f.NumWorkers()-1)
		if w.tr != nil {
			// Surface every tuner decision as gauge samples on the worker's
			// track: the chosen η, the sweep's φ estimate and candidate
			// count, and estimated vs real staleness when truth is known.
			w.tuner.SetObserver(func(ai adapt.AdjustInfo) {
				w.tr.Sample(w.id, obs.GaugeCandidates, w.now, float64(ai.Candidates))
				if ai.Records == 0 {
					return
				}
				w.tr.Sample(w.id, obs.GaugePhi, w.now, ai.PhiHigh)
				w.tr.Sample(w.id, obs.GaugeTwEst, w.now, ai.TwEst)
				if ai.HasReal {
					w.tr.Sample(w.id, obs.GaugeTwReal, w.now, ai.TwReal)
				}
			})
		}
	}
	if w.tr != nil && !math.IsInf(w.eta, 1) {
		w.tr.Sample(w.id, obs.GaugeEta, 0, w.eta)
	}
	return w
}

// --- ctx callbacks -------------------------------------------------------

// noteChange records that the observable value of an owned vertex changed:
// the cost streak accumulated under the previous value was stale work
// (Category II accounting; the streak is also the AAP delay sketch's
// staleness signal).
func (w *simWorker[V]) noteChange(local uint32) {
	if w.vcost != nil && w.frag.IsOwned(local) {
		w.stale2 += w.vcost[local]
		w.vcost[local] = 0
	}
}

func (w *simWorker[V]) ctxSet(local uint32, val V) {
	old := w.psi[local]
	w.psi[local] = val
	if w.prog.Equal(old, val) {
		return
	}
	if w.deps != ace.DepSelf {
		// For pull programs the status variable is the observable value.
		w.noteChange(local)
	}
	if w.deps == ace.DepSelf {
		// Push-style programs propagate explicitly via Send; Set only
		// stores the local state.
		return
	}
	g := w.frag.Global(local)
	switch w.deps {
	case ace.DepOut:
		for _, r := range w.frag.ReplicasIn(local) {
			w.enqueueOut(int(r), g, val)
		}
	case ace.DepBoth:
		for _, r := range w.frag.ReplicasOut(local) {
			w.enqueueOut(int(r), g, val)
		}
		for _, r := range w.frag.ReplicasIn(local) {
			if !w.sentTo(w.frag.ReplicasOut(local), r) {
				w.enqueueOut(int(r), g, val)
			}
		}
	default:
		for _, r := range w.frag.ReplicasOut(local) {
			w.enqueueOut(int(r), g, val)
		}
	}
	w.activateDependents(local)
}

// sentTo reports whether worker r appears in the sorted replica list.
func (w *simWorker[V]) sentTo(reps []uint16, r uint16) bool {
	for _, x := range reps {
		if x == r {
			return true
		}
		if x > r {
			return false
		}
	}
	return false
}

func (w *simWorker[V]) activateDependents(local uint32) {
	switch w.deps {
	case ace.DepOut:
		for _, u := range w.frag.InNeighbors(local) {
			if w.frag.IsOwned(u) {
				w.active.Push(u)
			}
		}
	case ace.DepBoth:
		for _, u := range w.frag.InNeighbors(local) {
			if w.frag.IsOwned(u) {
				w.active.Push(u)
			}
		}
		for _, u := range w.frag.OutNeighbors(local) {
			if w.frag.IsOwned(u) {
				w.active.Push(u)
			}
		}
	default:
		for _, u := range w.frag.OutNeighbors(local) {
			if w.frag.IsOwned(u) {
				w.active.Push(u)
			}
		}
	}
}

func (w *simWorker[V]) ctxSend(local uint32, d V) {
	if w.frag.IsOwned(local) {
		nv, ch := w.prog.Aggregate(w.psi[local], d)
		if ch {
			w.psi[local] = nv
			if w.cat == ace.CategoryII {
				w.noteChange(local)
			}
			w.active.Push(local)
		}
		return
	}
	g := w.frag.Global(local)
	w.enqueueOut(w.frag.OwnerOf(g), g, d)
}

func (w *simWorker[V]) ctxActivate(local uint32) {
	if w.frag.IsOwned(local) {
		w.active.Push(local)
	}
}

func (w *simWorker[V]) enqueueOut(peer int, g graph.VID, val V) {
	o := &w.out[peer]
	oldBytes := o.bytes
	if i, ok := o.index[g]; ok {
		agg, _ := w.prog.Aggregate(o.msgs[i].Val, val)
		o.bytes += w.prog.Size(agg) - w.prog.Size(o.msgs[i].Val)
		o.msgs[i].Val = agg
	} else {
		o.index[g] = len(o.msgs)
		o.msgs = append(o.msgs, ace.Message[V]{V: g, Val: val})
		o.bytes += 4 + w.prog.Size(val)
	}
	if d := o.bytes - oldBytes; d > 0 && w.tuner != nil {
		w.tuner.RecordBytes(peer, w.now, d)
	}
	if !w.touchfl[peer] {
		w.touchfl[peer] = true
		w.touched = append(w.touched, peer)
	}
}

// --- driver events -------------------------------------------------------

func (w *simWorker[V]) scheduleResumeAt(t float64) {
	if w.resumeScheduled {
		return
	}
	w.resumeScheduled = true
	e, inc := w.s.epochNow(), w.s.incOf(w.id)
	w.s.sched.At(t, prioResume, func() {
		if w.s.epochNow() != e || w.s.incOf(w.id) != inc {
			// A rollback or this worker's crash invalidated the resume; the
			// recovery path reset resumeScheduled itself.
			return
		}
		w.resumeScheduled = false
		w.run(w.s.sched.Now())
	})
}

// deliver is the arrival of a batch M_{j,i} into B⁺_i.
func (w *simWorker[V]) deliver(batch []ace.Message[V], at float64) {
	w.inBuf = append(w.inBuf, batch...)
	w.inBatches++
	if w.inFirst < 0 {
		w.inFirst = at
	}
	w.inLast = at
	if w.tr != nil {
		w.tr.Sample(w.id, obs.GaugeMailbox, at, float64(len(w.inBuf)))
	}
	if w.idle {
		w.idle = false
		w.s.setStatus(w.id, false, at)
		if w.tr != nil {
			w.tr.Mark(w.id, obs.MarkBusy, at)
		}
		if w.s.barrier {
			// Superstep modes wait for the coordinator's start signal.
			return
		}
		w.scheduleResumeAt(at)
	}
}

func (w *simWorker[V]) goIdle(t float64) {
	w.idle = true
	w.s.setStatus(w.id, true, t)
	if w.tr != nil {
		w.tr.Mark(w.id, obs.MarkIdle, t)
	}
	if t > w.s.end {
		w.s.end = t
	}
	if w.s.barrier && !w.arrived {
		w.arrived = true
		w.s.coord.arrive(w, t)
	}
}

// --- h_in / h_out --------------------------------------------------------

// hin ingests B⁺ (g_aggr into Ψ, dependents re-activated) charging the
// receiver-side handler cost. newRound marks the start of a LocalEval.
func (w *simWorker[V]) hin(newRound bool) {
	if w.tr != nil {
		w.tr.SpanBegin(w.id, obs.PhaseHin, w.now)
	}
	nmsgs := len(w.inBuf)
	c := w.s.cfg.Net.Model.RecvCost(w.inBatches, len(w.inBuf)) * w.slow
	w.now += c
	w.metrics.Tc += c
	for _, m := range w.inBuf {
		lv, ok := w.frag.Local(m.V)
		if !ok {
			continue
		}
		nv, ch := w.prog.Aggregate(w.psi[lv], m.Val)
		if !ch {
			continue
		}
		w.psi[lv] = nv
		if w.deps == ace.DepSelf {
			if w.frag.IsOwned(lv) {
				if w.cat == ace.CategoryII {
					w.noteChange(lv)
				}
				w.active.Push(lv)
			}
		} else {
			w.activateDependents(lv)
		}
	}
	w.inBuf = w.inBuf[:0]
	w.inBatches = 0
	w.inFirst = -1
	w.metrics.Rounds++
	if newRound {
		w.roundBase = w.stale2
		w.roundBusy0 = w.metrics.Busy
	}
	if w.tr != nil {
		w.tr.Count(w.id, obs.CounterMsgsRecv, w.now, int64(nmsgs))
		w.tr.Sample(w.id, obs.GaugeMailbox, w.now, 0)
		w.tr.SpanEnd(w.id, obs.PhaseHin, w.now)
	}
}

// flush sends B⁻_{i,j} as one batch M_{i,j} (h_out), charging the
// sender-side cost and scheduling the delivery.
func (w *simWorker[V]) flush(peer int) {
	o := &w.out[peer]
	if len(o.msgs) == 0 {
		return
	}
	if w.tr != nil {
		w.tr.SpanBegin(w.id, obs.PhaseHout, w.now)
	}
	c := w.s.cfg.Net.Model.SendCost(len(o.msgs)) * w.slow
	w.now += c
	w.metrics.Tc += c
	w.metrics.Flushes++
	w.metrics.MsgsSent += int64(len(o.msgs))
	w.metrics.BytesSent += int64(o.bytes)
	if w.tr != nil {
		w.tr.Count(w.id, obs.CounterMsgsSent, w.now, int64(len(o.msgs)))
		w.tr.Count(w.id, obs.CounterBytesSent, w.now, int64(o.bytes))
		w.tr.Count(w.id, obs.CounterFlushes, w.now, 1)
		w.tr.SpanEnd(w.id, obs.PhaseHout, w.now)
	}

	batch := make([]ace.Message[V], len(o.msgs))
	copy(batch, o.msgs)
	bytes := o.bytes
	o.reset()

	if w.s.barrier {
		w.s.coord.hold(w.id, peer, batch, bytes)
		return
	}
	w.s.ship(w.id, peer, batch, bytes, w.now)
}

func (w *simWorker[V]) hasPendingOut() bool {
	for j := range w.out {
		if len(w.out[j].msgs) > 0 {
			return true
		}
	}
	return false
}

func (w *simWorker[V]) flushAll() {
	for j := range w.out {
		if j != w.id {
			w.flush(j)
		}
	}
}

// --- the main loop (Algorithm 1 under the selected mode) -----------------

func (w *simWorker[V]) run(start float64) {
	if w.s.aborted || w.s.dead(w.id) {
		return
	}
	w.now = start
	if w.penalty > 0 {
		// Consume the pending checkpoint/restore cost before computing.
		w.now += w.penalty
		w.metrics.Tf += w.penalty
		w.penalty = 0
	}
	for {
		// Yield to any event scheduled before our cursor so causality holds.
		if t, ok := w.s.sched.PeekTime(); ok && t < w.now {
			w.scheduleResumeAt(w.now)
			return
		}
		if w.s.aborted {
			return
		}
		if w.tuner != nil && w.tuner.Due(w.now) {
			w.adjustEta()
		}
		if w.needFreeze {
			w.needFreeze = false
			w.freezeRound()
		}
		w.traceRoundBegin()

		mode := w.s.effMode()
		// Rule R3 / ξ-always-true: mid-round forward + ingest.
		if w.r3Due(mode) {
			if w.tr != nil {
				w.tr.Mark(w.id, obs.MarkR3, w.now)
			}
			w.flushAll()
			if len(w.inBuf) > 0 {
				w.hin(false)
			}
			continue
		}
		// Rule R2: last busy worker ingests pending messages immediately.
		if mode == ModeGAP && !w.s.cfg.DisableR2 && len(w.inBuf) > 0 && w.s.allOthersIdle(w.id) {
			if w.tr != nil {
				w.tr.Mark(w.id, obs.MarkR2, w.now)
			}
			w.hin(false)
			continue
		}
		// Rule R1: forward to idle peers (GAP only).
		if mode == ModeGAP && !w.s.cfg.DisableR1 {
			w.applyR1()
		}

		if w.nextWorkEmpty() {
			// f_term(D_i) holds: end of LocalEval.
			w.endRound(mode)
			if len(w.inBuf) > 0 {
				// A new round can start right away — except under AAP's
				// delay sketch: when recent rounds were stale, stall before
				// ingesting so in-flight corrections land first (bounded
				// staleness). No stall when every peer is already idle: no
				// further messages can arrive.
				if mode == ModeAAP && w.aapDelay > 0.5 && !w.s.allOthersIdle(w.id) {
					ready := math.Max(w.now, w.inLast) + w.aapDelay
					if w.aapStallUntil < w.now {
						// Start (or extend) one stall window per round gap.
						w.aapStallUntil = ready
					}
					if w.now < w.aapStallUntil {
						w.scheduleResumeAt(w.aapStallUntil)
						return
					}
				}
				if w.s.barrier {
					// Superstep modes only restart on the coordinator's
					// signal; buffered messages wait for it.
					w.goIdle(w.now)
					return
				}
				w.startRound(mode)
				continue
			}
			w.goIdle(w.now)
			return
		}

		v := w.nextWork()
		c := ace.UpdateCost(w.prog, w.frag, v) * w.slow * w.s.cfg.VCOverhead * w.jitter() * w.s.slowAt(w.id, w.now)
		w.runUpdate(v, c)
		if w.s.ft != nil && w.s.ft.checkDue(w) {
			return // the injected crash killed this worker mid-round
		}

		if mode == ModeAPVC || (mode == ModeGAP && w.eta == 0) {
			// ξ⁺ and ξ⁻ constantly true (AP-VC, and FG⁻'s η = 0): flush and
			// ingest between every pair of update functions.
			w.flushAll()
			if len(w.inBuf) > 0 {
				w.hin(false)
			}
		}
	}
}

// effMode resolves ModePowerSwitch to the discipline it is currently
// executing (synchronous vertex-centric before the switch, asynchronous
// vertex-centric after).
func (s *sim[V]) effMode() Mode {
	if s.mode != ModePowerSwitch {
		return s.mode
	}
	if s.barrier {
		return ModeBSPVC
	}
	return ModeAPVC
}

// jitter returns the current execution-noise factor for this worker: a
// deterministic pseudo-random slowdown in [1, 1+Hetero] per time window.
func (w *simWorker[V]) jitter() float64 {
	a := w.s.cfg.Hetero
	if a <= 0 {
		return 1
	}
	win := uint64(w.now / w.s.cfg.HeteroWindow)
	x := win*0x9E3779B97F4A7C15 + uint64(w.id)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return 1 + a*u
}

// r3Due evaluates rule R3 (or its fixed-granularity analogues).
func (w *simWorker[V]) r3Due(mode Mode) bool {
	if mode != ModeGAP || w.s.cfg.DisableR3 {
		return false
	}
	if w.inFirst < 0 || math.IsInf(w.eta, 1) {
		return false
	}
	return w.now-w.inFirst >= w.eta
}

func (w *simWorker[V]) applyR1() {
	r1Flush := func(j int) {
		// Wake an idle peer only with a batch worth shipping, at most one
		// per latency window, so straggler mitigation does not degenerate
		// into message spray.
		if len(w.out[j].msgs) < 4 || !w.s.idleV[j] || w.now < w.r1Next[j] {
			return
		}
		w.r1Next[j] = w.now + w.s.cfg.Net.Model.Alpha
		if w.tr != nil {
			w.tr.Mark(w.id, obs.MarkR1, w.now)
		}
		w.flush(j)
	}
	if w.s.statusVer != w.lastStatusVer {
		w.lastStatusVer = w.s.statusVer
		for j := range w.out {
			if j != w.id {
				r1Flush(j)
			}
		}
		return
	}
	// Only peers touched by the last update need rechecking.
	for _, j := range w.touched {
		w.touchfl[j] = false
		r1Flush(j)
	}
	w.touched = w.touched[:0]
}

// nextWorkEmpty reports whether the current LocalEval has no more work: the
// frozen superstep list for VC-synchronous modes, H otherwise.
func (w *simWorker[V]) nextWorkEmpty() bool {
	if w.inStep {
		return w.roundPos >= len(w.roundList)
	}
	return w.active.Empty()
}

func (w *simWorker[V]) nextWork() uint32 {
	if w.inStep {
		v := w.roundList[w.roundPos]
		w.roundPos++
		return v
	}
	return w.active.Pop()
}

// startRound begins a LocalEval: h_in, and for vertex-centric synchronous
// disciplines a frozen copy of H.
func (w *simWorker[V]) startRound(mode Mode) {
	w.traceRoundBegin()
	w.hin(true)
	if mode == ModeBSPVC {
		w.freezeRound()
	}
}

func (w *simWorker[V]) freezeRound() {
	w.roundList = w.roundList[:0]
	for !w.active.Empty() {
		w.roundList = append(w.roundList, w.active.Pop())
	}
	w.roundPos = 0
	w.inStep = true
}

// endRound finishes a LocalEval: h_out flushes every non-empty buffer.
func (w *simWorker[V]) endRound(mode Mode) {
	w.inStep = false
	w.flushAll()
	if mode == ModeAAP {
		w.adjustAAPDelay()
	}
	w.traceRoundEnd()
}

// traceRoundBegin opens the LocalEval span lazily: the first loop iteration
// after a round boundary (or a resume into a fresh round) begins it, so the
// span also covers rounds entered without startRound (initial activation).
func (w *simWorker[V]) traceRoundBegin() {
	if w.tr == nil || w.roundOpen {
		return
	}
	w.roundOpen = true
	w.tr.SpanBegin(w.id, obs.PhaseLocalEval, w.now)
	w.tr.Sample(w.id, obs.GaugeActive, w.now, float64(w.active.Len()))
}

// traceRoundEnd closes the LocalEval span and ships the round's update
// count as one counter delta (per-update events would flood the ring).
func (w *simWorker[V]) traceRoundEnd() {
	if w.tr == nil || !w.roundOpen {
		return
	}
	w.roundOpen = false
	if d := w.metrics.Updates - w.updEmitted; d > 0 {
		w.tr.Count(w.id, obs.CounterUpdates, w.now, d)
		w.updEmitted = w.metrics.Updates
	}
	w.tr.Sample(w.id, obs.GaugeActive, w.now, float64(w.active.Len()))
	w.tr.SpanEnd(w.id, obs.PhaseLocalEval, w.now)
}

func (w *simWorker[V]) adjustAAPDelay() {
	roundBusy := w.metrics.Busy - w.roundBusy0
	if roundBusy <= 0 {
		return
	}
	frac := (w.stale2 - w.roundBase) / roundBusy
	maxDelay := 50 * w.s.cfg.Net.Model.Alpha
	switch {
	case frac > 0.15:
		w.aapDelay = math.Min(w.aapDelay*2+1, maxDelay)
	case frac < 0.05:
		w.aapDelay *= 0.6
	}
}

func (w *simWorker[V]) runUpdate(v uint32, c float64) {
	// Start a tuner cycle lazily with the first update after the previous
	// cycle closed.
	if w.tuner != nil && !w.tuner.CycleOpen() {
		w.tuner.Begin(w.now, w.eta)
	}
	before := w.prog.Output(w.ctx, v)
	w.prog.Update(w.ctx, v)
	after := w.prog.Output(w.ctx, v)
	d := w.prog.Delta(before, after)
	changed := !w.prog.Equal(before, after)

	if w.vcost != nil {
		if changed {
			w.stale2 += w.vcost[v]
			w.vcost[v] = c
		} else {
			w.vcost[v] += c
		}
	}
	if w.sumC != nil {
		w.sumC[v] += c
		w.cumD[v] += d
		w.sumCxD[v] += c * w.cumD[v]
	}
	if w.tuner != nil {
		oh := w.tuner.Record(v, w.now, c, after, d)
		if oh > 0 {
			w.now += oh
			w.metrics.Ta += oh
		}
	}
	w.metrics.Busy += c
	w.metrics.Updates++
	w.now += c
	w.s.totalUpd++
	if w.s.totalUpd > w.s.maxUpd {
		w.s.aborted = true
	}
}

func (w *simWorker[V]) adjustEta() {
	if w.tr != nil {
		w.tr.SpanBegin(w.id, obs.PhaseAdjust, w.now)
	}
	cur := func(l uint32) V { return w.prog.Output(w.ctx, l) }
	var truthFn func(uint32) V
	if w.truth != nil {
		truthFn = func(l uint32) V { return w.truth[w.frag.Global(l)] }
	}
	newEta, oh := w.tuner.Adjust(cur, truthFn)
	w.eta = newEta
	w.now += oh
	w.metrics.Ta += oh
	if w.tr != nil {
		w.tr.SpanEnd(w.id, obs.PhaseAdjust, w.now)
		w.tr.Sample(w.id, obs.GaugeEta, w.now, w.eta)
	}
	w.tuner.Begin(w.now, w.eta)
}

// finish closes the books after the run.
func (w *simWorker[V]) finish() {
	w.traceRoundEnd() // close the span an aborted run left open
	w.metrics.FinalEta = w.eta
	switch w.cat {
	case ace.CategoryII:
		w.metrics.Tw = w.stale2
	case ace.CategoryIII:
		var tw float64
		for l := range w.sumC {
			if w.cumD[l] > 0 {
				tw += w.sumC[l] - w.sumCxD[l]/w.cumD[l]
			}
		}
		w.metrics.Tw = tw
	}
}

// coordinator is P₀ for the superstep disciplines: it holds flushed batches
// until every worker arrives, then releases them, counts supersteps, and
// implements the PowerSwitch heuristic.
type coordinator[V any] struct {
	s        *sim[V]
	expected int

	arrivals   int
	stepStart  float64
	sumArrive  float64
	held       []heldBatch[V]
	supersteps int64
	waitHits   int
	firstVol   int // message volume of the first superstep
}

type heldBatch[V any] struct {
	from, to int
	msgs     []ace.Message[V]
	bytes    int
}

func (c *coordinator[V]) hold(from, to int, msgs []ace.Message[V], bytes int) {
	c.held = append(c.held, heldBatch[V]{from, to, msgs, bytes})
}

func (c *coordinator[V]) arrive(w *simWorker[V], t float64) {
	c.arrivals++
	c.sumArrive += t
	if c.arrivals < c.expected {
		return
	}
	// Barrier reached at time t (the latest arrival). A global barrier on n
	// workers costs a logarithmic round of small control messages.
	t += c.s.cfg.Net.Model.Alpha * math.Log2(float64(c.expected)+1)
	c.supersteps++
	c.maybeSwitch(t)
	batches := c.held
	c.held = nil
	c.arrivals = 0
	c.sumArrive = 0

	// A worker participates in the next superstep when it receives messages
	// or still holds local active work (BSP-VC carries next-superstep
	// activations in H).
	localWork := false
	for _, w := range c.s.workers {
		if !w.active.Empty() {
			localWork = true
			break
		}
	}
	if len(batches) == 0 && !localWork {
		return // global fixpoint: nothing to release, the run drains
	}
	if !c.s.barrier {
		// Just switched to async: release batches as ordinary traffic and
		// restart workers with leftover local work.
		c.release(batches, t)
		for _, wkr := range c.s.workers {
			if !wkr.active.Empty() && wkr.idle {
				wkr.idle = false
				c.s.setStatus(wkr.id, false, t)
				wkr.scheduleResumeAt(t)
			}
		}
		return
	}
	// Release per target: deliveries, then one start signal per receiving
	// worker at its last arrival.
	lastAt := map[int]float64{}
	for _, b := range batches {
		at := c.s.ship(b.from, b.to, b.msgs, b.bytes, t)
		if at > lastAt[b.to] {
			lastAt[b.to] = at
		}
	}
	for to := range c.s.workers {
		wkr := c.s.workers[to]
		at, ok := lastAt[to]
		if !ok {
			if wkr.active.Empty() {
				// Nothing to do this superstep: arrive immediately.
				wkr.arrived = true
				c.arrivals++
				c.sumArrive += t
				continue
			}
			at = t
		}
		c.s.sched.At(at, prioResume, func() {
			if wkr.idle {
				wkr.idle = false
				c.s.setStatus(wkr.id, false, c.s.sched.Now())
			}
			wkr.arrived = false
			wkr.startRound(c.s.effMode())
			wkr.run(c.s.sched.Now())
		})
	}
	c.stepStart = t
}

func (c *coordinator[V]) release(batches []heldBatch[V], t float64) {
	for _, b := range batches {
		c.s.ship(b.from, b.to, b.msgs, b.bytes, t)
	}
}

// maybeSwitch implements the PowerSwitch sync→async trigger (Xie et al.,
// simplified): switch when workers spend a large fraction of the superstep
// waiting at the barrier (skewed load) AND the superstep has gone sparse
// (message volume well below the initial supersteps'). Dense supersteps —
// including the constant-volume oscillation of synchronous Color — keep the
// predicted synchronous throughput high, so PowerSwitch stays synchronous
// and inherits the non-convergence, as the paper reports in Fig. 5.
func (c *coordinator[V]) maybeSwitch(t float64) {
	if c.s.mode != ModePowerSwitch || !c.s.barrier {
		return
	}
	vol := 0
	for _, b := range c.held {
		vol += len(b.msgs)
	}
	if c.supersteps == 1 || vol > c.firstVol {
		c.firstVol = vol
	}
	if c.supersteps < 2 {
		return
	}
	stepLen := t - c.stepStart
	if stepLen <= 0 {
		return
	}
	avgArrive := c.sumArrive / float64(c.expected)
	waitFrac := (t - avgArrive) / stepLen
	sparse := vol < c.firstVol/3
	if waitFrac > c.s.cfg.SwitchThreshold && sparse {
		c.waitHits++
	} else {
		c.waitHits = 0
	}
	if c.waitHits >= 2 {
		c.s.barrier = false
		c.s.switched = true
	}
}
