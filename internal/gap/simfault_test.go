package gap

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/fault"
	"argan/internal/graph"
	"argan/internal/obs"
)

// faultPlan parses a spec, failing the test on error.
func faultPlan(t testing.TB, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// crashSpec builds a crash-and-restart plan whose trigger times are placed
// at fractions of the fault-free response time, so the crash lands while
// the run is genuinely busy.
func crashSpec(baseline float64, frac float64) string {
	at := baseline * frac
	return fmt.Sprintf("crash=1@%.0f+%.0f", at, baseline*0.05+20)
}

// TestSimCrashRecoveryMatchesFaultFree is the core sim acceptance check:
// SSSP, PageRank and WCC under an injected crash-and-restart plan converge
// to the same answers as a fault-free run.
func TestSimCrashRecoveryMatchesFaultFree(t *testing.T) {
	g := testGraph(true, 3)
	fs := func() []*graph.Fragment { return frags(t, g, 4) }
	base := Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD, FT: FTConfig{CheckpointEvery: 500}}

	t.Run("sssp", func(t *testing.T) {
		clean, err := RunSim(fs(), algorithms.NewSSSP(), ace.Query{Source: 0}, base)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Faults = faultPlan(t, crashSpec(clean.Metrics.RespTime, 0.3))
		res, err := RunSim(fs(), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Metrics.Converged {
			t.Fatal("faulty run did not converge")
		}
		if res.Metrics.Crashes != 1 || res.Metrics.Recoveries != 1 {
			t.Fatalf("crashes=%d recoveries=%d, want 1/1", res.Metrics.Crashes, res.Metrics.Recoveries)
		}
		if res.Metrics.RespTime <= clean.Metrics.RespTime {
			t.Fatalf("crash should cost time: faulty %.0f <= clean %.0f", res.Metrics.RespTime, clean.Metrics.RespTime)
		}
		for v := range clean.Values {
			if res.Values[v] != clean.Values[v] {
				t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], clean.Values[v])
			}
		}
	})

	t.Run("pagerank", func(t *testing.T) {
		q := ace.Query{Eps: 1e-3}
		clean, err := RunSim(fs(), algorithms.NewPageRank(), q, base)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Faults = faultPlan(t, crashSpec(clean.Metrics.RespTime, 0.4))
		res, err := RunSim(fs(), algorithms.NewPageRank(), q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Metrics.Converged || res.Metrics.Recoveries != 1 {
			t.Fatalf("converged=%v recoveries=%d", res.Metrics.Converged, res.Metrics.Recoveries)
		}
		// PageRank is delta-accumulative (non-idempotent), so a recovery
		// that lost or duplicated any delta would corrupt the ranks well
		// beyond the sub-eps wiggle that execution order legitimately
		// leaves parked (the tolerance the repo's cross-mode test uses).
		for v := range clean.Values {
			if math.Abs(res.Values[v]-clean.Values[v]) > 0.02*(clean.Values[v]+1) {
				t.Fatalf("rank[%d] = %v, want ~%v", v, res.Values[v], clean.Values[v])
			}
		}
	})

	t.Run("wcc", func(t *testing.T) {
		gu := testGraph(false, 5)
		clean, err := RunSim(frags(t, gu, 4), algorithms.NewWCC(), ace.Query{}, base)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Faults = faultPlan(t, crashSpec(clean.Metrics.RespTime, 0.5))
		res, err := RunSim(frags(t, gu, 4), algorithms.NewWCC(), ace.Query{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Metrics.Converged || res.Metrics.Recoveries != 1 {
			t.Fatalf("converged=%v recoveries=%d", res.Metrics.Converged, res.Metrics.Recoveries)
		}
		for v := range clean.Values {
			if res.Values[v] != clean.Values[v] {
				t.Fatalf("wcc[%d] = %v, want %v", v, res.Values[v], clean.Values[v])
			}
		}
	})
}

// TestSimUpdateCountCrash exercises the update-count trigger and multiple
// sequential crashes of different workers.
func TestSimUpdateCountCrash(t *testing.T) {
	g := testGraph(true, 7)
	want := algorithms.SeqSSSP(g, 0)
	cfg := Config{
		Mode: ModeGAP, Adapt: adapt.PolicyGAwD,
		Faults: faultPlan(t, "crash=0@u50+50; crash=2@u120+80"),
		FT:     FTConfig{CheckpointEvery: 400},
	}
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Converged {
		t.Fatal("did not converge")
	}
	if res.Metrics.Crashes == 0 || res.Metrics.Recoveries == 0 {
		t.Fatalf("crashes=%d recoveries=%d", res.Metrics.Crashes, res.Metrics.Recoveries)
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

// TestSimPermanentCrashDoesNotConverge: a worker that never restarts loses
// its fragment for good; the run must drain and report non-convergence
// instead of hanging.
func TestSimPermanentCrashDoesNotConverge(t *testing.T) {
	g := testGraph(true, 3)
	cfg := Config{
		Mode:   ModeGAP,
		Adapt:  adapt.PolicyGAwD,
		Faults: faultPlan(t, "crash=1@500"),
	}
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Converged {
		t.Fatal("run with a permanently dead worker reported convergence")
	}
	if res.Metrics.Crashes != 1 || res.Metrics.Recoveries != 0 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/0", res.Metrics.Crashes, res.Metrics.Recoveries)
	}
}

// TestSimLinkFaultsIdempotent: drop (with retransmit), dup and reorder over
// an idempotent min-aggregation must not change the answer.
func TestSimLinkFaultsIdempotent(t *testing.T) {
	g := testGraph(true, 9)
	want := algorithms.SeqSSSP(g, 0)
	cfg := Config{
		Mode:   ModeGAP,
		Adapt:  adapt.PolicyGAwD,
		Faults: faultPlan(t, "seed=11; drop=0.1; dup=0.05; reorder=0.05"),
	}
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Converged {
		t.Fatal("did not converge")
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

// TestSimSlowdownCostsTime: a transient slowdown shows up as response time.
func TestSimSlowdownCostsTime(t *testing.T) {
	g := testGraph(true, 4)
	cfg := Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD}
	clean, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faultPlan(t, fmt.Sprintf("slow=0@0:%.0f:8", clean.Metrics.RespTime))
	slow, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Metrics.RespTime <= clean.Metrics.RespTime {
		t.Fatalf("slowdown did not cost time: %.0f <= %.0f", slow.Metrics.RespTime, clean.Metrics.RespTime)
	}
	if !slow.Metrics.Converged {
		t.Fatal("did not converge")
	}
}

// TestSimFaultDeterminism: two runs of the same faulty config produce
// byte-identical metrics and traces for a fixed seed.
func TestSimFaultDeterminism(t *testing.T) {
	g := testGraph(true, 6)
	run := func() ([]byte, []byte, Metrics) {
		rec := obs.NewRecorder(4, 0)
		cfg := Config{
			Mode: ModeGAP, Adapt: adapt.PolicyGAwD,
			Faults: faultPlan(t, "seed=5; crash=1@2000+100; drop=0.05; slow=2@500:800:3"),
			FT:     FTConfig{CheckpointEvery: 700},
			Tracer: rec,
		}
		res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var trace, csv bytes.Buffer
		if err := rec.WriteChromeTrace(&trace); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), csv.Bytes(), res.Metrics
	}
	t1, c1, m1 := run()
	t2, c2, m2 := run()
	if !bytes.Equal(t1, t2) {
		t.Fatal("faulty-run Chrome traces differ between identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("faulty-run CSV exports differ between identical runs")
	}
	if m1.RespTime != m2.RespTime || m1.Updates != m2.Updates || m1.MsgsSent != m2.MsgsSent {
		t.Fatalf("metrics differ: %+v vs %+v", m1, m2)
	}
	if m1.Crashes != 1 || m1.Recoveries != 1 || m1.Checkpoints == 0 {
		t.Fatalf("fault accounting: crashes=%d recoveries=%d checkpoints=%d", m1.Crashes, m1.Recoveries, m1.Checkpoints)
	}
	if m1.TotalTf <= 0 {
		t.Fatal("fault overhead Tf not charged")
	}
}

// TestSimFaultTraceContent: crash/detect/recovery/restart/ckpt events
// appear in the Chrome-trace export.
func TestSimFaultTraceContent(t *testing.T) {
	g := testGraph(true, 6)
	rec := obs.NewRecorder(4, 0)
	cfg := Config{
		Mode: ModeGAP, Adapt: adapt.PolicyGAwD,
		Faults: faultPlan(t, "crash=1@2000+100"),
		FT:     FTConfig{CheckpointEvery: 700},
		Tracer: rec,
	}
	if _, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"crash","ph":"i"`,
		`"name":"detect","ph":"i"`,
		`"name":"restart","ph":"i"`,
		`"name":"ckpt","ph":"i"`,
		`"name":"recovery","ph":"B"`,
		`"name":"recovery","ph":"E"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
	_ = out
}

// TestSimCrashRejectsBarrierModes: crash plans are refused under barrier
// disciplines.
func TestSimCrashRejectsBarrierModes(t *testing.T) {
	g := testGraph(true, 1)
	for _, mode := range []Mode{ModeBSP, ModeBSPVC, ModePowerSwitch} {
		cfg := Config{Mode: mode, Faults: faultPlan(t, "crash=0@100")}
		if _, err := RunSim(frags(t, g, 2), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg); err == nil {
			t.Errorf("%v: crash plan accepted under a barrier mode", mode)
		}
	}
}

// TestSimTinyCheckpointIntervalTerminates is the regression test for a
// checkpoint-chain livelock: with CheckpointEvery smaller than the cost a
// snapshot bills each worker, every worker's clock was pushed past the
// next checkpoint before it could run a single update, and the run spun
// forever. The chain now self-clocks to at least twice the snapshot cost,
// so even a pathologically small interval must terminate with the
// fault-free answers.
func TestSimTinyCheckpointIntervalTerminates(t *testing.T) {
	g := testGraph(true, 11)
	base := Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD}
	clean, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Faults = faultPlan(t, "crash=1@300+50; drop=0.05")
	cfg.FT = FTConfig{CheckpointEvery: 1} // far below the snapshot cost
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Converged {
		t.Fatal("tiny-interval run did not converge")
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], clean.Values[v])
		}
	}
	if res.Metrics.Recoveries != 1 {
		t.Fatalf("recoveries=%d, want 1", res.Metrics.Recoveries)
	}
}
