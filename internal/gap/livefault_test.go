package gap

import (
	"bytes"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/obs"
)

// chaosSeed lets CI shake the deterministic fault streams: the chaos job
// runs these tests under several CHAOS_SEED values.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
	}
	return v
}

// liveFTConfig is the aggressive fault-tolerance tuning the tests use so
// crash → detect → rollback → replay completes in tens of milliseconds.
func liveFTConfig(mode Mode) LiveConfig {
	return LiveConfig{
		Mode:             mode,
		CheckEvery:       16,
		CheckpointEvery:  15 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		Watchdog:         10 * time.Second,
	}
}

// TestLiveCrashRecoveryMatchesFaultFree is the live half of the tentpole
// acceptance criterion: a run that loses a worker mid-computation and
// recovers it from the last consistent snapshot converges to the same
// answers as a fault-free run — with real goroutine deaths, heartbeat
// detection and a real restart.
func TestLiveCrashRecoveryMatchesFaultFree(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		g := testGraph(true, 3)
		want := algorithms.SeqSSSP(g, 0)
		cfg := liveFTConfig(ModeGAP)
		cfg.Faults = faultPlan(t, "crash=1@u40+10")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		for v, w := range want {
			if res.Values[v] != w {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
		if lm.Crashes != 1 || lm.Recoveries < 1 {
			t.Fatalf("crashes=%d recoveries=%d, want 1 and >=1", lm.Crashes, lm.Recoveries)
		}
	})
	t.Run("pagerank", func(t *testing.T) {
		g := testGraph(true, 4)
		want := algorithms.SeqPageRank(g, 1e-3)
		cfg := liveFTConfig(ModeGAP)
		// The slowdown stretches the run so checkpoints land mid-stream
		// and the rollback has accumulated (non-idempotent) rank to
		// restore, not just the initial state.
		cfg.Faults = faultPlan(t, "crash=2@u60+10; slow=1@0:200:30")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		for v, w := range want {
			// Parked sub-eps deltas depend on execution order, so ranks
			// legitimately differ within ~eps of each other (same bound
			// the cross-mode tests accept).
			if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
		if lm.Crashes != 1 || lm.Recoveries < 1 {
			t.Fatalf("crashes=%d recoveries=%d, want 1 and >=1", lm.Crashes, lm.Recoveries)
		}
	})
	t.Run("wcc", func(t *testing.T) {
		g := testGraph(false, 5)
		want := algorithms.SeqWCC(g)
		cfg := liveFTConfig(ModeGAP)
		cfg.Faults = faultPlan(t, "crash=0@u40+5; crash=3@u80+15")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewWCC(), ace.Query{}, cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		for v, w := range want {
			if res.Values[v] != w {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
		if lm.Crashes != 2 || lm.Recoveries < 1 {
			t.Fatalf("crashes=%d recoveries=%d, want 2 and >=1", lm.Crashes, lm.Recoveries)
		}
	})
}

// TestLiveChaosMix layers crashes, slowdowns and link faults (seeded from
// CHAOS_SEED so CI explores different deterministic streams) over an SSSP
// run; the answers must still be exact.
func TestLiveChaosMix(t *testing.T) {
	g := testGraph(true, 7)
	want := algorithms.SeqSSSP(g, 0)
	cfg := liveFTConfig(ModeGAP)
	cfg.Faults = faultPlan(t,
		"seed="+strconv.FormatInt(chaosSeed(t), 10)+
			"; crash=2@u50+10; slow=0@0:100:8; drop=0.08; dup=0.05; reorder=0.05")
	res, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	for v, w := range want {
		if res.Values[v] != w {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
		}
	}
	if lm.Crashes != 1 {
		t.Fatalf("crashes=%d, want 1", lm.Crashes)
	}
}

// TestLiveLinkFaultsIdempotent: drop/dup/reorder without crashes must not
// change SSSP's fixpoint (drop is a lossless late retransmit).
func TestLiveLinkFaultsIdempotent(t *testing.T) {
	g := testGraph(true, 9)
	want := algorithms.SeqSSSP(g, 0)
	cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16}
	cfg.Faults = faultPlan(t,
		"seed="+strconv.FormatInt(chaosSeed(t), 10)+"; drop=0.1; dup=0.08; reorder=0.08")
	res, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	for v, w := range want {
		if res.Values[v] != w {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
		}
	}
	if lm.Crashes != 0 || lm.Recoveries != 0 {
		t.Fatalf("unexpected crash accounting: %+v", lm)
	}
}

// TestLiveDeadWorkerWatchdog is the regression test for the liveCoord
// deadlock: a permanently dead worker used to hang termination detection
// forever (its unacknowledged messages keep sent != recv). The watchdog
// must now fail the run with a descriptive error within its deadline.
func TestLiveDeadWorkerWatchdog(t *testing.T) {
	g := testGraph(true, 3)
	cfg := LiveConfig{
		Mode:             ModeGAP,
		CheckEvery:       16,
		HeartbeatTimeout: 50 * time.Millisecond,
		Watchdog:         400 * time.Millisecond,
		NoRecover:        true,
	}
	cfg.Faults = faultPlan(t, "crash=1@u30") // permanent: no restart
	start := time.Now()
	_, _, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want watchdog error, got nil")
	}
	if !strings.Contains(err.Error(), "stuck for") || !strings.Contains(err.Error(), "dead") {
		t.Fatalf("watchdog error not descriptive: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v, far beyond its deadline", elapsed)
	}
}

// TestLiveFaultTraceContent: the live fault machinery must be visible in
// the exported Chrome trace — crash/detect/restart/checkpoint instants and
// a recovery span.
func TestLiveFaultTraceContent(t *testing.T) {
	g := testGraph(true, 4)
	rec := obs.NewRecorder(5, 1<<14)
	cfg := liveFTConfig(ModeGAP)
	cfg.Tracer = rec
	cfg.Faults = faultPlan(t, "crash=1@u40+10; slow=2@0:300:40")
	if _, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg); err != nil {
		t.Fatalf("RunLive: %v", err)
	} else if lm.Recoveries < 1 {
		t.Fatalf("recoveries=%d, want >=1", lm.Recoveries)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"crash","ph":"i"`,
		`"name":"detect","ph":"i"`,
		`"name":"restart","ph":"i"`,
		`"name":"ckpt","ph":"i"`,
		`"name":"recovery","ph":"B"`,
		`"name":"recovery","ph":"E"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestLiveCoordEdgeCases exercises the termination detector directly.
func TestLiveCoordEdgeCases(t *testing.T) {
	t.Run("zero_workers", func(t *testing.T) {
		c := newLiveCoord(0)
		select {
		case <-c.done:
		default:
			t.Fatal("zero-worker coordinator should be quiescent immediately")
		}
	})
	t.Run("idle_busy_idle_same_round", func(t *testing.T) {
		c := newLiveCoord(2)
		c.report(1, true, 0, 0)
		c.report(0, true, 1, 0) // idle, but one sent message unaccounted
		select {
		case <-c.done:
			t.Fatal("closed with a message in flight")
		default:
		}
		c.report(1, false, 0, 0) // woke up on the in-flight message
		c.report(1, true, 0, 1)  // consumed it and went idle again
		select {
		case <-c.done:
		default:
			t.Fatal("should be quiescent: all idle, sent==recv")
		}
	})
	t.Run("duplicated_batch_counts_balance", func(t *testing.T) {
		// A duplicated batch counts on both sides: 2 sent, 2 received.
		c := newLiveCoord(2)
		c.report(0, true, 2, 0)
		select {
		case <-c.done:
			t.Fatal("closed with duplicated batch unaccounted")
		default:
		}
		c.report(1, true, 0, 2)
		select {
		case <-c.done:
		default:
			t.Fatal("should close once duplicate deliveries are counted")
		}
	})
	t.Run("failure_wins", func(t *testing.T) {
		c := newLiveCoord(1)
		c.fail(errNoFragments)
		if c.failure() == nil {
			t.Fatal("failure not recorded")
		}
		c.report(0, true, 0, 0) // must not panic or un-fail
		if c.failure() == nil {
			t.Fatal("failure lost after report")
		}
	})
}

// TestLiveDropRetransmitAsync is the regression test for the inline
// retry sleep: a dropped batch used to stall the sender's compute loop
// for the full retry delay, delaying every unrelated send behind it.
// Retransmission is now asynchronous, so even with EVERY batch on one
// link dropped and a long retry delay, total wall time must stay far
// below the serial sum of the retry sleeps the old code would pay —
// while the redelivered batches still make the answers exact.
func TestLiveDropRetransmitAsync(t *testing.T) {
	g := testGraph(true, 6)
	want := algorithms.SeqSSSP(g, 0)
	const retryMS = 100
	cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16}
	cfg.Faults = faultPlan(t, "seed=5; drop=1>0:1; retry=100")
	start := time.Now()
	res, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	for v, w := range want {
		if res.Values[v] != w {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
		}
	}
	if lm.Retransmits < 2 {
		t.Fatalf("retransmits=%d, plan should drop every 1->0 batch", lm.Retransmits)
	}
	serial := time.Duration(lm.Retransmits) * retryMS * time.Millisecond
	t.Logf("retransmits=%d elapsed=%v (inline sleeps would serialize to >= %v)",
		lm.Retransmits, elapsed, serial)
	if lm.Retransmits >= 4 && elapsed >= serial/2 {
		t.Fatalf("run took %v with %d retransmits: retry sleeps appear to serialize on the compute loop (old inline behavior would need >= %v)",
			elapsed, lm.Retransmits, serial)
	}
}
