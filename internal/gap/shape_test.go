package gap

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/graph"
	"argan/internal/partition"
)

// shapeEnv is the calibrated benchmark environment (multi-tenant jitter).
func shapeCfg(mode Mode, policy adapt.Policy) Config {
	return Config{Mode: mode, Adapt: policy, Hetero: 1.2}
}

func shapeRun(t *testing.T, fs []*graph.Fragment, cfg Config, q ace.Query) Metrics {
	t.Helper()
	res, err := RunSim(fs, algorithms.NewSSSP(), q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Converged {
		t.Fatalf("%v did not converge", cfg.Mode)
	}
	return res.Metrics
}

// TestShapeSSSP asserts the headline relationships of the paper's
// evaluation on a reduced LJ-like graph: Argan (GAP+GAwD) responds faster
// than AAP, AP and BSP, its staleness share is far below theirs, and the
// fixed-granularity extremes FG+ and FG- lose to adaptive granularity.
func TestShapeSSSP(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 8000, M: 112000, Directed: true, Seed: 103, MaxW: 100, Alpha: 2.5})
	fs, err := partition.Partition(g, partition.Hash{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := ace.Query{Source: 0}

	gapM := shapeRun(t, fs, shapeCfg(ModeGAP, adapt.PolicyGAwD), q)
	aap := shapeRun(t, fs, shapeCfg(ModeAAP, adapt.PolicyFixed), q)
	ap := shapeRun(t, fs, shapeCfg(ModeAPGC, adapt.PolicyFixed), q)
	bsp := shapeRun(t, fs, shapeCfg(ModeBSP, adapt.PolicyFixed), q)

	if gapM.RespTime >= aap.RespTime || gapM.RespTime >= ap.RespTime || gapM.RespTime >= bsp.RespTime {
		t.Fatalf("GAP (%.0f) must beat AAP (%.0f), AP (%.0f) and BSP (%.0f)",
			gapM.RespTime, aap.RespTime, ap.RespTime, bsp.RespTime)
	}
	if aap.RespTime > ap.RespTime {
		t.Fatalf("AAP (%.0f) should not lose to AP (%.0f)", aap.RespTime, ap.RespTime)
	}
	// Staleness share: paper reports <20%% of busy for GAP, >59%% for AAP/AP.
	if frac := gapM.TotalTw / gapM.TotalBusy; frac > 0.35 {
		t.Fatalf("GAP staleness share too high: %.2f", frac)
	}
	if frac := ap.TotalTw / ap.TotalBusy; frac < 0.4 {
		t.Fatalf("AP staleness share too low to be meaningful: %.2f", frac)
	}

	fgPlus := shapeCfg(ModeGAP, adapt.PolicyFixed)
	fgPlus.Eta0 = math.Inf(1)
	plus := shapeRun(t, fs, fgPlus, q)
	fgMinus := shapeCfg(ModeGAP, adapt.PolicyFixed)
	fgMinus.Eta0 = 0
	minus := shapeRun(t, fs, fgMinus, q)
	if gapM.RespTime >= plus.RespTime || gapM.RespTime >= minus.RespTime {
		t.Fatalf("GAwD (%.0f) must beat FG+ (%.0f) and FG- (%.0f)",
			gapM.RespTime, plus.RespTime, minus.RespTime)
	}
}

// TestShapeGAvsGAwD asserts GAwD's adjustment overhead T_a is far below
// GA's (the paper reports 13x) while both find comparable granularities.
func TestShapeGAvsGAwD(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 8000, M: 112000, Directed: true, Seed: 103, MaxW: 100, Alpha: 2.5})
	fs, err := partition.Partition(g, partition.Hash{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := ace.Query{Source: 0}
	gawd := shapeRun(t, fs, shapeCfg(ModeGAP, adapt.PolicyGAwD), q)
	ga := shapeRun(t, fs, shapeCfg(ModeGAP, adapt.PolicyGA), q)
	if ga.TotalTa < 4*gawd.TotalTa {
		t.Fatalf("GA overhead (%.0f) should far exceed GAwD's (%.0f)", ga.TotalTa, gawd.TotalTa)
	}
	if gawd.RespTime > 1.5*ga.RespTime {
		t.Fatalf("GAwD (%.0f) should not be much slower than GA (%.0f)", gawd.RespTime, ga.RespTime)
	}
}

// TestShapeColorPR asserts adaptive granularity helps the Category II/III
// applications where fine granularity wins: Argan must beat the
// coarse-grained Grape-family models.
func TestShapeColorPR(t *testing.T) {
	g := graph.RMAT(graph.GenConfig{N: 4096, M: 33000, Directed: true, Seed: 104, MaxW: 100, Labels: 16})
	fs, err := partition.Partition(g, partition.Hash{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	runJob := func(f ace.Factory[int32], cfg Config) Metrics {
		res, err := RunSim(fs, f, ace.Query{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	cGap := runJob(algorithms.NewColor(), shapeCfg(ModeGAP, adapt.PolicyGAwD))
	cBsp := runJob(algorithms.NewColor(), shapeCfg(ModeBSP, adapt.PolicyFixed))
	cAap := runJob(algorithms.NewColor(), shapeCfg(ModeAAP, adapt.PolicyFixed))
	if cGap.RespTime >= cBsp.RespTime || cGap.RespTime >= cAap.RespTime {
		t.Fatalf("Color: GAP (%.0f) must beat BSP (%.0f) and AAP (%.0f)",
			cGap.RespTime, cBsp.RespTime, cAap.RespTime)
	}

	runPR := func(cfg Config) Metrics {
		res, err := RunSim(fs, algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	pGap := runPR(shapeCfg(ModeGAP, adapt.PolicyGAwD))
	pBsp := runPR(shapeCfg(ModeBSP, adapt.PolicyFixed))
	pAap := runPR(shapeCfg(ModeAAP, adapt.PolicyFixed))
	if pGap.RespTime >= pBsp.RespTime || pGap.RespTime >= pAap.RespTime {
		t.Fatalf("PR: GAP (%.0f) must beat BSP (%.0f) and AAP (%.0f)",
			pGap.RespTime, pBsp.RespTime, pAap.RespTime)
	}
}

// TestShapeSimNarrowGap asserts the Category I result: Sim has no staleness
// to remove, so GAP's advantage over the asynchronous baselines is narrow.
func TestShapeSimNarrowGap(t *testing.T) {
	g := graph.KnowledgeBase(graph.GenConfig{N: 4000, M: 20000, Seed: 102, Labels: 16})
	fs, err := partition.Partition(g, partition.Hash{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := ace.Query{Pattern: algorithms.RandomPattern(g, 4, 5, 42)}
	run := func(cfg Config) Metrics {
		res, err := RunSim(fs, algorithms.NewSim(), q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	gapM := run(shapeCfg(ModeGAP, adapt.PolicyGAwD))
	aap := run(shapeCfg(ModeAAP, adapt.PolicyFixed))
	if gapM.TotalTw != 0 {
		t.Fatalf("Sim is Category I: measured staleness must be 0, got %.0f", gapM.TotalTw)
	}
	// Comparable performance: within 2x either way (the paper reports <10%).
	ratio := gapM.RespTime / aap.RespTime
	if ratio > 2 || ratio < 0.5 {
		t.Fatalf("Sim: GAP (%.0f) and AAP (%.0f) should be comparable", gapM.RespTime, aap.RespTime)
	}
}

// TestStragglerInjection asserts rule R1/R2's reason to exist: with one
// deliberately slow worker, GAP degrades less than BSP.
func TestStragglerInjection(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 4000, M: 48000, Directed: true, Seed: 9, MaxW: 50})
	fs, err := partition.Partition(g, partition.Hash{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	slow := make([]float64, 8)
	for i := range slow {
		slow[i] = 1
	}
	slow[3] = 4
	q := ace.Query{Source: 0}
	run := func(mode Mode, policy adapt.Policy, injected bool) Metrics {
		cfg := Config{Mode: mode, Adapt: policy}
		if injected {
			cfg.SlowFactor = slow
		}
		res, err := RunSim(fs, algorithms.NewSSSP(), q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	gapSlow := run(ModeGAP, adapt.PolicyGAwD, true).RespTime
	bspSlow := run(ModeBSP, adapt.PolicyFixed, true).RespTime
	apSlow := run(ModeAPGC, adapt.PolicyFixed, true).RespTime
	// A 4x static straggler gates every model on the slow worker's own
	// chain of work, so the models converge toward each other; GAP must
	// stay competitive with both (its communication handling on the slow
	// worker is slowed too, which narrows its usual margin).
	best := math.Min(bspSlow, apSlow)
	if gapSlow > 1.3*best {
		t.Fatalf("with a straggler, GAP (%.0f) must stay within 1.3x of the best baseline (%.0f)", gapSlow, best)
	}
}
