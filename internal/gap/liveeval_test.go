package gap

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
)

// waveRun drives one worker's local fixpoint entirely through the sharded
// wave evaluator and returns the final state: Ψ, the accumulated outgoing
// batches per peer, and the number of updates executed. No messages are
// exchanged — the point is to observe the evaluator's raw effect on one
// fragment, byte for byte.
func waveRun[V any](t *testing.T, factory ace.Factory[V], q ace.Query, nWorkers, shards int, spawn bool) (psi []V, out [][]ace.Message[V], updates int) {
	t.Helper()
	g := testGraph(true, 11)
	fs := frags(t, g, nWorkers)
	st := newLiveState(0, fs[0], factory(), q)
	ev := newWaveEval(st, shards)
	if spawn {
		ev.forceSpawn = true
	} else {
		ev.forceInline = true
	}
	for !st.active.Empty() {
		updates += ev.runWave(64)
	}
	out = make([][]ace.Message[V], len(st.out))
	for j := range st.out {
		out[j] = append([]ace.Message[V](nil), st.out[j].msgs...)
	}
	return st.psi, out, updates
}

func assertWaveEqual[V comparable](t *testing.T, label string, psiA, psiB []V, outA, outB [][]ace.Message[V]) {
	t.Helper()
	for l := range psiA {
		if psiA[l] != psiB[l] {
			t.Fatalf("%s: psi[%d] differs: %v vs %v", label, l, psiA[l], psiB[l])
		}
	}
	for j := range outA {
		if len(outA[j]) != len(outB[j]) {
			t.Fatalf("%s: out[%d] length differs: %d vs %d", label, j, len(outA[j]), len(outB[j]))
		}
		for k := range outA[j] {
			if outA[j][k] != outB[j][k] {
				t.Fatalf("%s: out[%d][%d] differs: %+v vs %+v", label, j, k, outA[j][k], outB[j][k])
			}
		}
	}
}

// TestWaveEvalShardCountInvariant is the evaluator's core determinism
// property: because shard chunks are contiguous and the op logs merge in
// shard order, the result must be bit-identical for EVERY shard count —
// including 1 — and identical between inline and concurrent execution.
func TestWaveEvalShardCountInvariant(t *testing.T) {
	t.Run("pagerank", func(t *testing.T) {
		q := ace.Query{Eps: 1e-4}
		refPsi, refOut, refUpd := waveRun(t, algorithms.NewPageRank(), q, 4, 1, false)
		if refUpd == 0 {
			t.Fatal("reference run did no work")
		}
		for _, shards := range []int{2, 3, 4, 7} {
			psi, out, upd := waveRun(t, algorithms.NewPageRank(), q, 4, shards, false)
			if upd != refUpd {
				t.Fatalf("shards=%d inline: %d updates vs %d", shards, upd, refUpd)
			}
			assertWaveEqual(t, "pagerank inline", refPsi, psi, refOut, out)
			psi, out, upd = waveRun(t, algorithms.NewPageRank(), q, 4, shards, true)
			if upd != refUpd {
				t.Fatalf("shards=%d spawned: %d updates vs %d", shards, upd, refUpd)
			}
			assertWaveEqual(t, "pagerank spawned", refPsi, psi, refOut, out)
		}
	})
	t.Run("sssp", func(t *testing.T) {
		q := ace.Query{Source: 0}
		refPsi, refOut, _ := waveRun(t, algorithms.NewSSSP(), q, 4, 1, false)
		for _, shards := range []int{2, 4} {
			psi, out, _ := waveRun(t, algorithms.NewSSSP(), q, 4, shards, true)
			assertWaveEqual(t, "sssp", refPsi, psi, refOut, out)
		}
	})
}

// TestLiveIntraParallelExact: the async live driver with intra-worker
// parallelism must produce exactly the answers of the serial driver for
// min-fold programs (any schedule reaches the same fixpoint), and exact
// sequential answers for SSSP. This is also the race stress test: run
// with -race it exercises >= 4 workers x >= 4 shards on both programs.
func TestLiveIntraParallelExact(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		g := testGraph(true, 12)
		want := algorithms.SeqSSSP(g, 0)
		for _, par := range []int{1, 4} {
			cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16, IntraParallelism: par}
			res, _, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
			if err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			for v, w := range want {
				if res.Values[v] != w {
					t.Fatalf("par=%d vertex %d: got %v want %v", par, v, res.Values[v], w)
				}
			}
		}
	})
	t.Run("pagerank", func(t *testing.T) {
		g := testGraph(true, 13)
		want := algorithms.SeqPageRank(g, 1e-4)
		cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16, IntraParallelism: 4}
		res, _, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-4}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v, w := range want {
			if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
	})
}

// TestLiveBSPShardInvariance: the BSP exchange is deterministic, so a
// sharded BSP PageRank run must be bit-identical across shard counts —
// the full-run version of the per-wave invariance above.
func TestLiveBSPShardInvariance(t *testing.T) {
	g := testGraph(true, 14)
	run := func(par int) []float64 {
		res, _, err := RunLiveBSPOpts(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-4},
			BSPOptions{IntraParallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res.Values
	}
	ref := run(2)
	for _, par := range []int{3, 4} {
		got := run(par)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("par=%d vertex %d: %v != %v (must be bit-identical)", par, v, got[v], ref[v])
			}
		}
	}
	// The serial pop-loop follows a different (priority) schedule, so it
	// is only tolerance-equal — but it must agree on the fixpoint.
	serial := run(1)
	for v := range ref {
		if math.Abs(serial[v]-ref[v]) > 0.02*(ref[v]+1) {
			t.Fatalf("vertex %d: sharded %v vs serial %v beyond tolerance", v, ref[v], serial[v])
		}
	}
}

// TestLivePipelineVariantsAgree: the pooled/combining pipeline, the
// no-combine pipeline and the legacy pre-pooling pipeline are different
// code paths to the same semantics; SSSP answers must be exact under all
// of them, async and BSP.
func TestLivePipelineVariantsAgree(t *testing.T) {
	g := testGraph(true, 15)
	want := algorithms.SeqSSSP(g, 0)
	type variant struct {
		name             string
		legacy, noCombin bool
	}
	variants := []variant{{"pooled", false, false}, {"nocombine", false, true}, {"legacy", true, false}}
	for _, vt := range variants {
		cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16, LegacyBatches: vt.legacy, NoCombine: vt.noCombin}
		res, _, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
		if err != nil {
			t.Fatalf("async %s: %v", vt.name, err)
		}
		for v, w := range want {
			if res.Values[v] != w {
				t.Fatalf("async %s vertex %d: got %v want %v", vt.name, v, res.Values[v], w)
			}
		}
		resB, _, err := RunLiveBSPOpts(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0},
			BSPOptions{IntraParallelism: 1, LegacyBatches: vt.legacy, NoCombine: vt.noCombin})
		if err != nil {
			t.Fatalf("bsp %s: %v", vt.name, err)
		}
		for v, w := range want {
			if resB.Values[v] != w {
				t.Fatalf("bsp %s vertex %d: got %v want %v", vt.name, v, resB.Values[v], w)
			}
		}
	}
}

// TestResolveShards covers the IntraParallelism resolution rules: explicit
// values pass through for ShardSafe programs, non-shard-safe programs pin
// to 1, and 0 derives from GOMAXPROCS without ever going below 1.
func TestResolveShards(t *testing.T) {
	pr := algorithms.NewPageRank()()
	if s := resolveShards(4, 2, pr); s != 4 {
		t.Fatalf("explicit shard count: %d", s)
	}
	if s := resolveShards(0, 1000, pr); s != 1 {
		t.Fatalf("default must floor at 1: %d", s)
	}
	if s := resolveShards(1, 1, pr); s != 1 {
		t.Fatalf("explicit serial: %d", s)
	}
	// A program that does not declare ShardSafe must never shard.
	cd := algorithms.NewCore()()
	if _, ok := any(cd).(ace.ShardSafe); !ok {
		if s := resolveShards(8, 1, cd); s != 1 {
			t.Fatalf("non-shard-safe program sharded: %d", s)
		}
	}
}
