package gap

import (
	"runtime"
	"sync"

	"argan/internal/ace"
	"argan/internal/obs"
)

// Intra-worker parallel local evaluation.
//
// A waveEval shards one worker's f_step sweep across a small goroutine pool
// while keeping results bit-reproducible. Each wave freezes a slice of the
// active set as its work list, splits it into contiguous shard chunks, and
// runs Update concurrently per shard against the *pre-wave* Ψ: every Ctx
// effect (Set/Send/Activate) is buffered into the shard's private op log
// instead of being applied. After the pool joins, the logs are merged on
// the worker goroutine in a fixed order — first every Set in (shard, op)
// order, then every Send and Activate in (shard, op) order.
//
// Determinism rule: because chunks are contiguous and merged in shard
// order, the concatenated op sequence equals the one a single shard would
// produce over the same work list, so results are a pure function of the
// work list — independent of the shard count and of goroutine scheduling.
// Sets merge before Sends so that a delta sent during the wave to a vertex
// updated in the same wave lands on the published (consumed) value rather
// than being wiped by it — no in-flight mass is ever lost.

type evalOpKind uint8

const (
	opSet evalOpKind = iota
	opSend
	opActivate
)

type evalOp[V any] struct {
	local uint32
	kind  evalOpKind
	val   V
}

// waveInlineMin is the minimum per-shard work for which spawning the pool
// pays off; smaller waves run inline on the worker goroutine (the buffered
// op logs make both executions byte-identical).
const waveInlineMin = 8

// liveWaveCap bounds the async driver's wave size. In-wave sends are only
// merged after the wave, so larger waves evaluate more vertices against
// stale Ψ and repeat work; 64 keeps that inflation small while leaving
// enough per-shard work to amortize the merge.
const liveWaveCap = 64

type waveEval[V any] struct {
	st      *liveState[V]
	shards  int
	singleP bool // GOMAXPROCS == 1: spawning buys nothing, run shards inline
	bufs    [][]evalOp[V]
	ctxs    []*ace.Ctx[V]
	work    []uint32
	pans    []any // per-shard captured panics, re-raised on the worker goroutine

	// forceInline pins execution to the worker goroutine; the determinism
	// tests compare it against forced concurrent execution.
	forceInline bool
	// forceSpawn always uses the pool, regardless of wave size.
	forceSpawn bool

	// tr, when set, brackets the post-wave deterministic merge in a
	// PhaseMerge span on track id (stamped by ts). Tracing never affects
	// the merge order, only observes it.
	tr obs.Tracer
	ts func() float64
	id int
}

func newWaveEval[V any](st *liveState[V], shards int) *waveEval[V] {
	if shards < 1 {
		shards = 1
	}
	ev := &waveEval[V]{
		st:      st,
		shards:  shards,
		singleP: runtime.GOMAXPROCS(0) == 1,
		bufs:    make([][]evalOp[V], shards),
		ctxs:    make([]*ace.Ctx[V], shards),
		pans:    make([]any, shards),
	}
	for s := range ev.ctxs {
		s := s
		ev.ctxs[s] = ace.NewCtx(st.frag, st.psi,
			func(l uint32, v V) { ev.bufs[s] = append(ev.bufs[s], evalOp[V]{local: l, kind: opSet, val: v}) },
			func(l uint32, d V) { ev.bufs[s] = append(ev.bufs[s], evalOp[V]{local: l, kind: opSend, val: d}) },
			func(l uint32) { ev.bufs[s] = append(ev.bufs[s], evalOp[V]{local: l, kind: opActivate}) })
	}
	return ev
}

// runWave evaluates up to max active vertices and returns how many ran.
func (ev *waveEval[V]) runWave(max int) int {
	st := ev.st
	ev.work = ev.work[:0]
	for len(ev.work) < max && !st.active.Empty() {
		ev.work = append(ev.work, st.active.Pop())
	}
	n := len(ev.work)
	if n == 0 {
		return 0
	}
	s := ev.shards
	if s > n {
		s = n
	}
	runShard := func(k int) {
		lo, hi := k*n/s, (k+1)*n/s
		ctx := ev.ctxs[k]
		for _, v := range ev.work[lo:hi] {
			st.prog.Update(ctx, v)
		}
	}
	if ev.forceInline || (!ev.forceSpawn && (s == 1 || ev.singleP || n < s*waveInlineMin)) {
		for k := 0; k < s; k++ {
			runShard(k)
		}
	} else {
		// A panic on a spawned shard (a broken Update) must not kill the
		// process: capture it into the shard's slot and re-raise it on the
		// worker goroutine after the join, where the driver's containment
		// guard turns it into a run failure. Slots are distinct per shard and
		// the Wait orders the reads, so no extra synchronization is needed.
		var wg sync.WaitGroup
		wg.Add(s)
		for k := 0; k < s; k++ {
			go func(k int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						ev.pans[k] = r
					}
				}()
				runShard(k)
			}(k)
		}
		wg.Wait()
		for k := 0; k < s; k++ {
			if r := ev.pans[k]; r != nil {
				ev.pans[k] = nil
				panic(r)
			}
		}
	}
	// Deterministic merge: publish every Set first, then apply Sends and
	// Activates, each pass in (shard, op) order.
	if ev.tr != nil {
		ev.tr.SpanBegin(ev.id, obs.PhaseMerge, ev.ts())
		defer func() { ev.tr.SpanEnd(ev.id, obs.PhaseMerge, ev.ts()) }()
	}
	for k := 0; k < s; k++ {
		buf := ev.bufs[k]
		for i := range buf {
			if buf[i].kind == opSet {
				st.ctxSet(buf[i].local, buf[i].val)
			}
		}
	}
	for k := 0; k < s; k++ {
		buf := ev.bufs[k]
		for i := range buf {
			switch buf[i].kind {
			case opSend:
				st.ctxSend(buf[i].local, buf[i].val)
			case opActivate:
				st.ctxActivate(buf[i].local)
			}
		}
		ev.bufs[k] = buf[:0]
	}
	return n
}
