// Package gap implements the paper's GAP (adaptive-Grained Asynchronous
// Parallel) runtime: workers executing ACE programs with accumulative
// in-message buffers B⁺, per-peer out-buffers B⁻_j, message-passing
// indicators ξ driven by rules R1–R3, per-worker granularity bounds η_i
// tuned by the adapt package, and a coordinator P₀ for status sharing,
// barriers and termination. Two drivers execute the same model: a
// deterministic virtual-time simulator (RunSim) used by the experiments,
// and a goroutine-based live driver (RunLive) exercising the code under
// real concurrency.
package gap

import (
	"math"

	"argan/internal/adapt"
	"argan/internal/fault"
	"argan/internal/netsim"
	"argan/internal/obs"
)

// Mode selects the parallel model. BSP, AP and AAP are the special cases of
// GAP described in §II-B; they are provided as first-class modes so the
// paper's baselines (Grape, Grape⁺, Grape*, GraphLab, Maiter, PowerSwitch)
// can be expressed as engine configurations.
type Mode int

const (
	// ModeGAP: rules R1–R3 with adaptive η (Argan).
	ModeGAP Mode = iota
	// ModeBSP: graph-centric bulk-synchronous (Grape): local fixpoint per
	// superstep, global barrier, messages exchanged between supersteps.
	ModeBSP
	// ModeBSPVC: vertex-centric bulk-synchronous (Pregel / GraphLab_sync):
	// each active vertex updates once per superstep.
	ModeBSPVC
	// ModeAPGC: graph-centric asynchronous (Grape*): ingest at round start,
	// forward at round end, no barriers, ξ fixed false.
	ModeAPGC
	// ModeAPVC: vertex-centric asynchronous (GraphLab_async / Maiter): ξ
	// fixed true, one update per LocalEval.
	ModeAPVC
	// ModeAAP: adaptive asynchronous (Grape⁺): graph-centric rounds whose
	// start is postponed by an adaptive delay sketch to absorb in-flight
	// messages and cut staleness.
	ModeAAP
	// ModePowerSwitch: starts bulk-synchronous vertex-centric and switches
	// to asynchronous execution when the barrier-wait fraction exceeds a
	// threshold (Xie et al.'s sync-or-async heuristic, simplified).
	ModePowerSwitch
)

func (m Mode) String() string {
	switch m {
	case ModeGAP:
		return "GAP"
	case ModeBSP:
		return "BSP"
	case ModeBSPVC:
		return "BSP-VC"
	case ModeAPGC:
		return "AP-GC"
	case ModeAPVC:
		return "AP-VC"
	case ModeAAP:
		return "AAP"
	case ModePowerSwitch:
		return "PowerSwitch"
	}
	return "?"
}

// Config parameterizes one engine run.
type Config struct {
	// Mode is the parallel model.
	Mode Mode
	// Adapt selects the granularity-adjustment policy (ModeGAP only).
	Adapt adapt.Policy
	// K is the GAwD discretization parameter (paper default 4).
	K int
	// Eta0 is the initial granularity bound η_i in cost units. +Inf gives
	// FG⁺ (fully coarse), 0 gives FG⁻ (fully fine). Default 64.
	Eta0 float64
	// Net is the simulated interconnect; nil uses the default cost model.
	Net *netsim.Network
	// StatusDelay is the virtual latency before a worker-status change
	// becomes visible to peers (Σ synchronization). Default: the network's
	// per-batch latency α.
	StatusDelay float64
	// SlowFactor optionally slows individual workers' computation
	// (straggler injection); nil means 1.0 everywhere.
	SlowFactor []float64
	// Hetero adds time-varying execution noise: during each window of
	// HeteroWindow cost units, worker i's computation is slowed by a
	// deterministic pseudo-random factor in [1, 1+Hetero]. This models the
	// OS/network jitter of a real multi-tenant cluster, which synchronous
	// models amplify (every superstep waits for the currently slowest
	// worker) and asynchronous models absorb. 0 disables.
	Hetero       float64
	HeteroWindow float64
	// MaxUpdatesPerVertex caps total updates at cap·|V| to detect
	// non-convergent executions (Color under synchronous models). Default
	// 400.
	MaxUpdatesPerVertex int
	// SwitchThreshold is the barrier-wait fraction above which
	// ModePowerSwitch flips to asynchronous execution. Default 0.35.
	SwitchThreshold float64
	// VCOverhead multiplies update costs under the vertex-centric
	// disciplines (BSP-VC, AP-VC, PowerSwitch), modeling the per-vertex
	// program-invocation overhead those systems pay compared to a
	// graph-centric batch loop. Default 1.5.
	VCOverhead float64
	// CollectTruth, when set, provides the true fixpoint values (indexed by
	// global vertex id) so the tuner can record real-staleness samples T_w*
	// next to its estimates (Fig. 4b).
	CollectTruth bool
	// DisableR1/R2/R3 switch off individual indicator rules (ModeGAP only);
	// used by the rule-ablation study.
	DisableR1, DisableR2, DisableR3 bool
	// TunerOverrides tweaks the adaptation overhead model; zero fields keep
	// defaults.
	TunerClockCost, TunerRecordCost, TunerCandidateCost float64
	// Tracer receives the run's event stream (LocalEval/h_in/h_out/Adjust
	// spans, update/message counters, η/φ/active-set/mailbox gauges and
	// indicator-flip marks) stamped with virtual time. nil disables tracing;
	// the hot-path cost of a disabled tracer is a single nil check per
	// event site. Attach an obs.Recorder to export Chrome traces and CSV
	// time series.
	Tracer obs.Tracer
	// Faults is the injected fault plan (nil = fault-free). Under the sim
	// driver all times in the plan are virtual cost units and every fault
	// is charged a deterministic cost, so faulty runs remain
	// byte-reproducible for a fixed seed. Crash injection requires an
	// asynchronous mode (GAP, AP-GC, AP-VC, AAP): the barrier disciplines
	// have no meaningful single-worker failure semantics.
	Faults *fault.Plan
	// FT tunes checkpointing and recovery; only consulted when Faults
	// schedules a crash with a restart.
	FT FTConfig
}

// FTConfig parameterizes the sim driver's checkpoint/recovery layer.
type FTConfig struct {
	// CheckpointEvery is the virtual-time interval between consistent
	// cluster snapshots. Default 4096 cost units.
	CheckpointEvery float64
	// DetectDelay is the virtual delay between a crash and the coordinator
	// detecting the failure. Default 4α of the network model.
	DetectDelay float64
}

func (c Config) withDefaults() Config {
	if c.Eta0 == 0 && c.Mode == ModeGAP && c.Adapt != adapt.PolicyFixed {
		c.Eta0 = 1024
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.Net == nil {
		c.Net = netsim.NewNetwork(netsim.DefaultCostModel(), 1)
	}
	if c.StatusDelay == 0 {
		c.StatusDelay = c.Net.Model.Alpha
	}
	if c.MaxUpdatesPerVertex <= 0 {
		c.MaxUpdatesPerVertex = 400
	}
	if c.SwitchThreshold == 0 {
		c.SwitchThreshold = 0.35
	}
	if c.VCOverhead == 0 {
		c.VCOverhead = 1.5
	}
	if c.HeteroWindow <= 0 {
		// Longer than a typical superstep: a slow worker stays slow across
		// whole supersteps, which is what makes real-world stragglers hurt
		// synchronous models (every barrier waits for the current max).
		c.HeteroWindow = 16384
	}
	switch c.Mode {
	case ModeBSPVC, ModeAPVC, ModePowerSwitch:
	default:
		c.VCOverhead = 1
	}
	if c.FT.CheckpointEvery <= 0 {
		c.FT.CheckpointEvery = 4096
	}
	if c.FT.DetectDelay <= 0 {
		c.FT.DetectDelay = 4 * c.Net.Model.Alpha
	}
	return c
}

// WorkerMetrics aggregates one worker's accounting.
type WorkerMetrics struct {
	Busy      float64 // virtual time spent in update functions
	Tw        float64 // measured stale computation (category-aware)
	Tc        float64 // h_in/h_out handler cost
	Ta        float64 // granularity-adjustment overhead
	Rounds    int64   // LocalEval invocations
	Updates   int64   // f_xv invocations
	Flushes   int64   // batches sent
	MsgsSent  int64
	BytesSent int64
	FinalEta  float64
	Tf        float64 // fault-handling overhead (checkpoint + restore cost)
}

// Metrics summarizes a run.
type Metrics struct {
	// RespTime is the virtual response time of the query (the paper's
	// y-axis everywhere).
	RespTime float64
	// Converged is false when the update cap was hit (e.g. oscillating
	// synchronous Color) — reported as "NA" in Fig. 5.
	Converged bool
	// Mode echoes the executed mode (PowerSwitch may report its final mode
	// via Switched).
	Mode     Mode
	Switched bool // PowerSwitch switched to async

	Workers []WorkerMetrics

	// Aggregates over workers.
	TotalBusy, TotalTw, TotalTc, TotalTa float64
	TotalTf                              float64
	Rounds, Updates, MsgsSent, BytesSent int64
	Supersteps                           int64

	// Fault-tolerance accounting (all zero on fault-free runs).
	Crashes, Recoveries, Checkpoints int64

	// Phi is the overall computation effectiveness (Σbusy − ΣTw)/(Σbusy + ΣTc).
	Phi float64

	// TwSamples are the (estimated, real) staleness pairs from the tuner
	// when Config.CollectTruth was set.
	TwSamples []adapt.TwSample
	// EtaHistory concatenates the per-worker granularity trajectories.
	EtaHistory [][]float64
}

func (m *Metrics) finalize() {
	for _, w := range m.Workers {
		m.TotalBusy += w.Busy
		m.TotalTw += w.Tw
		m.TotalTc += w.Tc
		m.TotalTa += w.Ta
		m.TotalTf += w.Tf
		m.Rounds += w.Rounds
		m.Updates += w.Updates
		m.MsgsSent += w.MsgsSent
		m.BytesSent += w.BytesSent
	}
	if den := m.TotalBusy + m.TotalTc; den > 0 {
		m.Phi = (m.TotalBusy - m.TotalTw) / den
	}
	if math.IsNaN(m.Phi) {
		m.Phi = 0
	}
}

// AvgTw returns the mean per-worker staleness cost (0 with no workers).
func (m *Metrics) AvgTw() float64 { return avgOver(m.TotalTw, len(m.Workers)) }

// AvgTc returns the mean per-worker communication handler cost (0 with no
// workers).
func (m *Metrics) AvgTc() float64 { return avgOver(m.TotalTc, len(m.Workers)) }

// AvgTa returns the mean per-worker adjustment overhead (0 with no
// workers).
func (m *Metrics) AvgTa() float64 { return avgOver(m.TotalTa, len(m.Workers)) }

// avgOver divides a worker aggregate by the worker count, guarding the
// zero-worker case (a zero-value Metrics) that would otherwise yield NaN.
func avgOver(total float64, workers int) float64 {
	if workers == 0 {
		return 0
	}
	return total / float64(workers)
}
