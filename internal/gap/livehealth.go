package gap

import (
	"sync"
	"time"
)

// Health is a point-in-time view of the live driver's control plane: worker
// liveness from the heartbeat detector, progress from the watchdog's
// counters, and the memory governor's degradation stage. It is what the
// telemetry plane's /healthz and /readyz endpoints are wired to.
type Health struct {
	// Running reports whether a live run is currently executing under the
	// tracker. Between soak iterations (and after the last one) it is
	// false; the tracker then reports the last run's outcome.
	Running bool
	// Completed and Failed count runs finished under this tracker.
	Completed int64
	Failed    int64
	// Err is the most recent run failure ("" when every run succeeded).
	Err string
	// Draining reports that the process hosting the tracker is shutting
	// down gracefully: no new runs will be admitted, in-flight ones are
	// finishing. Set by SetDraining; never reset by runStarted, so a
	// readiness probe stays red for the rest of the process's life.
	Draining bool

	// Workers is the cluster size; Idle of them are at f_term with empty
	// mailboxes; Dead have stale heartbeats and are not yet restored.
	Workers int
	Idle    int
	Dead    int
	// Unrecoverable reports that the control plane has given up on a
	// permanently dead worker and is waiting for the watchdog to fail the
	// run.
	Unrecoverable bool
	// Epoch is the cluster epoch (bumped by every global rollback).
	Epoch int32
	// Recovery is the run's effective recovery strategy.
	Recovery string

	// Sent/Recv are the termination ledger's transport counts; Updates is
	// the cumulative f_xv invocation count.
	Sent, Recv int64
	Updates    int64
	// ProgressAge is how long the watchdog has seen no progress (reports,
	// updates or sends). Compare against the configured watchdog budget to
	// decide liveness.
	ProgressAge time.Duration
	// Watchdog is the configured stuck-run budget (0 = disabled), exported
	// so a health endpoint can scale ProgressAge without knowing the config.
	Watchdog time.Duration

	// MemStage is the governor's degradation rung ("" when ungoverned);
	// SpilledBytes is governed state currently resident on disk.
	MemStage     string
	SpilledBytes int64

	// UpdatedAt stamps the publication (wall clock).
	UpdatedAt time.Time
}

// HealthTracker is a concurrency-safe mailbox for Health snapshots. One
// tracker outlives individual runs: arganrun attaches the same tracker to
// every soak iteration's LiveConfig, so an HTTP poller sees a continuous
// health stream across iterations. The zero value is ready to use.
type HealthTracker struct {
	mu sync.Mutex
	h  Health
}

// Health returns the latest published snapshot.
func (t *HealthTracker) Health() Health {
	if t == nil {
		return Health{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h
}

// publish applies mutate under the lock and stamps the snapshot.
func (t *HealthTracker) publish(mutate func(*Health)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	mutate(&t.h)
	t.h.UpdatedAt = time.Now()
	t.mu.Unlock()
}

// runStarted resets the per-run fields at the top of RunLive.
func (t *HealthTracker) runStarted(workers int, recovery string, watchdog time.Duration) {
	t.publish(func(h *Health) {
		h.Running = true
		h.Workers = workers
		h.Idle, h.Dead = 0, 0
		h.Unrecoverable = false
		h.Epoch = 0
		h.Recovery = recovery
		h.Sent, h.Recv, h.Updates = 0, 0, 0
		h.ProgressAge = 0
		h.Watchdog = watchdog
		h.MemStage, h.SpilledBytes = "", 0
	})
}

// SetDraining flips the tracker's drain flag (graceful-shutdown signal for
// readiness probes). Unlike the per-run fields it survives runStarted:
// draining is a property of the process, not of any one run.
func (t *HealthTracker) SetDraining(v bool) {
	t.publish(func(h *Health) { h.Draining = v })
}

// runEnded records the run's outcome.
func (t *HealthTracker) runEnded(err error) {
	t.publish(func(h *Health) {
		h.Running = false
		if err != nil {
			h.Failed++
			h.Err = err.Error()
		} else {
			h.Completed++
		}
	})
}

// publishHealth is the monitor's per-tick publication: liveness from the
// control plane, progress from the watchdog counters, memory stage from the
// governor.
func (d *liveDriver[V]) publishHealth(progressAge time.Duration) {
	t := d.cfg.Health
	if t == nil {
		return
	}
	idle, _, sent, recv, _ := d.coord.status()
	d.ctrl.mu.Lock()
	dead, unrec := d.ctrl.nDead, d.ctrl.unrecoverable
	d.ctrl.mu.Unlock()
	t.publish(func(h *Health) {
		h.Idle = idle
		h.Dead = dead
		h.Unrecoverable = unrec
		h.Epoch = d.ctrl.epoch.Load()
		h.Sent, h.Recv = sent, recv
		h.Updates = d.updates.Load()
		h.ProgressAge = progressAge
		if d.gov != nil {
			h.MemStage = d.gov.Stage().String()
			h.SpilledBytes = d.gov.SpilledBytes()
		}
	})
}
