package gap

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"argan/internal/ace"
	"argan/internal/obs"
)

// The live driver's control phases. ctrlRun is normal execution. ctrlCkpt
// asks every worker to park at its next check so the monitor can take a
// consistent snapshot (workers keep draining while parked so the global
// sent==recv barrier can be reached). ctrlRecover parks the survivors
// hands-off while the monitor rolls every fragment back.
const (
	ctrlRun int32 = iota
	ctrlCkpt
	ctrlRecover
)

// liveCtrl is the shared control plane between the worker goroutines and
// the monitor: the current phase, the cluster epoch (bumped by every
// rollback), per-worker heartbeats, and the monitor's view of who is dead.
type liveCtrl struct {
	phase atomic.Int32
	epoch atomic.Int32
	beats []atomic.Int64 // ns since run start of each worker's last beat

	mu            sync.Mutex
	parked        int
	dead          []bool
	nDead         int
	restart       []float64 // ms from detection to restart; <0 permanent, liveRestartUnknown unset
	unrecoverable bool      // a permanently dead worker was found: stop trying
}

// liveRestartUnknown marks a worker that died without announcing a restart
// delay (a heartbeat false positive, or a plan bug). The monitor never
// respawns such a worker — its goroutine might still be alive, and two
// goroutines over one liveState would race — so the watchdog handles it.
const liveRestartUnknown = -2

func newLiveCtrl(n int) *liveCtrl {
	c := &liveCtrl{
		beats:   make([]atomic.Int64, n),
		dead:    make([]bool, n),
		restart: make([]float64, n),
	}
	for i := range c.restart {
		c.restart[i] = liveRestartUnknown
	}
	return c
}

func (c *liveCtrl) enterPark() { c.mu.Lock(); c.parked++; c.mu.Unlock() }
func (c *liveCtrl) exitPark()  { c.mu.Lock(); c.parked--; c.mu.Unlock() }

// noteCrash records the injected crash's restart delay just before the
// worker goroutine exits. Death detection itself stays heartbeat-based.
func (c *liveCtrl) noteCrash(id int, restartMS float64) {
	c.mu.Lock()
	c.restart[id] = restartMS
	c.mu.Unlock()
}

func (c *liveCtrl) numDead() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nDead
}

func (c *liveCtrl) isUnrecoverable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unrecoverable
}

// liveSnap is one worker's part of a consistent cluster snapshot: status
// variables, program-private aux state, the active set and the un-flushed
// out-accumulators. Taken only at global barriers (all workers parked,
// sent==recv), so no in-flight messages need to be captured.
type liveSnap[V any] struct {
	psi    []V
	aux    any
	active []uint32
	out    [][]ace.Message[V]

	// Sequence state of the exactly-once layer, captured only when it is
	// on. Global snapshots are taken at a quiescent barrier (sent == recv),
	// where the reorder buffers are provably empty and cursors match send
	// sequences; local snapshots are taken at a worker-local safe point and
	// buffered gaps are simply dropped — the retained log replays them.
	sendSeq []uint64
	cursor  []uint64
}

func captureLive[V any](st *liveState[V]) liveSnap[V] {
	s := liveSnap[V]{
		psi:    append([]V(nil), st.psi...),
		active: st.active.Snapshot(),
		out:    make([][]ace.Message[V], len(st.out)),
	}
	if cp, ok := any(st.prog).(ace.Checkpointer); ok {
		s.aux = cp.SnapshotAux()
	}
	for j := range st.out {
		s.out[j] = append([]ace.Message[V](nil), st.out[j].msgs...)
	}
	if rs := st.rs; rs != nil {
		s.sendSeq = append([]uint64(nil), rs.sendSeq...)
		s.cursor = append([]uint64(nil), rs.cursor...)
	}
	return s
}

// restoreLive rolls st back to the snapshot in place: the ACE context
// closes over the psi slice, so values are copied into it rather than the
// slice being replaced. Safe to call repeatedly with the same snapshot.
func restoreLive[V any](st *liveState[V], s *liveSnap[V]) {
	copy(st.psi, s.psi)
	if cp, ok := any(st.prog).(ace.Checkpointer); ok {
		cp.RestoreAux(s.aux)
	}
	st.active.Reset(s.active)
	for j := range st.out {
		st.restoreOut(j, s.out[j])
	}
	if rs := st.rs; rs != nil && s.sendSeq != nil {
		copy(rs.sendSeq, s.sendSeq)
		copy(rs.cursor, s.cursor)
		for i := range rs.robuf {
			rs.robuf[i] = nil
		}
		rs.resetBuf()
	}
}

// monitor is the coordinator-side control loop: heartbeat failure
// detection, periodic consistent checkpoints, crash recovery, and the
// progress watchdog. It holds a WaitGroup slot so RunLive cannot return
// while a recovery is mid-flight.
func (d *liveDriver[V]) monitor() {
	defer d.wg.Done()
	// The monitor rewrites worker state during recovery; a panic here (a
	// driver bug, or a Checkpointer hook blowing up mid-restore) must fail
	// the run, not the process hosting it.
	defer func() {
		if r := recover(); r != nil {
			d.coord.fail(fmt.Errorf("%w: monitor: %v\n%s", ErrWorkerPanic, r, debug.Stack()))
		}
	}()
	tick := 5 * time.Millisecond
	if d.hasCrashes && d.cfg.HeartbeatTimeout/4 < tick {
		tick = d.cfg.HeartbeatTimeout / 4
	}
	if d.recover && d.cfg.CheckpointEvery/4 < tick {
		tick = d.cfg.CheckpointEvery / 4
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()

	// Local recovery sequences uncoordinated checkpoints instead of
	// parking the cluster: one worker is asked per slice so every worker
	// snapshots about once per CheckpointEvery.
	ckptEvery := d.cfg.CheckpointEvery
	if d.localRec && d.n > 0 {
		ckptEvery = d.cfg.CheckpointEvery / time.Duration(d.n)
		if ckptEvery < time.Millisecond {
			ckptEvery = time.Millisecond
		}
	}

	lastCkpt := sinceFn(d.start)
	var lastProg [3]int64
	progSince := sinceFn(d.start)
	for {
		select {
		case <-d.coord.done:
			return
		case <-d.cfg.Cancel:
			// Client cancellation / deadline: first failure wins, workers
			// exit at their next safe point, RunLive returns ErrCanceled.
			d.coord.fail(ErrCanceled)
			return
		case <-tk.C:
		}
		now := sinceFn(d.start)

		if d.gov != nil || (d.localRec && d.logCap > 0) {
			d.memTick(now)
		}
		if d.hasCrashes {
			// Deaths can also be detected mid-checkpoint, so recovery keys
			// off the dead count, not just freshly detected deaths.
			d.detectDead(now)
			d.resurrectStalled(now)
			if d.recover && d.ctrl.numDead() > 0 && !d.ctrl.isUnrecoverable() {
				recovered := false
				if d.localRec {
					recovered = d.runLocalRecovery()
				} else {
					recovered = d.runRecovery()
				}
				if recovered {
					lastCkpt = sinceFn(d.start)
					progSince = lastCkpt
				}
			}
		}
		if d.recover && d.ctrl.numDead() == 0 && now-lastCkpt >= ckptEvery {
			if d.localRec {
				d.requestLocalCkpt()
				lastCkpt = now
			} else if d.runCheckpoint() {
				lastCkpt = sinceFn(d.start)
			}
		}
		_, _, _, _, progress := d.coord.status()
		cur := [3]int64{progress, d.updates.Load(), d.msgsSent.Load()}
		if cur != lastProg {
			lastProg = cur
			progSince = now
		}
		d.publishHealth(now - progSince)
		if d.cfg.Watchdog > 0 {
			if now-progSince > d.cfg.Watchdog {
				idle, total, sent, recv, _ := d.coord.status()
				d.coord.fail(fmt.Errorf(
					"gap: live run stuck for %v: %d/%d workers idle, %d dead, %d messages unaccounted (sent=%d recv=%d)%s",
					d.cfg.Watchdog, idle, total, d.ctrl.numDead(), sent-recv, sent, recv,
					d.stuckDetail()))
				return
			}
		}
	}
}

// detectDead declares workers with stale heartbeats dead and returns how
// many were newly declared. Workers beat at every indicator check, park
// poll, idle tick and send retry, so a stale beat means the goroutine
// exited (or is wedged in a single Update call far beyond the timeout).
func (d *liveDriver[V]) detectDead(now time.Duration) int {
	newDead := 0
	d.ctrl.mu.Lock()
	for i := range d.ctrl.dead {
		if d.ctrl.dead[i] {
			continue
		}
		if now-time.Duration(d.ctrl.beats[i].Load()) > d.cfg.HeartbeatTimeout {
			d.ctrl.dead[i] = true
			d.ctrl.nDead++
			newDead++
			if tr := d.cfg.Tracer; tr != nil {
				tr.Mark(i, obs.MarkDetect, float64(now)/1e3)
			}
		}
	}
	d.ctrl.mu.Unlock()
	return newDead
}

// resurrectStalled clears death marks that turn out to be heartbeat false
// positives: a worker that was detected dead without ever announcing a
// crash, but whose beat has since resumed, was merely stalled (a GC pause
// or CPU starvation under machine load), not dead. Un-marking it keeps a
// transient scheduler stall from escalating into an unrecoverable run.
// Staged workers are never resurrected — once rollback staging starts the
// goroutine is assumed gone and a second writer would race.
func (d *liveDriver[V]) resurrectStalled(now time.Duration) {
	d.ctrl.mu.Lock()
	for i := range d.ctrl.dead {
		if !d.ctrl.dead[i] || d.ctrl.restart[i] != liveRestartUnknown {
			continue
		}
		if d.recState != nil && d.recState[i] != 0 {
			continue
		}
		if now-time.Duration(d.ctrl.beats[i].Load()) <= d.cfg.HeartbeatTimeout {
			d.ctrl.dead[i] = false
			d.ctrl.nDead--
		}
	}
	d.ctrl.mu.Unlock()
}

// deathGrace is how long an unannounced death may stay undecided before the
// run is declared unrecoverable: several heartbeat windows, so a stalled
// goroutine has time to resume beating and be resurrected, yet a truly
// wedged worker still hands the run to the watchdog promptly. Governed runs
// get a wider window — spill I/O under a tight budget makes benign
// hundreds-of-milliseconds stalls far more likely than in RAM-only runs.
func (d *liveDriver[V]) deathGrace() time.Duration {
	g := 4 * d.cfg.HeartbeatTimeout
	min := 200 * time.Millisecond
	if d.gov != nil && d.gov.Budget() > 0 {
		min = 500 * time.Millisecond
	}
	if g < min {
		g = min
	}
	return g
}

// runCheckpoint takes a consistent cluster snapshot: ask every worker to
// park, wait until all are parked with every counted message received,
// then capture each fragment's state. Aborts (and retries at a later tick)
// if a worker dies, the run finishes, or the barrier can't be reached
// within the deadline.
func (d *liveDriver[V]) runCheckpoint() bool {
	d.ctrl.phase.Store(ctrlCkpt)
	deadline := timeNow().Add(2 * time.Second)
	ok := false
	for {
		select {
		case <-d.coord.done:
			d.ctrl.phase.Store(ctrlRun)
			return false
		default:
		}
		if d.hasCrashes && d.detectDead(sinceFn(d.start)) > 0 {
			break
		}
		d.ctrl.mu.Lock()
		parked, nDead := d.ctrl.parked, d.ctrl.nDead
		d.ctrl.mu.Unlock()
		if nDead > 0 {
			break
		}
		sent, recv := d.coord.counts()
		if parked == d.n && sent == recv {
			ok = true
			break
		}
		if timeNow().After(deadline) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if ok {
		tsv := float64(sinceFn(d.start)) / 1e3
		for i := range d.states {
			d.snaps[i] = captureLive(d.states[i])
			if tr := d.cfg.Tracer; tr != nil {
				tr.Mark(i, obs.MarkCkpt, tsv)
			}
		}
		d.checkpoints.Add(1)
	}
	d.ctrl.phase.Store(ctrlRun)
	return ok
}

// runRecovery rolls the whole cluster back to its last consistent snapshot
// and respawns the dead workers: park the survivors, restore every
// fragment (PageRank-style delta accumulation is not idempotent, so a
// single-worker replay would double-count — the rollback must be global),
// reset the termination detector, bump the epoch so pre-rollback envelopes
// are discarded, wait out the restart delay, then release everyone.
func (d *liveDriver[V]) runRecovery() bool {
	tr := d.cfg.Tracer
	ts := func() float64 { return float64(sinceFn(d.start)) / 1e3 }
	if tr != nil {
		tr.SpanBegin(d.n, obs.PhaseRecovery, ts())
		defer func() { tr.SpanEnd(d.n, obs.PhaseRecovery, ts()) }()
	}
	d.ctrl.phase.Store(ctrlRecover)
	defer d.ctrl.phase.Store(ctrlRun)

	// Barrier: every surviving worker parked. Workers can die while we
	// wait (a second injected crash), so keep detection running.
	deadline := timeNow().Add(5 * time.Second)
	for {
		select {
		case <-d.coord.done:
			return false
		default:
		}
		d.detectDead(sinceFn(d.start))
		d.ctrl.mu.Lock()
		parked, nDead := d.ctrl.parked, d.ctrl.nDead
		d.ctrl.mu.Unlock()
		if parked >= d.n-nDead {
			break
		}
		if timeNow().After(deadline) {
			return false // leave it to the watchdog
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Every dead worker must have announced a restart before the rollback
	// may proceed. An announced permanent death (restart < 0) makes the run
	// unrecoverable. An unannounced one is undecided: it is either a
	// heartbeat false positive — the goroutine is alive, so restoring under
	// it would race — or a wedged worker; defer the rollback until the
	// grace window resolves it (resurrection or unrecoverable).
	now := sinceFn(d.start)
	d.ctrl.mu.Lock()
	var deads []int
	restartMS := 0.0
	recoverable, pending := true, false
	for i, dd := range d.ctrl.dead {
		if !dd {
			continue
		}
		deads = append(deads, i)
		if r := d.ctrl.restart[i]; r == liveRestartUnknown {
			if now-time.Duration(d.ctrl.beats[i].Load()) <= d.deathGrace() {
				pending = true
			} else {
				recoverable = false
			}
		} else if r < 0 {
			recoverable = false
		} else if r > restartMS {
			restartMS = r
		}
	}
	d.ctrl.mu.Unlock()
	if !recoverable {
		// Permanently dead (or silent beyond grace) worker: the run cannot
		// recover; stop re-parking the cluster and let the watchdog fail
		// it with a descriptive error.
		d.ctrl.mu.Lock()
		d.ctrl.unrecoverable = true
		d.ctrl.mu.Unlock()
		return false
	}
	if pending {
		return false // retry next tick, after resurrection had its chance
	}
	if len(deads) == 0 {
		return false
	}

	// Survivors are parked hands-off and the dead goroutines have exited:
	// the monitor owns all fragment state here.
	for i := range d.states {
		restoreLive(d.states[i], &d.snaps[i])
	}
	if !d.coord.reset() {
		return false // run ended under us
	}
	epoch := d.ctrl.epoch.Add(1)
	if tr != nil {
		// The epoch mark is the soak harness's witness that a global
		// rollback happened; localized recoveries never emit it.
		tr.Mark(d.n, obs.MarkEpoch, ts())
	}
	d.recoveries.Add(1)
	if restartMS > 0 {
		time.Sleep(time.Duration(restartMS * float64(time.Millisecond)))
	}
	nowNS := int64(sinceFn(d.start))
	d.ctrl.mu.Lock()
	for _, i := range deads {
		d.ctrl.dead[i] = false
		d.ctrl.nDead--
		d.ctrl.restart[i] = liveRestartUnknown
		d.ctrl.beats[i].Store(nowNS)
	}
	d.ctrl.mu.Unlock()
	for _, i := range deads {
		if tr != nil {
			tr.Mark(i, obs.MarkRestart, ts())
		}
		d.wg.Add(1)
		go d.worker(d.states[i], epoch)
	}
	return true
}
