package gap

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/fault"
	"argan/internal/obs"
)

// --- exactly-once layer unit tests -----------------------------------------

// recTestState builds a two-worker liveState for worker 0 with the sequence
// layer attached (PageRank: non-idempotent sum aggregation, invertible).
func recTestState(t *testing.T) (*liveState[float64], uint32) {
	t.Helper()
	g := testGraph(true, 11)
	fs := frags(t, g, 2)
	prog := algorithms.NewPageRank()()
	st := newLiveState(0, fs[0], prog, ace.Query{Eps: 1e-3})
	st.rs = newRecoverState[float64](2, prog.(ace.Inverter[float64]).Invert)
	lv, ok := st.local(fs[0].Global(0))
	if !ok {
		t.Fatal("fragment's own vertex not resolvable")
	}
	st.psi[lv] = 0 // clear the program's Init seed so assertions read raw sums
	return st, lv
}

func TestSeqIngestExactlyOnce(t *testing.T) {
	st, lv := recTestState(t)
	vid := st.frag.Global(lv)
	env := func(inc int32, seq uint64, val float64) liveEnvelope[float64] {
		return liveEnvelope[float64]{from: 1, inc: inc, seq: seq,
			msgs: []ace.Message[float64]{{V: vid, Val: val}}}
	}
	// Out-of-order arrival: seq 2 buffers, seq 1 applies and drains it.
	st.seqIngest(env(0, 2, 0.25), st.pool, false)
	if st.psi[lv] != 0 {
		t.Fatalf("gap batch applied early: psi=%v", st.psi[lv])
	}
	st.seqIngest(env(0, 1, 0.5), st.pool, false)
	if st.psi[lv] != 0.75 {
		t.Fatalf("after in-order drain psi=%v, want 0.75", st.psi[lv])
	}
	if st.rs.cursor[1] != 2 {
		t.Fatalf("cursor=%d, want 2", st.rs.cursor[1])
	}
	// Duplicates of an applied sequence are dropped.
	st.seqIngest(env(0, 1, 0.5), st.pool, false)
	st.seqIngest(env(0, 2, 0.25), st.pool, false)
	if st.psi[lv] != 0.75 {
		t.Fatalf("duplicate re-applied: psi=%v", st.psi[lv])
	}
	// A buffered duplicate of a still-gapped sequence is dropped too.
	st.seqIngest(env(0, 5, 1), st.pool, false)
	st.seqIngest(env(0, 5, 1), st.pool, false)
	if len(st.rs.robuf[1]) != 1 {
		t.Fatalf("robuf holds %d entries, want 1", len(st.rs.robuf[1]))
	}
}

func TestRollbackSenderInvertsUncommitted(t *testing.T) {
	st, lv := recTestState(t)
	vid := st.frag.Global(lv)
	env := func(inc int32, seq uint64, val float64) liveEnvelope[float64] {
		return liveEnvelope[float64]{from: 1, inc: inc, seq: seq,
			msgs: []ace.Message[float64]{{V: vid, Val: val}}}
	}
	st.seqIngest(env(0, 1, 0.5), st.pool, false)
	st.seqIngest(env(0, 2, 0.25), st.pool, false)
	if st.psi[lv] != 0.75 {
		t.Fatalf("setup psi=%v, want 0.75", st.psi[lv])
	}
	// Sender 1 rolls back to stable=1: the seq-2 contribution must be
	// un-applied and the cursor lowered so the re-derived stream is taken.
	st.rollbackSender(1, 1, 1)
	if st.psi[lv] != 0.5 {
		t.Fatalf("after rollback psi=%v, want 0.5", st.psi[lv])
	}
	if st.rs.cursor[1] != 1 {
		t.Fatalf("cursor=%d, want 1", st.rs.cursor[1])
	}
	// The old incarnation's uncommitted suffix is now rejected...
	st.seqIngest(env(0, 2, 0.25), st.pool, false)
	if st.psi[lv] != 0.5 {
		t.Fatalf("rolled-back suffix re-applied: psi=%v", st.psi[lv])
	}
	// ...while the restarted incarnation's re-derived stream is accepted.
	st.seqIngest(env(1, 2, 0.3), st.pool, false)
	if st.psi[lv] != 0.8 {
		t.Fatalf("new-incarnation batch lost: psi=%v, want 0.8", st.psi[lv])
	}
	// Re-delivering the same notice (e.g. via a restore's history fixup)
	// must be a no-op.
	st.rollbackSender(1, 1, 1)
	if st.psi[lv] != 0.8 {
		t.Fatalf("duplicate rollback mutated state: psi=%v", st.psi[lv])
	}
}

func TestRecoverStateBoundLimit(t *testing.T) {
	rs := newRecoverState[float64](2, nil)
	if got := rs.boundLimit(1, 0); got != ^uint64(0) {
		t.Fatalf("no bounds: limit=%d, want max", got)
	}
	rs.bounds[1] = []incBound{{inc: 1, stable: 10}, {inc: 2, stable: 7}}
	if got := rs.boundLimit(1, 0); got != 7 {
		t.Fatalf("inc 0 limit=%d, want min stable 7", got)
	}
	if got := rs.boundLimit(1, 1); got != 7 {
		t.Fatalf("inc 1 limit=%d, want 7 (only inc 2 supersedes)", got)
	}
	if got := rs.boundLimit(1, 2); got != ^uint64(0) {
		t.Fatalf("current inc limit=%d, want max", got)
	}
}

func TestMsgLog(t *testing.T) {
	l := newMsgLog[float64](2)
	for seq := uint64(1); seq <= 4; seq++ {
		l.append(0, 1, seq, []ace.Message[float64]{{V: 0, Val: float64(seq)}})
	}
	if l.size() != 4 || l.retainedFrom(0) != 4 {
		t.Fatalf("size=%d retained=%d, want 4/4", l.size(), l.retainedFrom(0))
	}
	if got := l.after(0, 1, 2); len(got) != 2 || got[0].seq != 3 || got[1].seq != 4 {
		t.Fatalf("after(2) = %+v, want seqs 3,4", got)
	}
	l.prune(0, 1, 2)
	if l.size() != 2 {
		t.Fatalf("after prune size=%d, want 2", l.size())
	}
	// Truncate back to stable=3: the uncommitted seq-4 suffix is dropped.
	l.truncate(0, []uint64{0, 3})
	if l.size() != 1 {
		t.Fatalf("after truncate size=%d, want 1", l.size())
	}
	if got := l.after(0, 1, 0); len(got) != 1 || got[0].seq != 3 {
		t.Fatalf("retained = %+v, want only seq 3", got)
	}
	// Appends after a capped `after` slice must not corrupt earlier reads.
	view := l.after(0, 1, 0)
	l.append(0, 1, 4, []ace.Message[float64]{{V: 0, Val: 4}})
	if len(view) != 1 || view[0].seq != 3 {
		t.Fatalf("reader view mutated by append: %+v", view)
	}
}

// --- end-to-end localized recovery ------------------------------------------

// localFTConfig is liveFTConfig with localized recovery selected.
func localFTConfig() LiveConfig {
	cfg := liveFTConfig(ModeGAP)
	cfg.Recovery = RecoveryLocal
	return cfg
}

// TestLiveLinkFaultsNonIdempotent: dup/reorder fates against programs whose
// aggregation is NOT idempotent (Δ-PageRank's accumulative sum) and against
// WCC, under both recovery strategies. The exactly-once ingestion layer must
// keep the fixpoints correct — before this layer, a duplicated batch silently
// double-counted rank mass.
func TestLiveLinkFaultsNonIdempotent(t *testing.T) {
	seed := strconv.FormatInt(chaosSeed(t), 10)
	for _, mode := range []string{RecoveryGlobal, RecoveryLocal} {
		t.Run("pagerank/"+mode, func(t *testing.T) {
			g := testGraph(true, 13)
			want := algorithms.SeqPageRank(g, 1e-3)
			cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16, Recovery: mode}
			cfg.Faults = faultPlan(t, "seed="+seed+"; dup=0.1; reorder=0.1; drop=0.05")
			res, lm, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
			if err != nil {
				t.Fatalf("RunLive: %v", err)
			}
			for v, w := range want {
				if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
					t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
				}
			}
			if lm.Crashes != 0 || lm.Epochs != 0 {
				t.Fatalf("unexpected fault accounting: %+v", lm)
			}
		})
		t.Run("wcc/"+mode, func(t *testing.T) {
			g := testGraph(false, 14)
			want := algorithms.SeqWCC(g)
			cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 16, Recovery: mode}
			cfg.Faults = faultPlan(t, "seed="+seed+"; dup=0.1; reorder=0.1")
			res, _, err := RunLive(frags(t, g, 4), algorithms.NewWCC(), ace.Query{}, cfg)
			if err != nil {
				t.Fatalf("RunLive: %v", err)
			}
			for v, w := range want {
				if res.Values[v] != w {
					t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
				}
			}
		})
	}
}

// TestLiveLocalRecoveryMatchesFaultFree is the localized mirror of
// TestLiveCrashRecoveryMatchesFaultFree: crashes are repaired by per-worker
// restore + log replay, the answers still match the sequential reference, and
// the cluster epoch is NEVER bumped.
func TestLiveLocalRecoveryMatchesFaultFree(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		g := testGraph(true, 3)
		want := algorithms.SeqSSSP(g, 0)
		cfg := localFTConfig()
		cfg.Faults = faultPlan(t, "crash=1@u40+10")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		for v, w := range want {
			if res.Values[v] != w {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
		if lm.Recovery != RecoveryLocal {
			t.Fatalf("effective recovery %q, want local", lm.Recovery)
		}
		if lm.Crashes != 1 || lm.Recoveries < 1 {
			t.Fatalf("crashes=%d recoveries=%d, want 1 and >=1", lm.Crashes, lm.Recoveries)
		}
		if lm.Epochs != 0 {
			t.Fatalf("local recovery bumped the epoch %d times", lm.Epochs)
		}
	})
	t.Run("pagerank", func(t *testing.T) {
		g := testGraph(true, 4)
		want := algorithms.SeqPageRank(g, 1e-3)
		cfg := localFTConfig()
		// The slowdown stretches the run so the crash lands with real
		// uncommitted rank in flight (survivor undo logs must invert it).
		cfg.Faults = faultPlan(t, "crash=2@u60+10; slow=1@0:200:30")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		for v, w := range want {
			if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
		if lm.Recovery != RecoveryLocal || lm.Epochs != 0 {
			t.Fatalf("recovery=%q epochs=%d, want local/0", lm.Recovery, lm.Epochs)
		}
		if lm.Crashes != 1 || lm.Recoveries < 1 {
			t.Fatalf("crashes=%d recoveries=%d, want 1 and >=1", lm.Crashes, lm.Recoveries)
		}
	})
	t.Run("wcc_double_crash", func(t *testing.T) {
		g := testGraph(false, 5)
		want := algorithms.SeqWCC(g)
		cfg := localFTConfig()
		cfg.Faults = faultPlan(t, "crash=0@u40+5; crash=3@u80+15")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewWCC(), ace.Query{}, cfg)
		if err != nil {
			t.Fatalf("RunLive: %v", err)
		}
		for v, w := range want {
			if res.Values[v] != w {
				t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
			}
		}
		if lm.Crashes != 2 || lm.Recoveries < 1 || lm.Epochs != 0 {
			t.Fatalf("crashes=%d recoveries=%d epochs=%d", lm.Crashes, lm.Recoveries, lm.Epochs)
		}
	})
}

// opaqueProg hides a program's optional capability interfaces: only the core
// ace.Program methods are promoted through the embedded interface, so
// recoveryHooks sees neither IdempotentAggregator nor Inverter.
type opaqueProg struct{ ace.Program[float64] }

// opaqueFactory wraps a factory so every instance it yields is opaque.
func opaqueFactory(f ace.Factory[float64]) ace.Factory[float64] {
	return func() ace.Program[float64] { return opaqueProg{f()} }
}

// TestLiveLocalRecoveryDowngrade: a program with neither recovery hook must
// silently fall back to global rollback — and LiveMetrics.Recovery reports it.
func TestLiveLocalRecoveryDowngrade(t *testing.T) {
	g := testGraph(true, 3)
	want := algorithms.SeqSSSP(g, 0)
	cfg := localFTConfig()
	cfg.Faults = faultPlan(t, "crash=1@u40+10")
	res, lm, err := RunLive(frags(t, g, 4), opaqueFactory(algorithms.NewSSSP()), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	for v, w := range want {
		if res.Values[v] != w {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
		}
	}
	if lm.Recovery != RecoveryGlobal {
		t.Fatalf("effective recovery %q, want downgrade to global", lm.Recovery)
	}
	if lm.Recoveries >= 1 && lm.Epochs < 1 {
		t.Fatalf("global recovery without an epoch bump: %+v", lm)
	}
}

func TestLiveUnknownRecoveryStrategy(t *testing.T) {
	g := testGraph(true, 3)
	cfg := LiveConfig{Mode: ModeGAP, Recovery: "zonal"}
	if _, _, err := RunLive(frags(t, g, 2), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg); err == nil ||
		!strings.Contains(err.Error(), "unknown recovery strategy") {
		t.Fatalf("want unknown-strategy error, got %v", err)
	}
}

// TestLiveChaosSoak is the acceptance soak: deterministic crash+drop+dup+
// reorder storms (seeded from CHAOS_SEED) over SSSP, PageRank and WCC. Every
// run must reach the sequential fixpoint, and in local mode the trace must
// show ZERO global epoch bumps. CHAOS_RECOVERY pins one strategy (the CI
// chaos matrix sets it); unset runs both.
func TestLiveChaosSoak(t *testing.T) {
	modes := []string{RecoveryGlobal, RecoveryLocal}
	if m := os.Getenv("CHAOS_RECOVERY"); m != "" {
		modes = []string{m}
	}
	nSeeds := 5
	if testing.Short() {
		nSeeds = 2
	}
	base := chaosSeed(t)
	for _, mode := range modes {
		for i := 0; i < nSeeds; i++ {
			seed := base + int64(i)
			storm := fault.Storm(seed, 4, fault.StormOpts{
				Crashes: 2, Span: 300, Restart: 5,
				Drop: 0.04, Dup: 0.04, Reorder: 0.05,
			})
			for _, app := range []string{"sssp", "pagerank", "wcc"} {
				t.Run(fmt.Sprintf("%s/seed%d/%s", mode, seed, app), func(t *testing.T) {
					cfg := liveFTConfig(ModeGAP)
					cfg.Recovery = mode
					cfg.Faults = storm
					var rec *obs.Recorder
					if mode == RecoveryLocal {
						rec = obs.NewRecorder(5, 1<<14)
						cfg.Tracer = rec
					}
					var lm LiveMetrics
					switch app {
					case "sssp":
						g := testGraph(true, seed)
						want := algorithms.SeqSSSP(g, 0)
						res, m, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
						if err != nil {
							t.Fatalf("RunLive(%s): %v", storm, err)
						}
						lm = *m
						for v, w := range want {
							if res.Values[v] != w {
								t.Fatalf("vertex %d: got %v want %v (storm %s)", v, res.Values[v], w, storm)
							}
						}
					case "pagerank":
						g := testGraph(true, seed)
						want := algorithms.SeqPageRank(g, 1e-3)
						res, m, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
						if err != nil {
							t.Fatalf("RunLive(%s): %v", storm, err)
						}
						lm = *m
						for v, w := range want {
							if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
								t.Fatalf("vertex %d: got %v want %v (storm %s)", v, res.Values[v], w, storm)
							}
						}
					case "wcc":
						g := testGraph(false, seed)
						want := algorithms.SeqWCC(g)
						res, m, err := RunLive(frags(t, g, 4), algorithms.NewWCC(), ace.Query{}, cfg)
						if err != nil {
							t.Fatalf("RunLive(%s): %v", storm, err)
						}
						lm = *m
						for v, w := range want {
							if res.Values[v] != w {
								t.Fatalf("vertex %d: got %v want %v (storm %s)", v, res.Values[v], w, storm)
							}
						}
					}
					if mode == RecoveryLocal {
						if lm.Recovery != RecoveryLocal {
							t.Fatalf("effective recovery %q, want local", lm.Recovery)
						}
						if lm.Epochs != 0 {
							t.Fatalf("%d global epoch bumps under local recovery (storm %s)", lm.Epochs, storm)
						}
						var buf bytes.Buffer
						if err := rec.WriteChromeTrace(&buf); err != nil {
							t.Fatalf("export: %v", err)
						}
						if strings.Contains(buf.String(), `"name":"epoch"`) {
							t.Fatalf("trace records a global epoch bump under local recovery (storm %s)", storm)
						}
					}
				})
			}
		}
	}
}

// TestLiveWatchdogStuckDetail: the watchdog's error must now carry the
// per-worker transport diagnosis (status, ledger counters, heartbeat age) so
// a chaos-CI hang is debuggable from the log alone.
func TestLiveWatchdogStuckDetail(t *testing.T) {
	g := testGraph(true, 3)
	cfg := LiveConfig{
		Mode:             ModeGAP,
		CheckEvery:       16,
		HeartbeatTimeout: 50 * 1e6, // 50ms
		Watchdog:         400 * 1e6,
		NoRecover:        true,
	}
	cfg.Faults = faultPlan(t, "crash=1@u30") // permanent: no restart
	_, _, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err == nil {
		t.Fatal("want watchdog error, got nil")
	}
	for _, want := range []string{"worker 0 [live]", "worker 1 [dead", "sent=", "recv=", "beat="} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("stuck detail missing %q in: %v", want, err)
		}
	}
}
