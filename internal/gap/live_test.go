package gap

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/graph"
)

func TestLiveSSSPMatchesSequential(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 3000, M: 24000, Directed: true, Seed: 21, MaxW: 30})
	want := algorithms.SeqSSSP(g, 0)
	for _, mode := range []Mode{ModeGAP, ModeAPGC, ModeAPVC} {
		for _, n := range []int{1, 4, 8} {
			fs := frags(t, g, n)
			res, lm, err := RunLive(fs, algorithms.NewSSSP(), ace.Query{Source: 0}, LiveConfig{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			for v, d := range want {
				if res.Values[v] != d {
					t.Fatalf("%v n=%d: dist[%d] = %v, want %v", mode, n, v, res.Values[v], d)
				}
			}
			if lm.Updates == 0 || lm.WallTime <= 0 {
				t.Fatalf("%v n=%d: empty live metrics %+v", mode, n, lm)
			}
			if n > 1 && lm.MsgsSent == 0 {
				t.Fatalf("%v n=%d: no messages exchanged", mode, n)
			}
		}
	}
}

func TestLivePageRankMatchesSequential(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 2000, M: 16000, Directed: true, Seed: 22})
	want := algorithms.SeqPageRank(g, 1e-4)
	fs := frags(t, g, 6)
	res, _, err := RunLive(fs, algorithms.NewPageRank(), ace.Query{Eps: 1e-4}, LiveConfig{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range want {
		if math.Abs(res.Values[v]-r) > 0.02*(r+1) {
			t.Fatalf("pr[%d] = %v, want ~%v", v, res.Values[v], r)
		}
	}
}

func TestLiveColorProper(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 1500, M: 12000, Directed: true, Seed: 23})
	want := algorithms.SeqColor(g)
	fs := frags(t, g, 5)
	res, _, err := RunLive(fs, algorithms.NewColor(), ace.Query{}, LiveConfig{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range want {
		if res.Values[v] != c {
			t.Fatalf("color[%d] = %d, want %d", v, res.Values[v], c)
		}
	}
}

func TestLiveCoreAndSim(t *testing.T) {
	gu := graph.PowerLaw(graph.GenConfig{N: 1200, M: 9000, Directed: false, Seed: 24})
	wantCore := algorithms.SeqCore(gu)
	res, _, err := RunLive(frags(t, gu, 4), algorithms.NewCore(), ace.Query{}, LiveConfig{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range wantCore {
		if res.Values[v] != c {
			t.Fatalf("core[%d] = %d, want %d", v, res.Values[v], c)
		}
	}

	gl := graph.KnowledgeBase(graph.GenConfig{N: 1000, M: 5000, Seed: 25, Labels: 8})
	pat := algorithms.RandomPattern(gl, 4, 5, 77)
	wantSim := algorithms.SeqSim(gl, pat)
	resS, _, err := RunLive(frags(t, gl, 4), algorithms.NewSim(), ace.Query{Pattern: pat}, LiveConfig{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range wantSim {
		if resS.Values[v] != m {
			t.Fatalf("sim[%d] = %b, want %b", v, resS.Values[v], m)
		}
	}
}

func TestLiveRejectsBarrierModes(t *testing.T) {
	g := graph.Chain(10, true)
	fs := frags(t, g, 2)
	if _, _, err := RunLive(fs, algorithms.NewSSSP(), ace.Query{}, LiveConfig{Mode: ModeBSP}); err == nil {
		t.Fatal("want error for BSP under the live driver")
	}
	if _, _, err := RunLive(nil, algorithms.NewSSSP(), ace.Query{}, LiveConfig{Mode: ModeGAP}); err == nil {
		t.Fatal("want error for no fragments")
	}
}

func TestLiveBSPMatchesSequential(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 2500, M: 20000, Directed: true, Seed: 26, MaxW: 20})
	want := algorithms.SeqSSSP(g, 0)
	for _, n := range []int{1, 4, 8} {
		res, lm, err := RunLiveBSP(frags(t, g, n), algorithms.NewSSSP(), ace.Query{Source: 0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v, d := range want {
			if res.Values[v] != d {
				t.Fatalf("n=%d: dist[%d] = %v, want %v", n, v, res.Values[v], d)
			}
		}
		if lm.Rounds == 0 || res.Metrics.Supersteps != lm.Rounds {
			t.Fatalf("superstep accounting wrong: %+v vs %+v", lm, res.Metrics)
		}
	}
	// PageRank under live BSP too (non-idempotent aggregation relies on the
	// exactly-once exchange of the barrier).
	wantPR := algorithms.SeqPageRank(g, 1e-4)
	res, _, err := RunLiveBSP(frags(t, g, 6), algorithms.NewPageRank(), ace.Query{Eps: 1e-4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range wantPR {
		if math.Abs(res.Values[v]-r) > 0.02*(r+1) {
			t.Fatalf("pr[%d] = %v, want ~%v", v, res.Values[v], r)
		}
	}
}

func TestLiveBSPErrorsAndCaps(t *testing.T) {
	if _, _, err := RunLiveBSP(nil, algorithms.NewSSSP(), ace.Query{}, 0); err == nil {
		t.Fatal("want error for no fragments")
	}
	// A superstep cap cuts the run short but still returns.
	g := graph.Chain(50, true)
	res, lm, err := RunLiveBSP(frags(t, g, 4), algorithms.NewBFS(), ace.Query{Source: 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Rounds != 3 {
		t.Fatalf("cap ignored: %d rounds", lm.Rounds)
	}
	_ = res
}

func TestLiveBSPPullPrograms(t *testing.T) {
	// Pull-style programs exercise the shared live-state's replica sync
	// (ctxSet) and dependent re-activation across all DepKinds.
	g := graph.PowerLaw(graph.GenConfig{N: 900, M: 7000, Directed: true, Seed: 27, MaxW: 9, Labels: 6})
	fs := frags(t, g, 5)
	col, _, err := RunLiveBSP(fs, algorithms.NewColor(), ace.Query{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqColor(g) {
		if col.Values[v] != c {
			t.Fatalf("color[%d] = %d, want %d", v, col.Values[v], c)
		}
	}

	gu := graph.PowerLaw(graph.GenConfig{N: 700, M: 5200, Directed: false, Seed: 28})
	core, _, err := RunLiveBSP(frags(t, gu, 4), algorithms.NewCore(), ace.Query{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqCore(gu) {
		if core.Values[v] != c {
			t.Fatalf("core[%d] = %d, want %d", v, core.Values[v], c)
		}
	}

	pat := algorithms.RandomPattern(g, 4, 5, 5)
	sim, _, err := RunLiveBSP(fs, algorithms.NewSim(), ace.Query{Pattern: pat}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range algorithms.SeqSim(g, pat) {
		if sim.Values[v] != m {
			t.Fatalf("sim[%d] = %b, want %b", v, sim.Values[v], m)
		}
	}
}
