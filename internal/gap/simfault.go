package gap

import (
	"argan/internal/ace"
	"argan/internal/fault"
	"argan/internal/obs"
)

// prioCtrl orders fault-control events (crashes, detection, rollback,
// checkpoints) after ordinary deliveries and resumes at the same instant,
// so a checkpoint taken at time t sees every delivery stamped t.
const prioCtrl = 2

// simFT is the sim driver's fault-tolerance layer: it interprets the fault
// plan (crashes, slowdowns, link faults), takes periodic consistent cluster
// snapshots, and performs global rollback recovery. Because the simulator
// is single-threaded, a snapshot at a scheduler instant is trivially
// consistent; in-flight batches are captured through a registry of
// scheduled-but-undelivered deliveries and re-shipped on rollback with
// their remaining latency.
//
// Recovery is a *global* rollback: every worker — not just the crashed one
// — is restored to the last checkpoint. This is what makes recovery correct
// for non-idempotent accumulative programs (PageRank): replaying a single
// worker would re-send deltas the others already folded in.
type simFT[V any] struct {
	s   *sim[V]
	inj *fault.Injector

	// recovery is set when some crash has a restart: checkpoints are taken
	// and rollback is scheduled after detection.
	recovery bool
	every    float64 // checkpoint interval
	detect   float64 // crash → detection delay

	// epoch invalidates every scheduled closure on rollback; inc[i]
	// invalidates closures targeting worker i on its crash.
	epoch int
	inc   []int

	crashed  []bool
	nCrashed int

	// In-flight registry: one entry per shipped batch, marked on delivery.
	// Snapshots reference the undelivered entries.
	flights []*flight[V]

	snap *clusterSnap[V]
}

// flight is one shipped batch in the registry.
type flight[V any] struct {
	from, to  int
	batch     []ace.Message[V]
	bytes     int
	arrival   float64
	delivered bool
}

// workerSnap is one worker's share of a consistent snapshot. Only
// functional state is captured: metrics, staleness accounting and tuner
// state stay monotone across a rollback (work done in a doomed epoch was
// really done — it is exactly the cost a fault adds).
type workerSnap[V any] struct {
	psi             []V
	aux             any
	active          []uint32
	inBuf           []ace.Message[V]
	inFirst, inLast float64
	inBatches       int
	out             []outSnap[V]
	eta             float64
	idle            bool
}

type outSnap[V any] struct {
	msgs  []ace.Message[V]
	bytes int
}

// clusterSnap is a globally consistent snapshot at virtual time t.
type clusterSnap[V any] struct {
	t         float64
	workers   []workerSnap[V]
	inflight  []*flight[V]
	idleV     []bool
	idleCount int
}

func newSimFT[V any](s *sim[V], plan *fault.Plan) *simFT[V] {
	ft := &simFT[V]{
		s:       s,
		inj:     fault.NewInjector(plan),
		every:   s.cfg.FT.CheckpointEvery,
		detect:  s.cfg.FT.DetectDelay,
		inc:     make([]int, len(s.workers)),
		crashed: make([]bool, len(s.workers)),
	}
	for _, c := range plan.Crashes {
		if c.Restart >= 0 {
			ft.recovery = true
		}
	}
	return ft
}

// start takes the initial snapshot, schedules the time-triggered crashes
// and opens the checkpoint chain. Called before the event loop runs.
func (ft *simFT[V]) start() {
	if ft.recovery {
		ft.takeSnapshot(0, false)
		ft.scheduleCkpt(ft.every)
	}
	ft.scheduleTimeCrashes(0)
}

// --- nil-safe accessors used from sim.go hot paths -----------------------

func (s *sim[V]) epochNow() int {
	if s.ft == nil {
		return 0
	}
	return s.ft.epoch
}

func (s *sim[V]) dead(id int) bool {
	return s.ft != nil && s.ft.crashed[id]
}

func (s *sim[V]) incOf(id int) int {
	if s.ft == nil {
		return 0
	}
	return s.ft.inc[id]
}

// slowAt returns the transient-slowdown factor for worker id at time t.
func (s *sim[V]) slowAt(id int, t float64) float64 {
	if s.ft == nil {
		return 1
	}
	return s.ft.inj.SlowFactor(id, t)
}

// --- crash / detect / rollback -------------------------------------------

// scheduleTimeCrashes schedules every not-yet-fired time-triggered crash as
// a control event in the current epoch; re-invoked after each rollback
// because the epoch bump invalidated the previous events.
func (ft *simFT[V]) scheduleTimeCrashes(from float64) {
	plan := ft.inj.Plan()
	e := ft.epoch
	for i, c := range plan.Crashes {
		if c.AfterUpdates > 0 {
			continue // polled in runUpdate
		}
		i, c := i, c
		at := c.At
		if at < from {
			at = from
		}
		ft.s.sched.At(at, prioCtrl, func() {
			if ft.epoch != e {
				return
			}
			if cc, ok := ft.inj.Take(i); ok {
				ft.crash(cc, ft.s.sched.Now())
			}
		})
	}
}

// crash kills worker c.Worker at time t: its volatile state is lost, every
// pending delivery/resume targeting it becomes a no-op, and — when the plan
// restarts it and recovery is on — detection and rollback are scheduled.
func (ft *simFT[V]) crash(c fault.Crash, t float64) {
	if ft.crashed[c.Worker] {
		return
	}
	w := ft.s.workers[c.Worker]
	ft.crashed[c.Worker] = true
	ft.nCrashed++
	ft.inc[c.Worker]++
	ft.s.crashes++
	w.traceRoundEnd()
	if w.tr != nil {
		w.tr.Mark(w.id, obs.MarkCrash, t)
	}
	if t > ft.s.end {
		ft.s.end = t
	}
	if !ft.recovery || c.Restart < 0 {
		return
	}
	e := ft.epoch
	td := t + ft.detect
	ft.s.sched.At(td, prioCtrl, func() {
		if ft.epoch != e {
			return
		}
		if w.tr != nil {
			w.tr.Mark(w.id, obs.MarkDetect, td)
			w.tr.SpanBegin(w.id, obs.PhaseRecovery, td)
		}
		tr := td + c.Restart
		ft.s.sched.At(tr, prioCtrl, func() {
			if ft.epoch != e {
				return
			}
			ft.rollback(tr)
			if w.tr != nil {
				w.tr.SpanEnd(w.id, obs.PhaseRecovery, tr)
			}
		})
	})
}

// checkDue polls the injector for an update-count (or overdue time) crash
// on worker w; called from runUpdate. Reports whether the worker died.
func (ft *simFT[V]) checkDue(w *simWorker[V]) bool {
	if ft.crashed[w.id] {
		return true
	}
	c, ok := ft.inj.TakeDue(w.id, w.metrics.Updates, w.now)
	if !ok {
		return false
	}
	ft.crash(c, w.now)
	return true
}

// --- checkpoints ---------------------------------------------------------

// scheduleCkpt arms the next periodic checkpoint. The chain stops when the
// event queue has drained (the run is over) and is restarted by rollback
// (whose epoch bump invalidated any pending link of the old chain). The
// interval self-clocks to at least twice the measured snapshot cost:
// checkpoints bill every worker a persistence penalty, and an interval
// smaller than that penalty would freeze the cluster — each worker's clock
// pushed past the next checkpoint before it can run a single update.
func (ft *simFT[V]) scheduleCkpt(at float64) {
	e := ft.epoch
	ft.s.sched.At(at, prioCtrl, func() {
		if ft.epoch != e {
			return
		}
		if ft.s.sched.Pending() == 0 {
			return // queue drained: the run ends after this event
		}
		next := ft.every
		if ft.nCrashed == 0 {
			cost := ft.takeSnapshot(ft.s.sched.Now(), true)
			if floor := 2 * cost; floor > next {
				next = floor
			}
		}
		ft.scheduleCkpt(ft.s.sched.Now() + next)
	})
}

// takeSnapshot freezes the world at time t and returns the largest
// per-worker cost billed. charge bills each worker the checkpoint cost
// (initial snapshot at t=0 is free: nothing to persist yet beyond loading
// state).
func (ft *simFT[V]) takeSnapshot(t float64, charge bool) float64 {
	s := ft.s
	snap := &clusterSnap[V]{
		t:         t,
		workers:   make([]workerSnap[V], len(s.workers)),
		idleV:     append([]bool(nil), s.idleV...),
		idleCount: s.idleCount,
	}
	for _, fl := range ft.flights {
		if !fl.delivered {
			snap.inflight = append(snap.inflight, fl)
		}
	}
	maxCost := 0.0
	for i, w := range s.workers {
		ws := &snap.workers[i]
		ws.psi = append([]V(nil), w.psi...)
		if cp, ok := any(w.prog).(ace.Checkpointer); ok {
			ws.aux = cp.SnapshotAux()
		}
		ws.active = w.active.Snapshot()
		ws.inBuf = append([]ace.Message[V](nil), w.inBuf...)
		ws.inFirst, ws.inLast, ws.inBatches = w.inFirst, w.inLast, w.inBatches
		ws.out = make([]outSnap[V], len(w.out))
		bytes := 0
		for j := range w.out {
			ws.out[j] = outSnap[V]{
				msgs:  append([]ace.Message[V](nil), w.out[j].msgs...),
				bytes: w.out[j].bytes,
			}
			bytes += w.out[j].bytes
		}
		ws.eta = w.eta
		ws.idle = w.idle
		if charge {
			// Persisting the fragment state costs one batch write plus the
			// serialized volume of Ψ and the pending buffers.
			for l := range w.psi {
				bytes += w.prog.Size(w.psi[l])
			}
			bytes += 4 * len(ws.active)
			c := s.cfg.Net.Model.BatchCPU + s.cfg.Net.Model.Beta*float64(bytes)
			w.penalty += c
			if c > maxCost {
				maxCost = c
			}
		}
		if w.tr != nil {
			w.tr.Mark(w.id, obs.MarkCkpt, t)
		}
	}
	ft.snap = snap
	if charge {
		s.checkpoints++
	}
	// Entries older than this snapshot can never be re-shipped again.
	ft.compactFlights()
	return maxCost
}

// compactFlights drops delivered registry entries.
func (ft *simFT[V]) compactFlights() {
	live := ft.flights[:0]
	for _, fl := range ft.flights {
		if !fl.delivered {
			live = append(live, fl)
		}
	}
	ft.flights = live
}

// --- rollback ------------------------------------------------------------

// rollback restores the whole cluster from the last snapshot at time t:
// every worker's functional state is rewound, in-flight batches captured by
// the snapshot are re-shipped with their remaining latency, dead workers
// are revived, and the checkpoint chain restarts. The virtual clock is not
// rewound — the gap between snapshot time and t is precisely the response
// time the fault costs.
func (ft *simFT[V]) rollback(t float64) {
	s := ft.s
	snap := ft.snap
	ft.epoch++
	for i := range ft.inc {
		ft.inc[i]++
	}
	// Restore workers.
	for i, w := range s.workers {
		ws := &snap.workers[i]
		copy(w.psi, ws.psi) // in place: w.ctx closed over this slice
		if cp, ok := any(w.prog).(ace.Checkpointer); ok && ws.aux != nil {
			cp.RestoreAux(ws.aux)
		}
		w.active.Reset(ws.active)
		w.inBuf = append(w.inBuf[:0], ws.inBuf...)
		w.inFirst, w.inLast, w.inBatches = ws.inFirst, ws.inLast, ws.inBatches
		for j := range w.out {
			o := &w.out[j]
			o.reset()
			o.msgs = append(o.msgs, ws.out[j].msgs...)
			o.bytes = ws.out[j].bytes
			for k, m := range o.msgs {
				o.index[m.V] = k
			}
		}
		w.touched = w.touched[:0]
		for j := range w.touchfl {
			w.touchfl[j] = false
			if j != w.id && len(w.out[j].msgs) > 0 {
				w.touchfl[j] = true
				w.touched = append(w.touched, j)
			}
		}
		w.eta = ws.eta
		w.idle = ws.idle
		w.resumeScheduled = false
		w.roundOpen = false
		// Restore cost: reloading the persisted state.
		bytes := 0
		for l := range w.psi {
			bytes += w.prog.Size(w.psi[l])
		}
		w.penalty += s.cfg.Net.Model.BatchCPU + s.cfg.Net.Model.Beta*float64(bytes)
		if ft.crashed[i] {
			ft.crashed[i] = false
			if w.tr != nil {
				w.tr.Mark(w.id, obs.MarkRestart, t)
			}
		}
	}
	ft.nCrashed = 0
	copy(s.idleV, snap.idleV)
	s.idleCount = snap.idleCount
	s.statusVer++ // force a full R1 status rescan everywhere
	s.recoveries++

	// Re-ship the in-flight batches with their remaining latency; FIFO
	// relative order within a link is preserved because snapshot order is
	// ship order and the per-link clamp re-applies.
	ft.flights = ft.flights[:0]
	for k := range s.lastArrival {
		delete(s.lastArrival, k)
	}
	for _, fl := range snap.inflight {
		at := t + (fl.arrival - snap.t)
		ft.reship(fl.from, fl.to, fl.batch, fl.bytes, at)
	}
	// Resume. Idle workers wake on delivery as usual.
	for _, w := range s.workers {
		if !w.idle {
			w.scheduleResumeAt(t)
		}
	}
	ft.scheduleTimeCrashes(t)
	ft.scheduleCkpt(t + ft.every)
}

// reship schedules a recovered in-flight batch, registering it again so a
// later snapshot can capture it.
func (ft *simFT[V]) reship(from, to int, batch []ace.Message[V], bytes int, at float64) {
	s := ft.s
	if prev, ok := s.lastArrival[[2]int{from, to}]; ok && at < prev {
		at = prev
	}
	s.lastArrival[[2]int{from, to}] = at
	fl := &flight[V]{from: from, to: to, batch: batch, bytes: bytes, arrival: at}
	ft.flights = append(ft.flights, fl)
	e, inc := ft.epoch, ft.inc[to]
	target := s.workers[to]
	s.sched.At(at, prioDeliver, func() {
		if ft.epoch != e || ft.inc[to] != inc {
			return
		}
		fl.delivered = true
		target.deliver(batch, at)
	})
}

// --- link faults ---------------------------------------------------------

// shipFaulty wraps sim.ship with per-batch link faults and the in-flight
// registry. Drop is lossless: the batch is retransmitted after the retry
// delay (reliable-transport recovery). Dup delivers the batch twice.
// Reorder adds delay without the per-link FIFO clamp, letting the batch
// overtake or be overtaken.
func (ft *simFT[V]) shipFaulty(from, to int, batch []ace.Message[V], bytes int, sentAt float64) float64 {
	s := ft.s
	fate := ft.inj.BatchFate(from, to)
	lat := s.cfg.Net.Latency(from, to, bytes)
	at := sentAt + lat
	switch {
	case fate.Drop:
		at += ft.inj.RetryDelay(2 * s.cfg.Net.Model.Alpha)
	case fate.Reorder:
		// Extra delay, FIFO clamp skipped below.
		at += 2 * s.cfg.Net.Model.Alpha
	}
	if !fate.Reorder {
		if prev, ok := s.lastArrival[[2]int{from, to}]; ok && at < prev {
			at = prev
		}
		s.lastArrival[[2]int{from, to}] = at
	}
	deliverAt := func(at float64) {
		fl := &flight[V]{from: from, to: to, batch: batch, bytes: bytes, arrival: at}
		if ft.recovery {
			ft.flights = append(ft.flights, fl)
		}
		e, inc := ft.epoch, ft.inc[to]
		target := s.workers[to]
		s.sched.At(at, prioDeliver, func() {
			if ft.epoch != e || ft.inc[to] != inc {
				return
			}
			fl.delivered = true
			target.deliver(batch, at)
		})
	}
	deliverAt(at)
	if fate.Dup {
		deliverAt(at + s.cfg.Net.Model.Alpha)
	}
	return at
}
