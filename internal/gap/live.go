package gap

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"argan/internal/ace"
	"argan/internal/graph"
	"argan/internal/obs"
)

// LiveConfig parameterizes the goroutine-based driver. The live driver
// executes the same ACE programs as the simulator under real concurrency:
// one goroutine per worker, channels as the interconnect, and a coordinator
// performing distributed termination detection from idle states and
// sent/received message counts.
type LiveConfig struct {
	// Mode must be an asynchronous discipline (ModeGAP, ModeAPGC or
	// ModeAPVC); the barrier disciplines are only meaningful under the
	// virtual-time driver.
	Mode Mode
	// CheckEvery is the number of update functions between indicator
	// checks (ξ⁺/ξ⁻ evaluation); it is the live analogue of the
	// granularity bound η. Default 256; ModeAPVC forces 1.
	CheckEvery int
	// ChannelCap is the per-worker mailbox capacity (default 1024).
	ChannelCap int
	// Tracer receives the run's event stream stamped with wall-clock
	// microseconds since the run start. nil disables tracing (one nil
	// check per event site). When set, worker goroutines also carry
	// per-phase runtime/pprof labels so CPU profiles attribute samples to
	// GAP phases; the worker label alone is applied unconditionally.
	Tracer obs.Tracer
}

func (c LiveConfig) withDefaults() (LiveConfig, error) {
	switch c.Mode {
	case ModeGAP, ModeAPGC, ModeAPVC:
	default:
		return c, fmt.Errorf("gap: live driver supports GAP/AP modes, not %v", c.Mode)
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 256
	}
	if c.Mode == ModeAPVC {
		c.CheckEvery = 1
	}
	if c.ChannelCap <= 0 {
		c.ChannelCap = 1024
	}
	return c, nil
}

// LiveMetrics summarizes a live run.
type LiveMetrics struct {
	WallTime time.Duration
	Updates  int64
	MsgsSent int64
	Batches  int64
	Rounds   int64
}

type liveBatch[V any] struct {
	msgs []ace.Message[V]
}

// liveCoord detects global quiescence: every worker idle and every sent
// message received.
type liveCoord struct {
	mu     sync.Mutex
	idle   []bool
	nIdle  int
	sent   int64
	recv   int64
	done   chan struct{}
	closed bool
}

func (c *liveCoord) report(id int, idle bool, sentDelta, recvDelta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idle[id] != idle {
		c.idle[id] = idle
		if idle {
			c.nIdle++
		} else {
			c.nIdle--
		}
	}
	c.sent += sentDelta
	c.recv += recvDelta
	if !c.closed && c.nIdle == len(c.idle) && c.sent == c.recv {
		c.closed = true
		close(c.done)
	}
}

// RunLive executes the program over the fragments with one goroutine per
// worker, returning the global result. Results are identical to the
// sequential fixpoint for programs with order-insensitive (monotone)
// aggregation.
func RunLive[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, cfg LiveConfig) (*Result[V], *LiveMetrics, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(frags) == 0 {
		return nil, nil, fmt.Errorf("gap: no fragments")
	}
	n := len(frags)
	chans := make([]chan liveBatch[V], n)
	for i := range chans {
		chans[i] = make(chan liveBatch[V], cfg.ChannelCap)
	}
	coord := &liveCoord{idle: make([]bool, n), done: make(chan struct{})}

	type outAcc struct {
		msgs  []ace.Message[V]
		index map[graph.VID]int
	}

	var wg sync.WaitGroup
	workers := make([]*liveWorker[V], n)
	var updates, msgsSent, batches, rounds atomic.Int64

	start := time.Now()
	for i := 0; i < n; i++ {
		w := &liveWorker[V]{id: i, frag: frags[i], prog: factory()}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := cfg.Tracer
			ts := func() float64 { return float64(time.Since(start)) / 1e3 }
			// CPU-profile attribution: the goroutine always carries its
			// worker id; phase labels are refreshed only when tracing is
			// on (SetGoroutineLabels allocates, and phase flips are hot).
			wid := strconv.Itoa(w.id)
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("worker", wid, "phase", "local_eval")))
			defer pprof.SetGoroutineLabels(context.Background())
			setPhase := func(string) {}
			if tr != nil {
				setPhase = func(p string) {
					pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
						pprof.Labels("worker", wid, "phase", p)))
				}
			}
			f := w.frag
			prog := w.prog
			prog.Setup(f, q)
			psi := make([]V, f.NumLocal())
			w.psi = psi
			var prio func(uint32) float64
			if p, ok := any(prog).(ace.Prioritizer[V]); ok {
				prio = func(l uint32) float64 { return p.Priority(psi[l]) }
			}
			active := newActiveSet(f.NumOwned(), prio)
			deps := prog.Deps()

			out := make([]outAcc, n)
			for j := range out {
				out[j] = outAcc{index: map[graph.VID]int{}}
			}
			// localSent/localRecv reset at every idle report (they feed the
			// termination detector); sentCum/recvCum are the monotone
			// variants the tracer reports as per-round counter deltas.
			var localSent, localRecv int64
			var sentCum, recvCum int64

			enqueue := func(peer int, g graph.VID, val V) {
				o := &out[peer]
				if k, ok := o.index[g]; ok {
					agg, _ := prog.Aggregate(o.msgs[k].Val, val)
					o.msgs[k].Val = agg
				} else {
					o.index[g] = len(o.msgs)
					o.msgs = append(o.msgs, ace.Message[V]{V: g, Val: val})
				}
			}
			activateDeps := func(lv uint32) {
				push := func(us []uint32) {
					for _, u := range us {
						if f.IsOwned(u) {
							active.Push(u)
						}
					}
				}
				switch deps {
				case ace.DepOut:
					push(f.InNeighbors(lv))
				case ace.DepBoth:
					push(f.InNeighbors(lv))
					push(f.OutNeighbors(lv))
				default:
					push(f.OutNeighbors(lv))
				}
			}
			ctx := ace.NewCtx(f, psi,
				func(l uint32, v V) { // Set
					old := psi[l]
					psi[l] = v
					if prog.Equal(old, v) || deps == ace.DepSelf {
						return
					}
					g := f.Global(l)
					switch deps {
					case ace.DepOut:
						for _, r := range f.ReplicasIn(l) {
							enqueue(int(r), g, v)
						}
					case ace.DepBoth:
						for _, r := range f.ReplicasOut(l) {
							enqueue(int(r), g, v)
						}
						for _, r := range f.ReplicasIn(l) {
							dup := false
							for _, r2 := range f.ReplicasOut(l) {
								if r2 == r {
									dup = true
									break
								}
							}
							if !dup {
								enqueue(int(r), g, v)
							}
						}
					default:
						for _, r := range f.ReplicasOut(l) {
							enqueue(int(r), g, v)
						}
					}
					activateDeps(l)
				},
				func(l uint32, d V) { // Send
					if f.IsOwned(l) {
						nv, ch := prog.Aggregate(psi[l], d)
						if ch {
							psi[l] = nv
							active.Push(l)
						}
						return
					}
					g := f.Global(l)
					enqueue(f.OwnerOf(g), g, d)
				},
				func(l uint32) {
					if f.IsOwned(l) {
						active.Push(l)
					}
				},
			)
			for l := uint32(0); int(l) < f.NumLocal(); l++ {
				v, act := prog.InitValue(f, l, q)
				psi[l] = v
				if act && f.IsOwned(l) {
					active.Push(l)
				}
			}
			if is, ok := any(prog).(ace.InitialSyncer); ok && is.InitialSync() {
				for l := uint32(0); int(l) < f.NumOwned(); l++ {
					g := f.Global(l)
					for _, r := range f.ReplicasOut(l) {
						enqueue(int(r), g, psi[l])
					}
					if f.Directed() && deps != ace.DepIn && deps != ace.DepSelf {
						for _, r := range f.ReplicasIn(l) {
							enqueue(int(r), g, psi[l])
						}
					}
				}
			}

			ingestBatch := func(b liveBatch[V]) {
				localRecv += int64(len(b.msgs))
				recvCum += int64(len(b.msgs))
				for _, m := range b.msgs {
					lv, ok := f.Local(m.V)
					if !ok {
						continue
					}
					nv, ch := prog.Aggregate(psi[lv], m.Val)
					if !ch {
						continue
					}
					psi[lv] = nv
					if deps == ace.DepSelf {
						if f.IsOwned(lv) {
							active.Push(lv)
						}
					} else {
						activateDeps(lv)
					}
				}
			}
			drain := func() int {
				got := 0
				for {
					select {
					case b := <-chans[w.id]:
						ingestBatch(b)
						got++
					default:
						return got
					}
				}
			}
			drainFn := drain
			flushAllInner := func() {
				for j := range out {
					if j == w.id || len(out[j].msgs) == 0 {
						continue
					}
					batch := liveBatch[V]{msgs: out[j].msgs}
					localSent += int64(len(batch.msgs))
					sentCum += int64(len(batch.msgs))
					msgsSent.Add(int64(len(batch.msgs)))
					batches.Add(1)
					out[j] = outAcc{index: map[graph.VID]int{}}
					for {
						select {
						case chans[j] <- batch:
						case <-coord.done:
							return
						default:
							// Peer mailbox full: keep draining our own so
							// the cluster cannot deadlock on mutual sends.
							if drainFn() == 0 {
								runtime.Gosched()
							}
							continue
						}
						break
					}
				}
			}
			// h_out spans wrap the whole flush sweep; the wrapper (not the
			// inner func) closes the span so the early return on a finished
			// run cannot leave it open.
			flushAll := flushAllInner
			if tr != nil {
				flushAll = func() {
					setPhase("h_out")
					tr.SpanBegin(w.id, obs.PhaseHout, ts())
					flushAllInner()
					tr.SpanEnd(w.id, obs.PhaseHout, ts())
					setPhase("local_eval")
				}
			}

			for {
				// One LocalEval round: ingest, iterate with periodic
				// indicator checks, flush.
				var sent0, recv0 int64
				if tr != nil {
					t0 := ts()
					tr.Sample(w.id, obs.GaugeMailbox, t0, float64(len(chans[w.id])))
					tr.SpanBegin(w.id, obs.PhaseLocalEval, t0)
					sent0, recv0 = sentCum, recvCum
				}
				drain()
				rounds.Add(1)
				if tr != nil {
					tr.Sample(w.id, obs.GaugeActive, ts(), float64(active.Len()))
				}
				steps := 0
				for !active.Empty() {
					v := active.Pop()
					prog.Update(ctx, v)
					updates.Add(1)
					steps++
					if steps%cfg.CheckEvery == 0 {
						// ξ⁺/ξ⁻ between steps: pick up fresh messages and
						// push accumulated ones.
						if drain() == 0 && cfg.Mode != ModeAPGC {
							if tr != nil {
								tr.Mark(w.id, obs.MarkR3, ts())
							}
							flushAll()
						}
					}
				}
				flushAll()
				if tr != nil {
					t1 := ts()
					tr.Count(w.id, obs.CounterUpdates, t1, int64(steps))
					tr.Count(w.id, obs.CounterMsgsSent, t1, sentCum-sent0)
					tr.Count(w.id, obs.CounterMsgsRecv, t1, recvCum-recv0)
					tr.SpanEnd(w.id, obs.PhaseLocalEval, t1)
					tr.Mark(w.id, obs.MarkIdle, t1)
				}
				// Idle transition: report and block for more input.
				coord.report(w.id, true, localSent, localRecv)
				localSent, localRecv = 0, 0
				select {
				case b := <-chans[w.id]:
					coord.report(w.id, false, 0, 0)
					if tr != nil {
						tr.Mark(w.id, obs.MarkBusy, ts())
					}
					ingestBatch(b)
				case <-coord.done:
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result[V]{Values: make([]V, frags[0].GlobalVertices())}
	for _, w := range workers {
		ctx := ace.NewCtx(w.frag, w.psi, nil, nil, nil)
		for l := uint32(0); int(l) < w.frag.NumOwned(); l++ {
			res.Values[w.frag.Global(l)] = w.prog.Output(ctx, l)
		}
	}
	res.Metrics.Converged = true
	res.Metrics.Mode = cfg.Mode
	m := &LiveMetrics{
		WallTime: wall,
		Updates:  updates.Load(),
		MsgsSent: msgsSent.Load(),
		Batches:  batches.Load(),
		Rounds:   rounds.Load(),
	}
	return res, m, nil
}

type liveWorker[V any] struct {
	id   int
	frag *graph.Fragment
	prog ace.Program[V]
	psi  []V
}
