package gap

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"argan/internal/ace"
	"argan/internal/fault"
	"argan/internal/graph"
	"argan/internal/mem"
	"argan/internal/obs"
)

// LiveConfig parameterizes the goroutine-based driver. The live driver
// executes the same ACE programs as the simulator under real concurrency:
// one goroutine per worker, channels as the interconnect, and a coordinator
// performing distributed termination detection from idle states and
// sent/received message counts.
type LiveConfig struct {
	// Mode must be an asynchronous discipline (ModeGAP, ModeAPGC or
	// ModeAPVC); the barrier disciplines are only meaningful under the
	// virtual-time driver.
	Mode Mode
	// CheckEvery is the number of update functions between indicator
	// checks (ξ⁺/ξ⁻ evaluation); it is the live analogue of the
	// granularity bound η. Default 256; ModeAPVC forces 1.
	CheckEvery int
	// ChannelCap is the per-worker mailbox capacity (default 1024).
	ChannelCap int
	// Tracer receives the run's event stream stamped with wall-clock
	// microseconds since the run start. nil disables tracing (one nil
	// check per event site). When set, worker goroutines also carry
	// per-phase runtime/pprof labels so CPU profiles attribute samples to
	// GAP phases; the worker label alone is applied unconditionally.
	Tracer obs.Tracer
	// Faults injects worker crashes, transient slowdowns and per-link
	// batch faults into the run; nil is fault-free. Plan times (Crash.At,
	// Slowdown fields, Retry) are wall-clock milliseconds under the live
	// driver. Crashed workers are real goroutine exits; when the plan
	// schedules a restart the monitor detects the death by heartbeat
	// timeout and rolls the cluster back to its last consistent snapshot.
	Faults *fault.Plan
	// NoRecover disables checkpointing and recovery even when the plan's
	// crashes carry restart delays: a crashed worker then stays dead and
	// the watchdog eventually fails the run with a descriptive error.
	NoRecover bool
	// Recovery selects the strategy used to survive crashes:
	// RecoveryGlobal ("" or "global", the default) takes stop-and-sync
	// consistent snapshots and rolls the whole cluster back; RecoveryLocal
	// ("local") takes uncoordinated per-worker logging checkpoints and
	// repairs only the crashed worker (survivors keep computing, the
	// cluster epoch is never bumped). Local recovery requires the program
	// to declare ace.IdempotentAggregator or ace.Inverter; otherwise the
	// run silently falls back to global (see LiveMetrics.Recovery for the
	// effective strategy).
	Recovery string
	// CheckpointEvery is the interval between consistent cluster
	// snapshots when recovery is enabled. Default 50ms.
	CheckpointEvery time.Duration
	// HeartbeatTimeout declares a worker dead when its heartbeat is older
	// than this. Default 250ms. Workers beat at every indicator check,
	// idle-wait tick and send retry, so only an exited goroutine (or a
	// pathologically long single Update call) goes stale.
	HeartbeatTimeout time.Duration
	// Watchdog fails the run with a descriptive error when no worker
	// reports, updates or sends for this long, so termination detection
	// can never hang silently (e.g. a permanently dead worker holding
	// unacknowledged messages). Default 30s; < 0 disables.
	Watchdog time.Duration
	// IntraParallelism shards each worker's f_step sweep across a small
	// goroutine pool (intra-worker parallel local evaluation). Every wave
	// of updates reads the pre-wave state, per-shard effects are buffered,
	// and the buffers merge in fixed shard order, so results are a pure
	// function of the work list — independent of the shard count and of
	// goroutine scheduling. 0 (the default) resolves to
	// GOMAXPROCS/NumWorkers, min 1; 1 evaluates serially on the worker
	// goroutine (the classic pop-loop). Values > 1 apply only to programs
	// that declare ace.ShardSafe; others fall back to serial evaluation.
	IntraParallelism int
	// LegacyBatches restores the pre-pooling message pipeline (a fresh
	// map-indexed out-accumulator per flush, slice copies, map-based
	// global→local resolution on ingest). Benchmarks use it as the
	// baseline the pooled pipeline is measured against.
	LegacyBatches bool
	// NoCombine disables outgoing message coalescing in the pooled
	// pipeline (append-only accumulators); isolates the per-algorithm
	// combiner's contribution in benchmarks.
	NoCombine bool
	// Mem attaches a memory governor to the run: the recovery logs, local
	// checkpoints, batch pool, reorder buffers and fragment edge payloads
	// register with it, and the driver degrades through the governor's
	// ladder (spill, forced checkpoints, sender backpressure, edge
	// streaming) instead of growing without bound. nil (the default) leaves
	// the run ungoverned; a governor with budget <= 0 measures only. One
	// governor serves one run — do not reuse across runs.
	Mem *mem.Governor
	// LogBytesSoftCap bounds the bytes of sender-side log entries retained
	// toward any single receiver: past it the monitor forces the slowest
	// receiver to checkpoint out of turn so its peers can prune. 0 resolves
	// to a quarter of the governor's budget (when one is attached and
	// bounded); < 0 disables the cap.
	LogBytesSoftCap int64
	// Health, when non-nil, receives per-tick control-plane health
	// snapshots (worker liveness, watchdog progress age, governor stage)
	// for the telemetry plane's /healthz and /readyz endpoints. One tracker
	// may span many runs — arganrun reuses it across soak iterations.
	Health *HealthTracker
	// Cancel, when non-nil, aborts the run as soon as it is closed: the
	// monitor fails the run with ErrCanceled, every worker goroutine exits
	// at its next safe point, and RunLive returns. This is how a job
	// service propagates client cancellations and deadlines into the
	// driver's control plane.
	Cancel <-chan struct{}
	// NoEdgeSpill keeps fragment edge partitions out of the governed set:
	// they are neither charged to the budget nor paged to disk at
	// StageStream. Required when the fragments are shared with concurrent
	// runs (a multi-tenant service over one frozen dataset): SpillEdges
	// mutates the fragment, which would race with — and corrupt — every
	// other run reading it.
	NoEdgeSpill bool
}

// ErrCanceled is the failure RunLive returns when LiveConfig.Cancel closes
// before the run converges. Test with errors.Is: deadline and cancellation
// wrappers preserve it.
var ErrCanceled = errors.New("gap: run canceled")

// ErrWorkerPanic is the failure RunLive returns when an Update function (or
// other worker-goroutine code) panics. The panic is contained to the run —
// the process survives — so one tenant's broken program cannot take down its
// neighbors. errors.Is-able; the message carries the worker and panic value.
var ErrWorkerPanic = errors.New("gap: worker panicked")

func (c LiveConfig) withDefaults() (LiveConfig, error) {
	switch c.Mode {
	case ModeGAP, ModeAPGC, ModeAPVC:
	default:
		return c, fmt.Errorf("gap: live driver supports GAP/AP modes, not %v", c.Mode)
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 256
	}
	if c.Mode == ModeAPVC {
		c.CheckEvery = 1
	}
	if c.ChannelCap <= 0 {
		c.ChannelCap = 1024
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 50 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 250 * time.Millisecond
	}
	if c.Watchdog == 0 {
		c.Watchdog = 30 * time.Second
	}
	switch c.Recovery {
	case "":
		c.Recovery = RecoveryGlobal
	case RecoveryGlobal, RecoveryLocal:
	default:
		return c, fmt.Errorf("gap: unknown recovery strategy %q (want %q or %q)",
			c.Recovery, RecoveryGlobal, RecoveryLocal)
	}
	if c.LogBytesSoftCap == 0 && c.Mem.Budget() > 0 {
		c.LogBytesSoftCap = c.Mem.Budget() / 4
	}
	if c.LogBytesSoftCap < 0 {
		c.LogBytesSoftCap = 0
	}
	return c, nil
}

// LiveMetrics summarizes a live run.
type LiveMetrics struct {
	WallTime time.Duration
	Updates  int64
	MsgsSent int64
	Batches  int64
	Rounds   int64

	// Retransmits counts dropped batches redelivered by the async
	// retransmit path (zero when the plan injects no drops).
	Retransmits int64

	// Fault-tolerance accounting (zero on fault-free runs).
	Crashes     int64
	Recoveries  int64
	Checkpoints int64

	// Recovery is the effective strategy the run used (RecoveryGlobal or
	// RecoveryLocal); it differs from the configured one when the program
	// lacks the hooks local recovery needs.
	Recovery string
	// Epochs counts global rollbacks (cluster epoch bumps). Localized
	// recoveries never bump the epoch, so this stays zero in local mode.
	Epochs int64
	// Replayed counts messages re-delivered from the sender-side logs to
	// restored workers (local mode only).
	Replayed int64
	// RecoveryMS is the total wall-clock spent between failure detection
	// and worker respawn, summed over recoveries (local mode only; global
	// recoveries park the whole cluster instead).
	RecoveryMS float64

	// Memory-governance accounting (zero when no governor is attached).
	MemPeakBytes     int64 // governor high-water mark of accounted + injected bytes
	SpilledBytes     int64 // cumulative bytes written to the spill tier
	ReplayedFromDisk int64 // replayed messages read back from spilled log entries
	ForcedCkpts      int64 // checkpoints forced by the retention cap / pressure ladder
	Throttles        int64 // sender flushes delayed by backpressure
	EdgeSpills       int64 // fragments whose edge partitions were paged to disk
	EtaReseeds       int64 // per-worker granularity reseeds after recovery
	LogPeakBytes     int64 // high-water retained bytes across the message log
}

// liveEnvelope is one batch in flight. The epoch tags which incarnation of
// the cluster sent it: a global rollback bumps the epoch, and receivers
// silently discard (without counting) envelopes from before it. Under the
// exactly-once layer (link faults or local recovery) the envelope also
// carries the sender id, the sender's incarnation and a per-link sequence
// number for dedup, reordering and replay.
type liveEnvelope[V any] struct {
	epoch int32
	from  int32
	inc   int32
	seq   uint64
	msgs  []ace.Message[V]
}

// liveCoord detects global quiescence: every worker idle and every sent
// message received. It also carries the run's failure slot (watchdog or
// internal errors) and a progress counter the watchdog samples.
type liveCoord struct {
	mu       sync.Mutex
	idle     []bool
	nIdle    int
	sent     int64
	recv     int64
	done     chan struct{}
	closed   bool
	err      error
	progress int64 // bumped on every report; a watchdog progress signal

	// Local recovery counts transport events in crash-safe atomics bumped
	// at ship/drain time instead of worker-local deltas: a crashed
	// goroutine's unreported deltas would unbalance the ledger forever
	// (global mode escapes that by resetting the counts on rollback; local
	// mode never resets). Ships are counted before the envelope becomes
	// visible, so asent >= arecv whenever a message is in flight and
	// quiescence cannot close early.
	atomicCnt    bool
	asent, arecv atomic.Int64
}

func newLiveCoord(n int) *liveCoord {
	c := &liveCoord{idle: make([]bool, n), done: make(chan struct{})}
	if n == 0 {
		// Zero workers are vacuously quiescent.
		c.closed = true
		close(c.done)
	}
	return c
}

func (c *liveCoord) report(id int, idle bool, sentDelta, recvDelta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.progress++
	if c.idle[id] != idle {
		c.idle[id] = idle
		if idle {
			c.nIdle++
		} else {
			c.nIdle--
		}
	}
	c.sent += sentDelta
	c.recv += recvDelta
	sent, recv := c.sent, c.recv
	if c.atomicCnt {
		sent, recv = c.asent.Load(), c.arecv.Load()
	}
	if !c.closed && c.nIdle == len(c.idle) && sent == recv {
		c.closed = true
		close(c.done)
	}
}

// claimBusy marks a worker busy from outside its goroutine (the monitor
// claims a dead worker before restoring it, so quiescence cannot close over
// half-restored state). Returns false when the run already ended — the
// pre-crash converged state is then final and recovery must not touch it.
func (c *liveCoord) claimBusy(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if c.idle[id] {
		c.idle[id] = false
		c.nIdle--
	}
	c.progress++
	return true
}

// fail aborts the run with err; the first failure wins and termination
// detection is bypassed.
func (c *liveCoord) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.err = err
	c.closed = true
	close(c.done)
}

func (c *liveCoord) failure() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// reset re-arms the detector after a rollback: every worker busy, message
// accounting zeroed (in-flight pre-rollback envelopes are discarded by
// receivers without being counted). Returns false if the run already ended.
func (c *liveCoord) reset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	for i := range c.idle {
		c.idle[i] = false
	}
	c.nIdle = 0
	c.sent, c.recv = 0, 0
	c.progress++
	return true
}

func (c *liveCoord) counts() (sent, recv int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.atomicCnt {
		return c.asent.Load(), c.arecv.Load()
	}
	return c.sent, c.recv
}

func (c *liveCoord) status() (idle, total int, sent, recv, progress int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sent, recv = c.sent, c.recv
	if c.atomicCnt {
		sent, recv = c.asent.Load(), c.arecv.Load()
	}
	return c.nIdle, len(c.idle), sent, recv, c.progress
}

// liveDriver holds one RunLive invocation's shared state.
type liveDriver[V any] struct {
	cfg    LiveConfig
	n      int
	chans  []chan liveEnvelope[V]
	coord  *liveCoord
	ctrl   *liveCtrl
	states []*liveState[V]
	snaps  []liveSnap[V]
	start  time.Time
	wg     sync.WaitGroup

	inj        *fault.Injector
	hasCrashes bool
	hasLink    bool
	hasSlow    bool
	recover    bool
	beatEvery  time.Duration
	retrySleep time.Duration

	pool   *batchPool[V]
	pooled bool // recycle batches through the pool (off under LegacyBatches)
	shards int  // effective intra-worker shard count (1 = serial sweep)

	// Exactly-once / localized-recovery plumbing (see liverecover.go).
	// seqOn stamps envelopes with (inc, seq) and routes drains through the
	// dedup layer; localRec additionally logs sends, takes uncoordinated
	// checkpoints and recovers crashed workers without a global rollback.
	// diag maintains the per-worker transport counters the watchdog prints.
	recovery   string // effective strategy (RecoveryGlobal / RecoveryLocal)
	seqOn      bool
	localRec   bool
	diag       bool
	mlog       *msgLog[V]
	localMu    sync.Mutex
	localSnaps []localSnap[V]
	stableSent []atomic.Uint64 // [from*n+to] sender's checkpointed send seq
	stableRecv []atomic.Uint64 // [recv*n+from] receiver's checkpointed cursor
	snapExpInc []atomic.Int32  // [recv*n+from] expInc inside the published snapshot
	incOf      []atomic.Int32
	rollMu     sync.Mutex
	rollHist   [][]rollEntry
	noticeMu   sync.Mutex
	noticeQ    [][]rollNotice
	noticeFlag []atomic.Bool
	acksOut    atomic.Int64
	ckptReq    []atomic.Bool
	ckptNext   int             // monitor-only round-robin pointer
	recState   []uint8         // monitor-only: 0 none, 1 staged
	detectAt   []time.Duration // monitor-only: failure detection time
	wsent      []atomic.Int64
	wrecv      []atomic.Int64
	wacked     []atomic.Int64
	replayed   atomic.Int64
	recoveryNS atomic.Int64

	// Memory governance (see livespill.go). gov is nil on ungoverned runs;
	// every accounting site is nil-safe.
	gov          *mem.Governor
	logCap       int64
	logPressure  atomic.Bool  // some receiver's retained log exceeds logCap
	vSize        int64        // encoded bytes of one V (estimate when non-fixed)
	wireEst      int64        // accounted bytes per logged/buffered message
	snapSp       *mem.Spiller // checkpoint pages (nil = ckpt spilling off)
	fragAcct     *mem.Account
	ckptAcct     *mem.Account
	ckptBytes    []int64 // resident cost of each worker's current snapshot
	edgeSpillReq []atomic.Bool
	ckEvery      []atomic.Int32 // per-worker effective CheckEvery (η reseed)
	forcedCkpts  atomic.Int64
	throttles    atomic.Int64
	edgeSpills   atomic.Int64
	etaReseeds   atomic.Int64
	replayedDisk atomic.Int64

	updates, msgsSent, batches, rounds atomic.Int64
	crashes, recoveries, checkpoints   atomic.Int64
	retransmits                        atomic.Int64
	updCount                           []atomic.Int64 // per-worker, for crash triggers
}

const (
	liveParkPoll    = 50 * time.Microsecond
	liveSendBackoff = 50 * time.Microsecond
	liveSendBackMax = 2 * time.Millisecond
	// liveThrottleSleep is the per-flush backpressure pause applied to
	// senders at StageThrottle and beyond.
	liveThrottleSleep = 200 * time.Microsecond
)

// RunLive executes the program over the fragments with one goroutine per
// worker, returning the global result. Results are identical to the
// sequential fixpoint for programs with order-insensitive (monotone)
// aggregation. When cfg.Faults schedules crashes with restarts, the run
// survives them via consistent snapshots and global rollback.
func RunLive[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, cfg LiveConfig) (*Result[V], *LiveMetrics, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(frags) == 0 {
		return nil, nil, errNoFragments
	}
	n := len(frags)
	d := &liveDriver[V]{cfg: cfg, n: n}
	d.hasCrashes = cfg.Faults.HasCrashes()
	d.hasLink = cfg.Faults.HasLinkFaults()
	d.hasSlow = cfg.Faults != nil && len(cfg.Faults.Slowdowns) > 0
	if !cfg.Faults.Empty() {
		d.inj = fault.NewInjector(cfg.Faults)
		d.retrySleep = time.Duration(d.inj.RetryDelay(1) * float64(time.Millisecond))
	}
	if d.hasCrashes && !cfg.NoRecover {
		for _, c := range cfg.Faults.Crashes {
			if c.Restart >= 0 {
				d.recover = true
				break
			}
		}
	}
	d.beatEvery = 10 * time.Millisecond
	if d.hasCrashes && cfg.HeartbeatTimeout/5 < d.beatEvery {
		d.beatEvery = cfg.HeartbeatTimeout / 5
	}
	if d.beatEvery < 200*time.Microsecond {
		d.beatEvery = 200 * time.Microsecond
	}

	d.chans = make([]chan liveEnvelope[V], n)
	for i := range d.chans {
		d.chans[i] = make(chan liveEnvelope[V], cfg.ChannelCap)
	}
	d.coord = newLiveCoord(n)
	d.ctrl = newLiveCtrl(n)
	d.updCount = make([]atomic.Int64, n)
	d.pool = &batchPool[V]{}
	d.pooled = !cfg.LegacyBatches
	tune := liveTuning{legacy: cfg.LegacyBatches, noCombine: cfg.NoCombine}
	d.states = make([]*liveState[V], n)
	for i := range d.states {
		d.states[i] = newLiveStateWith(i, frags[i], factory(), q, d.pool, tune)
	}
	d.shards = resolveShards(cfg.IntraParallelism, n, d.states[0].prog)

	// Recovery strategy and the exactly-once layer. Local recovery needs a
	// program the protocol can repair survivors of (idempotent aggregation
	// or an inverter); otherwise fall back to global rollback. The dedup
	// layer itself is also required under link faults regardless of
	// strategy — dup/reorder fates double- and cross-deliver batches, which
	// only idempotent programs tolerate bare.
	capable, invert := recoveryHooks(d.states[0].prog)
	d.recovery = cfg.Recovery
	if d.recovery == RecoveryLocal && !capable {
		d.recovery = RecoveryGlobal
	}
	d.localRec = d.recover && d.recovery == RecoveryLocal
	d.seqOn = d.hasLink || d.localRec
	d.diag = d.hasCrashes || d.seqOn
	if d.seqOn {
		if !d.localRec {
			invert = nil // undo logs only serve localized rollback notices
		}
		for i := range d.states {
			d.states[i].rs = newRecoverState[V](n, invert)
		}
	}
	if d.diag {
		d.wsent = make([]atomic.Int64, n)
		d.wrecv = make([]atomic.Int64, n)
		d.wacked = make([]atomic.Int64, n)
	}
	switch {
	case d.localRec:
		d.coord.atomicCnt = true
		d.mlog = newMsgLog[V](n)
		d.stableSent = make([]atomic.Uint64, n*n)
		d.stableRecv = make([]atomic.Uint64, n*n)
		d.snapExpInc = make([]atomic.Int32, n*n)
		d.incOf = make([]atomic.Int32, n)
		d.rollHist = make([][]rollEntry, n)
		d.noticeQ = make([][]rollNotice, n)
		d.noticeFlag = make([]atomic.Bool, n)
		d.ckptReq = make([]atomic.Bool, n)
		d.recState = make([]uint8, n)
		d.detectAt = make([]time.Duration, n)
		// Checkpoint 0: every worker's freshly initialized state, so a
		// crash before its first periodic checkpoint restores to the start.
		d.localSnaps = make([]localSnap[V], n)
		for i := range d.states {
			st := d.states[i]
			snap := localSnap[V]{
				valid:  true,
				base:   captureLive(st),
				expInc: make([]int32, n),
				bounds: make([][]incBound, n),
			}
			if st.rs.undo != nil {
				snap.undo = make([][]undoRec[V], n)
			}
			d.localSnaps[i] = snap
		}
	case d.recover:
		// Snapshot 0: the freshly initialized cluster, so a crash before
		// the first periodic checkpoint still has a rollback target.
		d.snaps = make([]liveSnap[V], n)
		for i := range d.states {
			d.snaps[i] = captureLive(d.states[i])
		}
	}

	// Memory governance: size the wire estimates and register the governed
	// components. Accounting sites are nil-safe, so the ungoverned default
	// path pays one nil check per site.
	d.gov = cfg.Mem
	d.logCap = cfg.LogBytesSoftCap
	wire := msgWireSize[V]()
	d.wireEst = msgWireEstimate
	if wire > 0 {
		d.wireEst = int64(wire)
	}
	d.vSize = 16
	if v := binary.Size(*new(V)); v > 0 {
		d.vSize = int64(v)
	}
	if d.gov != nil {
		d.pool.acct = d.gov.Account("pool")
		d.pool.wire = d.wireEst
		if !cfg.NoEdgeSpill {
			d.fragAcct = d.gov.Account("edges")
			var resident int64
			for _, f := range frags {
				resident += f.EdgesResidentBytes()
			}
			d.fragAcct.Add(resident)
			d.edgeSpillReq = make([]atomic.Bool, n)
		}
		if d.seqOn {
			for i := range d.states {
				d.states[i].rs.acct = d.gov.Account("robuf")
				d.states[i].rs.wire = d.wireEst
			}
		}
	}
	if d.localRec {
		d.ckEvery = make([]atomic.Int32, n)
		for i := range d.ckEvery {
			d.ckEvery[i].Store(int32(cfg.CheckEvery))
		}
		if d.gov != nil || d.logCap > 0 {
			d.mlog.configure(d.gov, wire, d.logCap)
		}
		if d.gov != nil {
			d.ckptAcct = d.gov.Account("ckpt")
			d.ckptBytes = make([]int64, n)
			for i := range d.localSnaps {
				c := snapResidentBytes(&d.localSnaps[i].base, d.vSize, d.wireEst)
				d.ckptAcct.Add(c)
				d.ckptBytes[i] = c
			}
			if d.gov.Budget() > 0 && wire > 0 {
				if sp, err := d.gov.NewSpiller("ckpt"); err == nil {
					d.snapSp = sp
				}
			}
		}
	}

	cfg.Health.runStarted(n, d.recovery, cfg.Watchdog)
	d.start = nowFn()
	d.wg.Add(1)
	go d.monitor()
	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.worker(d.states[i], 0)
	}
	d.wg.Wait()
	wall := sinceFn(d.start)
	if err := d.coord.failure(); err != nil {
		cfg.Health.runEnded(err)
		return nil, nil, err
	}
	cfg.Health.runEnded(nil)

	res := &Result[V]{
		Values: make([]V, frags[0].GlobalVertices()),
		Psi:    make([]V, frags[0].GlobalVertices()),
	}
	for _, st := range d.states {
		st.outputs(res.Values)
		st.finalPsi(res.Psi)
	}
	res.Metrics.Converged = true
	res.Metrics.Mode = cfg.Mode
	res.Metrics.Crashes = d.crashes.Load()
	res.Metrics.Recoveries = d.recoveries.Load()
	res.Metrics.Checkpoints = d.checkpoints.Load()
	m := &LiveMetrics{
		WallTime:    wall,
		Updates:     d.updates.Load(),
		MsgsSent:    d.msgsSent.Load(),
		Batches:     d.batches.Load(),
		Rounds:      d.rounds.Load(),
		Retransmits: d.retransmits.Load(),
		Crashes:     d.crashes.Load(),
		Recoveries:  d.recoveries.Load(),
		Checkpoints: d.checkpoints.Load(),
		Recovery:    d.recovery,
		Epochs:      int64(d.ctrl.epoch.Load()),
		Replayed:    d.replayed.Load(),
		RecoveryMS:  float64(d.recoveryNS.Load()) / 1e6,

		MemPeakBytes:     d.gov.Peak(),
		SpilledBytes:     d.gov.SpillWritten(),
		ReplayedFromDisk: d.replayedDisk.Load(),
		ForcedCkpts:      d.forcedCkpts.Load(),
		Throttles:        d.throttles.Load(),
		EdgeSpills:       d.edgeSpills.Load(),
		EtaReseeds:       d.etaReseeds.Load(),
	}
	if d.mlog != nil {
		_, _, peak := d.mlog.bytes()
		m.LogPeakBytes = peak
	}
	return res, m, nil
}

// worker runs one incarnation of worker st.id at the given epoch. A
// restarted worker is a fresh call with a bumped epoch over the restored
// state.
func (d *liveDriver[V]) worker(st *liveState[V], myEpoch int32) {
	defer d.wg.Done()
	// Panic containment: an Update function that panics fails the run (first
	// failure wins) instead of killing the process, so a service can
	// quarantine the one job whose program is broken while its neighbors
	// keep running. Registered after wg.Done, so the waitgroup still drains.
	defer func() {
		if r := recover(); r != nil {
			d.coord.fail(fmt.Errorf("%w: worker %d: %v\n%s", ErrWorkerPanic, st.id, r, debug.Stack()))
		}
	}()
	cfg := d.cfg
	id := st.id
	tr := cfg.Tracer
	ts := func() float64 { return float64(sinceFn(d.start)) / 1e3 }
	nowMS := func() float64 { return float64(sinceFn(d.start)) / 1e6 }

	// CPU-profile attribution: the goroutine always carries its worker id;
	// phase labels are refreshed only when tracing is on
	// (SetGoroutineLabels allocates, and phase flips are hot).
	wid := strconv.Itoa(id)
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("worker", wid, "phase", "local_eval")))
	defer pprof.SetGoroutineLabels(context.Background())
	setPhase := func(string) {}
	if tr != nil {
		setPhase = func(p string) {
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("worker", wid, "phase", p)))
		}
	}

	// localSent/localRecv reset at every report (they feed the termination
	// detector); sentCum/recvCum are the monotone variants the tracer
	// reports as per-round counter deltas.
	var localSent, localRecv int64
	var sentCum, recvCum int64
	lastIdle := false
	var hold [][]ace.Message[V] // reorder fault: batches held past FIFO order
	if d.hasLink {
		hold = make([][]ace.Message[V], d.n)
	}
	var ev *waveEval[V] // sharded local evaluation (IntraParallelism > 1)
	if d.shards > 1 {
		ev = newWaveEval(st, d.shards)
		if tr != nil {
			ev.tr, ev.ts, ev.id = tr, ts, id
		}
	}

	beat := func() { d.ctrl.beats[id].Store(int64(sinceFn(d.start))) }
	beat()

	// crashed fires any due crash from the plan: the goroutine stops
	// beating and exits, exactly like a lost process. It reports nothing
	// to the coordinator — detection is genuinely heartbeat-based.
	crashed := func() bool {
		if !d.hasCrashes {
			return false
		}
		c, ok := d.inj.TakeDue(id, d.updCount[id].Load(), nowMS())
		if !ok {
			return false
		}
		d.crashes.Add(1)
		if tr != nil {
			tr.Mark(id, obs.MarkCrash, ts())
		}
		if c.Panic {
			// Rogue-program fault: blow up on the worker goroutine instead
			// of exiting cleanly. The containment guard converts it into a
			// run failure (ErrWorkerPanic) — the fault plan's witness that a
			// panicking tenant is quarantined, not fatal to the process.
			panic(fmt.Sprintf("fault: injected panic on worker %d", id))
		}
		d.ctrl.noteCrash(id, c.Restart)
		return true
	}

	// Batches arriving from the transport are owned by this worker once
	// received: after h_in they are recycled into the driver's pool (the
	// senders' takeOut draws replacements from it), closing the
	// zero-allocation loop. Legacy mode skips recycling to stay a faithful
	// pre-pooling baseline. Every drained envelope is counted as received —
	// even ones the exactly-once layer then drops or buffers — because the
	// termination ledger balances transport deliveries, not applications.
	ingest := func(env liveEnvelope[V]) {
		k := int64(len(env.msgs))
		if d.coord.atomicCnt {
			d.coord.arecv.Add(k)
		} else {
			localRecv += k
		}
		recvCum += k
		if d.diag {
			d.wrecv[id].Add(k)
		}
		if st.rs != nil {
			st.seqIngest(env, d.pool, d.pooled)
			return
		}
		st.ingest(env.msgs)
		if d.pooled {
			d.pool.put(env.msgs)
		}
	}
	drain := func() int {
		got := 0
		for {
			select {
			case env := <-d.chans[id]:
				if env.epoch != myEpoch {
					// Pre-rollback leftover: discard uncounted.
					if d.pooled {
						d.pool.put(env.msgs)
					}
					continue
				}
				ingest(env)
				got++
			default:
				return got
			}
		}
	}

	// stamp wraps a batch for the wire; under the exactly-once layer it
	// draws the next per-link sequence number and (in local mode) retains a
	// copy in the sender-side log before the batch ever becomes visible.
	stamp := func(j int, msgs []ace.Message[V]) liveEnvelope[V] {
		env := liveEnvelope[V]{epoch: myEpoch, from: int32(id), msgs: msgs}
		if rs := st.rs; rs != nil {
			rs.sendSeq[j]++
			env.seq = rs.sendSeq[j]
			env.inc = rs.myInc
			if d.mlog != nil {
				d.mlog.append(id, j, env.seq, msgs)
			}
		}
		return env
	}
	// countSent books a shipped envelope. In local mode the count lands in
	// the coordinator's crash-safe atomics before the envelope is inserted,
	// so quiescence can never close over an uncounted in-flight message.
	countSent := func(k int64) {
		if d.coord.atomicCnt {
			d.coord.asent.Add(k)
		} else {
			localSent += k
		}
		sentCum += k
		d.msgsSent.Add(k)
		d.batches.Add(1)
		if d.diag {
			d.wsent[id].Add(k)
		}
	}

	// send ships one stamped envelope to peer j. A full peer mailbox (the
	// peer may be dead) is retried with exponential backoff while draining
	// our own mailbox so mutual sends cannot deadlock; a global recovery in
	// progress drops the batch (the rollback re-derives it). While blocked,
	// the worker keeps servicing rollback notices — a survivor wedged on a
	// dead peer's full mailbox must still ack, or local recovery would
	// deadlock.
	send := func(j int, env liveEnvelope[V]) {
		if len(env.msgs) == 0 {
			return
		}
		countSent(int64(len(env.msgs)))
		backoff := liveSendBackoff
		for {
			if d.ctrl.phase.Load() == ctrlRecover {
				return
			}
			select {
			case d.chans[j] <- env:
				return
			case <-d.coord.done:
				return
			default:
			}
			if d.localRec {
				d.drainNotices(st)
			}
			if drain() == 0 {
				beat()
				time.Sleep(backoff)
				if backoff < liveSendBackMax {
					backoff *= 2
				}
			}
		}
	}

	// pauseCheck parks the worker while the monitor runs a checkpoint or a
	// recovery; returns true when the run is over. During checkpoint parks
	// the worker keeps draining and reporting (the snapshot barrier needs
	// global sent==recv); during recovery parks it must not touch state —
	// the monitor is rewriting it. Leaving a park with a bumped epoch
	// means the cluster rolled back under us: message accounting restarts
	// from zero and held batches are dropped (the replay re-derives them).
	pauseCheck := func() bool {
		// A closed run (failure, cancellation, or quiescence declared while
		// we computed) ends the incarnation at the next check: cancellation
		// latency is one CheckEvery wave, not the rest of the active set.
		select {
		case <-d.coord.done:
			return true
		default:
		}
		if d.ctrl.phase.Load() == ctrlRun {
			return false
		}
		if d.ctrl.phase.Load() == ctrlCkpt {
			// Held (reordered) batches live outside the snapshot; flush
			// them now so the checkpoint never strands a message.
			for j := range hold {
				if len(hold[j]) > 0 {
					hb := hold[j]
					hold[j] = nil
					send(j, stamp(j, hb))
				}
			}
		}
		d.ctrl.enterPark()
		for d.ctrl.phase.Load() != ctrlRun {
			select {
			case <-d.coord.done:
				d.ctrl.exitPark()
				return true
			default:
			}
			if d.ctrl.phase.Load() == ctrlCkpt {
				if drain() > 0 {
					lastIdle = false
				}
				if localSent != 0 || localRecv != 0 {
					d.coord.report(id, lastIdle, localSent, localRecv)
					localSent, localRecv = 0, 0
				}
			}
			beat()
			time.Sleep(liveParkPoll)
		}
		d.ctrl.exitPark()
		if e := d.ctrl.epoch.Load(); e != myEpoch {
			myEpoch = e
			localSent, localRecv = 0, 0
			lastIdle = false
			for j := range hold {
				hold[j] = nil
			}
		}
		return false
	}

	// flushAllInner ships every non-empty out-accumulator, routing each
	// batch through its drawn link fate when link faults are on. "Drop" is
	// lossless: the transport retransmits after the retry delay, so the
	// batch arrives late rather than never (the programs are not assumed
	// idempotent against true loss). "Reorder" holds the batch back until
	// a later batch to the same peer has passed it.
	flushAllInner := func(final bool) {
		for j := 0; j < d.n; j++ {
			if j == id {
				continue
			}
			msgs := st.takeOut(j)
			sentFresh := false
			if len(msgs) > 0 {
				if d.hasLink {
					switch f := d.inj.BatchFate(id, j); {
					case f.Drop:
						// Count the batch as sent now — termination
						// cannot be declared while it is in flight —
						// and hand it to an asynchronous retransmitter.
						// Sleeping inline here would stall heartbeats,
						// park checks and every other peer's flush for
						// the whole retry delay.
						env := stamp(j, msgs)
						countSent(int64(len(msgs)))
						d.retransmit(j, env)
						sentFresh = true
					case f.Dup:
						// Copy before the first send: the receiver may
						// recycle the original while we still read it.
						// Both copies carry the same sequence number, so
						// the dedup layer (when on) drops the second.
						env := stamp(j, msgs)
						cp := env
						if d.pooled {
							cp.msgs = append(d.pool.get(), msgs...)
						} else {
							cp.msgs = append([]ace.Message[V](nil), msgs...)
						}
						send(j, env)
						send(j, cp)
						sentFresh = true
					case f.Reorder:
						// Held batches stay unstamped and uncounted: the
						// sequence number is drawn at actual ship time, so
						// a crash loses nothing the checkpoint replay
						// would miss (held mass is re-derived from Ψ).
						hold[j] = append(hold[j], msgs...)
						if d.pooled {
							d.pool.put(msgs)
						}
					default:
						send(j, stamp(j, msgs))
						sentFresh = true
					}
				} else {
					send(j, stamp(j, msgs))
					sentFresh = true
				}
			}
			if hold != nil && len(hold[j]) > 0 && (sentFresh || final) {
				hb := hold[j]
				hold[j] = nil
				send(j, stamp(j, hb))
			}
		}
	}
	// h_out spans wrap the whole flush sweep; the wrapper (not the inner
	// func) closes the span so an early return on a finished run cannot
	// leave it open.
	flushAll := flushAllInner
	if (d.gov != nil && d.gov.Budget() > 0) || d.logCap > 0 {
		inner := flushAll
		flushAll = func(final bool) {
			// Rung 2: backpressure. A pressured run pauses its senders
			// before each flush so receivers and the checkpoint ladder can
			// catch up; draining first keeps the pause from growing our own
			// mailbox. Log-retention pressure (rung 1 overshooting its byte
			// cap) applies the same brake.
			if d.gov.Stage() >= mem.StageThrottle || d.logPressure.Load() {
				drain()
				beat()
				if tr != nil {
					tr.SpanBegin(id, obs.PhaseThrottle, ts())
				}
				time.Sleep(liveThrottleSleep)
				if tr != nil {
					tr.SpanEnd(id, obs.PhaseThrottle, ts())
				}
				d.throttles.Add(1)
			}
			inner(final)
		}
	}
	if tr != nil {
		prev := flushAll
		flushAll = func(final bool) {
			setPhase("h_out")
			tr.SpanBegin(id, obs.PhaseHout, ts())
			prev(final)
			tr.SpanEnd(id, obs.PhaseHout, ts())
			setPhase("local_eval")
		}
	}

	// serviceMem honors a pending edge-streaming request (degradation rung
	// 3) at the worker's safe points: the fragment's edge payloads page to
	// disk and every adjacency read goes through the spilled accessors until
	// the caller unspills after the run. Index arrays stay resident.
	serviceMem := func() {
		if d.edgeSpillReq == nil || !d.edgeSpillReq[id].Load() {
			return
		}
		d.edgeSpillReq[id].Store(false)
		if st.frag.EdgesSpilled() {
			return
		}
		if tr != nil {
			tr.SpanBegin(id, obs.PhaseSpill, ts())
		}
		freed, err := st.frag.SpillEdges(d.gov.SpillDir())
		if tr != nil {
			tr.SpanEnd(id, obs.PhaseSpill, ts())
		}
		if err == nil && freed > 0 {
			d.fragAcct.Add(-freed)
			d.gov.NoteSpill(freed)
			d.edgeSpills.Add(1)
			if tr != nil {
				tr.Mark(id, obs.MarkSpill, ts())
			}
		}
	}

	// serviceLocal is the localized-recovery safe point: process any
	// rollback notices from the monitor, then honor a pending checkpoint
	// request. Checkpoints are taken inline — no barrier, no park — after
	// flushing held batches so the snapshot can never strand an unstamped
	// message. No-op outside local mode.
	serviceLocal := func() {
		if !d.localRec {
			return
		}
		d.drainNotices(st)
		if d.ckptReq[id].Load() {
			d.ckptReq[id].Store(false)
			for j := range hold {
				if len(hold[j]) > 0 {
					hb := hold[j]
					hold[j] = nil
					send(j, stamp(j, hb))
				}
			}
			d.takeLocalCkpt(st)
			if tr != nil {
				t := ts()
				tr.Mark(id, obs.MarkCkpt, t)
				tr.Sample(id, obs.GaugeLogSize, t, float64(d.mlog.retainedFrom(id)))
			}
		}
	}

	for {
		if pauseCheck() {
			return
		}
		if crashed() {
			return
		}
		serviceLocal()
		serviceMem()
		beat()
		// Effective check granularity: recovery may have reseeded this
		// worker's η toward finer checks (see runLocalRecovery).
		ce := cfg.CheckEvery
		if d.ckEvery != nil {
			if v := int(d.ckEvery[id].Load()); v > 0 {
				ce = v
			}
		}
		// One LocalEval round: ingest, iterate with periodic indicator
		// checks, flush.
		var sent0, recv0 int64
		if tr != nil {
			t0 := ts()
			tr.Sample(id, obs.GaugeMailbox, t0, float64(len(d.chans[id])))
			tr.SpanBegin(id, obs.PhaseLocalEval, t0)
			sent0, recv0 = sentCum, recvCum
		}
		drain()
		d.rounds.Add(1)
		if tr != nil {
			tr.Sample(id, obs.GaugeActive, ts(), float64(st.active.Len()))
		}
		// checkStep is the shared per-CheckEvery indicator check (ξ⁺/ξ⁻):
		// heartbeat, park/crash checks, slowdown injection, then pick up
		// fresh messages or push accumulated ones. Returns true when the
		// worker must exit.
		checkStep := func() bool {
			beat()
			if pauseCheck() {
				return true
			}
			if crashed() {
				return true
			}
			serviceLocal()
			serviceMem()
			if d.hasSlow {
				if f := d.inj.SlowFactor(id, nowMS()); f > 1 {
					time.Sleep(time.Duration((f - 1) * float64(100*time.Microsecond)))
				}
			}
			if drain() == 0 && cfg.Mode != ModeAPGC {
				if tr != nil {
					tr.Mark(id, obs.MarkR3, ts())
				}
				flushAll(false)
			}
			return false
		}
		steps := 0
		if ev != nil {
			// Sharded sweep: waves stay smaller than CheckEvery because
			// in-wave sends only land after the wave merges — oversized
			// waves process stale deltas and inflate the update count. The
			// indicator check (with its R3 flush) runs after every wave;
			// the eager flushing propagates deltas sooner and measurably
			// shortens convergence.
			wave := ce
			if wave > liveWaveCap {
				wave = liveWaveCap
			}
			for !st.active.Empty() {
				nw := ev.runWave(wave)
				steps += nw
				d.updates.Add(int64(nw))
				if d.hasCrashes {
					d.updCount[id].Add(int64(nw))
				}
				if checkStep() {
					return
				}
			}
		} else {
			for !st.active.Empty() {
				v := st.active.Pop()
				st.prog.Update(st.ctx, v)
				d.updates.Add(1)
				if d.hasCrashes {
					d.updCount[id].Add(1)
				}
				steps++
				if steps%ce == 0 {
					if checkStep() {
						return
					}
				}
			}
		}
		flushAll(true)
		if tr != nil {
			t1 := ts()
			tr.Count(id, obs.CounterUpdates, t1, int64(steps))
			tr.Count(id, obs.CounterMsgsSent, t1, sentCum-sent0)
			tr.Count(id, obs.CounterMsgsRecv, t1, recvCum-recv0)
			tr.SpanEnd(id, obs.PhaseLocalEval, t1)
			tr.Mark(id, obs.MarkIdle, t1)
		}
		// Idle transition: report and block for more input. The timeout
		// keeps the heartbeat alive and lets the worker notice parks (and
		// due time-triggered crashes) while idle. The recovery-reseeded
		// check granularity snaps back to the configured bound here — the
		// replayed backlog it was finer for has drained.
		if d.ckEvery != nil {
			d.ckEvery[id].Store(int32(cfg.CheckEvery))
		}
		lastIdle = true
		d.coord.report(id, true, localSent, localRecv)
		localSent, localRecv = 0, 0
	idleWait:
		for {
			select {
			case env := <-d.chans[id]:
				if env.epoch != myEpoch {
					continue
				}
				lastIdle = false
				d.coord.report(id, false, 0, 0)
				if tr != nil {
					tr.Mark(id, obs.MarkBusy, ts())
				}
				ingest(env)
				break idleWait
			case <-d.coord.done:
				return
			case <-time.After(d.beatEvery):
				beat()
				if pauseCheck() {
					return
				}
				if crashed() {
					return
				}
				serviceLocal()
				serviceMem()
				if !st.active.Empty() {
					// A rollback notice un-applied contributions and
					// re-activated their vertices: go process them.
					lastIdle = false
					d.coord.report(id, false, 0, 0)
					break idleWait
				}
				if !lastIdle {
					// A rollback put restored work back on our plate.
					break idleWait
				}
			}
		}
	}
}

// retransmit delivers a "dropped" batch after the plan's retry delay
// without blocking the worker that flushed it. The caller already counted
// the batch as sent, so termination cannot be declared while it is in
// flight. A global recovery while the retransmitter sleeps bumps the epoch
// (and the coordinator reset wiped the count), so delivery is abandoned —
// the rollback re-derives the batch. Under local recovery the epoch never
// moves and the phase never leaves ctrlRun, so delivery always completes;
// the dedup layer discards it if the restore already replayed the batch.
func (d *liveDriver[V]) retransmit(to int, env liveEnvelope[V]) {
	d.retransmits.Add(1)
	if tr := d.cfg.Tracer; tr != nil {
		tr.Count(int(env.from), obs.CounterRetransmits, float64(sinceFn(d.start))/1e3, 1)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTimer(d.retrySleep)
		defer t.Stop()
		select {
		case <-t.C:
		case <-d.coord.done:
			return
		}
		backoff := liveSendBackoff
		for {
			if d.ctrl.epoch.Load() != env.epoch || d.ctrl.phase.Load() == ctrlRecover {
				return
			}
			select {
			case d.chans[to] <- env:
				return
			case <-d.coord.done:
				return
			default:
			}
			time.Sleep(backoff)
			if backoff < liveSendBackMax {
				backoff *= 2
			}
		}
	}()
}
