package gap

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"argan/internal/ace"
	"argan/internal/fault"
	"argan/internal/graph"
	"argan/internal/obs"
)

// LiveConfig parameterizes the goroutine-based driver. The live driver
// executes the same ACE programs as the simulator under real concurrency:
// one goroutine per worker, channels as the interconnect, and a coordinator
// performing distributed termination detection from idle states and
// sent/received message counts.
type LiveConfig struct {
	// Mode must be an asynchronous discipline (ModeGAP, ModeAPGC or
	// ModeAPVC); the barrier disciplines are only meaningful under the
	// virtual-time driver.
	Mode Mode
	// CheckEvery is the number of update functions between indicator
	// checks (ξ⁺/ξ⁻ evaluation); it is the live analogue of the
	// granularity bound η. Default 256; ModeAPVC forces 1.
	CheckEvery int
	// ChannelCap is the per-worker mailbox capacity (default 1024).
	ChannelCap int
	// Tracer receives the run's event stream stamped with wall-clock
	// microseconds since the run start. nil disables tracing (one nil
	// check per event site). When set, worker goroutines also carry
	// per-phase runtime/pprof labels so CPU profiles attribute samples to
	// GAP phases; the worker label alone is applied unconditionally.
	Tracer obs.Tracer
	// Faults injects worker crashes, transient slowdowns and per-link
	// batch faults into the run; nil is fault-free. Plan times (Crash.At,
	// Slowdown fields, Retry) are wall-clock milliseconds under the live
	// driver. Crashed workers are real goroutine exits; when the plan
	// schedules a restart the monitor detects the death by heartbeat
	// timeout and rolls the cluster back to its last consistent snapshot.
	Faults *fault.Plan
	// NoRecover disables checkpointing and recovery even when the plan's
	// crashes carry restart delays: a crashed worker then stays dead and
	// the watchdog eventually fails the run with a descriptive error.
	NoRecover bool
	// CheckpointEvery is the interval between consistent cluster
	// snapshots when recovery is enabled. Default 50ms.
	CheckpointEvery time.Duration
	// HeartbeatTimeout declares a worker dead when its heartbeat is older
	// than this. Default 250ms. Workers beat at every indicator check,
	// idle-wait tick and send retry, so only an exited goroutine (or a
	// pathologically long single Update call) goes stale.
	HeartbeatTimeout time.Duration
	// Watchdog fails the run with a descriptive error when no worker
	// reports, updates or sends for this long, so termination detection
	// can never hang silently (e.g. a permanently dead worker holding
	// unacknowledged messages). Default 30s; < 0 disables.
	Watchdog time.Duration
	// IntraParallelism shards each worker's f_step sweep across a small
	// goroutine pool (intra-worker parallel local evaluation). Every wave
	// of updates reads the pre-wave state, per-shard effects are buffered,
	// and the buffers merge in fixed shard order, so results are a pure
	// function of the work list — independent of the shard count and of
	// goroutine scheduling. 0 (the default) resolves to
	// GOMAXPROCS/NumWorkers, min 1; 1 evaluates serially on the worker
	// goroutine (the classic pop-loop). Values > 1 apply only to programs
	// that declare ace.ShardSafe; others fall back to serial evaluation.
	IntraParallelism int
	// LegacyBatches restores the pre-pooling message pipeline (a fresh
	// map-indexed out-accumulator per flush, slice copies, map-based
	// global→local resolution on ingest). Benchmarks use it as the
	// baseline the pooled pipeline is measured against.
	LegacyBatches bool
	// NoCombine disables outgoing message coalescing in the pooled
	// pipeline (append-only accumulators); isolates the per-algorithm
	// combiner's contribution in benchmarks.
	NoCombine bool
}

func (c LiveConfig) withDefaults() (LiveConfig, error) {
	switch c.Mode {
	case ModeGAP, ModeAPGC, ModeAPVC:
	default:
		return c, fmt.Errorf("gap: live driver supports GAP/AP modes, not %v", c.Mode)
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 256
	}
	if c.Mode == ModeAPVC {
		c.CheckEvery = 1
	}
	if c.ChannelCap <= 0 {
		c.ChannelCap = 1024
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 50 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 250 * time.Millisecond
	}
	if c.Watchdog == 0 {
		c.Watchdog = 30 * time.Second
	}
	return c, nil
}

// LiveMetrics summarizes a live run.
type LiveMetrics struct {
	WallTime time.Duration
	Updates  int64
	MsgsSent int64
	Batches  int64
	Rounds   int64

	// Retransmits counts dropped batches redelivered by the async
	// retransmit path (zero when the plan injects no drops).
	Retransmits int64

	// Fault-tolerance accounting (zero on fault-free runs).
	Crashes     int64
	Recoveries  int64
	Checkpoints int64
}

// liveEnvelope is one batch in flight. The epoch tags which incarnation of
// the cluster sent it: recovery bumps the epoch, and receivers silently
// discard (without counting) envelopes from before the rollback.
type liveEnvelope[V any] struct {
	epoch int32
	msgs  []ace.Message[V]
}

// liveCoord detects global quiescence: every worker idle and every sent
// message received. It also carries the run's failure slot (watchdog or
// internal errors) and a progress counter the watchdog samples.
type liveCoord struct {
	mu       sync.Mutex
	idle     []bool
	nIdle    int
	sent     int64
	recv     int64
	done     chan struct{}
	closed   bool
	err      error
	progress int64 // bumped on every report; a watchdog progress signal
}

func newLiveCoord(n int) *liveCoord {
	c := &liveCoord{idle: make([]bool, n), done: make(chan struct{})}
	if n == 0 {
		// Zero workers are vacuously quiescent.
		c.closed = true
		close(c.done)
	}
	return c
}

func (c *liveCoord) report(id int, idle bool, sentDelta, recvDelta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.progress++
	if c.idle[id] != idle {
		c.idle[id] = idle
		if idle {
			c.nIdle++
		} else {
			c.nIdle--
		}
	}
	c.sent += sentDelta
	c.recv += recvDelta
	if !c.closed && c.nIdle == len(c.idle) && c.sent == c.recv {
		c.closed = true
		close(c.done)
	}
}

// fail aborts the run with err; the first failure wins and termination
// detection is bypassed.
func (c *liveCoord) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.err = err
	c.closed = true
	close(c.done)
}

func (c *liveCoord) failure() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// reset re-arms the detector after a rollback: every worker busy, message
// accounting zeroed (in-flight pre-rollback envelopes are discarded by
// receivers without being counted). Returns false if the run already ended.
func (c *liveCoord) reset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	for i := range c.idle {
		c.idle[i] = false
	}
	c.nIdle = 0
	c.sent, c.recv = 0, 0
	c.progress++
	return true
}

func (c *liveCoord) counts() (sent, recv int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.recv
}

func (c *liveCoord) status() (idle, total int, sent, recv, progress int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nIdle, len(c.idle), c.sent, c.recv, c.progress
}

// liveDriver holds one RunLive invocation's shared state.
type liveDriver[V any] struct {
	cfg    LiveConfig
	n      int
	chans  []chan liveEnvelope[V]
	coord  *liveCoord
	ctrl   *liveCtrl
	states []*liveState[V]
	snaps  []liveSnap[V]
	start  time.Time
	wg     sync.WaitGroup

	inj        *fault.Injector
	hasCrashes bool
	hasLink    bool
	hasSlow    bool
	recover    bool
	beatEvery  time.Duration
	retrySleep time.Duration

	pool   *batchPool[V]
	pooled bool // recycle batches through the pool (off under LegacyBatches)
	shards int  // effective intra-worker shard count (1 = serial sweep)

	updates, msgsSent, batches, rounds atomic.Int64
	crashes, recoveries, checkpoints   atomic.Int64
	retransmits                        atomic.Int64
	updCount                           []atomic.Int64 // per-worker, for crash triggers
}

const (
	liveParkPoll    = 50 * time.Microsecond
	liveSendBackoff = 50 * time.Microsecond
	liveSendBackMax = 2 * time.Millisecond
)

// RunLive executes the program over the fragments with one goroutine per
// worker, returning the global result. Results are identical to the
// sequential fixpoint for programs with order-insensitive (monotone)
// aggregation. When cfg.Faults schedules crashes with restarts, the run
// survives them via consistent snapshots and global rollback.
func RunLive[V any](frags []*graph.Fragment, factory ace.Factory[V], q ace.Query, cfg LiveConfig) (*Result[V], *LiveMetrics, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(frags) == 0 {
		return nil, nil, errNoFragments
	}
	n := len(frags)
	d := &liveDriver[V]{cfg: cfg, n: n}
	d.hasCrashes = cfg.Faults.HasCrashes()
	d.hasLink = cfg.Faults.HasLinkFaults()
	d.hasSlow = cfg.Faults != nil && len(cfg.Faults.Slowdowns) > 0
	if !cfg.Faults.Empty() {
		d.inj = fault.NewInjector(cfg.Faults)
		d.retrySleep = time.Duration(d.inj.RetryDelay(1) * float64(time.Millisecond))
	}
	if d.hasCrashes && !cfg.NoRecover {
		for _, c := range cfg.Faults.Crashes {
			if c.Restart >= 0 {
				d.recover = true
				break
			}
		}
	}
	d.beatEvery = 10 * time.Millisecond
	if d.hasCrashes && cfg.HeartbeatTimeout/5 < d.beatEvery {
		d.beatEvery = cfg.HeartbeatTimeout / 5
	}
	if d.beatEvery < 200*time.Microsecond {
		d.beatEvery = 200 * time.Microsecond
	}

	d.chans = make([]chan liveEnvelope[V], n)
	for i := range d.chans {
		d.chans[i] = make(chan liveEnvelope[V], cfg.ChannelCap)
	}
	d.coord = newLiveCoord(n)
	d.ctrl = newLiveCtrl(n)
	d.updCount = make([]atomic.Int64, n)
	d.pool = &batchPool[V]{}
	d.pooled = !cfg.LegacyBatches
	tune := liveTuning{legacy: cfg.LegacyBatches, noCombine: cfg.NoCombine}
	d.states = make([]*liveState[V], n)
	for i := range d.states {
		d.states[i] = newLiveStateWith(i, frags[i], factory(), q, d.pool, tune)
	}
	d.shards = resolveShards(cfg.IntraParallelism, n, d.states[0].prog)
	if d.recover {
		// Snapshot 0: the freshly initialized cluster, so a crash before
		// the first periodic checkpoint still has a rollback target.
		d.snaps = make([]liveSnap[V], n)
		for i := range d.states {
			d.snaps[i] = captureLive(d.states[i])
		}
	}

	d.start = nowFn()
	d.wg.Add(1)
	go d.monitor()
	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.worker(d.states[i], 0)
	}
	d.wg.Wait()
	wall := sinceFn(d.start)
	if err := d.coord.failure(); err != nil {
		return nil, nil, err
	}

	res := &Result[V]{Values: make([]V, frags[0].GlobalVertices())}
	for _, st := range d.states {
		st.outputs(res.Values)
	}
	res.Metrics.Converged = true
	res.Metrics.Mode = cfg.Mode
	res.Metrics.Crashes = d.crashes.Load()
	res.Metrics.Recoveries = d.recoveries.Load()
	res.Metrics.Checkpoints = d.checkpoints.Load()
	m := &LiveMetrics{
		WallTime:    wall,
		Updates:     d.updates.Load(),
		MsgsSent:    d.msgsSent.Load(),
		Batches:     d.batches.Load(),
		Rounds:      d.rounds.Load(),
		Retransmits: d.retransmits.Load(),
		Crashes:     d.crashes.Load(),
		Recoveries:  d.recoveries.Load(),
		Checkpoints: d.checkpoints.Load(),
	}
	return res, m, nil
}

// worker runs one incarnation of worker st.id at the given epoch. A
// restarted worker is a fresh call with a bumped epoch over the restored
// state.
func (d *liveDriver[V]) worker(st *liveState[V], myEpoch int32) {
	defer d.wg.Done()
	cfg := d.cfg
	id := st.id
	tr := cfg.Tracer
	ts := func() float64 { return float64(sinceFn(d.start)) / 1e3 }
	nowMS := func() float64 { return float64(sinceFn(d.start)) / 1e6 }

	// CPU-profile attribution: the goroutine always carries its worker id;
	// phase labels are refreshed only when tracing is on
	// (SetGoroutineLabels allocates, and phase flips are hot).
	wid := strconv.Itoa(id)
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("worker", wid, "phase", "local_eval")))
	defer pprof.SetGoroutineLabels(context.Background())
	setPhase := func(string) {}
	if tr != nil {
		setPhase = func(p string) {
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("worker", wid, "phase", p)))
		}
	}

	// localSent/localRecv reset at every report (they feed the termination
	// detector); sentCum/recvCum are the monotone variants the tracer
	// reports as per-round counter deltas.
	var localSent, localRecv int64
	var sentCum, recvCum int64
	lastIdle := false
	var hold [][]ace.Message[V] // reorder fault: batches held past FIFO order
	if d.hasLink {
		hold = make([][]ace.Message[V], d.n)
	}
	var ev *waveEval[V] // sharded local evaluation (IntraParallelism > 1)
	if d.shards > 1 {
		ev = newWaveEval(st, d.shards)
	}

	beat := func() { d.ctrl.beats[id].Store(int64(sinceFn(d.start))) }
	beat()

	// crashed fires any due crash from the plan: the goroutine stops
	// beating and exits, exactly like a lost process. It reports nothing
	// to the coordinator — detection is genuinely heartbeat-based.
	crashed := func() bool {
		if !d.hasCrashes {
			return false
		}
		c, ok := d.inj.TakeDue(id, d.updCount[id].Load(), nowMS())
		if !ok {
			return false
		}
		d.crashes.Add(1)
		if tr != nil {
			tr.Mark(id, obs.MarkCrash, ts())
		}
		d.ctrl.noteCrash(id, c.Restart)
		return true
	}

	// Batches arriving from the transport are owned by this worker once
	// received: after h_in they are recycled into the driver's pool (the
	// senders' takeOut draws replacements from it), closing the
	// zero-allocation loop. Legacy mode skips recycling to stay a faithful
	// pre-pooling baseline.
	ingest := func(msgs []ace.Message[V]) {
		localRecv += int64(len(msgs))
		recvCum += int64(len(msgs))
		st.ingest(msgs)
		if d.pooled {
			d.pool.put(msgs)
		}
	}
	drain := func() int {
		got := 0
		for {
			select {
			case env := <-d.chans[id]:
				if env.epoch != myEpoch {
					// Pre-rollback leftover: discard uncounted.
					if d.pooled {
						d.pool.put(env.msgs)
					}
					continue
				}
				ingest(env.msgs)
				got++
			default:
				return got
			}
		}
	}

	// send ships one batch to peer j, counting it only once it is actually
	// in the mailbox. A full peer mailbox (the peer may be dead) is
	// retried with exponential backoff while draining our own mailbox so
	// mutual sends cannot deadlock; a recovery in progress drops the batch
	// (the rollback re-derives it).
	send := func(j int, msgs []ace.Message[V]) {
		if len(msgs) == 0 {
			return
		}
		env := liveEnvelope[V]{epoch: myEpoch, msgs: msgs}
		backoff := liveSendBackoff
		for {
			if d.ctrl.phase.Load() == ctrlRecover {
				return
			}
			select {
			case d.chans[j] <- env:
				localSent += int64(len(msgs))
				sentCum += int64(len(msgs))
				d.msgsSent.Add(int64(len(msgs)))
				d.batches.Add(1)
				return
			case <-d.coord.done:
				return
			default:
			}
			if drain() == 0 {
				beat()
				time.Sleep(backoff)
				if backoff < liveSendBackMax {
					backoff *= 2
				}
			}
		}
	}

	// pauseCheck parks the worker while the monitor runs a checkpoint or a
	// recovery; returns true when the run is over. During checkpoint parks
	// the worker keeps draining and reporting (the snapshot barrier needs
	// global sent==recv); during recovery parks it must not touch state —
	// the monitor is rewriting it. Leaving a park with a bumped epoch
	// means the cluster rolled back under us: message accounting restarts
	// from zero and held batches are dropped (the replay re-derives them).
	pauseCheck := func() bool {
		if d.ctrl.phase.Load() == ctrlRun {
			return false
		}
		if d.ctrl.phase.Load() == ctrlCkpt {
			// Held (reordered) batches live outside the snapshot; flush
			// them now so the checkpoint never strands a message.
			for j := range hold {
				if len(hold[j]) > 0 {
					hb := hold[j]
					hold[j] = nil
					send(j, hb)
				}
			}
		}
		d.ctrl.enterPark()
		for d.ctrl.phase.Load() != ctrlRun {
			select {
			case <-d.coord.done:
				d.ctrl.exitPark()
				return true
			default:
			}
			if d.ctrl.phase.Load() == ctrlCkpt {
				if drain() > 0 {
					lastIdle = false
				}
				if localSent != 0 || localRecv != 0 {
					d.coord.report(id, lastIdle, localSent, localRecv)
					localSent, localRecv = 0, 0
				}
			}
			beat()
			time.Sleep(liveParkPoll)
		}
		d.ctrl.exitPark()
		if e := d.ctrl.epoch.Load(); e != myEpoch {
			myEpoch = e
			localSent, localRecv = 0, 0
			lastIdle = false
			for j := range hold {
				hold[j] = nil
			}
		}
		return false
	}

	// flushAllInner ships every non-empty out-accumulator, routing each
	// batch through its drawn link fate when link faults are on. "Drop" is
	// lossless: the transport retransmits after the retry delay, so the
	// batch arrives late rather than never (the programs are not assumed
	// idempotent against true loss). "Reorder" holds the batch back until
	// a later batch to the same peer has passed it.
	flushAllInner := func(final bool) {
		for j := 0; j < d.n; j++ {
			if j == id {
				continue
			}
			msgs := st.takeOut(j)
			sentFresh := false
			if len(msgs) > 0 {
				if d.hasLink {
					switch f := d.inj.BatchFate(id, j); {
					case f.Drop:
						// Count the batch as sent now — termination
						// cannot be declared while it is in flight —
						// and hand it to an asynchronous retransmitter.
						// Sleeping inline here would stall heartbeats,
						// park checks and every other peer's flush for
						// the whole retry delay.
						localSent += int64(len(msgs))
						sentCum += int64(len(msgs))
						d.msgsSent.Add(int64(len(msgs)))
						d.batches.Add(1)
						d.retransmit(j, msgs, myEpoch)
						sentFresh = true
					case f.Dup:
						// Copy before the first send: the receiver may
						// recycle the original while we still read it.
						var cp []ace.Message[V]
						if d.pooled {
							cp = append(d.pool.get(), msgs...)
						} else {
							cp = append([]ace.Message[V](nil), msgs...)
						}
						send(j, msgs)
						send(j, cp)
						sentFresh = true
					case f.Reorder:
						hold[j] = append(hold[j], msgs...)
						if d.pooled {
							d.pool.put(msgs)
						}
					default:
						send(j, msgs)
						sentFresh = true
					}
				} else {
					send(j, msgs)
					sentFresh = true
				}
			}
			if hold != nil && len(hold[j]) > 0 && (sentFresh || final) {
				hb := hold[j]
				hold[j] = nil
				send(j, hb)
			}
		}
	}
	// h_out spans wrap the whole flush sweep; the wrapper (not the inner
	// func) closes the span so an early return on a finished run cannot
	// leave it open.
	flushAll := flushAllInner
	if tr != nil {
		flushAll = func(final bool) {
			setPhase("h_out")
			tr.SpanBegin(id, obs.PhaseHout, ts())
			flushAllInner(final)
			tr.SpanEnd(id, obs.PhaseHout, ts())
			setPhase("local_eval")
		}
	}

	for {
		if pauseCheck() {
			return
		}
		if crashed() {
			return
		}
		beat()
		// One LocalEval round: ingest, iterate with periodic indicator
		// checks, flush.
		var sent0, recv0 int64
		if tr != nil {
			t0 := ts()
			tr.Sample(id, obs.GaugeMailbox, t0, float64(len(d.chans[id])))
			tr.SpanBegin(id, obs.PhaseLocalEval, t0)
			sent0, recv0 = sentCum, recvCum
		}
		drain()
		d.rounds.Add(1)
		if tr != nil {
			tr.Sample(id, obs.GaugeActive, ts(), float64(st.active.Len()))
		}
		// checkStep is the shared per-CheckEvery indicator check (ξ⁺/ξ⁻):
		// heartbeat, park/crash checks, slowdown injection, then pick up
		// fresh messages or push accumulated ones. Returns true when the
		// worker must exit.
		checkStep := func() bool {
			beat()
			if pauseCheck() {
				return true
			}
			if crashed() {
				return true
			}
			if d.hasSlow {
				if f := d.inj.SlowFactor(id, nowMS()); f > 1 {
					time.Sleep(time.Duration((f - 1) * float64(100*time.Microsecond)))
				}
			}
			if drain() == 0 && cfg.Mode != ModeAPGC {
				if tr != nil {
					tr.Mark(id, obs.MarkR3, ts())
				}
				flushAll(false)
			}
			return false
		}
		steps := 0
		if ev != nil {
			// Sharded sweep: waves stay smaller than CheckEvery because
			// in-wave sends only land after the wave merges — oversized
			// waves process stale deltas and inflate the update count. The
			// indicator check (with its R3 flush) runs after every wave;
			// the eager flushing propagates deltas sooner and measurably
			// shortens convergence.
			wave := cfg.CheckEvery
			if wave > liveWaveCap {
				wave = liveWaveCap
			}
			for !st.active.Empty() {
				nw := ev.runWave(wave)
				steps += nw
				d.updates.Add(int64(nw))
				if d.hasCrashes {
					d.updCount[id].Add(int64(nw))
				}
				if checkStep() {
					return
				}
			}
		} else {
			for !st.active.Empty() {
				v := st.active.Pop()
				st.prog.Update(st.ctx, v)
				d.updates.Add(1)
				if d.hasCrashes {
					d.updCount[id].Add(1)
				}
				steps++
				if steps%cfg.CheckEvery == 0 {
					if checkStep() {
						return
					}
				}
			}
		}
		flushAll(true)
		if tr != nil {
			t1 := ts()
			tr.Count(id, obs.CounterUpdates, t1, int64(steps))
			tr.Count(id, obs.CounterMsgsSent, t1, sentCum-sent0)
			tr.Count(id, obs.CounterMsgsRecv, t1, recvCum-recv0)
			tr.SpanEnd(id, obs.PhaseLocalEval, t1)
			tr.Mark(id, obs.MarkIdle, t1)
		}
		// Idle transition: report and block for more input. The timeout
		// keeps the heartbeat alive and lets the worker notice parks (and
		// due time-triggered crashes) while idle.
		lastIdle = true
		d.coord.report(id, true, localSent, localRecv)
		localSent, localRecv = 0, 0
	idleWait:
		for {
			select {
			case env := <-d.chans[id]:
				if env.epoch != myEpoch {
					continue
				}
				lastIdle = false
				d.coord.report(id, false, 0, 0)
				if tr != nil {
					tr.Mark(id, obs.MarkBusy, ts())
				}
				ingest(env.msgs)
				break idleWait
			case <-d.coord.done:
				return
			case <-time.After(d.beatEvery):
				beat()
				if pauseCheck() {
					return
				}
				if crashed() {
					return
				}
				if !lastIdle {
					// A rollback put restored work back on our plate.
					break idleWait
				}
			}
		}
	}
}

// retransmit delivers a "dropped" batch after the plan's retry delay
// without blocking the worker that flushed it. The caller already counted
// the batch as sent, so termination cannot be declared while it is in
// flight. A recovery while the retransmitter sleeps bumps the epoch (and
// the coordinator reset wiped the count), so delivery is abandoned — the
// rollback re-derives the batch.
func (d *liveDriver[V]) retransmit(to int, msgs []ace.Message[V], epoch int32) {
	d.retransmits.Add(1)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTimer(d.retrySleep)
		defer t.Stop()
		select {
		case <-t.C:
		case <-d.coord.done:
			return
		}
		backoff := liveSendBackoff
		for {
			if d.ctrl.epoch.Load() != epoch || d.ctrl.phase.Load() == ctrlRecover {
				return
			}
			select {
			case d.chans[to] <- liveEnvelope[V]{epoch: epoch, msgs: msgs}:
				return
			case <-d.coord.done:
				return
			default:
			}
			time.Sleep(backoff)
			if backoff < liveSendBackMax {
				backoff *= 2
			}
		}
	}()
}
