package gap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/graph"
	"argan/internal/partition"
)

// Property: for random graphs, partitions, worker counts, network seeds and
// modes, the engine's SSSP equals the sequential reference — the §IV
// correctness property as a quick.Check invariant.
func TestPropertySSSPAlwaysSequential(t *testing.T) {
	modes := []Mode{ModeGAP, ModeBSP, ModeBSPVC, ModeAPGC, ModeAPVC, ModeAAP}
	parts := []partition.Partitioner{partition.Hash{}, partition.Range{}, partition.Greedy{Seed: 3}}
	f := func(seed int64, nRaw, modeRaw, partRaw uint8, adaptive bool) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.PowerLaw(graph.GenConfig{
			N: 80 + r.Intn(200), M: 600 + r.Intn(1200),
			Directed: seed%2 == 0, Seed: seed, MaxW: float64(1 + r.Intn(30)),
		})
		n := int(nRaw%7) + 1
		mode := modes[int(modeRaw)%len(modes)]
		fs, err := partition.Partition(g, parts[int(partRaw)%len(parts)], n)
		if err != nil {
			return false
		}
		cfg := Config{Mode: mode}
		if adaptive && mode == ModeGAP {
			cfg.Adapt = adapt.PolicyGAwD
		}
		src := graph.VID(r.Intn(g.NumVertices()))
		res, err := RunSim(fs, algorithms.NewSSSP(), ace.Query{Source: src}, cfg)
		if err != nil || !res.Metrics.Converged {
			return false
		}
		for v, d := range algorithms.SeqSSSP(g, src) {
			if res.Values[v] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: WCC is schedule-independent across modes and noise settings.
func TestPropertyWCCAlwaysSequential(t *testing.T) {
	f := func(seed int64, nRaw uint8, hetero bool) bool {
		g := graph.Uniform(graph.GenConfig{N: 120, M: 200, Directed: seed%2 == 0, Seed: seed})
		n := int(nRaw%5) + 1
		fs, err := partition.Partition(g, partition.Hash{}, n)
		if err != nil {
			return false
		}
		cfg := Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD}
		if hetero {
			cfg.Hetero = 1.5
			cfg.HeteroWindow = 256
		}
		res, err := RunSim(fs, algorithms.NewWCC(), ace.Query{}, cfg)
		if err != nil {
			return false
		}
		for v, c := range algorithms.SeqWCC(g) {
			if res.Values[v] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the live driver agrees with the simulator's fixpoint for the
// monotone programs under arbitrary worker counts.
func TestPropertyLiveMatchesSim(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		g := graph.PowerLaw(graph.GenConfig{N: 150, M: 900, Directed: true, Seed: seed, MaxW: 9})
		n := int(nRaw%6) + 1
		fs, err := partition.Partition(g, partition.Hash{}, n)
		if err != nil {
			return false
		}
		sim, err := RunSim(fs, algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP})
		if err != nil {
			return false
		}
		live, _, err := RunLive(fs, algorithms.NewSSSP(), ace.Query{Source: 0}, LiveConfig{Mode: ModeGAP})
		if err != nil {
			return false
		}
		for v := range sim.Values {
			if sim.Values[v] != live.Values[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
