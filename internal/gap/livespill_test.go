package gap

import (
	"fmt"
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/fault"
	"argan/internal/graph"
	"argan/internal/mem"
)

// spillGov returns a governor with a test-scoped spill directory.
func spillGov(t *testing.T, budget int64) *mem.Governor {
	t.Helper()
	gov := mem.NewGovernor(budget, t.TempDir())
	t.Cleanup(func() { gov.Close() })
	return gov
}

// unspillAll returns shared fragments' edge payloads to RAM so a StageStream
// run cannot leak spilled state into the next test.
func unspillAll(t *testing.T, fs []*graph.Fragment) {
	t.Helper()
	for _, f := range fs {
		if _, err := f.UnspillEdges(); err != nil {
			t.Fatalf("UnspillEdges: %v", err)
		}
	}
}

// TestMsgLogSpillRoundTrip drives the sender-side log through the full
// spill life cycle: under stage pressure appended entries page to disk, a
// fetch reads them back bit-identically, and prune/truncate release spill
// accounting just like resident entries.
func TestMsgLogSpillRoundTrip(t *testing.T) {
	gov := spillGov(t, 1<<20)
	l := newMsgLog[float64](2)
	wire := msgWireSize[float64]()
	if wire <= 0 {
		t.Fatalf("float64 messages must have a fixed wire size, got %d", wire)
	}
	l.configure(gov, wire, 0)
	// Saturate the budget with external pressure so every append spills.
	gov.SetExternal(2 << 20)

	batch := func(seed int) []ace.Message[float64] {
		msgs := make([]ace.Message[float64], 8)
		for i := range msgs {
			msgs[i] = ace.Message[float64]{V: graph.VID(seed + i), Val: float64(seed) + float64(i)/8}
		}
		return msgs
	}
	for seq := uint64(1); seq <= 20; seq++ {
		l.append(0, 1, seq, batch(int(seq)*100))
	}

	entries := l.after(0, 1, 0)
	if len(entries) != 20 {
		t.Fatalf("after: got %d entries, want 20", len(entries))
	}
	spilled := 0
	for _, e := range entries {
		if e.spilled {
			spilled++
		}
		msgs, err := l.fetch(e)
		if err != nil {
			t.Fatalf("fetch seq %d: %v", e.seq, err)
		}
		want := batch(int(e.seq) * 100)
		if len(msgs) != len(want) {
			t.Fatalf("seq %d: %d messages, want %d", e.seq, len(msgs), len(want))
		}
		for i := range want {
			if msgs[i] != want[i] {
				t.Fatalf("seq %d msg %d: got %+v want %+v", e.seq, i, msgs[i], want[i])
			}
		}
	}
	if spilled == 0 {
		t.Fatal("saturated governor paged nothing to the spill tier")
	}
	ram, disk, peak := l.bytes()
	if disk == 0 || peak == 0 {
		t.Fatalf("accounting: ram=%d disk=%d peak=%d, want disk and peak > 0", ram, disk, peak)
	}
	if got := l.retainedToward(1); got != ram+disk {
		t.Fatalf("retainedToward(1)=%d, want ram+disk=%d", got, ram+disk)
	}

	// Prune half the prefix, truncate the rest: all accounting must drain.
	l.prune(0, 1, 10)
	l.truncate(0, []uint64{0, 0})
	ram, disk, _ = l.bytes()
	if ram != 0 || disk != 0 {
		t.Fatalf("after prune+truncate: ram=%d disk=%d, want 0/0", ram, disk)
	}
	if l.size() != 0 {
		t.Fatalf("after prune+truncate: %d entries retained", l.size())
	}
}

// TestSnapPageRoundTrip pages a local checkpoint out and materializes it
// back, twice — restores must not consume the page.
func TestSnapPageRoundTrip(t *testing.T) {
	gov := spillGov(t, 1<<20)
	sp, err := gov.NewSpiller("ckpt-test")
	if err != nil {
		t.Fatal(err)
	}
	base := liveSnap[float64]{
		psi:    []float64{1.5, 2.5, 3.5},
		active: []uint32{7, 9},
		out: [][]ace.Message[float64]{
			{{V: 1, Val: 0.25}, {V: 2, Val: 0.75}},
			nil,
		},
	}
	want := liveSnap[float64]{
		psi:    append([]float64(nil), base.psi...),
		active: append([]uint32(nil), base.active...),
		out: [][]ace.Message[float64]{
			append([]ace.Message[float64](nil), base.out[0]...),
			nil,
		},
	}
	pg, err := spillSnap(sp, &base)
	if err != nil {
		t.Fatalf("spillSnap: %v", err)
	}
	if base.psi != nil || base.active != nil || base.out != nil {
		t.Fatal("spillSnap must nil the paged fields")
	}
	for round := 0; round < 2; round++ {
		var got liveSnap[float64]
		if err := unspillSnap(pg, &got); err != nil {
			t.Fatalf("unspillSnap round %d: %v", round, err)
		}
		if len(got.psi) != 3 || got.psi[1] != want.psi[1] ||
			len(got.active) != 2 || got.active[0] != want.active[0] ||
			len(got.out) != 2 || len(got.out[0]) != 2 || got.out[0][1] != want.out[0][1] || got.out[1] != nil {
			t.Fatalf("round %d: restored snapshot differs: %+v", round, got)
		}
	}
}

// TestLogRetentionByteCap: a slow-to-checkpoint receiver must not grow any
// peer's retained log past the configured byte cap — the monitor forces an
// out-of-turn checkpoint on it instead. No governor: the cap works alone.
func TestLogRetentionByteCap(t *testing.T) {
	g := testGraph(true, 21)
	want := algorithms.SeqPageRank(g, 1e-3)
	run := func(capBytes int64) *LiveMetrics {
		cfg := localFTConfig()
		cfg.LogBytesSoftCap = capBytes
		// Worker 1 computes at 1/25 speed for most of the run: it drains and
		// acks (so the run stays live) but checkpoints rarely on its own,
		// keeping every peer's rows toward it unprunable. The late crash of
		// worker 3 arms the local-recovery machinery (sender logs, replay)
		// the retention cap governs.
		cfg.Faults = faultPlan(t, "slow=1@0:400:25; crash=3@u400+10")
		res, lm, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
		if err != nil {
			t.Fatalf("RunLive(cap=%d): %v", capBytes, err)
		}
		for v, w := range want {
			if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
				t.Fatalf("cap=%d vertex %d: got %v want %v", capBytes, v, res.Values[v], w)
			}
		}
		return lm
	}
	const capBytes = 8 << 10
	capped := run(capBytes)
	uncapped := run(0)
	t.Logf("log peak: capped=%d uncapped=%d forced=%d", capped.LogPeakBytes, uncapped.LogPeakBytes, capped.ForcedCkpts)
	if capped.ForcedCkpts == 0 {
		t.Fatal("retention cap never forced a checkpoint on the slow receiver")
	}
	// Retention overshoots between monitor ticks (forcing + sender throttle
	// take effect once per tick, and the slow receiver still has to reach a
	// safe point), but the global peak must stay within a modest multiple of
	// the per-receiver cap — nowhere near the unbounded growth of the
	// uncapped run. 32x leaves headroom for -race timing skew; measured
	// peaks sit around 16-17x the cap.
	bound := int64(32) * capBytes
	if capped.LogPeakBytes > bound {
		t.Fatalf("capped log peak %d exceeds bound %d", capped.LogPeakBytes, bound)
	}
	if uncapped.ForcedCkpts != 0 {
		t.Fatalf("uncapped run forced %d checkpoints", uncapped.ForcedCkpts)
	}
	if uncapped.LogPeakBytes <= capped.LogPeakBytes {
		t.Skipf("uncapped peak %d not above capped %d on this machine; cap not exercised",
			uncapped.LogPeakBytes, capped.LogPeakBytes)
	}
	if capped.LogPeakBytes > uncapped.LogPeakBytes/2 {
		t.Fatalf("cap barely bent the curve: capped peak %d vs uncapped %d",
			capped.LogPeakBytes, uncapped.LogPeakBytes)
	}
}

// TestLiveMemCappedChaosSoak is the tentpole's acceptance soak: crash storms
// under a budget a fraction of what the run needs, so recovery state pages
// through the spill tier — and replay after the crash must still converge to
// the sequential reference exactly, reading logs across the RAM/disk
// boundary, without a single global epoch bump.
func TestLiveMemCappedChaosSoak(t *testing.T) {
	nSeeds := 3
	if testing.Short() {
		nSeeds = 1
	}
	base := chaosSeed(t)
	var spilled, replayedDisk int64
	for i := 0; i < nSeeds; i++ {
		seed := base + int64(i)
		g := testGraph(true, seed)
		want := algorithms.SeqPageRank(g, 1e-3)
		fs := frags(t, g, 4)
		storm := fault.Storm(seed, 4, fault.StormOpts{
			Crashes: 2, Span: 300, Restart: 5,
			Drop: 0.02, Dup: 0.02, Reorder: 0.03,
		})
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			gov := spillGov(t, 192<<10)
			cfg := localFTConfig()
			cfg.Faults = storm
			cfg.Mem = gov
			res, lm, err := RunLive(fs, algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
			unspillAll(t, fs)
			if err != nil {
				t.Fatalf("RunLive(%s): %v", storm, err)
			}
			for v, w := range want {
				if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
					t.Fatalf("vertex %d: got %v want %v (storm %s)", v, res.Values[v], w, storm)
				}
			}
			if lm.Recovery != RecoveryLocal || lm.Epochs != 0 {
				t.Fatalf("recovery=%q epochs=%d, want local/0 (storm %s)", lm.Recovery, lm.Epochs, storm)
			}
			if lm.Crashes == 0 || lm.Recoveries == 0 {
				t.Fatalf("storm injected nothing: crashes=%d recoveries=%d", lm.Crashes, lm.Recoveries)
			}
			if lm.SpilledBytes == 0 {
				t.Fatalf("capped run (budget 192KiB, peak %d) never spilled", lm.MemPeakBytes)
			}
			spilled += lm.SpilledBytes
			replayedDisk += lm.ReplayedFromDisk
		})
	}
	if spilled == 0 {
		t.Fatal("no soak iteration spilled")
	}
	if replayedDisk == 0 {
		t.Skip("no crash landed while its log suffix was spilled; replay-from-disk not exercised this round")
	}
}

// TestEtaReseedAfterRestart: a worker restarting into a deep replayed
// backlog must re-enter with a finer check granularity (η reseed), restoring
// the configured bound at its next idle transition.
func TestEtaReseedAfterRestart(t *testing.T) {
	g := testGraph(true, 22)
	want := algorithms.SeqPageRank(g, 1e-3)
	cfg := localFTConfig()
	cfg.CheckEvery = 64 // coarse, so a reseed has room to halve
	cfg.Faults = faultPlan(t, "crash=1@u200+10")
	res, lm, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	for v, w := range want {
		if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
		}
	}
	if lm.Crashes != 1 || lm.Recoveries < 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1 and >=1", lm.Crashes, lm.Recoveries)
	}
	if lm.Replayed >= 64*4 && lm.EtaReseeds == 0 {
		t.Fatalf("replayed %d messages into a CheckEvery=64 worker without an eta reseed", lm.Replayed)
	}
}

// TestSqueezeDrivesLadder: injected synthetic pressure (fault plan "squeeze")
// alone must climb every rung — forced checkpoints, sender throttling and
// streamed edge partitions — while the answers stay correct.
func TestSqueezeDrivesLadder(t *testing.T) {
	g := testGraph(true, 23)
	want := algorithms.SeqPageRank(g, 1e-3)
	fs := frags(t, g, 4)
	gov := spillGov(t, 8<<20) // ample budget: only the squeeze creates pressure
	cfg := localFTConfig()
	cfg.Mem = gov
	// 64 MiB of phantom usage for the first 10 s pins the stage at
	// StageStream from the first monitor tick. The crash arms local
	// recovery (rung 1 needs a sender log to bound) and the slowdown
	// stretches the run across enough monitor ticks for every rung.
	cfg.Faults = faultPlan(t, "squeeze=0:10000:67108864; crash=1@u200+10; slow=2@0:200:10")
	res, lm, err := RunLive(fs, algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
	unspillAll(t, fs)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	for v, w := range want {
		if math.Abs(res.Values[v]-w) > 0.02*(w+1) {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], w)
		}
	}
	if lm.MemPeakBytes < 64<<20 {
		t.Fatalf("peak %d does not include the injected 64MiB squeeze", lm.MemPeakBytes)
	}
	if lm.ForcedCkpts == 0 {
		t.Fatal("rung 1 never fired: no forced checkpoints under StageStream pressure")
	}
	if lm.Throttles == 0 {
		t.Fatal("rung 2 never fired: no sender throttling under StageStream pressure")
	}
	if lm.EdgeSpills == 0 {
		t.Fatal("rung 3 never fired: no edge partitions streamed under StageStream pressure")
	}
	if lm.SpilledBytes == 0 {
		t.Fatal("StageStream pressure paged nothing to the spill tier")
	}
}

// TestParseBytesFlagSizes mirrors arganrun's -mem-budget suffix grammar at
// the driver level: a LiveConfig carrying a bounded governor must resolve
// LogBytesSoftCap to a quarter of the budget by default.
func TestLogCapDefaultsFromBudget(t *testing.T) {
	gov := spillGov(t, 1<<20)
	cfg := LiveConfig{Mode: ModeGAP, Mem: gov}
	c, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.LogBytesSoftCap != (1<<20)/4 {
		t.Fatalf("LogBytesSoftCap=%d, want budget/4=%d", c.LogBytesSoftCap, (1<<20)/4)
	}
	cfg = LiveConfig{Mode: ModeGAP, Mem: gov, LogBytesSoftCap: -1}
	if c, err = cfg.withDefaults(); err != nil {
		t.Fatal(err)
	}
	if c.LogBytesSoftCap != 0 {
		t.Fatalf("LogBytesSoftCap=-1 must disable the cap, got %d", c.LogBytesSoftCap)
	}
}
