package gap

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/graph"
	"argan/internal/netsim"
	"argan/internal/partition"
)

func TestEmptyActiveGraph(t *testing.T) {
	// No vertex is initially active when the SSSP source has no out-edges
	// reachable... use a source that is isolated from everything else.
	g := graph.NewBuilder(5, true).AddEdge(1, 2).AddEdge(2, 3).MustBuild()
	res, err := RunSim(frags(t, g, 2), algorithms.NewSSSP(), ace.Query{Source: 4}, Config{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[4] != 0 {
		t.Fatalf("source dist = %v", res.Values[4])
	}
	for _, v := range []graph.VID{0, 1, 2, 3} {
		if !math.IsInf(res.Values[v], 1) {
			t.Fatalf("dist[%d] = %v, want +Inf", v, res.Values[v])
		}
	}
}

func TestNoEdgesGraph(t *testing.T) {
	g := graph.NewBuilder(8, true).MustBuild()
	for _, mode := range []Mode{ModeGAP, ModeBSP, ModeAPVC} {
		res, err := RunSim(frags(t, g, 3), algorithms.NewWCC(), ace.Query{}, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for v := range res.Values {
			if res.Values[v] != graph.VID(v) {
				t.Fatalf("%v: isolated vertex %d labeled %d", mode, v, res.Values[v])
			}
		}
	}
}

func TestMoreWorkersThanVertices(t *testing.T) {
	g := graph.Chain(5, true)
	fs, err := partition.Partition(g, partition.Hash{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(fs, algorithms.NewBFS(), ace.Query{Source: 0}, Config{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if res.Values[v] != int32(v) {
			t.Fatalf("bfs[%d] = %d", v, res.Values[v])
		}
	}
}

func TestSkewedPartitionCorrectness(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 300, M: 1800, Directed: true, Seed: 71, MaxW: 8})
	want := algorithms.SeqSSSP(g, 0)
	fs, err := partition.Partition(g, partition.Skewed{Base: partition.Hash{}, Extra: 0.6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(fs, algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

func TestSlowLinksCorrectness(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 200, M: 1200, Directed: true, Seed: 72, MaxW: 8})
	want := algorithms.SeqSSSP(g, 0)
	net := netsim.NewNetwork(netsim.DefaultCostModel(), 5)
	net.SetLinkFactor(0, 1, 20)
	net.SetLinkFactor(2, 3, 20)
	net.Jitter = 0.2
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

func TestHeteroDeterminism(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 300, M: 1800, Directed: true, Seed: 73, MaxW: 8})
	run := func() Metrics {
		res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0},
			Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD, Hetero: 1.5, HeteroWindow: 512})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	if a.RespTime != b.RespTime || a.Updates != b.Updates {
		t.Fatal("hetero noise must be deterministic")
	}
	// And it must actually slow things down.
	noNoise, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0},
		Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBusy <= noNoise.Metrics.TotalBusy {
		t.Fatal("hetero noise should inflate busy time")
	}
}

func TestDuplicateDeliveryIdempotent(t *testing.T) {
	// Min-aggregation is idempotent: feeding every batch twice must not
	// change the fixpoint. Simulated by a wrapper program whose Aggregate
	// sees duplicates through re-running the whole query on the same psi.
	g := graph.PowerLaw(graph.GenConfig{N: 150, M: 900, Directed: true, Seed: 74, MaxW: 6})
	want := algorithms.SeqSSSP(g, 0)
	// Jittered network reorders deliveries across links; results must hold.
	net := netsim.NewNetwork(netsim.DefaultCostModel(), 11)
	net.Jitter = 0.9
	res, err := RunSim(frags(t, g, 5), algorithms.NewSSSP(), ace.Query{Source: 0}, Config{Mode: ModeGAP, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

func TestPowerSwitchSwitchesOnSkew(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 2000, M: 24000, Directed: true, Seed: 75, MaxW: 50})
	fs, err := partition.Partition(g, partition.Skewed{Base: partition.Hash{}, Extra: 0.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	slow := []float64{6, 1, 1, 1, 1, 1, 1, 1}
	res, err := RunSim(fs, algorithms.NewSSSP(), ace.Query{Source: 0},
		Config{Mode: ModePowerSwitch, SlowFactor: slow, SwitchThreshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Switched {
		t.Log("PowerSwitch did not switch under this skew (acceptable, heuristic)")
	}
	want := algorithms.SeqSSSP(g, 0)
	for v, d := range want {
		if res.Values[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], d)
		}
	}
}

func TestEtaHistoryRecorded(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 2000, M: 24000, Directed: true, Seed: 76, MaxW: 50})
	res, err := RunSim(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0},
		Config{Mode: ModeGAP, Adapt: adapt.PolicyGAwD})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics.EtaHistory) != 4 {
		t.Fatalf("want 4 eta trajectories, got %d", len(res.Metrics.EtaHistory))
	}
	any := false
	for _, h := range res.Metrics.EtaHistory {
		if len(h) > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no granularity adjustments recorded")
	}
}

func TestBellmanFordHasNoPriority(t *testing.T) {
	// The embedded-and-shadowed Priority method must disable Dijkstra
	// ordering for Bellman-Ford.
	var p any = algorithms.NewBellmanFord()()
	if _, ok := p.(ace.Prioritizer[float64]); ok {
		t.Fatal("BellmanFord must not implement Prioritizer")
	}
	var d any = algorithms.NewSSSP()()
	if _, ok := d.(ace.Prioritizer[float64]); !ok {
		t.Fatal("SSSP must implement Prioritizer")
	}
}

func TestModeStringsAndAverages(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeGAP: "GAP", ModeBSP: "BSP", ModeBSPVC: "BSP-VC", ModeAPGC: "AP-GC",
		ModeAPVC: "AP-VC", ModeAAP: "AAP", ModePowerSwitch: "PowerSwitch", Mode(99): "?",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	g := graph.Chain(20, true)
	res, err := RunSim(frags(t, g, 2), algorithms.NewBFS(), ace.Query{Source: 0}, Config{Mode: ModeGAP})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.AvgTw() != m.TotalTw/2 || m.AvgTc() != m.TotalTc/2 || m.AvgTa() != m.TotalTa/2 {
		t.Fatal("per-worker averages wrong")
	}
}
