package gap

import "container/heap"

// activeSet is the local active set H_{A,i}: the owned vertices whose update
// functions must run. It is a FIFO queue by default; when a priority
// function is supplied (parallelized Dijkstra), it becomes a lazy-deletion
// min-heap popping the smallest priority first.
type activeSet struct {
	inQ  []bool
	size int

	// FIFO representation.
	fifo []uint32
	head int

	// Heap representation (prio != nil).
	prio  func(local uint32) float64
	items prioHeap
}

func newActiveSet(numOwned int, prio func(uint32) float64) *activeSet {
	return &activeSet{inQ: make([]bool, numOwned), prio: prio}
}

// Push activates a vertex. Re-activating a queued vertex is a no-op for the
// FIFO, and a lazy re-insert with the (possibly better) current priority for
// the heap.
func (a *activeSet) Push(local uint32) {
	if a.prio == nil {
		if a.inQ[local] {
			return
		}
		a.inQ[local] = true
		a.size++
		a.fifo = append(a.fifo, local)
		return
	}
	p := a.prio(local)
	if a.inQ[local] {
		// Lazy duplicate: the earlier entry will be skipped if this one
		// (with the better priority) pops first.
		heap.Push(&a.items, prioItem{p, local})
		return
	}
	a.inQ[local] = true
	a.size++
	heap.Push(&a.items, prioItem{p, local})
}

// Empty reports whether H is empty.
func (a *activeSet) Empty() bool { return a.size == 0 }

// Len returns |H|.
func (a *activeSet) Len() int { return a.size }

// Peek returns the vertex that Pop would return.
func (a *activeSet) Peek() uint32 {
	if a.prio == nil {
		for a.head < len(a.fifo) && !a.inQ[a.fifo[a.head]] {
			a.head++
		}
		return a.fifo[a.head]
	}
	a.skim()
	return a.items[0].local
}

// Pop removes and returns the next vertex.
func (a *activeSet) Pop() uint32 {
	var v uint32
	if a.prio == nil {
		v = a.Peek()
		a.head++
		if a.head > 1024 && a.head*2 > len(a.fifo) {
			a.fifo = append(a.fifo[:0], a.fifo[a.head:]...)
			a.head = 0
		}
	} else {
		a.skim()
		v = heap.Pop(&a.items).(prioItem).local
	}
	a.inQ[v] = false
	a.size--
	return v
}

// skim drops stale lazy duplicates from the heap top.
func (a *activeSet) skim() {
	for len(a.items) > 0 && !a.inQ[a.items[0].local] {
		heap.Pop(&a.items)
	}
}

// Drain moves all queued vertices out, leaving H empty; used by the
// superstep modes to freeze the per-round work list.
func (a *activeSet) Drain() []uint32 {
	out := make([]uint32, 0, a.size)
	for !a.Empty() {
		out = append(out, a.Pop())
	}
	return out
}

// Snapshot returns the queued vertices without disturbing the set; used by
// the fault-tolerance layer to checkpoint H. The result preserves FIFO
// order (heap order is irrelevant: Reset re-inserts with fresh priorities).
func (a *activeSet) Snapshot() []uint32 {
	out := make([]uint32, 0, a.size)
	if a.prio == nil {
		for _, v := range a.fifo[a.head:] {
			if a.inQ[v] {
				out = append(out, v)
			}
		}
		return out
	}
	seen := make(map[uint32]bool, a.size)
	for _, it := range a.items {
		if a.inQ[it.local] && !seen[it.local] {
			seen[it.local] = true
			out = append(out, it.local)
		}
	}
	return out
}

// Reset replaces the set's contents with vs (a prior Snapshot), dropping
// everything queued since.
func (a *activeSet) Reset(vs []uint32) {
	for i := range a.inQ {
		a.inQ[i] = false
	}
	a.size = 0
	a.fifo = a.fifo[:0]
	a.head = 0
	a.items = a.items[:0]
	for _, v := range vs {
		a.Push(v)
	}
}

type prioItem struct {
	p     float64
	local uint32
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].p != h[j].p {
		return h[i].p < h[j].p
	}
	return h[i].local < h[j].local
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
