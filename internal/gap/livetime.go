package gap

import (
	"errors"
	"sync"
	"time"
)

var errNoFragments = errors.New("gap: no fragments")

type waitGroup = sync.WaitGroup

func timeNow() time.Time                  { return time.Now() }
func timeSince(t time.Time) time.Duration { return time.Since(t) }
